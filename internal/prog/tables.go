package prog

import "lvp/internal/isa"

// Switch emits a computed branch through a jump table, the paper's
// "computed branches" idiom: the table base address is a run-time constant
// loaded from the pool (data-address load), and each table entry is an
// instruction address (instruction-address load).
//
// idx must hold a value in [0, len(targets)); values outside the range
// branch to defLabel. Clobbers AT and tmp.
func (b *Builder) Switch(idx, tmp isa.Reg, name string, targets []string, defLabel string) {
	table := b.PtrTable(name, targets, true)
	b.OpI(isa.SLTI, AT, idx, int64(len(targets)))
	b.Branch(isa.BEQ, AT, Zero, defLabel) // idx >= len
	b.Branch(isa.BLT, idx, Zero, defLabel)
	// Load the table base address (a run-time constant) from the pool.
	b.LoadConstAddr(AT, int64(table))
	b.OpI(isa.SHLI, tmp, idx, b.PtrShift())
	b.Op3(isa.ADD, AT, AT, tmp)
	// Load the target instruction address from the jump table.
	b.LoadPtr(AT, AT, 0, isa.LoadInstAddr)
	b.JumpReg(AT)
}

// VTable lays out a virtual-function table: a pointer-width array of
// function addresses under the given symbol.
func (b *Builder) VTable(name string, methods []string) uint64 {
	return b.PtrTable(name, methods, true)
}

// VCall emits a virtual call: load the vtable pointer from the object
// (data-address load), load the method pointer from the vtable
// (instruction-address load), call indirect. Clobbers AT.
// obj holds the object address; the vtable pointer is at offset vtblOff.
func (b *Builder) VCall(obj isa.Reg, vtblOff int64, slot int) {
	b.LoadPtr(AT, obj, vtblOff, isa.LoadDataAddr)
	b.LoadPtr(AT, AT, int64(slot)*b.PtrBytes(), isa.LoadInstAddr)
	b.CallReg(AT)
}

// CallThrough emits an indirect call through a function-pointer variable
// held in the globals segment (symbol must name a pointer-width slot filled
// with a code address, e.g. via PtrTable or a store). Clobbers AT.
func (b *Builder) CallThrough(symbol string) {
	addr := b.SymbolAddr(symbol)
	b.LoadPtr(AT, GP, int64(addr-DataBase), isa.LoadInstAddr)
	b.CallReg(AT)
}

// ErrorCheck emits the paper's "error-checking" idiom: load a run-time
// constant flag from the globals segment and branch to handler when it is
// non-zero. In real programs the flag is almost always zero, which is
// exactly what makes the load highly value-local. Clobbers AT.
func (b *Builder) ErrorCheck(flagSymbol string, handler string) {
	addr := b.SymbolAddr(flagSymbol)
	b.Load(b.intLoadOp(), AT, GP, int64(addr-DataBase), isa.LoadIntData)
	b.Branch(isa.BNE, AT, Zero, handler)
}
