package prog

import (
	"encoding/binary"
	"fmt"
	"math"

	"lvp/internal/isa"
)

// Builder assembles a VLR program: instructions, labels, a globals segment
// (constant pool, GOT, jump tables, benchmark data), and the startup stub.
//
// Builder methods never fail individually; errors (duplicate labels,
// unresolved references, oversized constants) are accumulated and reported
// by Build. This keeps benchmark code linear and readable.
type Builder struct {
	target Target
	name   string

	insts    []isa.Inst
	labels   map[string]int // label -> instruction index
	labelFix []labelFixup

	data    []byte // globals segment, based at DataBase
	symbols map[string]uint64
	dataFix []dataFixup

	pool     map[poolKey]uint64 // deduplicated constant pool
	got      map[string]uint64  // GOT entry address per symbol/function
	labelSeq int

	errs []error
}

type labelFixup struct {
	inst  int
	label string
}

type dataFixup struct {
	off    uint64 // offset into data segment
	label  string
	isCode bool // resolve against code labels instead of data symbols
	width  int
}

type poolKey struct {
	bits  uint64
	fp    bool
	width int
}

// New returns a Builder for the named program and codegen target. The
// startup stub (_start: set up SP and GP, call main, halt) is emitted
// immediately; the program must define a "main" function.
func New(name string, target Target) *Builder {
	b := &Builder{
		target:  target,
		name:    name,
		labels:  make(map[string]int),
		symbols: make(map[string]uint64),
		pool:    make(map[poolKey]uint64),
		got:     make(map[string]uint64),
	}
	b.Label("_start")
	b.Li(SP, int64(StackTop))
	b.Li(GP, int64(DataBase))
	b.Call("main")
	b.Halt()
	return b
}

// Target reports the builder's codegen target.
func (b *Builder) Target() Target { return b.target }

// Errf records a build error.
func (b *Builder) Errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf("prog %s: "+format, append([]any{b.name}, args...)...))
}

// --- raw emission ---

// Emit appends a raw instruction.
func (b *Builder) Emit(i isa.Inst) { b.insts = append(b.insts, i) }

// Op3 emits a three-register instruction.
func (b *Builder) Op3(op isa.Op, rd, ra, rb isa.Reg) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Ra: ra, Rb: rb})
}

// OpI emits a register-immediate instruction.
func (b *Builder) OpI(op isa.Op, rd, ra isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Ra: ra, Imm: imm})
}

// Li emits a full-width load-immediate. Prefer MaterializeInt in benchmark
// code so the target's constant-pool policy applies.
func (b *Builder) Li(rd isa.Reg, imm int64) { b.OpI(isa.LI, rd, Zero, imm) }

// Mv copies ra into rd.
func (b *Builder) Mv(rd, ra isa.Reg) { b.Op3(isa.OR, rd, ra, Zero) }

// Nop emits a no-op.
func (b *Builder) Nop() { b.Emit(isa.Inst{Op: isa.NOP}) }

// Out emits the value of ra to the program's output stream (self-check).
func (b *Builder) Out(ra isa.Reg) { b.Emit(isa.Inst{Op: isa.OUT, Ra: ra}) }

// Halt stops the program.
func (b *Builder) Halt() { b.Emit(isa.Inst{Op: isa.HALT}) }

// --- labels and control flow ---

// Label defines a code label at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.Errf("duplicate label %q", name)
		return
	}
	b.labels[name] = len(b.insts)
}

// NewLabel returns a fresh unique label with the given prefix.
func (b *Builder) NewLabel(prefix string) string {
	b.labelSeq++
	return fmt.Sprintf(".%s%d", prefix, b.labelSeq)
}

// Branch emits a conditional branch to label.
func (b *Builder) Branch(op isa.Op, ra, rb isa.Reg, label string) {
	if !isa.IsCondBranch(op) {
		b.Errf("Branch called with non-branch op %v", op)
		return
	}
	b.labelFix = append(b.labelFix, labelFixup{inst: len(b.insts), label: label})
	b.Emit(isa.Inst{Op: op, Ra: ra, Rb: rb})
}

// Jump emits an unconditional jump to label.
func (b *Builder) Jump(label string) {
	b.labelFix = append(b.labelFix, labelFixup{inst: len(b.insts), label: label})
	b.Emit(isa.Inst{Op: isa.JAL, Rd: Zero})
}

// Call emits a call to label, linking through RA.
func (b *Builder) Call(label string) {
	b.labelFix = append(b.labelFix, labelFixup{inst: len(b.insts), label: label})
	b.Emit(isa.Inst{Op: isa.JAL, Rd: RA})
}

// CallReg emits an indirect call through ra, linking through RA.
func (b *Builder) CallReg(ra isa.Reg) {
	b.Emit(isa.Inst{Op: isa.JALR, Rd: RA, Ra: ra})
}

// JumpReg emits an indirect jump through ra without linking.
func (b *Builder) JumpReg(ra isa.Reg) {
	b.Emit(isa.Inst{Op: isa.JALR, Rd: Zero, Ra: ra})
}

// Ret returns through RA.
func (b *Builder) Ret() { b.Emit(isa.Inst{Op: isa.JALR, Rd: Zero, Ra: RA}) }

// --- memory access ---

// Load emits an explicit load with a load-class tag.
func (b *Builder) Load(op isa.Op, rd, base isa.Reg, off int64, class isa.LoadClass) {
	if !isa.IsLoad(op) {
		b.Errf("Load called with non-load op %v", op)
		return
	}
	b.Emit(isa.Inst{Op: op, Rd: rd, Ra: base, Imm: off, Class: class})
}

// Store emits an explicit store of rb to base+off.
func (b *Builder) Store(op isa.Op, rb, base isa.Reg, off int64) {
	if !isa.IsStore(op) {
		b.Errf("Store called with non-store op %v", op)
		return
	}
	b.Emit(isa.Inst{Op: op, Rb: rb, Ra: base, Imm: off})
}

// ptrLoadOp is the opcode used to load a pointer-width value.
func (b *Builder) ptrLoadOp() isa.Op {
	if b.target.PtrBytes == 8 {
		return isa.LD
	}
	return isa.LWU // addresses are unsigned
}

// ptrStoreOp is the opcode used to store a pointer-width value.
func (b *Builder) ptrStoreOp() isa.Op {
	if b.target.PtrBytes == 8 {
		return isa.SD
	}
	return isa.SW
}

// intLoadOp is the opcode used to load a natural-width integer.
func (b *Builder) intLoadOp() isa.Op {
	if b.target.PtrBytes == 8 {
		return isa.LD
	}
	return isa.LW
}

// LoadPtr loads a pointer-width value (class defaults to data address).
func (b *Builder) LoadPtr(rd, base isa.Reg, off int64, class isa.LoadClass) {
	b.Load(b.ptrLoadOp(), rd, base, off, class)
}

// StorePtr stores a pointer-width value.
func (b *Builder) StorePtr(rb, base isa.Reg, off int64) {
	b.Store(b.ptrStoreOp(), rb, base, off)
}

// LoadInt loads a natural-width (target word) integer as int data.
func (b *Builder) LoadInt(rd, base isa.Reg, off int64) {
	b.Load(b.intLoadOp(), rd, base, off, isa.LoadIntData)
}

// StoreInt stores a natural-width integer.
func (b *Builder) StoreInt(rb, base isa.Reg, off int64) {
	b.Store(b.ptrStoreOp(), rb, base, off)
}

// PtrBytes reports the target pointer width.
func (b *Builder) PtrBytes() int64 { return int64(b.target.PtrBytes) }

// PtrShift reports log2 of the pointer width (for table indexing).
func (b *Builder) PtrShift() int64 {
	if b.target.PtrBytes == 8 {
		return 3
	}
	return 2
}

// --- constants ---

// MaterializeInt places the constant v in rd the way the target compiler
// would: small constants inline via LI, wide ones via a constant-pool load
// (paper §2 "Program constants").
func (b *Builder) MaterializeInt(rd isa.Reg, v int64) {
	if fitsBits(v, b.target.ImmBits) {
		b.Li(rd, v)
		return
	}
	b.LoadConst(rd, v)
}

func fitsBits(v int64, bits int) bool {
	if bits >= 64 {
		return true
	}
	lim := int64(1) << (bits - 1)
	return v >= -lim && v < lim
}

// LoadConst loads the integer constant v from the constant pool (always a
// memory load, tagged int data).
func (b *Builder) LoadConst(rd isa.Reg, v int64) {
	w := b.target.PtrBytes
	if w == 4 && !fitsBits(v, 33) { // must fit 32 bits (signed or unsigned)
		b.Errf("constant %#x does not fit the 32-bit target pool", uint64(v))
		v = int64(int32(v))
	}
	addr := b.poolEntry(poolKey{bits: uint64(v), fp: false, width: w})
	op := isa.LW
	if w == 8 {
		op = isa.LD
	}
	b.Load(op, rd, GP, int64(addr-DataBase), isa.LoadIntData)
}

// LoadConstAddr loads the integer constant v (an address) from the constant
// pool, tagged as a data address. Used for base addresses of large static
// objects.
func (b *Builder) LoadConstAddr(rd isa.Reg, v int64) {
	w := b.target.PtrBytes
	addr := b.poolEntry(poolKey{bits: uint64(v), fp: false, width: w})
	b.Load(b.ptrLoadOp(), rd, GP, int64(addr-DataBase), isa.LoadDataAddr)
}

// LoadConstF loads the float64 constant v from the constant pool.
func (b *Builder) LoadConstF(fd isa.Reg, v float64) {
	addr := b.poolEntry(poolKey{bits: math.Float64bits(v), fp: true, width: 8})
	b.Load(isa.FLD, fd, GP, int64(addr-DataBase), isa.LoadFPData)
}

func (b *Builder) poolEntry(k poolKey) uint64 {
	if addr, ok := b.pool[k]; ok {
		return addr
	}
	b.align(k.width)
	addr := DataBase + uint64(len(b.data))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], k.bits)
	b.data = append(b.data, buf[:k.width]...)
	b.pool[k] = addr
	return addr
}

// --- GOT (global offset table / TOC) ---

// GotData loads the address of a data symbol through the GOT, the paper's
// "addressability" and "glue code" idiom. Tagged as a data-address load.
func (b *Builder) GotData(rd isa.Reg, symbol string) {
	entry := b.gotEntry("d:"+symbol, symbol, false)
	b.LoadPtr(rd, GP, int64(entry-DataBase), isa.LoadDataAddr)
}

// GotFunc loads the address of a function through the GOT, the paper's
// cross-module call / function-pointer idiom. Tagged as an
// instruction-address load.
func (b *Builder) GotFunc(rd isa.Reg, fn string) {
	entry := b.gotEntry("f:"+fn, fn, true)
	b.LoadPtr(rd, GP, int64(entry-DataBase), isa.LoadInstAddr)
}

func (b *Builder) gotEntry(key, label string, isCode bool) uint64 {
	if addr, ok := b.got[key]; ok {
		return addr
	}
	b.align(b.target.PtrBytes)
	addr := DataBase + uint64(len(b.data))
	b.dataFix = append(b.dataFix, dataFixup{
		off: uint64(len(b.data)), label: label, isCode: isCode, width: b.target.PtrBytes,
	})
	b.data = append(b.data, make([]byte, b.target.PtrBytes)...)
	b.got[key] = addr
	return addr
}
