package prog

import (
	"strings"
	"testing"

	"lvp/internal/isa"
)

func TestTargetByName(t *testing.T) {
	for _, name := range []string{"ppc", "axp"} {
		tg, err := TargetByName(name)
		if err != nil || tg.Name != name {
			t.Errorf("TargetByName(%q) = %v, %v", name, tg, err)
		}
	}
	if _, err := TargetByName("mips"); err == nil {
		t.Error("TargetByName(mips) should fail")
	}
}

func TestBuildResolvesBranches(t *testing.T) {
	b := New("t", AXP)
	b.Label("main")
	b.Branch(isa.BEQ, T0, T1, "main")
	b.Jump("main")
	b.Ret()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	mainPC := p.Funcs["main"]
	idx, ok := p.PCToIndex(mainPC)
	if !ok {
		t.Fatalf("main pc %#x not in program", mainPC)
	}
	if got := uint64(p.Code[idx].Imm); got != mainPC {
		t.Errorf("branch target = %#x, want %#x", got, mainPC)
	}
}

func TestBuildFailsOnUnresolvedLabel(t *testing.T) {
	b := New("t", AXP)
	b.Label("main")
	b.Jump("nowhere")
	b.Ret()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("err = %v, want unresolved-label error", err)
	}
}

func TestBuildFailsWithoutMain(t *testing.T) {
	b := New("t", AXP)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "main") {
		t.Fatalf("err = %v, want missing-main error", err)
	}
}

func TestDuplicateLabelFails(t *testing.T) {
	b := New("t", AXP)
	b.Label("main")
	b.Label("x")
	b.Label("x")
	b.Ret()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v, want duplicate-label error", err)
	}
}

func TestConstPoolDedupe(t *testing.T) {
	b := New("t", AXP)
	b.Label("main")
	b.LoadConst(T0, 0x1234_5678_9ABC)
	b.LoadConst(T1, 0x1234_5678_9ABC)
	b.Ret()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	// The two pool loads must address the same entry.
	var offs []int64
	for _, in := range p.Code {
		if in.Op == isa.LD && in.Ra == GP {
			offs = append(offs, in.Imm)
		}
	}
	if len(offs) != 2 || offs[0] != offs[1] {
		t.Errorf("pool offsets = %v, want two identical", offs)
	}
}

func TestWideConstantOn32BitTargetFails(t *testing.T) {
	b := New("t", PPC)
	b.Label("main")
	b.LoadConst(T0, 0x1_0000_0001) // does not fit 32 bits
	b.Ret()
	if _, err := b.Build(); err == nil {
		t.Fatal("expected build error for oversized 32-bit pool constant")
	}
}

func TestGotEntriesDeduped(t *testing.T) {
	b := New("t", AXP)
	b.Zeros("glob", 8)
	b.Label("main")
	b.GotData(T0, "glob")
	b.GotData(T1, "glob")
	b.GotFunc(T2, "main")
	b.Ret()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	var offs []int64
	for _, in := range p.Code {
		if in.Op == isa.LD && in.Ra == GP && in.Class == isa.LoadDataAddr {
			offs = append(offs, in.Imm)
		}
	}
	if len(offs) != 2 || offs[0] != offs[1] {
		t.Errorf("GOT data offsets = %v, want two identical", offs)
	}
}

func TestPtrTableWidthFollowsTarget(t *testing.T) {
	for _, tg := range Targets {
		b := New("t", tg)
		b.Label("main")
		b.Label("f")
		b.Ret()
		addr := b.PtrTable("tab", []string{"f", "main"}, true)
		p, err := b.Build()
		if err != nil {
			t.Fatalf("%s build: %v", tg.Name, err)
		}
		data := p.Data[DataBase]
		off := addr - DataBase
		// First entry must decode to the address of "f".
		var got uint64
		for i := 0; i < tg.PtrBytes; i++ {
			got |= uint64(data[off+uint64(i)]) << (8 * i)
		}
		if got != p.Funcs["f"] {
			t.Errorf("%s: table[0] = %#x, want %#x", tg.Name, got, p.Funcs["f"])
		}
	}
}

func TestFrameOffsetsDistinct(t *testing.T) {
	b := New("t", AXP)
	f := b.Func("main", 3, S0, S1)
	seen := map[int64]bool{}
	for i := 0; i < 3; i++ {
		off := f.LocalOff(i)
		if seen[off] {
			t.Errorf("local slot %d reuses offset %d", i, off)
		}
		seen[off] = true
	}
	for i := range 2 {
		off := f.savedOff(i)
		if seen[off] {
			t.Errorf("saved reg %d collides at offset %d", i, off)
		}
		seen[off] = true
	}
	if seen[f.raOff()] {
		t.Error("RA slot collides with another slot")
	}
	f.Epilogue()
	if _, err := b.Build(); err != nil {
		t.Fatalf("build: %v", err)
	}
}

func TestLocalOutOfRangeReported(t *testing.T) {
	b := New("t", AXP)
	f := b.Func("main", 1)
	f.LocalOff(5)
	f.Epilogue()
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for out-of-range local slot")
	}
}

func TestSymbolLookupUnknownReported(t *testing.T) {
	b := New("t", AXP)
	b.Label("main")
	b.SymbolAddr("missing")
	b.Ret()
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for unknown symbol")
	}
}

func TestMaterializeIntPolicyDiffersByTarget(t *testing.T) {
	count := func(tg Target) int {
		b := New("t", tg)
		b.Label("main")
		b.MaterializeInt(T0, 1<<20) // fits 32 bits, not 16
		b.Ret()
		p, err := b.Build()
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		loads := 0
		for _, in := range p.Code {
			if isa.IsLoad(in.Op) {
				loads++
			}
		}
		return loads
	}
	if count(PPC) != 1 {
		t.Error("PPC target should pool-load a 2^20 constant")
	}
	if count(AXP) != 0 {
		t.Error("AXP target should inline a 2^20 constant")
	}
}
