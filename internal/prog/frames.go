package prog

import "lvp/internal/isa"

// Frame describes an active function's stack frame. Layout (offsets from
// SP after the prologue):
//
//	[0 .. 8*locals)            local slots (8 bytes each, all targets)
//	[8*locals ..)              saved callee registers (pointer width)
//	top-of-frame - ptr         saved RA
//
// The prologue stores RA and the requested callee-saved registers; the
// epilogue reloads them. Those reloads are exactly the paper's
// "call-subgraph identities" and "register spill code" loads: the RA reload
// is tagged as an instruction-address load, callee-saved reloads default to
// int data (use SavePtrRegs for registers known to hold pointers).
type Frame struct {
	b       *Builder
	locals  int
	saved   []isa.Reg
	savedFP []isa.Reg // FP callee-saved registers
	ptrRegs map[isa.Reg]bool
	size    int64
}

// Func starts a new function: defines the label and emits a prologue that
// saves RA plus the given callee-saved registers, with space for `locals`
// 8-byte local slots. Returns the Frame for use with locals and the
// epilogue.
func (b *Builder) Func(name string, locals int, saved ...isa.Reg) *Frame {
	b.Label(name)
	return b.Prologue(locals, saved...)
}

// Prologue emits frame setup without defining a label (for internal entry
// points).
func (b *Builder) Prologue(locals int, saved ...isa.Reg) *Frame {
	f := &Frame{b: b, locals: locals, saved: saved, ptrRegs: make(map[isa.Reg]bool)}
	ptr := b.PtrBytes()
	f.size = int64(locals)*8 + int64(len(saved))*ptr + ptr
	if rem := f.size % 8; rem != 0 {
		f.size += 8 - rem
	}
	b.OpI(isa.ADDI, SP, SP, -f.size)
	b.StorePtr(RA, SP, f.raOff())
	for i, r := range saved {
		b.StorePtr(r, SP, f.savedOff(i))
	}
	return f
}

// MarkPtr records that the given callee-saved register holds a pointer, so
// its epilogue reload is tagged as a data-address load.
func (f *Frame) MarkPtr(regs ...isa.Reg) {
	for _, r := range regs {
		f.ptrRegs[r] = true
	}
}

// SaveFP additionally saves FP callee-saved registers in local slots taken
// from the top of the local area (caller must have reserved enough locals:
// the last len(regs) slots are consumed).
func (f *Frame) SaveFP(regs ...isa.Reg) {
	f.savedFP = regs
	for i, r := range regs {
		f.b.Store(isa.FSD, r, SP, f.LocalOff(f.locals-1-i))
	}
}

func (f *Frame) raOff() int64 { return f.size - f.b.PtrBytes() }

func (f *Frame) savedOff(i int) int64 {
	return int64(f.locals)*8 + int64(i)*f.b.PtrBytes()
}

// LocalOff reports the SP-relative offset of local slot i.
func (f *Frame) LocalOff(i int) int64 {
	if i < 0 || i >= f.locals {
		f.b.Errf("local slot %d out of range (have %d)", i, f.locals)
		return 0
	}
	return int64(i) * 8
}

// StoreLocal spills rb to local slot i (natural integer width).
func (f *Frame) StoreLocal(rb isa.Reg, i int) {
	f.b.StoreInt(rb, SP, f.LocalOff(i))
}

// LoadLocal reloads local slot i into rd as int data (the paper's "register
// spill code" idiom).
func (f *Frame) LoadLocal(rd isa.Reg, i int) {
	f.b.LoadInt(rd, SP, f.LocalOff(i))
}

// StoreLocalPtr spills a pointer to local slot i.
func (f *Frame) StoreLocalPtr(rb isa.Reg, i int) {
	f.b.StorePtr(rb, SP, f.LocalOff(i))
}

// LoadLocalPtr reloads a spilled pointer (tagged data address).
func (f *Frame) LoadLocalPtr(rd isa.Reg, i int) {
	f.b.LoadPtr(rd, SP, f.LocalOff(i), isa.LoadDataAddr)
}

// StoreLocalF spills an FP register to local slot i.
func (f *Frame) StoreLocalF(rb isa.Reg, i int) {
	f.b.Store(isa.FSD, rb, SP, f.LocalOff(i))
}

// LoadLocalF reloads an FP spill.
func (f *Frame) LoadLocalF(rd isa.Reg, i int) {
	f.b.Load(isa.FLD, rd, SP, f.LocalOff(i), isa.LoadFPData)
}

// Epilogue restores RA and the callee-saved registers, releases the frame
// and returns. The RA reload is an instruction-address load; callee-saved
// reloads are int-data or data-address loads per MarkPtr.
func (f *Frame) Epilogue() {
	b := f.b
	for i, r := range f.savedFP {
		b.Load(isa.FLD, r, SP, f.LocalOff(f.locals-1-i), isa.LoadFPData)
	}
	for i, r := range f.saved {
		class := isa.LoadIntData
		if f.ptrRegs[r] {
			class = isa.LoadDataAddr
		}
		b.LoadPtr(r, SP, f.savedOff(i), class)
	}
	b.LoadPtr(RA, SP, f.raOff(), isa.LoadInstAddr)
	b.OpI(isa.ADDI, SP, SP, f.size)
	b.Ret()
}

// EpilogueAt emits the epilogue under a label (common "single exit" shape).
func (f *Frame) EpilogueAt(label string) {
	f.b.Label(label)
	f.Epilogue()
}
