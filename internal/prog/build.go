package prog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"lvp/internal/isa"
)

func floatBits(f float64) uint64 { return math.Float64bits(f) }

// Build resolves all label and data fixups and returns the linked program.
func (b *Builder) Build() (*Program, error) {
	for _, fix := range b.labelFix {
		idx, ok := b.labels[fix.label]
		if !ok {
			b.Errf("unresolved code label %q", fix.label)
			continue
		}
		b.insts[fix.inst].Imm = int64(CodeBase) + int64(idx)*isa.InstBytes
	}
	for _, fix := range b.dataFix {
		var addr uint64
		if fix.isCode {
			idx, ok := b.labels[fix.label]
			if !ok {
				b.Errf("unresolved code label %q in data fixup", fix.label)
				continue
			}
			addr = CodeBase + uint64(idx)*isa.InstBytes
		} else {
			a, ok := b.symbols[fix.label]
			if !ok {
				b.Errf("unresolved data symbol %q in data fixup", fix.label)
				continue
			}
			addr = a
		}
		switch fix.width {
		case 4:
			binary.LittleEndian.PutUint32(b.data[fix.off:], uint32(addr))
		case 8:
			binary.LittleEndian.PutUint64(b.data[fix.off:], addr)
		default:
			b.Errf("bad data fixup width %d", fix.width)
		}
	}
	if _, ok := b.labels["main"]; !ok {
		b.Errf("program does not define main")
	}
	if len(b.errs) > 0 {
		return nil, errors.Join(b.errs...)
	}
	funcs := make(map[string]uint64, len(b.labels))
	for name, idx := range b.labels {
		funcs[name] = CodeBase + uint64(idx)*isa.InstBytes
	}
	symbols := make(map[string]uint64, len(b.symbols))
	for name, addr := range b.symbols {
		symbols[name] = addr
	}
	code := make([]isa.Inst, len(b.insts))
	copy(code, b.insts)
	data := make([]byte, len(b.data))
	copy(data, b.data)
	return &Program{
		Name:    b.name,
		Target:  b.target,
		Code:    code,
		Data:    map[uint64][]byte{DataBase: data},
		Entry:   CodeBase,
		Symbols: symbols,
		Funcs:   funcs,
	}, nil
}

// MustBuild is Build but panics on error; intended for tests and examples
// where the program text is a constant.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("prog: build failed: %v", err))
	}
	return p
}
