// Package prog builds VLR programs. It plays the role of the compiler and
// linker in the paper's framework: benchmarks are written against this
// builder, and the builder deliberately reproduces the code-generation
// idioms that the paper identifies as the sources of load value locality
// (§2): program constants loaded from a constant pool, GOT/TOC-style address
// loads, callee-saved-register and link-register restores, register spill
// reloads, memory-alias re-loads, switch-table base and entry loads, and
// virtual-function-pointer loads.
//
// Each of those idioms is exposed as a builder method that emits loads
// tagged with the appropriate isa.LoadClass, so the paper's Figure 2
// breakdown (FP data / int data / instruction address / data address) is
// exact rather than inferred.
package prog

import (
	"fmt"

	"lvp/internal/isa"
)

// Memory layout. The VM gives programs a flat byte-addressed space; these
// bases keep code, globals, heap and stack well separated.
const (
	CodeBase  uint64 = 0x0000_1000 // first instruction address
	DataBase  uint64 = 0x0010_0000 // globals: constant pool, GOT, symbols
	HeapBase  uint64 = 0x0100_0000 // bump-allocated scratch for benchmarks
	StackTop  uint64 = 0x0200_0000 // initial SP; stack grows down
	StackSize uint64 = 0x0004_0000 // reserved stack extent (for bounds checks)
)

// Register conventions (software ABI, enforced by this package only).
const (
	Zero isa.Reg = 0 // hardwired zero
	AT   isa.Reg = 1 // assembler temporary (builder scratch)
	SP   isa.Reg = 2 // stack pointer
	GP   isa.Reg = 3 // global pointer (base of the constant pool / GOT)
	A0   isa.Reg = 4 // first argument / return value
	A1   isa.Reg = 5
	A2   isa.Reg = 6
	A3   isa.Reg = 7
	A4   isa.Reg = 8
	A5   isa.Reg = 9
	T0   isa.Reg = 10 // caller-saved temporaries T0..T9
	T1   isa.Reg = 11
	T2   isa.Reg = 12
	T3   isa.Reg = 13
	T4   isa.Reg = 14
	T5   isa.Reg = 15
	T6   isa.Reg = 16
	T7   isa.Reg = 17
	T8   isa.Reg = 18
	T9   isa.Reg = 19
	S0   isa.Reg = 20 // callee-saved S0..S9
	S1   isa.Reg = 21
	S2   isa.Reg = 22
	S3   isa.Reg = 23
	S4   isa.Reg = 24
	S5   isa.Reg = 25
	S6   isa.Reg = 26
	S7   isa.Reg = 27
	S8   isa.Reg = 28
	S9   isa.Reg = 29
	S10  isa.Reg = 30
	RA   isa.Reg = 31 // link register
)

// FP register conventions.
const (
	FA0 isa.Reg = 0 // FP argument / return
	FA1 isa.Reg = 1
	FA2 isa.Reg = 2
	FA3 isa.Reg = 3
	FT0 isa.Reg = 4 // FP temporaries FT0..FT11
	FT1 isa.Reg = 5
	FT2 isa.Reg = 6
	FT3 isa.Reg = 7
	FT4 isa.Reg = 8
	FT5 isa.Reg = 9
	FT6 isa.Reg = 10
	FT7 isa.Reg = 11
	FS0 isa.Reg = 16 // FP callee-saved FS0..FS7
	FS1 isa.Reg = 17
	FS2 isa.Reg = 18
	FS3 isa.Reg = 19
	FS4 isa.Reg = 20
	FS5 isa.Reg = 21
	FS6 isa.Reg = 22
	FS7 isa.Reg = 23
)

// Target selects the code-generation flavour. The paper traces two ISAs
// (PowerPC/AIX and Alpha AXP/OSF-1) to show value locality is not an
// artifact of one compiler; we mirror that with two codegen targets that
// differ in pointer width and in how aggressively constants are materialised
// with immediates versus loaded from the constant pool.
type Target struct {
	// Name identifies the target in traces and reports.
	Name string
	// PtrBytes is the width of pointers and pool constants (4 or 8).
	PtrBytes int
	// ImmBits is the widest constant the "compiler" will materialise
	// inline with LI; anything wider is loaded from the constant pool.
	// The PowerPC-flavoured target keeps this small (16), producing more
	// constant-pool traffic, as AIX/xlc did via the TOC.
	ImmBits int
}

// PPC is the PowerPC-620-flavoured 32-bit target.
var PPC = Target{Name: "ppc", PtrBytes: 4, ImmBits: 16}

// AXP is the Alpha-21164-flavoured 64-bit target.
var AXP = Target{Name: "axp", PtrBytes: 8, ImmBits: 32}

// Targets lists the supported codegen targets in report order.
var Targets = []Target{AXP, PPC}

// TargetByName returns the named target.
func TargetByName(name string) (Target, error) {
	for _, t := range Targets {
		if t.Name == name {
			return t, nil
		}
	}
	return Target{}, fmt.Errorf("prog: unknown target %q (want ppc or axp)", name)
}

// Program is a fully linked VLR program plus its initial data image.
type Program struct {
	Name   string
	Target Target
	Code   []isa.Inst
	// Data maps segment base addresses to their initial contents.
	Data map[uint64][]byte
	// Entry is the address of the first instruction to execute.
	Entry uint64
	// Symbols maps data symbol names to addresses (for tests/debugging).
	Symbols map[string]uint64
	// Funcs maps code label names to instruction addresses.
	Funcs map[string]uint64
}

// PCToIndex converts an instruction address to an index into Code.
func (p *Program) PCToIndex(pc uint64) (int, bool) {
	if pc < CodeBase || (pc-CodeBase)%isa.InstBytes != 0 {
		return 0, false
	}
	idx := int((pc - CodeBase) / isa.InstBytes)
	if idx >= len(p.Code) {
		return 0, false
	}
	return idx, true
}
