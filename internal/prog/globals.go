package prog

import "encoding/binary"

// align pads the data segment to an n-byte boundary.
func (b *Builder) align(n int) {
	for len(b.data)%n != 0 {
		b.data = append(b.data, 0)
	}
}

func (b *Builder) defineSymbol(name string, addr uint64) {
	if _, dup := b.symbols[name]; dup {
		b.Errf("duplicate data symbol %q", name)
		return
	}
	b.symbols[name] = addr
}

// Bytes places raw bytes in the globals segment under the given symbol and
// returns its address.
func (b *Builder) Bytes(name string, data []byte) uint64 {
	b.align(8)
	addr := DataBase + uint64(len(b.data))
	b.defineSymbol(name, addr)
	b.data = append(b.data, data...)
	return addr
}

// Zeros reserves n zeroed bytes under the given symbol.
func (b *Builder) Zeros(name string, n int) uint64 {
	b.align(8)
	addr := DataBase + uint64(len(b.data))
	b.defineSymbol(name, addr)
	b.data = append(b.data, make([]byte, n)...)
	return addr
}

// Words64 places 8-byte little-endian words under the given symbol.
func (b *Builder) Words64(name string, ws []int64) uint64 {
	b.align(8)
	addr := DataBase + uint64(len(b.data))
	b.defineSymbol(name, addr)
	var buf [8]byte
	for _, w := range ws {
		binary.LittleEndian.PutUint64(buf[:], uint64(w))
		b.data = append(b.data, buf[:]...)
	}
	return addr
}

// Words32 places 4-byte little-endian words under the given symbol.
func (b *Builder) Words32(name string, ws []int32) uint64 {
	b.align(4)
	addr := DataBase + uint64(len(b.data))
	b.defineSymbol(name, addr)
	var buf [4]byte
	for _, w := range ws {
		binary.LittleEndian.PutUint32(buf[:], uint32(w))
		b.data = append(b.data, buf[:]...)
	}
	return addr
}

// WordsPtr places pointer-width little-endian words under the given symbol.
func (b *Builder) WordsPtr(name string, ws []int64) uint64 {
	if b.target.PtrBytes == 8 {
		return b.Words64(name, ws)
	}
	w32 := make([]int32, len(ws))
	for i, w := range ws {
		w32[i] = int32(w)
	}
	return b.Words32(name, w32)
}

// Floats64 places float64 values under the given symbol.
func (b *Builder) Floats64(name string, fs []float64) uint64 {
	b.align(8)
	addr := DataBase + uint64(len(b.data))
	b.defineSymbol(name, addr)
	var buf [8]byte
	for _, f := range fs {
		binary.LittleEndian.PutUint64(buf[:], floatBits(f))
		b.data = append(b.data, buf[:]...)
	}
	return addr
}

// SymbolAddr reports the address of a previously defined data symbol.
func (b *Builder) SymbolAddr(name string) uint64 {
	addr, ok := b.symbols[name]
	if !ok {
		b.Errf("unknown data symbol %q", name)
	}
	return addr
}

// PtrTable places a table of code or data addresses (resolved at Build time)
// under the given symbol. Entries whose isCode flag is true resolve against
// code labels; others against data symbols. Used for jump tables, vtables
// and function-pointer arrays.
func (b *Builder) PtrTable(name string, labels []string, isCode bool) uint64 {
	b.align(b.target.PtrBytes)
	addr := DataBase + uint64(len(b.data))
	b.defineSymbol(name, addr)
	for _, l := range labels {
		b.dataFix = append(b.dataFix, dataFixup{
			off: uint64(len(b.data)), label: l, isCode: isCode, width: b.target.PtrBytes,
		})
		b.data = append(b.data, make([]byte, b.target.PtrBytes)...)
	}
	return addr
}
