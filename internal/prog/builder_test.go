package prog

import (
	"strings"
	"testing"

	"lvp/internal/isa"
)

// These tests exercise the builder surface directly (the benchmark suite
// covers it end-to-end; here we pin individual behaviours).

func TestFrameWithFPSaves(t *testing.T) {
	b := New("fp", AXP)
	f := b.Func("main", 2, S0)
	f.SaveFP(FS0, FS1)
	b.LoadConstF(FS0, 1.0)
	b.LoadConstF(FS1, 2.0)
	f.StoreLocalF(FS0, 0) // overlaps SaveFP slot 1? slot 0 is free
	f.LoadLocalF(FT0, 0)
	f.Epilogue()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	// The epilogue must restore FP saves with FLD (fp-data class).
	fpRestores := 0
	for _, in := range p.Code {
		if in.Op == isa.FLD && in.Class == isa.LoadFPData && in.Ra == SP {
			fpRestores++
		}
	}
	if fpRestores < 3 { // 2 SaveFP restores + 1 LoadLocalF
		t.Errorf("fp restores = %d, want >= 3", fpRestores)
	}
}

func TestFrameLocalPtrTagging(t *testing.T) {
	b := New("lp", AXP)
	f := b.Func("main", 2)
	f.StoreLocalPtr(S0, 0)
	f.LoadLocalPtr(S1, 0)
	f.StoreLocal(S2, 1)
	f.LoadLocal(S3, 1)
	f.Epilogue()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var daddr, idata int
	for _, in := range p.Code {
		if isa.IsLoad(in.Op) && in.Ra == SP {
			switch in.Class {
			case isa.LoadDataAddr:
				daddr++
			case isa.LoadIntData:
				idata++
			}
		}
	}
	if daddr == 0 || idata == 0 {
		t.Errorf("spill reload classes: daddr=%d idata=%d, want both > 0", daddr, idata)
	}
}

func TestEpilogueAt(t *testing.T) {
	b := New("ea", AXP)
	f := b.Func("main", 0)
	b.Jump("exit")
	f.EpilogueAt("exit")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Funcs["exit"]; !ok {
		t.Error("EpilogueAt must define the label")
	}
}

func TestMarkPtrAffectsEpilogueClass(t *testing.T) {
	b := New("mp", AXP)
	f := b.Func("main", 0, S0, S1)
	f.MarkPtr(S0)
	f.Epilogue()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	classes := map[isa.LoadClass]int{}
	for _, in := range p.Code {
		if isa.IsLoad(in.Op) && in.Ra == SP {
			classes[in.Class]++
		}
	}
	if classes[isa.LoadDataAddr] != 1 { // S0
		t.Errorf("data-addr restores = %d, want 1", classes[isa.LoadDataAddr])
	}
	if classes[isa.LoadIntData] != 1 { // S1
		t.Errorf("int-data restores = %d, want 1", classes[isa.LoadIntData])
	}
	if classes[isa.LoadInstAddr] != 1 { // RA
		t.Errorf("inst-addr restores = %d, want 1", classes[isa.LoadInstAddr])
	}
}

func TestErrorCheckEmitsFlagLoad(t *testing.T) {
	b := New("ec", AXP)
	b.Zeros("flag", 8)
	b.Label("main")
	b.ErrorCheck("flag", "handler")
	b.Ret()
	b.Label("handler")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, in := range p.Code {
		if isa.IsLoad(in.Op) && in.Ra == GP && in.Class == isa.LoadIntData {
			found = true
		}
	}
	if !found {
		t.Error("ErrorCheck must load the flag GP-relative")
	}
}

func TestBadOpsReported(t *testing.T) {
	cases := []func(b *Builder){
		func(b *Builder) { b.Load(isa.ADD, T0, T1, 0, isa.LoadIntData) },
		func(b *Builder) { b.Store(isa.ADD, T0, T1, 0) },
		func(b *Builder) { b.Branch(isa.JAL, T0, T1, "main") },
	}
	for i, f := range cases {
		b := New("bad", AXP)
		b.Label("main")
		f(b)
		b.Ret()
		if _, err := b.Build(); err == nil {
			t.Errorf("case %d: expected build error", i)
		}
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild must panic on a broken program")
		}
	}()
	b := New("boom", AXP)
	b.Label("main")
	b.Jump("missing")
	b.MustBuild()
}

func TestMustBuildOK(t *testing.T) {
	b := New("ok", AXP)
	b.Label("main")
	b.Ret()
	if p := b.MustBuild(); p == nil || p.Name != "ok" {
		t.Error("MustBuild should return the program")
	}
}

func TestPCToIndex(t *testing.T) {
	b := New("pc", AXP)
	b.Label("main")
	b.Nop()
	b.Ret()
	p := b.MustBuild()
	if _, ok := p.PCToIndex(CodeBase - 4); ok {
		t.Error("below code base must fail")
	}
	if _, ok := p.PCToIndex(CodeBase + 2); ok {
		t.Error("misaligned pc must fail")
	}
	if _, ok := p.PCToIndex(CodeBase + uint64(len(p.Code))*4); ok {
		t.Error("past end must fail")
	}
	if i, ok := p.PCToIndex(CodeBase); !ok || i != 0 {
		t.Error("entry pc must map to index 0")
	}
}

func TestFloats64AndWords32(t *testing.T) {
	b := New("data", PPC)
	b.Floats64("fs", []float64{1.5, -2.5})
	b.Words32("ws", []int32{-1, 7})
	b.Label("main")
	b.Ret()
	p := b.MustBuild()
	data := p.Data[DataBase]
	fOff := p.Symbols["fs"] - DataBase
	if got := le64(data[fOff:]); got != 0x3FF8000000000000 {
		t.Errorf("float bits = %#x", got)
	}
	wOff := p.Symbols["ws"] - DataBase
	if got := uint32(le64(data[wOff:]) & 0xFFFFFFFF); got != 0xFFFFFFFF {
		t.Errorf("word32 = %#x", got)
	}
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8 && i < len(b); i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func TestVCallAndCallThroughShape(t *testing.T) {
	b := New("vc", AXP)
	b.VTable("vt", []string{"m0"})
	b.PtrTable("fp", []string{"m0"}, true)
	fr := b.Func("main", 0)
	b.GotData(A1, "vt")
	b.VCall(A1, 0, 0)
	b.CallThrough("fp")
	fr.Epilogue()
	g := b.Func("m0", 0)
	g.Epilogue()
	p := b.MustBuild()
	instAddrLoads := 0
	for _, in := range p.Code {
		if isa.IsLoad(in.Op) && in.Class == isa.LoadInstAddr && in.Ra != SP {
			instAddrLoads++
		}
	}
	if instAddrLoads < 2 {
		t.Errorf("vcall + callthrough should emit >= 2 inst-addr loads, got %d", instAddrLoads)
	}
}

func TestErrfAggregatesErrors(t *testing.T) {
	b := New("multi", AXP)
	b.Label("main")
	b.SymbolAddr("nope1")
	b.SymbolAddr("nope2")
	b.Ret()
	_, err := b.Build()
	if err == nil {
		t.Fatal("expected errors")
	}
	msg := err.Error()
	if !strings.Contains(msg, "nope1") || !strings.Contains(msg, "nope2") {
		t.Errorf("error should mention both symbols: %v", msg)
	}
}

func TestSwitchBoundsDefault(t *testing.T) {
	// Out-of-range index must reach the default label.
	b := New("sw", AXP)
	f := b.Func("main", 0)
	b.Li(A0, 99) // out of range
	b.Switch(A0, T0, "jt", []string{"c0"}, "cdef")
	b.Label("c0")
	b.Li(A0, 1)
	b.Jump("swdone")
	b.Label("cdef")
	b.Li(A0, 2)
	b.Label("swdone")
	f.Epilogue()
	p := b.MustBuild()
	if p.Symbols["jt"] == 0 {
		t.Error("jump table symbol missing")
	}
}
