package axp21164

import (
	"testing"

	"lvp/internal/isa"
)

// TestAxpTabMatchesFunctions pins every axpTab row (plus the out-of-range
// fallback) against the switch functions it was derived from, so a new
// opcode or a latency tweak cannot silently diverge from the table.
func TestAxpTabMatchesFunctions(t *testing.T) {
	check := func(op isa.Op, info *aInfo) {
		t.Helper()
		if got, want := int(info.lat), execLatency(op); got != want {
			t.Errorf("op %v: lat = %d, want %d", op, got, want)
		}
		m := isa.MetaOf(op)
		flagChecks := []struct {
			name string
			bit  uint16
			want bool
		}{
			{"aFP", aFP, isFP(op)},
			{"aLoad", aLoad, m.Load},
			{"aStore", aStore, m.Store},
			{"aBranch", aBranch, m.Branch},
			{"aDestG", aDestG, m.WGPR},
			{"aDestF", aDestF, m.WFPR},
			{"aReadsRaG", aReadsRaG, m.ReadsRaG},
			{"aReadsRaF", aReadsRaF, m.ReadsRaF},
			{"aReadsRbG", aReadsRbG, m.ReadsRbG},
			{"aReadsRbF", aReadsRbF, m.ReadsRbF},
		}
		for _, fc := range flagChecks {
			if got := info.flags&fc.bit != 0; got != fc.want {
				t.Errorf("op %v: flag %s = %v, want %v", op, fc.name, got, fc.want)
			}
		}
	}
	for op := isa.Op(0); int(op) < isa.NumOps; op++ {
		check(op, axpInfoOf(op))
	}
	// Out-of-range opcodes clamp exactly like the functions do.
	for _, op := range []isa.Op{isa.Op(isa.NumOps), isa.Op(isa.NumOps + 7), 255} {
		check(op, axpInfoOf(op))
	}
}
