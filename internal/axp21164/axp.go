// Package axp21164 is the trace-driven, cycle-level timing model of the
// Alpha AXP 21164 as configured in the paper (§4.2): a 4-issue, strictly
// in-order, deeply pipelined core with a dual-ported 8KB direct-mapped L1
// data cache, a 96KB 3-way on-chip L2, and — following the paper's baseline
// — no MAF, so L1 data misses block the pipe.
//
// LVP integration (§4.2): predictions are made at dispatch and verified in
// an extra compare stage before writeback. A misprediction squashes all (up
// to eight) instructions in flight and redispatches them from the reissue
// buffer with a single-cycle penalty. Loads that miss the L1 are not
// predicted — the machine returns to the non-speculative state before the
// miss is serviced, so there is no penalty — except for CVU-verified
// constants, which complete without accessing the memory system at all (the
// model's "zero-cycle load").
package axp21164

import (
	"fmt"
	"io"
	"log/slog"

	"lvp/internal/bpred"
	"lvp/internal/cache"
	"lvp/internal/isa"
	"lvp/internal/obs"
	"lvp/internal/trace"
)

// Config holds the 21164 machine parameters.
type Config struct {
	Name        string
	IssueWidth  int // total issue slots per cycle
	IntSlots    int // integer/branch/memory pipes (E0/E1)
	FPSlots     int // FP pipes (FA/FM)
	MemPerCycle int // loads+stores per cycle (dual-ported L1)

	L1         cache.Config
	L2         cache.Config
	L1Latency  int
	L2Latency  int
	MemLatency int

	BranchPenalty  int // Table 5: 4 cycles on mispredict
	ReissuePenalty int // single-cycle redispatch from the reissue buffer

	// NonBlocking restores the real 21164's MAF (miss address file),
	// which the paper's baseline deliberately omits (§4.2): misses no
	// longer stall the pipe, only their dependents wait. Used by the
	// MAF ablation, not by paper experiments.
	NonBlocking bool
}

// Config21164 returns the paper's baseline 21164 parameters.
func Config21164() Config {
	return Config{
		Name:        "21164",
		IssueWidth:  4,
		IntSlots:    2,
		FPSlots:     2,
		MemPerCycle: 2,
		L1: cache.Config{Name: "L1D", SizeBytes: 8 << 10, LineBytes: 32,
			Assoc: 1, Banks: 1},
		L2: cache.Config{Name: "L2", SizeBytes: 96 << 10, LineBytes: 64,
			Assoc: 3, Banks: 1}, // 96KB 3-way on-chip S-cache
		L1Latency:  2,
		L2Latency:  8,
		MemLatency: 40,

		BranchPenalty:  4,
		ReissuePenalty: 1,
	}
}

// Stats is everything one 21164 run reports.
type Stats struct {
	Machine      string
	LVPConfig    string
	Cycles       int
	Instructions int

	LoadStates [trace.NumPredStates]int
	// PredictionsCancelled counts predictions dropped because the load
	// missed the L1 (paper §4.2: no penalty).
	PredictionsCancelled int
	// Squashes counts reissue-buffer redispatches (mispredicted values).
	Squashes int
	// MissStallCycles counts cycles lost to blocking L1 misses.
	MissStallCycles int

	L1     cache.Stats
	L2     cache.Stats
	Branch bpred.Stats
}

// IPC is instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// L1MissesPerInstruction is the paper's §6.1 metric ("miss rate ... per
// instruction").
func (s Stats) L1MissesPerInstruction() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.L1.Misses) / float64(s.Instructions)
}

// execLatency is the 21164 result latency (Table 5, AXP column).
func execLatency(op isa.Op) int {
	switch isa.ClassOf(op) {
	case isa.ClassComplexInt:
		if op == isa.MUL {
			return 8 // mull; Table 5's class bound is 16 (used for DIV/REM)
		}
		return 16
	case isa.ClassSimpleFP:
		return 4
	case isa.ClassComplexFP:
		return 36
	case isa.ClassStore:
		return 1
	case isa.ClassBranch:
		return 1
	default:
		return 1
	}
}

// Simulate runs the annotated trace through the in-order model. ann may be
// nil (no LVP hardware).
func Simulate(tr *trace.Trace, ann trace.Annotation, cfg Config, lvpName string) Stats {
	return SimulateObs(tr, ann, cfg, lvpName, nil)
}

// SimulateObs is Simulate with an event tracer: value-misprediction
// squashes and cancelled predictions on the sim channel, L1 misses on the
// cache channel. obsTr == nil is exactly Simulate.
//
// It is a thin wrapper over SimulateSourceObs on an in-memory slice source,
// so the in-memory and streaming paths share one cycle-level core.
func SimulateObs(tr *trace.Trace, ann trace.Annotation, cfg Config, lvpName string, obsTr *obs.Tracer) Stats {
	st, err := SimulateSourceObs(tr.StreamAnnotated(ann), cfg, lvpName, obsTr)
	if err != nil {
		// A slice source cannot fail.
		panic("axp21164: in-memory simulation failed: " + err.Error())
	}
	return st
}

// SimulateSource runs an annotated record stream through the in-order model
// in bounded memory: the machine is a strict forward pass, so only one
// record is live at a time. An error from the source (e.g. a trace decode
// failure) aborts the run.
func SimulateSource(src trace.AnnotatedSource, cfg Config, lvpName string) (Stats, error) {
	return SimulateSourceObs(src, cfg, lvpName, nil)
}

// SimulateSourceObs is SimulateSource with an event tracer.
func SimulateSourceObs(src trace.AnnotatedSource, cfg Config, lvpName string, obsTr *obs.Tracer) (Stats, error) {
	hier := &cache.Hierarchy{
		L1:        cache.MustNew(cfg.L1),
		L2:        cache.MustNew(cfg.L2),
		L1Latency: cfg.L1Latency, L2Latency: cfg.L2Latency, MemLatency: cfg.MemLatency,
		Tracer: obsTr,
	}
	bp := bpred.New(bpred.Default21164)
	st := Stats{Machine: cfg.Name, LVPConfig: lvpName}
	// The slab reader turns any upstream — span-capable, batch-capable, or
	// per-record — into slabs of records, so the in-order issue loop runs
	// over plain slices instead of the per-record interface chain.
	slab := trace.NewSlabReader(src)

	var readyG, readyF [isa.NumRegs]int
	cycle := 0
	barrier := 0 // no instruction may issue before this cycle
	intUsed, fpUsed, memUsed, totalUsed := 0, 0, 0, 0

	advance := func(to int) {
		if to <= cycle {
			to = cycle + 1
		}
		cycle = to
		intUsed, fpUsed, memUsed, totalUsed = 0, 0, 0, 0
	}

	for {
		recs, preds, err := slab.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Stats{}, err
		}
		for bi := range recs {
			r := &recs[bi]
			pred := trace.PredNone
			if preds != nil {
				pred = preds[bi]
			}
			st.Instructions++
			info := axpInfoOf(r.Op)
			f := info.flags

			// Earliest cycle the operands allow (strict in-order). The
			// read flags replay isa.Sources order (Ra then Rb); R0 is
			// always ready.
			start := max(cycle, barrier)
			if f&aReadsAny != 0 {
				if f&aReadsRaF != 0 {
					if rc := readyF[r.Ra]; rc > start {
						start = rc
					}
				} else if f&aReadsRaG != 0 && r.Ra != isa.R0 {
					if rc := readyG[r.Ra]; rc > start {
						start = rc
					}
				}
				if f&aReadsRbF != 0 {
					if rc := readyF[r.Rb]; rc > start {
						start = rc
					}
				} else if f&aReadsRbG != 0 && r.Rb != isa.R0 {
					if rc := readyG[r.Rb]; rc > start {
						start = rc
					}
				}
			}
			if start > cycle {
				advance(start)
			}
			// Slot constraints.
			fp := f&aFP != 0
			mem := f&(aLoad|aStore) != 0
			for totalUsed >= cfg.IssueWidth ||
				(mem && memUsed >= cfg.MemPerCycle) ||
				(fp && fpUsed >= cfg.FPSlots) ||
				(!fp && intUsed >= cfg.IntSlots) {
				advance(cycle + 1)
				if cycle < barrier {
					advance(barrier)
				}
			}

			// Issue at `cycle`.
			totalUsed++
			if fp {
				fpUsed++
			} else {
				intUsed++
			}
			done := cycle + int(info.lat)

			switch {
			case f&aLoad != 0:
				memUsed++
				done, barrier = issueLoad(r, pred, cycle, barrier, cfg, hier, &st, obsTr)
			case f&aStore != 0:
				memUsed++
				hier.Access(r.Addr)
				done = cycle + 1
			case f&aBranch != 0:
				if bp.Resolve(r) {
					// Redirect after resolution (Table 5: 0/4).
					barrier = max(barrier, cycle+1+cfg.BranchPenalty)
				}
			}

			// Destination availability, mirroring isa.Dest: an FPR dest
			// wins, a GPR dest counts only for a real register.
			if f&aDestF != 0 {
				readyF[r.Rd] = done
			} else if f&aDestG != 0 && r.Rd != isa.R0 {
				readyG[r.Rd] = done
			}
		}
	}
	st.Cycles = cycle + 1
	st.L1 = hier.L1.Stats()
	st.L2 = hier.L2.Stats()
	st.Branch = bp.Stats()
	return st, nil
}

// issueLoad handles one load under the paper's 21164 LVP rules and returns
// the cycle its value is available plus the updated issue barrier.
func issueLoad(r *trace.Record, pred trace.PredState, cycle, barrier int,
	cfg Config, hier *cache.Hierarchy, st *Stats, otr *obs.Tracer) (done int, newBarrier int) {
	newBarrier = barrier
	switch pred {
	case trace.PredConstant:
		// CVU-verified: completes without touching the memory system,
		// even if it would have missed (§4.2). Zero-cycle load.
		st.LoadStates[pred]++
		return cycle, newBarrier
	case trace.PredCorrect, trace.PredIncorrect:
		if !hier.ProbeL1(r.Addr) {
			// The 21164 cannot stall past dispatch, so predictions
			// on L1 misses are cancelled before any harm (§4.2).
			st.PredictionsCancelled++
			if otr.Enabled(obs.ChanSim) {
				otr.Emit(obs.ChanSim, "prediction-cancelled",
					slog.String("pc", fmt.Sprintf("%#x", r.PC)),
					slog.String("addr", fmt.Sprintf("%#x", r.Addr)),
					slog.Int("cycle", cycle))
			}
			st.LoadStates[trace.PredNone]++
			res := hier.Access(r.Addr)
			done = cycle + res.Latency
			if !cfg.NonBlocking {
				// Blocking miss: nothing issues until the fill.
				st.MissStallCycles += res.Latency
				newBarrier = max(newBarrier, done)
			}
			return done, newBarrier
		}
		res := hier.Access(r.Addr) // L1 hit
		st.LoadStates[pred]++
		if pred == trace.PredCorrect {
			// Dependents consumed the value at dispatch: the
			// zero-cycle load of Austin & Sohi the paper cites.
			return cycle, newBarrier
		}
		// Mispredict: discovered in the compare stage after the data
		// returns; everything in flight squashes and redispatches
		// with a one-cycle penalty.
		st.Squashes++
		done = cycle + res.Latency
		newBarrier = max(newBarrier, done+1+cfg.ReissuePenalty)
		if otr.Enabled(obs.ChanSim) {
			otr.Emit(obs.ChanSim, "value-squash",
				slog.String("pc", fmt.Sprintf("%#x", r.PC)),
				slog.String("addr", fmt.Sprintf("%#x", r.Addr)),
				slog.Int("cycle", cycle),
				slog.Int("reissue_at", newBarrier))
		}
		return done, newBarrier
	default:
		st.LoadStates[trace.PredNone]++
		res := hier.Access(r.Addr)
		done = cycle + res.Latency
		if !res.L1Hit && !cfg.NonBlocking {
			st.MissStallCycles += res.Latency
			newBarrier = max(newBarrier, done) // blocking miss, no MAF
		}
		return done, newBarrier
	}
}

func isFP(op isa.Op) bool {
	c := isa.ClassOf(op)
	return c == isa.ClassSimpleFP || c == isa.ClassComplexFP
}
