package axp21164

import (
	"testing"

	"lvp/internal/isa"
	"lvp/internal/trace"
)

func mkTrace(recs []trace.Record) *trace.Trace {
	pc := uint64(0x1000)
	for i := range recs {
		if recs[i].PC == 0 {
			recs[i].PC = pc
		}
		pc = recs[i].PC + isa.InstBytes
	}
	return &trace.Trace{Name: "t", Target: "axp", Records: recs}
}

func TestInOrderDualIssue(t *testing.T) {
	// Independent adds: 2 integer pipes -> IPC ~2.
	var recs []trace.Record
	for i := 0; i < 4000; i++ {
		recs = append(recs, trace.Record{Op: isa.ADD, Rd: isa.Reg(5 + i%8), Ra: 1, Rb: 2})
	}
	s := Simulate(mkTrace(recs), nil, Config21164(), "")
	if ipc := s.IPC(); ipc < 1.8 || ipc > 2.2 {
		t.Errorf("independent adds IPC = %.2f, want ~2 (two integer pipes)", ipc)
	}
}

func TestMixedIntFPWider(t *testing.T) {
	// Interleaved independent int and FP ops can use all four slots.
	var recs []trace.Record
	for i := 0; i < 2000; i++ {
		recs = append(recs,
			trace.Record{Op: isa.ADD, Rd: 5, Ra: 1, Rb: 2},
			trace.Record{Op: isa.SUB, Rd: 6, Ra: 1, Rb: 2},
			trace.Record{Op: isa.FADD, Rd: 7, Ra: 1, Rb: 2},
			trace.Record{Op: isa.FMUL, Rd: 8, Ra: 2, Rb: 3},
		)
	}
	s := Simulate(mkTrace(recs), nil, Config21164(), "")
	if ipc := s.IPC(); ipc < 3.0 {
		t.Errorf("mixed int/FP IPC = %.2f, want near 4", ipc)
	}
}

func TestInOrderStallsOnDependence(t *testing.T) {
	var recs []trace.Record
	for i := 0; i < 4000; i++ {
		recs = append(recs, trace.Record{Op: isa.ADD, Rd: 5, Ra: 5, Rb: 5})
	}
	s := Simulate(mkTrace(recs), nil, Config21164(), "")
	if ipc := s.IPC(); ipc > 1.05 {
		t.Errorf("dependent chain IPC = %.2f, must be ~1", ipc)
	}
}

func loadUseTrace(n int) *trace.Trace {
	var recs []trace.Record
	for i := 0; i < n; i++ {
		recs = append(recs,
			trace.Record{Op: isa.LD, Rd: 5, Ra: 1, Addr: 0x100000, Value: 7, Size: 8, Class: isa.LoadIntData},
			trace.Record{Op: isa.ADD, Rd: 6, Ra: 5, Rb: 2},
		)
	}
	return mkTrace(recs)
}

func annLoads(tr *trace.Trace, st trace.PredState) trace.Annotation {
	ann := trace.NewAnnotation(tr)
	for i := range tr.Records {
		if tr.Records[i].IsLoad() {
			ann[i] = st
		}
	}
	return ann
}

func TestZeroCycleLoadSpeedsUp(t *testing.T) {
	tr := loadUseTrace(2000)
	base := Simulate(tr, nil, Config21164(), "")
	pred := Simulate(tr, annLoads(tr, trace.PredCorrect), Config21164(), "p")
	if pred.Cycles >= base.Cycles {
		t.Errorf("correct predictions must help the in-order core: %d >= %d",
			pred.Cycles, base.Cycles)
	}
}

func TestSquashPenaltyOnMisprediction(t *testing.T) {
	tr := loadUseTrace(2000)
	base := Simulate(tr, nil, Config21164(), "")
	bad := Simulate(tr, annLoads(tr, trace.PredIncorrect), Config21164(), "b")
	if bad.Cycles <= base.Cycles {
		t.Errorf("mispredictions must cost: %d <= %d", bad.Cycles, base.Cycles)
	}
	if bad.Squashes == 0 {
		t.Error("expected reissue-buffer squashes")
	}
}

func TestConstantLoadBypassesMemoryEvenOnMiss(t *testing.T) {
	// Loads striding far beyond the 8KB L1: the baseline blocks on every
	// miss; constant-annotated loads never touch memory.
	var recs []trace.Record
	for i := 0; i < 2000; i++ {
		recs = append(recs,
			trace.Record{Op: isa.LD, Rd: 5, Ra: 1,
				Addr: uint64(0x100000 + (i%512)*4096), Value: 7, Size: 8, Class: isa.LoadIntData},
			trace.Record{Op: isa.ADD, Rd: 6, Ra: 5, Rb: 2},
		)
	}
	tr := mkTrace(recs)
	base := Simulate(tr, nil, Config21164(), "")
	cons := Simulate(tr, annLoads(tr, trace.PredConstant), Config21164(), "c")
	if cons.Cycles >= base.Cycles/2 {
		t.Errorf("CVU constants should eliminate miss stalls: %d vs %d",
			cons.Cycles, base.Cycles)
	}
	if cons.L1.Accesses != 0 {
		t.Errorf("constant loads must not access the L1 (got %d accesses)", cons.L1.Accesses)
	}
	if base.MissStallCycles == 0 {
		t.Error("baseline should suffer blocking-miss stalls")
	}
}

func TestPredictionCancelledOnL1Miss(t *testing.T) {
	// Same striding loads annotated Correct: the 21164 cancels the
	// prediction on an L1 miss with no penalty, so the run should cost
	// about the same as the unpredicted baseline.
	var recs []trace.Record
	for i := 0; i < 2000; i++ {
		recs = append(recs,
			trace.Record{Op: isa.LD, Rd: 5, Ra: 1,
				Addr: uint64(0x100000 + (i%512)*4096), Value: 7, Size: 8, Class: isa.LoadIntData},
			trace.Record{Op: isa.ADD, Rd: 6, Ra: 5, Rb: 2},
		)
	}
	tr := mkTrace(recs)
	base := Simulate(tr, nil, Config21164(), "")
	pred := Simulate(tr, annLoads(tr, trace.PredCorrect), Config21164(), "p")
	if pred.PredictionsCancelled == 0 {
		t.Error("expected cancelled predictions for missing loads")
	}
	ratio := float64(pred.Cycles) / float64(base.Cycles)
	if ratio > 1.02 {
		t.Errorf("cancelled predictions must not cost: ratio %.3f", ratio)
	}
}

func TestBlockingMissStallsPipe(t *testing.T) {
	// One missing load followed by many independent adds: with a
	// blocking (no-MAF) L1, the adds wait for the fill.
	recs := []trace.Record{
		{Op: isa.LD, Rd: 5, Ra: 1, Addr: 0xF00000, Value: 7, Size: 8, Class: isa.LoadIntData},
	}
	for i := 0; i < 40; i++ {
		recs = append(recs, trace.Record{Op: isa.ADD, Rd: 6, Ra: 1, Rb: 2})
	}
	s := Simulate(mkTrace(recs), nil, Config21164(), "")
	// 40 independent adds alone would take ~20 cycles; the miss adds a
	// memory-latency stall.
	if s.Cycles < Config21164().MemLatency {
		t.Errorf("blocking miss did not stall: %d cycles", s.Cycles)
	}
}

func TestBranchPenalty(t *testing.T) {
	mk := func(alternate bool) *trace.Trace {
		var recs []trace.Record
		for i := 0; i < 2000; i++ {
			taken := true
			if alternate {
				taken = i%2 == 0
			}
			recs = append(recs,
				trace.Record{PC: 0x1000, Op: isa.ADD, Rd: 5, Ra: 1, Rb: 2},
				trace.Record{PC: 0x1004, Op: isa.BEQ, Ra: 5, Rb: 5, Taken: taken, Targ: 0x1000},
			)
		}
		return &trace.Trace{Records: recs}
	}
	good := Simulate(mk(false), nil, Config21164(), "")
	bad := Simulate(mk(true), nil, Config21164(), "")
	if bad.Cycles <= good.Cycles {
		t.Errorf("alternating branches should cost more: %d <= %d", bad.Cycles, good.Cycles)
	}
}

func TestDeterministic(t *testing.T) {
	tr := loadUseTrace(500)
	a := Simulate(tr, nil, Config21164(), "")
	b := Simulate(tr, nil, Config21164(), "")
	if a.Cycles != b.Cycles || a.IPC() != b.IPC() {
		t.Error("nondeterministic simulation")
	}
}

func TestStatsBasics(t *testing.T) {
	tr := loadUseTrace(100)
	s := Simulate(tr, annLoads(tr, trace.PredCorrect), Config21164(), "Simple")
	if s.Machine != "21164" || s.LVPConfig != "Simple" {
		t.Errorf("labels: %q %q", s.Machine, s.LVPConfig)
	}
	if s.Instructions != 200 {
		t.Errorf("instructions = %d", s.Instructions)
	}
	if s.L1MissesPerInstruction() < 0 {
		t.Error("bad miss rate")
	}
	var zero Stats
	if zero.IPC() != 0 || zero.L1MissesPerInstruction() != 0 {
		t.Error("zero stats must not divide by zero")
	}
}

func TestComplexLatencies(t *testing.T) {
	// A dependent chain of MULs runs at ~8 cycles each; FDIVs at ~36.
	var recs []trace.Record
	for i := 0; i < 100; i++ {
		recs = append(recs, trace.Record{Op: isa.MUL, Rd: 5, Ra: 5, Rb: 5})
	}
	s := Simulate(mkTrace(recs), nil, Config21164(), "")
	if perOp := float64(s.Cycles) / 100; perOp < 7 || perOp > 10 {
		t.Errorf("dependent muls %.1f cycles/op, want ~8", perOp)
	}
	recs = nil
	for i := 0; i < 50; i++ {
		recs = append(recs, trace.Record{Op: isa.FDIV, Rd: 5, Ra: 5, Rb: 5})
	}
	s = Simulate(mkTrace(recs), nil, Config21164(), "")
	if perOp := float64(s.Cycles) / 50; perOp < 30 {
		t.Errorf("dependent fdivs %.1f cycles/op, want ~36", perOp)
	}
}

func TestNonBlockingConfigHelps(t *testing.T) {
	var recs []trace.Record
	for i := 0; i < 500; i++ {
		recs = append(recs,
			trace.Record{Op: isa.LD, Rd: isa.Reg(5 + i%8), Ra: 1,
				Addr: uint64(0x100000 + i*4096), Value: 1, Size: 8, Class: isa.LoadIntData},
			trace.Record{Op: isa.ADD, Rd: 20, Ra: 1, Rb: 2},
		)
	}
	tr := mkTrace(recs)
	blocking := Simulate(tr, nil, Config21164(), "")
	cfg := Config21164()
	cfg.NonBlocking = true
	maf := Simulate(tr, nil, cfg, "")
	if maf.Cycles >= blocking.Cycles {
		t.Errorf("MAF (%d cycles) should beat blocking misses (%d)", maf.Cycles, blocking.Cycles)
	}
}
