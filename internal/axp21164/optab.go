package axp21164

import "lvp/internal/isa"

// Per-opcode table behind the in-order issue loop. The loop used to call
// execLatency, isFP, Record.IsLoad/IsStore/IsBranch and isa.Sources/Dest for
// every dynamic instruction; axpTab precomputes one row per opcode at init
// *from* those functions, so they remain the single authority
// (TestAxpTabMatchesFunctions pins the table against them).

type aInfo struct {
	lat   int32
	flags uint16
}

const (
	aFP uint16 = 1 << iota
	aLoad
	aStore
	aBranch
	aDestG // writes a GPR (R0 filtered at the use site, like isa.Dest)
	aDestF
	aReadsRaG
	aReadsRaF
	aReadsRbG
	aReadsRbF
	aReadsAny = aReadsRaG | aReadsRaF | aReadsRbG | aReadsRbF
)

var axpTab [isa.NumOps]aInfo

// axpOutOfRange serves opcodes beyond NumOps (possible in a hand-built
// record), matching what execLatency computes through ClassOf's clamp.
var axpOutOfRange aInfo

func init() {
	build := func(op isa.Op) aInfo {
		info := aInfo{lat: int32(execLatency(op))}
		if isFP(op) {
			info.flags |= aFP
		}
		m := isa.MetaOf(op)
		if m.Load {
			info.flags |= aLoad
		}
		if m.Store {
			info.flags |= aStore
		}
		if m.Branch {
			info.flags |= aBranch
		}
		if m.WGPR {
			info.flags |= aDestG
		}
		if m.WFPR {
			info.flags |= aDestF
		}
		if m.ReadsRaG {
			info.flags |= aReadsRaG
		}
		if m.ReadsRaF {
			info.flags |= aReadsRaF
		}
		if m.ReadsRbG {
			info.flags |= aReadsRbG
		}
		if m.ReadsRbF {
			info.flags |= aReadsRbF
		}
		return info
	}
	for op := isa.Op(0); int(op) < isa.NumOps; op++ {
		axpTab[op] = build(op)
	}
	axpOutOfRange = build(isa.Op(isa.NumOps))
}

// axpInfoOf returns op's table row, clamping out-of-range opcodes the way
// isa.ClassOf does.
func axpInfoOf(op isa.Op) *aInfo {
	if int(op) >= isa.NumOps {
		return &axpOutOfRange
	}
	return &axpTab[op]
}
