// Package report renders the reproduced tables and figures as aligned ASCII
// tables and horizontal bar charts, the terminal stand-ins for the paper's
// figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid with a header row.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row (cells are stringified with %v).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table in the ActiveFormat.
func (t *Table) Render(w io.Writer) {
	if ActiveFormat == FormatCSV {
		t.renderCSV(w)
		return
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(cell)
			}
			// Right-align numeric-looking cells, left-align others.
			if looksNumeric(cell) {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(cell)
			} else {
				b.WriteString(cell)
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", max(1, total-2)))
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func looksNumeric(s string) bool {
	if s == "" {
		return false
	}
	digits := 0
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
			digits++
		case r == '.' || r == '-' || r == '+' || r == '%' || r == ',' || r == 'e':
		default:
			return false
		}
	}
	return digits > 0
}

// BarGroup is one labelled cluster of bars (e.g. one benchmark).
type BarGroup struct {
	Label  string
	Values []float64
}

// BarChart is a grouped horizontal bar chart: one row per (group, series).
type BarChart struct {
	Title  string
	Series []string // bar names within each group
	Groups []BarGroup
	// Max scales the bars; 0 means auto (max observed value).
	Max float64
	// Unit is appended to the printed value (e.g. "%").
	Unit string
	// Width is the bar width in characters (default 40).
	Width int
}

// Render writes the chart in the ActiveFormat.
func (c *BarChart) Render(w io.Writer) {
	if ActiveFormat == FormatCSV {
		c.renderCSV(w)
		return
	}
	if c.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", c.Title, strings.Repeat("=", len(c.Title)))
	}
	width := c.Width
	if width <= 0 {
		width = 40
	}
	maxV := c.Max
	if maxV <= 0 {
		for _, g := range c.Groups {
			for _, v := range g.Values {
				if v > maxV {
					maxV = v
				}
			}
		}
		if maxV <= 0 {
			maxV = 1
		}
	}
	labelW, seriesW := 0, 0
	for _, g := range c.Groups {
		labelW = max(labelW, len(g.Label))
	}
	for _, s := range c.Series {
		seriesW = max(seriesW, len(s))
	}
	for _, g := range c.Groups {
		for i, v := range g.Values {
			name := ""
			if i < len(c.Series) {
				name = c.Series[i]
			}
			filled := int(v / maxV * float64(width))
			filled = min(max(filled, 0), width)
			lbl := g.Label
			if i > 0 {
				lbl = ""
			}
			fmt.Fprintf(w, "%-*s  %-*s |%s%s| %.2f%s\n",
				labelW, lbl, seriesW, name,
				strings.Repeat("#", filled), strings.Repeat(" ", width-filled),
				v, c.Unit)
		}
	}
	fmt.Fprintln(w)
}
