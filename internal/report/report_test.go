package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := Table{
		Title:   "T",
		Columns: []string{"Name", "Value"},
	}
	tab.AddRow("alpha", 42)
	tab.AddRow("betaxx", "97.5%")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"T", "Name", "alpha", "42", "betaxx", "97.5%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns must align: "42" and "97.5%" are right-aligned under Value.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("unexpected line count: %d", len(lines))
	}
}

func TestLooksNumeric(t *testing.T) {
	yes := []string{"42", "-1.5", "97.5%", "1,024", "1.057"}
	no := []string{"alpha", "", "x42", "1.5x", "%"}
	for _, s := range yes {
		if !looksNumeric(s) {
			t.Errorf("%q should look numeric", s)
		}
	}
	for _, s := range no {
		if looksNumeric(s) {
			t.Errorf("%q should not look numeric", s)
		}
	}
}

func TestBarChartRender(t *testing.T) {
	c := BarChart{
		Title:  "Chart",
		Series: []string{"a", "b"},
		Groups: []BarGroup{
			{Label: "g1", Values: []float64{50, 100}},
			{Label: "g2", Values: []float64{0, 25}},
		},
		Max:  100,
		Unit: "%",
	}
	var buf bytes.Buffer
	c.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "g1") || !strings.Contains(out, "g2") {
		t.Errorf("missing group labels:\n%s", out)
	}
	// The 100-value bar must be longer than the 50-value bar.
	var len50, len100 int
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "50.00%") {
			len50 = strings.Count(line, "#")
		}
		if strings.Contains(line, "100.00%") {
			len100 = strings.Count(line, "#")
		}
	}
	if len100 <= len50 || len50 == 0 {
		t.Errorf("bar lengths wrong: 50%% -> %d chars, 100%% -> %d chars", len50, len100)
	}
}

func TestBarChartAutoscaleAndClamp(t *testing.T) {
	c := BarChart{
		Series: []string{"x"},
		Groups: []BarGroup{{Label: "g", Values: []float64{5}}},
		Width:  10,
	}
	var buf bytes.Buffer
	c.Render(&buf)
	if got := strings.Count(buf.String(), "#"); got != 10 {
		t.Errorf("autoscaled max bar = %d chars, want full width 10", got)
	}
	// Values above Max clamp instead of overflowing.
	c2 := BarChart{
		Series: []string{"x"},
		Groups: []BarGroup{{Label: "g", Values: []float64{500}}},
		Max:    100, Width: 10,
	}
	buf.Reset()
	c2.Render(&buf)
	if got := strings.Count(buf.String(), "#"); got != 10 {
		t.Errorf("overflow bar = %d chars, want clamped 10", got)
	}
}

func TestCSVFormat(t *testing.T) {
	old := ActiveFormat
	ActiveFormat = FormatCSV
	defer func() { ActiveFormat = old }()

	tab := Table{Title: "T", Columns: []string{"Name", "Rate"}}
	tab.AddRow("alpha", "97.5%")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "# T\n") || !strings.Contains(out, "Name,Rate") {
		t.Errorf("csv table header wrong:\n%s", out)
	}
	if !strings.Contains(out, "alpha,97.5\n") {
		t.Errorf("csv should strip %% suffixes:\n%s", out)
	}

	c := BarChart{Title: "C", Series: []string{"a"}, Groups: []BarGroup{
		{Label: "g", Values: []float64{1.2345}},
	}}
	buf.Reset()
	c.Render(&buf)
	out = buf.String()
	if !strings.Contains(out, "label,series,value") || !strings.Contains(out, "g,a,1.2345") {
		t.Errorf("csv chart wrong:\n%s", out)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1.5: "1.5", 1.0: "1", 0: "0", 1.23456: "1.2346", 100: "100",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
