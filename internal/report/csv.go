package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Format selects the rendering style for Table.Render and BarChart.Render.
type Format int

const (
	// FormatText renders aligned ASCII tables and bar charts (default).
	FormatText Format = iota
	// FormatCSV renders machine-readable CSV (one header row; bar charts
	// become label,series,value rows). Intended for plotting pipelines.
	FormatCSV
)

// ActiveFormat is consulted by Render. The lvpsim CLI sets it once at
// startup; it is not synchronised and should not be flipped concurrently
// with rendering.
var ActiveFormat = FormatText

func (t *Table) renderCSV(w io.Writer) {
	cw := csv.NewWriter(w)
	if t.Title != "" {
		cw.Write([]string{"# " + t.Title})
	}
	cw.Write(t.Columns)
	for _, row := range t.Rows {
		cw.Write(cleanCells(row))
	}
	cw.Flush()
}

func (c *BarChart) renderCSV(w io.Writer) {
	cw := csv.NewWriter(w)
	if c.Title != "" {
		cw.Write([]string{"# " + c.Title})
	}
	cw.Write([]string{"label", "series", "value"})
	for _, g := range c.Groups {
		for i, v := range g.Values {
			name := ""
			if i < len(c.Series) {
				name = c.Series[i]
			}
			cw.Write([]string{g.Label, name, trimFloat(v)})
		}
	}
	cw.Flush()
}

func cleanCells(row []string) []string {
	out := make([]string, len(row))
	for i, c := range row {
		out[i] = strings.TrimSuffix(c, "%")
	}
	return out
}
func trimFloat(v float64) string {
	// Four decimals is plenty for speedups and percentages.
	s := strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", v), "0"), ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}
