// Package locality measures load value locality as defined in paper §2: the
// fraction of dynamic loads that retrieve a value matching one of the last k
// unique values retrieved by the same static load.
//
// The measurement apparatus is the paper's, exactly (its footnote 1): a
// direct-mapped table with 1K entries indexed but NOT tagged by instruction
// address, holding k values per entry replaced LRU, so both constructive and
// destructive interference between static loads can occur.
package locality

import (
	"lvp/internal/isa"
	"lvp/internal/trace"
)

// DefaultEntries is the history-table size used throughout the paper.
const DefaultEntries = 1024

// HistoryTable is the untagged, direct-mapped value-history table.
type HistoryTable struct {
	depth   int
	mask    uint64
	values  []uint64 // entries*depth, MRU-first per entry
	lengths []int    // number of valid values per entry
}

// NewHistoryTable returns a table with the given number of entries (a power
// of two) and history depth per entry.
func NewHistoryTable(entries, depth int) *HistoryTable {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("locality: entries must be a positive power of two")
	}
	if depth < 1 {
		depth = 1
	}
	return &HistoryTable{
		depth:   depth,
		mask:    uint64(entries - 1),
		values:  make([]uint64, entries*depth),
		lengths: make([]int, entries),
	}
}

// Depth reports the history depth per entry.
func (h *HistoryTable) Depth() int { return h.depth }

func (h *HistoryTable) index(pc uint64) int {
	return int((pc / isa.InstBytes) & h.mask)
}

// Access checks whether value matches any of the entry's history values for
// the load at pc, then updates the history (move-to-front on hit, LRU
// replacement on miss).
func (h *HistoryTable) Access(pc, value uint64) bool {
	i := h.index(pc)
	vals := h.values[i*h.depth : i*h.depth+h.depth]
	n := h.lengths[i]
	for j := 0; j < n; j++ {
		if vals[j] == value {
			// Move to front (LRU update).
			copy(vals[1:j+1], vals[:j])
			vals[0] = value
			return true
		}
	}
	// Miss: insert at front, evicting the LRU value if full.
	if n < h.depth {
		h.lengths[i] = n + 1
		n++
	}
	copy(vals[1:n], vals[:n-1])
	vals[0] = value
	return false
}

// Peek reports whether value would hit, without updating (useful for
// oracle-style queries in tests).
func (h *HistoryTable) Peek(pc, value uint64) bool {
	i := h.index(pc)
	vals := h.values[i*h.depth : i*h.depth+h.depth]
	for j := 0; j < h.lengths[i]; j++ {
		if vals[j] == value {
			return true
		}
	}
	return false
}

// Ratio is a hit/total pair.
type Ratio struct {
	Hits  int
	Total int
}

// Percent reports 100*Hits/Total (0 when Total is 0).
func (r Ratio) Percent() float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.Hits) / float64(r.Total)
}

func (r *Ratio) add(hit bool) {
	r.Total++
	if hit {
		r.Hits++
	}
}

// Result is the value-locality measurement of one trace at one depth.
type Result struct {
	Depth   int
	Overall Ratio
	// ByClass breaks the measurement down by the paper's Figure 2 data
	// types (indexed by isa.LoadClass).
	ByClass [isa.NumLoadClasses]Ratio
}

// Measure computes value locality for every requested history depth in one
// pass over the trace.
func Measure(t *trace.Trace, entries int, depths ...int) []Result {
	m := NewMeter(entries, depths...)
	for i := range t.Records {
		m.Add(&t.Records[i])
	}
	return m.Results()
}

// Meter accumulates value locality record-at-a-time — the streaming
// counterpart of Measure, for traces that are never materialized in memory.
// Measure is implemented on top of it, so both paths share one accumulation.
type Meter struct {
	tables  []*HistoryTable
	results []Result
}

// NewMeter returns a Meter measuring every requested history depth.
func NewMeter(entries int, depths ...int) *Meter {
	if entries <= 0 {
		entries = DefaultEntries
	}
	m := &Meter{
		tables:  make([]*HistoryTable, len(depths)),
		results: make([]Result, len(depths)),
	}
	for i, d := range depths {
		m.tables[i] = NewHistoryTable(entries, d)
		m.results[i].Depth = d
	}
	return m
}

// Add accumulates one record; non-loads are ignored.
func (m *Meter) Add(r *trace.Record) {
	if !r.IsLoad() {
		return
	}
	for k, tab := range m.tables {
		hit := tab.Access(r.PC, r.Value)
		m.results[k].Overall.add(hit)
		m.results[k].ByClass[r.Class].add(hit)
	}
}

// Results returns the measurements accumulated so far.
func (m *Meter) Results() []Result { return m.results }
