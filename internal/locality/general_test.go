package locality

import (
	"testing"

	"lvp/internal/isa"
	"lvp/internal/trace"
)

func TestMeasureGeneralCoversAllWriters(t *testing.T) {
	tr := &trace.Trace{Records: []trace.Record{
		{PC: 0x1000, Op: isa.ADD, Rd: 5, Value: 7},
		{PC: 0x1000, Op: isa.ADD, Rd: 5, Value: 7}, // hit
		{PC: 0x1004, Op: isa.LD, Rd: 6, Value: 9, Addr: 0x100, Size: 8, Class: isa.LoadIntData},
		{PC: 0x1004, Op: isa.LD, Rd: 6, Value: 9, Addr: 0x100, Size: 8, Class: isa.LoadIntData}, // hit
		{PC: 0x1008, Op: isa.SD, Rb: 6, Addr: 0x100, Size: 8},                                   // not a writer
		{PC: 0x100C, Op: isa.BEQ},                                                               // not a writer
		{PC: 0x1010, Op: isa.FADD, Rd: 2, Value: 0x3FF0000000000000},
	}}
	res := MeasureGeneral(tr, 64, 1)
	r := res[0]
	if r.Overall.Total != 5 {
		t.Fatalf("writers counted = %d, want 5", r.Overall.Total)
	}
	if r.Overall.Hits != 2 {
		t.Errorf("hits = %d, want 2", r.Overall.Hits)
	}
	if r.ByClass[isa.ClassSimpleInt].Total != 2 {
		t.Errorf("simple-int total = %d, want 2", r.ByClass[isa.ClassSimpleInt].Total)
	}
	if r.ByClass[isa.ClassLoad].Hits != 1 {
		t.Errorf("load hits = %d, want 1", r.ByClass[isa.ClassLoad].Hits)
	}
	if r.ByClass[isa.ClassSimpleFP].Total != 1 {
		t.Errorf("fp total = %d, want 1", r.ByClass[isa.ClassSimpleFP].Total)
	}
}

func TestMeasureGeneralDepthsMonotone(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i < 300; i++ {
		tr.Records = append(tr.Records, trace.Record{
			PC: 0x1000, Op: isa.ADD, Rd: 5, Value: uint64(i % 4),
		})
	}
	res := MeasureGeneral(tr, 64, 1, 16)
	if res[1].Overall.Hits < res[0].Overall.Hits {
		t.Error("deeper history cannot hit less")
	}
	if res[1].Overall.Percent() < 90 {
		t.Errorf("period-4 values should be near-perfect at depth 16, got %.1f%%",
			res[1].Overall.Percent())
	}
}
