package locality

import (
	"testing"

	"lvp/internal/isa"
	"lvp/internal/trace"
)

func loadRec(pc, value uint64, class isa.LoadClass) trace.Record {
	return trace.Record{PC: pc, Op: isa.LD, Value: value, Size: 8, Class: class}
}

func TestDepthOneHitsOnRepeat(t *testing.T) {
	h := NewHistoryTable(16, 1)
	if h.Access(0x1000, 42) {
		t.Error("first access must miss")
	}
	if !h.Access(0x1000, 42) {
		t.Error("repeat must hit")
	}
	if h.Access(0x1000, 43) {
		t.Error("changed value must miss")
	}
	if h.Access(0x1000, 42) {
		t.Error("depth 1 must have forgotten 42 after seeing 43")
	}
}

func TestDeepHistoryRemembers(t *testing.T) {
	h := NewHistoryTable(16, 4)
	for v := uint64(1); v <= 4; v++ {
		h.Access(0x1000, v)
	}
	for v := uint64(1); v <= 4; v++ {
		if !h.Peek(0x1000, v) {
			t.Errorf("value %d should be in a depth-4 history", v)
		}
	}
	h.Access(0x1000, 5) // evicts LRU = 1
	if h.Peek(0x1000, 1) {
		t.Error("LRU value 1 should have been evicted")
	}
	if !h.Peek(0x1000, 5) || !h.Peek(0x1000, 2) {
		t.Error("values 2..5 should remain")
	}
}

func TestLRUMoveToFront(t *testing.T) {
	h := NewHistoryTable(16, 2)
	h.Access(0x1000, 1)
	h.Access(0x1000, 2)
	h.Access(0x1000, 1) // hit; 1 becomes MRU
	h.Access(0x1000, 3) // evicts 2, not 1
	if !h.Peek(0x1000, 1) {
		t.Error("1 was MRU and must survive")
	}
	if h.Peek(0x1000, 2) {
		t.Error("2 was LRU and must be gone")
	}
}

func TestUntaggedInterference(t *testing.T) {
	// Two PCs that map to the same entry of a 16-entry table interfere.
	h := NewHistoryTable(16, 1)
	pcA := uint64(0x1000)
	pcB := pcA + 16*isa.InstBytes // same index
	h.Access(pcA, 7)
	if !h.Access(pcB, 7) {
		t.Error("constructive interference: pcB should hit pcA's value")
	}
	h.Access(pcB, 9)
	if h.Access(pcA, 7) {
		t.Error("destructive interference: pcB should have evicted pcA's value")
	}
}

func TestMeasureOverallAndByClass(t *testing.T) {
	tr := &trace.Trace{Records: []trace.Record{
		loadRec(0x1000, 5, isa.LoadIntData),
		loadRec(0x1000, 5, isa.LoadIntData), // hit
		loadRec(0x1000, 5, isa.LoadIntData), // hit
		loadRec(0x2000, 1, isa.LoadInstAddr),
		loadRec(0x2000, 1, isa.LoadInstAddr), // hit
		loadRec(0x3000, 9, isa.LoadFPData),
		{PC: 0x4000, Op: isa.ADD}, // not a load: ignored
	}}
	res := Measure(tr, 1024, 1)
	if len(res) != 1 {
		t.Fatalf("want 1 result, got %d", len(res))
	}
	r := res[0]
	if r.Overall.Total != 6 || r.Overall.Hits != 3 {
		t.Errorf("overall = %d/%d, want 3/6", r.Overall.Hits, r.Overall.Total)
	}
	if got := r.ByClass[isa.LoadIntData]; got.Hits != 2 || got.Total != 3 {
		t.Errorf("int-data = %+v, want 2/3", got)
	}
	if got := r.ByClass[isa.LoadInstAddr]; got.Hits != 1 || got.Total != 2 {
		t.Errorf("inst-addr = %+v, want 1/2", got)
	}
	if got := r.ByClass[isa.LoadFPData]; got.Hits != 0 || got.Total != 1 {
		t.Errorf("fp = %+v, want 0/1", got)
	}
}

func TestMeasureMultipleDepthsMonotone(t *testing.T) {
	// Alternating values: depth 1 misses everything, depth 2 hits.
	var recs []trace.Record
	for i := 0; i < 100; i++ {
		recs = append(recs, loadRec(0x1000, uint64(i%2+10), isa.LoadIntData))
	}
	tr := &trace.Trace{Records: recs}
	res := Measure(tr, 1024, 1, 2, 16)
	if res[0].Overall.Hits != 0 {
		t.Errorf("depth-1 hits = %d, want 0 for alternating values", res[0].Overall.Hits)
	}
	if res[1].Overall.Hits != 98 {
		t.Errorf("depth-2 hits = %d, want 98", res[1].Overall.Hits)
	}
	if res[2].Overall.Hits < res[1].Overall.Hits {
		t.Error("deeper history can never hit less")
	}
}

func TestRatioPercent(t *testing.T) {
	if (Ratio{}).Percent() != 0 {
		t.Error("empty ratio must be 0%")
	}
	if got := (Ratio{Hits: 1, Total: 4}).Percent(); got != 25 {
		t.Errorf("percent = %v, want 25", got)
	}
}

func TestBadEntriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two entries must panic")
		}
	}()
	NewHistoryTable(1000, 1)
}
