package lvp

import "lvp/internal/isa"

// Classification is the LCT's verdict for one dynamic load.
type Classification uint8

const (
	// ClassNoPredict: do not predict this load.
	ClassNoPredict Classification = iota
	// ClassPredict: predict, verify against the memory hierarchy.
	ClassPredict
	// ClassConstant: predict, and attempt verification through the CVU.
	ClassConstant
)

func (c Classification) String() string {
	switch c {
	case ClassNoPredict:
		return "no-predict"
	case ClassPredict:
		return "predict"
	case ClassConstant:
		return "constant"
	}
	return "unknown"
}

// NumClasses is the number of Classification values, sizing the LCT's
// transition matrix.
const NumClasses = 3

// LCTStats counts classification events. Transitions is indexed
// [from][to] by Classification and counts every Update call by the
// classification pair it moved between (including self-transitions, e.g. a
// 2-bit counter stepping 0→1 stays no-predict). Plain ints: one LCT belongs
// to one Unit on one goroutine; aggregation into shared atomic counters
// happens once per annotation pass.
type LCTStats struct {
	Lookups     int64
	Updates     int64
	Transitions [NumClasses][NumClasses]int64
}

// LCT is the Load Classification Table (paper §3.2): a direct-mapped table
// of n-bit saturating counters indexed by the low-order bits of the load
// instruction address. With 2-bit counters the four states 0-3 map to
// {don't predict, don't predict, predict, constant}; with 1-bit counters the
// two states map to {don't predict, constant}.
type LCT struct {
	bits     int
	max      uint8
	mask     uint64
	counters []uint8
	// classTab maps every possible raw counter value to its classification
	// (classOf precomputed over the uint8 range), so the batched load path
	// classifies and records transitions with two table reads instead of
	// re-running the width-dependent branches per load.
	classTab [256]Classification
	stats    LCTStats
}

// NewLCT returns a table with the given entries (power of two) and counter
// width in bits.
func NewLCT(entries, bits int) *LCT {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("lvp: LCT entries must be a positive power of two")
	}
	if bits < 1 || bits > 8 {
		panic("lvp: LCT bits must be in [1,8]")
	}
	l := &LCT{
		bits:     bits,
		max:      uint8(1<<bits - 1),
		mask:     uint64(entries - 1),
		counters: make([]uint8, entries),
	}
	for v := 0; v < len(l.classTab); v++ {
		l.classTab[v] = l.classOf(uint8(v))
	}
	return l
}

func (l *LCT) index(pc uint64) int {
	return int((pc / isa.InstBytes) & l.mask)
}

// Classify reports how the load at pc should be handled.
func (l *LCT) Classify(pc uint64) Classification {
	l.stats.Lookups++
	return l.classOf(l.counters[l.index(pc)])
}

// classOf maps a raw counter value to its classification.
func (l *LCT) classOf(c uint8) Classification {
	if l.bits == 1 {
		// 1-bit counters: {don't predict, constant}.
		if c == 0 {
			return ClassNoPredict
		}
		return ClassConstant
	}
	switch {
	case c == l.max:
		return ClassConstant
	case c == l.max-1:
		return ClassPredict
	default:
		return ClassNoPredict
	}
}

// Update adjusts the counter after verification: incremented when the
// predicted value was correct, decremented otherwise (saturating).
func (l *LCT) Update(pc uint64, correct bool) {
	i := l.index(pc)
	c := l.counters[i]
	n := c
	if correct {
		if c < l.max {
			n = c + 1
		}
	} else if c > 0 {
		n = c - 1
	}
	l.counters[i] = n
	l.stats.Updates++
	l.stats.Transitions[l.classOf(c)][l.classOf(n)]++
}

// Stats returns the accumulated classification counters.
func (l *LCT) Stats() LCTStats { return l.stats }

// Counter exposes the raw counter value (for tests and introspection).
func (l *LCT) Counter(pc uint64) uint8 { return l.counters[l.index(pc)] }
