package lvp

// Property and table-driven tests of the tagged / set-associative LVPT
// organisations: tag matches keep aliases apart (where the untagged table
// silently serves foreign values), victims leave in exact LRU order, bad
// geometry panics at construction, and the hot path stays allocation-free.

import (
	"math/rand"
	"testing"

	"lvp/internal/isa"
)

// pcForLine returns the pc whose word-aligned line is n — the inverse of
// the normalisation every table applies.
func pcForLine(n uint64) uint64 { return n * isa.InstBytes }

// TestTaggedDetectsAliasUntaggedServes is the head-to-head the counters
// exist for: two loads sharing a 16-entry slot. The untagged table serves
// one load the other's value (undetected interference); the tagged table
// refuses (TagMisses), and re-tagging the slot is a counted AliasEvict.
func TestTaggedDetectsAliasUntaggedServes(t *testing.T) {
	pcA := pcForLine(3)
	pcB := pcForLine(3 + 16) // same index, different tag

	untagged := NewLVPT(16, 1)
	untagged.Update(pcA, 111)
	if v, ok := untagged.Predict(pcB); !ok || v != 111 {
		t.Fatalf("untagged Predict(B) = (%d, %v), want the foreign value (111, true)", v, ok)
	}

	tagged := NewTaggedLVPT(16, 1, 0)
	tagged.Update(pcA, 111)
	if v, ok := tagged.Predict(pcB); ok {
		t.Fatalf("tagged Predict(B) = (%d, true), want a declined tag miss", v)
	}
	if st := tagged.Stats(); st.TagMisses != 1 {
		t.Fatalf("TagMisses = %d, want 1", st.TagMisses)
	}

	// B takes the slot: a counted alias eviction; now A is the tag miss.
	tagged.Update(pcB, 222)
	if st := tagged.Stats(); st.AliasEvicts != 1 {
		t.Fatalf("AliasEvicts = %d, want 1", st.AliasEvicts)
	}
	if v, ok := tagged.Predict(pcB); !ok || v != 222 {
		t.Fatalf("tagged Predict(B) after re-tag = (%d, %v), want (222, true)", v, ok)
	}
	if _, ok := tagged.Predict(pcA); ok {
		t.Fatal("tagged Predict(A) after re-tag must decline")
	}
}

// TestAssocKeepsAliasesApart: with enough ways, loads that collide on a
// set coexist — every prediction is alias-free under tag match, and no
// interference is counted.
func TestAssocKeepsAliasesApart(t *testing.T) {
	tab := NewAssocLVPT(16, 4, 1, 0)                                         // 4 sets × 4 ways
	pcs := []uint64{pcForLine(1), pcForLine(5), pcForLine(9), pcForLine(13)} // all set 1
	for i, pc := range pcs {
		tab.Update(pc, uint64(100+i))
	}
	for i, pc := range pcs {
		if v, ok := tab.Predict(pc); !ok || v != uint64(100+i) {
			t.Fatalf("way %d: Predict = (%d, %v), want (%d, true)", i, v, ok, 100+i)
		}
	}
	if st := tab.Stats(); st.TagMisses != 0 || st.AliasEvicts != 0 {
		t.Fatalf("co-resident aliases counted interference: %+v", st)
	}
}

// TestAssocLRUVictimOrder pins the victim sequence of a full set: invalid
// ways fill first in way order, then strictly least-recently-updated.
func TestAssocLRUVictimOrder(t *testing.T) {
	tab := NewAssocLVPT(8, 2, 1, 0)                                        // 4 sets × 2 ways
	a, b, c, d := pcForLine(2), pcForLine(6), pcForLine(10), pcForLine(14) // all set 2

	tab.Update(a, 1)
	tab.Update(b, 2)
	tab.Update(a, 1) // refresh A's recency (value unchanged)
	tab.Update(c, 3) // full set: victim must be B, the LRU way
	if _, ok := tab.Predict(b); ok {
		t.Fatal("B should have been the LRU victim")
	}
	for _, probe := range []struct {
		pc   uint64
		want uint64
	}{{a, 1}, {c, 3}} {
		if v, ok := tab.Predict(probe.pc); !ok || v != probe.want {
			t.Fatalf("Predict(%#x) = (%d, %v), want (%d, true)", probe.pc, v, ok, probe.want)
		}
	}

	// Next insertion evicts A (C is younger).
	tab.Update(d, 4)
	if _, ok := tab.Predict(a); ok {
		t.Fatal("A should have been the second LRU victim")
	}
	if v, ok := tab.Predict(d); !ok || v != 4 {
		t.Fatalf("Predict(D) = (%d, %v), want (4, true)", v, ok)
	}
	if st := tab.Stats(); st.AliasEvicts != 2 {
		t.Fatalf("AliasEvicts = %d, want 2 (both victims were live)", st.AliasEvicts)
	}
}

// TestAssocPredictIsPureRead pins that the prediction path never perturbs
// recency: only Update touches the LRU stamps, so re-querying cannot
// change a future victim.
func TestAssocPredictIsPureRead(t *testing.T) {
	tab := NewAssocLVPT(8, 2, 1, 0)
	a, b, c := pcForLine(0), pcForLine(4), pcForLine(8) // all set 0
	tab.Update(a, 1)
	tab.Update(b, 2)
	for i := 0; i < 10; i++ {
		tab.Predict(a) // if reads refreshed recency, A would survive
	}
	tab.Update(c, 3)
	if _, ok := tab.Predict(a); ok {
		t.Fatal("A survived eviction: Predict must not refresh LRU recency")
	}
	if v, ok := tab.Predict(b); !ok || v != 2 {
		t.Fatalf("Predict(B) = (%d, %v), want (2, true)", v, ok)
	}
}

// TestAssocAliasFreeProperty is the randomized guarantee the tags buy:
// with exact tags (the pc domain fits in setBits+tagBits), whenever the
// table speaks, the value is the MRU value of that exact pc — never a
// foreign entry's. The untagged table cannot make this promise.
func TestAssocAliasFreeProperty(t *testing.T) {
	steps := 20_000
	if testing.Short() {
		steps = 4_000
	}
	for _, ways := range []int{1, 2, 4} {
		rnd := rand.New(rand.NewSource(int64(41 + ways)))
		tab := NewAssocLVPT(64, ways, 1, 8) // lines < 2^(setBits+8): tags exact
		shadow := make(map[uint64]uint64)   // pc -> last updated value
		for step := 0; step < steps; step++ {
			pc := pcForLine(uint64(rnd.Intn(1024)))
			if rnd.Intn(2) == 0 {
				v := rnd.Uint64()
				tab.Update(pc, v)
				shadow[pc] = v
				continue
			}
			if v, ok := tab.Predict(pc); ok && v != shadow[pc] {
				t.Fatalf("%d-way step %d: Predict(%#x) spoke %d, but this pc last stored %d (foreign value served)",
					ways, step, pc, v, shadow[pc])
			}
		}
	}
}

// TestAssocDepthHistoryMRU pins the deep-history semantics against the
// untagged table's: MRU insertion, Contains over the live prefix, value
// re-touch reorders without a visible change, and full-history
// displacement counts a Replacement.
func TestAssocDepthHistoryMRU(t *testing.T) {
	tab := NewTaggedLVPT(16, 3, 0)
	pc := pcForLine(5)
	for _, v := range []uint64{1, 2, 3} {
		if !tab.Update(pc, v) {
			t.Fatalf("Update(%d) on a non-full history must report a change", v)
		}
	}
	if !tab.Update(pc, 4) { // displaces 1
		t.Fatal("displacing Update must report a change")
	}
	if st := tab.Stats(); st.Replacements != 1 {
		t.Fatalf("Replacements = %d, want 1", st.Replacements)
	}
	if tab.Contains(pc, 1) {
		t.Fatal("displaced value still reported present")
	}
	for _, v := range []uint64{2, 3, 4} {
		if !tab.Contains(pc, v) {
			t.Fatalf("Contains(%d) = false, want true", v)
		}
	}
	if v, _ := tab.Predict(pc); v != 4 {
		t.Fatalf("MRU = %d, want 4", v)
	}
	// Re-touching a present value reorders the history but changes nothing
	// visible — the CVU invalidation discipline depends on this.
	if tab.Update(pc, 2) {
		t.Fatal("re-touching a present value must not report a change")
	}
	if v, _ := tab.Predict(pc); v != 2 {
		t.Fatalf("MRU after re-touch = %d, want 2", v)
	}
}

// TestAssocMatchesUntaggedWithoutAliasing: when the pc domain is smaller
// than the set count no load ever aliases, and all three organisations
// must behave identically (and count zero interference).
func TestAssocMatchesUntaggedWithoutAliasing(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	untagged := NewLVPT(64, 2)
	tagged := NewTaggedLVPT(64, 2, 8)
	assoc := NewAssocLVPT(64, 4, 2, 8) // 16 sets
	for step := 0; step < 10_000; step++ {
		pc := pcForLine(uint64(rnd.Intn(16))) // < sets of every table
		if rnd.Intn(2) == 0 {
			v := uint64(rnd.Intn(5))
			cu := untagged.Update(pc, v)
			ct := tagged.Update(pc, v)
			ca := assoc.Update(pc, v)
			if cu != ct || cu != ca {
				t.Fatalf("step %d: Update changed flags diverge: untagged %v tagged %v assoc %v",
					step, cu, ct, ca)
			}
			continue
		}
		uv, uok := untagged.Predict(pc)
		tv, tok := tagged.Predict(pc)
		av, aok := assoc.Predict(pc)
		if uv != tv || uok != tok || uv != av || uok != aok {
			t.Fatalf("step %d: Predict(%#x) diverges: untagged (%d,%v) tagged (%d,%v) assoc (%d,%v)",
				step, pc, uv, uok, tv, tok, av, aok)
		}
	}
	for name, st := range map[string]LVPTStats{"tagged": tagged.Stats(), "assoc": assoc.Stats()} {
		if st.TagMisses != 0 || st.AliasEvicts != 0 {
			t.Fatalf("%s counted interference without aliasing: %+v", name, st)
		}
	}
}

// TestAssocBadGeometryPanics sweeps the constructor's validation.
func TestAssocBadGeometryPanics(t *testing.T) {
	cases := []struct {
		name                          string
		entries, ways, depth, tagBits int
	}{
		{"zero entries", 0, 1, 1, 8},
		{"non-pow2 entries", 24, 1, 1, 8},
		{"negative entries", -16, 1, 1, 8},
		{"zero ways", 16, 0, 1, 8},
		{"non-pow2 ways", 16, 3, 1, 8},
		{"ways exceed entries", 16, 32, 1, 8},
		{"tag too wide", 16, 1, 1, 33},
		{"negative tag", 16, 1, 1, -4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewAssocLVPT(%d, %d, %d, %d) did not panic",
						tc.entries, tc.ways, tc.depth, tc.tagBits)
				}
			}()
			NewAssocLVPT(tc.entries, tc.ways, tc.depth, tc.tagBits)
		})
	}
}

// TestAssocWays pins the constructor's associativity reporting and the
// tagged convenience wrapper.
func TestAssocWays(t *testing.T) {
	if w := NewTaggedLVPT(16, 1, 0).Ways(); w != 1 {
		t.Fatalf("tagged Ways = %d, want 1", w)
	}
	if w := NewAssocLVPT(16, 4, 1, 0).Ways(); w != 4 {
		t.Fatalf("assoc Ways = %d, want 4", w)
	}
}

// TestAssocOpsAllocFree pins zero allocations on the full operation mix.
func TestAssocOpsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	tab := NewAssocLVPT(32, 4, 3, 8)
	rnd := rand.New(rand.NewSource(5))
	work := func() {
		pc := pcForLine(uint64(rnd.Intn(256)))
		switch rnd.Intn(4) {
		case 0:
			tab.Predict(pc)
		case 1:
			tab.Contains(pc, uint64(rnd.Intn(8)))
		default:
			tab.Update(pc, uint64(rnd.Intn(8)))
		}
	}
	for i := 0; i < 10_000; i++ {
		work()
	}
	if avg := testing.AllocsPerRun(10_000, work); avg != 0 {
		t.Fatalf("assoc LVPT ops allocate %v allocs/op, want 0", avg)
	}
}
