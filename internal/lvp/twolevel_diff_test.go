package lvp

// Differential proof of the two-level VHT/VPT predictor. referenceTwoLevel
// is the obvious map-based model: per-PC histories and VPT slots live in
// maps, the signature hash is re-derived from its specification (the
// doc comment on TwoLevel.slot), and every decision — speak or decline,
// confirm, demote, or replace — is re-taken with auditable code. The
// randomized differential drives both implementations through identical
// operation sequences and demands full-state identity after every op:
// every return value, every stat counter, the exact trained VPT slot set
// (values and confidence — which pins replacement victims), and every VHT
// history.

import (
	"math/rand"
	"reflect"
	"testing"

	"lvp/internal/isa"
)

// refVPTSlot is one trained VPT slot of the reference model.
type refVPTSlot struct {
	val  uint64
	conf int
}

// referenceTwoLevel is the map-based reference model. Deliberately naive:
// histories as slices in a map, slots in a map, modulo instead of masks.
type referenceTwoLevel struct {
	cfg    TwoLevelConfig
	thresh int
	hist   map[int][]uint64 // VHT entry -> k values, MRU first; absent = zeros
	vpt    map[int]refVPTSlot
	stats  TwoLevelStats
}

func newReferenceTwoLevel(cfg TwoLevelConfig) *referenceTwoLevel {
	confMax := 1<<cfg.ConfBits - 1
	thresh := cfg.ConfThreshold
	if thresh > confMax {
		thresh = confMax
	}
	if thresh < 1 {
		thresh = 1
	}
	return &referenceTwoLevel{
		cfg:    cfg,
		thresh: thresh,
		hist:   make(map[int][]uint64),
		vpt:    make(map[int]refVPTSlot),
	}
}

func (r *referenceTwoLevel) vhtIndex(pc uint64) int {
	return int((pc / isa.InstBytes) % uint64(r.cfg.VHTEntries))
}

// history returns the entry's k values, materializing the all-zeros
// history a fresh table starts with.
func (r *referenceTwoLevel) history(pc uint64) []uint64 {
	if h, ok := r.hist[r.vhtIndex(pc)]; ok {
		return h
	}
	return make([]uint64, r.cfg.HistLen)
}

// slot re-derives the signature hash from its specification: starting from
// the word-aligned pc, fold each history value in MRU-first, diffusing with
// the Fibonacci multiplier and a shift-xor; reduce modulo the VPT size.
func (r *referenceTwoLevel) slot(pc uint64) int {
	h := pc / isa.InstBytes
	for _, v := range r.history(pc) {
		h = (h ^ v) * 0x9E3779B97F4A7C15
		h ^= h >> 29
	}
	return int(h % uint64(r.cfg.VPTEntries))
}

func (r *referenceTwoLevel) Lookup(pc uint64) (uint64, bool) {
	r.stats.Lookups++
	s, ok := r.vpt[r.slot(pc)]
	if !ok || s.conf < r.thresh {
		return 0, false
	}
	r.stats.Predicted++
	return s.val, true
}

func (r *referenceTwoLevel) Update(pc, actual uint64) {
	r.stats.Updates++
	si := r.slot(pc)
	s, trained := r.vpt[si]
	confMax := 1<<r.cfg.ConfBits - 1
	switch {
	case trained && s.val == actual:
		r.stats.Confirms++
		if s.conf < confMax {
			s.conf++
		}
	case !trained:
		s = refVPTSlot{val: actual, conf: 1}
	case s.conf > 0:
		r.stats.Demotes++
		s.conf--
	default:
		r.stats.Replacements++
		s = refVPTSlot{val: actual, conf: 1}
	}
	r.vpt[si] = s
	h := r.history(pc)
	h = append([]uint64{actual}, h[:r.cfg.HistLen-1]...)
	r.hist[r.vhtIndex(pc)] = h
}

// vptSnapshot materializes the implementation's trained VPT slots. Value
// AND confidence equality pins not just current predictions but future
// replacement victims (a slot replaces only at confidence zero).
func (p *TwoLevel) vptSnapshot() map[int]refVPTSlot {
	snap := make(map[int]refVPTSlot)
	for i, ok := range p.vvals {
		if ok {
			snap[i] = refVPTSlot{val: p.vals[i], conf: int(p.conf[i])}
		}
	}
	return snap
}

func (r *referenceTwoLevel) vptSnapshot() map[int]refVPTSlot {
	snap := make(map[int]refVPTSlot, len(r.vpt))
	for i, s := range r.vpt {
		snap[i] = s
	}
	return snap
}

// checkTwoLevelState fails on any observable divergence between the flat
// implementation and the map reference.
func checkTwoLevelState(t *testing.T, step int, got *TwoLevel, want *referenceTwoLevel) {
	t.Helper()
	if g, w := got.Stats(), want.stats; g != w {
		t.Fatalf("step %d: stats diverged:\n flat      %+v\n reference %+v", step, g, w)
	}
	if g, w := got.vptSnapshot(), want.vptSnapshot(); !reflect.DeepEqual(g, w) {
		t.Fatalf("step %d: VPT slots diverged:\n flat      %v\n reference %v", step, g, w)
	}
	k := want.cfg.HistLen
	for e := 0; e < want.cfg.VHTEntries; e++ {
		gh := got.hist[e*k : e*k+k]
		wh, ok := want.hist[e]
		if !ok {
			wh = make([]uint64, k)
		}
		if !reflect.DeepEqual(append([]uint64{}, gh...), wh) {
			t.Fatalf("step %d: VHT entry %d diverged: flat %v, reference %v", step, e, gh, wh)
		}
	}
}

// twoLevelOp is one step of a differential script.
type twoLevelOp struct {
	kind int // 0 lookup, 1 predict, 2 update
	pc   uint64
	val  uint64
}

func applyTwoLevelOp(t *testing.T, step int, op twoLevelOp, got *TwoLevel, want *referenceTwoLevel) {
	t.Helper()
	switch op.kind {
	case 0:
		gv, gok := got.Lookup(op.pc)
		wv, wok := want.Lookup(op.pc)
		if gv != wv || gok != wok {
			t.Fatalf("step %d: Lookup(%#x) = (%d, %v), reference (%d, %v)",
				step, op.pc, gv, gok, wv, wok)
		}
	case 1:
		g := got.Predict(op.pc)
		wv, wok := want.Lookup(op.pc)
		if !wok {
			wv = 0
		}
		if g != wv {
			t.Fatalf("step %d: Predict(%#x) = %d, reference %d", step, op.pc, g, wv)
		}
	case 2:
		got.Update(op.pc, op.val)
		want.Update(op.pc, op.val)
	}
	checkTwoLevelState(t, step, got, want)
}

// randomTwoLevelOp draws from a collision-heavy regime: a pc window much
// wider than the VHT (entries alias), values from a small palette (the same
// signatures recur, so slots confirm, demote and replace) salted with
// occasional arbitrary values.
func randomTwoLevelOp(rnd *rand.Rand, cfg TwoLevelConfig) twoLevelOp {
	op := twoLevelOp{kind: rnd.Intn(3)}
	op.pc = uint64(rnd.Intn(cfg.VHTEntries*6)) * isa.InstBytes
	if rnd.Intn(8) == 0 {
		op.pc += uint64(rnd.Intn(int(isa.InstBytes))) // unaligned pcs too
	}
	if rnd.Intn(6) == 0 {
		op.val = rnd.Uint64()
	} else {
		op.val = uint64(rnd.Intn(7))
	}
	return op
}

// TestTwoLevelDifferential is the equivalence proof: several geometries
// (including degenerate k=1 and 1-bit confidence), many seeds, full-state
// comparison after every op.
func TestTwoLevelDifferential(t *testing.T) {
	steps := 3000
	if testing.Short() {
		steps = 600
	}
	geometries := []TwoLevelConfig{
		{VHTEntries: 8, HistLen: 1, VPTEntries: 16, ConfBits: 1, ConfThreshold: 1},
		{VHTEntries: 8, HistLen: 2, VPTEntries: 16, ConfBits: 2, ConfThreshold: 2},
		{VHTEntries: 16, HistLen: 4, VPTEntries: 64, ConfBits: 3, ConfThreshold: 5},
		{VHTEntries: 4, HistLen: 3, VPTEntries: 8, ConfBits: 2, ConfThreshold: 9}, // thresh clamps to confMax
	}
	for _, cfg := range geometries {
		for seed := int64(0); seed < 8; seed++ {
			rnd := rand.New(rand.NewSource(seed*977 + int64(cfg.VPTEntries)))
			got := NewTwoLevel(cfg)
			want := newReferenceTwoLevel(cfg)
			for step := 0; step < steps; step++ {
				applyTwoLevelOp(t, step, randomTwoLevelOp(rnd, cfg), got, want)
			}
		}
	}
}

// FuzzTwoLevelDifferential interprets the fuzz input as an operation
// script, so the fuzzer can hunt for divergent sequences beyond the random
// regime. Each op consumes 3 bytes: kind, pc selector, value selector —
// small domains keep the VHT aliasing and the signatures colliding.
func FuzzTwoLevelDifferential(f *testing.F) {
	f.Add([]byte{2, 0, 5, 2, 0, 5, 0, 0, 0})          // train then look up
	f.Add([]byte{2, 8, 1, 2, 0, 1, 2, 8, 2, 0, 8, 0}) // aliasing pcs
	f.Fuzz(func(t *testing.T, script []byte) {
		cfg := TwoLevelConfig{VHTEntries: 4, HistLen: 2, VPTEntries: 8, ConfBits: 2, ConfThreshold: 2}
		got := NewTwoLevel(cfg)
		want := newReferenceTwoLevel(cfg)
		for step := 0; len(script) >= 3; step++ {
			op := twoLevelOp{
				kind: int(script[0] % 3),
				pc:   uint64(script[1]) * isa.InstBytes,
				val:  uint64(script[2] % 16),
			}
			script = script[3:]
			applyTwoLevelOp(t, step, op, got, want)
		}
	})
}

// TestTwoLevelLearnsConstant pins the confidence ramp on the simplest
// workload: a constant load speaks within three updates and stays right.
func TestTwoLevelLearnsConstant(t *testing.T) {
	p := NewTwoLevel(TwoLevelConfig{VHTEntries: 16, HistLen: 1, VPTEntries: 64, ConfBits: 2, ConfThreshold: 2})
	pc := uint64(0x1000)
	if _, ok := p.Lookup(pc); ok {
		t.Fatal("cold predictor must decline")
	}
	for i := 0; i < 3; i++ {
		p.Update(pc, 42)
	}
	if v, ok := p.Lookup(pc); !ok || v != 42 {
		t.Fatalf("after 3 constant updates Lookup = (%d, %v), want (42, true)", v, ok)
	}
	if st := p.Stats(); st.Confirms == 0 {
		t.Fatalf("constant training recorded no confirms: %+v", st)
	}
}

// TestTwoLevelLearnsCycle is the predictor's raison d'être: a value
// sequence no last-value or stride predictor can track. After warm-up the
// history signature disambiguates every position of the cycle.
func TestTwoLevelLearnsCycle(t *testing.T) {
	p := NewTwoLevel(TwoLevelConfig{VHTEntries: 16, HistLen: 2, VPTEntries: 256, ConfBits: 2, ConfThreshold: 2})
	pc := uint64(0x2000)
	seq := []uint64{3, 7, 9, 4}
	for range 8 {
		for _, v := range seq {
			p.Update(pc, v)
		}
	}
	for i, v := range seq {
		got, ok := p.Lookup(pc)
		if !ok || got != v {
			t.Fatalf("cycle position %d: Lookup = (%d, %v), want (%d, true)", i, got, ok, v)
		}
		p.Update(pc, v)
	}
}

// TestTwoLevelZeroConfigDefaults pins that zero-valued fields select the
// default geometry rather than panicking.
func TestTwoLevelZeroConfigDefaults(t *testing.T) {
	p := NewTwoLevel(TwoLevelConfig{})
	if p.Name() != "two-level" {
		t.Fatalf("Name = %q", p.Name())
	}
	if got, want := len(p.vals), DefaultTwoLevel.VPTEntries; got != want {
		t.Fatalf("default VPT size = %d, want %d", got, want)
	}
	if got, want := len(p.hist), DefaultTwoLevel.VHTEntries*DefaultTwoLevel.HistLen; got != want {
		t.Fatalf("default VHT size = %d, want %d", got, want)
	}
}

// TestTwoLevelBadGeometryPanics sweeps the constructor's validation.
func TestTwoLevelBadGeometryPanics(t *testing.T) {
	cases := []struct {
		name string
		cfg  TwoLevelConfig
	}{
		{"non-pow2 VHT", TwoLevelConfig{VHTEntries: 3}},
		{"negative VHT", TwoLevelConfig{VHTEntries: -8}},
		{"non-pow2 VPT", TwoLevelConfig{VPTEntries: 6}},
		{"negative history", TwoLevelConfig{HistLen: -1}},
		{"confidence too wide", TwoLevelConfig{ConfBits: 9}},
		{"negative confidence", TwoLevelConfig{ConfBits: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewTwoLevel(%+v) did not panic", tc.cfg)
				}
			}()
			NewTwoLevel(tc.cfg)
		})
	}
}

// TestTwoLevelOpsAllocFree pins the zero-allocation contract of the
// predict/update hot path.
func TestTwoLevelOpsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	p := NewTwoLevel(TwoLevelConfig{VHTEntries: 64, HistLen: 4, VPTEntries: 256, ConfBits: 2, ConfThreshold: 2})
	rnd := rand.New(rand.NewSource(3))
	work := func() {
		pc := uint64(rnd.Intn(256)) * isa.InstBytes
		switch rnd.Intn(3) {
		case 0:
			p.Lookup(pc)
		case 1:
			p.Predict(pc)
		case 2:
			p.Update(pc, uint64(rnd.Intn(8)))
		}
	}
	for i := 0; i < 10_000; i++ {
		work()
	}
	if avg := testing.AllocsPerRun(10_000, work); avg != 0 {
		t.Fatalf("two-level ops allocate %v allocs/op, want 0", avg)
	}
}
