package lvp

// Property-based tests (testing/quick) on the LVP unit's core data
// structures and on the annotator's global invariants.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lvp/internal/isa"
	"lvp/internal/trace"
)

func TestLVPTUpdateThenPredictProperty(t *testing.T) {
	// Depth-1 property: immediately after Update(pc, v), Predict(pc)
	// returns v.
	tab := NewLVPT(256, 1)
	f := func(pc, v uint64) bool {
		tab.Update(pc, v)
		got, ok := tab.Predict(pc)
		return ok && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLVPTContainsAfterUpdateProperty(t *testing.T) {
	tab := NewLVPT(256, 8)
	f := func(pc, v uint64) bool {
		tab.Update(pc, v)
		return tab.Contains(pc, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCVUCapacityInvariant(t *testing.T) {
	const capacity = 16
	c := NewCVU(capacity)
	rnd := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		switch rnd.Intn(4) {
		case 0, 1:
			c.Insert(uint64(rnd.Intn(256)), rnd.Intn(64))
		case 2:
			c.InvalidateAddr(uint64(rnd.Intn(256)), 1+rnd.Intn(8))
		case 3:
			c.Lookup(uint64(rnd.Intn(256)), rnd.Intn(64))
		}
		if c.Len() > capacity {
			t.Fatalf("CVU overflow: %d > %d", c.Len(), capacity)
		}
	}
}

func TestCVUInsertLookupProperty(t *testing.T) {
	f := func(addr uint64, idx uint16) bool {
		c := NewCVU(8)
		c.Insert(addr, int(idx))
		return c.Lookup(addr, int(idx))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCVUStoreInvalidatesExactlyOverlaps(t *testing.T) {
	f := func(loadAddr, storeAddr uint16, szSel uint8) bool {
		size := []int{1, 2, 4, 8}[szSel%4]
		c := NewCVU(8)
		c.Insert(uint64(loadAddr), 1)
		c.InvalidateAddr(uint64(storeAddr), size)
		// Entry covers [loadAddr, loadAddr+8); store covers
		// [storeAddr, storeAddr+size).
		overlap := uint64(loadAddr)+8 > uint64(storeAddr) &&
			uint64(storeAddr)+uint64(size) > uint64(loadAddr)
		return c.Lookup(uint64(loadAddr), 1) == !overlap
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLCTCounterBounded(t *testing.T) {
	for _, bits := range []int{1, 2, 3} {
		l := NewLCT(64, bits)
		rnd := rand.New(rand.NewSource(int64(bits)))
		maxVal := uint8(1<<bits - 1)
		for i := 0; i < 2000; i++ {
			pc := uint64(rnd.Intn(256)) * isa.InstBytes
			l.Update(pc, rnd.Intn(2) == 0)
			if c := l.Counter(pc); c > maxVal {
				t.Fatalf("%d-bit counter out of range: %d", bits, c)
			}
		}
	}
}

// randomTrace builds a structurally valid, *memory-consistent* random
// trace: loads return the last value stored to their (8-byte aligned)
// address, so the CVU's coherence guarantee is actually testable. (A
// generator that hands different values to repeated loads of an unwritten
// address describes a machine that cannot exist.)
func randomTrace(seed int64, n int) *trace.Trace {
	rnd := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{Name: "rnd", Target: "axp"}
	mem := map[uint64]uint64{}
	ops := []isa.Op{isa.ADD, isa.LD, isa.LD, isa.SD, isa.BEQ, isa.FLD, isa.FSD}
	for i := 0; i < n; i++ {
		op := ops[rnd.Intn(len(ops))]
		r := trace.Record{
			PC: uint64(0x1000 + 4*rnd.Intn(64)), Op: op,
			Rd: isa.Reg(rnd.Intn(32)), Ra: isa.Reg(rnd.Intn(32)), Rb: isa.Reg(rnd.Intn(32)),
		}
		if isa.IsLoad(op) || isa.IsStore(op) {
			r.Addr = uint64(0x10000 + 8*rnd.Intn(128))
			r.Size = 8
			if isa.IsStore(op) {
				v := uint64(rnd.Intn(16))
				mem[r.Addr] = v
				r.Value = v
			} else {
				r.Value = mem[r.Addr] // zero if never written
				r.Class = isa.LoadClass(1 + rnd.Intn(4))
			}
		}
		tr.Records = append(tr.Records, r)
	}
	return tr
}

func TestAnnotateInvariantsOnRandomTraces(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		tr := randomTrace(seed, 2000)
		for _, cfg := range Configs {
			ann, st, err := Annotate(tr, cfg)
			if err != nil {
				t.Fatalf("seed %d cfg %s: %v", seed, cfg.Name, err)
			}
			loads := 0
			for i, r := range tr.Records {
				if r.IsLoad() {
					loads++
					continue
				}
				if ann[i] != trace.PredNone {
					t.Fatalf("seed %d: non-load %d annotated %v", seed, i, ann[i])
				}
			}
			if st.Loads != loads {
				t.Fatalf("seed %d cfg %s: loads %d != %d", seed, cfg.Name, st.Loads, loads)
			}
			sum := 0
			for _, c := range st.States {
				sum += c
			}
			if sum != loads {
				t.Fatalf("seed %d cfg %s: state counts sum %d != loads %d",
					seed, cfg.Name, sum, loads)
			}
			// The invalidate-on-update discipline guarantees no CVU
			// coherence violations even under adversarial aliasing.
			if st.CoherenceViolations != 0 {
				t.Fatalf("seed %d cfg %s: %d coherence violations",
					seed, cfg.Name, st.CoherenceViolations)
			}
			// Table-3 style accounting must partition all loads.
			if st.PredictableTotal+st.UnpredictableTotal != loads && !cfg.Perfect {
				t.Fatalf("seed %d cfg %s: predictable+unpredictable != loads", seed, cfg.Name)
			}
		}
	}
}

func TestAnnotateDeterministic(t *testing.T) {
	tr := randomTrace(99, 3000)
	a1, s1, err := Annotate(tr, Simple)
	if err != nil {
		t.Fatal(err)
	}
	a2, s2, err := Annotate(tr, Simple)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("annotation differs at %d", i)
		}
	}
}
