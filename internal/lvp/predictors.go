package lvp

import (
	"lvp/internal/isa"
	"lvp/internal/locality"
	"lvp/internal/trace"
)

// Predictor is the interface for the value predictors the paper's §7
// ("future work") sketches beyond the last-value LVPT: stride detection and
// context-based prediction. They plug into MeasureAccuracy and the
// custompredictor example.
type Predictor interface {
	// Name identifies the predictor in reports.
	Name() string
	// Predict returns the predicted value for the load at pc.
	Predict(pc uint64) uint64
	// Update trains the predictor with the actual loaded value.
	Update(pc, actual uint64)
}

// LastValue is the baseline history-depth-1 LVPT as a Predictor.
type LastValue struct {
	t *LVPT
}

// NewLastValue returns a last-value predictor with the given table size.
func NewLastValue(entries int) *LastValue {
	return &LastValue{t: NewLVPT(entries, 1)}
}

// Name implements Predictor.
func (p *LastValue) Name() string { return "last-value" }

// Lookup implements ConfidencePredictor: cold entries decline.
func (p *LastValue) Lookup(pc uint64) (uint64, bool) { return p.t.Predict(pc) }

// Predict implements Predictor.
func (p *LastValue) Predict(pc uint64) uint64 {
	v, _ := p.t.Predict(pc)
	return v
}

// Update implements Predictor.
func (p *LastValue) Update(pc, actual uint64) { p.t.Update(pc, actual) }

// TableStats implements TableStatser.
func (p *LastValue) TableStats() LVPTStats { return p.t.Stats() }

// TableValue adapts any ValueTable organisation (untagged, tagged or
// set-associative) into a last-value Predictor, so the zoo can ablate table
// organisation with the prediction policy held fixed.
type TableValue struct {
	name string
	t    ValueTable
}

// NewTableValue wraps t as a Predictor reporting the given family name.
func NewTableValue(name string, t ValueTable) *TableValue {
	return &TableValue{name: name, t: t}
}

// Name implements Predictor.
func (p *TableValue) Name() string { return p.name }

// Lookup implements ConfidencePredictor: tag misses and cold sets decline.
func (p *TableValue) Lookup(pc uint64) (uint64, bool) { return p.t.Predict(pc) }

// Predict implements Predictor.
func (p *TableValue) Predict(pc uint64) uint64 {
	v, _ := p.t.Predict(pc)
	return v
}

// Update implements Predictor.
func (p *TableValue) Update(pc, actual uint64) { p.t.Update(pc, actual) }

// TableStats implements TableStatser.
func (p *TableValue) TableStats() LVPTStats { return p.t.Stats() }

// Stride predicts last + stride, with a two-delta confirmation: the stride
// is only replaced after the same new delta is seen twice in a row, which
// keeps one irregular value from destroying a stable stride (the classic
// stride-predictor refinement).
type Stride struct {
	mask    uint64
	last    []uint64
	stride  []uint64
	pending []uint64
	confirm []bool
	valid   []bool
}

// NewStride returns a stride predictor with the given table size (power of
// two).
func NewStride(entries int) *Stride {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("lvp: stride entries must be a positive power of two")
	}
	return &Stride{
		mask:    uint64(entries - 1),
		last:    make([]uint64, entries),
		stride:  make([]uint64, entries),
		pending: make([]uint64, entries),
		confirm: make([]bool, entries),
		valid:   make([]bool, entries),
	}
}

// Name implements Predictor.
func (p *Stride) Name() string { return "stride" }

func (p *Stride) index(pc uint64) int { return int((pc / isa.InstBytes) & p.mask) }

// Lookup implements ConfidencePredictor: cold entries decline.
func (p *Stride) Lookup(pc uint64) (uint64, bool) {
	i := p.index(pc)
	if !p.valid[i] {
		return 0, false
	}
	return p.last[i] + p.stride[i], true
}

// Predict implements Predictor.
func (p *Stride) Predict(pc uint64) uint64 {
	i := p.index(pc)
	if !p.valid[i] {
		return 0
	}
	return p.last[i] + p.stride[i]
}

// Update implements Predictor.
func (p *Stride) Update(pc, actual uint64) {
	i := p.index(pc)
	if p.valid[i] {
		delta := actual - p.last[i]
		switch {
		case delta == p.stride[i]:
			p.confirm[i] = false
		case p.confirm[i] && delta == p.pending[i]:
			p.stride[i] = delta
			p.confirm[i] = false
		default:
			p.pending[i] = delta
			p.confirm[i] = true
		}
	}
	p.last[i] = actual
	p.valid[i] = true
}

// Context is an order-2 finite-context predictor: the pair of the last two
// values observed by an entry selects a slot in a pattern table holding the
// value that followed that pair last time.
type Context struct {
	mask    uint64
	pmask   uint64
	last1   []uint64
	last2   []uint64
	pattern []uint64
	pvalid  []bool
}

// NewContext returns a context predictor with `entries` history entries and
// `patterns` pattern-table slots (both powers of two).
func NewContext(entries, patterns int) *Context {
	if entries <= 0 || entries&(entries-1) != 0 ||
		patterns <= 0 || patterns&(patterns-1) != 0 {
		panic("lvp: context table sizes must be positive powers of two")
	}
	return &Context{
		mask:    uint64(entries - 1),
		pmask:   uint64(patterns - 1),
		last1:   make([]uint64, entries),
		last2:   make([]uint64, entries),
		pattern: make([]uint64, patterns),
		pvalid:  make([]bool, patterns),
	}
}

// Name implements Predictor.
func (p *Context) Name() string { return "context-2" }

func (p *Context) index(pc uint64) int { return int((pc / isa.InstBytes) & p.mask) }

func (p *Context) slot(pc uint64) int {
	i := p.index(pc)
	h := p.last1[i]*0x9E3779B97F4A7C15 ^ p.last2[i]*0xBF58476D1CE4E5B9 ^ pc
	h ^= h >> 29
	return int(h & p.pmask)
}

// Lookup implements ConfidencePredictor: untrained pattern slots decline.
func (p *Context) Lookup(pc uint64) (uint64, bool) {
	s := p.slot(pc)
	if !p.pvalid[s] {
		return 0, false
	}
	return p.pattern[s], true
}

// Predict implements Predictor.
func (p *Context) Predict(pc uint64) uint64 {
	s := p.slot(pc)
	if !p.pvalid[s] {
		return 0
	}
	return p.pattern[s]
}

// Update implements Predictor.
func (p *Context) Update(pc, actual uint64) {
	s := p.slot(pc)
	p.pattern[s] = actual
	p.pvalid[s] = true
	i := p.index(pc)
	p.last2[i] = p.last1[i]
	p.last1[i] = actual
}

// MeasureAccuracy runs a predictor over every load in the trace and reports
// the fraction predicted exactly.
func MeasureAccuracy(t *trace.Trace, p Predictor) locality.Ratio {
	var r locality.Ratio
	for i := range t.Records {
		rec := &t.Records[i]
		if !rec.IsLoad() {
			continue
		}
		r.Total++
		if p.Predict(rec.PC) == rec.Value {
			r.Hits++
		}
		p.Update(rec.PC, rec.Value)
	}
	return r
}

// TwoValue is a buildable depth-2 value predictor: each entry holds two
// values and a 2-bit selector trained toward whichever value keeps being
// right. It is the realistic counterpart of the Limit configuration's
// depth-16 *oracle* — what "multiple values per static load" (paper §7)
// costs when the selection mechanism has to be real hardware.
type TwoValue struct {
	mask uint64
	v0   []uint64
	v1   []uint64
	sel  []uint8 // 2-bit: 0,1 -> v0; 2,3 -> v1
}

// NewTwoValue returns a two-value predictor with the given entries (power
// of two).
func NewTwoValue(entries int) *TwoValue {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("lvp: two-value entries must be a positive power of two")
	}
	return &TwoValue{
		mask: uint64(entries - 1),
		v0:   make([]uint64, entries),
		v1:   make([]uint64, entries),
		sel:  make([]uint8, entries),
	}
}

// Name implements Predictor.
func (p *TwoValue) Name() string { return "two-value" }

func (p *TwoValue) index(pc uint64) int { return int((pc / isa.InstBytes) & p.mask) }

// Predict implements Predictor.
func (p *TwoValue) Predict(pc uint64) uint64 {
	i := p.index(pc)
	if p.sel[i] >= 2 {
		return p.v1[i]
	}
	return p.v0[i]
}

// Update implements Predictor.
func (p *TwoValue) Update(pc, actual uint64) {
	i := p.index(pc)
	switch actual {
	case p.v0[i]:
		if p.sel[i] > 0 {
			p.sel[i]--
		}
	case p.v1[i]:
		if p.sel[i] < 3 {
			p.sel[i]++
		}
	default:
		// Replace the value the selector trusts less.
		if p.sel[i] >= 2 {
			p.v0[i] = actual
			if p.sel[i] > 0 {
				p.sel[i]--
			}
		} else {
			p.v1[i] = actual
			if p.sel[i] < 3 {
				p.sel[i]++
			}
		}
	}
}
