package lvp

import "lvp/internal/isa"

// LVPTStats counts table events. The counters are plain ints — each LVPT
// belongs to exactly one LVP Unit running on one goroutine — and are
// aggregated into atomic registry counters once per annotation pass.
type LVPTStats struct {
	// Lookups counts Predict/Contains queries; Hits counts the subset
	// that found a warm entry (at least one value in its history).
	Lookups int64
	Hits    int64
	// Updates counts Update calls; Replacements counts the subset that
	// displaced a value from a full history (the table's only form of
	// eviction — it is untagged, so there are no tag misses to count).
	Updates      int64
	Replacements int64
	// Interference counters, populated only by the tagged/set-associative
	// organisations (the untagged direct-mapped LVPT cannot observe its
	// own aliasing, which is exactly the paper's silent-interference
	// problem). TagMisses counts lookups that indexed a set holding only
	// foreign tags — an alias the tags detected and refused to predict
	// from. AliasEvicts counts updates that displaced a live entry with a
	// different tag — destructive interference made visible.
	TagMisses   int64
	AliasEvicts int64
}

// ValueTable is the storage contract of the LVP Unit's first-level value
// table. The untagged direct-mapped LVPT (paper §3.1) is the baseline
// implementation; AssocLVPT provides the tagged and set-associative
// organisations as drop-in alternatives (Config.LVPTStyle selects one).
type ValueTable interface {
	// Index reports the set/entry index used as the CVU coordinate.
	Index(pc uint64) int
	// Predict returns the MRU value for the load at pc; ok is false when
	// the table holds no usable history for it.
	Predict(pc uint64) (value uint64, ok bool)
	// Contains reports whether value appears in pc's history (the perfect
	// selection oracle for depths > 1).
	Contains(pc, value uint64) bool
	// Update records the actual value, reporting whether the entry's
	// contents changed (the CVU invalidation trigger).
	Update(pc, value uint64) (changed bool)
	// Stats returns the accumulated event counters.
	Stats() LVPTStats
}

// LVPT is the Load Value Prediction Table (paper §3.1): direct-mapped,
// untagged, indexed by the low-order bits of the load instruction address.
// Because it is untagged, static loads that alias the same entry interfere —
// constructively or destructively — exactly as in the paper.
type LVPT struct {
	depth   int
	mask    uint64
	values  []uint64
	lengths []int
	stats   LVPTStats
}

// NewLVPT returns a table with the given entries (power of two) and history
// depth.
func NewLVPT(entries, depth int) *LVPT {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("lvp: LVPT entries must be a positive power of two")
	}
	if depth < 1 {
		depth = 1
	}
	return &LVPT{
		depth:   depth,
		mask:    uint64(entries - 1),
		values:  make([]uint64, entries*depth),
		lengths: make([]int, entries),
	}
}

// Index reports the LVPT entry index for a load at pc. The same index is the
// one concatenated with the data address in CVU entries.
func (t *LVPT) Index(pc uint64) int {
	return int((pc / isa.InstBytes) & t.mask)
}

// Predict returns the predicted value for the load at pc. For history depth
// one this is simply the entry's value. For deeper histories the paper
// assumes a perfect selection mechanism, which the caller models by using
// Contains against the actual value; Predict then returns the MRU value.
// ok is false when the entry has no history yet (no prediction possible).
func (t *LVPT) Predict(pc uint64) (value uint64, ok bool) {
	i := t.Index(pc)
	t.stats.Lookups++
	if t.lengths[i] == 0 {
		return 0, false
	}
	t.stats.Hits++
	return t.values[i*t.depth], true
}

// Contains reports whether value appears anywhere in the entry's history —
// the oracle query backing the paper's "perfect selection mechanism" for
// history depths greater than one.
func (t *LVPT) Contains(pc, value uint64) bool {
	i := t.Index(pc)
	t.stats.Lookups++
	if t.lengths[i] > 0 {
		t.stats.Hits++
	}
	vals := t.values[i*t.depth : i*t.depth+t.depth]
	for j := 0; j < t.lengths[i]; j++ {
		if vals[j] == value {
			return true
		}
	}
	return false
}

// Update records the actual loaded value (MRU insertion with LRU
// replacement). It reports whether the entry's *contents* changed — i.e. the
// value was not already present, so an old value was displaced (or the entry
// grew). The caller uses this to invalidate CVU entries referring to this
// index, keeping the CVU's coherence guarantee exact.
func (t *LVPT) Update(pc, value uint64) (changed bool) {
	i := t.Index(pc)
	t.stats.Updates++
	vals := t.values[i*t.depth : i*t.depth+t.depth]
	n := t.lengths[i]
	for j := 0; j < n; j++ {
		if vals[j] == value {
			copy(vals[1:j+1], vals[:j])
			vals[0] = value
			return false
		}
	}
	if n < t.depth {
		t.lengths[i] = n + 1
		n++
	} else {
		t.stats.Replacements++
	}
	copy(vals[1:n], vals[:n-1])
	vals[0] = value
	return true
}

// Stats returns the accumulated table counters.
func (t *LVPT) Stats() LVPTStats { return t.stats }
