package lvp

import "lvp/internal/isa"

// TwoLevel is the two-level context-based value predictor the paper's §7
// leaves as future work, in the shape the gem5VP lineage standardised: a
// Value History Table (VHT) keeps the last k values each static load
// produced, a hash of that history — the value-history signature — indexes a
// Value Prediction Table (VPT) whose entries pair a predicted value with a
// saturating confidence counter. The predictor only speaks when confidence
// has reached the threshold; below it, Lookup declines (and Predict returns
// zero), which is what a real pipeline would do rather than inject a
// low-confidence value.
//
// Both tables are direct-mapped flat arrays, so the predict/update path is
// allocation-free. The VHT is untagged (per-PC entries alias like the
// paper's LVPT); the VPT is shared across loads whose signatures collide,
// which is the classic finite-context-method trade-off.
type TwoLevelConfig struct {
	// VHTEntries is the number of per-PC history entries (power of two).
	VHTEntries int
	// HistLen is k, the number of previous values per VHT entry (>= 1).
	HistLen int
	// VPTEntries is the number of signature-indexed prediction slots
	// (power of two).
	VPTEntries int
	// ConfBits is the confidence counter width (1..8).
	ConfBits int
	// ConfThreshold is the minimum counter value at which the predictor
	// speaks; clamped to the counter's saturation value.
	ConfThreshold int
}

// DefaultTwoLevel is the zoo's standard two-level geometry: 1K-entry VHT of
// depth-4 histories feeding a 4K-entry VPT with 2-bit confidence, predicting
// at counter >= 2.
var DefaultTwoLevel = TwoLevelConfig{
	VHTEntries:    1024,
	HistLen:       4,
	VPTEntries:    4096,
	ConfBits:      2,
	ConfThreshold: 2,
}

// TwoLevelStats counts predictor events. Plain ints: one predictor runs on
// one goroutine; aggregation into shared counters happens per sweep cell.
type TwoLevelStats struct {
	// Lookups counts Lookup/Predict calls; Predicted the subset where
	// confidence cleared the threshold (the predictor spoke).
	Lookups   int64
	Predicted int64
	// Updates counts training calls; Confirms the subset where the VPT
	// slot already held the actual value (confidence rose), Demotes the
	// mismatches that only lowered confidence, and Replacements the
	// mismatches that displaced the slot's value (its confidence had
	// reached zero — the VPT's eviction).
	Updates      int64
	Confirms     int64
	Demotes      int64
	Replacements int64
}

// TwoLevel implements the predictor. See TwoLevelConfig for the geometry.
type TwoLevel struct {
	k       int
	vhtMask uint64
	vptMask uint64
	thresh  uint8
	confMax uint8

	hist  []uint64 // VHT: entry i holds hist[i*k .. i*k+k), MRU at offset 0
	vals  []uint64 // VPT predicted values
	conf  []uint8  // VPT confidence counters
	vvals []bool   // VPT slot holds a trained value
	stats TwoLevelStats
}

// NewTwoLevel returns a two-level predictor; a zero-value field in cfg
// selects the DefaultTwoLevel value for that field.
func NewTwoLevel(cfg TwoLevelConfig) *TwoLevel {
	if cfg.VHTEntries == 0 {
		cfg.VHTEntries = DefaultTwoLevel.VHTEntries
	}
	if cfg.HistLen == 0 {
		cfg.HistLen = DefaultTwoLevel.HistLen
	}
	if cfg.VPTEntries == 0 {
		cfg.VPTEntries = DefaultTwoLevel.VPTEntries
	}
	if cfg.ConfBits == 0 {
		cfg.ConfBits = DefaultTwoLevel.ConfBits
	}
	if cfg.ConfThreshold == 0 {
		cfg.ConfThreshold = DefaultTwoLevel.ConfThreshold
	}
	if cfg.VHTEntries <= 0 || cfg.VHTEntries&(cfg.VHTEntries-1) != 0 {
		panic("lvp: two-level VHT entries must be a positive power of two")
	}
	if cfg.VPTEntries <= 0 || cfg.VPTEntries&(cfg.VPTEntries-1) != 0 {
		panic("lvp: two-level VPT entries must be a positive power of two")
	}
	if cfg.HistLen < 1 {
		panic("lvp: two-level history length must be >= 1")
	}
	if cfg.ConfBits < 1 || cfg.ConfBits > 8 {
		panic("lvp: two-level confidence bits must be in [1,8]")
	}
	confMax := uint8(1<<uint(cfg.ConfBits) - 1)
	thresh := cfg.ConfThreshold
	if thresh > int(confMax) {
		thresh = int(confMax)
	}
	if thresh < 1 {
		thresh = 1
	}
	return &TwoLevel{
		k:       cfg.HistLen,
		vhtMask: uint64(cfg.VHTEntries - 1),
		vptMask: uint64(cfg.VPTEntries - 1),
		thresh:  uint8(thresh),
		confMax: confMax,
		hist:    make([]uint64, cfg.VHTEntries*cfg.HistLen),
		vals:    make([]uint64, cfg.VPTEntries),
		conf:    make([]uint8, cfg.VPTEntries),
		vvals:   make([]bool, cfg.VPTEntries),
	}
}

// Name implements Predictor.
func (p *TwoLevel) Name() string { return "two-level" }

// vhtIndex selects the per-PC history entry.
func (p *TwoLevel) vhtIndex(pc uint64) int { return int((pc / isa.InstBytes) & p.vhtMask) }

// slot hashes the load's value-history signature into a VPT index. The
// formula is part of the predictor's specification (the differential test's
// reference model derives it independently): starting from the word-aligned
// pc, each history value is xor-folded in MRU-first and diffused by a
// Fibonacci-hash multiply and shift-xor.
func (p *TwoLevel) slot(pc uint64) int {
	i := p.vhtIndex(pc) * p.k
	h := pc / isa.InstBytes
	for j := 0; j < p.k; j++ {
		h = (h ^ p.hist[i+j]) * 0x9E3779B97F4A7C15
		h ^= h >> 29
	}
	return int(h & p.vptMask)
}

// Lookup returns the prediction for the load at pc; ok is false when the
// VPT slot is untrained or its confidence is below threshold.
func (p *TwoLevel) Lookup(pc uint64) (value uint64, ok bool) {
	p.stats.Lookups++
	s := p.slot(pc)
	if !p.vvals[s] || p.conf[s] < p.thresh {
		return 0, false
	}
	p.stats.Predicted++
	return p.vals[s], true
}

// Predict implements Predictor: Lookup's value, zero when it declines.
func (p *TwoLevel) Predict(pc uint64) uint64 {
	v, _ := p.Lookup(pc)
	return v
}

// Update trains the predictor: the VPT slot selected by the pre-update
// history learns the actual value (confidence up on confirmation, down on
// mismatch, value replaced once confidence is exhausted), then the actual
// value enters the VHT history.
func (p *TwoLevel) Update(pc, actual uint64) {
	p.stats.Updates++
	s := p.slot(pc)
	switch {
	case p.vvals[s] && p.vals[s] == actual:
		p.stats.Confirms++
		if p.conf[s] < p.confMax {
			p.conf[s]++
		}
	case !p.vvals[s]:
		p.vvals[s] = true
		p.vals[s] = actual
		p.conf[s] = 1
	case p.conf[s] > 0:
		p.stats.Demotes++
		p.conf[s]--
	default:
		p.stats.Replacements++
		p.vals[s] = actual
		p.conf[s] = 1
	}
	i := p.vhtIndex(pc) * p.k
	h := p.hist[i : i+p.k]
	copy(h[1:], h[:p.k-1])
	h[0] = actual
}

// Stats returns the accumulated predictor counters.
func (p *TwoLevel) Stats() TwoLevelStats { return p.stats }
