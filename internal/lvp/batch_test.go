package lvp

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"lvp/internal/trace"
)

// pipeDrainNext pulls a Pipe record-at-a-time, materializing everything.
func pipeDrainNext(t *testing.T, p *Pipe) ([]trace.Record, trace.Annotation) {
	t.Helper()
	var recs []trace.Record
	var ann trace.Annotation
	for {
		r, st, err := p.Next()
		if err == io.EOF {
			return recs, ann
		}
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, *r)
		ann = append(ann, st)
	}
}

// pipeDrainBatch pulls a Pipe via NextBatch with the given buffer size.
func pipeDrainBatch(t *testing.T, p *Pipe, bufSize int) ([]trace.Record, trace.Annotation) {
	t.Helper()
	recs := make([]trace.Record, 0, bufSize)
	var ann trace.Annotation
	buf := make([]trace.Record, bufSize)
	states := make([]trace.PredState, bufSize)
	for {
		n, err := p.NextBatch(buf, states)
		recs = append(recs, buf[:n]...)
		ann = append(ann, states[:n]...)
		if err == io.EOF {
			return recs, ann
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestPipeNextBatchMatchesNext is the annotation-layer batch differential:
// for every paper configuration, NextBatch over both a per-record source
// (the in-memory slice, exercising the gather path) and a batch-capable
// source (the VLT1 Reader, exercising the pass-through path) must produce
// exactly the records, states and unit statistics of the record-at-a-time
// Pipe.
func TestPipeNextBatchMatchesNext(t *testing.T) {
	tr := mixedTrace(4096)
	var enc bytes.Buffer
	if err := trace.Write(&enc, tr); err != nil {
		t.Fatal(err)
	}
	for _, cfg := range Configs {
		t.Run(cfg.Name, func(t *testing.T) {
			ref, err := NewPipe(tr.Stream(), cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			wantRecs, wantAnn := pipeDrainNext(t, ref)
			wantStats := ref.Stats()

			for _, bufSize := range []int{1, 7, 256} {
				// Gather path: per-record slice source underneath.
				p1, err := NewPipe(tr.Stream(), cfg, nil)
				if err != nil {
					t.Fatal(err)
				}
				recs, ann := pipeDrainBatch(t, p1, bufSize)
				if !reflect.DeepEqual(recs, wantRecs) || !reflect.DeepEqual(ann, wantAnn) {
					t.Fatalf("bufSize %d (slice src): batched pipe diverged", bufSize)
				}
				if p1.Stats() != wantStats {
					t.Fatalf("bufSize %d (slice src): stats diverged", bufSize)
				}

				// Pass-through path: batch-capable Reader underneath.
				rd, err := trace.NewReader(bytes.NewReader(enc.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				p2, err := NewPipe(rd, cfg, nil)
				if err != nil {
					t.Fatal(err)
				}
				recs, ann = pipeDrainBatch(t, p2, bufSize)
				if !reflect.DeepEqual(recs, wantRecs) || !reflect.DeepEqual(ann, wantAnn) {
					t.Fatalf("bufSize %d (reader src): batched pipe diverged", bufSize)
				}
				if p2.Stats() != wantStats {
					t.Fatalf("bufSize %d (reader src): stats diverged", bufSize)
				}
			}
		})
	}
}

// TestRecordBatchMatchesRecord pins Annotator.RecordBatch against the
// per-record form on the same unit configuration.
func TestRecordBatchMatchesRecord(t *testing.T) {
	tr := mixedTrace(2048)
	for _, cfg := range Configs {
		a1, err := NewAnnotator(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := NewAnnotator(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		states := make([]trace.PredState, len(tr.Records))
		a2.RecordBatch(tr.Records, states)
		for i := range tr.Records {
			if want := a1.Record(&tr.Records[i]); states[i] != want {
				t.Fatalf("cfg %s record %d: batch %v, per-record %v",
					cfg.Name, i, states[i], want)
			}
		}
		if s1, s2 := a1.Stats(), a2.Stats(); s1 != s2 {
			t.Fatalf("cfg %s: stats diverged:\n record %+v\n batch  %+v", cfg.Name, s1, s2)
		}
	}
}

// TestPipeNextBatchAllocFree pins the fused batched gen→annotate hop at
// zero allocations per batch in steady state.
func TestPipeNextBatchAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	tr := mixedTrace(1 << 20)
	p, err := NewPipe(tr.Stream(), Simple, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]trace.Record, 256)
	states := make([]trace.PredState, 256)
	// Warm-up.
	for i := 0; i < 64; i++ {
		if _, err := p.NextBatch(buf, states); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(2000, func() {
		if _, err := p.NextBatch(buf, states); err != nil && err != io.EOF {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("Pipe.NextBatch allocates %v allocs/batch, want 0", avg)
	}
}

// BenchmarkAnnotatorRecordBatch measures the batched annotation hot path;
// its per-record baseline is BenchmarkAnnotatorRecord in stream_test.go.
func BenchmarkAnnotatorRecordBatch(b *testing.B) {
	tr := mixedTrace(1 << 16)
	a, err := NewAnnotator(Simple, nil)
	if err != nil {
		b.Fatal(err)
	}
	states := make([]trace.PredState, len(tr.Records))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.RecordBatch(tr.Records, states)
	}
	b.SetBytes(int64(len(tr.Records)))
}
