package lvp

// Edge-case tests of the two-delta stride predictor — confirmation
// handshakes the basic lvp_test coverage skips, wraparound arithmetic at
// the uint64 boundary — and the predictor-zoo registry contract.

import (
	"testing"

	"lvp/internal/isa"
	"lvp/internal/trace"
)

// TestStrideColdDeclines pins the confidence contract: an untrained entry
// declines Lookup and predicts zero.
func TestStrideColdDeclines(t *testing.T) {
	p := NewStride(16)
	if _, ok := p.Lookup(0x1000); ok {
		t.Fatal("cold stride entry must decline")
	}
	if v := p.Predict(0x1000); v != 0 {
		t.Fatalf("cold Predict = %d, want 0", v)
	}
	// After one update the entry speaks (stride still 0: last value).
	p.Update(0x1000, 77)
	if v, ok := p.Lookup(0x1000); !ok || v != 77 {
		t.Fatalf("after one update Lookup = (%d, %v), want (77, true)", v, ok)
	}
}

// TestStrideTwoDeltaConfirmation walks the confirmation state machine edge
// by edge: a new delta must appear twice in a row to replace the stride,
// and re-confirming the old stride cancels a pending candidate.
func TestStrideTwoDeltaConfirmation(t *testing.T) {
	p := NewStride(16)
	pc := uint64(0x1000)
	// Train stride 8: 0, 8 (delta 8 pending), 16 (confirmed).
	for _, v := range []uint64{0, 8, 16} {
		p.Update(pc, v)
	}
	if v := p.Predict(pc); v != 24 {
		t.Fatalf("trained predict = %d, want 24", v)
	}

	// A single foreign delta leaves the stride intact...
	p.Update(pc, 100) // delta 84: pending only
	if v := p.Predict(pc); v != 108 {
		t.Fatalf("after blip predict = %d, want 108 (stride 8 kept)", v)
	}
	// ...and a matching old-stride delta cancels the pending candidate:
	p.Update(pc, 108) // delta 8 == stride: pending cleared
	p.Update(pc, 192) // delta 84 again — but NOT twice in a row
	if v := p.Predict(pc); v != 200 {
		t.Fatalf("after separated deltas predict = %d, want 200 (stride still 8)", v)
	}

	// Two consecutive foreign deltas do retrain.
	p.Update(pc, 196) // delta 4: pending
	p.Update(pc, 200) // delta 4 again: stride becomes 4
	if v := p.Predict(pc); v != 204 {
		t.Fatalf("after two-delta retrain predict = %d, want 204 (stride 4)", v)
	}
}

// TestStrideAlternatingDeltasNeverConfirm: a delta sequence that never
// repeats back-to-back cannot displace the trained stride — the two-delta
// rule's whole point.
func TestStrideAlternatingDeltasNeverConfirm(t *testing.T) {
	p := NewStride(16)
	pc := uint64(0x2000)
	// Deltas alternate 8, 2, 8, 2, ... — stride stays 0 (the initial
	// value), so the predictor degenerates to last-value.
	last := uint64(0)
	p.Update(pc, last)
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			last += 8
		} else {
			last += 2
		}
		p.Update(pc, last)
		if v := p.Predict(pc); v != last {
			t.Fatalf("step %d: predict = %d, want %d (stride must stay 0)", i, v, last)
		}
	}
}

// TestStrideWraparound pins the modular arithmetic: strides carry across
// the uint64 boundary in both directions.
func TestStrideWraparound(t *testing.T) {
	const max = ^uint64(0)
	t.Run("ascending across max", func(t *testing.T) {
		p := NewStride(16)
		pc := uint64(0x1000)
		p.Update(pc, max-12)
		p.Update(pc, max-4) // delta 8: pending
		p.Update(pc, 3)     // delta (max-4)+8 = 3: wraps, confirms stride 8
		if v, ok := p.Lookup(pc); !ok || v != 11 {
			t.Fatalf("wrapped predict = (%d, %v), want (11, true)", v, ok)
		}
	})
	t.Run("descending across zero", func(t *testing.T) {
		p := NewStride(16)
		pc := uint64(0x1000)
		// Negative stride is the two's-complement delta max-7 (== -8).
		p.Update(pc, 12)
		p.Update(pc, 4)     // delta -8: pending
		p.Update(pc, max-3) // 4 - 8 wraps: stride -8 confirmed
		if v, ok := p.Lookup(pc); !ok || v != max-11 {
			t.Fatalf("descending wrapped predict = (%d, %v), want (%d, true)", v, ok, max-11)
		}
	})
}

// TestStrideBadEntriesPanics pins the power-of-two validation.
func TestStrideBadEntriesPanics(t *testing.T) {
	for _, entries := range []int{0, -4, 3, 24} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewStride(%d) did not panic", entries)
				}
			}()
			NewStride(entries)
		}()
	}
}

// TestFamilyRegistry pins the zoo registry contract the sweep machinery
// depends on: unique resolvable names, working constructors (stride and
// two-level included), and a useful error for unknown names.
func TestFamilyRegistry(t *testing.T) {
	fams := Families()
	if len(fams) == 0 {
		t.Fatal("empty family registry")
	}
	seen := map[string]bool{}
	for _, f := range fams {
		if f.Name == "" || f.Desc == "" || f.New == nil {
			t.Fatalf("malformed family %+v", f)
		}
		if seen[f.Name] {
			t.Fatalf("duplicate family name %q", f.Name)
		}
		seen[f.Name] = true
		got, err := FamilyByName(f.Name)
		if err != nil || got.Name != f.Name {
			t.Fatalf("FamilyByName(%q) = (%+v, %v)", f.Name, got, err)
		}
		p, err := NewFamilyPredictor(f.Name)
		if err != nil || p == nil {
			t.Fatalf("NewFamilyPredictor(%q) = (%v, %v)", f.Name, p, err)
		}
		// Two builds must be independent instances (fresh state per cell).
		if q, _ := NewFamilyPredictor(f.Name); q == p {
			t.Fatalf("family %q returns a shared instance", f.Name)
		}
	}
	for _, want := range []string{"last-value", "stride", "two-level", "lv-tagged-16", "lv-4way-16"} {
		if !seen[want] {
			t.Errorf("family %q missing from the registry", want)
		}
	}
	if names := FamilyNames(); len(names) != len(fams) {
		t.Fatalf("FamilyNames has %d entries, registry %d", len(names), len(fams))
	}
	if _, err := FamilyByName("nope"); err == nil {
		t.Fatal("unknown family did not error")
	}
	if _, err := NewFamilyPredictor("nope"); err == nil {
		t.Fatal("NewFamilyPredictor on unknown family did not error")
	}
}

// strideTrace builds a trace of one load walking an arithmetic sequence —
// fully stride-predictable after warm-up.
func strideTrace(n int, pc, start, stride uint64) *trace.Trace {
	tr := &trace.Trace{}
	for i := 0; i < n; i++ {
		tr.Records = append(tr.Records, trace.Record{
			PC: pc, Op: isa.LD, Addr: 0x8000, Value: start + uint64(i)*stride,
			Size: 8, Class: isa.LoadIntData,
		})
	}
	return tr
}

// TestMeasureZooAccounting pins the coverage/accuracy split MeasureZoo
// builds on: confidence predictors only accrue attempts when they speak;
// plain predictors always speak.
func TestMeasureZooAccounting(t *testing.T) {
	tr := strideTrace(100, 0x1000, 1000, 8)

	// Stride (a ConfidencePredictor): declines only the first, cold load,
	// then locks the sequence after the two-delta warm-up.
	m := MeasureZoo(tr, NewStride(16))
	if m.Loads != 100 || m.Attempts != 99 {
		t.Fatalf("stride loads/attempts = %d/%d, want 100/99", m.Loads, m.Attempts)
	}
	if m.Hits != 97 { // the two warm-up deltas miss
		t.Fatalf("stride hits = %d, want 97", m.Hits)
	}
	if m.Accuracy() <= m.Coverage() {
		t.Fatalf("accuracy %f must exceed coverage %f when predictions were declined",
			m.Accuracy(), m.Coverage())
	}

	// TwoValue has no Lookup: it always speaks, so attempts == loads.
	m = MeasureZoo(tr, NewTwoValue(16))
	if m.Attempts != m.Loads {
		t.Fatalf("plain predictor attempts = %d, want loads = %d", m.Attempts, m.Loads)
	}

	// Interference counters flow through for table-backed families only.
	m = MeasureZoo(tr, NewTableValue("t", NewTaggedLVPT(16, 1, 0)))
	if m.TagMisses != 0 || m.AliasEvicts != 0 {
		t.Fatalf("single-pc trace counted interference: %+v", m)
	}
	if m.Loads != 100 || m.Attempts != 99 || m.Hits != 0 {
		t.Fatalf("tagged last-value on a stride = %+v, want 100/99/0", m)
	}

	// Empty trace: both ratios are defined as zero.
	z := MeasureZoo(&trace.Trace{}, NewStride(16))
	if z.Coverage() != 0 || z.Accuracy() != 0 {
		t.Fatalf("empty-trace ratios = %f/%f, want 0/0", z.Coverage(), z.Accuracy())
	}
}
