package lvp

import (
	"reflect"
	"testing"

	"lvp/internal/isa"
	"lvp/internal/trace"
)

// TestLoadBatchMatchesLoad pins Unit.LoadBatch — including the SoA direct
// path the Simple/Constant configurations take — against sequential Load
// calls on a twin unit: same states, and bit-identical Stats (every table
// counter, class transition and CVU event). Runs of loads are split at
// arbitrary boundaries and interleaved with stores so batch boundaries and
// CVU invalidations both land mid-stream. The leading records exercise the
// one coincidence the direct path must get right: a cold LVPT slot
// physically holds 0, so a first-touch load of value 0 "matches" the table
// while the entry is still cold — Load still grows the entry and
// invalidates the CVU index, and the batch must too.
func TestLoadBatchMatchesLoad(t *testing.T) {
	cold := []trace.Record{
		{PC: 0x9000, Op: isa.LD, Rd: 3, Addr: 0x8000, Value: 0, Size: 8, Class: isa.LoadIntData},
		{PC: 0x9000, Op: isa.LD, Rd: 3, Addr: 0x8000, Value: 0, Size: 8, Class: isa.LoadIntData},
		{PC: 0x9000, Op: isa.LD, Rd: 3, Addr: 0x8000, Value: 7, Size: 8, Class: isa.LoadIntData},
	}
	recs := append(cold, mixedTrace(4096).Records...)

	cfgs := append(append([]Config{}, Configs...), AblationConfigs...)
	for _, cfg := range cfgs {
		t.Run(cfg.Name, func(t *testing.T) {
			seq, err := NewUnit(cfg)
			if err != nil {
				t.Fatal(err)
			}
			bat, err := NewUnit(cfg)
			if err != nil {
				t.Fatal(err)
			}

			var pcs, addrs, vals []uint64
			var idxs []int
			wantStates := make([]trace.PredState, len(recs))
			gotStates := make([]trace.PredState, len(recs))
			scratch := make([]trace.PredState, 0, 16)
			flush := func() {
				if len(pcs) == 0 {
					return
				}
				scratch = scratch[:len(pcs)]
				bat.LoadBatch(pcs, addrs, vals, scratch)
				for k, i := range idxs {
					gotStates[i] = scratch[k]
				}
				pcs, addrs, vals, idxs = pcs[:0], addrs[:0], vals[:0], idxs[:0]
			}
			for i := range recs {
				r := &recs[i]
				switch {
				case r.IsLoad():
					wantStates[i] = seq.Load(r.PC, r.Addr, r.Value)
					pcs = append(pcs, r.PC)
					addrs = append(addrs, r.Addr)
					vals = append(vals, r.Value)
					idxs = append(idxs, i)
					// Split runs at a boundary no record pattern
					// aligns with, so batches start and end
					// mid-run, not only at stores.
					if len(pcs) == 7 {
						flush()
					}
				case r.IsStore():
					flush()
					seq.Store(r.Addr, int(r.Size))
					bat.Store(r.Addr, int(r.Size))
				}
			}
			flush()

			for i := range recs {
				if gotStates[i] != wantStates[i] {
					t.Fatalf("record %d (pc %#x): batch %v, sequential %v",
						i, recs[i].PC, gotStates[i], wantStates[i])
				}
			}
			if s1, s2 := seq.Stats(), bat.Stats(); !reflect.DeepEqual(s1, s2) {
				t.Fatalf("stats diverged:\n sequential %+v\n batch      %+v", s1, s2)
			}
		})
	}
}

// TestLoadBatchAllocFree pins the direct batch path at zero allocations per
// call. The workload's values never repeat, so the LCT never promotes past
// NoPredict and the CVU stays empty — the regime where every allocation
// would be the batch path's own fault rather than legitimate CVU growth.
func TestLoadBatchAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	u, err := NewUnit(Simple)
	if err != nil {
		t.Fatal(err)
	}
	const n = 512
	pcs := make([]uint64, n)
	addrs := make([]uint64, n)
	vals := make([]uint64, n)
	states := make([]trace.PredState, n)
	for i := range pcs {
		pcs[i] = 0x1000 + 8*uint64(i)
		addrs[i] = 0x2000 + 8*uint64(i)
	}
	var tick uint64
	fill := func() {
		for i := range vals {
			tick++
			vals[i] = tick<<16 | uint64(i)
		}
	}
	for i := 0; i < 8; i++ {
		fill()
		u.LoadBatch(pcs, addrs, vals, states)
	}
	avg := testing.AllocsPerRun(200, func() {
		fill()
		u.LoadBatch(pcs, addrs, vals, states)
	})
	if avg != 0 {
		t.Fatalf("Unit.LoadBatch allocates %v allocs/call, want 0", avg)
	}
}
