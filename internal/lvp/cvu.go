package lvp

// CVU is the Constant Verification Unit (paper §3.3): a small
// fully-associative table of (data address, LVPT index) pairs. An entry
// asserts "the value cached at this LVPT index is coherent with memory at
// this address". Stores invalidate matching addresses; LVPT updates that
// change an entry's value invalidate matching indices. A constant load that
// hits the CVU is verified without accessing the memory hierarchy.
type CVU struct {
	capacity int
	entries  []cvuEntry
	clock    uint64
	stats    CVUStats
}

// CVUStats counts CAM events. Plain ints — one CVU per Unit per goroutine;
// aggregation into shared atomic counters happens once per annotation pass.
type CVUStats struct {
	Lookups int64
	Hits    int64
	Misses  int64
	Inserts int64
	// Evictions counts LRU capacity evictions on Insert. Invalidation
	// removals are counted separately: AddrInvalidated entries were
	// removed by store-address matches, IndexInvalidated by LVPT value
	// displacements.
	Evictions        int64
	AddrInvalidated  int64
	IndexInvalidated int64
}

type cvuEntry struct {
	addr  uint64
	index int
	used  uint64 // LRU timestamp
}

// NewCVU returns a CVU with the given capacity; capacity 0 disables it.
func NewCVU(capacity int) *CVU {
	return &CVU{capacity: capacity}
}

// Lookup performs the CAM search on (addr, index) — the concatenation the
// paper describes — and refreshes the entry's LRU position on a hit.
func (c *CVU) Lookup(addr uint64, index int) bool {
	c.stats.Lookups++
	for i := range c.entries {
		e := &c.entries[i]
		if e.addr == addr && e.index == index {
			c.clock++
			e.used = c.clock
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Insert records that the LVPT entry at index is verified-coherent with
// memory at addr. The least-recently-used entry is evicted when full.
// Inserting an existing pair just refreshes it.
func (c *CVU) Insert(addr uint64, index int) {
	if c.capacity == 0 {
		return
	}
	c.clock++
	c.stats.Inserts++
	for i := range c.entries {
		e := &c.entries[i]
		if e.addr == addr && e.index == index {
			e.used = c.clock
			return
		}
	}
	if len(c.entries) < c.capacity {
		c.entries = append(c.entries, cvuEntry{addr: addr, index: index, used: c.clock})
		return
	}
	// Evict LRU.
	c.stats.Evictions++
	victim := 0
	for i := 1; i < len(c.entries); i++ {
		if c.entries[i].used < c.entries[victim].used {
			victim = i
		}
	}
	c.entries[victim] = cvuEntry{addr: addr, index: index, used: c.clock}
}

// InvalidateAddr removes every entry whose data address lies in the store's
// footprint [addr, addr+size). (A real CAM matches on cache-line or word
// granularity; we use exact byte-range overlap against the entry's load
// address, conservatively treating the entry as covering loadSize bytes.)
// It returns the number of entries removed.
func (c *CVU) InvalidateAddr(addr uint64, size int) int {
	if size <= 0 {
		size = 1
	}
	removed := 0
	out := c.entries[:0]
	for _, e := range c.entries {
		// Entries record the load's base address; invalidate on any
		// overlap with the store, assuming loads cover at most 8 bytes.
		if e.addr+8 > addr && e.addr < addr+uint64(size) {
			removed++
			continue
		}
		out = append(out, e)
	}
	c.entries = out
	c.stats.AddrInvalidated += int64(removed)
	return removed
}

// InvalidateIndex removes every entry referring to the given LVPT index;
// called when that LVPT entry's value changes, so a stale CVU entry can
// never vouch for a value that is no longer in the table.
func (c *CVU) InvalidateIndex(index int) int {
	removed := 0
	out := c.entries[:0]
	for _, e := range c.entries {
		if e.index == index {
			removed++
			continue
		}
		out = append(out, e)
	}
	c.entries = out
	c.stats.IndexInvalidated += int64(removed)
	return removed
}

// Len reports the current occupancy.
func (c *CVU) Len() int { return len(c.entries) }

// Stats returns the accumulated CAM counters.
func (c *CVU) Stats() CVUStats { return c.stats }
