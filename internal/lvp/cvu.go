package lvp

// CVU is the Constant Verification Unit (paper §3.3): a small
// fully-associative table of (data address, LVPT index) pairs. An entry
// asserts "the value cached at this LVPT index is coherent with memory at
// this address". Stores invalidate matching addresses; LVPT updates that
// change an entry's value invalidate matching indices. A constant load that
// hits the CVU is verified without accessing the memory hierarchy.
//
// The hardware is a CAM; the obvious software model is a linear scan per
// operation, which makes every Unit.Load pay O(capacity) on the constant
// path and every store pay O(capacity) again. This implementation instead
// exploits the same structure the paper's CAM matches on: entries are
// reachable through two secondary indexes — a map keyed by LVPT index
// (Lookup, Insert, InvalidateIndex) and a map keyed by 8-byte address
// bucket (InvalidateAddr walks only the buckets a store footprint can
// touch) — and LRU eviction is O(1) via an intrusive recency list. All
// node storage lives in one slab that grows to at most `capacity` entries,
// so steady-state operations are allocation-free. The behavior is
// decision-for-decision identical to the linear-scan reference model
// (`referenceCVU` in cvu_diff_test.go), enforced by a randomized
// differential test.
type CVU struct {
	capacity int
	clock    uint64
	stats    CVUStats

	nodes []cvuNode // slab; grows to capacity, then recycles via free list
	free  int       // free-list head (chained through next), -1 = empty
	size  int       // live entries
	head  int       // most recently used, -1 = empty
	tail  int       // least recently used, -1 = empty

	byIndex  map[int]int    // LVPT index -> chain head (idxPrev/idxNext)
	byBucket map[uint64]int // addr>>3 -> chain head (bktPrev/bktNext)
}

// CVUStats counts CAM events. Plain ints — one CVU per Unit per goroutine;
// aggregation into shared atomic counters happens once per annotation pass.
type CVUStats struct {
	Lookups int64
	Hits    int64
	Misses  int64
	// Inserts counts entries newly written into the CAM. Re-inserting a
	// pair that is already present only refreshes its LRU position and is
	// counted under Refreshes, so Inserts matches true insert pressure.
	Inserts   int64
	Refreshes int64
	// Evictions counts LRU capacity evictions on Insert. Invalidation
	// removals are counted separately: AddrInvalidated entries were
	// removed by store-address matches, IndexInvalidated by LVPT value
	// displacements.
	Evictions        int64
	AddrInvalidated  int64
	IndexInvalidated int64
}

// cvuNode is one slab slot: the entry payload plus its links in the LRU
// list, its LVPT-index chain and its address-bucket chain. A free slot is
// chained through next only.
type cvuNode struct {
	addr   uint64
	index  int
	used   uint64 // LRU timestamp (kept for the reference differential)
	bucket uint64 // addr >> 3, the key it is chained under in byBucket

	prev, next       int // LRU list: prev toward MRU, next toward LRU
	idxPrev, idxNext int
	bktPrev, bktNext int
}

// NewCVU returns a CVU with the given capacity; capacity <= 0 disables it.
func NewCVU(capacity int) *CVU {
	if capacity < 0 {
		capacity = 0
	}
	c := &CVU{capacity: capacity, free: -1, head: -1, tail: -1}
	if capacity > 0 {
		c.byIndex = make(map[int]int, capacity)
		c.byBucket = make(map[uint64]int, capacity)
	}
	return c
}

// find returns the slab slot holding (addr, index), or -1. It walks the
// LVPT-index chain: the CAM key is the concatenation of address and index,
// so every candidate shares the index and the chain is typically one entry.
func (c *CVU) find(addr uint64, index int) int {
	if c.size == 0 {
		return -1
	}
	n, ok := c.byIndex[index]
	if !ok {
		return -1
	}
	for ; n >= 0; n = c.nodes[n].idxNext {
		if c.nodes[n].addr == addr {
			return n
		}
	}
	return -1
}

// Lookup performs the CAM search on (addr, index) — the concatenation the
// paper describes — and refreshes the entry's LRU position on a hit.
func (c *CVU) Lookup(addr uint64, index int) bool {
	c.stats.Lookups++
	if n := c.find(addr, index); n >= 0 {
		c.clock++
		c.nodes[n].used = c.clock
		c.moveToFront(n)
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	return false
}

// Insert records that the LVPT entry at index is verified-coherent with
// memory at addr. The least-recently-used entry is evicted when full.
// Inserting an already-present pair just refreshes its LRU position and is
// counted as a Refresh, not an Insert.
func (c *CVU) Insert(addr uint64, index int) {
	if c.capacity == 0 {
		return
	}
	c.clock++
	if n := c.find(addr, index); n >= 0 {
		c.stats.Refreshes++
		c.nodes[n].used = c.clock
		c.moveToFront(n)
		return
	}
	c.stats.Inserts++
	var n int
	switch {
	case c.free >= 0:
		n = c.free
		c.free = c.nodes[n].next
		c.size++
	case c.size < c.capacity:
		c.nodes = append(c.nodes, cvuNode{})
		n = len(c.nodes) - 1
		c.size++
	default:
		// Evict LRU: the list tail, in O(1).
		c.stats.Evictions++
		n = c.tail
		c.unlink(n)
	}
	nd := &c.nodes[n]
	nd.addr, nd.index, nd.used = addr, index, c.clock
	nd.bucket = addr >> 3
	c.pushFront(n)
	c.linkIndex(n)
	c.linkBucket(n)
}

// InvalidateAddr removes every entry whose data address lies in the store's
// footprint [addr, addr+size). (A real CAM matches on cache-line or word
// granularity; we use exact byte-range overlap against the entry's load
// address, conservatively treating the entry as covering 8 bytes.) Both
// ranges clip at the top of the address space rather than wrapping, so an
// entry or store footprint near ^uint64(0) matches exactly the bytes it
// covers. It returns the number of entries removed.
func (c *CVU) InvalidateAddr(addr uint64, size int) int {
	if size <= 0 {
		size = 1
	}
	// An entry covers [e.addr, e.addr+8) and the store covers
	// [addr, addr+size), both clipped at ^uint64(0). They overlap exactly
	// when e.addr lands in [lo, hi]:
	lo := uint64(0)
	if addr >= 7 {
		lo = addr - 7
	}
	hi := addr + uint64(size) - 1
	if hi < addr {
		hi = ^uint64(0) // store footprint clips at the top
	}
	removed := 0
	if c.size > 0 {
		loB, hiB := lo>>3, hi>>3
		if hiB-loB+1 > uint64(c.size) {
			// A store footprint wider than the occupancy: walking the
			// live entries is cheaper than walking the buckets.
			for n := c.head; n >= 0; {
				next := c.nodes[n].next
				if a := c.nodes[n].addr; a >= lo && a <= hi {
					c.remove(n)
					removed++
				}
				n = next
			}
		} else {
			for b := loB; ; b++ {
				for n, ok := c.byBucket[b]; ok && n >= 0; {
					next := c.nodes[n].bktNext
					if a := c.nodes[n].addr; a >= lo && a <= hi {
						c.remove(n)
						removed++
					}
					n = next
				}
				if b == hiB {
					break
				}
			}
		}
	}
	c.stats.AddrInvalidated += int64(removed)
	return removed
}

// InvalidateIndex removes every entry referring to the given LVPT index;
// called when that LVPT entry's value changes, so a stale CVU entry can
// never vouch for a value that is no longer in the table. The index chain
// holds exactly the matching entries, so the cost is the number removed.
func (c *CVU) InvalidateIndex(index int) int {
	removed := 0
	if c.size > 0 {
		n, ok := c.byIndex[index]
		for ok && n >= 0 {
			next := c.nodes[n].idxNext
			c.remove(n)
			removed++
			n = next
		}
	}
	c.stats.IndexInvalidated += int64(removed)
	return removed
}

// Len reports the current occupancy.
func (c *CVU) Len() int { return c.size }

// Stats returns the accumulated CAM counters.
func (c *CVU) Stats() CVUStats { return c.stats }

// --- intrusive-list plumbing ---

// pushFront makes n the MRU end of the recency list.
func (c *CVU) pushFront(n int) {
	nd := &c.nodes[n]
	nd.prev, nd.next = -1, c.head
	if c.head >= 0 {
		c.nodes[c.head].prev = n
	}
	c.head = n
	if c.tail < 0 {
		c.tail = n
	}
}

// moveToFront refreshes n's recency without touching the chains.
func (c *CVU) moveToFront(n int) {
	if c.head == n {
		return
	}
	nd := &c.nodes[n]
	if nd.prev >= 0 {
		c.nodes[nd.prev].next = nd.next
	}
	if nd.next >= 0 {
		c.nodes[nd.next].prev = nd.prev
	} else {
		c.tail = nd.prev
	}
	c.pushFront(n)
}

// linkIndex chains n at the head of its LVPT-index chain.
func (c *CVU) linkIndex(n int) {
	nd := &c.nodes[n]
	if h, ok := c.byIndex[nd.index]; ok {
		nd.idxPrev, nd.idxNext = -1, h
		c.nodes[h].idxPrev = n
	} else {
		nd.idxPrev, nd.idxNext = -1, -1
	}
	c.byIndex[nd.index] = n
}

// linkBucket chains n at the head of its address-bucket chain.
func (c *CVU) linkBucket(n int) {
	nd := &c.nodes[n]
	if h, ok := c.byBucket[nd.bucket]; ok {
		nd.bktPrev, nd.bktNext = -1, h
		c.nodes[h].bktPrev = n
	} else {
		nd.bktPrev, nd.bktNext = -1, -1
	}
	c.byBucket[nd.bucket] = n
}

// unlink detaches n from the recency list and both chains, fixing up the
// map heads (or deleting emptied keys). The slot itself is not recycled.
func (c *CVU) unlink(n int) {
	nd := &c.nodes[n]
	if nd.prev >= 0 {
		c.nodes[nd.prev].next = nd.next
	} else {
		c.head = nd.next
	}
	if nd.next >= 0 {
		c.nodes[nd.next].prev = nd.prev
	} else {
		c.tail = nd.prev
	}
	if nd.idxPrev >= 0 {
		c.nodes[nd.idxPrev].idxNext = nd.idxNext
	} else if nd.idxNext >= 0 {
		c.byIndex[nd.index] = nd.idxNext
	} else {
		delete(c.byIndex, nd.index)
	}
	if nd.idxNext >= 0 {
		c.nodes[nd.idxNext].idxPrev = nd.idxPrev
	}
	if nd.bktPrev >= 0 {
		c.nodes[nd.bktPrev].bktNext = nd.bktNext
	} else if nd.bktNext >= 0 {
		c.byBucket[nd.bucket] = nd.bktNext
	} else {
		delete(c.byBucket, nd.bucket)
	}
	if nd.bktNext >= 0 {
		c.nodes[nd.bktNext].bktPrev = nd.bktPrev
	}
}

// remove invalidates slot n: unlink everywhere and recycle onto the free
// list.
func (c *CVU) remove(n int) {
	c.unlink(n)
	c.nodes[n].next = c.free
	c.free = n
	c.size--
}
