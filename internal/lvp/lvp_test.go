package lvp

import (
	"testing"

	"lvp/internal/isa"
	"lvp/internal/trace"
)

func TestConfigsValidate(t *testing.T) {
	for _, c := range Configs {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
	bad := []Config{
		{Name: "x", LVPTEntries: 1000, HistoryDepth: 1, LCTEntries: 256, LCTBits: 2},
		{Name: "x", LVPTEntries: 1024, HistoryDepth: 0, LCTEntries: 256, LCTBits: 2},
		{Name: "x", LVPTEntries: 1024, HistoryDepth: 1, LCTEntries: 100, LCTBits: 2},
		{Name: "x", LVPTEntries: 1024, HistoryDepth: 1, LCTEntries: 256, LCTBits: 0},
		{Name: "x", LVPTEntries: 1024, HistoryDepth: 1, LCTEntries: 256, LCTBits: 2, CVUEntries: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestByName(t *testing.T) {
	for _, want := range []string{"Simple", "Constant", "Limit", "Perfect"} {
		c, err := ByName(want)
		if err != nil || c.Name != want {
			t.Errorf("ByName(%q) = %v, %v", want, c, err)
		}
	}
	if _, err := ByName("Huge"); err == nil {
		t.Error("ByName must reject unknown names")
	}
}

func TestTable2Parameters(t *testing.T) {
	// Pin the paper's Table 2 numbers.
	if Simple.LVPTEntries != 1024 || Simple.HistoryDepth != 1 ||
		Simple.LCTEntries != 256 || Simple.LCTBits != 2 || Simple.CVUEntries != 32 {
		t.Errorf("Simple config drifted from Table 2: %+v", Simple)
	}
	if Constant.LCTBits != 1 || Constant.CVUEntries != 128 {
		t.Errorf("Constant config drifted from Table 2: %+v", Constant)
	}
	if Limit.LVPTEntries != 4096 || Limit.HistoryDepth != 16 ||
		Limit.LCTEntries != 1024 || Limit.CVUEntries != 128 {
		t.Errorf("Limit config drifted from Table 2: %+v", Limit)
	}
	if !Perfect.Perfect {
		t.Error("Perfect config must be perfect")
	}
}

func TestLVPTPredictAndUpdate(t *testing.T) {
	tab := NewLVPT(16, 1)
	if _, ok := tab.Predict(0x1000); ok {
		t.Error("cold entry should report no history")
	}
	if changed := tab.Update(0x1000, 42); !changed {
		t.Error("first insert must report change")
	}
	if v, ok := tab.Predict(0x1000); !ok || v != 42 {
		t.Errorf("predict = %d,%v want 42,true", v, ok)
	}
	if changed := tab.Update(0x1000, 42); changed {
		t.Error("same value must not report change")
	}
	if changed := tab.Update(0x1000, 43); !changed {
		t.Error("new value must report change")
	}
}

func TestLVPTUntaggedAliasing(t *testing.T) {
	tab := NewLVPT(16, 1)
	pcA := uint64(0x1000)
	pcB := pcA + 16*isa.InstBytes
	tab.Update(pcA, 7)
	if v, _ := tab.Predict(pcB); v != 7 {
		t.Error("aliasing loads must share the untagged entry")
	}
}

func TestLVPTDeepHistoryContains(t *testing.T) {
	tab := NewLVPT(16, 4)
	for v := uint64(1); v <= 4; v++ {
		tab.Update(0x1000, v)
	}
	for v := uint64(1); v <= 4; v++ {
		if !tab.Contains(0x1000, v) {
			t.Errorf("history should contain %d", v)
		}
	}
	tab.Update(0x1000, 5)
	if tab.Contains(0x1000, 1) {
		t.Error("LRU value must be evicted at depth 4")
	}
}

func TestLCT2BitStateMachine(t *testing.T) {
	l := NewLCT(16, 2)
	pc := uint64(0x1000)
	if got := l.Classify(pc); got != ClassNoPredict {
		t.Fatalf("initial state = %v, want no-predict", got)
	}
	l.Update(pc, true) // 0 -> 1: still don't predict
	if got := l.Classify(pc); got != ClassNoPredict {
		t.Fatalf("state 1 = %v, want no-predict", got)
	}
	l.Update(pc, true) // 1 -> 2: predict
	if got := l.Classify(pc); got != ClassPredict {
		t.Fatalf("state 2 = %v, want predict", got)
	}
	l.Update(pc, true) // 2 -> 3: constant
	if got := l.Classify(pc); got != ClassConstant {
		t.Fatalf("state 3 = %v, want constant", got)
	}
	l.Update(pc, true) // saturate at 3
	if l.Counter(pc) != 3 {
		t.Fatalf("counter must saturate at 3, got %d", l.Counter(pc))
	}
	l.Update(pc, false) // 3 -> 2
	if got := l.Classify(pc); got != ClassPredict {
		t.Fatalf("after one miss = %v, want predict", got)
	}
	for range 5 {
		l.Update(pc, false)
	}
	if l.Counter(pc) != 0 {
		t.Fatalf("counter must saturate at 0, got %d", l.Counter(pc))
	}
}

func TestLCT1BitStateMachine(t *testing.T) {
	l := NewLCT(16, 1)
	pc := uint64(0x1000)
	if got := l.Classify(pc); got != ClassNoPredict {
		t.Fatalf("initial = %v, want no-predict", got)
	}
	l.Update(pc, true)
	if got := l.Classify(pc); got != ClassConstant {
		t.Fatalf("after one hit = %v, want constant (1-bit has no middle state)", got)
	}
	l.Update(pc, false)
	if got := l.Classify(pc); got != ClassNoPredict {
		t.Fatalf("after miss = %v, want no-predict", got)
	}
}

func TestCVULifecycle(t *testing.T) {
	c := NewCVU(2)
	if c.Lookup(0x100, 3) {
		t.Error("empty CVU must miss")
	}
	c.Insert(0x100, 3)
	if !c.Lookup(0x100, 3) {
		t.Error("inserted pair must hit")
	}
	if c.Lookup(0x100, 4) {
		t.Error("different index must miss (addr concatenated with index)")
	}
	// Store overlapping the entry invalidates it.
	if n := c.InvalidateAddr(0x104, 4); n != 1 {
		t.Errorf("overlap invalidation removed %d, want 1", n)
	}
	if c.Lookup(0x100, 3) {
		t.Error("store must have invalidated the entry")
	}
	// Non-overlapping store does nothing.
	c.Insert(0x100, 3)
	if n := c.InvalidateAddr(0x200, 8); n != 0 {
		t.Errorf("non-overlapping store removed %d entries", n)
	}
	// Index invalidation.
	if n := c.InvalidateIndex(3); n != 1 {
		t.Errorf("index invalidation removed %d, want 1", n)
	}
}

func TestCVULRUEviction(t *testing.T) {
	c := NewCVU(2)
	c.Insert(0x100, 1)
	c.Insert(0x200, 2)
	c.Lookup(0x100, 1) // refresh entry 1
	c.Insert(0x300, 3) // evicts LRU = (0x200, 2)
	if c.Lookup(0x200, 2) {
		t.Error("LRU entry should have been evicted")
	}
	if !c.Lookup(0x100, 1) || !c.Lookup(0x300, 3) {
		t.Error("MRU entries should survive")
	}
}

func TestCVUZeroCapacity(t *testing.T) {
	c := NewCVU(0)
	c.Insert(0x100, 1)
	if c.Len() != 0 || c.Lookup(0x100, 1) {
		t.Error("zero-capacity CVU must stay empty")
	}
}

// constLoadTrace builds a trace of n identical loads at one PC plus optional
// interleaved stores.
func constLoadTrace(n int, addr, value uint64) *trace.Trace {
	tr := &trace.Trace{Name: "t", Target: "axp"}
	for range n {
		tr.Records = append(tr.Records, trace.Record{
			PC: 0x1000, Op: isa.LD, Addr: addr, Value: value, Size: 8,
			Class: isa.LoadIntData,
		})
	}
	return tr
}

func TestAnnotateConstantLoadBecomesConstant(t *testing.T) {
	tr := constLoadTrace(50, 0x100000, 99)
	ann, stats, err := Annotate(tr, Simple)
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up: miss (cold LVPT predicts 0), then LCT counts up, then the
	// CVU engages. By the end the load must be in the constant state.
	if ann[len(ann)-1] != trace.PredConstant {
		t.Errorf("steady state = %v, want constant", ann[len(ann)-1])
	}
	if stats.States[trace.PredConstant] < 40 {
		t.Errorf("constants = %d, want >= 40 of 50", stats.States[trace.PredConstant])
	}
	if stats.CoherenceViolations != 0 {
		t.Errorf("coherence violations = %d", stats.CoherenceViolations)
	}
	if stats.ConstantRate() < 0.8 {
		t.Errorf("constant rate = %v", stats.ConstantRate())
	}
}

func TestAnnotateStoreDemotesConstant(t *testing.T) {
	tr := constLoadTrace(20, 0x100000, 99)
	// A store to the same address invalidates the CVU entry; the next
	// load must not be constant-verified (it re-verifies via memory).
	tr.Records = append(tr.Records, trace.Record{
		PC: 0x2000, Op: isa.SD, Addr: 0x100000, Value: 99, Size: 8,
	})
	tr.Records = append(tr.Records, constLoadTrace(1, 0x100000, 99).Records...)
	ann, stats, err := Annotate(tr, Simple)
	if err != nil {
		t.Fatal(err)
	}
	last := ann[len(ann)-1]
	if last != trace.PredCorrect {
		t.Errorf("post-store load = %v, want correct (demoted, memory-verified)", last)
	}
	if stats.CVUStoreInvalidations == 0 {
		t.Error("store should have invalidated a CVU entry")
	}
}

func TestAnnotateChangingValueNeverConstant(t *testing.T) {
	tr := &trace.Trace{Name: "t", Target: "axp"}
	for i := range 200 {
		tr.Records = append(tr.Records, trace.Record{
			PC: 0x1000, Op: isa.LD, Addr: 0x100000, Value: uint64(i), Size: 8,
			Class: isa.LoadIntData,
		})
	}
	ann, stats, err := Annotate(tr, Simple)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range ann {
		if a == trace.PredConstant || a == trace.PredCorrect {
			t.Fatalf("record %d: %v for a never-repeating load", i, a)
		}
	}
	if stats.CoherenceViolations != 0 {
		t.Errorf("coherence violations = %d", stats.CoherenceViolations)
	}
	// The LCT must identify this load as unpredictable almost always.
	if stats.UnpredictableIdentifiedRate() < 0.95 {
		t.Errorf("unpredictable identified rate = %v", stats.UnpredictableIdentifiedRate())
	}
}

func TestAnnotatePerfect(t *testing.T) {
	tr := constLoadTrace(10, 0x100000, 5)
	tr.Records[3].Value = 77 // even changed values predict correctly
	ann, stats, err := Annotate(tr, Perfect)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range ann {
		if a != trace.PredCorrect {
			t.Errorf("record %d = %v, want correct under Perfect", i, a)
		}
	}
	if stats.States[trace.PredConstant] != 0 {
		t.Error("Perfect must not classify constants (paper Table 2)")
	}
}

func TestAnnotateLimitOracleBeatsSimple(t *testing.T) {
	// Alternating values defeat depth 1 but not the depth-16 oracle.
	tr := &trace.Trace{Name: "t", Target: "axp"}
	for i := range 400 {
		tr.Records = append(tr.Records, trace.Record{
			PC: 0x1000, Op: isa.LD, Addr: 0x100000, Value: uint64(i % 3), Size: 8,
			Class: isa.LoadIntData,
		})
	}
	_, simple, err := Annotate(tr, Simple)
	if err != nil {
		t.Fatal(err)
	}
	_, limit, err := Annotate(tr, Limit)
	if err != nil {
		t.Fatal(err)
	}
	if limit.Coverage() <= simple.Coverage() {
		t.Errorf("Limit coverage %v should exceed Simple %v on cyclic values",
			limit.Coverage(), simple.Coverage())
	}
}

func TestStridePredictor(t *testing.T) {
	p := NewStride(16)
	pc := uint64(0x1000)
	for i := uint64(0); i < 5; i++ {
		p.Update(pc, 100+8*i)
	}
	if got := p.Predict(pc); got != 100+8*5 {
		t.Errorf("stride predict = %d, want %d", got, 100+8*5)
	}
	// One irregular value must not destroy the stride (two-delta rule).
	p.Update(pc, 999)
	p.Update(pc, 999+8)
	if got := p.Predict(pc); got != 999+16 {
		t.Errorf("after blip, predict = %d, want %d (stride preserved)", got, 999+16)
	}
}

func TestContextPredictorLearnsCycle(t *testing.T) {
	p := NewContext(16, 1024)
	pc := uint64(0x1000)
	seq := []uint64{3, 7, 9}
	for range 10 {
		for _, v := range seq {
			p.Update(pc, v)
		}
	}
	// After (7, 9) the next value is 3.
	if got := p.Predict(pc); got != seq[0] {
		t.Errorf("context predict = %d, want %d", got, seq[0])
	}
}

func TestMeasureAccuracy(t *testing.T) {
	tr := constLoadTrace(100, 0x100000, 42)
	acc := MeasureAccuracy(tr, NewLastValue(1024))
	if acc.Total != 100 || acc.Hits != 99 {
		t.Errorf("last-value accuracy = %d/%d, want 99/100", acc.Hits, acc.Total)
	}
	// A strided sequence: stride wins, last-value loses.
	tr2 := &trace.Trace{}
	for i := range 100 {
		tr2.Records = append(tr2.Records, trace.Record{
			PC: 0x1000, Op: isa.LD, Addr: uint64(0x100000 + 8*i),
			Value: uint64(8 * i), Size: 8, Class: isa.LoadIntData,
		})
	}
	lv := MeasureAccuracy(tr2, NewLastValue(1024))
	st := MeasureAccuracy(tr2, NewStride(1024))
	if st.Hits <= lv.Hits {
		t.Errorf("stride (%d) must beat last-value (%d) on strided data", st.Hits, lv.Hits)
	}
}

func TestStatsRatesEmpty(t *testing.T) {
	var s Stats
	if s.ConstantRate() != 0 || s.Accuracy() != 0 || s.Coverage() != 0 {
		t.Error("empty stats must report zeros")
	}
	if s.PredictableIdentifiedRate() != 1 || s.UnpredictableIdentifiedRate() != 1 {
		t.Error("empty denominators must report 1 (vacuous truth)")
	}
}

func TestTwoValuePredictorLearnsAlternation(t *testing.T) {
	// Period-2 values defeat last-value; two-value should do far better
	// once the selector stabilises... but note on strict alternation the
	// selector must flip each time. Use a biased pattern instead: mostly
	// A with occasional B — two-value must keep predicting A even right
	// after a B (where last-value mispredicts twice per blip).
	p := NewTwoValue(16)
	lv := NewLastValue(16)
	pc := uint64(0x1000)
	hitsTV, hitsLV, total := 0, 0, 0
	for i := 0; i < 1000; i++ {
		v := uint64(7)
		if i%10 == 9 {
			v = 99
		}
		if p.Predict(pc) == v {
			hitsTV++
		}
		if lv.Predict(pc) == v {
			hitsLV++
		}
		p.Update(pc, v)
		lv.Update(pc, v)
		total++
	}
	if hitsTV <= hitsLV {
		t.Errorf("two-value (%d/%d) should beat last-value (%d/%d) on biased blips",
			hitsTV, total, hitsLV, total)
	}
}

func TestTwoValueKeepsBothValues(t *testing.T) {
	p := NewTwoValue(16)
	pc := uint64(0x1000)
	for i := 0; i < 40; i++ {
		v := uint64(1)
		if i%2 == 0 {
			v = 2
		}
		p.Update(pc, v)
	}
	// After training, both 1 and 2 must live in the entry: whichever is
	// predicted, the other is one selector step away.
	i := p.index(pc)
	has := map[uint64]bool{p.v0[i]: true, p.v1[i]: true}
	if !has[1] || !has[2] {
		t.Errorf("entry lost a recurring value: v0=%d v1=%d", p.v0[i], p.v1[i])
	}
}

func TestAnnotateGeneralCoversAllWriters(t *testing.T) {
	tr := &trace.Trace{Records: []trace.Record{
		{PC: 0x1000, Op: isa.ADD, Rd: 5, Value: 7},
		{PC: 0x1004, Op: isa.SD, Rb: 5, Addr: 0x100, Size: 8, Value: 7},
		{PC: 0x1008, Op: isa.BEQ},
	}}
	for i := 0; i < 30; i++ {
		tr.Records = append(tr.Records, trace.Record{PC: 0x1000, Op: isa.ADD, Rd: 5, Value: 7})
	}
	ann, st, err := AnnotateGeneral(tr, Simple)
	if err != nil {
		t.Fatal(err)
	}
	if ann[1] != trace.PredNone || ann[2] != trace.PredNone {
		t.Error("stores and branches must stay unannotated")
	}
	if ann[len(ann)-1] != trace.PredCorrect {
		t.Errorf("steady-state constant ALU result = %v, want correct", ann[len(ann)-1])
	}
	if st.States[trace.PredConstant] != 0 {
		t.Error("general annotation must never produce PredConstant (no CVU)")
	}
	if st.Loads != 31 { // the ADDs
		t.Errorf("writer count = %d, want 31", st.Loads)
	}
}

func TestAnnotateGeneralPerfect(t *testing.T) {
	tr := &trace.Trace{Records: []trace.Record{
		{PC: 0x1000, Op: isa.ADD, Rd: 5, Value: 1},
		{PC: 0x1004, Op: isa.ADD, Rd: 5, Value: 2},
	}}
	ann, _, err := AnnotateGeneral(tr, Perfect)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range ann {
		if a != trace.PredCorrect {
			t.Errorf("record %d = %v under Perfect", i, a)
		}
	}
}

func TestAnnotateGeneralRejectsBadConfig(t *testing.T) {
	bad := Config{Name: "x", LVPTEntries: 3}
	if _, _, err := AnnotateGeneral(&trace.Trace{}, bad); err == nil {
		t.Fatal("expected validation error")
	}
}
