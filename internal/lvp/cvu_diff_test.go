package lvp

// Differential proof of the indexed CVU. referenceCVU is the obvious
// linear-scan CAM model (the pre-optimization implementation, with the two
// semantic fixes this layer shipped: overflow-safe store-overlap matching
// and the Inserts/Refreshes split). The randomized differential drives both
// implementations through identical operation sequences and demands
// decision-for-decision identity: every return value, every stat counter,
// the exact surviving entry set with LRU timestamps — which pins eviction
// victims — after every single operation.

import (
	"math/rand"
	"reflect"
	"testing"
)

// refEntry mirrors cvuNode's payload for the scan model.
type refEntry struct {
	addr  uint64
	index int
	used  uint64
}

// referenceCVU is the linear-scan reference model: a flat slice searched
// front to back, LRU chosen by minimum timestamp. Deliberately naive — its
// correctness is auditable at a glance, which is the whole point of a
// reference model.
type referenceCVU struct {
	capacity int
	entries  []refEntry
	clock    uint64
	stats    CVUStats
}

func newReferenceCVU(capacity int) *referenceCVU {
	if capacity < 0 {
		capacity = 0
	}
	return &referenceCVU{capacity: capacity}
}

func (c *referenceCVU) Lookup(addr uint64, index int) bool {
	c.stats.Lookups++
	for i := range c.entries {
		if c.entries[i].addr == addr && c.entries[i].index == index {
			c.clock++
			c.entries[i].used = c.clock
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

func (c *referenceCVU) Insert(addr uint64, index int) {
	if c.capacity == 0 {
		return
	}
	c.clock++
	for i := range c.entries {
		if c.entries[i].addr == addr && c.entries[i].index == index {
			c.stats.Refreshes++
			c.entries[i].used = c.clock
			return
		}
	}
	c.stats.Inserts++
	if len(c.entries) < c.capacity {
		c.entries = append(c.entries, refEntry{addr: addr, index: index, used: c.clock})
		return
	}
	c.stats.Evictions++
	victim := 0
	for i := 1; i < len(c.entries); i++ {
		if c.entries[i].used < c.entries[victim].used {
			victim = i
		}
	}
	c.entries[victim] = refEntry{addr: addr, index: index, used: c.clock}
}

func (c *referenceCVU) InvalidateAddr(addr uint64, size int) int {
	if size <= 0 {
		size = 1
	}
	// Independent derivation of the overlap predicate: compare the last
	// covered byte of each range, clipping (not wrapping) at ^uint64(0).
	storeLast := addr + uint64(size) - 1
	if storeLast < addr {
		storeLast = ^uint64(0)
	}
	removed := 0
	kept := c.entries[:0]
	for _, e := range c.entries {
		entryLast := e.addr + 7
		if entryLast < e.addr {
			entryLast = ^uint64(0)
		}
		if entryLast >= addr && storeLast >= e.addr {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	c.entries = kept
	c.stats.AddrInvalidated += int64(removed)
	return removed
}

func (c *referenceCVU) InvalidateIndex(index int) int {
	removed := 0
	kept := c.entries[:0]
	for _, e := range c.entries {
		if e.index == index {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	c.entries = kept
	c.stats.IndexInvalidated += int64(removed)
	return removed
}

func (c *referenceCVU) Len() int        { return len(c.entries) }
func (c *referenceCVU) Stats() CVUStats { return c.stats }

// entrySet materializes a CVU's live entries keyed by (addr, index), with
// the LRU timestamp as the value. Timestamp equality across implementations
// pins recency — and therefore future eviction victims — exactly.
type cvuKey struct {
	addr  uint64
	index int
}

func (c *CVU) entrySet() map[cvuKey]uint64 {
	set := make(map[cvuKey]uint64, c.size)
	for n := c.head; n >= 0; n = c.nodes[n].next {
		set[cvuKey{c.nodes[n].addr, c.nodes[n].index}] = c.nodes[n].used
	}
	return set
}

func (c *referenceCVU) entrySet() map[cvuKey]uint64 {
	set := make(map[cvuKey]uint64, len(c.entries))
	for _, e := range c.entries {
		set[cvuKey{e.addr, e.index}] = e.used
	}
	return set
}

// checkLRUOrder verifies the indexed CVU's internal recency list is sorted
// by strictly decreasing timestamp (head = MRU) and consistent with size.
func checkLRUOrder(t *testing.T, c *CVU) {
	t.Helper()
	count := 0
	prevUsed := ^uint64(0)
	for n := c.head; n >= 0; n = c.nodes[n].next {
		if u := c.nodes[n].used; u >= prevUsed {
			t.Fatalf("LRU list out of order: used %d after %d", u, prevUsed)
		} else {
			prevUsed = u
		}
		count++
	}
	if count != c.size {
		t.Fatalf("LRU list has %d nodes, size says %d", count, c.size)
	}
}

// cvuOp is one step of a differential script.
type cvuOp struct {
	kind int // 0 lookup, 1 insert, 2 invalidate-addr, 3 invalidate-index
	addr uint64
	idx  int
	size int
}

// applyOp drives both implementations and fails on any observable
// divergence.
func applyOp(t *testing.T, step int, op cvuOp, got *CVU, want *referenceCVU) {
	t.Helper()
	switch op.kind {
	case 0:
		g, w := got.Lookup(op.addr, op.idx), want.Lookup(op.addr, op.idx)
		if g != w {
			t.Fatalf("step %d: Lookup(%#x, %d) = %v, reference %v", step, op.addr, op.idx, g, w)
		}
	case 1:
		got.Insert(op.addr, op.idx)
		want.Insert(op.addr, op.idx)
	case 2:
		g, w := got.InvalidateAddr(op.addr, op.size), want.InvalidateAddr(op.addr, op.size)
		if g != w {
			t.Fatalf("step %d: InvalidateAddr(%#x, %d) = %d, reference %d",
				step, op.addr, op.size, g, w)
		}
	case 3:
		g, w := got.InvalidateIndex(op.idx), want.InvalidateIndex(op.idx)
		if g != w {
			t.Fatalf("step %d: InvalidateIndex(%d) = %d, reference %d", step, op.idx, g, w)
		}
	}
	if g, w := got.Len(), want.Len(); g != w {
		t.Fatalf("step %d after %+v: Len = %d, reference %d", step, op, g, w)
	}
	if g, w := got.Stats(), want.Stats(); g != w {
		t.Fatalf("step %d after %+v: stats diverged:\n indexed   %+v\n reference %+v",
			step, op, g, w)
	}
	if g, w := got.entrySet(), want.entrySet(); !reflect.DeepEqual(g, w) {
		t.Fatalf("step %d after %+v: entry sets diverged:\n indexed   %v\n reference %v",
			step, op, g, w)
	}
	checkLRUOrder(t, got)
}

// randomOp draws an operation from a regime that keeps the two address
// "zones" colliding: a dense low window (heavy aliasing, bucket chains,
// LRU churn) and a window hugging ^uint64(0) (the overflow edge).
func randomOp(rnd *rand.Rand) cvuOp {
	op := cvuOp{kind: rnd.Intn(4)}
	if rnd.Intn(4) == 0 {
		op.addr = ^uint64(0) - uint64(rnd.Intn(24)) // near-max zone
	} else {
		op.addr = 0x1000 + uint64(rnd.Intn(96)) // dense zone, unaligned too
	}
	op.idx = rnd.Intn(12)
	switch rnd.Intn(8) {
	case 0:
		op.size = 0 // degenerate store sizes must behave like size 1
	case 1:
		op.size = -rnd.Intn(4)
	case 2:
		op.size = 1 << uint(3+rnd.Intn(10)) // wide stores exercise the span fallback
	default:
		op.size = []int{1, 2, 4, 8}[rnd.Intn(4)]
	}
	return op
}

// TestCVUDifferential is the main equivalence proof: many seeds, several
// capacities (including the degenerate 0 and 1), thousands of ops each,
// full-state comparison after every op.
func TestCVUDifferential(t *testing.T) {
	steps := 4000
	if testing.Short() {
		steps = 800
	}
	for _, capacity := range []int{0, 1, 2, 8, 32} {
		for seed := int64(0); seed < 10; seed++ {
			rnd := rand.New(rand.NewSource(seed*131 + int64(capacity)))
			got := NewCVU(capacity)
			want := newReferenceCVU(capacity)
			for step := 0; step < steps; step++ {
				applyOp(t, step, randomOp(rnd), got, want)
			}
		}
	}
}

// FuzzCVUDifferential interprets the fuzz input as an operation script, so
// the fuzzer can hunt for divergent sequences beyond the random regime.
// Each op consumes 11 bytes: kind, 8 addr bytes, index, size.
func FuzzCVUDifferential(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0x10, 0x00, 3, 8})
	f.Add([]byte{
		1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xfa, 1, 8, // insert near max
		2, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0, 8, // store at max
	})
	f.Fuzz(func(t *testing.T, script []byte) {
		got := NewCVU(4)
		want := newReferenceCVU(4)
		for step := 0; len(script) >= 11; step++ {
			op := cvuOp{kind: int(script[0] % 4), idx: int(script[9] % 8)}
			for _, b := range script[1:9] {
				op.addr = op.addr<<8 | uint64(b)
			}
			op.size = int(int8(script[10]))
			script = script[11:]
			applyOp(t, step, op, got, want)
		}
	})
}

// TestCVUInvalidateAddrBoundaries pins the overflow-safe overlap semantics
// at the edges: entries and stores hugging ^uint64(0), exact addr+size
// fencepost adjacency, and zero/negative sizes.
func TestCVUInvalidateAddrBoundaries(t *testing.T) {
	const max = ^uint64(0)
	cases := []struct {
		name        string
		entry       uint64
		store       uint64
		size        int
		wantRemoved int
	}{
		// Fenceposts around [store, store+size) vs entry [entry, entry+8).
		{"store ends exactly at entry", 0x100, 0xf8, 8, 0},
		{"store last byte reaches entry", 0x100, 0xf9, 8, 1},
		{"store begins at entry last byte", 0x107, 0x107, 1, 1},
		{"store begins one past entry", 0x108, 0x100, 8, 0},
		{"entry last byte touches store start", 0x100, 0x107, 4, 1},
		// Degenerate sizes behave like a 1-byte store.
		{"zero size inside entry", 0x100, 0x103, 0, 1},
		{"zero size past entry", 0x100, 0x108, 0, 0},
		{"negative size inside entry", 0x100, 0x107, -5, 1},
		// The overflow regime: the buggy predicate e.addr+8 > addr wrapped
		// here and missed genuine overlaps.
		{"entry at max, store at max", max, max, 1, 1},
		{"entry at max-7, store at max", max - 7, max, 8, 1},
		{"entry at max, store before it", max, max - 3, 2, 0},
		{"entry at max, wide store reaching it", max, max - 9, 16, 1},
		{"store footprint clips at max", max, max - 2, 8, 1},
		{"store at zero, entry at zero", 0, 0, 1, 1},
		{"store at zero misses entry 8", 8, 0, 8, 0},
		{"store at zero catches entry 7", 7, 0, 8, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCVU(8)
			c.Insert(tc.entry, 1)
			if got := c.InvalidateAddr(tc.store, tc.size); got != tc.wantRemoved {
				t.Errorf("entry %#x store %#x size %d: removed %d, want %d",
					tc.entry, tc.store, tc.size, got, tc.wantRemoved)
			}
			if want := 1 - tc.wantRemoved; c.Len() != want {
				t.Errorf("Len = %d, want %d", c.Len(), want)
			}
		})
	}
}

// TestCVUInsertRefresh pins the Inserts/Refreshes split: re-inserting a
// present pair refreshes recency but is not new insert pressure.
func TestCVUInsertRefresh(t *testing.T) {
	c := NewCVU(2)
	c.Insert(0x100, 1)
	c.Insert(0x100, 1) // refresh, not insert
	c.Insert(0x200, 2)
	st := c.Stats()
	if st.Inserts != 2 || st.Refreshes != 1 {
		t.Fatalf("Inserts = %d, Refreshes = %d, want 2 and 1", st.Inserts, st.Refreshes)
	}
	// The refresh must still update recency: (0x100, 1) was touched last
	// before (0x200, 2), so a third insert evicts... (0x100, 1)? No —
	// recency order is 0x100 (refreshed at t2) < 0x200 (t3), so the LRU
	// victim is (0x100, 1).
	c.Insert(0x300, 3)
	if c.Lookup(0x100, 1) {
		t.Fatal("refreshed-then-aged entry should have been the LRU victim")
	}
	if !c.Lookup(0x200, 2) || !c.Lookup(0x300, 3) {
		t.Fatal("younger entries must survive the eviction")
	}
	// And the mirror case: a refresh must be able to save an entry from
	// eviction.
	c2 := NewCVU(2)
	c2.Insert(0x100, 1)
	c2.Insert(0x200, 2)
	c2.Insert(0x100, 1) // refresh makes 0x100 MRU
	c2.Insert(0x300, 3) // evicts 0x200
	if !c2.Lookup(0x100, 1) {
		t.Fatal("refresh must protect the entry from LRU eviction")
	}
	if c2.Lookup(0x200, 2) {
		t.Fatal("unrefreshed entry should have been evicted")
	}
	if st := c2.Stats(); st.Inserts != 3 || st.Refreshes != 1 || st.Evictions != 1 {
		t.Fatalf("stats %+v, want Inserts 3 Refreshes 1 Evictions 1", st)
	}
}

// TestCVUOpsAllocFree pins zero allocations on steady-state CVU operations:
// once the slab and maps have reached their high-water marks, Lookup,
// Insert (fresh, refresh and evicting), InvalidateAddr and InvalidateIndex
// must all run allocation-free.
func TestCVUOpsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	c := NewCVU(32)
	rnd := rand.New(rand.NewSource(7))
	work := func() {
		switch rnd.Intn(5) {
		case 0:
			c.Lookup(0x1000+uint64(rnd.Intn(256)), rnd.Intn(16))
		case 1, 2:
			c.Insert(0x1000+uint64(rnd.Intn(256)), rnd.Intn(16))
		case 3:
			c.InvalidateAddr(0x1000+uint64(rnd.Intn(256)), 1+rnd.Intn(8))
		case 4:
			c.InvalidateIndex(rnd.Intn(16))
		}
	}
	// Warm-up: reach the slab high-water mark and populate every map key
	// the steady-state phase can touch.
	for i := 0; i < 20_000; i++ {
		work()
	}
	if avg := testing.AllocsPerRun(20_000, work); avg != 0 {
		t.Fatalf("steady-state CVU ops allocate %v allocs/op, want 0", avg)
	}
}
