// Package lvp implements the paper's primary contribution: the Load Value
// Prediction Unit (§3), composed of
//
//   - the LVPT (Load Value Prediction Table, §3.1) — a direct-mapped,
//     untagged value-history table indexed by load instruction address;
//   - the LCT (Load Classification Table, §3.2) — a direct-mapped table of
//     n-bit saturating counters classifying each static load as
//     unpredictable, predictable, or constant;
//   - the CVU (Constant Verification Unit, §3.3) — a small fully-associative
//     memory of (data address, LVPT index) pairs that lets constant loads
//     verify without touching the memory hierarchy.
//
// Following the paper's experimental framework (§5), the unit is driven over
// an instruction trace and annotates every load with one of four states
// (trace.PredState); the cycle-accurate machine models then consume the
// annotated trace.
package lvp

import "fmt"

// Config describes one LVP Unit configuration (paper Table 2).
type Config struct {
	// Name identifies the configuration ("Simple", "Constant", "Limit",
	// "Perfect").
	Name string
	// LVPTEntries is the number of direct-mapped LVPT entries (power of
	// two). Ignored when Perfect.
	LVPTEntries int
	// HistoryDepth is the number of values kept per LVPT entry. A depth
	// greater than one implies the paper's hypothetical perfect
	// selection mechanism: the prediction is correct whenever the actual
	// value appears anywhere in the history.
	HistoryDepth int
	// LCTEntries is the number of direct-mapped LCT entries (power of
	// two). Ignored when Perfect.
	LCTEntries int
	// LCTBits is the saturating-counter width (1 or 2).
	LCTBits int
	// CVUEntries is the capacity of the CVU's associative table; zero
	// disables constant verification entirely.
	CVUEntries int
	// LVPTStyle selects the value-table organisation: "" or StyleDirect
	// is the paper's untagged direct-mapped table; StyleTagged adds
	// partial tags (direct-mapped, 1-way); StyleAssoc is an n-way
	// set-associative table with partial tags and per-set LRU.
	LVPTStyle string
	// LVPTWays is the associativity for StyleAssoc (power of two >= 2
	// dividing LVPTEntries); ignored otherwise.
	LVPTWays int
	// LVPTTagBits is the partial-tag width for the tagged/assoc styles
	// (1..32; 0 selects DefaultTagBits). Ignored for StyleDirect.
	LVPTTagBits int
	// Perfect short-circuits the tables: every load value is predicted
	// correctly, and no loads are classified as constants (paper's
	// "Perfect" row).
	Perfect bool
}

// LVPT organisation styles (Config.LVPTStyle).
const (
	StyleDirect = "direct"
	StyleTagged = "tagged"
	StyleAssoc  = "assoc"
)

// The four configurations of paper Table 2.
var (
	Simple   = Config{Name: "Simple", LVPTEntries: 1024, HistoryDepth: 1, LCTEntries: 256, LCTBits: 2, CVUEntries: 32}
	Constant = Config{Name: "Constant", LVPTEntries: 1024, HistoryDepth: 1, LCTEntries: 256, LCTBits: 1, CVUEntries: 128}
	Limit    = Config{Name: "Limit", LVPTEntries: 4096, HistoryDepth: 16, LCTEntries: 1024, LCTBits: 2, CVUEntries: 128}
	Perfect  = Config{Name: "Perfect", Perfect: true}
)

// Configs lists the paper's configurations in Table 2 order.
var Configs = []Config{Simple, Constant, Limit, Perfect}

// Tagged and set-associative LVPT ablations of the Simple configuration:
// the same storage budget re-organised so aliasing becomes detectable
// (SimpleTagged) and then avoidable (SimpleAssoc4's 4-way LRU sets). They
// are not paper rows — Table 2 stays as published — but they are full
// first-class configurations: annotatable, simulatable on every machine
// model, and selectable by name in the lvpd job spec.
var (
	SimpleTagged = Config{Name: "SimpleTagged", LVPTEntries: 1024, HistoryDepth: 1,
		LCTEntries: 256, LCTBits: 2, CVUEntries: 32,
		LVPTStyle: StyleTagged, LVPTTagBits: DefaultTagBits}
	SimpleAssoc4 = Config{Name: "SimpleAssoc4", LVPTEntries: 1024, HistoryDepth: 1,
		LCTEntries: 256, LCTBits: 2, CVUEntries: 32,
		LVPTStyle: StyleAssoc, LVPTWays: 4, LVPTTagBits: DefaultTagBits}
)

// AblationConfigs lists the non-paper configurations resolvable by name.
var AblationConfigs = []Config{SimpleTagged, SimpleAssoc4}

// ByName returns the named configuration, searching the paper's Table 2
// rows first and then the registered ablation configurations.
func ByName(name string) (Config, error) {
	for _, c := range Configs {
		if c.Name == name {
			return c, nil
		}
	}
	for _, c := range AblationConfigs {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("lvp: unknown configuration %q", name)
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	if c.Perfect {
		return nil
	}
	if c.LVPTEntries <= 0 || c.LVPTEntries&(c.LVPTEntries-1) != 0 {
		return fmt.Errorf("lvp: LVPTEntries must be a positive power of two, got %d", c.LVPTEntries)
	}
	if c.LCTEntries <= 0 || c.LCTEntries&(c.LCTEntries-1) != 0 {
		return fmt.Errorf("lvp: LCTEntries must be a positive power of two, got %d", c.LCTEntries)
	}
	if c.HistoryDepth < 1 {
		return fmt.Errorf("lvp: HistoryDepth must be >= 1, got %d", c.HistoryDepth)
	}
	if c.LCTBits < 1 || c.LCTBits > 8 {
		return fmt.Errorf("lvp: LCTBits must be in [1,8], got %d", c.LCTBits)
	}
	if c.CVUEntries < 0 {
		return fmt.Errorf("lvp: CVUEntries must be >= 0, got %d", c.CVUEntries)
	}
	switch c.LVPTStyle {
	case "", StyleDirect:
	case StyleTagged, StyleAssoc:
		if c.LVPTTagBits < 0 || c.LVPTTagBits > 32 {
			return fmt.Errorf("lvp: LVPTTagBits must be in [0,32], got %d", c.LVPTTagBits)
		}
		if c.LVPTStyle == StyleAssoc {
			w := c.LVPTWays
			if w < 2 || w&(w-1) != 0 || w > c.LVPTEntries {
				return fmt.Errorf("lvp: LVPTWays must be a power of two in [2,LVPTEntries], got %d", w)
			}
		}
	default:
		return fmt.Errorf("lvp: unknown LVPTStyle %q (want %q, %q or %q)",
			c.LVPTStyle, StyleDirect, StyleTagged, StyleAssoc)
	}
	return nil
}

// newValueTable builds the value table the configuration selects.
func newValueTable(c Config) ValueTable {
	switch c.LVPTStyle {
	case StyleTagged:
		return NewTaggedLVPT(c.LVPTEntries, c.HistoryDepth, c.LVPTTagBits)
	case StyleAssoc:
		return NewAssocLVPT(c.LVPTEntries, c.LVPTWays, c.HistoryDepth, c.LVPTTagBits)
	}
	return NewLVPT(c.LVPTEntries, c.HistoryDepth)
}
