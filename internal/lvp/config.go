// Package lvp implements the paper's primary contribution: the Load Value
// Prediction Unit (§3), composed of
//
//   - the LVPT (Load Value Prediction Table, §3.1) — a direct-mapped,
//     untagged value-history table indexed by load instruction address;
//   - the LCT (Load Classification Table, §3.2) — a direct-mapped table of
//     n-bit saturating counters classifying each static load as
//     unpredictable, predictable, or constant;
//   - the CVU (Constant Verification Unit, §3.3) — a small fully-associative
//     memory of (data address, LVPT index) pairs that lets constant loads
//     verify without touching the memory hierarchy.
//
// Following the paper's experimental framework (§5), the unit is driven over
// an instruction trace and annotates every load with one of four states
// (trace.PredState); the cycle-accurate machine models then consume the
// annotated trace.
package lvp

import "fmt"

// Config describes one LVP Unit configuration (paper Table 2).
type Config struct {
	// Name identifies the configuration ("Simple", "Constant", "Limit",
	// "Perfect").
	Name string
	// LVPTEntries is the number of direct-mapped LVPT entries (power of
	// two). Ignored when Perfect.
	LVPTEntries int
	// HistoryDepth is the number of values kept per LVPT entry. A depth
	// greater than one implies the paper's hypothetical perfect
	// selection mechanism: the prediction is correct whenever the actual
	// value appears anywhere in the history.
	HistoryDepth int
	// LCTEntries is the number of direct-mapped LCT entries (power of
	// two). Ignored when Perfect.
	LCTEntries int
	// LCTBits is the saturating-counter width (1 or 2).
	LCTBits int
	// CVUEntries is the capacity of the CVU's associative table; zero
	// disables constant verification entirely.
	CVUEntries int
	// Perfect short-circuits the tables: every load value is predicted
	// correctly, and no loads are classified as constants (paper's
	// "Perfect" row).
	Perfect bool
}

// The four configurations of paper Table 2.
var (
	Simple   = Config{Name: "Simple", LVPTEntries: 1024, HistoryDepth: 1, LCTEntries: 256, LCTBits: 2, CVUEntries: 32}
	Constant = Config{Name: "Constant", LVPTEntries: 1024, HistoryDepth: 1, LCTEntries: 256, LCTBits: 1, CVUEntries: 128}
	Limit    = Config{Name: "Limit", LVPTEntries: 4096, HistoryDepth: 16, LCTEntries: 1024, LCTBits: 2, CVUEntries: 128}
	Perfect  = Config{Name: "Perfect", Perfect: true}
)

// Configs lists the paper's configurations in Table 2 order.
var Configs = []Config{Simple, Constant, Limit, Perfect}

// ByName returns the named configuration.
func ByName(name string) (Config, error) {
	for _, c := range Configs {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("lvp: unknown configuration %q", name)
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	if c.Perfect {
		return nil
	}
	if c.LVPTEntries <= 0 || c.LVPTEntries&(c.LVPTEntries-1) != 0 {
		return fmt.Errorf("lvp: LVPTEntries must be a positive power of two, got %d", c.LVPTEntries)
	}
	if c.LCTEntries <= 0 || c.LCTEntries&(c.LCTEntries-1) != 0 {
		return fmt.Errorf("lvp: LCTEntries must be a positive power of two, got %d", c.LCTEntries)
	}
	if c.HistoryDepth < 1 {
		return fmt.Errorf("lvp: HistoryDepth must be >= 1, got %d", c.HistoryDepth)
	}
	if c.LCTBits < 1 || c.LCTBits > 8 {
		return fmt.Errorf("lvp: LCTBits must be in [1,8], got %d", c.LCTBits)
	}
	if c.CVUEntries < 0 {
		return fmt.Errorf("lvp: CVUEntries must be >= 0, got %d", c.CVUEntries)
	}
	return nil
}
