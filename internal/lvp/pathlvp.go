package lvp

import (
	"lvp/internal/isa"
	"lvp/internal/locality"
	"lvp/internal/trace"
)

// PathLVP is the first refinement the paper's §7 proposes: "allowing
// multiple values per static load in the prediction table by including
// branch history bits ... in the lookup index". It is a last-value table
// indexed by a hash of the load PC and the global branch-history register,
// so one static load can hold a different prediction per control-flow path.
type PathLVP struct {
	mask     uint64
	histBits int
	ghr      uint64
	values   []uint64
}

// NewPathLVP returns a path-indexed table with the given entries (power of
// two) and number of branch-history bits folded into the index.
func NewPathLVP(entries, histBits int) *PathLVP {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("lvp: PathLVP entries must be a positive power of two")
	}
	if histBits < 0 || histBits > 32 {
		panic("lvp: PathLVP history bits must be in [0,32]")
	}
	return &PathLVP{
		mask:     uint64(entries - 1),
		histBits: histBits,
		values:   make([]uint64, entries),
	}
}

func (p *PathLVP) index(pc uint64) int {
	h := p.ghr & ((1 << p.histBits) - 1)
	return int(((pc / isa.InstBytes) ^ (h * 0x9E37)) & p.mask)
}

// Predict returns the value cached for (pc, current path).
func (p *PathLVP) Predict(pc uint64) uint64 { return p.values[p.index(pc)] }

// Update stores the actual value for (pc, current path).
func (p *PathLVP) Update(pc, actual uint64) { p.values[p.index(pc)] = actual }

// Branch shifts a branch outcome into the global history register; the
// measurement driver calls this for every conditional branch, mirroring a
// fetch-stage GHR.
func (p *PathLVP) Branch(taken bool) {
	p.ghr <<= 1
	if taken {
		p.ghr |= 1
	}
}

// MeasurePathAccuracy runs a PathLVP over a trace, feeding it branch
// outcomes, and reports the fraction of loads predicted exactly. histBits=0
// degenerates to plain last-value prediction (the control).
func MeasurePathAccuracy(t *trace.Trace, entries, histBits int) locality.Ratio {
	p := NewPathLVP(entries, histBits)
	var r locality.Ratio
	for i := range t.Records {
		rec := &t.Records[i]
		if isa.IsCondBranch(rec.Op) {
			p.Branch(rec.Taken)
			continue
		}
		if !rec.IsLoad() {
			continue
		}
		r.Total++
		if p.Predict(rec.PC) == rec.Value {
			r.Hits++
		}
		p.Update(rec.PC, rec.Value)
	}
	return r
}
