package lvp

// The predictor zoo: every value-predictor family the repository can ablate,
// behind one registry so the experiment engine, lvpsim and the lvpd job API
// enumerate and instantiate families by name. Geometries are fixed per
// family (roughly the Simple configuration's 1K-entry budget), so a family
// name fully determines behaviour and sweep output is reproducible.

import (
	"fmt"

	"lvp/internal/trace"
)

// ConfidencePredictor is a Predictor that can decline to predict — a cold
// table entry, a tag miss, or confidence below threshold. The zoo's
// measurement pass uses it to separate coverage (hits over all loads) from
// accuracy (hits over the loads the predictor actually spoke on), which is
// the pair a real pipeline cares about: mispredictions cost cycles,
// declined predictions don't.
type ConfidencePredictor interface {
	Predictor
	// Lookup returns the prediction and whether the predictor speaks.
	Lookup(pc uint64) (value uint64, ok bool)
}

// TableStatser exposes the LVPT-style event counters of a table-backed
// predictor, so sweeps can surface interference (tag misses, alias
// evictions) alongside accuracy.
type TableStatser interface {
	TableStats() LVPTStats
}

// Family is one registered predictor family.
type Family struct {
	// Name is the registry key ("last-value", "stride", "two-level", ...).
	Name string
	// Desc is a one-line description for listings and docs.
	Desc string
	// New builds a fresh predictor in the family's standard geometry.
	New func() Predictor
}

// families lists the zoo in reporting order: table-organisation ablations
// of last-value first, then the richer prediction policies. The
// organisation trio (lv-16 / lv-tagged-16 / lv-4way-16) holds the storage
// budget at 16 entries — the regime where the suite's static-load working
// sets (~17-70 PCs) genuinely contend — so untagged interference, tag
// detection, and associative avoidance are all visible in one sweep; at the
// paper's 1K budget these workloads never alias and the three organisations
// coincide.
var families = []Family{
	{"last-value", "untagged direct-mapped last-value table (paper §3.1), 1K entries",
		func() Predictor { return NewLastValue(1024) }},
	{"lv-16", "untagged direct-mapped last-value table squeezed to 16 entries",
		func() Predictor { return NewTableValue("lv-16", NewLVPT(16, 1)) }},
	{"lv-tagged-16", "tagged direct-mapped last-value table, 16 entries, 8-bit partial tags",
		func() Predictor { return NewTableValue("lv-tagged-16", NewTaggedLVPT(16, 1, 0)) }},
	{"lv-4way-16", "4-way set-associative last-value table, 16 entries, LRU, 8-bit tags",
		func() Predictor { return NewTableValue("lv-4way-16", NewAssocLVPT(16, 4, 1, 0)) }},
	{"two-value", "depth-2 value history with a trained 2-bit selector, 1K entries",
		func() Predictor { return NewTwoValue(1024) }},
	{"stride", "two-delta confirmed stride predictor, 1K entries",
		func() Predictor { return NewStride(1024) }},
	{"context-2", "order-2 single-level context predictor, 1K/4K entries",
		func() Predictor { return NewContext(1024, 4096) }},
	{"two-level", "two-level VHT/VPT context predictor, k=4, 2-bit confidence",
		func() Predictor { return NewTwoLevel(DefaultTwoLevel) }},
}

// Families returns the registered predictor families in reporting order.
func Families() []Family {
	out := make([]Family, len(families))
	copy(out, families)
	return out
}

// FamilyNames returns the registry's names in reporting order.
func FamilyNames() []string {
	names := make([]string, len(families))
	for i, f := range families {
		names[i] = f.Name
	}
	return names
}

// FamilyByName returns the named family.
func FamilyByName(name string) (Family, error) {
	for _, f := range families {
		if f.Name == name {
			return f, nil
		}
	}
	return Family{}, fmt.Errorf("lvp: unknown predictor family %q", name)
}

// NewFamilyPredictor builds a fresh predictor of the named family.
func NewFamilyPredictor(name string) (Predictor, error) {
	f, err := FamilyByName(name)
	if err != nil {
		return nil, err
	}
	return f.New(), nil
}

// ZooMeasure is one predictor's run over one trace: how often it spoke and
// how often it was right, plus the backing table's event counters when the
// family is table-backed (zero otherwise).
type ZooMeasure struct {
	Loads    int64 `json:"loads"`
	Attempts int64 `json:"attempts"`
	Hits     int64 `json:"hits"`
	// TagMisses and AliasEvicts surface table interference for the
	// tagged/set-associative families; both stay zero for families whose
	// tables cannot observe aliasing.
	TagMisses   int64 `json:"tag_misses"`
	AliasEvicts int64 `json:"alias_evicts"`
}

// Coverage is the fraction of all loads predicted exactly.
func (m ZooMeasure) Coverage() float64 {
	if m.Loads == 0 {
		return 0
	}
	return float64(m.Hits) / float64(m.Loads)
}

// Accuracy is the fraction of spoken predictions that were exact.
func (m ZooMeasure) Accuracy() float64 {
	if m.Attempts == 0 {
		return 0
	}
	return float64(m.Hits) / float64(m.Attempts)
}

// LoadSlab is the decode-once form of a trace's dynamic load stream: the PC
// and loaded value of every load, in trace order, as parallel slices. A zoo
// sweep extracts it once per trace and fans every predictor family out over
// the same slab, instead of re-walking (and re-filtering) the full record
// stream per family. The slab is immutable once built and safe to share
// across goroutines.
type LoadSlab struct {
	PCs    []uint64
	Values []uint64
}

// Len reports the number of dynamic loads in the slab.
func (s LoadSlab) Len() int { return len(s.PCs) }

// ExtractLoads scans the trace once and returns its load stream as a slab.
func ExtractLoads(t *trace.Trace) LoadSlab {
	n := 0
	for i := range t.Records {
		if t.Records[i].IsLoad() {
			n++
		}
	}
	s := LoadSlab{PCs: make([]uint64, 0, n), Values: make([]uint64, 0, n)}
	for i := range t.Records {
		r := &t.Records[i]
		if r.IsLoad() {
			s.PCs = append(s.PCs, r.PC)
			s.Values = append(s.Values, r.Value)
		}
	}
	return s
}

// MeasureZoo runs a predictor over every load in the trace. Predictors
// implementing ConfidencePredictor are measured through Lookup, so declined
// predictions count against coverage but not accuracy; plain Predictors are
// treated as always speaking (MeasureAccuracy's regime).
func MeasureZoo(t *trace.Trace, p Predictor) ZooMeasure {
	return MeasureZooLoads(ExtractLoads(t), p)
}

// MeasureZooLoads is MeasureZoo over a pre-extracted load slab — the
// decode-once fan-out path: one ExtractLoads per trace serves every family
// in a sweep.
func MeasureZooLoads(loads LoadSlab, p Predictor) ZooMeasure {
	var m ZooMeasure
	cp, hasConf := p.(ConfidencePredictor)
	m.Loads = int64(loads.Len())
	for i, pc := range loads.PCs {
		value := loads.Values[i]
		if hasConf {
			if v, ok := cp.Lookup(pc); ok {
				m.Attempts++
				if v == value {
					m.Hits++
				}
			}
		} else {
			m.Attempts++
			if p.Predict(pc) == value {
				m.Hits++
			}
		}
		p.Update(pc, value)
	}
	if ts, ok := p.(TableStatser); ok {
		st := ts.TableStats()
		m.TagMisses = st.TagMisses
		m.AliasEvicts = st.AliasEvicts
	}
	return m
}
