package lvp

import (
	"fmt"
	"log/slog"

	"lvp/internal/obs"
	"lvp/internal/trace"
)

// Stats aggregates everything the paper reports about the LVP Unit itself:
// the distribution of prediction states, the LCT classification accuracy
// (Table 3), and the constant identification rate (Table 4).
type Stats struct {
	Config string
	Loads  int
	States [trace.NumPredStates]int

	// Table 3 numerators/denominators. A load is "predictable" when the
	// LVPT's prediction for it would have been correct, regardless of
	// what the LCT decided.
	PredictableTotal        int
	PredictableIdentified   int // ... and the LCT said predict/constant
	UnpredictableTotal      int
	UnpredictableIdentified int // ... and the LCT said don't-predict

	CVUInserts            int
	CVUStoreInvalidations int
	CVUIndexInvalidations int
	// CoherenceViolations counts CVU hits whose prediction was wrong.
	// The invalidate-on-update discipline keeps this at zero; it exists
	// as a checked invariant.
	CoherenceViolations int

	// Per-structure event counters (observability; not paper exhibits).
	LVPT LVPTStats
	LCT  LCTStats
	CVU  CVUStats
}

// ConstantRate is paper Table 4: the fraction of all dynamic loads verified
// as constants by the CVU (equivalently, the L1 bandwidth reduction).
func (s Stats) ConstantRate() float64 {
	if s.Loads == 0 {
		return 0
	}
	return float64(s.States[trace.PredConstant]) / float64(s.Loads)
}

// UnpredictableIdentifiedRate is paper Table 3's "% of unpredictable loads
// identified as such by the LCT".
func (s Stats) UnpredictableIdentifiedRate() float64 {
	if s.UnpredictableTotal == 0 {
		return 1
	}
	return float64(s.UnpredictableIdentified) / float64(s.UnpredictableTotal)
}

// PredictableIdentifiedRate is paper Table 3's "% of predictable loads
// correctly classified as predictable".
func (s Stats) PredictableIdentifiedRate() float64 {
	if s.PredictableTotal == 0 {
		return 1
	}
	return float64(s.PredictableIdentified) / float64(s.PredictableTotal)
}

// Accuracy is the fraction of attempted predictions that were correct
// (correct + constant over all predicted loads).
func (s Stats) Accuracy() float64 {
	attempted := s.States[trace.PredCorrect] + s.States[trace.PredConstant] + s.States[trace.PredIncorrect]
	if attempted == 0 {
		return 0
	}
	return float64(s.States[trace.PredCorrect]+s.States[trace.PredConstant]) / float64(attempted)
}

// Coverage is the fraction of all loads predicted correctly (correct +
// constant over all loads).
func (s Stats) Coverage() float64 {
	if s.Loads == 0 {
		return 0
	}
	return float64(s.States[trace.PredCorrect]+s.States[trace.PredConstant]) / float64(s.Loads)
}

// Unit is a complete LVP Unit instance. The value table is any ValueTable
// organisation (untagged direct-mapped by default; Config.LVPTStyle selects
// the tagged or set-associative variants).
type Unit struct {
	cfg   Config
	lvpt  ValueTable
	lct   *LCT
	cvu   *CVU
	tr    *obs.Tracer
	stats Stats
}

// NewUnit builds a unit for the given configuration.
func NewUnit(cfg Config) (*Unit, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	u := &Unit{cfg: cfg, stats: Stats{Config: cfg.Name}}
	if !cfg.Perfect {
		u.lvpt = newValueTable(cfg)
		u.lct = NewLCT(cfg.LCTEntries, cfg.LCTBits)
		u.cvu = NewCVU(cfg.CVUEntries)
	}
	return u, nil
}

// SetTracer attaches an event tracer; nil (the default) disables tracing.
// The unit emits on the lvpt, lct and cvu channels.
func (u *Unit) SetTracer(tr *obs.Tracer) { u.tr = tr }

// Stats returns the accumulated statistics, including the per-structure
// event counters.
func (u *Unit) Stats() Stats {
	st := u.stats
	if u.lvpt != nil {
		st.LVPT = u.lvpt.Stats()
	}
	if u.lct != nil {
		st.LCT = u.lct.Stats()
	}
	if u.cvu != nil {
		st.CVU = u.cvu.Stats()
	}
	return st
}

// Store processes a store instruction: the CVU CAM is searched and all
// entries matching the store's footprint are invalidated (paper §3.4).
func (u *Unit) Store(addr uint64, size int) {
	if u.cvu != nil {
		removed := u.cvu.InvalidateAddr(addr, size)
		u.stats.CVUStoreInvalidations += removed
		if removed > 0 && u.tr.Enabled(obs.ChanCVU) {
			u.tr.Emit(obs.ChanCVU, "store-invalidate",
				slog.String("addr", fmt.Sprintf("%#x", addr)),
				slog.Int("size", size),
				slog.Int("removed", removed))
		}
	}
}

// Load processes one dynamic load: it forms the prediction, classifies it,
// attempts CVU verification for constants, updates the tables, and returns
// the paper's four-state annotation.
func (u *Unit) Load(pc, addr, actual uint64) trace.PredState {
	u.stats.Loads++
	if u.cfg.Perfect {
		u.stats.States[trace.PredCorrect]++
		u.stats.PredictableTotal++
		u.stats.PredictableIdentified++
		return trace.PredCorrect
	}
	idx := u.lvpt.Index(pc)
	var correct bool
	var predicted uint64
	if u.cfg.HistoryDepth > 1 {
		// Perfect selection oracle over the history set (paper §3.1).
		correct = u.lvpt.Contains(pc, actual)
	} else {
		predicted, _ = u.lvpt.Predict(pc) // cold entries predict zero
		correct = predicted == actual
	}
	class := u.lct.Classify(pc)

	var state trace.PredState
	switch class {
	case ClassNoPredict:
		state = trace.PredNone
	case ClassPredict:
		if correct {
			state = trace.PredCorrect
		} else {
			state = trace.PredIncorrect
		}
	case ClassConstant:
		hit := u.cvu.Lookup(addr, idx)
		switch {
		case hit && correct:
			state = trace.PredConstant
			if u.tr.Enabled(obs.ChanCVU) {
				u.tr.Emit(obs.ChanCVU, "hit",
					slog.String("pc", fmt.Sprintf("%#x", pc)),
					slog.String("addr", fmt.Sprintf("%#x", addr)),
					slog.Int("index", idx))
			}
		case hit:
			// A CVU hit vouching for a wrong value would be a
			// hardware bug; the invalidation discipline prevents
			// it, and we count it to prove that.
			u.stats.CoherenceViolations++
			state = trace.PredIncorrect
		case correct:
			// Demoted to predictable this time (paper §3.3); the
			// now-verified pair enters the CVU for next time.
			state = trace.PredCorrect
			u.cvu.Insert(addr, idx)
			u.stats.CVUInserts++
			if u.tr.Enabled(obs.ChanCVU) {
				u.tr.Emit(obs.ChanCVU, "insert",
					slog.String("pc", fmt.Sprintf("%#x", pc)),
					slog.String("addr", fmt.Sprintf("%#x", addr)),
					slog.Int("index", idx))
			}
		default:
			state = trace.PredIncorrect
		}
	}

	var lctBefore uint8
	traceLCT := u.tr.Enabled(obs.ChanLCT)
	if traceLCT {
		lctBefore = u.lct.Counter(pc)
	}
	u.lct.Update(pc, correct)
	if traceLCT {
		if after := u.lct.Counter(pc); after != lctBefore {
			u.tr.Emit(obs.ChanLCT, "transition",
				slog.String("pc", fmt.Sprintf("%#x", pc)),
				slog.Int("from", int(lctBefore)),
				slog.Int("to", int(after)),
				slog.String("class", u.lct.classOf(after).String()))
		}
	}
	if changed := u.lvpt.Update(pc, actual); changed {
		removed := u.cvu.InvalidateIndex(idx)
		u.stats.CVUIndexInvalidations += removed
		if removed > 0 && u.tr.Enabled(obs.ChanCVU) {
			u.tr.Emit(obs.ChanCVU, "index-invalidate",
				slog.Int("index", idx),
				slog.Int("removed", removed))
		}
	}
	if u.tr.Enabled(obs.ChanLVPT) {
		attrs := []slog.Attr{
			slog.String("pc", fmt.Sprintf("%#x", pc)),
			slog.String("addr", fmt.Sprintf("%#x", addr)),
			slog.String("actual", fmt.Sprintf("%#x", actual)),
			slog.Bool("correct", correct),
			slog.String("class", class.String()),
			slog.String("state", state.String()),
		}
		if u.cfg.HistoryDepth == 1 {
			attrs = append(attrs, slog.String("predicted", fmt.Sprintf("%#x", predicted)))
		}
		u.tr.Emit(obs.ChanLVPT, "load", attrs...)
	}

	u.stats.States[state]++
	if correct {
		u.stats.PredictableTotal++
		if class != ClassNoPredict {
			u.stats.PredictableIdentified++
		}
	} else {
		u.stats.UnpredictableTotal++
		if class == ClassNoPredict {
			u.stats.UnpredictableIdentified++
		}
	}
	return state
}

// Annotate runs the LVP Unit over a trace (phase 2 of the paper's
// experimental framework, §5) and returns the per-record prediction states
// plus unit statistics.
func Annotate(t *trace.Trace, cfg Config) (trace.Annotation, Stats, error) {
	return AnnotateTraced(t, cfg, nil)
}

// AnnotateTraced is Annotate with an event tracer attached to the unit
// (lvpt, lct and cvu channels); tr == nil is exactly Annotate. Tracing never
// changes the annotation or the statistics, only what is emitted. It is the
// materialized form of the streaming Annotator: the per-record path is the
// same code either way.
func AnnotateTraced(t *trace.Trace, cfg Config, tr *obs.Tracer) (trace.Annotation, Stats, error) {
	a, err := NewAnnotator(cfg, tr)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("annotating %s: %w", t.Name, err)
	}
	ann := trace.NewAnnotation(t)
	for i := range t.Records {
		ann[i] = a.Record(&t.Records[i])
	}
	return ann, a.Stats(), nil
}
