package lvp

import (
	"fmt"

	"lvp/internal/trace"
)

// Stats aggregates everything the paper reports about the LVP Unit itself:
// the distribution of prediction states, the LCT classification accuracy
// (Table 3), and the constant identification rate (Table 4).
type Stats struct {
	Config string
	Loads  int
	States [trace.NumPredStates]int

	// Table 3 numerators/denominators. A load is "predictable" when the
	// LVPT's prediction for it would have been correct, regardless of
	// what the LCT decided.
	PredictableTotal        int
	PredictableIdentified   int // ... and the LCT said predict/constant
	UnpredictableTotal      int
	UnpredictableIdentified int // ... and the LCT said don't-predict

	CVUInserts            int
	CVUStoreInvalidations int
	CVUIndexInvalidations int
	// CoherenceViolations counts CVU hits whose prediction was wrong.
	// The invalidate-on-update discipline keeps this at zero; it exists
	// as a checked invariant.
	CoherenceViolations int
}

// ConstantRate is paper Table 4: the fraction of all dynamic loads verified
// as constants by the CVU (equivalently, the L1 bandwidth reduction).
func (s Stats) ConstantRate() float64 {
	if s.Loads == 0 {
		return 0
	}
	return float64(s.States[trace.PredConstant]) / float64(s.Loads)
}

// UnpredictableIdentifiedRate is paper Table 3's "% of unpredictable loads
// identified as such by the LCT".
func (s Stats) UnpredictableIdentifiedRate() float64 {
	if s.UnpredictableTotal == 0 {
		return 1
	}
	return float64(s.UnpredictableIdentified) / float64(s.UnpredictableTotal)
}

// PredictableIdentifiedRate is paper Table 3's "% of predictable loads
// correctly classified as predictable".
func (s Stats) PredictableIdentifiedRate() float64 {
	if s.PredictableTotal == 0 {
		return 1
	}
	return float64(s.PredictableIdentified) / float64(s.PredictableTotal)
}

// Accuracy is the fraction of attempted predictions that were correct
// (correct + constant over all predicted loads).
func (s Stats) Accuracy() float64 {
	attempted := s.States[trace.PredCorrect] + s.States[trace.PredConstant] + s.States[trace.PredIncorrect]
	if attempted == 0 {
		return 0
	}
	return float64(s.States[trace.PredCorrect]+s.States[trace.PredConstant]) / float64(attempted)
}

// Coverage is the fraction of all loads predicted correctly (correct +
// constant over all loads).
func (s Stats) Coverage() float64 {
	if s.Loads == 0 {
		return 0
	}
	return float64(s.States[trace.PredCorrect]+s.States[trace.PredConstant]) / float64(s.Loads)
}

// Unit is a complete LVP Unit instance.
type Unit struct {
	cfg   Config
	lvpt  *LVPT
	lct   *LCT
	cvu   *CVU
	stats Stats
}

// NewUnit builds a unit for the given configuration.
func NewUnit(cfg Config) (*Unit, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	u := &Unit{cfg: cfg, stats: Stats{Config: cfg.Name}}
	if !cfg.Perfect {
		u.lvpt = NewLVPT(cfg.LVPTEntries, cfg.HistoryDepth)
		u.lct = NewLCT(cfg.LCTEntries, cfg.LCTBits)
		u.cvu = NewCVU(cfg.CVUEntries)
	}
	return u, nil
}

// Stats returns the accumulated statistics.
func (u *Unit) Stats() Stats { return u.stats }

// Store processes a store instruction: the CVU CAM is searched and all
// entries matching the store's footprint are invalidated (paper §3.4).
func (u *Unit) Store(addr uint64, size int) {
	if u.cvu != nil {
		u.stats.CVUStoreInvalidations += u.cvu.InvalidateAddr(addr, size)
	}
}

// Load processes one dynamic load: it forms the prediction, classifies it,
// attempts CVU verification for constants, updates the tables, and returns
// the paper's four-state annotation.
func (u *Unit) Load(pc, addr, actual uint64) trace.PredState {
	u.stats.Loads++
	if u.cfg.Perfect {
		u.stats.States[trace.PredCorrect]++
		u.stats.PredictableTotal++
		u.stats.PredictableIdentified++
		return trace.PredCorrect
	}
	idx := u.lvpt.Index(pc)
	var correct bool
	if u.cfg.HistoryDepth > 1 {
		// Perfect selection oracle over the history set (paper §3.1).
		correct = u.lvpt.Contains(pc, actual)
	} else {
		pred, _ := u.lvpt.Predict(pc) // cold entries predict zero
		correct = pred == actual
	}
	class := u.lct.Classify(pc)

	var state trace.PredState
	switch class {
	case ClassNoPredict:
		state = trace.PredNone
	case ClassPredict:
		if correct {
			state = trace.PredCorrect
		} else {
			state = trace.PredIncorrect
		}
	case ClassConstant:
		hit := u.cvu.Lookup(addr, idx)
		switch {
		case hit && correct:
			state = trace.PredConstant
		case hit:
			// A CVU hit vouching for a wrong value would be a
			// hardware bug; the invalidation discipline prevents
			// it, and we count it to prove that.
			u.stats.CoherenceViolations++
			state = trace.PredIncorrect
		case correct:
			// Demoted to predictable this time (paper §3.3); the
			// now-verified pair enters the CVU for next time.
			state = trace.PredCorrect
			u.cvu.Insert(addr, idx)
			u.stats.CVUInserts++
		default:
			state = trace.PredIncorrect
		}
	}

	u.lct.Update(pc, correct)
	if changed := u.lvpt.Update(pc, actual); changed {
		u.stats.CVUIndexInvalidations += u.cvu.InvalidateIndex(idx)
	}

	u.stats.States[state]++
	if correct {
		u.stats.PredictableTotal++
		if class != ClassNoPredict {
			u.stats.PredictableIdentified++
		}
	} else {
		u.stats.UnpredictableTotal++
		if class == ClassNoPredict {
			u.stats.UnpredictableIdentified++
		}
	}
	return state
}

// Annotate runs the LVP Unit over a trace (phase 2 of the paper's
// experimental framework, §5) and returns the per-record prediction states
// plus unit statistics.
func Annotate(t *trace.Trace, cfg Config) (trace.Annotation, Stats, error) {
	u, err := NewUnit(cfg)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("annotating %s: %w", t.Name, err)
	}
	ann := trace.NewAnnotation(t)
	for i := range t.Records {
		r := &t.Records[i]
		switch {
		case r.IsLoad():
			ann[i] = u.Load(r.PC, r.Addr, r.Value)
		case r.IsStore():
			u.Store(r.Addr, int(r.Size))
		}
	}
	return ann, u.Stats(), nil
}
