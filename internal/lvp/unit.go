package lvp

import (
	"fmt"
	"log/slog"

	"lvp/internal/obs"
	"lvp/internal/trace"
)

// Stats aggregates everything the paper reports about the LVP Unit itself:
// the distribution of prediction states, the LCT classification accuracy
// (Table 3), and the constant identification rate (Table 4).
type Stats struct {
	Config string
	Loads  int
	States [trace.NumPredStates]int

	// Table 3 numerators/denominators. A load is "predictable" when the
	// LVPT's prediction for it would have been correct, regardless of
	// what the LCT decided.
	PredictableTotal        int
	PredictableIdentified   int // ... and the LCT said predict/constant
	UnpredictableTotal      int
	UnpredictableIdentified int // ... and the LCT said don't-predict

	CVUInserts            int
	CVUStoreInvalidations int
	CVUIndexInvalidations int
	// CoherenceViolations counts CVU hits whose prediction was wrong.
	// The invalidate-on-update discipline keeps this at zero; it exists
	// as a checked invariant.
	CoherenceViolations int

	// Per-structure event counters (observability; not paper exhibits).
	LVPT LVPTStats
	LCT  LCTStats
	CVU  CVUStats
}

// ConstantRate is paper Table 4: the fraction of all dynamic loads verified
// as constants by the CVU (equivalently, the L1 bandwidth reduction).
func (s Stats) ConstantRate() float64 {
	if s.Loads == 0 {
		return 0
	}
	return float64(s.States[trace.PredConstant]) / float64(s.Loads)
}

// UnpredictableIdentifiedRate is paper Table 3's "% of unpredictable loads
// identified as such by the LCT".
func (s Stats) UnpredictableIdentifiedRate() float64 {
	if s.UnpredictableTotal == 0 {
		return 1
	}
	return float64(s.UnpredictableIdentified) / float64(s.UnpredictableTotal)
}

// PredictableIdentifiedRate is paper Table 3's "% of predictable loads
// correctly classified as predictable".
func (s Stats) PredictableIdentifiedRate() float64 {
	if s.PredictableTotal == 0 {
		return 1
	}
	return float64(s.PredictableIdentified) / float64(s.PredictableTotal)
}

// Accuracy is the fraction of attempted predictions that were correct
// (correct + constant over all predicted loads).
func (s Stats) Accuracy() float64 {
	attempted := s.States[trace.PredCorrect] + s.States[trace.PredConstant] + s.States[trace.PredIncorrect]
	if attempted == 0 {
		return 0
	}
	return float64(s.States[trace.PredCorrect]+s.States[trace.PredConstant]) / float64(attempted)
}

// Coverage is the fraction of all loads predicted correctly (correct +
// constant over all loads).
func (s Stats) Coverage() float64 {
	if s.Loads == 0 {
		return 0
	}
	return float64(s.States[trace.PredCorrect]+s.States[trace.PredConstant]) / float64(s.Loads)
}

// Unit is a complete LVP Unit instance. The value table is any ValueTable
// organisation (untagged direct-mapped by default; Config.LVPTStyle selects
// the tagged or set-associative variants).
type Unit struct {
	cfg   Config
	lvpt  ValueTable
	lct   *LCT
	cvu   *CVU
	tr    *obs.Tracer
	stats Stats
}

// NewUnit builds a unit for the given configuration.
func NewUnit(cfg Config) (*Unit, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	u := &Unit{cfg: cfg, stats: Stats{Config: cfg.Name}}
	if !cfg.Perfect {
		u.lvpt = newValueTable(cfg)
		u.lct = NewLCT(cfg.LCTEntries, cfg.LCTBits)
		u.cvu = NewCVU(cfg.CVUEntries)
	}
	return u, nil
}

// SetTracer attaches an event tracer; nil (the default) disables tracing.
// The unit emits on the lvpt, lct and cvu channels.
func (u *Unit) SetTracer(tr *obs.Tracer) { u.tr = tr }

// Stats returns the accumulated statistics, including the per-structure
// event counters.
func (u *Unit) Stats() Stats {
	st := u.stats
	if u.lvpt != nil {
		st.LVPT = u.lvpt.Stats()
	}
	if u.lct != nil {
		st.LCT = u.lct.Stats()
	}
	if u.cvu != nil {
		st.CVU = u.cvu.Stats()
	}
	return st
}

// Store processes a store instruction: the CVU CAM is searched and all
// entries matching the store's footprint are invalidated (paper §3.4).
func (u *Unit) Store(addr uint64, size int) {
	if u.cvu != nil {
		removed := u.cvu.InvalidateAddr(addr, size)
		u.stats.CVUStoreInvalidations += removed
		if removed > 0 && u.tr.Enabled(obs.ChanCVU) {
			u.tr.Emit(obs.ChanCVU, "store-invalidate",
				slog.String("addr", fmt.Sprintf("%#x", addr)),
				slog.Int("size", size),
				slog.Int("removed", removed))
		}
	}
}

// Load processes one dynamic load: it forms the prediction, classifies it,
// attempts CVU verification for constants, updates the tables, and returns
// the paper's four-state annotation.
func (u *Unit) Load(pc, addr, actual uint64) trace.PredState {
	u.stats.Loads++
	if u.cfg.Perfect {
		u.stats.States[trace.PredCorrect]++
		u.stats.PredictableTotal++
		u.stats.PredictableIdentified++
		return trace.PredCorrect
	}
	idx := u.lvpt.Index(pc)
	var correct bool
	var predicted uint64
	if u.cfg.HistoryDepth > 1 {
		// Perfect selection oracle over the history set (paper §3.1).
		correct = u.lvpt.Contains(pc, actual)
	} else {
		predicted, _ = u.lvpt.Predict(pc) // cold entries predict zero
		correct = predicted == actual
	}
	class := u.lct.Classify(pc)

	var state trace.PredState
	switch class {
	case ClassNoPredict:
		state = trace.PredNone
	case ClassPredict:
		if correct {
			state = trace.PredCorrect
		} else {
			state = trace.PredIncorrect
		}
	case ClassConstant:
		hit := u.cvu.Lookup(addr, idx)
		switch {
		case hit && correct:
			state = trace.PredConstant
			if u.tr.Enabled(obs.ChanCVU) {
				u.tr.Emit(obs.ChanCVU, "hit",
					slog.String("pc", fmt.Sprintf("%#x", pc)),
					slog.String("addr", fmt.Sprintf("%#x", addr)),
					slog.Int("index", idx))
			}
		case hit:
			// A CVU hit vouching for a wrong value would be a
			// hardware bug; the invalidation discipline prevents
			// it, and we count it to prove that.
			u.stats.CoherenceViolations++
			state = trace.PredIncorrect
		case correct:
			// Demoted to predictable this time (paper §3.3); the
			// now-verified pair enters the CVU for next time.
			state = trace.PredCorrect
			u.cvu.Insert(addr, idx)
			u.stats.CVUInserts++
			if u.tr.Enabled(obs.ChanCVU) {
				u.tr.Emit(obs.ChanCVU, "insert",
					slog.String("pc", fmt.Sprintf("%#x", pc)),
					slog.String("addr", fmt.Sprintf("%#x", addr)),
					slog.Int("index", idx))
			}
		default:
			state = trace.PredIncorrect
		}
	}

	var lctBefore uint8
	traceLCT := u.tr.Enabled(obs.ChanLCT)
	if traceLCT {
		lctBefore = u.lct.Counter(pc)
	}
	u.lct.Update(pc, correct)
	if traceLCT {
		if after := u.lct.Counter(pc); after != lctBefore {
			u.tr.Emit(obs.ChanLCT, "transition",
				slog.String("pc", fmt.Sprintf("%#x", pc)),
				slog.Int("from", int(lctBefore)),
				slog.Int("to", int(after)),
				slog.String("class", u.lct.classOf(after).String()))
		}
	}
	if changed := u.lvpt.Update(pc, actual); changed {
		removed := u.cvu.InvalidateIndex(idx)
		u.stats.CVUIndexInvalidations += removed
		if removed > 0 && u.tr.Enabled(obs.ChanCVU) {
			u.tr.Emit(obs.ChanCVU, "index-invalidate",
				slog.Int("index", idx),
				slog.Int("removed", removed))
		}
	}
	if u.tr.Enabled(obs.ChanLVPT) {
		attrs := []slog.Attr{
			slog.String("pc", fmt.Sprintf("%#x", pc)),
			slog.String("addr", fmt.Sprintf("%#x", addr)),
			slog.String("actual", fmt.Sprintf("%#x", actual)),
			slog.Bool("correct", correct),
			slog.String("class", class.String()),
			slog.String("state", state.String()),
		}
		if u.cfg.HistoryDepth == 1 {
			attrs = append(attrs, slog.String("predicted", fmt.Sprintf("%#x", predicted)))
		}
		u.tr.Emit(obs.ChanLVPT, "load", attrs...)
	}

	u.stats.States[state]++
	if correct {
		u.stats.PredictableTotal++
		if class != ClassNoPredict {
			u.stats.PredictableIdentified++
		}
	} else {
		u.stats.UnpredictableTotal++
		if class == ClassNoPredict {
			u.stats.UnpredictableIdentified++
		}
	}
	return state
}

// LoadBatch processes a run of dynamic loads given as parallel slices —
// pcs[i], addrs[i] and actuals[i] describe load i — writing each load's
// four-state annotation into states[i]. It is decision-for-decision and
// counter-for-counter equivalent to len(pcs) sequential Load calls; the
// batched form exists so the hot annotation loop runs over the unit's flat
// table arrays (LVPT values/lengths, LCT counters) instead of re-entering
// the interface and method chain per load. len(addrs), len(actuals) and
// len(states) must be at least len(pcs).
func (u *Unit) LoadBatch(pcs, addrs, actuals []uint64, states []trace.PredState) {
	n := len(pcs)
	if u.cfg.Perfect {
		u.stats.Loads += n
		u.stats.States[trace.PredCorrect] += n
		u.stats.PredictableTotal += n
		u.stats.PredictableIdentified += n
		for i := range states[:n] {
			states[i] = trace.PredCorrect
		}
		return
	}
	// The direct path covers the paper's baseline organisation — untagged
	// direct-mapped LVPT at history depth one — with tracing off on every
	// channel the per-load path could emit on. Anything else (deep
	// histories, tagged/assoc tables, attached tracers) falls back to the
	// reference per-load path.
	if t, ok := u.lvpt.(*LVPT); ok && t.depth == 1 &&
		!u.tr.Enabled(obs.ChanLVPT) && !u.tr.Enabled(obs.ChanLCT) && !u.tr.Enabled(obs.ChanCVU) {
		u.loadBatchDirect(t, pcs[:n], addrs, actuals, states)
		return
	}
	for i := 0; i < n; i++ {
		states[i] = u.Load(pcs[i], addrs[i], actuals[i])
	}
}

// loadBatchDirect is Load's logic unrolled over the depth-1 untagged LVPT's
// flat arrays. Counter-update order differs from the per-load path only
// within a single load (all counters are simple sums), and every decision —
// classification, CVU lookup/insert/invalidate, state selection — is
// identical; TestLoadBatchMatchesLoad pins that equivalence.
func (u *Unit) loadBatchDirect(t *LVPT, pcs, addrs, actuals []uint64, states []trace.PredState) {
	l := u.lct
	st := &u.stats
	st.Loads += len(pcs)
	for i := range pcs {
		pc, actual := pcs[i], actuals[i]
		idx := t.Index(pc)
		t.stats.Lookups++
		if t.lengths[idx] != 0 {
			t.stats.Hits++
		}
		// A cold entry's value slot is zero, exactly what Predict reports
		// for it, so the comparison needs no warm/cold branch.
		correct := t.values[idx] == actual
		li := l.index(pc)
		c := l.counters[li]
		class := l.classTab[c]
		l.stats.Lookups++

		var state trace.PredState
		switch class {
		case ClassNoPredict:
			state = trace.PredNone
		case ClassPredict:
			if correct {
				state = trace.PredCorrect
			} else {
				state = trace.PredIncorrect
			}
		case ClassConstant:
			// The CVU seam is the per-load one: Lookup, then Insert on
			// the verified-correct miss (paper §3.3).
			hit := u.cvu.Lookup(addrs[i], idx)
			switch {
			case hit && correct:
				state = trace.PredConstant
			case hit:
				st.CoherenceViolations++
				state = trace.PredIncorrect
			case correct:
				state = trace.PredCorrect
				u.cvu.Insert(addrs[i], idx)
				st.CVUInserts++
			default:
				state = trace.PredIncorrect
			}
		}

		// LCT update (saturating), with the transition recorded through
		// the precomputed class table.
		nc := c
		if correct {
			if c < l.max {
				nc = c + 1
			}
		} else if c > 0 {
			nc = c - 1
		}
		l.counters[li] = nc
		l.stats.Updates++
		l.stats.Transitions[class][l.classTab[nc]]++

		// LVPT update at depth one. A cold entry always changes when it
		// takes its first value — even a zero, which the comparison alone
		// would miss — and a warm one changes only when displaced; either
		// change invalidates the CVU entries vouching for this index.
		t.stats.Updates++
		if t.lengths[idx] == 0 {
			t.lengths[idx] = 1
			t.values[idx] = actual
			st.CVUIndexInvalidations += u.cvu.InvalidateIndex(idx)
		} else if t.values[idx] != actual {
			t.stats.Replacements++
			t.values[idx] = actual
			st.CVUIndexInvalidations += u.cvu.InvalidateIndex(idx)
		}

		st.States[state]++
		if correct {
			st.PredictableTotal++
			if class != ClassNoPredict {
				st.PredictableIdentified++
			}
		} else {
			st.UnpredictableTotal++
			if class == ClassNoPredict {
				st.UnpredictableIdentified++
			}
		}
		states[i] = state
	}
}

// Annotate runs the LVP Unit over a trace (phase 2 of the paper's
// experimental framework, §5) and returns the per-record prediction states
// plus unit statistics.
func Annotate(t *trace.Trace, cfg Config) (trace.Annotation, Stats, error) {
	return AnnotateTraced(t, cfg, nil)
}

// AnnotateTraced is Annotate with an event tracer attached to the unit
// (lvpt, lct and cvu channels); tr == nil is exactly Annotate. Tracing never
// changes the annotation or the statistics, only what is emitted. It is the
// materialized form of the streaming Annotator: the per-record path is the
// same code either way.
func AnnotateTraced(t *trace.Trace, cfg Config, tr *obs.Tracer) (trace.Annotation, Stats, error) {
	a, err := NewAnnotator(cfg, tr)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("annotating %s: %w", t.Name, err)
	}
	ann := trace.NewAnnotation(t)
	a.RecordBatch(t.Records, ann)
	return ann, a.Stats(), nil
}
