package lvp

import (
	"io"

	"lvp/internal/obs"
	"lvp/internal/trace"
)

// Annotator is the streaming form of Annotate: records are fed in trace
// order, one at a time, and each receives its prediction state immediately.
// It is phase 2 of the pipeline without the materialized trace — the unit
// state, classification and CVU discipline are exactly Annotate's, because
// Annotate is implemented on top of it. Record is allocation-free, so the
// per-load predict/verify path can run inside the fused gen→annotate→sim
// pipeline at full speed.
type Annotator struct {
	u *Unit
	// Gather scratch for RecordBatch: consecutive loads are copied into
	// these parallel slices so Unit.LoadBatch runs over plain arrays. They
	// grow to the longest load run seen and are then reused.
	pcs, addrs, vals []uint64
}

// NewAnnotator returns a streaming annotator for the given configuration;
// tr attaches an event tracer (nil disables tracing).
func NewAnnotator(cfg Config, tr *obs.Tracer) (*Annotator, error) {
	u, err := NewUnit(cfg)
	if err != nil {
		return nil, err
	}
	u.SetTracer(tr)
	return &Annotator{u: u}, nil
}

// Record processes one record: loads are predicted and verified, stores
// invalidate the CVU, and everything else passes through as PredNone.
func (a *Annotator) Record(r *trace.Record) trace.PredState {
	switch {
	case r.IsLoad():
		return a.u.Load(r.PC, r.Addr, r.Value)
	case r.IsStore():
		a.u.Store(r.Addr, int(r.Size))
	}
	return trace.PredNone
}

// RecordBatch processes recs in order, writing each record's state into the
// parallel states slice (len(states) must be at least len(recs)). It is
// exactly len(recs) calls to Record: runs of consecutive loads are gathered
// into parallel operand slices and handed to Unit.LoadBatch (whose states
// land contiguously back in states), stores and other records are handled
// in place. Trace order — and with it the CVU invalidation discipline — is
// preserved exactly.
func (a *Annotator) RecordBatch(recs []trace.Record, states []trace.PredState) {
	u := a.u
	for i := 0; i < len(recs); {
		r := &recs[i]
		if !r.IsLoad() {
			if r.IsStore() {
				u.Store(r.Addr, int(r.Size))
			}
			states[i] = trace.PredNone
			i++
			continue
		}
		j := i + 1
		for j < len(recs) && recs[j].IsLoad() {
			j++
		}
		a.pcs, a.addrs, a.vals = a.pcs[:0], a.addrs[:0], a.vals[:0]
		for k := i; k < j; k++ {
			rk := &recs[k]
			a.pcs = append(a.pcs, rk.PC)
			a.addrs = append(a.addrs, rk.Addr)
			a.vals = append(a.vals, rk.Value)
		}
		u.LoadBatch(a.pcs, a.addrs, a.vals, states[i:j])
		i = j
	}
}

// Stats returns the unit statistics accumulated so far.
func (a *Annotator) Stats() Stats { return a.u.Stats() }

// Pipe adapts a record source into the annotated stream the timing models
// consume: each Next pulls one record from src, annotates it, and hands the
// pair downstream without buffering. Stats is valid once the stream has
// drained (Next returned io.EOF).
type Pipe struct {
	src trace.Source
	a   *Annotator
}

// NewPipe returns an annotated stream over src under cfg; tr attaches an
// event tracer (nil disables tracing).
func NewPipe(src trace.Source, cfg Config, tr *obs.Tracer) (*Pipe, error) {
	a, err := NewAnnotator(cfg, tr)
	if err != nil {
		return nil, err
	}
	return &Pipe{src: src, a: a}, nil
}

// Next yields the next record and its prediction state; io.EOF after the
// final record.
func (p *Pipe) Next() (*trace.Record, trace.PredState, error) {
	r, err := p.src.Next()
	if err != nil {
		return nil, trace.PredNone, err
	}
	return r, p.a.Record(r), nil
}

// NextBatch pulls up to len(recs) records from the source and annotates
// them in order (see trace.AnnotatedBatchSource). When the source is
// itself batch-capable the whole gen → annotate hop costs two calls per
// batch; otherwise records are gathered one at a time and annotated in
// bulk, which still amortizes the annotation dispatch.
func (p *Pipe) NextBatch(recs []trace.Record, states []trace.PredState) (int, error) {
	var n int
	var err error
	if bs, ok := p.src.(trace.BatchSource); ok {
		n, err = bs.NextBatch(recs)
	} else {
		for n < len(recs) {
			r, rerr := p.src.Next()
			if rerr != nil {
				err = rerr
				break
			}
			recs[n] = *r
			n++
		}
		if n > 0 && err == io.EOF {
			err = nil
		}
	}
	if n == 0 {
		return 0, err
	}
	p.a.RecordBatch(recs[:n], states[:n])
	return n, err
}

// Annotated reports that the stream carries real LVP annotations.
func (p *Pipe) Annotated() bool { return true }

// Stats returns the unit statistics accumulated so far.
func (p *Pipe) Stats() Stats { return p.a.Stats() }
