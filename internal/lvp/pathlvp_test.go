package lvp

import (
	"testing"

	"lvp/internal/isa"
	"lvp/internal/trace"
)

func TestPathLVPDisambiguatesByPath(t *testing.T) {
	// One static load whose value depends on the direction of the
	// preceding branch: plain last-value gets ~50%, 1 history bit nails
	// it (the paper §7 refinement).
	tr := &trace.Trace{}
	for i := 0; i < 400; i++ {
		taken := i%2 == 0
		v := uint64(111)
		if taken {
			v = 222
		}
		tr.Records = append(tr.Records,
			trace.Record{PC: 0x1000, Op: isa.BEQ, Taken: taken, Targ: 0x2000},
			trace.Record{PC: 0x1004, Op: isa.LD, Addr: 0x8000, Value: v, Size: 8, Class: isa.LoadIntData},
		)
	}
	plain := MeasurePathAccuracy(tr, 1024, 0)
	path := MeasurePathAccuracy(tr, 1024, 2)
	if plain.Percent() > 10 {
		t.Errorf("plain last-value should fail on alternating values, got %.1f%%", plain.Percent())
	}
	if path.Percent() < 90 {
		t.Errorf("path-indexed LVPT should disambiguate, got %.1f%%", path.Percent())
	}
}

func TestPathLVPZeroBitsIsLastValue(t *testing.T) {
	p := NewPathLVP(64, 0)
	p.Branch(true) // must not perturb the index with 0 history bits
	p.Update(0x1000, 42)
	p.Branch(false)
	if got := p.Predict(0x1000); got != 42 {
		t.Errorf("ghr=0 predict = %d, want 42 (history must be masked out)", got)
	}
}

func TestPathLVPBadArgsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { NewPathLVP(1000, 2) },
		func() { NewPathLVP(1024, 64) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
