package lvp

import "lvp/internal/isa"

// AssocLVPT is a tagged, set-associative Load Value Prediction Table: the
// low-order bits of the load address select a set, a partial tag built from
// the next higher bits must match before the entry is used, and within a set
// victims are chosen LRU. A 1-way instance is the tagged direct-mapped
// variant. Both answer the question the paper's untagged table cannot: how
// much of its behaviour is aliasing — TagMisses counts predictions the tags
// refused (the untagged table would have served a foreign value), AliasEvicts
// counts live entries displaced by a differently-tagged load.
//
// Recency is updated on Update only; Predict and Contains are pure reads of
// table state (they touch counters, never the LRU order), so the prediction
// path stays deterministic under re-query and allocation-free.
type AssocLVPT struct {
	ways    int
	depth   int
	setBits uint
	setMask uint64
	tagMask uint64

	// All state lives in flat slices indexed by way slot
	// (set*ways + way); values adds a third depth dimension.
	tags    []uint64
	valid   []bool
	stamps  []uint64 // LRU clock value at last Update touch
	lengths []int    // live history length per way
	values  []uint64 // (set*ways+way)*depth + j, MRU at j == 0

	clock uint64
	stats LVPTStats
}

// NewAssocLVPT returns a table with `entries` total entries (power of two)
// organised as entries/ways sets of `ways` ways (ways a positive power of
// two dividing entries), history depth `depth` per way, and partial tags of
// `tagBits` bits (1..32; 0 selects DefaultTagBits).
func NewAssocLVPT(entries, ways, depth, tagBits int) *AssocLVPT {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("lvp: assoc LVPT entries must be a positive power of two")
	}
	if ways <= 0 || ways&(ways-1) != 0 || ways > entries {
		panic("lvp: assoc LVPT ways must be a positive power of two <= entries")
	}
	if tagBits == 0 {
		tagBits = DefaultTagBits
	}
	if tagBits < 1 || tagBits > 32 {
		panic("lvp: assoc LVPT tag bits must be in [1,32]")
	}
	if depth < 1 {
		depth = 1
	}
	sets := entries / ways
	setBits := uint(0)
	for 1<<setBits < sets {
		setBits++
	}
	return &AssocLVPT{
		ways:    ways,
		depth:   depth,
		setBits: setBits,
		setMask: uint64(sets - 1),
		tagMask: 1<<uint(tagBits) - 1,
		tags:    make([]uint64, entries),
		valid:   make([]bool, entries),
		stamps:  make([]uint64, entries),
		lengths: make([]int, entries),
		values:  make([]uint64, entries*depth),
	}
}

// NewTaggedLVPT returns the tagged direct-mapped variant: a 1-way AssocLVPT.
func NewTaggedLVPT(entries, depth, tagBits int) *AssocLVPT {
	return NewAssocLVPT(entries, 1, depth, tagBits)
}

// DefaultTagBits is the partial-tag width used when a configuration leaves
// LVPTTagBits at zero.
const DefaultTagBits = 8

// line is the word-aligned instruction address the index and tag derive
// from — the same normalisation every table in the unit applies.
func (t *AssocLVPT) line(pc uint64) uint64 { return pc / isa.InstBytes }

// Index reports the set index for a load at pc — the CVU coordinate. For a
// 1-way table this is the entry index, exactly as in the untagged LVPT.
func (t *AssocLVPT) Index(pc uint64) int { return int(t.line(pc) & t.setMask) }

// tag extracts the partial tag: the bits immediately above the set index.
func (t *AssocLVPT) tag(pc uint64) uint64 { return (t.line(pc) >> t.setBits) & t.tagMask }

// lookup scans pc's set. It returns the matching way slot (set*ways+way),
// or -1 with aliased reporting whether the set held at least one live
// foreign entry (a detected alias rather than a cold miss).
func (t *AssocLVPT) lookup(pc uint64) (slot int, aliased bool) {
	base := t.Index(pc) * t.ways
	tag := t.tag(pc)
	aliased = false
	for w := 0; w < t.ways; w++ {
		if !t.valid[base+w] {
			continue
		}
		if t.tags[base+w] == tag {
			return base + w, false
		}
		aliased = true
	}
	return -1, aliased
}

// Predict returns the MRU value for the load at pc; ok is false on a tag
// miss or a cold set.
func (t *AssocLVPT) Predict(pc uint64) (value uint64, ok bool) {
	t.stats.Lookups++
	slot, aliased := t.lookup(pc)
	if slot < 0 {
		if aliased {
			t.stats.TagMisses++
		}
		return 0, false
	}
	t.stats.Hits++
	return t.values[slot*t.depth], true
}

// Contains reports whether value appears in pc's history — the perfect
// selection oracle for depths > 1, gated by the tag match.
func (t *AssocLVPT) Contains(pc, value uint64) bool {
	t.stats.Lookups++
	slot, aliased := t.lookup(pc)
	if slot < 0 {
		if aliased {
			t.stats.TagMisses++
		}
		return false
	}
	t.stats.Hits++
	vals := t.values[slot*t.depth : slot*t.depth+t.depth]
	for j := 0; j < t.lengths[slot]; j++ {
		if vals[j] == value {
			return true
		}
	}
	return false
}

// Update records the actual loaded value. On a tag match the way's history
// takes an MRU insertion with LRU replacement, exactly like the untagged
// table; on a miss the way chosen as victim (an invalid way first, else the
// set's LRU) is re-tagged and its history reset to the new value. The
// returned changed flag keeps the CVU invalidation discipline exact: true
// whenever the entry's visible contents changed.
func (t *AssocLVPT) Update(pc, value uint64) (changed bool) {
	t.stats.Updates++
	t.clock++
	slot, _ := t.lookup(pc)
	if slot >= 0 {
		t.stamps[slot] = t.clock
		vals := t.values[slot*t.depth : slot*t.depth+t.depth]
		n := t.lengths[slot]
		for j := 0; j < n; j++ {
			if vals[j] == value {
				copy(vals[1:j+1], vals[:j])
				vals[0] = value
				return false
			}
		}
		if n < t.depth {
			t.lengths[slot] = n + 1
			n++
		} else {
			t.stats.Replacements++
		}
		copy(vals[1:n], vals[:n-1])
		vals[0] = value
		return true
	}
	// Victim selection: first invalid way in way order, else the LRU way
	// (clock stamps are unique, so the minimum is unambiguous).
	base := t.Index(pc) * t.ways
	victim := -1
	for w := 0; w < t.ways; w++ {
		if !t.valid[base+w] {
			victim = base + w
			break
		}
	}
	if victim < 0 {
		victim = base
		for w := 1; w < t.ways; w++ {
			if t.stamps[base+w] < t.stamps[victim] {
				victim = base + w
			}
		}
		t.stats.AliasEvicts++
	}
	t.tags[victim] = t.tag(pc)
	t.valid[victim] = true
	t.stamps[victim] = t.clock
	t.lengths[victim] = 1
	t.values[victim*t.depth] = value
	return true
}

// Ways reports the associativity (1 = tagged direct-mapped).
func (t *AssocLVPT) Ways() int { return t.ways }

// Stats returns the accumulated table counters.
func (t *AssocLVPT) Stats() LVPTStats { return t.stats }
