package lvp

import (
	"io"
	"reflect"
	"testing"

	"lvp/internal/isa"
	"lvp/internal/trace"
)

// mixedTrace builds a deterministic trace exercising every annotator path:
// constant loads (CVU promotion and hits), alternating-value loads
// (mispredictions and LCT demotion), stores that invalidate CVU entries,
// and non-memory records that must pass through as PredNone.
func mixedTrace(n int) *trace.Trace {
	t := &trace.Trace{Name: "mixed", Target: "ppc"}
	for i := 0; i < n; i++ {
		pc := uint64(0x1000 + 4*(i%16))
		switch i % 8 {
		case 0, 1, 2:
			// Constant load: same pc/addr/value every time.
			t.Records = append(t.Records, trace.Record{
				PC: pc, Op: isa.LD, Rd: 3, Ra: 1, Imm: 8,
				Addr: 0x2000 + 8*uint64(i%3), Value: 0xabcd, Size: 8,
				Class: isa.LoadIntData,
			})
		case 3:
			// Alternating-value load: never predictable for long.
			t.Records = append(t.Records, trace.Record{
				PC: 0x1100, Op: isa.LD, Rd: 4, Ra: 1, Imm: 16,
				Addr: 0x3000, Value: uint64(i % 2), Size: 8,
				Class: isa.LoadDataAddr,
			})
		case 4:
			// Store over the constant loads' addresses: CVU invalidation.
			t.Records = append(t.Records, trace.Record{
				PC: pc, Op: isa.SD, Ra: 1, Rb: 3, Imm: 8,
				Addr: 0x2000 + 8*uint64(i%3), Value: 0xabcd, Size: 8,
			})
		default:
			t.Records = append(t.Records, trace.Record{
				PC: pc, Op: isa.ADD, Rd: 5, Ra: 3, Rb: 4, Value: uint64(i),
			})
		}
	}
	return t
}

// TestAnnotatorMatchesAnnotate pins the single-code-path contract of the
// streaming layer: feeding records one at a time through Annotator (and
// through Pipe over a trace Source) yields exactly the annotation and
// statistics of the whole-trace Annotate, for every paper configuration.
func TestAnnotatorMatchesAnnotate(t *testing.T) {
	tr := mixedTrace(4096)
	for _, cfg := range Configs {
		t.Run(cfg.Name, func(t *testing.T) {
			wantAnn, wantStats, err := Annotate(tr, cfg)
			if err != nil {
				t.Fatalf("Annotate: %v", err)
			}

			a, err := NewAnnotator(cfg, nil)
			if err != nil {
				t.Fatalf("NewAnnotator: %v", err)
			}
			gotAnn := make(trace.Annotation, len(tr.Records))
			for i := range tr.Records {
				gotAnn[i] = a.Record(&tr.Records[i])
			}
			if !reflect.DeepEqual(gotAnn, wantAnn) {
				t.Fatal("Annotator states differ from Annotate")
			}
			if !reflect.DeepEqual(a.Stats(), wantStats) {
				t.Fatalf("Annotator stats differ:\n got %+v\nwant %+v", a.Stats(), wantStats)
			}

			p, err := NewPipe(tr.Stream(), cfg, nil)
			if err != nil {
				t.Fatalf("NewPipe: %v", err)
			}
			if !p.Annotated() {
				t.Fatal("Pipe.Annotated() = false, want true")
			}
			var pipeAnn trace.Annotation
			for {
				_, st, err := p.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("Pipe.Next: %v", err)
				}
				pipeAnn = append(pipeAnn, st)
			}
			if !reflect.DeepEqual(pipeAnn, wantAnn) {
				t.Fatal("Pipe states differ from Annotate")
			}
			if !reflect.DeepEqual(p.Stats(), wantStats) {
				t.Fatalf("Pipe stats differ:\n got %+v\nwant %+v", p.Stats(), wantStats)
			}
		})
	}
}

// TestUnitLoadAllocFree is the LVP-unit allocation-regression gate: once
// the tables and the CVU backing array are warm, the per-load
// predict/classify/verify/update path must not allocate. This is what lets
// the fused streaming pipeline annotate arbitrarily long traces without GC
// pressure.
func TestUnitLoadAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	for _, cfg := range []Config{Simple, Constant, Perfect} {
		t.Run(cfg.Name, func(t *testing.T) {
			u, err := NewUnit(cfg)
			if err != nil {
				t.Fatal(err)
			}
			step := func(i int) {
				if i%7 == 3 {
					u.Store(0x2000+8*uint64(i%4), 8)
					return
				}
				pc := uint64(0x1000 + 4*(i%8))
				u.Load(pc, 0x2000+8*uint64(i%4), 0xabcd)
			}
			// Warm up: drive the LCT to steady state and the CVU backing
			// array to its high-water occupancy.
			for i := 0; i < 50_000; i++ {
				step(i)
			}
			i := 0
			avg := testing.AllocsPerRun(10_000, func() {
				step(i)
				i++
			})
			if avg != 0 {
				t.Fatalf("Unit.Load/Store allocates %.4f objects/record after warm-up, want 0", avg)
			}
		})
	}
}

// BenchmarkAnnotatorRecord measures the streaming per-record annotation
// hot path under the paper's Simple configuration.
func BenchmarkAnnotatorRecord(b *testing.B) {
	tr := mixedTrace(4096)
	a, err := NewAnnotator(Simple, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Record(&tr.Records[i%len(tr.Records)])
	}
}
