// Package stats provides the small numeric helpers the experiment drivers
// share: geometric means (the paper reports GM rows), means, and formatting.
package stats

import (
	"fmt"
	"math"
)

// GeoMean returns the geometric mean of xs (0 if empty; non-positive values
// are clamped to a tiny epsilon so a single degenerate run cannot zero the
// whole row).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			x = 1e-9
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs (0 if empty). If the running sum
// overflows to ±Inf even though a finite mean exists (values near
// math.MaxFloat64), it falls back to an incremental mean that never forms
// the full sum; the fast path keeps bit-identical results for ordinary
// inputs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	if !math.IsInf(sum, 0) {
		return sum / float64(len(xs))
	}
	m := 0.0
	for i, x := range xs {
		n := float64(i + 1)
		m += x/n - m/n
	}
	return m
}

// Pct formats a fraction as a percentage with the given precision.
func Pct(frac float64, prec int) string {
	return fmt.Sprintf("%.*f%%", prec, 100*frac)
}

// Ratio formats a speedup ratio the way the paper's tables do (e.g. 1.057).
func Ratio(r float64) string {
	return fmt.Sprintf("%.3f", r)
}
