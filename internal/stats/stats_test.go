package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeoMean(t *testing.T) {
	if g := GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil) = %v", g)
	}
	if g := GeoMean([]float64{4, 1}); math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean(4,1) = %v, want 2", g)
	}
	if g := GeoMean([]float64{1.1, 1.1, 1.1}); math.Abs(g-1.1) > 1e-12 {
		t.Errorf("GeoMean(const) = %v", g)
	}
	// Non-positive values are clamped, not fatal.
	if g := GeoMean([]float64{0, 1}); g <= 0 || math.IsNaN(g) {
		t.Errorf("GeoMean with zero = %v", g)
	}
}

func TestGeoMeanBetweenMinAndMax(t *testing.T) {
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a)/100 + 0.5, float64(b)/100 + 0.5, float64(c)/100 + 0.5}
		g := GeoMean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v", m)
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %v, want 2", m)
	}
}

// TestMeanEdgeCases is the table-driven edge-case sweep: empty and
// single-sample inputs, sign cancellation, and overflow-adjacent values
// whose naive running sum leaves float64 range even though the mean itself
// is representable.
func TestMeanEdgeCases(t *testing.T) {
	big := math.MaxFloat64
	cases := []struct {
		name string
		xs   []float64
		want float64
		tol  float64 // relative; 0 means exact
	}{
		{"empty", nil, 0, 0},
		{"empty slice", []float64{}, 0, 0},
		{"single", []float64{3.5}, 3.5, 0},
		{"single zero", []float64{0}, 0, 0},
		{"single negative", []float64{-7}, -7, 0},
		{"exact ints", []float64{1, 2, 3}, 2, 0},
		{"cancellation", []float64{big, -big}, 0, 0},
		{"overflow two max", []float64{big, big}, big, 1e-9},
		{"overflow four max", []float64{big, big, big, big}, big, 1e-9},
		{"overflow mixed sign", []float64{big, big, -big}, big / 3, 1e-9},
		{"overflow halves", []float64{big / 2, big / 2, big / 2}, big / 2, 1e-9},
		{"tiny denormal-adjacent", []float64{5e-324, 5e-324}, 5e-324, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Mean(tc.xs)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("Mean = %v, want finite %v", got, tc.want)
			}
			if tc.tol == 0 {
				if got != tc.want {
					t.Fatalf("Mean = %v, want exactly %v", got, tc.want)
				}
				return
			}
			if diff := math.Abs(got - tc.want); diff > tc.tol*math.Abs(tc.want) {
				t.Fatalf("Mean = %v, want %v (±%v rel)", got, tc.want, tc.tol)
			}
		})
	}
}

// TestGeoMeanEdgeCases covers the degenerate inputs experiment rows can
// produce: empty, single sample, non-positive values (clamped, not fatal),
// and magnitudes at both float64 extremes (the log-space formulation must
// not overflow where a naive product would).
func TestGeoMeanEdgeCases(t *testing.T) {
	big := math.MaxFloat64
	cases := []struct {
		name string
		xs   []float64
		want float64
		tol  float64 // relative
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{2.5}, 2.5, 1e-12},
		{"single one", []float64{1}, 1, 0},
		{"product overflows", []float64{big / 2, big / 2, big / 2}, big / 2, 1e-9},
		{"product underflows", []float64{1e-300, 1e-300, 1e-300}, 1e-300, 1e-9},
		{"wide spread", []float64{1e300, 1e-300}, 1, 1e-9},
		{"all clamped", []float64{0, -5}, 1e-9, 1e-6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := GeoMean(tc.xs)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("GeoMean = %v, want finite %v", got, tc.want)
			}
			if tc.tol == 0 {
				if got != tc.want {
					t.Fatalf("GeoMean = %v, want exactly %v", got, tc.want)
				}
				return
			}
			if tc.want == 0 {
				if got != 0 {
					t.Fatalf("GeoMean = %v, want 0", got)
				}
				return
			}
			if diff := math.Abs(got - tc.want); diff > tc.tol*math.Abs(tc.want) {
				t.Fatalf("GeoMean = %v, want %v (±%v rel)", got, tc.want, tc.tol)
			}
		})
	}
}

// TestFormattingEdgeCases pins Pct/Ratio on boundary fractions.
func TestFormattingEdgeCases(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Pct(0, 1), "0.0%"},
		{Pct(1, 0), "100%"},
		{Pct(0.005, 2), "0.50%"},
		{Ratio(1), "1.000"},
		{Ratio(0.9994), "0.999"},
		{Ratio(0.99951), "1.000"}, // rounds up across the 1.0 boundary
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("formatted %q, want %q", tc.got, tc.want)
		}
	}
}

func TestFormatting(t *testing.T) {
	if s := Pct(0.1234, 1); s != "12.3%" {
		t.Errorf("Pct = %q", s)
	}
	if s := Ratio(1.0567); s != "1.057" {
		t.Errorf("Ratio = %q", s)
	}
}
