package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeoMean(t *testing.T) {
	if g := GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil) = %v", g)
	}
	if g := GeoMean([]float64{4, 1}); math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean(4,1) = %v, want 2", g)
	}
	if g := GeoMean([]float64{1.1, 1.1, 1.1}); math.Abs(g-1.1) > 1e-12 {
		t.Errorf("GeoMean(const) = %v", g)
	}
	// Non-positive values are clamped, not fatal.
	if g := GeoMean([]float64{0, 1}); g <= 0 || math.IsNaN(g) {
		t.Errorf("GeoMean with zero = %v", g)
	}
}

func TestGeoMeanBetweenMinAndMax(t *testing.T) {
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a)/100 + 0.5, float64(b)/100 + 0.5, float64(c)/100 + 0.5}
		g := GeoMean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v", m)
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %v, want 2", m)
	}
}

func TestFormatting(t *testing.T) {
	if s := Pct(0.1234, 1); s != "12.3%" {
		t.Errorf("Pct = %q", s)
	}
	if s := Ratio(1.0567); s != "1.057" {
		t.Errorf("Ratio = %q", s)
	}
}
