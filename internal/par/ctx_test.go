package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestForEachCtxCancelStopsLaunching cancels mid-fan-out and checks that
// (a) the call returns the context error and (b) a tail of indices was
// never launched.
func TestForEachCtxCancelStopsLaunching(t *testing.T) {
	const n = 1000
	ctx, cancel := context.WithCancel(context.Background())
	var launched atomic.Int64
	err := ForEachCtx(ctx, 2, n, func(i int) error {
		launched.Add(1)
		if i == 3 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if l := launched.Load(); l == n {
		t.Fatalf("all %d tasks launched despite cancellation", n)
	}
}

// TestForEachCtxTaskErrorWins pins the deterministic error choice under
// cancellation: a real task failure beats the context error.
func TestForEachCtxTaskErrorWins(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("cell failed")
	err := ForEachCtx(ctx, 4, 50, func(i int) error {
		if i == 1 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want task error", err)
	}
}

// TestForEachCtxPreCancelled runs nothing when the context is already done.
func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var launched atomic.Int64
	err := ForEachCtx(ctx, 4, 10, func(i int) error {
		launched.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if l := launched.Load(); l != 0 {
		t.Fatalf("%d tasks launched on a dead context, want 0", l)
	}
}

// TestCacheGetCtxWaiterCancelled checks a waiter abandons an in-flight
// build when its context fires, without disturbing the build itself.
func TestCacheGetCtxWaiterCancelled(t *testing.T) {
	var c Cache[string, int]
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		c.Get("slow", func() (int, error) {
			close(started)
			<-release
			return 7, nil
		})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.GetCtx(ctx, "slow", func() (int, error) { return 0, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}

	close(release)
	v, err := c.Get("slow", func() (int, error) { return 0, errors.New("rebuilt") })
	if err != nil || v != 7 {
		t.Fatalf("build result = %d, %v; want 7 from the original flight", v, err)
	}
}

// TestCacheGetCtxCancelledBuildNotCached pins the poison-proofing: a build
// failing with a context error is evicted, so the next Get rebuilds.
func TestCacheGetCtxCancelledBuildNotCached(t *testing.T) {
	var c Cache[string, int]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.GetCtx(ctx, "k", func() (int, error) {
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("first get err = %v, want context.Canceled", err)
	}
	if c.Len() != 0 {
		t.Fatalf("cancelled build stayed cached (%d entries)", c.Len())
	}
	v, err := c.Get("k", func() (int, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("rebuild = %d, %v; want 42, nil", v, err)
	}
	if c.Len() != 1 {
		t.Fatalf("rebuilt value not cached (%d entries)", c.Len())
	}
}

// TestCacheGetCtxNonContextErrorStaysCached guards the existing contract:
// ordinary errors are still memoized even through the ctx-aware path.
func TestCacheGetCtxNonContextErrorStaysCached(t *testing.T) {
	var c Cache[string, int]
	var builds atomic.Int64
	boom := errors.New("boom")
	for i := 0; i < 3; i++ {
		_, err := c.GetCtx(context.Background(), "bad", func() (int, error) {
			builds.Add(1)
			return 0, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("attempt %d: err = %v, want boom", i, err)
		}
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("failing build ran %d times, want 1", n)
	}
}
