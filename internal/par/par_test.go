package par

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCacheSingleFlight is the contract the experiment suite depends on:
// N goroutines requesting the same key observe exactly one build.
func TestCacheSingleFlight(t *testing.T) {
	var c Cache[string, int]
	var builds atomic.Int64
	const goroutines = 64

	var wg sync.WaitGroup
	results := make([]int, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Get("trace/grep/ppc", func() (int, error) {
				builds.Add(1)
				// Widen the race window so late arrivals really do
				// find the build in flight.
				time.Sleep(5 * time.Millisecond)
				return 42, nil
			})
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times, want exactly 1", n)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("goroutine %d saw %d, want 42", i, v)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d keys, want 1", c.Len())
	}
}

// TestCacheStress hammers many keys from many goroutines in parallel with
// the rest of the test binary; under -race this is the data-race gate for
// the cache implementation.
func TestCacheStress(t *testing.T) {
	t.Parallel()
	const keys, goroutines, rounds = 16, 8, 50

	var c Cache[int, string]
	var builds [keys]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := (g + r) % keys
				v, err := c.Get(k, func() (string, error) {
					builds[k].Add(1)
					return fmt.Sprintf("value-%d", k), nil
				})
				if err != nil || v != fmt.Sprintf("value-%d", k) {
					t.Errorf("key %d: got %q, %v", k, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	for k := range builds {
		if n := builds[k].Load(); n != 1 {
			t.Errorf("key %d built %d times, want 1", k, n)
		}
	}
	if c.Len() != keys {
		t.Errorf("cache holds %d keys, want %d", c.Len(), keys)
	}
}

// TestCacheErrorCached pins that a failed build is memoized too: the suite's
// builds are deterministic, so retrying an identical computation would only
// repeat the failure (and could mask a partial-result inconsistency).
func TestCacheErrorCached(t *testing.T) {
	var c Cache[string, int]
	var builds atomic.Int64
	boom := errors.New("boom")
	for i := 0; i < 3; i++ {
		_, err := c.Get("bad", func() (int, error) {
			builds.Add(1)
			return 0, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("attempt %d: err = %v, want boom", i, err)
		}
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("failing build ran %d times, want 1", n)
	}
}

// TestCacheDistinctKeys pins that different keys build independently.
func TestCacheDistinctKeys(t *testing.T) {
	type key struct {
		name, target string
		scale        int
	}
	var c Cache[key, int]
	a, _ := c.Get(key{"grep", "ppc", 1}, func() (int, error) { return 1, nil })
	b, _ := c.Get(key{"grep", "axp", 1}, func() (int, error) { return 2, nil })
	s, _ := c.Get(key{"grep", "ppc", 2}, func() (int, error) { return 3, nil })
	if a != 1 || b != 2 || s != 3 {
		t.Fatalf("got %d/%d/%d, want 1/2/3", a, b, s)
	}
}

// TestPoolBounded submits far more tasks than workers and checks the
// concurrency high-water mark never exceeds the bound.
func TestPoolBounded(t *testing.T) {
	const workers, tasks = 3, 40
	p := NewPool(workers)
	var running, highWater atomic.Int64
	for i := 0; i < tasks; i++ {
		p.Go(func() error {
			n := running.Add(1)
			for {
				hw := highWater.Load()
				if n <= hw || highWater.CompareAndSwap(hw, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			running.Add(-1)
			return nil
		})
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if hw := highWater.Load(); hw > workers {
		t.Fatalf("observed %d concurrent tasks, bound is %d", hw, workers)
	}
}

func TestPoolError(t *testing.T) {
	p := NewPool(2)
	boom := errors.New("task failed")
	for i := 0; i < 10; i++ {
		i := i
		p.Go(func() error {
			if i == 7 {
				return boom
			}
			return nil
		})
	}
	if err := p.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want task error", err)
	}
}

// TestForEachVisitsAll checks every index runs exactly once.
func TestForEachVisitsAll(t *testing.T) {
	const n = 100
	var visits [n]atomic.Int64
	err := ForEach(4, n, func(i int) error {
		visits[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range visits {
		if v := visits[i].Load(); v != 1 {
			t.Errorf("index %d visited %d times", i, v)
		}
	}
}

// TestForEachLowestIndexError pins the deterministic error choice: when
// several indices fail, the lowest index's error is reported regardless of
// completion order.
func TestForEachLowestIndexError(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		err := ForEach(8, 20, func(i int) error {
			if i%3 == 2 { // fails at 2, 5, 8, ...
				if i == 2 {
					// Make the lowest failure finish last.
					time.Sleep(2 * time.Millisecond)
				}
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 2 failed" {
			t.Fatalf("trial %d: err = %v, want cell 2's", trial, err)
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("nope") }); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers = %d", DefaultWorkers())
	}
	// workers <= 0 must fall back to the default, not deadlock.
	if err := ForEach(0, 5, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	p := NewPool(-1)
	p.Go(func() error { return nil })
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
}
