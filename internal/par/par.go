// Package par provides the concurrency primitives the experiment engine is
// built from: a bounded worker pool, a deterministic indexed fan-out helper,
// and a single-flight memoizing cache (cache.go).
//
// The design goal is determinism under parallelism: experiment drivers fan
// work out over a Pool but merge results into pre-sized, index-addressed
// slots, so the rendered tables and figures are byte-identical regardless of
// worker count or completion order.
package par

import (
	"context"
	"runtime"
	"sync"
)

// DefaultWorkers returns the default pool size: the process's GOMAXPROCS.
func DefaultWorkers() int {
	return max(1, runtime.GOMAXPROCS(0))
}

// Pool is a bounded parallel executor. Submitted tasks run on at most
// `workers` goroutines at once; excess submissions block in Go until a slot
// frees up. The zero value is not usable; call NewPool.
type Pool struct {
	sem chan struct{}
	wg  sync.WaitGroup

	mu  sync.Mutex
	err error
}

// NewPool returns a pool running at most workers tasks concurrently.
// workers <= 0 selects DefaultWorkers().
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Go submits one task. It blocks while all workers are busy (providing
// backpressure so a large fan-out does not materialize every task at once).
func (p *Pool) Go(fn func() error) {
	p.wg.Add(1)
	p.sem <- struct{}{}
	go func() {
		defer p.wg.Done()
		defer func() { <-p.sem }()
		if err := fn(); err != nil {
			p.mu.Lock()
			if p.err == nil {
				p.err = err
			}
			p.mu.Unlock()
		}
	}()
}

// Wait blocks until every submitted task has finished and returns the first
// error observed (in completion order). For a deterministic error choice use
// ForEach, which reports the lowest-index failure.
func (p *Pool) Wait() error {
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Meter observes worker occupancy: Acquire when a task starts running,
// Release when it finishes. Implementations must be safe for concurrent use
// (obs.Gauge satisfies this, tracking busy count and high-water mark).
type Meter interface {
	Acquire()
	Release()
}

// ForEach runs fn(i) for every i in [0, n) on a bounded pool of `workers`
// goroutines (<= 0 selects DefaultWorkers) and waits for all of them.
//
// Each index writes its error into a private slot, and ForEach returns the
// non-nil error with the lowest index — so the error path, like the success
// path, is independent of scheduling order.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachMeter(workers, n, nil, fn)
}

// ForEachMeter is ForEach with an occupancy meter observing how many tasks
// are running at once; m == nil meters nothing.
func ForEachMeter(workers, n int, m Meter, fn func(i int) error) error {
	return ForEachMeterCtx(context.Background(), workers, n, m, fn)
}

// ForEachCtx is ForEach with cancellation: once ctx is done no further
// indices are launched (already-running tasks finish normally; fn observes
// cancellation itself if it checks ctx). If every launched task succeeded
// but some indices were skipped, it returns ctx's error.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	return ForEachMeterCtx(ctx, workers, n, nil, fn)
}

// ForEachMeterCtx is ForEachCtx with an occupancy meter; m == nil meters
// nothing. Error choice stays deterministic: the non-nil error with the
// lowest index wins, and a context error is reported only when no launched
// task failed first.
func ForEachMeterCtx(ctx context.Context, workers, n int, m Meter, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	done := ctx.Done()
	skipped := false
launch:
	for i := 0; i < n; i++ {
		// Check cancellation before blocking on a worker slot, and
		// again while waiting for one, so a cancelled fan-out stops
		// submitting as soon as the context fires.
		select {
		case <-done:
			skipped = true
			break launch
		default:
		}
		select {
		case <-done:
			skipped = true
			break launch
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if m != nil {
				m.Acquire()
				defer m.Release()
			}
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if skipped {
		return ctx.Err()
	}
	return nil
}
