package par

import (
	"context"
	"errors"
	"sync"
)

// Cache is a concurrency-safe, single-flight memo table: for each key the
// build function runs exactly once, no matter how many goroutines ask for
// the key concurrently; the rest block until the first build completes and
// then share its result. Results (including errors — builds here are pure,
// deterministic computations) are cached forever, with one exception: a
// build that fails with a context error is evicted so cancellation never
// poisons the table (see GetCtx).
//
// The zero value is ready to use.
type Cache[K comparable, V any] struct {
	mu   sync.Mutex
	m    map[K]*flight[V]
	gets int64
	hits int64
}

// CacheStats is a snapshot of a cache's traffic: total Get calls, the
// subset that found an existing (or in-flight) entry, and the number of
// distinct keys. Gets - Hits is the number of builds started — with
// single-flight coalescing it equals Entries, which is exactly what the
// suite's single-flight tests assert.
type CacheStats struct {
	Gets    int64
	Hits    int64
	Entries int
}

// Builds is the number of build functions started (cache misses).
func (s CacheStats) Builds() int64 { return s.Gets - s.Hits }

// HitRate is Hits per Get.
func (s CacheStats) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

type flight[V any] struct {
	done chan struct{}
	v    V
	err  error
}

// Get returns the cached value for key, building it with build on first use.
// Concurrent Gets for the same key run build once and share the result.
// build runs without any cache lock held, so it may itself Get from other
// caches (but must not re-enter the same key, which would deadlock).
func (c *Cache[K, V]) Get(key K, build func() (V, error)) (V, error) {
	return c.GetCtx(context.Background(), key, build)
}

// GetCtx is Get with cancellation. A waiter whose ctx fires stops waiting
// and returns ctx's error; the in-flight build itself is unaffected (it
// belongs to whichever caller started it). If build fails with a context
// error — its own ctx was cancelled or timed out — the result is NOT cached:
// the key is removed so a later caller rebuilds it, rather than a transient
// cancellation poisoning the memo table forever. All other errors stay
// cached, preserving the pure-deterministic-build contract.
func (c *Cache[K, V]) GetCtx(ctx context.Context, key K, build func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*flight[V])
	}
	c.gets++
	f, ok := c.m[key]
	if ok {
		c.hits++
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.v, f.err
		case <-ctx.Done():
			var zero V
			return zero, ctx.Err()
		}
	}
	f = &flight[V]{done: make(chan struct{})}
	c.m[key] = f
	c.mu.Unlock()

	f.v, f.err = build()
	if f.err != nil && (errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded)) {
		// Evict before waking waiters: anyone already blocked on this
		// flight shares the cancellation, but the next Get for the key
		// starts a fresh build.
		c.mu.Lock()
		if c.m[key] == f {
			delete(c.m, key)
		}
		c.mu.Unlock()
	}
	close(f.done)
	return f.v, f.err
}

// Len reports the number of cached (or in-flight) keys.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats reports the cache's traffic counters.
func (c *Cache[K, V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Gets: c.gets, Hits: c.hits, Entries: len(c.m)}
}
