package par

import "sync"

// Cache is a concurrency-safe, single-flight memo table: for each key the
// build function runs exactly once, no matter how many goroutines ask for
// the key concurrently; the rest block until the first build completes and
// then share its result. Results (including errors — builds here are pure,
// deterministic computations) are cached forever.
//
// The zero value is ready to use.
type Cache[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*flight[V]
}

type flight[V any] struct {
	done chan struct{}
	v    V
	err  error
}

// Get returns the cached value for key, building it with build on first use.
// Concurrent Gets for the same key run build once and share the result.
// build runs without any cache lock held, so it may itself Get from other
// caches (but must not re-enter the same key, which would deadlock).
func (c *Cache[K, V]) Get(key K, build func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*flight[V])
	}
	f, ok := c.m[key]
	if ok {
		c.mu.Unlock()
		<-f.done
		return f.v, f.err
	}
	f = &flight[V]{done: make(chan struct{})}
	c.m[key] = f
	c.mu.Unlock()

	defer close(f.done)
	f.v, f.err = build()
	return f.v, f.err
}

// Len reports the number of cached (or in-flight) keys.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
