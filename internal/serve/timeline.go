package serve

import (
	"sort"
	"time"
)

// Timeline is the wire form of a job's span flight record
// (GET /v1/jobs/{id}/timeline): every span the job's bounded recorder still
// holds, ordered by start time. It is available for any job the manager
// knows — running, finished, cancelled — without tracing having been
// enabled, which is what makes a stuck or failed job post-mortemable.
type Timeline struct {
	Job   string `json:"job"`
	Trace string `json:"trace_id"`
	State string `json:"state"`
	// Dropped counts spans the bounded recorder evicted; when > 0 the
	// timeline is the most recent window, not the whole job.
	Dropped int64          `json:"dropped,omitempty"`
	Spans   []TimelineSpan `json:"spans"`
}

// TimelineSpan is one completed span: Parent refers to another span's ID
// (0 = the root). Attrs carry the span's structured attributes (cell
// identity, benchmark names, record counts).
type TimelineSpan struct {
	ID         uint64         `json:"id"`
	Parent     uint64         `json:"parent,omitempty"`
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationNS int64          `json:"duration_ns"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// Timeline snapshots the job's flight recorder, ordered by span start time
// (ties by span ID, so the order is total and stable).
func (j *Job) Timeline() Timeline {
	st := j.Status()
	spans, dropped := j.rec.Snapshot()
	tl := Timeline{
		Job:     j.ID,
		Trace:   j.TraceID,
		State:   st.State,
		Dropped: dropped,
		Spans:   make([]TimelineSpan, 0, len(spans)),
	}
	for _, s := range spans {
		ts := TimelineSpan{
			ID:         s.ID,
			Parent:     s.Parent,
			Name:       s.Name,
			Start:      s.Start,
			DurationNS: int64(s.Duration),
		}
		if len(s.Attrs) > 0 {
			ts.Attrs = make(map[string]any, len(s.Attrs))
			for _, a := range s.Attrs {
				ts.Attrs[a.Key] = a.Value.Resolve().Any()
			}
		}
		tl.Spans = append(tl.Spans, ts)
	}
	sort.SliceStable(tl.Spans, func(a, b int) bool {
		if !tl.Spans[a].Start.Equal(tl.Spans[b].Start) {
			return tl.Spans[a].Start.Before(tl.Spans[b].Start)
		}
		return tl.Spans[a].ID < tl.Spans[b].ID
	})
	return tl
}
