package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"lvp/internal/exp"
	"lvp/internal/locality"
	"lvp/internal/lvp"
)

// shutdownNow drains a manager with a short deadline so tests always clean
// up even when they left jobs running deliberately.
func shutdownNow(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	m.Shutdown(ctx)
}

// streamEvents reads a job's whole NDJSON stream through an HTTP client.
func streamEvents(t *testing.T, httpc *http.Client, base, id string) []Event {
	t.Helper()
	resp, err := httpc.Get(base + "/v1/jobs/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results content-type = %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// submit posts a spec and decodes the response.
func submit(t *testing.T, httpc *http.Client, base string, spec JobSpec) (JobStatus, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := httpc.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	return st, resp
}

// TestE2EByteIdentity is the acceptance gate: an in-process lvpd serves a
// multi-cell job (simulations on all three machines plus locality sweeps)
// over HTTP, and every streamed result payload is byte-identical to
// json.Marshal of the same cell computed via exp.Suite directly.
func TestE2EByteIdentity(t *testing.T) {
	mgr := NewManager(Config{Workers: 4})
	defer shutdownNow(t, mgr)
	srv := httptest.NewServer(NewHandler(mgr))
	defer srv.Close()
	httpc := srv.Client()

	spec := JobSpec{
		Benchmarks:      []string{"quick", "grep"},
		Machines:        []string{Machine620, Machine620Plus, Machine21164},
		Configs:         []string{ConfigNone, "Simple"},
		LocalityTargets: []string{"ppc", "axp"},
		LocalityDepths:  []int{1, 16},
	}
	st, resp := submit(t, httpc, srv.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	wantCells := len(spec.Cells())
	if st.Cells != wantCells {
		t.Fatalf("accepted job has %d cells, want %d", st.Cells, wantCells)
	}

	events := streamEvents(t, httpc, srv.URL, st.ID)
	if len(events) != wantCells+1 {
		t.Fatalf("stream has %d events, want %d cells + done", len(events), wantCells)
	}
	last := events[len(events)-1]
	if last.Type != "done" || last.State != StateDone {
		t.Fatalf("terminal event = %+v, want done/done", last)
	}

	// Recompute every cell directly on a fresh suite and compare bytes.
	direct := exp.NewSuiteParallel(1, 4)
	for i, ev := range events[:wantCells] {
		if ev.Type != "cell" || ev.Index != i {
			t.Fatalf("event %d = %+v, want cell event in index order", i, ev)
		}
		if ev.Error != "" {
			t.Fatalf("cell %d (%s) failed: %s", i, ev.Cell, ev.Error)
		}
		cell := *ev.Cell
		var want []byte
		switch cell.Kind {
		case "sim":
			var cfgPtr *lvp.Config
			if cell.Config != ConfigNone {
				cfg, err := lvp.ByName(cell.Config)
				if err != nil {
					t.Fatal(err)
				}
				cfgPtr = &cfg
			}
			switch cell.Machine {
			case Machine21164:
				stats, err := direct.Sim21164(cell.Bench, cfgPtr)
				if err != nil {
					t.Fatal(err)
				}
				want, _ = json.Marshal(stats)
			default:
				stats, err := direct.Sim620(cell.Bench, cell.Machine == Machine620Plus, cfgPtr)
				if err != nil {
					t.Fatal(err)
				}
				want, _ = json.Marshal(stats)
			}
		case "locality":
			tg, err := targetByName(cell.Target)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := direct.Trace(cell.Bench, tg)
			if err != nil {
				t.Fatal(err)
			}
			want, _ = json.Marshal(locality.Measure(tr, locality.DefaultEntries, cell.Depths...))
		}
		if !bytes.Equal(ev.Result, want) {
			t.Errorf("cell %d (%s): served bytes differ from direct computation\n served: %s\n direct: %s",
				i, cell, ev.Result, want)
		}
	}

	// The job's status must be terminal and fully counted.
	final, resp2 := getStatus(t, httpc, srv.URL, st.ID)
	if resp2.StatusCode != http.StatusOK || final.State != StateDone || final.CellsDone != wantCells {
		t.Fatalf("final status = %+v (http %d)", final, resp2.StatusCode)
	}
}

func getStatus(t *testing.T, httpc *http.Client, base, id string) (JobStatus, *http.Response) {
	t.Helper()
	resp, err := httpc.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	return st, resp
}

// TestQueueFull429 pins the backpressure contract: with one runner held
// busy and a depth-1 queue occupied, the next submission is rejected with
// 429 and a Retry-After hint, and a slot freeing up admits work again.
func TestQueueFull429(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	mgr := NewManager(Config{QueueDepth: 1, Runners: 1, RetryAfter: 2 * time.Second})
	holdFirst := true
	mgr.testJobStart = func(*Job) {
		if holdFirst { // runs on the single runner goroutine only
			holdFirst = false
			started <- struct{}{}
			<-release
		}
	}
	defer shutdownNow(t, mgr)
	defer releaseOnce(release)
	srv := httptest.NewServer(NewHandler(mgr))
	defer srv.Close()
	httpc := srv.Client()

	quick := JobSpec{Benchmarks: []string{"quick"}, Machines: []string{Machine21164}, Configs: []string{ConfigNone}}

	// First job occupies the runner (held by the test hook), second sits
	// in the queue.
	_, resp1 := submit(t, httpc, srv.URL, quick)
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1 status = %d", resp1.StatusCode)
	}
	<-started // runner is now holding job 1
	_, resp2 := submit(t, httpc, srv.URL, quick)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2 status = %d", resp2.StatusCode)
	}

	// Queue full: the third submission must bounce with Retry-After.
	_, resp3 := submit(t, httpc, srv.URL, quick)
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3 status = %d, want 429", resp3.StatusCode)
	}
	if ra := resp3.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}

	// Releasing the runner drains the queue; the client's retry (modelled
	// here as polling) eventually gets admitted.
	releaseOnce(release)
	admitted := false
	for i := 0; i < 100 && !admitted; i++ {
		_, resp := submit(t, httpc, srv.URL, quick)
		admitted = resp.StatusCode == http.StatusAccepted
		if !admitted {
			time.Sleep(20 * time.Millisecond)
		}
	}
	if !admitted {
		t.Fatal("submission never admitted after queue drained")
	}
}

// releaseOnce closes ch if still open (the deferred close tolerates this).
func releaseOnce(ch chan struct{}) {
	defer func() { recover() }()
	close(ch)
}

// TestGracefulDrain checks Shutdown under load: queued and running jobs
// all finish, later submissions are refused with 503, and readyz flips.
func TestGracefulDrain(t *testing.T) {
	mgr := NewManager(Config{QueueDepth: 8, Runners: 1, Workers: 2})
	srv := httptest.NewServer(NewHandler(mgr))
	defer srv.Close()
	httpc := srv.Client()

	quick := JobSpec{Benchmarks: []string{"quick"}, Machines: []string{Machine620, Machine21164}, Configs: []string{ConfigNone, "Simple"}}
	var ids []string
	for i := 0; i < 3; i++ {
		st, resp := submit(t, httpc, srv.URL, quick)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job %d status = %d", i, resp.StatusCode)
		}
		ids = append(ids, st.ID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}

	// Every accepted job ran to completion.
	for _, id := range ids {
		st, _ := getStatus(t, httpc, srv.URL, id)
		if st.State != StateDone {
			t.Errorf("job %s drained into state %q, want done", id, st.State)
		}
	}

	// Draining servers refuse new work and report not-ready.
	_, resp := submit(t, httpc, srv.URL, quick)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit status = %d, want 503", resp.StatusCode)
	}
	ready, err := httpc.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready.Body.Close()
	if ready.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz = %d after drain, want 503", ready.StatusCode)
	}
	health, err := httpc.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Body.Close()
	if health.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d, want 200 (liveness is not readiness)", health.StatusCode)
	}
}

// TestDrainDeadlineCancels checks the other half of Shutdown: when the
// drain context fires first, in-flight jobs are cancelled rather than
// awaited forever.
func TestDrainDeadlineCancels(t *testing.T) {
	release := make(chan struct{})
	defer releaseOnce(release)
	started := make(chan struct{})
	mgr := NewManager(Config{QueueDepth: 2, Runners: 1})
	hold := true
	mgr.testJobStart = func(*Job) {
		if hold {
			hold = false
			close(started)
			<-release
		}
	}
	job, err := mgr.Submit(JobSpec{Benchmarks: []string{"quick"}, Machines: []string{Machine21164}, Configs: []string{ConfigNone}})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// Shutdown's drain deadline (50ms) fires while the runner is still
	// held by the hook; the hook releases well after (400ms), so the job
	// then runs under the already-cancelled base context. Shutdown waits
	// for that forced exit and reports the deadline.
	go func() {
		time.Sleep(400 * time.Millisecond)
		releaseOnce(release)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err = mgr.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}

	select {
	case <-job.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("job never reached a terminal state after forced shutdown")
	}
	if st := job.Status(); st.State != StateFailed && st.State != StateCancelled {
		t.Fatalf("job state after forced shutdown = %q", st.State)
	}
}

// TestMidJobCancellation cancels a streaming job after its first cell and
// checks the stream terminates with a cancelled state, later cells are
// skipped, and — the leak gate — the process returns to its baseline
// goroutine count.
func TestMidJobCancellation(t *testing.T) {
	baseline := runtime.NumGoroutine()

	mgr := NewManager(Config{QueueDepth: 4, Runners: 1, Workers: 1})
	srv := httptest.NewServer(NewHandler(mgr))
	httpc := srv.Client()

	// A wide job: every benchmark on two machines, so cancellation after
	// the first cell always lands mid-job.
	spec := JobSpec{
		Benchmarks: []string{"quick", "grep", "compress", "sc", "cjpeg", "eqntott", "gawk"},
		Machines:   []string{Machine620, Machine620Plus, Machine21164},
		Configs:    []string{ConfigNone, "Simple", "Constant"},
	}
	st, resp := submit(t, httpc, srv.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}

	res, err := httpc.Get(srv.URL + "/v1/jobs/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(res.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var events []Event
	cancelled := false
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
		if !cancelled && ev.Type == "cell" {
			cancelled = true
			req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+st.ID, nil)
			cresp, err := httpc.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			cresp.Body.Close()
			if cresp.StatusCode != http.StatusOK {
				t.Fatalf("cancel status = %d", cresp.StatusCode)
			}
		}
	}
	res.Body.Close()
	if !cancelled {
		t.Fatal("stream produced no cell to cancel after")
	}
	last := events[len(events)-1]
	if last.Type != "done" || last.State != StateCancelled {
		t.Fatalf("terminal event = %+v, want done/cancelled", last)
	}
	if n := len(events) - 1; n >= len(spec.Cells()) {
		t.Errorf("all %d cells ran despite cancellation", n)
	}
	final, _ := getStatus(t, httpc, srv.URL, st.ID)
	if final.State != StateCancelled {
		t.Fatalf("final state = %q, want cancelled", final.State)
	}

	// Tear everything down and assert no goroutines leaked: runner
	// goroutines, job contexts, and stream handlers must all be gone.
	shutdownNow(t, mgr)
	srv.Close()
	httpc.CloseIdleConnections()
	assertGoroutinesReturn(t, baseline)
}

// assertGoroutinesReturn polls until the goroutine count falls back to the
// baseline (with small tolerance for runtime helpers), dumping stacks on
// timeout so leaks are diagnosable.
func assertGoroutinesReturn(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d now vs %d baseline\n%s", n, baseline, buf)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestCancelQueuedJob pins that a job cancelled while still queued never
// runs a cell.
func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	mgr := NewManager(Config{QueueDepth: 2, Runners: 1})
	first := true
	mgr.testJobStart = func(*Job) {
		if first {
			first = false
			started <- struct{}{}
			<-release
		}
	}
	defer shutdownNow(t, mgr)

	quick := JobSpec{Benchmarks: []string{"quick"}, Machines: []string{Machine21164}, Configs: []string{ConfigNone}}
	if _, err := mgr.Submit(quick); err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := mgr.Submit(quick)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	close(release)
	select {
	case <-queued.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("queued job never terminal")
	}
	st := queued.Status()
	if st.State != StateCancelled || st.CellsDone != 0 {
		t.Fatalf("queued-then-cancelled job = %+v, want cancelled with 0 cells", st)
	}
}

// TestSpecValidation sweeps the rejection paths of JobSpec.Validate and the
// HTTP 400 mapping.
func TestSpecValidation(t *testing.T) {
	mgr := NewManager(Config{})
	defer shutdownNow(t, mgr)
	srv := httptest.NewServer(NewHandler(mgr))
	defer srv.Close()
	httpc := srv.Client()

	bad := []JobSpec{
		{},                              // no benchmarks
		{Benchmarks: []string{"nope"}},  // unknown benchmark
		{Benchmarks: []string{"quick"}}, // zero cells
		{Benchmarks: []string{"quick"}, Machines: []string{"620"}},                                       // machines without configs
		{Benchmarks: []string{"quick"}, Machines: []string{"x86"}, Configs: []string{ConfigNone}},        // unknown machine
		{Benchmarks: []string{"quick"}, Machines: []string{"620"}, Configs: []string{"Fancy"}},           // unknown config
		{Benchmarks: []string{"quick"}, LocalityTargets: []string{"arm"}, LocalityDepths: []int{1}},      // unknown target
		{Benchmarks: []string{"quick"}, LocalityTargets: []string{"ppc"}},                                // no depths
		{Benchmarks: []string{"quick"}, LocalityTargets: []string{"ppc"}, LocalityDepths: []int{0}},      // bad depth
		{Benchmarks: []string{"quick"}, Machines: []string{"620"}, Configs: []string{"none"}, Scale: -1}, // bad scale
		{Benchmarks: []string{"quick"}, Machines: []string{"620"}, Configs: []string{"none"}, Scale: 99}, // over MaxScale
	}
	for i, spec := range bad {
		if _, resp := submit(t, httpc, srv.URL, spec); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad spec %d accepted with status %d", i, resp.StatusCode)
		}
	}

	// Unknown fields and oversized bodies are rejected too.
	resp, err := httpc.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"benchmarks":["quick"],"bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown-field spec status = %d, want 400", resp.StatusCode)
	}

	// Unknown job IDs 404 on every job route.
	for _, probe := range []func() (*http.Response, error){
		func() (*http.Response, error) { return httpc.Get(srv.URL + "/v1/jobs/job-999999") },
		func() (*http.Response, error) { return httpc.Get(srv.URL + "/v1/jobs/job-999999/results") },
		func() (*http.Response, error) {
			req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/job-999999", nil)
			return httpc.Do(req)
		},
	} {
		resp, err := probe()
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown-job probe status = %d, want 404", resp.StatusCode)
		}
	}
}

// TestMetricsEndpoint checks /metrics serves a deterministic-shape JSON
// snapshot including serving counters.
func TestMetricsEndpoint(t *testing.T) {
	mgr := NewManager(Config{Workers: 2})
	defer shutdownNow(t, mgr)
	srv := httptest.NewServer(NewHandler(mgr))
	defer srv.Close()
	httpc := srv.Client()

	quick := JobSpec{Benchmarks: []string{"quick"}, Machines: []string{Machine21164}, Configs: []string{ConfigNone}}
	st, _ := submit(t, httpc, srv.URL, quick)
	streamEvents(t, httpc, srv.URL, st.ID) // wait for completion

	resp, err := httpc.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"serve.jobs.submitted", "serve.jobs.completed", "serve.cells.done", "progress.trace"} {
		if snap.Counters[name] < 1 {
			t.Errorf("counter %s = %d, want >= 1 (have: %v)", name, snap.Counters[name], snap.Counters)
		}
	}
}

// TestSharedCachesAcrossJobs pins the serving-side single-flight property:
// two jobs over the same cells build each trace/simulation once.
func TestSharedCachesAcrossJobs(t *testing.T) {
	mgr := NewManager(Config{Workers: 2})
	defer shutdownNow(t, mgr)
	srv := httptest.NewServer(NewHandler(mgr))
	defer srv.Close()
	httpc := srv.Client()

	quick := JobSpec{Benchmarks: []string{"quick"}, Machines: []string{Machine21164}, Configs: []string{ConfigNone, "Simple"}}
	for i := 0; i < 2; i++ {
		st, _ := submit(t, httpc, srv.URL, quick)
		events := streamEvents(t, httpc, srv.URL, st.ID)
		if last := events[len(events)-1]; last.State != StateDone {
			t.Fatalf("job %d ended %q", i, last.State)
		}
	}

	resp, err := httpc.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	// Two identical jobs, but each simulation ran once: the second job was
	// pure cache hits.
	if got := snap.Counters["sim21164.runs"]; got != 2 { // none + Simple
		t.Errorf("sim21164.runs = %d, want 2 (cells shared across jobs)", got)
	}
}

// TestJobListOrder checks GET /v1/jobs reports submission order.
func TestJobListOrder(t *testing.T) {
	mgr := NewManager(Config{QueueDepth: 8})
	defer shutdownNow(t, mgr)

	quick := JobSpec{Benchmarks: []string{"quick"}, Machines: []string{Machine21164}, Configs: []string{ConfigNone}}
	var want []string
	for i := 0; i < 3; i++ {
		j, err := mgr.Submit(quick)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, j.ID)
	}
	list := mgr.List()
	if len(list) != len(want) {
		t.Fatalf("List has %d jobs, want %d", len(list), len(want))
	}
	for i, st := range list {
		if st.ID != want[i] {
			t.Errorf("List[%d] = %s, want %s", i, st.ID, want[i])
		}
	}
}
