package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lvp/internal/exp"
)

// Tests for the distributed-serving building blocks that live in serve: the
// internal cell-execution endpoint, the readiness body, per-tenant
// admission, and the ResultStore/CellRunner hooks.

// execCell posts one CellRequest and returns the response.
func execCell(t *testing.T, httpc *http.Client, base string, req CellRequest) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := httpc.Post(base+"/v1/cells", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestExecCellByteIdentity pins the worker half of distributed mode: the
// raw bytes answered by POST /v1/cells are exactly the json.Marshal of the
// struct the engine returns for the same cell.
func TestExecCellByteIdentity(t *testing.T) {
	mgr := NewManager(Config{Workers: 2})
	defer shutdownNow(t, mgr)
	srv := httptest.NewServer(NewHandler(mgr))
	defer srv.Close()

	resp := execCell(t, srv.Client(), srv.URL, CellRequest{
		Cell: Cell{Kind: "sim", Bench: "quick", Machine: Machine21164, Config: ConfigNone},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exec cell status = %d", resp.StatusCode)
	}
	var got bytes.Buffer
	if _, err := got.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}

	direct := exp.NewSuiteParallel(1, 2)
	stats, err := direct.Sim21164("quick", nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(stats)
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("remote cell differs from direct engine run\n remote: %s\n direct: %s", got.Bytes(), want)
	}
}

// TestExecCellRejections pins the endpoint's error mapping: invalid cells
// are 400 (never retryable), a draining server is 503 (fail over).
func TestExecCellRejections(t *testing.T) {
	mgr := NewManager(Config{})
	srv := httptest.NewServer(NewHandler(mgr))
	defer srv.Close()

	resp := execCell(t, srv.Client(), srv.URL, CellRequest{
		Cell: Cell{Kind: "sim", Bench: "quick", Machine: "vax", Config: ConfigNone},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad machine status = %d, want 400", resp.StatusCode)
	}

	resp = execCell(t, srv.Client(), srv.URL, CellRequest{
		Cell:  Cell{Kind: "sim", Bench: "quick", Machine: Machine21164, Config: ConfigNone},
		Scale: 999,
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("huge scale status = %d, want 400", resp.StatusCode)
	}

	shutdownNow(t, mgr)
	resp = execCell(t, srv.Client(), srv.URL, CellRequest{
		Cell: Cell{Kind: "sim", Bench: "quick", Machine: Machine21164, Config: ConfigNone},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining status = %d, want 503", resp.StatusCode)
	}
}

// TestReadyzBody pins the readiness JSON: the load signals a coordinator
// needs for least-loaded placement, flipping to draining on shutdown.
func TestReadyzBody(t *testing.T) {
	mgr := NewManager(Config{QueueDepth: 7, Runners: 3})
	srv := httptest.NewServer(NewHandler(mgr))
	defer srv.Close()

	get := func() (Readiness, int) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rd Readiness
		if err := json.NewDecoder(resp.Body).Decode(&rd); err != nil {
			t.Fatalf("readyz body did not decode: %v", err)
		}
		return rd, resp.StatusCode
	}

	rd, code := get()
	if code != http.StatusOK {
		t.Fatalf("readyz status = %d, want 200", code)
	}
	if !rd.Ready || rd.Draining || rd.QueueCap != 7 || rd.Runners != 3 {
		t.Errorf("readiness = %+v, want ready with queue_cap 7, runners 3", rd)
	}
	if rd.QueueDepth != 0 || rd.RunningJobs != 0 || rd.InFlightCells != 0 {
		t.Errorf("idle readiness reports load: %+v", rd)
	}

	shutdownNow(t, mgr)
	rd, code = get()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz status = %d, want 503", code)
	}
	if rd.Ready || !rd.Draining {
		t.Errorf("draining readiness = %+v", rd)
	}
}

// TestReadyzCountsInFlightCells pins that remote cell execution shows up in
// the readiness load signal while it runs.
func TestReadyzCountsInFlightCells(t *testing.T) {
	mgr := NewManager(Config{})
	defer shutdownNow(t, mgr)

	release := make(chan struct{})
	started := make(chan struct{})
	mgr.cfg.CellRunner = func(ctx context.Context, cell Cell, scale int) (json.RawMessage, error) {
		close(started)
		<-release
		return json.RawMessage(`{}`), nil
	}
	done := make(chan error, 1)
	go func() {
		_, err := mgr.ExecCell(context.Background(), Cell{Kind: "sim", Bench: "quick", Machine: Machine21164, Config: ConfigNone}, 1, "")
		done <- err
	}()
	<-started
	if rd := mgr.Readiness(); rd.InFlightCells != 1 || rd.Load() != 1 {
		t.Errorf("readiness mid-cell = %+v, want in_flight_cells 1", rd)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if rd := mgr.Readiness(); rd.InFlightCells != 0 {
		t.Errorf("readiness after cell = %+v, want in_flight_cells 0", rd)
	}
}

// TestTenantQuota pins per-tenant admission: a tenant's token bucket
// rejects with 429 + Retry-After once empty, without touching other
// tenants, and refills at the configured rate.
func TestTenantQuota(t *testing.T) {
	mgr := NewManager(Config{TenantRate: 1, TenantBurst: 2})
	defer shutdownNow(t, mgr)
	srv := httptest.NewServer(NewHandler(mgr))
	defer srv.Close()

	// Deterministic clock.
	now := time.Unix(1700000000, 0)
	var mu sync.Mutex
	mgr.tenants.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}

	submitAs := func(tenant string) *http.Response {
		t.Helper()
		body, _ := json.Marshal(JobSpec{Benchmarks: []string{"quick"}, Machines: []string{Machine21164}, Configs: []string{ConfigNone}})
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set("X-Tenant", tenant)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Burst of 2 admitted, third rejected with a refill hint.
	for i := 0; i < 2; i++ {
		if resp := submitAs("acme"); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d status = %d, want 202", i, resp.StatusCode)
		}
	}
	resp := submitAs("acme")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want >= 1s", resp.Header.Get("Retry-After"))
	}

	// Another tenant (and the anonymous tenant) are unaffected.
	if resp := submitAs("globex"); resp.StatusCode != http.StatusAccepted {
		t.Errorf("other tenant status = %d, want 202", resp.StatusCode)
	}
	if resp := submitAs(""); resp.StatusCode != http.StatusAccepted {
		t.Errorf("anonymous tenant status = %d, want 202", resp.StatusCode)
	}

	// One second refills one token at rate 1.
	advance(time.Second)
	if resp := submitAs("acme"); resp.StatusCode != http.StatusAccepted {
		t.Errorf("post-refill status = %d, want 202", resp.StatusCode)
	}
	if resp := submitAs("acme"); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("second post-refill status = %d, want 429", resp.StatusCode)
	}

	if n := mgr.Metrics().Counter("serve.tenant.rejected").Value(); n != 2 {
		t.Errorf("serve.tenant.rejected = %d, want 2", n)
	}
}

// countingStore is an in-memory ResultStore for hook tests.
type countingStore struct {
	mu   sync.Mutex
	m    map[string]json.RawMessage
	hits atomic.Int64
}

func (s *countingStore) key(cell Cell, scale int) string {
	return cell.String() + "@" + strconv.Itoa(scale)
}

func (s *countingStore) Get(cell Cell, scale int) (json.RawMessage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res, ok := s.m[s.key(cell, scale)]
	if ok {
		s.hits.Add(1)
	}
	return res, ok
}

func (s *countingStore) Put(cell Cell, scale int, res json.RawMessage) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[s.key(cell, scale)] = res
}

// TestStoreShortCircuitsCompute pins the store hook: a repeat job is served
// entirely from the store — the runner is never invoked — and its streamed
// payload bytes are identical to the first run's.
func TestStoreShortCircuitsCompute(t *testing.T) {
	store := &countingStore{m: map[string]json.RawMessage{}}
	var computed atomic.Int64
	direct := exp.NewSuiteParallel(1, 2)

	mgr := NewManager(Config{
		Store: store,
		CellRunner: func(ctx context.Context, cell Cell, scale int) (json.RawMessage, error) {
			computed.Add(1)
			return computeCell(direct.WithContext(ctx), cell)
		},
	})
	defer shutdownNow(t, mgr)
	srv := httptest.NewServer(NewHandler(mgr))
	defer srv.Close()

	spec := JobSpec{
		Benchmarks: []string{"quick"},
		Machines:   []string{Machine21164, Machine620},
		Configs:    []string{ConfigNone, "Simple"},
	}
	run := func() []Event {
		t.Helper()
		st, resp := submit(t, srv.Client(), srv.URL, spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status = %d", resp.StatusCode)
		}
		return streamEvents(t, srv.Client(), srv.URL, st.ID)
	}

	first := run()
	wantComputed := int64(len(spec.Cells()))
	if n := computed.Load(); n != wantComputed {
		t.Fatalf("first run computed %d cells, want %d", n, wantComputed)
	}

	second := run()
	if n := computed.Load(); n != wantComputed {
		t.Errorf("repeat run recomputed cells: runner saw %d calls, want still %d", n, wantComputed)
	}
	if n := store.hits.Load(); n != wantComputed {
		t.Errorf("store hits = %d, want %d", n, wantComputed)
	}
	if len(first) != len(second) {
		t.Fatalf("runs streamed %d vs %d events", len(first), len(second))
	}
	for i := range first {
		if !bytes.Equal(first[i].Result, second[i].Result) {
			t.Errorf("cell %d bytes differ between cached and computed runs", i)
		}
	}
}

// TestCellValidate covers the standalone cell validator the execution
// endpoint admits with.
func TestCellValidate(t *testing.T) {
	valid := []Cell{
		{Kind: "sim", Bench: "quick", Machine: Machine620Plus, Config: "Simple"},
		{Kind: "locality", Bench: "quick", Target: "ppc", Depths: []int{1, 4}},
		{Kind: "zoo", Bench: "quick", Predictor: "stride"},
	}
	for _, c := range valid {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%s) = %v, want nil", c, err)
		}
	}
	invalid := []Cell{
		{Kind: "sim", Bench: "no-such-bench", Machine: Machine620, Config: ConfigNone},
		{Kind: "sim", Bench: "quick", Machine: "vax", Config: ConfigNone},
		{Kind: "sim", Bench: "quick", Machine: Machine620, Config: "NoSuchConfig"},
		{Kind: "locality", Bench: "quick", Target: "mips", Depths: []int{1}},
		{Kind: "locality", Bench: "quick", Target: "ppc"},
		{Kind: "locality", Bench: "quick", Target: "ppc", Depths: []int{0}},
		{Kind: "zoo", Bench: "quick", Predictor: "no-such-family"},
		{Kind: "???", Bench: "quick"},
	}
	for _, c := range invalid {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%s) = nil, want error", c)
		}
	}
}
