package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"

	"lvp/internal/exp"
	"lvp/internal/lvp"
	"lvp/internal/obs"
)

// smallSpec is a one-cell job cheap enough to run to completion in every
// telemetry test.
func smallSpec() JobSpec {
	return JobSpec{
		Benchmarks: []string{"quick"},
		Machines:   []string{Machine620},
		Configs:    []string{"Simple"},
	}
}

// runJobToDone submits spec and follows its stream to the terminal event.
func runJobToDone(t *testing.T, httpc *http.Client, base string, spec JobSpec) (JobStatus, *http.Response) {
	t.Helper()
	st, resp := submit(t, httpc, base, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	events := streamEvents(t, httpc, base, st.ID)
	last := events[len(events)-1]
	if last.Type != "done" || last.State != StateDone {
		t.Fatalf("terminal event = %+v, want done/done", last)
	}
	return st, resp
}

// TestTimelineEndpoint is the flight-recorder acceptance gate: a completed
// job — without tracing enabled anywhere — serves an ordered span timeline
// whose root is the job span, with queue-wait, per-cell and engine-phase
// spans parented beneath it, under the trace ID the submit response echoed.
func TestTimelineEndpoint(t *testing.T) {
	mgr := NewManager(Config{Workers: 2})
	defer shutdownNow(t, mgr)
	srv := httptest.NewServer(NewHandler(mgr))
	defer srv.Close()
	httpc := srv.Client()

	spec := smallSpec()
	spec.Machines = []string{Machine620, Machine21164}
	st, resp := runJobToDone(t, httpc, srv.URL, spec)

	rid := resp.Header.Get("X-Request-Id")
	if rid == "" {
		t.Fatal("submit response missing X-Request-Id")
	}
	if st.TraceID != rid {
		t.Fatalf("job trace_id %q != echoed X-Request-Id %q", st.TraceID, rid)
	}

	tlResp, err := httpc.Get(srv.URL + "/v1/jobs/" + st.ID + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer tlResp.Body.Close()
	if tlResp.StatusCode != http.StatusOK {
		t.Fatalf("timeline status = %d", tlResp.StatusCode)
	}
	var tl Timeline
	if err := json.NewDecoder(tlResp.Body).Decode(&tl); err != nil {
		t.Fatal(err)
	}

	if tl.Job != st.ID || tl.Trace != rid || tl.State != StateDone {
		t.Fatalf("timeline header wrong: %+v", tl)
	}
	if tl.Dropped != 0 {
		t.Errorf("small job dropped %d spans", tl.Dropped)
	}
	if !sort.SliceIsSorted(tl.Spans, func(a, b int) bool {
		if !tl.Spans[a].Start.Equal(tl.Spans[b].Start) {
			return tl.Spans[a].Start.Before(tl.Spans[b].Start)
		}
		return tl.Spans[a].ID < tl.Spans[b].ID
	}) {
		t.Error("timeline spans not ordered by start time")
	}

	byName := map[string][]TimelineSpan{}
	for _, s := range tl.Spans {
		byName[s.Name] = append(byName[s.Name], s)
	}
	jobs := byName["job"]
	if len(jobs) != 1 {
		t.Fatalf("got %d job spans, want 1 (names: %v)", len(jobs), spanNames(tl.Spans))
	}
	root := jobs[0]
	if root.Parent != 0 {
		t.Errorf("job span parent = %d, want 0 (root)", root.Parent)
	}
	if root.Attrs["id"] != st.ID {
		t.Errorf("job span id attr = %v, want %s", root.Attrs["id"], st.ID)
	}
	if len(byName["queue-wait"]) != 1 || byName["queue-wait"][0].Parent != root.ID {
		t.Errorf("queue-wait span missing or misparented: %+v", byName["queue-wait"])
	}
	cells := byName["cell"]
	if len(cells) != 2 {
		t.Fatalf("got %d cell spans, want 2", len(cells))
	}
	cellIDs := map[uint64]bool{}
	for _, c := range cells {
		if c.Parent != root.ID {
			t.Errorf("cell span %d parented to %d, want job span %d", c.ID, c.Parent, root.ID)
		}
		cellIDs[c.ID] = true
	}
	// Engine phases (trace, annotate, sim620/sim21164) run on the cell's
	// context view, so they sit under a cell span.
	phases := 0
	for _, name := range []string{"trace", "annotate", "sim620", "sim21164"} {
		for _, p := range byName[name] {
			phases++
			if !cellIDs[p.Parent] {
				t.Errorf("phase span %s/%d parented to %d, not a cell span", name, p.ID, p.Parent)
			}
			if p.DurationNS < 0 {
				t.Errorf("phase span %s has negative duration", name)
			}
		}
	}
	if phases == 0 {
		t.Errorf("no engine phase spans in timeline (names: %v)", spanNames(tl.Spans))
	}

	// Unknown job: 404.
	nf, err := httpc.Get(srv.URL + "/v1/jobs/job-999999/timeline")
	if err != nil {
		t.Fatal(err)
	}
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Errorf("unknown-job timeline status = %d, want 404", nf.StatusCode)
	}
}

func spanNames(spans []TimelineSpan) []string {
	names := make([]string, len(spans))
	for i, s := range spans {
		names[i] = s.Name
	}
	return names
}

// TestPrometheusEndpoint checks /metrics?format=prometheus after real
// traffic: valid exposition (version 0.0.4 content type), the job-wall
// histogram family with cumulative buckets ending at +Inf == _count, and
// the per-route/status HTTP latency histogram.
func TestPrometheusEndpoint(t *testing.T) {
	mgr := NewManager(Config{Workers: 2})
	defer shutdownNow(t, mgr)
	srv := httptest.NewServer(NewHandler(mgr))
	defer srv.Close()
	httpc := srv.Client()

	runJobToDone(t, httpc, srv.URL, smallSpec())

	resp, err := httpc.Get(srv.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}

	type sample struct {
		labels map[string]string
		value  float64
	}
	families := map[string]string{}
	samples := map[string][]sample{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			families[f[2]] = f[3]
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		labels := map[string]string{}
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			j := strings.LastIndexByte(line, '}')
			for _, kv := range splitPromLabels(line[i+1 : j]) {
				eq := strings.IndexByte(kv, '=')
				labels[kv[:eq]] = unescapePromValue(strings.Trim(kv[eq+1:], `"`))
			}
			line = line[j+1:]
		} else {
			fields := strings.Fields(line)
			name, line = fields[0], fields[1]
		}
		var v float64
		if _, err := fmtSscan(strings.TrimSpace(line), &v); err != nil {
			t.Fatalf("bad sample value in %q: %v", sc.Text(), err)
		}
		samples[name] = append(samples[name], sample{labels: labels, value: v})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if families["lvp_serve_job_wall_ns"] != "histogram" {
		t.Fatalf("lvp_serve_job_wall_ns not a histogram family (families: %d)", len(families))
	}
	buckets := samples["lvp_serve_job_wall_ns_bucket"]
	if len(buckets) < 2 {
		t.Fatalf("got %d wall histogram buckets, want >= 2", len(buckets))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i].value < buckets[i-1].value {
			t.Errorf("bucket counts not cumulative at le=%s", buckets[i].labels["le"])
		}
	}
	lastB := buckets[len(buckets)-1]
	counts := samples["lvp_serve_job_wall_ns_count"]
	if lastB.labels["le"] != "+Inf" || len(counts) != 1 || lastB.value != counts[0].value {
		t.Errorf("+Inf bucket %v != _count %v", lastB, counts)
	}
	if counts[0].value < 1 {
		t.Errorf("job wall _count = %v, want >= 1", counts[0].value)
	}

	// The submit POST and the results GET both went through the telemetry
	// middleware before this scrape.
	if families["lvp_http_request_duration_ns"] != "histogram" {
		t.Fatal("http duration family missing or untyped")
	}
	foundSubmit := false
	for _, s := range samples["lvp_http_request_duration_ns_count"] {
		if s.labels["route"] == "POST /v1/jobs" && s.labels["status"] == "202" && s.value >= 1 {
			foundSubmit = true
		}
	}
	if !foundSubmit {
		t.Errorf("no http duration sample for POST /v1/jobs status 202: %v",
			samples["lvp_http_request_duration_ns_count"])
	}

	// The JSON default still works and now carries histograms.
	jr, err := httpc.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(jr.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Histograms["serve.job.wall_ns"].Count < 1 {
		t.Error("JSON snapshot missing serve.job.wall_ns histogram")
	}
}

// splitPromLabels splits a raw label block on commas outside quotes.
func splitPromLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

func unescapePromValue(s string) string {
	r := strings.NewReplacer(`\\`, `\`, `\"`, `"`, `\n`, "\n")
	return r.Replace(s)
}

// fmtSscan parses a float the way the exposition format writes it.
func fmtSscan(s string, v *float64) (int, error) {
	if s == "+Inf" {
		*v = 1 << 62
		return 1, nil
	}
	var err error
	*v, err = parseFloat(s)
	if err != nil {
		return 0, err
	}
	return 1, nil
}

func parseFloat(s string) (float64, error) {
	var v float64
	err := json.Unmarshal([]byte(s), &v)
	return v, err
}

// syncBuffer is a goroutine-safe bytes.Buffer for log/trace sinks.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestAccessLog checks the -access-log middleware: one structured line per
// request with method, route pattern, status, byte count and request ID.
func TestAccessLog(t *testing.T) {
	var buf syncBuffer
	mgr := NewManager(Config{
		Workers:   2,
		AccessLog: slog.New(slog.NewJSONHandler(&buf, nil)),
	})
	defer shutdownNow(t, mgr)
	srv := httptest.NewServer(NewHandler(mgr))
	defer srv.Close()
	httpc := srv.Client()

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "client-id-123")
	resp, err := httpc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d access-log lines, want 1: %q", len(lines), buf.String())
	}
	var entry map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("access-log line not JSON: %v", err)
	}
	checks := map[string]any{
		"method":     "GET",
		"path":       "/healthz",
		"route":      "GET /healthz",
		"status":     float64(200),
		"request_id": "client-id-123",
	}
	for k, want := range checks {
		if entry[k] != want {
			t.Errorf("access log %s = %v, want %v", k, entry[k], want)
		}
	}
	if entry["bytes"] == float64(0) {
		t.Error("access log bytes = 0, want the healthz body length")
	}
}

// TestRequestIDEcho checks sane inbound IDs are adopted and hostile ones
// replaced with a minted ID.
func TestRequestIDEcho(t *testing.T) {
	mgr := NewManager(Config{Workers: 2})
	defer shutdownNow(t, mgr)
	srv := httptest.NewServer(NewHandler(mgr))
	defer srv.Close()
	httpc := srv.Client()

	cases := []struct {
		in    string
		adopt bool
	}{
		{"good-id_1.2", true},
		{"", false},
		{"has spaces", false},
		{`quote"inject`, false},
		{strings.Repeat("x", 65), false},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/healthz", nil)
		if c.in != "" {
			req.Header.Set("X-Request-Id", c.in)
		}
		resp, err := httpc.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		got := resp.Header.Get("X-Request-Id")
		if got == "" {
			t.Errorf("in %q: response missing X-Request-Id", c.in)
			continue
		}
		if c.adopt && got != c.in {
			t.Errorf("in %q: echoed %q, want adopted", c.in, got)
		}
		if !c.adopt && got == c.in {
			t.Errorf("in %q: hostile ID adopted verbatim", c.in)
		}
	}
}

// TestTracingOnIdentity is the identity acceptance gate: with every trace
// channel enabled (spans included), served results are byte-identical to a
// direct engine run — observability never changes output.
func TestTracingOnIdentity(t *testing.T) {
	var sink syncBuffer
	mgr := NewManager(Config{
		Workers: 2,
		Tracer:  obs.NewTracer(&sink, obs.ChanAll),
	})
	defer shutdownNow(t, mgr)
	srv := httptest.NewServer(NewHandler(mgr))
	defer srv.Close()
	httpc := srv.Client()

	spec := smallSpec()
	st, _ := runJobToDone(t, httpc, srv.URL, spec)
	events := streamEvents(t, httpc, srv.URL, st.ID)

	direct := exp.NewSuiteParallel(1, 2)
	cfg, err := lvp.ByName("Simple")
	if err != nil {
		t.Fatal(err)
	}
	stats, err := direct.Sim620("quick", false, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(stats)
	if got := events[0].Result; !bytes.Equal(got, want) {
		t.Errorf("traced served bytes differ from direct run:\n%s\nvs\n%s", got, want)
	}

	// The span channel actually emitted, and each span line carries the
	// job's trace ID.
	spanLines := 0
	for _, line := range strings.Split(strings.TrimSpace(sink.String()), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("corrupt trace line %q: %v", line, err)
		}
		if ev["chan"] == "span" {
			spanLines++
			if ev["trace"] != st.TraceID {
				t.Errorf("span event trace = %v, want %s", ev["trace"], st.TraceID)
			}
		}
	}
	if spanLines == 0 {
		t.Error("no span events emitted with ChanAll tracing")
	}
}
