// Package serve is the lvpd serving subsystem: a job manager that runs
// experiment cells (benchmark × machine × LVP config, plus locality sweeps)
// asynchronously on the shared experiment engine, and an HTTP API
// (http.go) that submits jobs, streams per-cell results as NDJSON, and
// exposes health and metrics endpoints.
//
// The serving contract extends the engine's determinism guarantee across
// the wire: a cell's result payload is the json.Marshal of the exact struct
// the same cell produces through exp.Suite directly, so byte-identity holds
// end to end (the e2e test asserts it). Admission control is a bounded
// queue — a full queue rejects with ErrQueueFull, which the HTTP layer maps
// to 429 + Retry-After — and every job runs under its own context with a
// per-job timeout, mid-flight cancellation, and graceful drain on shutdown.
package serve

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"lvp/internal/bench"
	"lvp/internal/exp"
	"lvp/internal/locality"
	"lvp/internal/lvp"
	"lvp/internal/obs"
	"lvp/internal/prog"
)

// Machine names accepted in JobSpec.Machines.
const (
	Machine620     = "620"
	Machine620Plus = "620+"
	Machine21164   = "21164"
)

// ConfigNone is the pseudo LVP config selecting a machine without LVP
// hardware (the baseline the paper's speedups are measured against).
const ConfigNone = "none"

// JobSpec is the wire form of one experiment job. It expands to a
// deterministic, index-ordered list of cells (see Cells):
//
//   - one simulation cell per benchmark × machine × config, in spec order;
//   - one locality cell per benchmark × locality target, measuring value
//     locality at the given history depths;
//   - one zoo cell per benchmark × predictor family, measuring that
//     family's coverage/accuracy and table-interference counters.
//
// Scale multiplies benchmark run lengths (0 means 1); TimeoutMS bounds the
// job's wall time (0 selects the server default).
type JobSpec struct {
	Benchmarks      []string `json:"benchmarks"`
	Machines        []string `json:"machines,omitempty"`
	Configs         []string `json:"configs,omitempty"`
	LocalityTargets []string `json:"locality_targets,omitempty"`
	LocalityDepths  []int    `json:"locality_depths,omitempty"`
	Predictors      []string `json:"predictors,omitempty"`
	Scale           int      `json:"scale,omitempty"`
	TimeoutMS       int64    `json:"timeout_ms,omitempty"`
}

// Cell is one unit of work: a single machine simulation, one locality
// sweep, or one predictor-zoo measurement. Kind is "sim", "locality" or
// "zoo".
type Cell struct {
	Kind      string `json:"kind"`
	Bench     string `json:"bench"`
	Machine   string `json:"machine,omitempty"`
	Config    string `json:"config,omitempty"`
	Target    string `json:"target,omitempty"`
	Depths    []int  `json:"depths,omitempty"`
	Predictor string `json:"predictor,omitempty"`
}

func (c Cell) String() string {
	switch c.Kind {
	case "locality":
		return fmt.Sprintf("locality %s/%s depths %v", c.Bench, c.Target, c.Depths)
	case "zoo":
		return fmt.Sprintf("zoo %s/%s", c.Bench, c.Predictor)
	}
	return fmt.Sprintf("sim %s/%s/%s", c.Bench, c.Machine, c.Config)
}

// Validate checks one cell against the engine's registries, so a cell can
// be admitted on its own (the distributed cell-execution endpoint) without
// wrapping it in a JobSpec.
func (c Cell) Validate() error {
	if _, err := bench.ByName(c.Bench); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	switch c.Kind {
	case "sim":
		switch c.Machine {
		case Machine620, Machine620Plus, Machine21164:
		default:
			return fmt.Errorf("serve: unknown machine %q (want %s, %s or %s)",
				c.Machine, Machine620, Machine620Plus, Machine21164)
		}
		if c.Config != ConfigNone {
			if _, err := lvp.ByName(c.Config); err != nil {
				return fmt.Errorf("serve: %w", err)
			}
		}
	case "locality":
		if _, err := targetByName(c.Target); err != nil {
			return err
		}
		if len(c.Depths) == 0 {
			return fmt.Errorf("serve: locality cell needs at least one depth")
		}
		for _, d := range c.Depths {
			if d < 1 {
				return fmt.Errorf("serve: locality depth %d out of range (want >= 1)", d)
			}
		}
	case "zoo":
		if _, err := lvp.FamilyByName(c.Predictor); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	default:
		return fmt.Errorf("serve: unknown cell kind %q", c.Kind)
	}
	return nil
}

// CellRequest is the wire form of the internal cell-execution endpoint
// (POST /v1/cells): one cell executed synchronously at one scale. The
// response body on success is the raw result JSON — byte-identical to the
// payload the same cell produces inside a job stream.
type CellRequest struct {
	Cell  Cell `json:"cell"`
	Scale int  `json:"scale,omitempty"`
}

// Validate checks every name in the spec against the engine's registries.
func (s JobSpec) Validate() error {
	if len(s.Benchmarks) == 0 {
		return fmt.Errorf("serve: job needs at least one benchmark")
	}
	for _, b := range s.Benchmarks {
		if _, err := bench.ByName(b); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	for _, m := range s.Machines {
		switch m {
		case Machine620, Machine620Plus, Machine21164:
		default:
			return fmt.Errorf("serve: unknown machine %q (want %s, %s or %s)",
				m, Machine620, Machine620Plus, Machine21164)
		}
	}
	for _, c := range s.Configs {
		if c == ConfigNone {
			continue
		}
		if _, err := lvp.ByName(c); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	for _, tg := range s.LocalityTargets {
		if _, err := targetByName(tg); err != nil {
			return err
		}
	}
	for _, d := range s.LocalityDepths {
		if d < 1 {
			return fmt.Errorf("serve: locality depth %d out of range (want >= 1)", d)
		}
	}
	for _, p := range s.Predictors {
		if _, err := lvp.FamilyByName(p); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	if (len(s.Machines) == 0) != (len(s.Configs) == 0) {
		return fmt.Errorf("serve: machines and configs must be given together")
	}
	if (len(s.LocalityTargets) > 0) && len(s.LocalityDepths) == 0 {
		return fmt.Errorf("serve: locality_targets given without locality_depths")
	}
	if len(s.Cells()) == 0 {
		return fmt.Errorf("serve: job expands to zero cells (give machines+configs, locality_targets+locality_depths, and/or predictors)")
	}
	if s.Scale < 0 {
		return fmt.Errorf("serve: scale %d out of range", s.Scale)
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("serve: timeout_ms %d out of range", s.TimeoutMS)
	}
	return nil
}

// Cells expands the spec into its deterministic cell list: simulation cells
// first (benchmark-major, then machine, then config, all in spec order),
// then locality cells (benchmark-major, then target), then predictor-zoo
// cells (benchmark-major, then family).
func (s JobSpec) Cells() []Cell {
	var cells []Cell
	for _, b := range s.Benchmarks {
		for _, m := range s.Machines {
			for _, c := range s.Configs {
				cells = append(cells, Cell{Kind: "sim", Bench: b, Machine: m, Config: c})
			}
		}
	}
	for _, b := range s.Benchmarks {
		for _, tg := range s.LocalityTargets {
			cells = append(cells, Cell{Kind: "locality", Bench: b, Target: tg, Depths: s.LocalityDepths})
		}
	}
	for _, b := range s.Benchmarks {
		for _, p := range s.Predictors {
			cells = append(cells, Cell{Kind: "zoo", Bench: b, Predictor: p})
		}
	}
	return cells
}

func targetByName(name string) (prog.Target, error) {
	for _, t := range prog.Targets {
		if t.Name == name {
			return t, nil
		}
	}
	return prog.Target{}, fmt.Errorf("serve: unknown target %q (want axp or ppc)", name)
}

// computeCell runs one cell on a (context-scoped) suite view and marshals
// its result — exactly json.Marshal of the struct exp.Suite returns, so the
// streamed bytes match a direct engine run.
func computeCell(s *exp.Suite, c Cell) (json.RawMessage, error) {
	switch c.Kind {
	case "sim":
		var cfgPtr *lvp.Config
		if c.Config != ConfigNone {
			cfg, err := lvp.ByName(c.Config)
			if err != nil {
				return nil, err
			}
			cfgPtr = &cfg
		}
		switch c.Machine {
		case Machine620, Machine620Plus:
			st, err := s.Sim620(c.Bench, c.Machine == Machine620Plus, cfgPtr)
			if err != nil {
				return nil, err
			}
			return json.Marshal(st)
		case Machine21164:
			st, err := s.Sim21164(c.Bench, cfgPtr)
			if err != nil {
				return nil, err
			}
			return json.Marshal(st)
		}
		return nil, fmt.Errorf("serve: unknown machine %q", c.Machine)
	case "locality":
		tg, err := targetByName(c.Target)
		if err != nil {
			return nil, err
		}
		t, err := s.Trace(c.Bench, tg)
		if err != nil {
			return nil, err
		}
		return json.Marshal(locality.Measure(t, locality.DefaultEntries, c.Depths...))
	case "zoo":
		cell, err := s.ZooCell(c.Bench, c.Predictor)
		if err != nil {
			return nil, err
		}
		return json.Marshal(cell)
	}
	return nil, fmt.Errorf("serve: unknown cell kind %q", c.Kind)
}

// Job states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// JobStatus is the wire form of a job's lifecycle snapshot.
type JobStatus struct {
	ID        string    `json:"id"`
	TraceID   string    `json:"trace_id,omitempty"`
	State     string    `json:"state"`
	Error     string    `json:"error,omitempty"`
	Cells     int       `json:"cells"`
	CellsDone int       `json:"cells_done"`
	Created   time.Time `json:"created"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`
}

// Event is one NDJSON line of a job's result stream: a "cell" event per
// completed cell (in cell-index order, carrying either the result payload
// or that cell's error), then exactly one "done" event with the job's final
// state.
type Event struct {
	Type   string          `json:"type"`
	Index  int             `json:"index,omitempty"`
	Cell   *Cell           `json:"cell,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	State  string          `json:"state,omitempty"`
}

// cellOutcome is one cell's stored result or error.
type cellOutcome struct {
	result json.RawMessage
	err    string
}

// Job is one submitted experiment job. All mutable state is guarded by mu;
// per-cell readiness and terminal completion are broadcast through closed
// channels so any number of result streamers can follow along.
type Job struct {
	ID    string
	Spec  JobSpec
	Cells []Cell
	// TraceID is the job's request-scoped trace identity: the X-Request-Id
	// of the submitting HTTP request (minted server-side otherwise). Spans
	// recorded for the job carry it, and the timeline endpoint reports it.
	TraceID string

	// rec is the job's span flight recorder: a bounded ring of completed
	// spans, always on, backing GET /v1/jobs/{id}/timeline.
	rec *obs.FlightRecorder

	mu        sync.Mutex
	state     string
	errMsg    string
	created   time.Time
	started   time.Time
	finished  time.Time
	doneCells int
	cancelled bool   // Cancel was requested (possibly pre-run)
	cancel    func() // cancels the running job's context
	outcomes  []cellOutcome
	ready     []chan struct{} // ready[i] closed once outcomes[i] is valid
	done      chan struct{}   // closed when the job reaches a terminal state
}

func newJob(id, traceID string, spec JobSpec, cells []Cell, flightSpans int, now time.Time) *Job {
	j := &Job{
		ID:       id,
		Spec:     spec,
		Cells:    cells,
		TraceID:  traceID,
		rec:      obs.NewFlightRecorder(flightSpans),
		state:    StateQueued,
		created:  now,
		outcomes: make([]cellOutcome, len(cells)),
		ready:    make([]chan struct{}, len(cells)),
		done:     make(chan struct{}),
	}
	for i := range j.ready {
		j.ready[i] = make(chan struct{})
	}
	return j
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:        j.ID,
		TraceID:   j.TraceID,
		State:     j.state,
		Error:     j.errMsg,
		Cells:     len(j.Cells),
		CellsDone: j.doneCells,
		Created:   j.created,
		Started:   j.started,
		Finished:  j.finished,
	}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// setOutcome stores cell i's result and wakes its waiters.
func (j *Job) setOutcome(i int, res json.RawMessage, err error) {
	j.mu.Lock()
	if err != nil {
		j.outcomes[i] = cellOutcome{err: err.Error()}
	} else {
		j.outcomes[i] = cellOutcome{result: res}
	}
	j.doneCells++
	j.mu.Unlock()
	close(j.ready[i])
}

// outcome reads cell i's outcome; valid only after ready[i] is closed.
func (j *Job) outcome(i int) cellOutcome {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.outcomes[i]
}
