package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"lvp/internal/exp"
)

// TestZooCellsByteIdentity extends the serving acceptance gate to the
// predictor-zoo cells: an in-process lvpd serves a benchmark × family job
// and every streamed payload is byte-identical to json.Marshal of the same
// exp.ZooCell computed directly. It also pins the cell expansion order
// (benchmark-major, families in spec order, after any sim/locality cells).
func TestZooCellsByteIdentity(t *testing.T) {
	mgr := NewManager(Config{Workers: 4})
	defer shutdownNow(t, mgr)
	srv := httptest.NewServer(NewHandler(mgr))
	defer srv.Close()
	httpc := srv.Client()

	spec := JobSpec{
		Benchmarks: []string{"quick", "gawk"},
		Predictors: []string{"two-level", "lv-tagged-16", "stride"},
	}
	wantOrder := []Cell{
		{Kind: "zoo", Bench: "quick", Predictor: "two-level"},
		{Kind: "zoo", Bench: "quick", Predictor: "lv-tagged-16"},
		{Kind: "zoo", Bench: "quick", Predictor: "stride"},
		{Kind: "zoo", Bench: "gawk", Predictor: "two-level"},
		{Kind: "zoo", Bench: "gawk", Predictor: "lv-tagged-16"},
		{Kind: "zoo", Bench: "gawk", Predictor: "stride"},
	}

	st, resp := submit(t, httpc, srv.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if st.Cells != len(wantOrder) {
		t.Fatalf("job has %d cells, want %d", st.Cells, len(wantOrder))
	}

	events := streamEvents(t, httpc, srv.URL, st.ID)
	if len(events) != len(wantOrder)+1 {
		t.Fatalf("stream has %d events, want %d cells + done", len(events), len(wantOrder))
	}
	if last := events[len(events)-1]; last.Type != "done" || last.State != StateDone {
		t.Fatalf("terminal event = %+v, want done/done", last)
	}

	direct := exp.NewSuiteParallel(1, 4)
	for i, ev := range events[:len(wantOrder)] {
		if ev.Type != "cell" || ev.Index != i {
			t.Fatalf("event %d = %+v, want cell event in index order", i, ev)
		}
		if ev.Error != "" {
			t.Fatalf("cell %d (%s) failed: %s", i, ev.Cell, ev.Error)
		}
		cell := *ev.Cell
		if cell.Kind != wantOrder[i].Kind || cell.Bench != wantOrder[i].Bench ||
			cell.Predictor != wantOrder[i].Predictor {
			t.Fatalf("cell %d = %+v, want %+v", i, cell, wantOrder[i])
		}
		dc, err := direct.ZooCell(cell.Bench, cell.Predictor)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := json.Marshal(dc)
		if !bytes.Equal(ev.Result, want) {
			t.Errorf("cell %d (%s): served bytes differ from direct computation\n served: %s\n direct: %s",
				i, cell, ev.Result, want)
		}
		// The payload must be self-describing on the wire.
		var decoded exp.ZooCell
		if err := json.Unmarshal(ev.Result, &decoded); err != nil {
			t.Fatalf("cell %d payload does not decode as ZooCell: %v", i, err)
		}
		if decoded.Family != cell.Predictor || decoded.Bench != cell.Bench || decoded.Loads == 0 {
			t.Fatalf("cell %d payload implausible: %+v", i, decoded)
		}
	}
}

// TestZooSpecValidation sweeps the zoo-specific rejection paths and the
// mixed-kind expansion order (zoo cells come last).
func TestZooSpecValidation(t *testing.T) {
	if err := (JobSpec{Benchmarks: []string{"quick"}, Predictors: []string{"nope"}}).Validate(); err == nil {
		t.Fatal("unknown predictor family accepted")
	}
	// A predictors-only job is a valid spec (it alone yields cells).
	if err := (JobSpec{Benchmarks: []string{"quick"}, Predictors: []string{"stride"}}).Validate(); err != nil {
		t.Fatalf("predictors-only spec rejected: %v", err)
	}

	mixed := JobSpec{
		Benchmarks:      []string{"quick"},
		Machines:        []string{Machine21164},
		Configs:         []string{ConfigNone},
		LocalityTargets: []string{"ppc"},
		LocalityDepths:  []int{1},
		Predictors:      []string{"stride"},
	}
	cells := mixed.Cells()
	if len(cells) != 3 {
		t.Fatalf("mixed spec expands to %d cells, want 3", len(cells))
	}
	if cells[0].Kind != "sim" || cells[1].Kind != "locality" || cells[2].Kind != "zoo" {
		t.Fatalf("mixed cell order = %s, %s, %s; want sim, locality, zoo",
			cells[0].Kind, cells[1].Kind, cells[2].Kind)
	}
	if got := cells[2].String(); got != "zoo quick/stride" {
		t.Fatalf("zoo Cell.String() = %q", got)
	}
}
