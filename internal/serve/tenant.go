package serve

import (
	"sync"
	"time"
)

// Per-tenant admission: a token bucket per tenant, spent one token per job
// submission, sitting ahead of the bounded queue. The tenant is named by
// the X-Tenant request header (sanitized like request IDs; empty or
// malformed names share the anonymous bucket ""), so quotas compose with —
// rather than replace — the queue's global backpressure: a tenant within
// quota can still see 429 from a full queue, and an over-quota tenant is
// rejected before it can crowd the queue at all.

// DefaultTenantBurst is the bucket capacity when Config.TenantBurst is not
// set.
const DefaultTenantBurst = 8

// maxTenantBuckets bounds the limiter's memory against tenant-name
// cardinality attacks; once full, new tenants share the anonymous bucket.
const maxTenantBuckets = 16384

type tenantBucket struct {
	tokens float64
	last   time.Time
}

// tenantLimiter hands out admission tokens. All state is guarded by mu;
// refill happens lazily on admit, so idle tenants cost nothing.
type tenantLimiter struct {
	mu    sync.Mutex
	rate  float64 // tokens per second
	burst float64
	now   func() time.Time // injectable clock for tests
	b     map[string]*tenantBucket
}

func newTenantLimiter(rate float64, burst int) *tenantLimiter {
	if burst <= 0 {
		burst = DefaultTenantBurst
	}
	return &tenantLimiter{
		rate:  rate,
		burst: float64(burst),
		now:   time.Now,
		b:     map[string]*tenantBucket{},
	}
}

// admit spends one token from the tenant's bucket, reporting whether the
// submission may proceed and, when it may not, how long until a whole token
// has refilled (the Retry-After hint).
func (l *tenantLimiter) admit(tenant string) (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	bk := l.b[tenant]
	if bk == nil {
		if len(l.b) >= maxTenantBuckets {
			tenant = ""
			bk = l.b[tenant]
		}
		if bk == nil {
			bk = &tenantBucket{tokens: l.burst, last: now}
			l.b[tenant] = bk
		}
	}
	if dt := now.Sub(bk.last).Seconds(); dt > 0 {
		bk.tokens = min(l.burst, bk.tokens+dt*l.rate)
	}
	bk.last = now
	if bk.tokens >= 1 {
		bk.tokens--
		return true, 0
	}
	wait := time.Duration((1 - bk.tokens) / l.rate * float64(time.Second))
	return false, wait
}

// tenantLabel renders a tenant name for metric labels; the anonymous
// tenant gets an explicit name so the label is never empty.
func tenantLabel(tenant string) string {
	if tenant == "" {
		return "anonymous"
	}
	return tenant
}
