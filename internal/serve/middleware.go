package serve

import (
	"context"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"lvp/internal/obs"
)

// HTTP telemetry middleware: every request gets a request ID (minted, or
// adopted from a sane inbound X-Request-Id) echoed on the response and
// carried in the request context — job submissions adopt it as the job's
// trace ID, so the ID on the wire is the ID in the job's span timeline. The
// middleware also feeds the per-route/per-status latency histograms
// (http.request.duration_ns{route=...,status=...}) and, when configured,
// writes one structured access-log line per request.

// requestIDKey carries the request ID through the request context.
type requestIDKey struct{}

// RequestIDFromContext returns the request's ID, or "" outside a request
// handled by the telemetry middleware.
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// maxRequestIDLen bounds adopted inbound request IDs.
const maxRequestIDLen = 64

// sanitizeRequestID accepts an inbound ID only if it is non-empty, bounded,
// and drawn from a conservative charset (so IDs are safe to echo into
// headers, logs and JSONL traces verbatim); anything else is discarded and
// a fresh ID is minted instead.
func sanitizeRequestID(s string) string {
	if s == "" || len(s) > maxRequestIDLen {
		return ""
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return ""
		}
	}
	return s
}

// statusWriter captures the response status and body size while preserving
// http.Flusher — the NDJSON result stream depends on per-line flushes.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withTelemetry wraps the API mux with request IDs, latency histograms and
// the optional access log. It must wrap the mux directly: the route label
// is the ServeMux pattern, which the mux sets on the request while serving
// it.
func withTelemetry(m *Manager, accessLog *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := sanitizeRequestID(r.Header.Get("X-Request-Id"))
		if rid == "" {
			rid = obs.NewTraceID()
		}
		w.Header().Set("X-Request-Id", rid)
		sw := &statusWriter{ResponseWriter: w}
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, rid))

		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)

		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		status := strconv.Itoa(sw.status)
		m.metrics.Histogram(obs.LabeledName("http.request.duration_ns",
			"route", route, "status", status)).Observe(int64(elapsed))
		if accessLog != nil {
			accessLog.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", sw.status),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("duration", elapsed),
				slog.String("request_id", rid))
		}
	})
}
