package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// API summary (see SERVING.md for schemas and examples):
//
//	POST   /v1/jobs               submit a JobSpec → 202 JobStatus
//	GET    /v1/jobs               list jobs (submission order)
//	GET    /v1/jobs/{id}          one job's status
//	GET    /v1/jobs/{id}/results  NDJSON event stream (Event per line)
//	GET    /v1/jobs/{id}/timeline span timeline from the job's flight recorder
//	DELETE /v1/jobs/{id}          request cancellation
//	GET    /metrics               metrics snapshot (JSON; ?format=prometheus
//	                              for Prometheus text exposition)
//	GET    /healthz               liveness  (200 while the process runs)
//	GET    /readyz                readiness (503 once draining)
//
// Every response carries an X-Request-Id (adopted from the request when sane,
// minted otherwise); a submission's request ID becomes the job's trace ID.
// Backpressure: a full job queue answers 429 with a Retry-After hint; a
// draining server answers 503 for submissions and readiness.

// maxSpecBytes bounds a submitted JobSpec body.
const maxSpecBytes = 1 << 20

// NewHandler returns the lvpd HTTP API over one manager.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) { handleSubmit(m, w, r) })
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) { writeJSON(w, http.StatusOK, m.List()) })
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, err := m.Job(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, job.Status())
	})
	mux.HandleFunc("GET /v1/jobs/{id}/results", func(w http.ResponseWriter, r *http.Request) { handleResults(m, w, r) })
	mux.HandleFunc("GET /v1/jobs/{id}/timeline", func(w http.ResponseWriter, r *http.Request) {
		job, err := m.Job(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, job.Timeline())
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := m.Cancel(r.PathValue("id")); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		job, err := m.Job(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, job.Status())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		m.FinalizeMetrics()
		if r.URL.Query().Get("format") == "prometheus" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			m.Metrics().WritePrometheus(w, "lvp")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		m.Metrics().WriteJSON(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if m.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	return withTelemetry(m, m.cfg.AccessLog, mux)
}

func handleSubmit(m *Manager, w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad job spec: %w", err))
		return
	}
	job, err := m.SubmitTraced(spec, RequestIDFromContext(r.Context()))
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(m)))
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

// retryAfterSeconds renders the manager's hint as whole seconds (minimum 1,
// the header's resolution).
func retryAfterSeconds(m *Manager) int {
	s := int(m.RetryAfter().Seconds())
	return max(1, s)
}

// handleResults streams a job's events as NDJSON: one "cell" event per cell
// in index order (waiting for each cell as needed, flushing as lines become
// available), then one "done" event carrying the terminal state. The stream
// also ends early — without a "done" line — if the client disconnects.
func handleResults(m *Manager, w http.ResponseWriter, r *http.Request) {
	job, err := m.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev Event) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	for i := range job.Cells {
		select {
		case <-job.ready[i]:
		case <-r.Context().Done():
			return
		case <-job.Done():
			// Terminal: this cell either finished in the same instant
			// or will never run (cancellation/timeout skipped it).
			select {
			case <-job.ready[i]:
			default:
				goto terminal
			}
		}
		out := job.outcome(i)
		if !emit(Event{Type: "cell", Index: i, Cell: &job.Cells[i], Result: out.result, Error: out.err}) {
			return
		}
	}
terminal:
	select {
	case <-job.Done():
	case <-r.Context().Done():
		return
	}
	st := job.Status()
	emit(Event{Type: "done", State: st.State, Error: st.Error})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
