package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// API summary (see SERVING.md for schemas and examples):
//
//	POST   /v1/jobs               submit a JobSpec → 202 JobStatus
//	GET    /v1/jobs               list jobs (submission order)
//	GET    /v1/jobs/{id}          one job's status
//	GET    /v1/jobs/{id}/results  NDJSON event stream (Event per line)
//	GET    /v1/jobs/{id}/timeline span timeline from the job's flight recorder
//	DELETE /v1/jobs/{id}          request cancellation
//	POST   /v1/cells              execute one cell synchronously (internal:
//	                              coordinator→worker RPC; raw result JSON)
//	GET    /metrics               metrics snapshot (JSON; ?format=prometheus
//	                              for Prometheus text exposition)
//	GET    /healthz               liveness  (200 while the process runs)
//	GET    /readyz                readiness (Readiness JSON; 503 once
//	                              draining) — includes queue depth and
//	                              in-flight counts for least-loaded placement
//
// Every response carries an X-Request-Id (adopted from the request when sane,
// minted otherwise); a submission's request ID becomes the job's trace ID.
// Backpressure: a full job queue answers 429 with a Retry-After hint; a
// draining server answers 503 for submissions, cell execution and readiness.
// With per-tenant quotas enabled, submissions spend one X-Tenant bucket
// token before touching the queue; an empty bucket answers 429 with a
// Retry-After sized to the refill.

// maxSpecBytes bounds a submitted JobSpec body.
const maxSpecBytes = 1 << 20

// NewHandler returns the lvpd HTTP API over one manager.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) { handleSubmit(m, w, r) })
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) { writeJSON(w, http.StatusOK, m.List()) })
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, err := m.Job(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, job.Status())
	})
	mux.HandleFunc("GET /v1/jobs/{id}/results", func(w http.ResponseWriter, r *http.Request) { handleResults(m, w, r) })
	mux.HandleFunc("POST /v1/cells", func(w http.ResponseWriter, r *http.Request) { handleExecCell(m, w, r) })
	mux.HandleFunc("GET /v1/jobs/{id}/timeline", func(w http.ResponseWriter, r *http.Request) {
		job, err := m.Job(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, job.Timeline())
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := m.Cancel(r.PathValue("id")); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		job, err := m.Job(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, job.Status())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		m.FinalizeMetrics()
		if r.URL.Query().Get("format") == "prometheus" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			m.Metrics().WritePrometheus(w, "lvp")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		m.Metrics().WriteJSON(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		rd := m.Readiness()
		code := http.StatusOK
		if rd.Draining {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, rd)
	})
	return withTelemetry(m, m.cfg.AccessLog, mux)
}

func handleSubmit(m *Manager, w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad job spec: %w", err))
		return
	}
	tenant := sanitizeRequestID(r.Header.Get("X-Tenant"))
	if ok, wait := m.AdmitTenant(tenant); !ok {
		w.Header().Set("Retry-After", strconv.Itoa(retrySeconds(wait)))
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("%w: %q", ErrTenantLimited, tenantLabel(tenant)))
		return
	}
	job, err := m.SubmitTraced(spec, RequestIDFromContext(r.Context()))
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(m)))
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

// retryAfterSeconds renders the manager's hint as whole seconds (minimum 1,
// the header's resolution).
func retryAfterSeconds(m *Manager) int {
	return retrySeconds(m.RetryAfter())
}

// retrySeconds renders a backoff hint as whole seconds (minimum 1, the
// Retry-After header's resolution).
func retrySeconds(d time.Duration) int {
	return max(1, int(d.Seconds()))
}

// handleExecCell is the internal cell-execution endpoint backing
// distributed mode: one cell, run synchronously, answered with the raw
// result JSON so the bytes a coordinator merges are exactly the bytes a
// local run would have produced. Errors map to the narrowest helpful code:
// 400 for invalid cells (retrying cannot help), 503 while draining (the
// coordinator should fail over), 504 for cell timeouts.
func handleExecCell(m *Manager, w http.ResponseWriter, r *http.Request) {
	var req CellRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad cell request: %w", err))
		return
	}
	res, err := m.ExecCell(r.Context(), req.Cell, req.Scale, RequestIDFromContext(r.Context()))
	switch {
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, err)
		return
	case err != nil:
		code := http.StatusInternalServerError
		if verr := m.ValidateCell(req.Cell, req.Scale); verr != nil {
			code = http.StatusBadRequest
		}
		writeError(w, code, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(res)
}

// handleResults streams a job's events as NDJSON: one "cell" event per cell
// in index order (waiting for each cell as needed, flushing as lines become
// available), then one "done" event carrying the terminal state. The stream
// also ends early — without a "done" line — if the client disconnects.
func handleResults(m *Manager, w http.ResponseWriter, r *http.Request) {
	job, err := m.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev Event) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	for i := range job.Cells {
		select {
		case <-job.ready[i]:
		case <-r.Context().Done():
			return
		case <-job.Done():
			// Terminal: this cell either finished in the same instant
			// or will never run (cancellation/timeout skipped it).
			select {
			case <-job.ready[i]:
			default:
				goto terminal
			}
		}
		out := job.outcome(i)
		if !emit(Event{Type: "cell", Index: i, Cell: &job.Cells[i], Result: out.result, Error: out.err}) {
			return
		}
	}
terminal:
	select {
	case <-job.Done():
	case <-r.Context().Done():
		return
	}
	st := job.Status()
	emit(Event{Type: "done", State: st.State, Error: st.Error})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
