package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"lvp/internal/exp"
	"lvp/internal/obs"
	"lvp/internal/par"
)

// Admission errors. The HTTP layer maps ErrQueueFull to 429 + Retry-After
// and ErrDraining to 503.
var (
	ErrQueueFull = errors.New("serve: job queue full")
	ErrDraining  = errors.New("serve: server draining, not accepting jobs")
	ErrNotFound  = errors.New("serve: no such job")
	// ErrTenantLimited is returned when a tenant's token bucket is empty;
	// the HTTP layer maps it to 429 with a Retry-After hint sized to the
	// bucket's refill.
	ErrTenantLimited = errors.New("serve: tenant over quota")
)

// CellRunner computes one cell at one scale. The Manager's default runner
// executes cells locally on the shared per-scale suites; a distributed
// coordinator installs a runner that dispatches to a worker fleet instead.
// The returned bytes must be the cell's canonical result JSON (the
// json.Marshal of the engine's struct) — the byte-identity contract rests
// on every runner agreeing on them.
type CellRunner func(ctx context.Context, cell Cell, scale int) (json.RawMessage, error)

// ResultStore is the content-addressed result cache consulted before a cell
// is computed (or dispatched) and populated after it succeeds. Implementations
// must be safe for concurrent use; internal/dist provides the LRU + disk one.
type ResultStore interface {
	Get(cell Cell, scale int) (json.RawMessage, bool)
	Put(cell Cell, scale int, res json.RawMessage)
}

// Config tunes a Manager. Zero values select the documented defaults.
type Config struct {
	// QueueDepth bounds the number of accepted-but-not-started jobs
	// (default 16). A full queue rejects submissions with ErrQueueFull.
	QueueDepth int
	// Runners is the number of jobs executed concurrently (default 2).
	Runners int
	// Workers bounds each job's cell fan-out and its suite's internal
	// pool; <= 0 selects the GOMAXPROCS default.
	Workers int
	// MaxScale caps JobSpec.Scale (default 8).
	MaxScale int
	// DefaultTimeout applies to jobs that don't set TimeoutMS
	// (default 5m); MaxTimeout caps what a job may request (default 30m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// RetryAfter is the backoff hint returned with queue-full rejections
	// (default 1s).
	RetryAfter time.Duration
	// MaxSteps overrides the suites' functional-execution bound when > 0
	// (tests use a small value; 0 keeps the engine default).
	MaxSteps int
	// Metrics receives serving and engine telemetry; nil allocates a
	// fresh registry.
	Metrics *obs.Registry
	// Tracer, when non-nil, emits structured JSONL events from the engine
	// and the span layer on its enabled channels (lvpd -trace/-trace-out).
	// Observability never affects job results.
	Tracer *obs.Tracer
	// AccessLog, when non-nil, receives one structured line per HTTP
	// request (lvpd -access-log).
	AccessLog *slog.Logger
	// FlightSpans bounds each job's span flight recorder (<= 0 selects
	// obs.DefaultFlightSpans).
	FlightSpans int
	// CellRunner, when non-nil, replaces local computation for every cell
	// (coordinator mode: cells are dispatched to a worker fleet). Nil runs
	// cells on the shared per-scale suites in this process.
	CellRunner CellRunner
	// Store, when non-nil, is the content-addressed result cache: every
	// cell is looked up before it runs and stored after it succeeds, in
	// both the job path and the cell-execution endpoint.
	Store ResultStore
	// TenantRate > 0 enables per-tenant admission ahead of the job queue:
	// each tenant (X-Tenant header; empty means the anonymous tenant) gets
	// a token bucket refilled at TenantRate jobs/second with TenantBurst
	// capacity (<= 0 selects DefaultTenantBurst). Exhausted buckets reject
	// with ErrTenantLimited before the job touches the queue.
	TenantRate  float64
	TenantBurst int
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Runners <= 0 {
		c.Runners = 2
	}
	if c.MaxScale <= 0 {
		c.MaxScale = 8
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	return c
}

// Manager owns the job queue and the per-scale experiment suites. Suites
// (and therefore traces, annotations and simulations) are shared across
// jobs: two jobs asking for the same cell trigger one build, courtesy of
// the engine's single-flight caches.
type Manager struct {
	cfg     Config
	metrics *obs.Registry

	// baseCtx parents every job context; stopAll cancels it (hard stop
	// after the drain deadline).
	baseCtx context.Context
	stopAll context.CancelFunc

	queue chan *Job
	wg    sync.WaitGroup // runner goroutines

	// tenants is the per-tenant admission limiter; nil when quotas are
	// disabled (TenantRate <= 0).
	tenants *tenantLimiter

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for List
	nextID   int
	suites   map[int]*exp.Suite // keyed by scale
	draining bool

	// testJobStart, when non-nil, runs on the runner goroutine after a
	// job is dequeued and before it executes. Tests use it to hold a
	// runner busy deterministically (queue-full and drain scenarios).
	// Set it before the first Submit; the channel handoff orders the
	// runner's read after the write.
	testJobStart func(*Job)
}

// NewManager starts a manager with cfg.Runners runner goroutines.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:     cfg,
		metrics: cfg.Metrics,
		baseCtx: ctx,
		stopAll: cancel,
		queue:   make(chan *Job, cfg.QueueDepth),
		jobs:    map[string]*Job{},
		suites:  map[int]*exp.Suite{},
	}
	if cfg.TenantRate > 0 {
		m.tenants = newTenantLimiter(cfg.TenantRate, cfg.TenantBurst)
	}
	for i := 0; i < cfg.Runners; i++ {
		m.wg.Add(1)
		go m.runner()
	}
	return m
}

// Metrics returns the manager's registry.
func (m *Manager) Metrics() *obs.Registry { return m.metrics }

// RetryAfter is the backoff hint for queue-full rejections.
func (m *Manager) RetryAfter() time.Duration { return m.cfg.RetryAfter }

// Draining reports whether Shutdown has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// suite returns the shared suite for one scale, creating it on first use.
func (m *Manager) suiteLocked(scale int) *exp.Suite {
	s := m.suites[scale]
	if s == nil {
		s = exp.NewSuiteParallel(scale, m.cfg.Workers)
		if m.cfg.MaxSteps > 0 {
			s.MaxSteps = m.cfg.MaxSteps
		}
		// All suites report into the manager's registry so /metrics is
		// one snapshot across every scale, and share the manager's
		// tracer so engine events carry through served jobs.
		s.Metrics = m.metrics
		s.Tracer = m.cfg.Tracer
		m.suites[scale] = s
	}
	return s
}

// Submit validates and enqueues a job with a freshly minted trace ID. It
// never blocks: a full queue returns ErrQueueFull immediately (the
// backpressure contract), a draining manager returns ErrDraining.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	return m.SubmitTraced(spec, "")
}

// SubmitTraced is Submit with an explicit trace identity: the HTTP layer
// passes the request's X-Request-Id so the ID echoed to the client is the ID
// on the job's spans and timeline. An empty traceID mints one.
func (m *Manager) SubmitTraced(spec JobSpec, traceID string) (*Job, error) {
	if err := spec.Validate(); err != nil {
		m.metrics.Counter("serve.jobs.invalid").Inc()
		return nil, err
	}
	if spec.Scale == 0 {
		spec.Scale = 1
	}
	if spec.Scale > m.cfg.MaxScale {
		m.metrics.Counter("serve.jobs.invalid").Inc()
		return nil, fmt.Errorf("serve: scale %d exceeds maximum %d", spec.Scale, m.cfg.MaxScale)
	}
	if traceID == "" {
		traceID = obs.NewTraceID()
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		m.metrics.Counter("serve.jobs.rejected_draining").Inc()
		return nil, ErrDraining
	}
	m.nextID++
	job := newJob(fmt.Sprintf("job-%06d", m.nextID), traceID, spec, spec.Cells(), m.cfg.FlightSpans, time.Now())
	select {
	case m.queue <- job:
	default:
		m.nextID--
		m.metrics.Counter("serve.jobs.rejected_full").Inc()
		return nil, ErrQueueFull
	}
	m.jobs[job.ID] = job
	m.order = append(m.order, job.ID)
	m.metrics.Counter("serve.jobs.submitted").Inc()
	m.metrics.Gauge("serve.queue.depth").Set(int64(len(m.queue)))
	return job, nil
}

// Job looks a job up by ID.
func (m *Manager) Job(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return j, nil
}

// List snapshots every job in submission order.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	order := append([]string(nil), m.order...)
	jobs := make([]*Job, len(order))
	for i, id := range order {
		jobs[i] = m.jobs[id]
	}
	m.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Cancel requests cancellation: a queued job finishes as cancelled without
// running; a running job's context is cancelled and it stops at the next
// cell boundary. Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) error {
	j, err := m.Job(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.cancelled = true
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	m.metrics.Counter("serve.jobs.cancel_requests").Inc()
	return nil
}

// Shutdown drains: no new submissions, queued and running jobs finish
// normally. If ctx fires first every remaining job is cancelled, the exit
// is awaited, and ctx's error returned.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.queue)
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.stopAll()
		<-done
		return ctx.Err()
	}
}

// runner executes queued jobs until the queue is closed and drained.
func (m *Manager) runner() {
	defer m.wg.Done()
	for job := range m.queue {
		m.metrics.Gauge("serve.queue.depth").Set(int64(len(m.queue)))
		if m.testJobStart != nil {
			m.testJobStart(job)
		}
		m.runJob(job)
	}
}

// jobTimeout resolves one job's wall-clock bound.
func (m *Manager) jobTimeout(spec JobSpec) time.Duration {
	d := m.cfg.DefaultTimeout
	if spec.TimeoutMS > 0 {
		d = time.Duration(spec.TimeoutMS) * time.Millisecond
	}
	return min(d, m.cfg.MaxTimeout)
}

// runJob executes every cell of one job on the shared suite under the
// job's own context, then moves the job to its terminal state. The context
// carries the job's trace scope, so engine phase spans land in the job's
// flight recorder (and on the tracer's span channel when enabled): a root
// "job" span, a "queue-wait" span for time spent in the admission queue,
// and one "cell" span per cell parenting the engine's phase spans.
func (m *Manager) runJob(job *Job) {
	ctx, cancel := context.WithTimeout(m.baseCtx, m.jobTimeout(job.Spec))
	defer cancel()

	job.mu.Lock()
	if job.cancelled {
		// Cancelled while queued: never ran.
		job.state = StateCancelled
		job.errMsg = "cancelled before start"
		job.finished = time.Now()
		job.mu.Unlock()
		close(job.done)
		m.metrics.Counter("serve.jobs.cancelled").Inc()
		return
	}
	job.state = StateRunning
	job.started = time.Now()
	job.cancel = cancel
	job.mu.Unlock()

	m.metrics.Gauge("serve.jobs.running").Acquire()
	defer m.metrics.Gauge("serve.jobs.running").Release()

	ctx = obs.WithTrace(ctx, job.TraceID, m.cfg.Tracer, job.rec)
	jctx, endJob := obs.StartSpan(ctx, "job",
		slog.String("id", job.ID), slog.Int("cells", len(job.Cells)))
	queueWait := time.Since(job.created)
	obs.CompleteSpan(jctx, "queue-wait", job.created)
	m.metrics.Histogram("serve.job.queue_wait_ns").Observe(int64(queueWait))

	jobStart := time.Now()
	err := par.ForEachCtx(jctx, m.cfg.Workers, len(job.Cells), func(i int) error {
		cctx, endCell := obs.StartSpan(jctx, "cell",
			slog.Int("index", i), slog.String("cell", job.Cells[i].String()))
		res, cerr := m.runCell(cctx, job.Cells[i], job.Spec.Scale)
		endCell()
		job.setOutcome(i, res, cerr)
		if cerr != nil {
			m.metrics.Counter("serve.cells.failed").Inc()
			return fmt.Errorf("cell %d (%s): %w", i, job.Cells[i], cerr)
		}
		m.metrics.Counter("serve.cells.done").Inc()
		return nil
	})
	m.metrics.Histogram("serve.job.wall_ns").Observe(int64(time.Since(jobStart)))

	job.mu.Lock()
	job.finished = time.Now()
	switch {
	case job.cancelled:
		job.state = StateCancelled
		job.errMsg = "cancelled"
		m.metrics.Counter("serve.jobs.cancelled").Inc()
	case err != nil && errors.Is(err, context.DeadlineExceeded):
		job.state = StateFailed
		job.errMsg = fmt.Sprintf("timeout after %v", m.jobTimeout(job.Spec))
		m.metrics.Counter("serve.jobs.failed").Inc()
	case err != nil:
		job.state = StateFailed
		job.errMsg = err.Error()
		m.metrics.Counter("serve.jobs.failed").Inc()
	default:
		job.state = StateDone
		m.metrics.Counter("serve.jobs.completed").Inc()
	}
	job.mu.Unlock()
	endJob()
	close(job.done)
}

// runCell resolves one cell's result: the content-addressed store first
// (when configured), then the configured runner — the local suite by
// default, the distributed dispatcher in coordinator mode. Successful
// results are written back to the store, so repeat cells from any job (or
// any tenant) become cache hits.
func (m *Manager) runCell(ctx context.Context, cell Cell, scale int) (json.RawMessage, error) {
	if scale <= 0 {
		scale = 1
	}
	if st := m.cfg.Store; st != nil {
		if res, ok := st.Get(cell, scale); ok {
			return res, nil
		}
	}
	res, err := m.computeOrDispatch(ctx, cell, scale)
	if err == nil && m.cfg.Store != nil {
		m.cfg.Store.Put(cell, scale, res)
	}
	return res, err
}

// computeOrDispatch runs one cell on the configured runner, defaulting to
// the local per-scale suite.
func (m *Manager) computeOrDispatch(ctx context.Context, cell Cell, scale int) (json.RawMessage, error) {
	if m.cfg.CellRunner != nil {
		return m.cfg.CellRunner(ctx, cell, scale)
	}
	m.mu.Lock()
	suite := m.suiteLocked(scale)
	m.mu.Unlock()
	return computeCell(suite.WithContext(ctx), cell)
}

// ValidateCell admission-checks one cell-execution request: registry names
// and the scale bound, the same checks a JobSpec gets.
func (m *Manager) ValidateCell(cell Cell, scale int) error {
	if err := cell.Validate(); err != nil {
		return err
	}
	if scale < 0 || scale > m.cfg.MaxScale {
		return fmt.Errorf("serve: scale %d out of range (want 0..%d)", scale, m.cfg.MaxScale)
	}
	return nil
}

// ExecCell executes one cell synchronously — the worker half of distributed
// mode, behind POST /v1/cells. It shares the store and suites with the job
// path, runs under the caller's context capped by the default job timeout,
// and counts into serve.cells.inflight (reported by Readiness, so
// coordinators can place cells on the least-loaded worker). traceID, when
// non-empty, scopes a span around the execution so worker-side phase spans
// parent under the coordinator job's trace.
func (m *Manager) ExecCell(ctx context.Context, cell Cell, scale int, traceID string) (json.RawMessage, error) {
	if m.Draining() {
		m.metrics.Counter("serve.cells.rejected_draining").Inc()
		return nil, ErrDraining
	}
	if err := m.ValidateCell(cell, scale); err != nil {
		m.metrics.Counter("serve.cells.invalid").Inc()
		return nil, err
	}
	if scale == 0 {
		scale = 1
	}
	g := m.metrics.Gauge("serve.cells.inflight")
	g.Acquire()
	defer g.Release()

	ctx, cancel := context.WithTimeout(ctx, m.cfg.DefaultTimeout)
	defer cancel()
	if traceID != "" {
		ctx = obs.WithTrace(ctx, traceID, m.cfg.Tracer, nil)
	}
	cctx, end := obs.StartSpan(ctx, "remote-cell", slog.String("cell", cell.String()))
	start := time.Now()
	res, err := m.runCell(cctx, cell, scale)
	end()
	m.metrics.Histogram("serve.cell.remote_wall_ns").Observe(int64(time.Since(start)))
	if err != nil {
		m.metrics.Counter("serve.cells.remote_failed").Inc()
		return nil, err
	}
	m.metrics.Counter("serve.cells.remote_done").Inc()
	return res, nil
}

// AdmitTenant spends one token from the tenant's bucket. With quotas
// disabled every tenant is admitted. The returned duration is the
// Retry-After hint for a rejection: how long until the bucket holds a
// whole token again.
func (m *Manager) AdmitTenant(tenant string) (bool, time.Duration) {
	if m.tenants == nil {
		return true, 0
	}
	ok, wait := m.tenants.admit(tenant)
	if ok {
		m.metrics.Counter("serve.tenant.admitted").Inc()
	} else {
		m.metrics.Counter("serve.tenant.rejected").Inc()
		m.metrics.Counter(obs.LabeledName("serve.tenant.rejected_by", "tenant", tenantLabel(tenant))).Inc()
	}
	return ok, wait
}

// Readiness is the JSON body of GET /readyz: up/down plus the load signals
// (queue depth, in-flight jobs and cells) a coordinator or external load
// balancer needs for least-loaded placement.
type Readiness struct {
	Ready         bool `json:"ready"`
	Draining      bool `json:"draining"`
	QueueDepth    int  `json:"queue_depth"`
	QueueCap      int  `json:"queue_cap"`
	RunningJobs   int  `json:"running_jobs"`
	InFlightCells int  `json:"in_flight_cells"`
	Runners       int  `json:"runners"`
}

// Load folds the readiness signals into one placement score: pending and
// running jobs plus cells being executed for remote coordinators.
func (r Readiness) Load() int {
	return r.QueueDepth + r.RunningJobs + r.InFlightCells
}

// Readiness snapshots the manager's admission state.
func (m *Manager) Readiness() Readiness {
	draining := m.Draining()
	return Readiness{
		Ready:         !draining,
		Draining:      draining,
		QueueDepth:    len(m.queue),
		QueueCap:      m.cfg.QueueDepth,
		RunningJobs:   int(m.metrics.Gauge("serve.jobs.running").Value()),
		InFlightCells: int(m.metrics.Gauge("serve.cells.inflight").Value()),
		Runners:       m.cfg.Runners,
	}
}

// FinalizeMetrics flushes suite cache-traffic gauges into the registry so
// a /metrics snapshot carries cache hit rates. Suites are visited in scale
// order; with several scales live the highest scale's numbers win the
// shared gauge names, which is deterministic if not exhaustive.
func (m *Manager) FinalizeMetrics() {
	m.mu.Lock()
	scales := make([]int, 0, len(m.suites))
	for scale := range m.suites {
		scales = append(scales, scale)
	}
	suites := make([]*exp.Suite, len(scales))
	sort.Ints(scales)
	for i, scale := range scales {
		suites[i] = m.suites[scale]
	}
	m.mu.Unlock()
	for _, s := range suites {
		s.FinalizeMetrics()
	}
}
