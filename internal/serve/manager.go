package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"lvp/internal/exp"
	"lvp/internal/obs"
	"lvp/internal/par"
)

// Admission errors. The HTTP layer maps ErrQueueFull to 429 + Retry-After
// and ErrDraining to 503.
var (
	ErrQueueFull = errors.New("serve: job queue full")
	ErrDraining  = errors.New("serve: server draining, not accepting jobs")
	ErrNotFound  = errors.New("serve: no such job")
)

// Config tunes a Manager. Zero values select the documented defaults.
type Config struct {
	// QueueDepth bounds the number of accepted-but-not-started jobs
	// (default 16). A full queue rejects submissions with ErrQueueFull.
	QueueDepth int
	// Runners is the number of jobs executed concurrently (default 2).
	Runners int
	// Workers bounds each job's cell fan-out and its suite's internal
	// pool; <= 0 selects the GOMAXPROCS default.
	Workers int
	// MaxScale caps JobSpec.Scale (default 8).
	MaxScale int
	// DefaultTimeout applies to jobs that don't set TimeoutMS
	// (default 5m); MaxTimeout caps what a job may request (default 30m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// RetryAfter is the backoff hint returned with queue-full rejections
	// (default 1s).
	RetryAfter time.Duration
	// MaxSteps overrides the suites' functional-execution bound when > 0
	// (tests use a small value; 0 keeps the engine default).
	MaxSteps int
	// Metrics receives serving and engine telemetry; nil allocates a
	// fresh registry.
	Metrics *obs.Registry
	// Tracer, when non-nil, emits structured JSONL events from the engine
	// and the span layer on its enabled channels (lvpd -trace/-trace-out).
	// Observability never affects job results.
	Tracer *obs.Tracer
	// AccessLog, when non-nil, receives one structured line per HTTP
	// request (lvpd -access-log).
	AccessLog *slog.Logger
	// FlightSpans bounds each job's span flight recorder (<= 0 selects
	// obs.DefaultFlightSpans).
	FlightSpans int
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Runners <= 0 {
		c.Runners = 2
	}
	if c.MaxScale <= 0 {
		c.MaxScale = 8
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	return c
}

// Manager owns the job queue and the per-scale experiment suites. Suites
// (and therefore traces, annotations and simulations) are shared across
// jobs: two jobs asking for the same cell trigger one build, courtesy of
// the engine's single-flight caches.
type Manager struct {
	cfg     Config
	metrics *obs.Registry

	// baseCtx parents every job context; stopAll cancels it (hard stop
	// after the drain deadline).
	baseCtx context.Context
	stopAll context.CancelFunc

	queue chan *Job
	wg    sync.WaitGroup // runner goroutines

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for List
	nextID   int
	suites   map[int]*exp.Suite // keyed by scale
	draining bool

	// testJobStart, when non-nil, runs on the runner goroutine after a
	// job is dequeued and before it executes. Tests use it to hold a
	// runner busy deterministically (queue-full and drain scenarios).
	// Set it before the first Submit; the channel handoff orders the
	// runner's read after the write.
	testJobStart func(*Job)
}

// NewManager starts a manager with cfg.Runners runner goroutines.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:     cfg,
		metrics: cfg.Metrics,
		baseCtx: ctx,
		stopAll: cancel,
		queue:   make(chan *Job, cfg.QueueDepth),
		jobs:    map[string]*Job{},
		suites:  map[int]*exp.Suite{},
	}
	for i := 0; i < cfg.Runners; i++ {
		m.wg.Add(1)
		go m.runner()
	}
	return m
}

// Metrics returns the manager's registry.
func (m *Manager) Metrics() *obs.Registry { return m.metrics }

// RetryAfter is the backoff hint for queue-full rejections.
func (m *Manager) RetryAfter() time.Duration { return m.cfg.RetryAfter }

// Draining reports whether Shutdown has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// suite returns the shared suite for one scale, creating it on first use.
func (m *Manager) suiteLocked(scale int) *exp.Suite {
	s := m.suites[scale]
	if s == nil {
		s = exp.NewSuiteParallel(scale, m.cfg.Workers)
		if m.cfg.MaxSteps > 0 {
			s.MaxSteps = m.cfg.MaxSteps
		}
		// All suites report into the manager's registry so /metrics is
		// one snapshot across every scale, and share the manager's
		// tracer so engine events carry through served jobs.
		s.Metrics = m.metrics
		s.Tracer = m.cfg.Tracer
		m.suites[scale] = s
	}
	return s
}

// Submit validates and enqueues a job with a freshly minted trace ID. It
// never blocks: a full queue returns ErrQueueFull immediately (the
// backpressure contract), a draining manager returns ErrDraining.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	return m.SubmitTraced(spec, "")
}

// SubmitTraced is Submit with an explicit trace identity: the HTTP layer
// passes the request's X-Request-Id so the ID echoed to the client is the ID
// on the job's spans and timeline. An empty traceID mints one.
func (m *Manager) SubmitTraced(spec JobSpec, traceID string) (*Job, error) {
	if err := spec.Validate(); err != nil {
		m.metrics.Counter("serve.jobs.invalid").Inc()
		return nil, err
	}
	if spec.Scale == 0 {
		spec.Scale = 1
	}
	if spec.Scale > m.cfg.MaxScale {
		m.metrics.Counter("serve.jobs.invalid").Inc()
		return nil, fmt.Errorf("serve: scale %d exceeds maximum %d", spec.Scale, m.cfg.MaxScale)
	}
	if traceID == "" {
		traceID = obs.NewTraceID()
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		m.metrics.Counter("serve.jobs.rejected_draining").Inc()
		return nil, ErrDraining
	}
	m.nextID++
	job := newJob(fmt.Sprintf("job-%06d", m.nextID), traceID, spec, spec.Cells(), m.cfg.FlightSpans, time.Now())
	select {
	case m.queue <- job:
	default:
		m.nextID--
		m.metrics.Counter("serve.jobs.rejected_full").Inc()
		return nil, ErrQueueFull
	}
	m.jobs[job.ID] = job
	m.order = append(m.order, job.ID)
	m.metrics.Counter("serve.jobs.submitted").Inc()
	m.metrics.Gauge("serve.queue.depth").Set(int64(len(m.queue)))
	return job, nil
}

// Job looks a job up by ID.
func (m *Manager) Job(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return j, nil
}

// List snapshots every job in submission order.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	order := append([]string(nil), m.order...)
	jobs := make([]*Job, len(order))
	for i, id := range order {
		jobs[i] = m.jobs[id]
	}
	m.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Cancel requests cancellation: a queued job finishes as cancelled without
// running; a running job's context is cancelled and it stops at the next
// cell boundary. Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) error {
	j, err := m.Job(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.cancelled = true
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	m.metrics.Counter("serve.jobs.cancel_requests").Inc()
	return nil
}

// Shutdown drains: no new submissions, queued and running jobs finish
// normally. If ctx fires first every remaining job is cancelled, the exit
// is awaited, and ctx's error returned.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.queue)
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.stopAll()
		<-done
		return ctx.Err()
	}
}

// runner executes queued jobs until the queue is closed and drained.
func (m *Manager) runner() {
	defer m.wg.Done()
	for job := range m.queue {
		m.metrics.Gauge("serve.queue.depth").Set(int64(len(m.queue)))
		if m.testJobStart != nil {
			m.testJobStart(job)
		}
		m.runJob(job)
	}
}

// jobTimeout resolves one job's wall-clock bound.
func (m *Manager) jobTimeout(spec JobSpec) time.Duration {
	d := m.cfg.DefaultTimeout
	if spec.TimeoutMS > 0 {
		d = time.Duration(spec.TimeoutMS) * time.Millisecond
	}
	return min(d, m.cfg.MaxTimeout)
}

// runJob executes every cell of one job on the shared suite under the
// job's own context, then moves the job to its terminal state. The context
// carries the job's trace scope, so engine phase spans land in the job's
// flight recorder (and on the tracer's span channel when enabled): a root
// "job" span, a "queue-wait" span for time spent in the admission queue,
// and one "cell" span per cell parenting the engine's phase spans.
func (m *Manager) runJob(job *Job) {
	m.mu.Lock()
	suite := m.suiteLocked(job.Spec.Scale)
	m.mu.Unlock()

	ctx, cancel := context.WithTimeout(m.baseCtx, m.jobTimeout(job.Spec))
	defer cancel()

	job.mu.Lock()
	if job.cancelled {
		// Cancelled while queued: never ran.
		job.state = StateCancelled
		job.errMsg = "cancelled before start"
		job.finished = time.Now()
		job.mu.Unlock()
		close(job.done)
		m.metrics.Counter("serve.jobs.cancelled").Inc()
		return
	}
	job.state = StateRunning
	job.started = time.Now()
	job.cancel = cancel
	job.mu.Unlock()

	m.metrics.Gauge("serve.jobs.running").Acquire()
	defer m.metrics.Gauge("serve.jobs.running").Release()

	ctx = obs.WithTrace(ctx, job.TraceID, m.cfg.Tracer, job.rec)
	jctx, endJob := obs.StartSpan(ctx, "job",
		slog.String("id", job.ID), slog.Int("cells", len(job.Cells)))
	queueWait := time.Since(job.created)
	obs.CompleteSpan(jctx, "queue-wait", job.created)
	m.metrics.Histogram("serve.job.queue_wait_ns").Observe(int64(queueWait))

	view := suite.WithContext(jctx)
	jobStart := time.Now()
	err := par.ForEachCtx(jctx, m.cfg.Workers, len(job.Cells), func(i int) error {
		cctx, endCell := obs.StartSpan(jctx, "cell",
			slog.Int("index", i), slog.String("cell", job.Cells[i].String()))
		res, cerr := computeCell(view.WithContext(cctx), job.Cells[i])
		endCell()
		job.setOutcome(i, res, cerr)
		if cerr != nil {
			m.metrics.Counter("serve.cells.failed").Inc()
			return fmt.Errorf("cell %d (%s): %w", i, job.Cells[i], cerr)
		}
		m.metrics.Counter("serve.cells.done").Inc()
		return nil
	})
	m.metrics.Histogram("serve.job.wall_ns").Observe(int64(time.Since(jobStart)))

	job.mu.Lock()
	job.finished = time.Now()
	switch {
	case job.cancelled:
		job.state = StateCancelled
		job.errMsg = "cancelled"
		m.metrics.Counter("serve.jobs.cancelled").Inc()
	case err != nil && errors.Is(err, context.DeadlineExceeded):
		job.state = StateFailed
		job.errMsg = fmt.Sprintf("timeout after %v", m.jobTimeout(job.Spec))
		m.metrics.Counter("serve.jobs.failed").Inc()
	case err != nil:
		job.state = StateFailed
		job.errMsg = err.Error()
		m.metrics.Counter("serve.jobs.failed").Inc()
	default:
		job.state = StateDone
		m.metrics.Counter("serve.jobs.completed").Inc()
	}
	job.mu.Unlock()
	endJob()
	close(job.done)
}

// FinalizeMetrics flushes suite cache-traffic gauges into the registry so
// a /metrics snapshot carries cache hit rates. Suites are visited in scale
// order; with several scales live the highest scale's numbers win the
// shared gauge names, which is deterministic if not exhaustive.
func (m *Manager) FinalizeMetrics() {
	m.mu.Lock()
	scales := make([]int, 0, len(m.suites))
	for scale := range m.suites {
		scales = append(scales, scale)
	}
	suites := make([]*exp.Suite, len(scales))
	sort.Ints(scales)
	for i, scale := range scales {
		suites[i] = m.suites[scale]
	}
	m.mu.Unlock()
	for _, s := range suites {
		s.FinalizeMetrics()
	}
}
