package exp

import (
	"io"

	"lvp/internal/bench"
	"lvp/internal/report"
	"lvp/internal/stats"
)

// StallRow breaks down, per benchmark, the fraction of base-620 cycles in
// which dispatch stopped early for each structural reason.
type StallRow struct {
	Name       string
	RS         float64 // any reservation-station class full
	Rename     float64
	Completion float64
	MemSlots   float64
	FetchEmpty float64
}

// StallResult is the dispatch-stall diagnostic dataset.
type StallResult struct {
	Rows []StallRow
}

// Stalls collects the dispatch-stall breakdown of the base 620 (no LVP) —
// the companion diagnostic to the resource sweep.
func (s *Suite) Stalls() (*StallResult, error) {
	res := &StallResult{Rows: make([]StallRow, len(bench.All()))}
	err := s.forEachBenchIdx(func(i int, b bench.Benchmark) error {
		st, err := s.Sim620(b.Name, false, nil)
		if err != nil {
			return err
		}
		cyc := float64(max(1, st.Cycles))
		rs := 0
		for _, v := range st.StallRS {
			rs += v
		}
		res.Rows[i] = StallRow{
			Name:       b.Name,
			RS:         float64(rs) / cyc,
			Rename:     float64(st.StallRename) / cyc,
			Completion: float64(st.StallCompletion) / cyc,
			MemSlots:   float64(st.StallMemSlots) / cyc,
			FetchEmpty: float64(st.StallFetchEmpty) / cyc,
		}
		return nil
	})
	return res, err
}

// Render writes the breakdown. The columns can overlap-free sum below 100%:
// cycles where dispatch ran to full width stall on nothing.
func (r *StallResult) Render(w io.Writer) {
	t := report.Table{
		Title: "Diagnostics: base-620 dispatch stalls (% of cycles ending dispatch early, by reason)",
		Columns: []string{"Benchmark", "RS full", "Rename", "Completion",
			"Mem slots", "Fetch empty"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			stats.Pct(row.RS, 1), stats.Pct(row.Rename, 1),
			stats.Pct(row.Completion, 1), stats.Pct(row.MemSlots, 1),
			stats.Pct(row.FetchEmpty, 1))
	}
	t.Render(w)
}
