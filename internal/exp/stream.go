package exp

import (
	"fmt"
	"io"
	"log/slog"
	"time"

	"lvp/internal/axp21164"
	"lvp/internal/bench"
	"lvp/internal/lvp"
	"lvp/internal/obs"
	"lvp/internal/ppc620"
	"lvp/internal/prog"
	"lvp/internal/trace"
	"lvp/internal/vm"
)

// Streaming cells: the full gen → annotate → sim pipeline for one benchmark
// cell runs as a single pull-driven pass, so memory is bounded by the
// machine model's window instead of the trace length. The streaming and
// in-memory paths share every stage's implementation (vm.Source behind
// vm.Run, lvp.Annotator behind lvp.Annotate, the models' Source cores behind
// Simulate), so their stats are identical — the differential tests in this
// package enforce that on every workload.
//
// Streamed cells bypass the trace/annotation caches by construction (there
// is no materialized trace to share); the per-machine stats caches still
// memoize the final result. Record throughput is reported on the
// trace.stream.records counter and completed cells on trace.stream.cells.

// meteredSource counts records flowing out of a source, flushing the count
// into the registry counter when the stream drains (one atomic add per
// cell, keeping the per-record path free of shared-counter traffic).
type meteredSource struct {
	src trace.Source
	n   int64
	c   *obs.Counter
}

func (m *meteredSource) Next() (*trace.Record, error) {
	r, err := m.src.Next()
	if err == nil {
		m.n++
	} else if err == io.EOF {
		m.c.Add(m.n)
		m.n = 0
	}
	return r, err
}

// meteredBatchSource is meteredSource over a batch-capable inner source:
// one count update per batch, flushed on EOF exactly like the per-record
// form, so the batched pipeline keeps its telemetry without touching the
// shared counter per record.
type meteredBatchSource struct {
	meteredSource
	bs trace.BatchSource
}

func (m *meteredBatchSource) NextBatch(buf []trace.Record) (int, error) {
	n, err := m.bs.NextBatch(buf)
	m.n += int64(n)
	if err == io.EOF || (err == nil && n == 0) {
		m.c.Add(m.n)
		m.n = 0
	}
	return n, err
}

// meter wraps src with record counting, preserving batch capability.
func meter(src trace.Source, c *obs.Counter) trace.Source {
	ms := meteredSource{src: src, c: c}
	if bs, ok := src.(trace.BatchSource); ok {
		return &meteredBatchSource{ms, bs}
	}
	return &ms
}

// streamSource builds the gen → annotate front half of a streaming cell:
// a functional-VM record source for one benchmark/target, annotated on the
// fly by an LVP unit under cfg (nil = no LVP hardware).
func (s *Suite) streamSource(name string, target prog.Target, cfg *lvp.Config) (trace.AnnotatedSource, error) {
	bm, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	p, err := bm.Build(target, s.Scale)
	if err != nil {
		return nil, fmt.Errorf("exp: building %s/%s: %w", name, target.Name, err)
	}
	src := meter(vm.NewSource(p, s.MaxSteps), s.Metrics.Counter("trace.stream.records"))
	if cfg == nil {
		return trace.NoLVP(src), nil
	}
	pipe, err := lvp.NewPipe(src, *cfg, s.Tracer)
	if err != nil {
		return nil, fmt.Errorf("exp: annotating %s/%s: %w", name, target.Name, err)
	}
	return pipe, nil
}

// StreamSim620 runs one benchmark cell gen → annotate → sim on the 620
// (plus=false) or 620+ in bounded memory: no trace or annotation is ever
// materialized. cfg == nil means no LVP hardware. Stats are identical to
// Sim620's for the same cell.
func (s *Suite) StreamSim620(name string, plus bool, cfg *lvp.Config) (ppc620.Stats, error) {
	if err := s.context().Err(); err != nil {
		return ppc620.Stats{}, err
	}
	src, err := s.streamSource(name, prog.PPC, cfg)
	if err != nil {
		return ppc620.Stats{}, err
	}
	mc := ppc620.Config620()
	if plus {
		mc = ppc620.Config620Plus()
	}
	cfgName := "none"
	if cfg != nil {
		cfgName = cfg.Name
	}
	start := time.Now()
	st, err := ppc620.SimulateSourceObs(src, mc, cfgName, s.Tracer)
	if err != nil {
		return ppc620.Stats{}, fmt.Errorf("exp: streaming %s/%s: %w", name, mc.Name, err)
	}
	s.record620Stats(st)
	s.Metrics.Counter("trace.stream.cells").Inc()
	s.finishPhase("stream620", start,
		slog.String("bench", name), slog.String("machine", mc.Name),
		slog.String("config", cfgName))
	return st, nil
}

// StreamSim21164 runs one benchmark cell gen → annotate → sim on the 21164
// in bounded memory (nil cfg = no LVP hardware). Stats are identical to
// Sim21164's for the same cell.
func (s *Suite) StreamSim21164(name string, cfg *lvp.Config) (axp21164.Stats, error) {
	if err := s.context().Err(); err != nil {
		return axp21164.Stats{}, err
	}
	src, err := s.streamSource(name, prog.AXP, cfg)
	if err != nil {
		return axp21164.Stats{}, err
	}
	cfgName := "none"
	if cfg != nil {
		cfgName = cfg.Name
	}
	start := time.Now()
	st, err := axp21164.SimulateSourceObs(src, axp21164.Config21164(), cfgName, s.Tracer)
	if err != nil {
		return axp21164.Stats{}, fmt.Errorf("exp: streaming %s/21164: %w", name, err)
	}
	s.record164Stats(st)
	s.Metrics.Counter("trace.stream.cells").Inc()
	s.finishPhase("stream21164", start,
		slog.String("bench", name), slog.String("config", cfgName))
	return st, nil
}
