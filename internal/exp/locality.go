package exp

import (
	"io"

	"lvp/internal/bench"
	"lvp/internal/isa"
	"lvp/internal/locality"
	"lvp/internal/prog"
	"lvp/internal/report"
	"lvp/internal/stats"
)

// Table1Row describes one benchmark (paper Table 1): what it computes and
// its dynamic instruction/load counts per target.
type Table1Row struct {
	Name        string
	Description string
	Input       string
	AXPInstr    int
	AXPLoads    int
	PPCInstr    int
	PPCLoads    int
}

// Table1Result is the full benchmark-description table.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 reproduces paper Table 1 (with our scaled-down run lengths).
func (s *Suite) Table1() (*Table1Result, error) {
	res := &Table1Result{Rows: make([]Table1Row, len(bench.All()))}
	err := s.forEachBenchIdx(func(i int, b bench.Benchmark) error {
		ta, err := s.Trace(b.Name, prog.AXP)
		if err != nil {
			return err
		}
		tp, err := s.Trace(b.Name, prog.PPC)
		if err != nil {
			return err
		}
		sa, sp := ta.Summarize(), tp.Summarize()
		res.Rows[i] = Table1Row{
			Name: b.Name, Description: b.Description, Input: b.Input,
			AXPInstr: sa.Instructions, AXPLoads: sa.Loads,
			PPCInstr: sp.Instructions, PPCLoads: sp.Loads,
		}
		return nil
	})
	return res, err
}

// Render writes the table.
func (r *Table1Result) Render(w io.Writer) {
	t := report.Table{
		Title: "Table 1: Benchmark Descriptions (dynamic counts at current scale)",
		Columns: []string{"Benchmark", "Description", "Input",
			"AXP instrs", "AXP loads", "PPC instrs", "PPC loads"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, row.Description, row.Input,
			row.AXPInstr, row.AXPLoads, row.PPCInstr, row.PPCLoads)
	}
	t.Render(w)
}

// Fig1Row holds the value locality of one benchmark on both targets at
// history depths 1 and 16 (paper Figure 1).
type Fig1Row struct {
	Name          string
	AXPD1, AXPD16 float64 // percent
	PPCD1, PPCD16 float64
}

// Fig1Result is the full Figure 1 dataset.
type Fig1Result struct {
	Rows []Fig1Row
}

// Figure1 reproduces paper Figure 1: load value locality per benchmark,
// history depth 1 (light bars) and 16 (dark bars), one panel per target.
func (s *Suite) Figure1() (*Fig1Result, error) {
	res := &Fig1Result{Rows: make([]Fig1Row, len(bench.All()))}
	err := s.forEachBenchIdx(func(i int, b bench.Benchmark) error {
		row := Fig1Row{Name: b.Name}
		for _, tg := range prog.Targets {
			t, err := s.Trace(b.Name, tg)
			if err != nil {
				return err
			}
			rs := locality.Measure(t, locality.DefaultEntries, 1, 16)
			if tg.Name == "axp" {
				row.AXPD1, row.AXPD16 = rs[0].Overall.Percent(), rs[1].Overall.Percent()
			} else {
				row.PPCD1, row.PPCD16 = rs[0].Overall.Percent(), rs[1].Overall.Percent()
			}
		}
		res.Rows[i] = row
		return nil
	})
	return res, err
}

// Render writes both panels as bar charts.
func (r *Fig1Result) Render(w io.Writer) {
	for _, panel := range []struct {
		title string
		pick  func(Fig1Row) (float64, float64)
	}{
		{"Figure 1 (Alpha AXP panel): Load Value Locality [depth 1 / depth 16]",
			func(x Fig1Row) (float64, float64) { return x.AXPD1, x.AXPD16 }},
		{"Figure 1 (PowerPC panel): Load Value Locality [depth 1 / depth 16]",
			func(x Fig1Row) (float64, float64) { return x.PPCD1, x.PPCD16 }},
	} {
		c := report.BarChart{
			Title:  panel.title,
			Series: []string{"d1", "d16"},
			Max:    100,
			Unit:   "%",
		}
		for _, row := range r.Rows {
			d1, d16 := panel.pick(row)
			c.Groups = append(c.Groups, report.BarGroup{Label: row.Name, Values: []float64{d1, d16}})
		}
		c.Render(w)
	}
}

// Fig2Row is the per-data-type locality of one benchmark on the PPC target
// (paper Figure 2): FP data, int data, instruction addresses, data
// addresses, at depths 1 and 16.
type Fig2Row struct {
	Name string
	// Indexed by isa.LoadClass; [class][0] = depth 1, [class][1] = 16.
	Pct [isa.NumLoadClasses][2]float64
	// Share of the benchmark's loads in each class.
	Share [isa.NumLoadClasses]float64
}

// Fig2Result is the Figure 2 dataset.
type Fig2Result struct {
	Rows []Fig2Row
}

// Figure2 reproduces paper Figure 2: PowerPC value locality by data type.
func (s *Suite) Figure2() (*Fig2Result, error) {
	res := &Fig2Result{Rows: make([]Fig2Row, len(bench.All()))}
	err := s.forEachBenchIdx(func(i int, b bench.Benchmark) error {
		t, err := s.Trace(b.Name, prog.PPC)
		if err != nil {
			return err
		}
		rs := locality.Measure(t, locality.DefaultEntries, 1, 16)
		row := Fig2Row{Name: b.Name}
		total := rs[0].Overall.Total
		for c := isa.LoadClass(1); c < isa.NumLoadClasses; c++ {
			row.Pct[c][0] = rs[0].ByClass[c].Percent()
			row.Pct[c][1] = rs[1].ByClass[c].Percent()
			if total > 0 {
				row.Share[c] = float64(rs[0].ByClass[c].Total) / float64(total)
			}
		}
		res.Rows[i] = row
		return nil
	})
	return res, err
}

// Render writes one table per data type plus class shares.
func (r *Fig2Result) Render(w io.Writer) {
	t := report.Table{
		Title: "Figure 2: PowerPC Value Locality by Data Type (depth 1 / depth 16, % of that class)",
		Columns: []string{"Benchmark",
			"FP d1", "FP d16", "Int d1", "Int d16",
			"IAddr d1", "IAddr d16", "DAddr d1", "DAddr d16"},
	}
	f := func(v float64) string { return stats.Pct(v/100, 1) }
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			f(row.Pct[isa.LoadFPData][0]), f(row.Pct[isa.LoadFPData][1]),
			f(row.Pct[isa.LoadIntData][0]), f(row.Pct[isa.LoadIntData][1]),
			f(row.Pct[isa.LoadInstAddr][0]), f(row.Pct[isa.LoadInstAddr][1]),
			f(row.Pct[isa.LoadDataAddr][0]), f(row.Pct[isa.LoadDataAddr][1]))
	}
	t.Render(w)
}
