package exp

import (
	"bytes"
	"reflect"
	"testing"

	"lvp/internal/axp21164"
	"lvp/internal/lvp"
	"lvp/internal/ppc620"
	"lvp/internal/prog"
	"lvp/internal/trace"
)

// formatEncodings is the cross-format matrix for the differential gate:
// VLT1 plus every VLT2 codec, and one deliberately awkward block size so
// records straddle block boundaries in odd places.
var formatEncodings = []struct {
	name string
	enc  func(tr *trace.Trace) ([]byte, error)
}{
	{"vlt1", func(tr *trace.Trace) ([]byte, error) {
		var buf bytes.Buffer
		err := trace.Write(&buf, tr)
		return buf.Bytes(), err
	}},
	{"vlt2-raw", vlt2Enc(trace.Writer2Options{})},
	{"vlt2-flate", vlt2Enc(trace.Writer2Options{Codec: trace.CodecFlate})},
	{"vlt2-fixed", vlt2Enc(trace.Writer2Options{Codec: trace.CodecFixed})},
	{"vlt2-fixed-flate", vlt2Enc(trace.Writer2Options{Codec: trace.CodecFixedFlate})},
	{"vlt2-odd-blocks", vlt2Enc(trace.Writer2Options{BlockRecords: 61})},
}

func vlt2Enc(opts trace.Writer2Options) func(tr *trace.Trace) ([]byte, error) {
	return func(tr *trace.Trace) ([]byte, error) {
		var buf bytes.Buffer
		err := trace.Write2(&buf, tr, opts)
		return buf.Bytes(), err
	}
}

// decodeVia materializes enc through the named decode path.
func decodeVia(t *testing.T, enc []byte, indexed bool) *trace.Trace {
	t.Helper()
	var d trace.Decoder
	var err error
	if indexed {
		d, err = trace.NewIndexedReaderBytes(enc)
	} else {
		d, err = trace.Open(bytes.NewReader(enc))
	}
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadAll(d)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestFormatDifferential is the VLT1↔VLT2 differential gate: for every
// suite workload and every encoding in the matrix, the decoded records and
// metadata must be byte-identical to the in-memory trace, the annotation
// computed from the decoded records must match the in-memory annotation,
// and all three machine models must produce identical stats no matter
// which format fed them. The 620/620+ legs consume the PPC-target trace
// and the 21164 leg the AXP-target trace, mirroring the paper's pairing.
func TestFormatDifferential(t *testing.T) {
	mem := NewSuiteParallel(1, 1)
	cfg := lvp.Simple
	for _, b := range streamDiffBenches() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			wantPPC, err := mem.Trace(b.Name, prog.PPC)
			if err != nil {
				t.Fatal(err)
			}
			wantAXP, err := mem.Trace(b.Name, prog.AXP)
			if err != nil {
				t.Fatal(err)
			}
			wantAnn, _, err := mem.Annotation(b.Name, prog.PPC, cfg)
			if err != nil {
				t.Fatal(err)
			}
			annAXP, _, err := mem.Annotation(b.Name, prog.AXP, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want620 := ppc620.Simulate(wantPPC, wantAnn, ppc620.Config620(), cfg.Name)
			want620p := ppc620.Simulate(wantPPC, wantAnn, ppc620.Config620Plus(), cfg.Name)
			want164 := axp21164.Simulate(wantAXP, annAXP, axp21164.Config21164(), cfg.Name)

			for _, f := range formatEncodings {
				f := f
				t.Run(f.name, func(t *testing.T) {
					encPPC, err := f.enc(wantPPC)
					if err != nil {
						t.Fatal(err)
					}
					encAXP, err := f.enc(wantAXP)
					if err != nil {
						t.Fatal(err)
					}
					// Every decode path the format supports must
					// materialize the identical trace.
					paths := []bool{false}
					if f.name != "vlt1" {
						paths = append(paths, true) // indexed
					}
					var gotPPC *trace.Trace
					for _, indexed := range paths {
						gotPPC = decodeVia(t, encPPC, indexed)
						if gotPPC.Name != wantPPC.Name || gotPPC.Target != wantPPC.Target {
							t.Fatalf("metadata differs: got %q/%q want %q/%q",
								gotPPC.Name, gotPPC.Target, wantPPC.Name, wantPPC.Target)
						}
						if !reflect.DeepEqual(gotPPC.Records, wantPPC.Records) {
							t.Fatalf("decoded records differ (indexed=%v)", indexed)
						}
					}
					gotAXP := decodeVia(t, encAXP, f.name != "vlt1")
					if !reflect.DeepEqual(gotAXP.Records, wantAXP.Records) {
						t.Fatal("decoded AXP records differ")
					}

					// Annotation from the decoded records must be
					// byte-identical to the in-memory annotation.
					gotAnn, _, err := lvp.Annotate(gotPPC, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(gotAnn, wantAnn) {
						t.Fatal("annotation from decoded trace differs")
					}

					// All three machine models, fed from the decoded
					// traces, must report identical stats.
					if got := ppc620.Simulate(gotPPC, gotAnn, ppc620.Config620(), cfg.Name); !reflect.DeepEqual(got, want620) {
						t.Fatalf("620 stats differ:\n mem  %+v\n file %+v", want620, got)
					}
					if got := ppc620.Simulate(gotPPC, gotAnn, ppc620.Config620Plus(), cfg.Name); !reflect.DeepEqual(got, want620p) {
						t.Fatalf("620+ stats differ:\n mem  %+v\n file %+v", want620p, got)
					}
					gotAnnAXP, _, err := lvp.Annotate(gotAXP, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if got := axp21164.Simulate(gotAXP, gotAnnAXP, axp21164.Config21164(), cfg.Name); !reflect.DeepEqual(got, want164) {
						t.Fatalf("21164 stats differ:\n mem  %+v\n file %+v", want164, got)
					}
				})
			}
		})
	}
}
