package exp

import (
	"io"

	"lvp/internal/bench"
	"lvp/internal/dfg"
	"lvp/internal/lvp"
	"lvp/internal/prog"
	"lvp/internal/report"
	"lvp/internal/stats"
)

// LimitRow is the dataflow-limit study for one benchmark: the best possible
// speedup from collapsing correctly-predicted loads, independent of any
// machine configuration.
type LimitRow struct {
	Name string
	// BaseIPC is the dataflow-limit IPC with full load latencies.
	BaseIPC float64
	// SimpleSpeedup / PerfectSpeedup are critical-path reductions with
	// the Simple and Perfect annotations.
	SimpleSpeedup  float64
	PerfectSpeedup float64
}

// LimitResult is the dataflow-limit dataset.
type LimitResult struct {
	Rows                []LimitRow
	GMSimple, GMPerfect float64
}

// DataflowLimits computes, per benchmark (PPC target), the dataflow-bound
// speedups that LVP could at most deliver — the machine-independent version
// of the paper's "collapsing true dependencies" claim.
func (s *Suite) DataflowLimits() (*LimitResult, error) {
	res := &LimitResult{Rows: make([]LimitRow, len(bench.All()))}
	lat := dfg.Default620()
	err := s.forEachBenchIdx(func(i int, b bench.Benchmark) error {
		t, err := s.Trace(b.Name, prog.PPC)
		if err != nil {
			return err
		}
		annS, _, err := s.Annotation(b.Name, prog.PPC, lvp.Simple)
		if err != nil {
			return err
		}
		annP, _, err := s.Annotation(b.Name, prog.PPC, lvp.Perfect)
		if err != nil {
			return err
		}
		base := dfg.Analyze(t, nil, lat)
		simple := dfg.Analyze(t, annS, lat)
		perfect := dfg.Analyze(t, annP, lat)
		res.Rows[i] = LimitRow{
			Name:           b.Name,
			BaseIPC:        base.LimitIPC(),
			SimpleSpeedup:  float64(base.CriticalPath) / float64(max(1, simple.CriticalPath)),
			PerfectSpeedup: float64(base.CriticalPath) / float64(max(1, perfect.CriticalPath)),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var a, b []float64
	for _, r := range res.Rows {
		a = append(a, r.SimpleSpeedup)
		b = append(b, r.PerfectSpeedup)
	}
	res.GMSimple, res.GMPerfect = stats.GeoMean(a), stats.GeoMean(b)
	return res, nil
}

// Render writes the table.
func (r *LimitResult) Render(w io.Writer) {
	t := report.Table{
		Title:   "Limit study: dataflow critical-path speedup from collapsing predicted loads (infinite resources)",
		Columns: []string{"Benchmark", "limit IPC", "Simple", "Perfect"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, stats.Ratio(row.BaseIPC),
			stats.Ratio(row.SimpleSpeedup), stats.Ratio(row.PerfectSpeedup))
	}
	t.AddRow("GM", "", stats.Ratio(r.GMSimple), stats.Ratio(r.GMPerfect))
	t.Render(w)
}

// MachineRow is the per-benchmark diagnostic row for one machine.
type MachineRow struct {
	Name         string
	IPC620       float64
	IPC620Plus   float64
	IPC21164     float64
	L1Miss620    float64 // per access
	L1Miss21164  float64
	BranchAcc620 float64
	Alias620     int
}

// MachinesResult is the baseline-machine diagnostic dataset (not a paper
// exhibit; a sanity dashboard a simulator release needs).
type MachinesResult struct {
	Rows []MachineRow
}

// Machines collects baseline (no-LVP) machine diagnostics per benchmark.
func (s *Suite) Machines() (*MachinesResult, error) {
	res := &MachinesResult{Rows: make([]MachineRow, len(bench.All()))}
	err := s.forEachBenchIdx(func(i int, b bench.Benchmark) error {
		s620, err := s.Sim620(b.Name, false, nil)
		if err != nil {
			return err
		}
		sPlus, err := s.Sim620(b.Name, true, nil)
		if err != nil {
			return err
		}
		s164, err := s.Sim21164(b.Name, nil)
		if err != nil {
			return err
		}
		res.Rows[i] = MachineRow{
			Name:         b.Name,
			IPC620:       s620.IPC(),
			IPC620Plus:   sPlus.IPC(),
			IPC21164:     s164.IPC(),
			L1Miss620:    s620.L1.MissRate(),
			L1Miss21164:  s164.L1.MissRate(),
			BranchAcc620: s620.Branch.CondAccuracy(),
			Alias620:     s620.AliasRefetches,
		}
		return nil
	})
	return res, err
}

// Render writes the dashboard.
func (r *MachinesResult) Render(w io.Writer) {
	t := report.Table{
		Title: "Machine diagnostics (baselines, no LVP)",
		Columns: []string{"Benchmark", "620 IPC", "620+ IPC", "21164 IPC",
			"620 L1 miss", "21164 L1 miss", "620 br acc", "620 alias refetch"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			stats.Ratio(row.IPC620), stats.Ratio(row.IPC620Plus), stats.Ratio(row.IPC21164),
			stats.Pct(row.L1Miss620, 1), stats.Pct(row.L1Miss21164, 1),
			stats.Pct(row.BranchAcc620, 1), row.Alias620)
	}
	t.Render(w)
}
