package exp

import (
	"io"
	"reflect"
	"testing"

	"lvp/internal/bench"
	"lvp/internal/lvp"
	"lvp/internal/ppc620"
	"lvp/internal/prog"
	"lvp/internal/trace"
	"lvp/internal/vm"
)

// streamDiffBenches is the workload set for the differential tests: every
// benchmark normally, a fixed subset under -short (the race gate runs
// -short, and the full cross-product is too slow under the detector).
func streamDiffBenches() []bench.Benchmark {
	all := bench.All()
	if testing.Short() {
		return all[:4]
	}
	return all
}

// streamCell runs the streaming gen → annotate front half for one cell and
// materializes what flows out of it, so it can be compared against the
// in-memory pipeline.
func streamCell(t *testing.T, name string, target prog.Target, cfg lvp.Config, scale, maxSteps int) ([]trace.Record, trace.Annotation) {
	t.Helper()
	bm, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := bm.Build(target, scale)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := lvp.NewPipe(vm.NewSource(p, maxSteps), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var recs []trace.Record
	var ann trace.Annotation
	for {
		r, st, err := pipe.Next()
		if err == io.EOF {
			return recs, ann
		}
		if err != nil {
			t.Fatalf("stream %s/%s: %v", name, target.Name, err)
		}
		recs = append(recs, *r)
		ann = append(ann, st)
	}
}

// runStreamDifferential is the tentpole's end-to-end differential: for each
// workload, the streaming pipeline must produce (a) the exact record
// sequence and annotation bytes of the in-memory gen → annotate path, and
// (b) simulation stats identical to the in-memory path on all three machine
// models. With parallel=true the per-bench subtests run concurrently, so
// the streaming cells also exercise the suite caches under contention.
func runStreamDifferential(t *testing.T, parallel bool) {
	mem := NewSuiteParallel(1, 1)
	stream := NewSuiteParallel(1, 1)
	stream.Stream = true
	for _, b := range streamDiffBenches() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if parallel {
				t.Parallel()
			}
			cfg := lvp.Simple

			// Gen → annotate: byte-identical records and annotation.
			wantTr, err := mem.Trace(b.Name, prog.PPC)
			if err != nil {
				t.Fatal(err)
			}
			wantAnn, _, err := mem.Annotation(b.Name, prog.PPC, cfg)
			if err != nil {
				t.Fatal(err)
			}
			recs, ann := streamCell(t, b.Name, prog.PPC, cfg, mem.Scale, mem.MaxSteps)
			if !reflect.DeepEqual(recs, wantTr.Records) {
				t.Fatal("streamed records differ from the materialized trace")
			}
			if !reflect.DeepEqual(ann, wantAnn) {
				t.Fatal("streamed annotation differs from the in-memory annotation")
			}

			// Sim stats: streaming suite vs in-memory suite on every
			// machine model, with and without LVP hardware.
			m620, err := mem.Sim620(b.Name, false, &cfg)
			if err != nil {
				t.Fatal(err)
			}
			s620, err := stream.Sim620(b.Name, false, &cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(m620, s620) {
				t.Fatalf("620 stats differ:\n mem    %+v\n stream %+v", m620, s620)
			}
			m620p, err := mem.Sim620(b.Name, true, nil)
			if err != nil {
				t.Fatal(err)
			}
			s620p, err := stream.Sim620(b.Name, true, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(m620p, s620p) {
				t.Fatalf("620+ (no LVP) stats differ:\n mem    %+v\n stream %+v", m620p, s620p)
			}
			m164, err := mem.Sim21164(b.Name, &cfg)
			if err != nil {
				t.Fatal(err)
			}
			s164, err := stream.Sim21164(b.Name, &cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(m164, s164) {
				t.Fatalf("21164 stats differ:\n mem    %+v\n stream %+v", m164, s164)
			}
		})
	}
}

// TestStreamDifferential checks every workload serially.
func TestStreamDifferential(t *testing.T) {
	runStreamDifferential(t, false)
}

// TestStreamDifferentialParallel re-runs the differential with concurrent
// per-bench subtests: same invariants, now with the streaming cells racing
// through the shared suite caches (the race gate runs this under -race).
func TestStreamDifferentialParallel(t *testing.T) {
	runStreamDifferential(t, true)
}

// TestStreamCellsMetered pins the streaming telemetry: a streamed cell
// must count its records on trace.stream.records and itself on
// trace.stream.cells.
func TestStreamCellsMetered(t *testing.T) {
	s := NewSuiteParallel(1, 1)
	s.Stream = true
	name := bench.All()[0].Name
	if _, err := s.Sim21164(name, nil); err != nil {
		t.Fatal(err)
	}
	if got := s.Metrics.Counter("trace.stream.cells").Value(); got != 1 {
		t.Fatalf("trace.stream.cells = %d, want 1", got)
	}
	recs := s.Metrics.Counter("trace.stream.records").Value()
	if recs <= 0 {
		t.Fatalf("trace.stream.records = %d, want > 0", recs)
	}
	// A cached re-request must not stream the cell again.
	if _, err := s.Sim21164(name, nil); err != nil {
		t.Fatal(err)
	}
	if got := s.Metrics.Counter("trace.stream.cells").Value(); got != 1 {
		t.Fatalf("trace.stream.cells after cached hit = %d, want 1", got)
	}
}

// BenchmarkStreamPipeline measures a full streaming gen → annotate → sim
// cell; BenchmarkMemPipeline is the same cell through the materialized
// in-memory pipeline (excluding suite caches on both sides).
func BenchmarkStreamPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSuiteParallel(1, 1)
		s.Stream = true
		if _, err := s.Sim620(bench.All()[0].Name, false, &lvp.Simple); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSuiteParallel(1, 1)
		if _, err := s.Sim620(bench.All()[0].Name, false, &lvp.Simple); err != nil {
			b.Fatal(err)
		}
	}
}

// perRecordSource and perRecordAnnotated hide batch capability behind the
// plain interfaces, reconstructing the PR-4 record-at-a-time pipeline so
// the fused benchmarks can compare the two paths on identical work.
type perRecordSource struct{ trace.Source }

type perRecordAnnotated struct{ trace.AnnotatedSource }

// fusedCell runs one gen → annotate → sim cell outside the suite caches;
// perRecord forces every stage onto the record-at-a-time interfaces.
func fusedCell(b *testing.B, perRecord bool) {
	b.Helper()
	bm := bench.All()[0]
	p, err := bm.Build(prog.PPC, 1)
	if err != nil {
		b.Fatal(err)
	}
	var src trace.Source = vm.NewSource(p, 0)
	if perRecord {
		src = perRecordSource{src}
	}
	pipe, err := lvp.NewPipe(src, lvp.Simple, nil)
	if err != nil {
		b.Fatal(err)
	}
	var ann trace.AnnotatedSource = pipe
	if perRecord {
		ann = perRecordAnnotated{ann}
	}
	if _, err := ppc620.SimulateSource(ann, ppc620.Config620(), lvp.Simple.Name); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStreamFusedBatch measures the fused gen → annotate → sim cell on
// the batched path (vm.Source.NextBatch → Pipe.NextBatch → trace.Pump);
// BenchmarkStreamFusedPerRecord is the identical cell forced onto the PR-4
// per-record interface chain. Their ratio is the pipeline_batch_speedup
// trajectory metric in BENCH_PR5.json.
func BenchmarkStreamFusedBatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fusedCell(b, false)
	}
}

func BenchmarkStreamFusedPerRecord(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fusedCell(b, true)
	}
}
