package exp

import (
	"io"

	"lvp/internal/bench"
	"lvp/internal/lvp"
	"lvp/internal/ppc620"
	"lvp/internal/prog"
	"lvp/internal/report"
	"lvp/internal/stats"
)

// GVPRow compares load-only value prediction against general (all-result)
// value prediction on the 620 for one benchmark — the most aggressive §7
// direction, and historically the follow-up that grew out of this paper.
type GVPRow struct {
	Name string
	// LVPSimple is the ordinary Simple-configuration speedup.
	LVPSimple float64
	// GVPSimple predicts every register result with the same table
	// budget (no CVU).
	GVPSimple float64
	// GVPPerfect is the all-results-correct bound.
	GVPPerfect float64
}

// GVPResult is the general-value-prediction study.
type GVPResult struct {
	Rows []GVPRow
	GM   [3]float64
}

// GVPStudy runs the 620 with load-only and general value prediction.
func (s *Suite) GVPStudy() (*GVPResult, error) {
	res := &GVPResult{Rows: make([]GVPRow, len(bench.All()))}
	err := s.forEachBenchIdx(func(i int, b bench.Benchmark) error {
		t, err := s.Trace(b.Name, prog.PPC)
		if err != nil {
			return err
		}
		base, err := s.Sim620(b.Name, false, nil)
		if err != nil {
			return err
		}
		lvpSimple, err := s.Sim620(b.Name, false, &lvp.Simple)
		if err != nil {
			return err
		}
		gvpAnn, _, err := lvp.AnnotateGeneral(t, lvp.Simple)
		if err != nil {
			return err
		}
		gvpSimple := ppc620.Simulate(t, gvpAnn, ppc620.Config620(), "GVP-Simple")
		perfAnn, _, err := lvp.AnnotateGeneral(t, lvp.Perfect)
		if err != nil {
			return err
		}
		gvpPerfect := ppc620.Simulate(t, perfAnn, ppc620.Config620(), "GVP-Perfect")
		res.Rows[i] = GVPRow{
			Name:       b.Name,
			LVPSimple:  float64(base.Cycles) / float64(lvpSimple.Cycles),
			GVPSimple:  float64(base.Cycles) / float64(gvpSimple.Cycles),
			GVPPerfect: float64(base.Cycles) / float64(gvpPerfect.Cycles),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var a, b, c []float64
	for _, r := range res.Rows {
		a = append(a, r.LVPSimple)
		b = append(b, r.GVPSimple)
		c = append(c, r.GVPPerfect)
	}
	res.GM = [3]float64{stats.GeoMean(a), stats.GeoMean(b), stats.GeoMean(c)}
	return res, nil
}

// Render writes the study.
func (r *GVPResult) Render(w io.Writer) {
	t := report.Table{
		Title:   "Extension (paper §7): general value prediction on the 620 (speedup over base)",
		Columns: []string{"Benchmark", "LVP Simple", "GVP Simple", "GVP Perfect"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, stats.Ratio(row.LVPSimple),
			stats.Ratio(row.GVPSimple), stats.Ratio(row.GVPPerfect))
	}
	t.AddRow("GM", stats.Ratio(r.GM[0]), stats.Ratio(r.GM[1]), stats.Ratio(r.GM[2]))
	t.Render(w)
}
