package exp

import (
	"fmt"
	"io"

	"lvp/internal/bench"
	"lvp/internal/lvp"
	"lvp/internal/prog"
	"lvp/internal/report"
	"lvp/internal/stats"
)

// Table2 renders the (static) LVP Unit configuration table, paper Table 2.
func Table2(w io.Writer) {
	t := report.Table{
		Title:   "Table 2: LVP Unit Configurations",
		Columns: []string{"Config", "LVPT entries", "History depth", "LCT entries", "LCT bits", "CVU entries"},
	}
	for _, c := range lvp.Configs {
		if c.Perfect {
			t.AddRow(c.Name, "inf", "perfect", "perfect", "-", 0)
			continue
		}
		depth := fmt.Sprintf("%d", c.HistoryDepth)
		if c.HistoryDepth > 1 {
			depth += "/perfect-select"
		}
		t.AddRow(c.Name, c.LVPTEntries, depth, c.LCTEntries, c.LCTBits, c.CVUEntries)
	}
	t.Render(w)
}

// Table3Row holds the LCT classification rates for one benchmark on one
// target (paper Table 3): the percentage of unpredictable loads identified
// as unpredictable, and of predictable loads identified as predictable,
// under the Simple and Limit configurations.
type Table3Row struct {
	Name                     string
	SimpleUnpred, SimplePred float64 // fractions
	LimitUnpred, LimitPred   float64
}

// Table3Result holds both targets' tables.
type Table3Result struct {
	AXP []Table3Row
	PPC []Table3Row
}

// Table3 reproduces paper Table 3 (LCT hit rates).
func (s *Suite) Table3() (*Table3Result, error) {
	n := len(bench.All())
	res := &Table3Result{AXP: make([]Table3Row, n), PPC: make([]Table3Row, n)}
	err := s.forEachBenchIdx(func(i int, b bench.Benchmark) error {
		for _, tg := range prog.Targets {
			simple, err := s.AnnotationStats(b.Name, tg, lvp.Simple)
			if err != nil {
				return err
			}
			limit, err := s.AnnotationStats(b.Name, tg, lvp.Limit)
			if err != nil {
				return err
			}
			row := Table3Row{
				Name:         b.Name,
				SimpleUnpred: simple.UnpredictableIdentifiedRate(),
				SimplePred:   simple.PredictableIdentifiedRate(),
				LimitUnpred:  limit.UnpredictableIdentifiedRate(),
				LimitPred:    limit.PredictableIdentifiedRate(),
			}
			if tg.Name == "axp" {
				res.AXP[i] = row
			} else {
				res.PPC[i] = row
			}
		}
		return nil
	})
	return res, err
}

// table3Mean returns the arithmetic means of the four columns for one
// target's rows. (The paper prints a GM row; we use the arithmetic mean
// because benchmarks with no predictable loads at all — e.g. tomcatv —
// contribute legitimate zeros that would annihilate a geometric mean.)
func table3Mean(rows []Table3Row) (su, sp, lu, lp float64) {
	var a, b, c, d []float64
	for _, r := range rows {
		a = append(a, r.SimpleUnpred)
		b = append(b, r.SimplePred)
		c = append(c, r.LimitUnpred)
		d = append(d, r.LimitPred)
	}
	return stats.Mean(a), stats.Mean(b), stats.Mean(c), stats.Mean(d)
}

// Render writes both target tables with GM rows.
func (r *Table3Result) Render(w io.Writer) {
	for _, part := range []struct {
		name string
		rows []Table3Row
	}{{"AXP", r.AXP}, {"PPC", r.PPC}} {
		t := report.Table{
			Title: "Table 3 (" + part.name + "): LCT Hit Rates",
			Columns: []string{"Benchmark",
				"Simple unpred", "Simple pred", "Limit unpred", "Limit pred"},
		}
		for _, row := range part.rows {
			t.AddRow(row.Name,
				stats.Pct(row.SimpleUnpred, 0), stats.Pct(row.SimplePred, 0),
				stats.Pct(row.LimitUnpred, 0), stats.Pct(row.LimitPred, 0))
		}
		su, sp, lu, lp := table3Mean(part.rows)
		t.AddRow("Mean", stats.Pct(su, 0), stats.Pct(sp, 0), stats.Pct(lu, 0), stats.Pct(lp, 0))
		t.Render(w)
	}
}

// Table4Row holds the constant-identification rate (fraction of all dynamic
// loads verified through the CVU) for one benchmark on one target under the
// Simple and Constant configurations (paper Table 4).
type Table4Row struct {
	Name          string
	Simple, Const float64 // fractions of all dynamic loads
}

// Table4Result holds both targets.
type Table4Result struct {
	AXP []Table4Row
	PPC []Table4Row
}

// Table4 reproduces paper Table 4 (successful constant identification).
func (s *Suite) Table4() (*Table4Result, error) {
	n := len(bench.All())
	res := &Table4Result{AXP: make([]Table4Row, n), PPC: make([]Table4Row, n)}
	err := s.forEachBenchIdx(func(i int, b bench.Benchmark) error {
		for _, tg := range prog.Targets {
			simple, err := s.AnnotationStats(b.Name, tg, lvp.Simple)
			if err != nil {
				return err
			}
			cst, err := s.AnnotationStats(b.Name, tg, lvp.Constant)
			if err != nil {
				return err
			}
			row := Table4Row{Name: b.Name, Simple: simple.ConstantRate(), Const: cst.ConstantRate()}
			if tg.Name == "axp" {
				res.AXP[i] = row
			} else {
				res.PPC[i] = row
			}
		}
		return nil
	})
	return res, err
}

// Render writes the table (both targets side by side, like the paper).
func (r *Table4Result) Render(w io.Writer) {
	t := report.Table{
		Title: "Table 4: Successful Constant Identification Rates (% of all dynamic loads)",
		Columns: []string{"Benchmark",
			"AXP Simple", "AXP Constant", "PPC Simple", "PPC Constant"},
	}
	var a, b, c, d []float64
	for i := range r.AXP {
		t.AddRow(r.AXP[i].Name,
			stats.Pct(r.AXP[i].Simple, 1), stats.Pct(r.AXP[i].Const, 1),
			stats.Pct(r.PPC[i].Simple, 1), stats.Pct(r.PPC[i].Const, 1))
		a = append(a, r.AXP[i].Simple)
		b = append(b, r.AXP[i].Const)
		c = append(c, r.PPC[i].Simple)
		d = append(d, r.PPC[i].Const)
	}
	t.AddRow("Mean", stats.Pct(stats.Mean(a), 1), stats.Pct(stats.Mean(b), 1),
		stats.Pct(stats.Mean(c), 1), stats.Pct(stats.Mean(d), 1))
	t.Render(w)
}

// Table5 renders the (static) instruction-latency table, paper Table 5.
func Table5(w io.Writer) {
	t := report.Table{
		Title:   "Table 5: Instruction Latencies (issue/result)",
		Columns: []string{"Class", "PPC 620", "AXP 21164"},
	}
	t.AddRow("Simple integer", "1/1", "1/1")
	t.AddRow("Complex integer", "1/4 (mul), 1/35 (div)", "1/8 (mul), 1/16 (div)")
	t.AddRow("Load/store (L1 hit)", "1/2", "1/2")
	t.AddRow("Simple FP", "1/3", "1/4")
	t.AddRow("Complex FP", "18/18", "1/36")
	t.AddRow("Branch (pred/mispred)", "1, 0/1+", "1, 0/4")
	t.Render(w)
}
