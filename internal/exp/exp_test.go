package exp

import (
	"bytes"
	"strings"
	"testing"

	"lvp/internal/bench"
	"lvp/internal/lvp"
	"lvp/internal/prog"
)

// The suite is shared across tests: experiments cache traces and sims, so
// ordering does not matter and the whole file stays fast.
var testSuite = NewSuite(1)

func TestTable1AllBenchmarks(t *testing.T) {
	r, err := testSuite.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(bench.All()) {
		t.Fatalf("rows = %d, want %d", len(r.Rows), len(bench.All()))
	}
	for _, row := range r.Rows {
		if row.Name == "" || row.AXPInstr == 0 || row.PPCInstr == 0 {
			t.Errorf("incomplete row: %+v", row)
		}
		if row.AXPLoads <= 0 || row.AXPLoads >= row.AXPInstr {
			t.Errorf("%s: implausible load count %d/%d", row.Name, row.AXPLoads, row.AXPInstr)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "grep") {
		t.Error("render missing benchmark rows")
	}
}

func TestFigure1Shape(t *testing.T) {
	r, err := testSuite.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig1Row{}
	for _, row := range r.Rows {
		byName[row.Name] = row
		// Deeper history can never reduce locality.
		if row.AXPD16 < row.AXPD1-0.01 || row.PPCD16 < row.PPCD1-0.01 {
			t.Errorf("%s: depth-16 < depth-1 (%v)", row.Name, row)
		}
		if row.AXPD1 < 0 || row.AXPD1 > 100 {
			t.Errorf("%s: locality out of range: %v", row.Name, row)
		}
	}
	// The paper's headline shape: cjpeg, swm256 and tomcatv are poor;
	// most integer codes are ~40%+ at depth 1 and >80% at depth 16.
	for _, poor := range []string{"cjpeg", "swm256", "tomcatv"} {
		if byName[poor].PPCD1 > 35 {
			t.Errorf("%s should have poor locality, got %.1f%%", poor, byName[poor].PPCD1)
		}
	}
	for _, good := range []string{"grep", "gperf", "eqntott", "sc"} {
		if byName[good].PPCD1 < 40 {
			t.Errorf("%s should have good depth-1 locality, got %.1f%%", good, byName[good].PPCD1)
		}
		if byName[good].PPCD16 < 80 {
			t.Errorf("%s should exceed 80%% at depth 16, got %.1f%%", good, byName[good].PPCD16)
		}
	}
}

func TestFigure2AddressesBeatData(t *testing.T) {
	r, err := testSuite.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate the paper's Figure 2 finding: address loads tend to be
	// more predictable than data loads. Check on the suite average of
	// benchmarks that actually have address loads.
	var instSum, dataSum float64
	var n int
	for _, row := range r.Rows {
		const instAddr, intData = 3, 2 // isa.LoadInstAddr, isa.LoadIntData
		if row.Share[instAddr] > 0.01 && row.Share[intData] > 0.01 {
			instSum += row.Pct[instAddr][0]
			dataSum += row.Pct[intData][0]
			n++
		}
	}
	if n == 0 {
		t.Fatal("no benchmarks with both instruction-address and int-data loads")
	}
	if instSum/float64(n) <= dataSum/float64(n) {
		t.Errorf("instruction-address loads (%.1f%%) should beat int data (%.1f%%) on average",
			instSum/float64(n), dataSum/float64(n))
	}
}

func TestTable3RatesPlausible(t *testing.T) {
	r, err := testSuite.Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range [][]Table3Row{r.AXP, r.PPC} {
		for _, row := range rows {
			for _, v := range []float64{row.SimpleUnpred, row.SimplePred, row.LimitUnpred, row.LimitPred} {
				if v < 0 || v > 1 {
					t.Errorf("%s: rate out of range: %+v", row.Name, row)
				}
			}
		}
	}
}

func TestTable4ShapeMatchesPaper(t *testing.T) {
	r, err := testSuite.Table4()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table4Row{}
	for _, row := range r.PPC {
		byName[row.Name] = row
	}
	// Paper Table 4: tomcatv ~0-1%, quick ~0%, cjpeg tiny; compress,
	// sc, grep substantial.
	if byName["tomcatv"].Const > 0.05 {
		t.Errorf("tomcatv constants = %v, want ~0", byName["tomcatv"].Const)
	}
	if byName["quick"].Const > 0.10 {
		t.Errorf("quick constants = %v, want small", byName["quick"].Const)
	}
	for _, strong := range []string{"compress", "sc", "grep"} {
		if byName[strong].Const < 0.10 {
			t.Errorf("%s constants = %v, want substantial", strong, byName[strong].Const)
		}
	}
	// The Constant configuration (bigger CVU, 1-bit LCT) should never
	// identify materially fewer constants than Simple.
	for _, row := range r.PPC {
		if row.Const < row.Simple-0.02 {
			t.Errorf("%s: Constant config (%v) below Simple (%v)", row.Name, row.Const, row.Simple)
		}
	}
}

func TestFigure6HeadlineResults(t *testing.T) {
	r, err := testSuite.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	// Paper headline: measurable average gains on both machines, larger
	// on the in-order 21164 than the out-of-order 620 (§6.1), and the
	// Perfect configuration bounds the realistic ones.
	if r.GMPPC[0] < 1.0 {
		t.Errorf("620 Simple GM = %.3f, want >= 1.0", r.GMPPC[0])
	}
	if r.GMAXP[0] < 1.01 {
		t.Errorf("21164 Simple GM = %.3f, want measurable gain", r.GMAXP[0])
	}
	if r.GMAXP[0] < r.GMPPC[0] {
		t.Errorf("21164 (%.3f) should gain more than the 620 (%.3f)", r.GMAXP[0], r.GMPPC[0])
	}
	if r.GMPPC[3] < r.GMPPC[0] {
		t.Errorf("Perfect GM (%.3f) must bound Simple (%.3f)", r.GMPPC[3], r.GMPPC[0])
	}
	// No benchmark may be catastrophically slowed (paper: mispredict
	// penalty kept small by the LCT).
	for _, row := range r.Rows {
		for _, sp := range row.PPC {
			if sp < 0.90 {
				t.Errorf("%s: 620 slowdown %.3f below sanity bound", row.Name, sp)
			}
		}
	}
}

func TestTable6MoreParallelismHelpsLVP(t *testing.T) {
	r, err := testSuite.Table6()
	if err != nil {
		t.Fatal(err)
	}
	if r.GMPlus < 1.0 {
		t.Errorf("620+ GM speedup = %.3f, want >= 1", r.GMPlus)
	}
	// Paper §6.2: the 620+'s increased machine parallelism more closely
	// matches LVP's exposed parallelism — its Limit/Perfect gains exceed
	// the base 620's.
	f6, err := testSuite.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if r.GMLVP[2] < f6.GMPPC[2]*0.95 {
		t.Errorf("620+ Limit GM (%.3f) unexpectedly far below 620's (%.3f)",
			r.GMLVP[2], f6.GMPPC[2])
	}
}

func TestFigure7Distribution(t *testing.T) {
	r, err := testSuite.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	for mi := range r.Pct {
		for ci := range r.Pct[mi] {
			sum := 0.0
			for _, v := range r.Pct[mi][ci] {
				sum += v
			}
			if sum < 99 || sum > 101 {
				t.Errorf("machine %d config %d: distribution sums to %.1f%%", mi, ci, sum)
			}
		}
	}
}

func TestFigure8WaitsReduced(t *testing.T) {
	r, err := testSuite.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	// Under Perfect LVP, dependency waits must drop below baseline for
	// the units whose operands are predicted (paper Figure 8).
	const scfx, lsu = 0, 3 // ppc620.SCFX, ppc620.LSU
	perfIdx := 3
	if r.Norm[0][perfIdx][scfx] >= 100 || r.Norm[0][perfIdx][lsu] >= 100 {
		t.Errorf("Perfect LVP did not reduce SCFX/LSU waits: %v", r.Norm[0][perfIdx])
	}
}

func TestFigure9ConstantReducesConflicts(t *testing.T) {
	r, err := testSuite.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate direction: the Constant configuration (biggest CVU)
	// should not systematically increase conflicts relative to Simple.
	if r.Mean[0][2] > r.Mean[0][1]*1.25+0.1 {
		t.Errorf("Constant mean conflicts (%.3f%%) far above Simple (%.3f%%)",
			r.Mean[0][2], r.Mean[0][1])
	}
}

func TestAblations(t *testing.T) {
	sweep, err := testSuite.LVPTSweep([]int{256, 4096})
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Coverage[1] < sweep.Coverage[0] {
		t.Errorf("bigger LVPT should not reduce coverage: %v", sweep.Coverage)
	}
	cvu, err := testSuite.CVUSweep([]int{8, 256})
	if err != nil {
		t.Fatal(err)
	}
	if cvu.ConstRate[1] < cvu.ConstRate[0] {
		t.Errorf("bigger CVU should not reduce constants: %v", cvu.ConstRate)
	}
	lct, err := testSuite.LCTBitsSweep([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if lct.Accuracy[0] <= 0 || lct.Accuracy[1] <= 0 {
		t.Errorf("LCT sweep produced zero accuracy: %v", lct.Accuracy)
	}
}

func TestPredictorStudy(t *testing.T) {
	r, err := testSuite.PredictorStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(bench.All()) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Depth-1 locality approximately upper-bounds last-value
		// accuracy (same table geometry and replacement; the predictor
		// can additionally hit zero-valued loads on cold zero-filled
		// entries, hence the small tolerance).
		if row.LastValue > row.Locality1+1.0 {
			t.Errorf("%s: last-value %.1f%% exceeds its locality bound %.1f%%",
				row.Name, row.LastValue, row.Locality1)
		}
	}
}

func TestSuiteCaching(t *testing.T) {
	s := NewSuite(1)
	t1, err := s.Trace("quick", prog.AXP)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s.Trace("quick", prog.AXP)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Error("trace not cached")
	}
	a1, _, err := s.Annotation("quick", prog.AXP, lvp.Simple)
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := s.Annotation("quick", prog.AXP, lvp.Simple)
	if err != nil {
		t.Fatal(err)
	}
	if &a1[0] != &a2[0] {
		t.Error("annotation not cached")
	}
}

func TestSuiteUnknownBenchmark(t *testing.T) {
	s := NewSuite(1)
	if _, err := s.Trace("nope", prog.AXP); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestGeneralValueLocality(t *testing.T) {
	r, err := testSuite.GeneralValueLocality()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]GVLRow{}
	for _, row := range r.Rows {
		byName[row.Name] = row
		if row.AllD16 < row.AllD1-0.01 {
			t.Errorf("%s: depth-16 below depth-1: %+v", row.Name, row)
		}
	}
	// cjpeg's ALU results are far more predictable than its loads — the
	// §7 motivation for predicting non-load values.
	if byName["cjpeg"].AllD1 < byName["cjpeg"].LoadsD1+5 {
		t.Errorf("cjpeg: all-result locality (%.1f%%) should beat load locality (%.1f%%)",
			byName["cjpeg"].AllD1, byName["cjpeg"].LoadsD1)
	}
}

func TestPathLVPStudy(t *testing.T) {
	r, err := testSuite.PathLVPStudy([]int{0, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Mean) != 2 {
		t.Fatalf("mean columns = %d", len(r.Mean))
	}
	// On average, folding branch history in should not hurt, and the
	// switch-heavy compiler benchmarks should gain noticeably.
	if r.Mean[1] < r.Mean[0]-1 {
		t.Errorf("ghr=8 mean (%.1f%%) fell below ghr=0 (%.1f%%)", r.Mean[1], r.Mean[0])
	}
	for _, row := range r.Rows {
		if row.Name == "cc1" && row.Acc[1] < row.Acc[0]+5 {
			t.Errorf("cc1 should gain from path history: %.1f%% -> %.1f%%",
				row.Acc[0], row.Acc[1])
		}
	}
}

func TestMAFAblation(t *testing.T) {
	r, err := testSuite.MAFAblation()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		// Non-blocking misses can only raise the baseline IPC.
		if row.NonBlockingIPC < row.BlockingIPC-0.001 {
			t.Errorf("%s: MAF lowered IPC: %.3f -> %.3f",
				row.Name, row.BlockingIPC, row.NonBlockingIPC)
		}
	}
	if r.GMBlocking <= 0 || r.GMNonBlocking <= 0 {
		t.Error("degenerate geometric means")
	}
}

func TestDataflowLimits(t *testing.T) {
	r, err := testSuite.DataflowLimits()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.BaseIPC <= 0 {
			t.Errorf("%s: degenerate limit IPC", row.Name)
		}
		if row.SimpleSpeedup < 0.999 {
			t.Errorf("%s: collapsing loads lengthened the critical path: %v",
				row.Name, row.SimpleSpeedup)
		}
		if row.PerfectSpeedup < row.SimpleSpeedup-1e-9 {
			t.Errorf("%s: Perfect (%v) below Simple (%v)", row.Name,
				row.PerfectSpeedup, row.SimpleSpeedup)
		}
	}
	if r.GMPerfect < r.GMSimple {
		t.Error("Perfect GM below Simple GM")
	}
}

func TestMachinesDiagnostics(t *testing.T) {
	r, err := testSuite.Machines()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.IPC620 <= 0 || row.IPC21164 <= 0 {
			t.Errorf("%s: zero IPC", row.Name)
		}
		// The wider 620+ must never be slower than the 620.
		if row.IPC620Plus < row.IPC620*0.999 {
			t.Errorf("%s: 620+ IPC (%v) below 620 (%v)", row.Name,
				row.IPC620Plus, row.IPC620)
		}
		// The 21164's 8KB direct-mapped L1 must miss at least as often
		// as the 620's 32KB 8-way L1.
		if row.L1Miss21164 < row.L1Miss620-0.001 {
			t.Errorf("%s: 21164 L1 (%v) missing less than 620's (%v)",
				row.Name, row.L1Miss21164, row.L1Miss620)
		}
	}
}

func TestResourceSweep(t *testing.T) {
	r, err := testSuite.ResourceSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 2 {
		t.Fatal("missing variants")
	}
	if r.Rows[0].Speedup != 1.0 {
		t.Errorf("base variant speedup = %v, want exactly 1", r.Rows[0].Speedup)
	}
	last := r.Rows[len(r.Rows)-1]
	for _, row := range r.Rows[:len(r.Rows)-1] {
		if row.Speedup < 0.999 {
			t.Errorf("%s: enlarging a resource slowed the machine: %v", row.Name, row.Speedup)
		}
		if last.Speedup < row.Speedup-1e-9 {
			t.Errorf("620+ (%v) below single-axis variant %s (%v)",
				last.Speedup, row.Name, row.Speedup)
		}
	}
}

// TestAllRendersProduceOutput pins that every result type renders without
// panicking and mentions its benchmarks.
func TestAllRendersProduceOutput(t *testing.T) {
	var buf bytes.Buffer
	check := func(name string) {
		t.Helper()
		out := buf.String()
		if len(out) < 100 || !strings.Contains(out, "grep") {
			t.Errorf("%s render suspicious (len %d)", name, len(out))
		}
		buf.Reset()
	}
	if r, err := testSuite.Figure1(); err == nil {
		r.Render(&buf)
		check("fig1")
	}
	if r, err := testSuite.Figure2(); err == nil {
		r.Render(&buf)
		check("fig2")
	}
	if r, err := testSuite.Table3(); err == nil {
		r.Render(&buf)
		check("table3")
	}
	if r, err := testSuite.Table4(); err == nil {
		r.Render(&buf)
		check("table4")
	}
	if r, err := testSuite.Figure6(); err == nil {
		r.Render(&buf)
		check("fig6")
	}
	if r, err := testSuite.Table6(); err == nil {
		r.Render(&buf)
		check("table6")
	}
	if r, err := testSuite.Figure9(); err == nil {
		r.Render(&buf)
		check("fig9")
	}
	if r, err := testSuite.GeneralValueLocality(); err == nil {
		r.Render(&buf)
		check("gvl")
	}
	if r, err := testSuite.PathLVPStudy([]int{0, 4}); err == nil {
		r.Render(&buf)
		check("pathlvp")
	}
	if r, err := testSuite.MAFAblation(); err == nil {
		r.Render(&buf)
		check("maf")
	}
	if r, err := testSuite.DataflowLimits(); err == nil {
		r.Render(&buf)
		check("limits")
	}
	if r, err := testSuite.Machines(); err == nil {
		r.Render(&buf)
		check("machines")
	}
	if r, err := testSuite.ResourceSweep(); err == nil {
		r.Render(&buf)
		if buf.Len() == 0 {
			t.Error("resources render empty")
		}
		buf.Reset()
	}
	if r, err := testSuite.PredictorStudy(); err == nil {
		r.Render(&buf)
		check("predictors")
	}
	// Figure 7/8 and the sweeps have no per-benchmark rows; just render.
	if r, err := testSuite.Figure7(); err == nil {
		r.Render(&buf)
		if buf.Len() == 0 {
			t.Error("fig7 render empty")
		}
		buf.Reset()
	}
	if r, err := testSuite.Figure8(); err == nil {
		r.Render(&buf)
		if buf.Len() == 0 {
			t.Error("fig8 render empty")
		}
		buf.Reset()
	}
	if r, err := testSuite.LVPTSweep([]int{256, 512}); err == nil {
		r.Render(&buf)
		if buf.Len() == 0 {
			t.Error("lvptsweep render empty")
		}
		buf.Reset()
	}
	if r, err := testSuite.LCTBitsSweep([]int{1, 2}); err == nil {
		r.Render(&buf)
		if buf.Len() == 0 {
			t.Error("lctsweep render empty")
		}
		buf.Reset()
	}
	if r, err := testSuite.CVUSweep([]int{8, 16}); err == nil {
		r.Render(&buf)
		if buf.Len() == 0 {
			t.Error("cvusweep render empty")
		}
		buf.Reset()
	}
	// Static tables.
	Table2(&buf)
	if buf.Len() == 0 {
		t.Error("table2 empty")
	}
	buf.Reset()
	Table5(&buf)
	if buf.Len() == 0 {
		t.Error("table5 empty")
	}
	buf.Reset()
	if r, err := testSuite.Table1(); err == nil {
		r.Render(&buf)
		check("table1")
	}
}

func TestGVPStudy(t *testing.T) {
	r, err := testSuite.GVPStudy()
	if err != nil {
		t.Fatal(err)
	}
	// Perfect all-result prediction must dominate both realistic columns
	// and beat load-only Perfect headroom on average.
	for _, row := range r.Rows {
		if row.GVPPerfect < row.GVPSimple-1e-9 || row.GVPPerfect < row.LVPSimple-1e-9 {
			t.Errorf("%s: GVP Perfect (%v) below a realistic column (%v / %v)",
				row.Name, row.GVPPerfect, row.GVPSimple, row.LVPSimple)
		}
	}
	f6, err := testSuite.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if r.GM[2] < f6.GMPPC[3] {
		t.Errorf("GVP Perfect GM (%v) should exceed load-only Perfect GM (%v)",
			r.GM[2], f6.GMPPC[3])
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "grep") {
		t.Error("render missing rows")
	}
}

// TestSuiteParallelismDeterministic pins that the concurrent experiment
// driver produces identical numbers across independent suites (all
// randomness is seeded; caches only memoise).
func TestSuiteParallelismDeterministic(t *testing.T) {
	a, err := NewSuite(1).Figure6()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSuite(1).Figure6()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a.Rows[i], b.Rows[i])
		}
	}
	if a.GMPPC != b.GMPPC || a.GMAXP != b.GMAXP {
		t.Fatal("geometric means differ across runs")
	}
}

func TestStallsDiagnostics(t *testing.T) {
	r, err := testSuite.Stalls()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		for _, v := range []float64{row.RS, row.Rename, row.Completion, row.MemSlots, row.FetchEmpty} {
			if v < 0 || v > 1 {
				t.Errorf("%s: stall fraction out of range: %+v", row.Name, row)
			}
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "grep") {
		t.Error("stalls render missing rows")
	}
}
