// Package exp drives the reproduction: one driver per table and figure of
// the paper's evaluation, sharing cached traces, LVP annotations, and
// machine simulations across experiments.
//
// Machine/trace pairing follows the paper's methodology (§5): the PowerPC
// 620 and 620+ models consume PPC-target traces (the AIX/xlc side), the
// Alpha 21164 model consumes AXP-target traces (the OSF side).
//
// The evaluation is a wide fan-out — 17 benchmarks × 2 targets × 4 LVP
// configs × 3 machine models — so every driver submits its per-benchmark
// cells to a bounded worker pool (internal/par) instead of looping inline.
// Three invariants keep the parallel run byte-identical to the serial one:
//
//  1. traces, annotations and simulations live in single-flight caches, so
//     each is built exactly once no matter how many cells request it
//     concurrently;
//  2. drivers merge results into pre-sized, index-addressed slots (or
//     commutative integer accumulators), never by append-in-completion
//     order;
//  3. cross-benchmark reductions (means, geometric means) always run over
//     those slots in reporting order.
package exp

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"lvp/internal/axp21164"
	"lvp/internal/bench"
	"lvp/internal/lvp"
	"lvp/internal/obs"
	"lvp/internal/par"
	"lvp/internal/ppc620"
	"lvp/internal/prog"
	"lvp/internal/trace"
	"lvp/internal/vm"
)

// Cache keys. Scale is part of the trace key (per the engine contract:
// traces are memoized by benchmark, target, scale) even though it is
// currently fixed per Suite, so a future multi-scale suite cannot alias.
type traceKey struct {
	name   string
	target string
	scale  int
}

// annKey memoizes annotations by the full Config value, not just its name,
// so two ad-hoc configs that share a name can never collide.
type annKey struct {
	name   string
	target string
	scale  int
	cfg    lvp.Config
}

type sim620Key struct {
	name  string
	plus  bool
	cfg   lvp.Config
	noLVP bool
}

type sim164Key struct {
	name  string
	cfg   lvp.Config
	noLVP bool
}

// zooKey memoizes predictor-zoo cells by benchmark and family name (a
// family name fully determines the predictor geometry).
type zooKey struct {
	name   string
	family string
	scale  int
}

// annotated pairs an annotation with the unit stats produced alongside it,
// so one cached build serves both Annotation and AnnotationStats callers.
type annotated struct {
	ann trace.Annotation
	st  lvp.Stats
}

// Suite generates and caches everything the experiments need.
type Suite struct {
	// Scale multiplies benchmark run lengths (1 = default).
	Scale int
	// MaxSteps bounds functional execution per benchmark.
	MaxSteps int
	// Workers bounds the experiment fan-out; <= 0 selects the
	// GOMAXPROCS-derived default. 1 runs serially. Output is
	// byte-identical for every value.
	Workers int
	// Stream routes machine-simulation cells through the streaming
	// pipeline (gen → annotate → sim in one pass, bounded memory, no
	// trace materialization) instead of the cached in-memory path. Stats
	// are identical either way; only the memory profile differs.
	// Experiments that need a materialized trace (locality, annotation
	// tables) are unaffected.
	Stream bool
	// ZooFamilies restricts the predictor-zoo sweep to the named
	// families (lvpsim -zoo); empty selects every registered family.
	// Output stays deterministic for any selection.
	ZooFamilies []string

	// Metrics receives pipeline telemetry: per-phase build timers,
	// LVPT/LCT/CVU and machine-model counters, worker-pool occupancy.
	// NewSuite installs a fresh registry; nil disables collection (a
	// nil registry's metric handles are no-ops). Metrics never affect
	// experiment output.
	Metrics *obs.Registry
	// Tracer, when non-nil, emits structured events from every pipeline
	// layer on its enabled channels (lvpt, lct, cvu, cache, sim,
	// pipeline). Tracing never affects experiment output either — only
	// what is emitted alongside it.
	Tracer *obs.Tracer

	// ctx, when non-nil, cancels the suite's fan-outs and cache builds;
	// nil means Background. Set via WithContext so several views of one
	// suite (sharing caches) can run under different lifetimes.
	ctx context.Context

	// caches is shared by every WithContext view of the suite, so
	// traces, annotations and simulations are built once across all
	// concurrent jobs regardless of which view requested them.
	caches *suiteCaches
}

// suiteCaches is the shared single-flight memo state behind a Suite and all
// of its WithContext views.
type suiteCaches struct {
	traces par.Cache[traceKey, *trace.Trace]
	loads  par.Cache[traceKey, lvp.LoadSlab]
	anns   par.Cache[annKey, annotated]
	s620   par.Cache[sim620Key, ppc620.Stats]
	s164   par.Cache[sim164Key, axp21164.Stats]
	zoo    par.Cache[zooKey, ZooCell]
}

// NewSuite returns a Suite at the given scale (values below 1 are clamped)
// with the default worker-pool size.
func NewSuite(scale int) *Suite {
	return NewSuiteParallel(scale, 0)
}

// NewSuiteParallel returns a Suite at the given scale running its
// experiment fan-out on a bounded pool of `workers` goroutines (<= 0
// selects the GOMAXPROCS default, 1 is serial).
func NewSuiteParallel(scale, workers int) *Suite {
	if scale < 1 {
		scale = 1
	}
	return &Suite{
		Scale:    scale,
		MaxSteps: 200_000_000,
		Workers:  workers,
		Metrics:  obs.NewRegistry(),
		caches:   &suiteCaches{},
	}
}

// WithContext returns a view of the suite whose fan-outs and cache builds
// are cancelled when ctx is done. The view shares the suite's caches,
// metrics and tracer; only the lifetime differs, so concurrent jobs can run
// the same suite under independent deadlines. Cancellation stops work
// between cells (a cell already simulating runs to completion) and is
// reported as ctx's error; cancelled builds are never cached
// (par.Cache.GetCtx), so a later run under a live context recomputes them.
func (s *Suite) WithContext(ctx context.Context) *Suite {
	view := *s
	view.ctx = ctx
	return &view
}

// context resolves the suite's lifetime; nil means Background.
func (s *Suite) context() context.Context {
	if s.ctx != nil {
		return s.ctx
	}
	return context.Background()
}

// workers resolves the effective pool size.
func (s *Suite) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return par.DefaultWorkers()
}

// cacheState resolves the shared memo state, guarding against Suites built
// around NewSuite/NewSuiteParallel.
func (s *Suite) cacheState() *suiteCaches {
	if s.caches == nil {
		panic("exp: Suite must be created with NewSuite or NewSuiteParallel")
	}
	return s.caches
}

// Trace builds (or returns the cached) trace for one benchmark and target.
// Concurrent callers for the same trace share a single build.
func (s *Suite) Trace(name string, target prog.Target) (*trace.Trace, error) {
	ctx := s.context()
	return s.cacheState().traces.GetCtx(ctx, traceKey{name, target.Name, s.Scale}, func() (*trace.Trace, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start := time.Now()
		bm, err := bench.ByName(name)
		if err != nil {
			return nil, err
		}
		p, err := bm.Build(target, s.Scale)
		if err != nil {
			return nil, fmt.Errorf("exp: building %s/%s: %w", name, target.Name, err)
		}
		t, _, err := vm.Run(p, s.MaxSteps)
		if err != nil {
			return nil, fmt.Errorf("exp: running %s/%s: %w", name, target.Name, err)
		}
		s.finishPhase("trace", start,
			slog.String("bench", name), slog.String("target", target.Name),
			slog.Int("records", len(t.Records)))
		return t, nil
	})
}

// Loads returns the benchmark's PPC dynamic-load stream in decode-once slab
// form (PC/value pairs of every load, trace order). The slab is extracted
// once per (benchmark, scale) and shared — the predictor-zoo sweep fans
// every family out over it instead of re-filtering the record stream.
func (s *Suite) Loads(name string) (lvp.LoadSlab, error) {
	ctx := s.context()
	return s.cacheState().loads.GetCtx(ctx, traceKey{name, prog.PPC.Name, s.Scale}, func() (lvp.LoadSlab, error) {
		t, err := s.Trace(name, prog.PPC)
		if err != nil {
			return lvp.LoadSlab{}, err
		}
		return lvp.ExtractLoads(t), nil
	})
}

// finishPhase records one completed pipeline build: its wall time under the
// phase.<phase> timer and the phase.<phase>.wall_ns latency histogram, a
// progress.<phase> completion count, a span on the suite context's trace
// scope (parented under the requesting job's cell span when one is live),
// and — with the pipeline trace channel enabled — one event carrying the
// cell's identity and duration.
func (s *Suite) finishPhase(phase string, start time.Time, attrs ...slog.Attr) {
	elapsed := time.Since(start)
	s.Metrics.Timer("phase." + phase).Observe(elapsed)
	s.Metrics.Histogram("phase." + phase + ".wall_ns").Observe(int64(elapsed))
	s.Metrics.Counter("progress." + phase).Inc()
	obs.CompleteSpan(s.context(), phase, start, attrs...)
	if s.Tracer.Enabled(obs.ChanPipeline) {
		attrs = append(attrs, slog.String("phase", phase),
			slog.Int64("wall_us", elapsed.Microseconds()))
		s.Tracer.Emit(obs.ChanPipeline, "phase-done", attrs...)
	}
}

// Annotation returns the cached LVP annotation and unit stats for one
// benchmark/target/config. The LVP Unit runs exactly once per key across
// all concurrent consumers.
func (s *Suite) Annotation(name string, target prog.Target, cfg lvp.Config) (trace.Annotation, lvp.Stats, error) {
	ctx := s.context()
	r, err := s.cacheState().anns.GetCtx(ctx, annKey{name, target.Name, s.Scale, cfg}, func() (annotated, error) {
		t, err := s.Trace(name, target)
		if err != nil {
			return annotated{}, err
		}
		if err := ctx.Err(); err != nil {
			return annotated{}, err
		}
		start := time.Now()
		a, st, err := lvp.AnnotateTraced(t, cfg, s.Tracer)
		if err != nil {
			return annotated{}, err
		}
		s.recordAnnStats(st)
		s.finishPhase("annotate", start,
			slog.String("bench", name), slog.String("target", target.Name),
			slog.String("config", cfg.Name))
		return annotated{a, st}, nil
	})
	return r.ann, r.st, err
}

// AnnotationStats returns the LVP Unit counters for one
// benchmark/target/config (Tables 3 and 4). It shares the Annotation cache,
// so the unit never re-runs for stats that were already produced.
func (s *Suite) AnnotationStats(name string, target prog.Target, cfg lvp.Config) (lvp.Stats, error) {
	_, st, err := s.Annotation(name, target, cfg)
	return st, err
}

// Sim620 simulates one benchmark on the 620 (plus=false) or 620+ with the
// given LVP config; cfg == nil means no LVP hardware.
func (s *Suite) Sim620(name string, plus bool, cfg *lvp.Config) (ppc620.Stats, error) {
	key := sim620Key{name: name, plus: plus, noLVP: cfg == nil}
	if cfg != nil {
		key.cfg = *cfg
	}
	ctx := s.context()
	return s.cacheState().s620.GetCtx(ctx, key, func() (ppc620.Stats, error) {
		if s.Stream {
			return s.StreamSim620(name, plus, cfg)
		}
		t, err := s.Trace(name, prog.PPC)
		if err != nil {
			return ppc620.Stats{}, err
		}
		var ann trace.Annotation
		cfgName := "none"
		if cfg != nil {
			cfgName = cfg.Name
			ann, _, err = s.Annotation(name, prog.PPC, *cfg)
			if err != nil {
				return ppc620.Stats{}, err
			}
		}
		if err := ctx.Err(); err != nil {
			return ppc620.Stats{}, err
		}
		mc := ppc620.Config620()
		if plus {
			mc = ppc620.Config620Plus()
		}
		start := time.Now()
		st := ppc620.SimulateObs(t, ann, mc, cfgName, s.Tracer)
		s.record620Stats(st)
		s.finishPhase("sim620", start,
			slog.String("bench", name), slog.String("machine", mc.Name),
			slog.String("config", cfgName))
		return st, nil
	})
}

// Sim21164 simulates one benchmark on the 21164 with the given LVP config
// (nil = no LVP hardware).
func (s *Suite) Sim21164(name string, cfg *lvp.Config) (axp21164.Stats, error) {
	key := sim164Key{name: name, noLVP: cfg == nil}
	if cfg != nil {
		key.cfg = *cfg
	}
	ctx := s.context()
	return s.cacheState().s164.GetCtx(ctx, key, func() (axp21164.Stats, error) {
		if s.Stream {
			return s.StreamSim21164(name, cfg)
		}
		t, err := s.Trace(name, prog.AXP)
		if err != nil {
			return axp21164.Stats{}, err
		}
		var ann trace.Annotation
		cfgName := "none"
		if cfg != nil {
			cfgName = cfg.Name
			ann, _, err = s.Annotation(name, prog.AXP, *cfg)
			if err != nil {
				return axp21164.Stats{}, err
			}
		}
		if err := ctx.Err(); err != nil {
			return axp21164.Stats{}, err
		}
		start := time.Now()
		st := axp21164.SimulateObs(t, ann, axp21164.Config21164(), cfgName, s.Tracer)
		s.record164Stats(st)
		s.finishPhase("sim21164", start,
			slog.String("bench", name), slog.String("config", cfgName))
		return st, nil
	})
}

// forEachBench runs fn for every benchmark on the suite's worker pool and
// returns the lowest-index error.
func (s *Suite) forEachBench(fn func(b bench.Benchmark) error) error {
	return s.forEachBenchIdx(func(_ int, b bench.Benchmark) error { return fn(b) })
}

// forEachBenchIdx is forEachBench plus the benchmark's reporting-order
// index, so drivers can merge results into pre-sized slots without locking:
// each cell owns exactly one slot, and downstream reductions read the slots
// in reporting order regardless of completion order.
func (s *Suite) forEachBenchIdx(fn func(i int, b bench.Benchmark) error) error {
	all := bench.All()
	return s.forEachIdx(len(all), func(i int) error {
		return fn(i, all[i])
	})
}

// forEachIdx runs fn over [0, n) on the suite's worker pool with the
// standard occupancy meter — the raw fan-out under forEachBenchIdx, for
// drivers whose task grid is wider than one benchmark dimension (the zoo
// sweep's family × benchmark cells).
func (s *Suite) forEachIdx(n int, fn func(i int) error) error {
	var meter par.Meter
	if s.Metrics != nil {
		// The pool.busy gauge tracks live worker occupancy; its
		// high-water mark reports how much of the pool the fan-out
		// actually used.
		meter = s.Metrics.Gauge("pool.busy")
	}
	return par.ForEachMeterCtx(s.context(), s.workers(), n, meter, fn)
}
