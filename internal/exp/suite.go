// Package exp drives the reproduction: one driver per table and figure of
// the paper's evaluation, sharing cached traces, LVP annotations, and
// machine simulations across experiments.
//
// Machine/trace pairing follows the paper's methodology (§5): the PowerPC
// 620 and 620+ models consume PPC-target traces (the AIX/xlc side), the
// Alpha 21164 model consumes AXP-target traces (the OSF side).
package exp

import (
	"fmt"
	"runtime"
	"sync"

	"lvp/internal/axp21164"
	"lvp/internal/bench"
	"lvp/internal/lvp"
	"lvp/internal/ppc620"
	"lvp/internal/prog"
	"lvp/internal/trace"
	"lvp/internal/vm"
)

// Suite generates and caches everything the experiments need.
type Suite struct {
	// Scale multiplies benchmark run lengths (1 = default).
	Scale int
	// MaxSteps bounds functional execution per benchmark.
	MaxSteps int

	mu     sync.Mutex
	traces map[string]*trace.Trace
	anns   map[string]trace.Annotation
	s620   map[string]ppc620.Stats
	s164   map[string]axp21164.Stats
}

// NewSuite returns a Suite at the given scale (values below 1 are clamped).
func NewSuite(scale int) *Suite {
	if scale < 1 {
		scale = 1
	}
	return &Suite{
		Scale:    scale,
		MaxSteps: 200_000_000,
		traces:   make(map[string]*trace.Trace),
		anns:     make(map[string]trace.Annotation),
		s620:     make(map[string]ppc620.Stats),
		s164:     make(map[string]axp21164.Stats),
	}
}

// Trace builds (or returns the cached) trace for one benchmark and target.
func (s *Suite) Trace(name string, target prog.Target) (*trace.Trace, error) {
	key := name + "/" + target.Name
	s.mu.Lock()
	if t, ok := s.traces[key]; ok {
		s.mu.Unlock()
		return t, nil
	}
	s.mu.Unlock()

	bm, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	p, err := bm.Build(target, s.Scale)
	if err != nil {
		return nil, fmt.Errorf("exp: building %s/%s: %w", name, target.Name, err)
	}
	t, _, err := vm.Run(p, s.MaxSteps)
	if err != nil {
		return nil, fmt.Errorf("exp: running %s/%s: %w", name, target.Name, err)
	}
	s.mu.Lock()
	s.traces[key] = t
	s.mu.Unlock()
	return t, nil
}

// Annotation returns the cached LVP annotation and unit stats for one
// benchmark/target/config.
func (s *Suite) Annotation(name string, target prog.Target, cfg lvp.Config) (trace.Annotation, lvp.Stats, error) {
	t, err := s.Trace(name, target)
	if err != nil {
		return nil, lvp.Stats{}, err
	}
	key := name + "/" + target.Name + "/" + cfg.Name
	s.mu.Lock()
	if a, ok := s.anns[key]; ok {
		s.mu.Unlock()
		// Stats are cheap to recompute but we cache only the
		// annotation; recompute stats when explicitly needed via
		// AnnotationStats.
		return a, lvp.Stats{}, nil
	}
	s.mu.Unlock()
	a, st, err := lvp.Annotate(t, cfg)
	if err != nil {
		return nil, lvp.Stats{}, err
	}
	s.mu.Lock()
	s.anns[key] = a
	s.mu.Unlock()
	return a, st, nil
}

// AnnotationStats runs the LVP unit over the trace and returns its stats
// (uncached; used by the Table 3/4 drivers that need the unit counters).
func (s *Suite) AnnotationStats(name string, target prog.Target, cfg lvp.Config) (lvp.Stats, error) {
	t, err := s.Trace(name, target)
	if err != nil {
		return lvp.Stats{}, err
	}
	_, st, err := lvp.Annotate(t, cfg)
	return st, err
}

// Sim620 simulates one benchmark on the 620 (plus=false) or 620+ with the
// given LVP config; cfg == nil means no LVP hardware.
func (s *Suite) Sim620(name string, plus bool, cfg *lvp.Config) (ppc620.Stats, error) {
	machine := "620"
	if plus {
		machine = "620+"
	}
	cfgName := "none"
	if cfg != nil {
		cfgName = cfg.Name
	}
	key := name + "/" + machine + "/" + cfgName
	s.mu.Lock()
	if st, ok := s.s620[key]; ok {
		s.mu.Unlock()
		return st, nil
	}
	s.mu.Unlock()

	t, err := s.Trace(name, prog.PPC)
	if err != nil {
		return ppc620.Stats{}, err
	}
	var ann trace.Annotation
	if cfg != nil {
		ann, _, err = s.Annotation(name, prog.PPC, *cfg)
		if err != nil {
			return ppc620.Stats{}, err
		}
	}
	mc := ppc620.Config620()
	if plus {
		mc = ppc620.Config620Plus()
	}
	st := ppc620.Simulate(t, ann, mc, cfgName)
	s.mu.Lock()
	s.s620[key] = st
	s.mu.Unlock()
	return st, nil
}

// Sim21164 simulates one benchmark on the 21164 with the given LVP config
// (nil = no LVP hardware).
func (s *Suite) Sim21164(name string, cfg *lvp.Config) (axp21164.Stats, error) {
	cfgName := "none"
	if cfg != nil {
		cfgName = cfg.Name
	}
	key := name + "/" + cfgName
	s.mu.Lock()
	if st, ok := s.s164[key]; ok {
		s.mu.Unlock()
		return st, nil
	}
	s.mu.Unlock()

	t, err := s.Trace(name, prog.AXP)
	if err != nil {
		return axp21164.Stats{}, err
	}
	var ann trace.Annotation
	if cfg != nil {
		ann, _, err = s.Annotation(name, prog.AXP, *cfg)
		if err != nil {
			return axp21164.Stats{}, err
		}
	}
	st := axp21164.Simulate(t, ann, axp21164.Config21164(), cfgName)
	s.mu.Lock()
	s.s164[key] = st
	s.mu.Unlock()
	return st, nil
}

// forEachBench runs fn for every benchmark concurrently (bounded by CPU
// count) and returns the first error.
func (s *Suite) forEachBench(fn func(b bench.Benchmark) error) error {
	sem := make(chan struct{}, max(1, runtime.GOMAXPROCS(0)))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, b := range bench.All() {
		wg.Add(1)
		sem <- struct{}{}
		go func(b bench.Benchmark) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := fn(b); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(b)
	}
	wg.Wait()
	return firstErr
}
