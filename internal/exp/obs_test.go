package exp

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"lvp/internal/lvp"
	"lvp/internal/obs"
	"lvp/internal/prog"
)

// TestCacheStatsSingleFlight hits the same annotation key from 64 goroutines
// and asserts — directly from the cache counters — that exactly one build
// happened and everyone else coalesced onto it.
func TestCacheStatsSingleFlight(t *testing.T) {
	s := NewSuite(1)
	const callers = 64
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := s.Annotation("quick", prog.AXP, lvp.Simple); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	cs := s.CacheStats()
	if cs.Annotations.Gets != callers {
		t.Errorf("annotation gets = %d, want %d", cs.Annotations.Gets, callers)
	}
	if got := cs.Annotations.Builds(); got != 1 {
		t.Errorf("annotation builds = %d, want 1 (single-flight)", got)
	}
	if cs.Annotations.Entries != 1 {
		t.Errorf("annotation entries = %d, want 1", cs.Annotations.Entries)
	}
	if cs.Annotations.Hits != callers-1 {
		t.Errorf("annotation hits = %d, want %d", cs.Annotations.Hits, callers-1)
	}
	// The annotation build pulled the trace exactly once.
	if got := cs.Traces.Builds(); got != 1 {
		t.Errorf("trace builds = %d, want 1", got)
	}
	if rate := cs.Annotations.HitRate(); rate <= 0.9 {
		t.Errorf("annotation hit rate = %v, want > 0.9", rate)
	}
}

// TestSuiteMetricsPopulated runs one cell of each phase and checks the
// registry carries the snapshot fields the acceptance criteria name:
// per-phase timings, LVPT/LCT/CVU counters, and par.Cache rates.
func TestSuiteMetricsPopulated(t *testing.T) {
	s := NewSuite(1)
	if _, _, err := s.Annotation("quick", prog.PPC, lvp.Simple); err != nil {
		t.Fatal(err)
	}
	cfg := lvp.Simple
	if _, err := s.Sim620("quick", false, &cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sim21164("quick", &cfg); err != nil {
		t.Fatal(err)
	}
	s.FinalizeMetrics()

	snap := s.Metrics.Snapshot()
	for _, c := range []string{
		"lvp.loads", "lvpt.lookups", "lvpt.hits", "lvpt.updates",
		"lct.lookups", "lct.updates",
		"cvu.lookups", "cvu.inserts",
		"sim620.runs", "sim620.cycles", "sim21164.runs", "sim21164.cycles",
		"progress.trace", "progress.annotate", "progress.sim620", "progress.sim21164",
	} {
		if snap.Counters[c] <= 0 {
			t.Errorf("counter %q = %d, want > 0", c, snap.Counters[c])
		}
	}
	for _, tm := range []string{"phase.trace", "phase.annotate", "phase.sim620", "phase.sim21164"} {
		if snap.Timers[tm].Count == 0 {
			t.Errorf("timer %q missing from snapshot", tm)
		}
	}
	for _, g := range []string{"cache.traces.gets", "cache.annotations.gets", "cache.sims620.entries"} {
		if snap.Gauges[g].Value <= 0 {
			t.Errorf("gauge %q = %d, want > 0", g, snap.Gauges[g].Value)
		}
	}
	// At least one LCT transition pair was exercised.
	found := false
	for name := range snap.Counters {
		if strings.HasPrefix(name, "lct.trans.") {
			found = true
			break
		}
	}
	if !found {
		t.Error("no lct.trans.* counters recorded")
	}
}

// TestSuiteTracerEmitsJSONL runs an annotation with the lvpt and pipeline
// channels live and validates every emitted line parses as JSON.
func TestSuiteTracerEmitsJSONL(t *testing.T) {
	s := NewSuite(1)
	var buf bytes.Buffer
	s.Tracer = obs.NewTracer(&buf, obs.ChanLVPT|obs.ChanPipeline)
	if _, _, err := s.Annotation("quick", prog.AXP, lvp.Simple); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("got %d trace lines, want at least a load event and a phase-done", len(lines))
	}
	sawLoad, sawPhase := false, false
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d not valid JSON: %v: %q", i, err, line)
		}
		switch m["chan"] {
		case "lvpt":
			sawLoad = true
		case "pipeline":
			sawPhase = true
		default:
			t.Fatalf("line %d on unexpected channel %v", i, m["chan"])
		}
	}
	if !sawLoad || !sawPhase {
		t.Errorf("missing events: lvpt=%v pipeline=%v", sawLoad, sawPhase)
	}
}

// TestNilMetricsSuite checks a bare Suite (no registry, no tracer) still
// runs every phase: instrumentation must never be load-bearing.
func TestNilMetricsSuite(t *testing.T) {
	s := &Suite{Scale: 1, MaxSteps: 200_000_000, caches: &suiteCaches{}}
	if _, _, err := s.Annotation("quick", prog.AXP, lvp.Simple); err != nil {
		t.Fatal(err)
	}
	cfg := lvp.Simple
	if _, err := s.Sim21164("quick", &cfg); err != nil {
		t.Fatal(err)
	}
	if cs := s.CacheStats(); cs.Annotations.Builds() != 1 {
		t.Errorf("annotation builds = %d, want 1", cs.Annotations.Builds())
	}
}
