package exp

import (
	"io"

	"lvp/internal/axp21164"
	"lvp/internal/bench"
	"lvp/internal/lvp"
	"lvp/internal/prog"
	"lvp/internal/report"
	"lvp/internal/stats"
)

// MAFRow quantifies, for one benchmark, how much of the 21164's LVP gain
// depends on the paper's choice to omit the MAF (miss address file): the
// Simple-LVP speedup with blocking misses (paper baseline) versus with
// non-blocking misses (real 21164).
type MAFRow struct {
	Name string
	// BlockingIPC / NonBlockingIPC are base-model IPCs.
	BlockingIPC, NonBlockingIPC float64
	// SpeedupBlocking / SpeedupNonBlocking are Simple-LVP speedups over
	// the respective baselines.
	SpeedupBlocking, SpeedupNonBlocking float64
}

// MAFResult is the ablation dataset.
type MAFResult struct {
	Rows []MAFRow
	// GM of the two speedup columns.
	GMBlocking, GMNonBlocking float64
}

// MAFAblation runs the 21164 with and without the MAF. The paper accentuated
// in-order behaviour by omitting it; this quantifies how much of the
// reported gain that choice contributes.
func (s *Suite) MAFAblation() (*MAFResult, error) {
	res := &MAFResult{Rows: make([]MAFRow, len(bench.All()))}
	err := s.forEachBenchIdx(func(i int, b bench.Benchmark) error {
		t, err := s.Trace(b.Name, prog.AXP)
		if err != nil {
			return err
		}
		ann, _, err := s.Annotation(b.Name, prog.AXP, lvp.Simple)
		if err != nil {
			return err
		}
		blocking := axp21164.Config21164()
		nonblocking := axp21164.Config21164()
		nonblocking.Name = "21164+MAF"
		nonblocking.NonBlocking = true

		bBase := axp21164.Simulate(t, nil, blocking, "")
		bLVP := axp21164.Simulate(t, ann, blocking, "Simple")
		nBase := axp21164.Simulate(t, nil, nonblocking, "")
		nLVP := axp21164.Simulate(t, ann, nonblocking, "Simple")
		res.Rows[i] = MAFRow{
			Name:               b.Name,
			BlockingIPC:        bBase.IPC(),
			NonBlockingIPC:     nBase.IPC(),
			SpeedupBlocking:    float64(bBase.Cycles) / float64(bLVP.Cycles),
			SpeedupNonBlocking: float64(nBase.Cycles) / float64(nLVP.Cycles),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var a, b []float64
	for _, r := range res.Rows {
		a = append(a, r.SpeedupBlocking)
		b = append(b, r.SpeedupNonBlocking)
	}
	res.GMBlocking, res.GMNonBlocking = stats.GeoMean(a), stats.GeoMean(b)
	return res, nil
}

// Render writes the ablation table.
func (r *MAFResult) Render(w io.Writer) {
	t := report.Table{
		Title: "Ablation: 21164 MAF (paper omits it) — Simple-LVP speedup with blocking vs non-blocking misses",
		Columns: []string{"Benchmark", "IPC no-MAF", "IPC MAF",
			"speedup no-MAF", "speedup MAF"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			stats.Ratio(row.BlockingIPC), stats.Ratio(row.NonBlockingIPC),
			stats.Ratio(row.SpeedupBlocking), stats.Ratio(row.SpeedupNonBlocking))
	}
	t.AddRow("GM", "", "", stats.Ratio(r.GMBlocking), stats.Ratio(r.GMNonBlocking))
	t.Render(w)
}
