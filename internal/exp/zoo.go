package exp

import (
	"fmt"
	"io"
	"log/slog"
	"time"

	"lvp/internal/bench"
	"lvp/internal/lvp"
	"lvp/internal/report"
	"lvp/internal/stats"
)

// The predictor-zoo sweep: every registered predictor family (internal/lvp
// zoo registry) run over every benchmark's PPC trace, reporting coverage
// (hits over all loads), accuracy (hits over spoken predictions), and the
// table-interference counters that the tagged/set-associative organisations
// make observable. Cells are cached single-flight like every other suite
// artifact, so the lvpd zoo cells and the sweep share builds.

// ZooCell is one family × benchmark measurement — also the wire payload of
// an lvpd "zoo" cell (the served bytes are json.Marshal of this struct).
type ZooCell struct {
	Family string `json:"family"`
	Bench  string `json:"bench"`
	lvp.ZooMeasure
}

// ZooCell measures one predictor family over one benchmark's PPC trace,
// through the suite's single-flight cache.
func (s *Suite) ZooCell(benchName, family string) (ZooCell, error) {
	f, err := lvp.FamilyByName(family)
	if err != nil {
		return ZooCell{}, err
	}
	ctx := s.context()
	return s.cacheState().zoo.GetCtx(ctx, zooKey{benchName, family, s.Scale}, func() (ZooCell, error) {
		// Decode once, fan out: every family's cell for this benchmark
		// measures over the same cached load slab instead of re-walking
		// the full record stream.
		loads, err := s.Loads(benchName)
		if err != nil {
			return ZooCell{}, err
		}
		if err := ctx.Err(); err != nil {
			return ZooCell{}, err
		}
		start := time.Now()
		m := lvp.MeasureZooLoads(loads, f.New())
		s.recordZooStats(m)
		s.finishPhase("zoo", start,
			slog.String("bench", benchName), slog.String("family", family))
		return ZooCell{Family: family, Bench: benchName, ZooMeasure: m}, nil
	})
}

// zooFamilies resolves a family selection: the explicit argument first, the
// suite's ZooFamilies field next, the full registry last.
func (s *Suite) zooFamilies(families []string) ([]string, error) {
	if len(families) == 0 {
		families = s.ZooFamilies
	}
	if len(families) == 0 {
		return lvp.FamilyNames(), nil
	}
	for _, f := range families {
		if _, err := lvp.FamilyByName(f); err != nil {
			return nil, err
		}
	}
	return families, nil
}

// ZooResult is the family × workload ablation dataset: Cells is
// family-major ([family][benchmark], both in reporting order), the Mean
// slices are arithmetic means over the suite (several benchmarks earn a
// legitimate 0%, which would zero a geometric mean).
type ZooResult struct {
	Families   []string
	Benchmarks []string
	Cells      [][]lvp.ZooMeasure
	MeanCov    []float64
	MeanAcc    []float64
}

// ZooSweep measures the selected predictor families (nil = the suite's
// ZooFamilies selection, or every registered family) over the whole suite.
func (s *Suite) ZooSweep(families []string) (*ZooResult, error) {
	fams, err := s.zooFamilies(families)
	if err != nil {
		return nil, err
	}
	all := bench.All()
	res := &ZooResult{
		Families:   fams,
		Benchmarks: bench.Names(),
		Cells:      make([][]lvp.ZooMeasure, len(fams)),
		MeanCov:    make([]float64, len(fams)),
		MeanAcc:    make([]float64, len(fams)),
	}
	// One flat fan-out over the whole family × benchmark grid, instead of a
	// per-family barrier: with F families and B benchmarks the pool sees
	// F×B tasks at once, so a slow family no longer serializes the sweep.
	// Flat slots indexed by grid position keep reductions in reporting
	// order, so the rendered bytes are identical for every worker count.
	flat := make([]lvp.ZooMeasure, len(fams)*len(all))
	err = s.forEachIdx(len(flat), func(k int) error {
		fi, bi := k/len(all), k%len(all)
		c, err := s.ZooCell(all[bi].Name, fams[fi])
		if err != nil {
			return err
		}
		flat[k] = c.ZooMeasure
		return nil
	})
	if err != nil {
		return nil, err
	}
	for fi := range fams {
		cells := flat[fi*len(all) : (fi+1)*len(all)]
		res.Cells[fi] = cells
		covs, accs := make([]float64, len(cells)), make([]float64, len(cells))
		for i, m := range cells {
			covs[i] = m.Coverage()
			accs[i] = m.Accuracy()
		}
		res.MeanCov[fi] = stats.Mean(covs)
		res.MeanAcc[fi] = stats.Mean(accs)
	}
	return res, nil
}

// Render writes the sweep: a coverage table and an accuracy table
// (benchmark rows × family columns), then the interference totals for the
// families whose tables can observe aliasing.
func (r *ZooResult) Render(w io.Writer) {
	pct := func(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

	cov := report.Table{
		Title:   "Predictor zoo: coverage (% of all loads predicted exactly, PPC)",
		Columns: append([]string{"Benchmark"}, r.Families...),
	}
	acc := report.Table{
		Title:   "Predictor zoo: accuracy (% of spoken predictions exact, PPC)",
		Columns: append([]string{"Benchmark"}, r.Families...),
	}
	for bi, name := range r.Benchmarks {
		covRow := make([]any, 0, len(r.Families)+1)
		accRow := make([]any, 0, len(r.Families)+1)
		covRow = append(covRow, name)
		accRow = append(accRow, name)
		for fi := range r.Families {
			m := r.Cells[fi][bi]
			covRow = append(covRow, pct(m.Coverage()))
			accRow = append(accRow, pct(m.Accuracy()))
		}
		cov.AddRow(covRow...)
		acc.AddRow(accRow...)
	}
	covMean := []any{"Mean"}
	accMean := []any{"Mean"}
	for fi := range r.Families {
		covMean = append(covMean, pct(r.MeanCov[fi]))
		accMean = append(accMean, pct(r.MeanAcc[fi]))
	}
	cov.AddRow(covMean...)
	acc.AddRow(accMean...)
	cov.Render(w)
	acc.Render(w)

	inter := report.Table{
		Title:   "Predictor zoo: table interference over the suite (tagged/assoc families)",
		Columns: []string{"Family", "Tag misses", "Alias evicts"},
	}
	rows := 0
	for fi, fam := range r.Families {
		var tagMiss, aliasEvict int64
		for _, m := range r.Cells[fi] {
			tagMiss += m.TagMisses
			aliasEvict += m.AliasEvicts
		}
		if tagMiss == 0 && aliasEvict == 0 {
			continue
		}
		inter.AddRow(fam, tagMiss, aliasEvict)
		rows++
	}
	if rows > 0 {
		inter.Render(w)
	}
}
