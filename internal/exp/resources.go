package exp

import (
	"io"

	"lvp/internal/bench"
	"lvp/internal/ppc620"
	"lvp/internal/prog"
	"lvp/internal/report"
	"lvp/internal/stats"
)

// resourceVariant is one single-axis enlargement of the base 620.
type resourceVariant struct {
	name  string
	apply func(*ppc620.Config)
}

func resourceVariants() []resourceVariant {
	return []resourceVariant{
		{"base 620", func(c *ppc620.Config) {}},
		{"2x reservation stations", func(c *ppc620.Config) {
			for f := range c.RS {
				c.RS[f] *= 2
			}
		}},
		{"2x rename buffers", func(c *ppc620.Config) {
			c.GPRRename *= 2
			c.FPRRename *= 2
		}},
		{"2x completion buffer", func(c *ppc620.Config) {
			c.Completion *= 2
		}},
		{"2nd load/store unit", func(c *ppc620.Config) {
			c.Units[ppc620.LSU] = 2
			c.MaxLoadDispatch, c.MaxStoreDispatch = 2, 2
			c.RelaxedLS = true
		}},
		{"620+ (all of the above)", func(c *ppc620.Config) {
			*c = ppc620.Config620Plus()
		}},
	}
}

// ResourceRow is one variant's geometric-mean speedup over the base 620.
type ResourceRow struct {
	Name    string
	Speedup float64
}

// ResourceResult is the single-axis resource-sensitivity study of the 620 —
// which buffer the 620+'s gains actually come from (context for the paper's
// §6.2 discussion).
type ResourceResult struct {
	Rows []ResourceRow
}

// ResourceSweep runs the whole suite over each variant (no LVP) and reports
// GM speedups over the base 620.
func (s *Suite) ResourceSweep() (*ResourceResult, error) {
	variants := resourceVariants()
	res := &ResourceResult{Rows: make([]ResourceRow, len(variants))}
	speedups := make([][]float64, len(variants))
	for vi := range speedups {
		speedups[vi] = make([]float64, len(bench.All()))
	}
	err := s.forEachBenchIdx(func(bi int, b bench.Benchmark) error {
		t, err := s.Trace(b.Name, prog.PPC)
		if err != nil {
			return err
		}
		base := 0
		for vi, v := range variants {
			cfg := ppc620.Config620()
			v.apply(&cfg)
			st := ppc620.Simulate(t, nil, cfg, "")
			if vi == 0 {
				base = st.Cycles
			}
			speedups[vi][bi] = float64(base) / float64(st.Cycles)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for vi, v := range variants {
		res.Rows[vi] = ResourceRow{Name: v.name, Speedup: stats.GeoMean(speedups[vi])}
	}
	return res, nil
}

// Render writes the sweep.
func (r *ResourceResult) Render(w io.Writer) {
	t := report.Table{
		Title:   "Ablation: which 620 resource binds? (GM speedup over base 620, no LVP)",
		Columns: []string{"Variant", "GM speedup"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, stats.Ratio(row.Speedup))
	}
	t.Render(w)
}
