package exp

import (
	"io"
	"sync"

	"lvp/internal/bench"
	"lvp/internal/lvp"
	"lvp/internal/ppc620"
	"lvp/internal/report"
	"lvp/internal/stats"
)

// PPCConfigs are the LVP configurations simulated on the 620/620+ (paper
// Figure 6 lower panel / Table 6 order).
var PPCConfigs = []lvp.Config{lvp.Simple, lvp.Constant, lvp.Limit, lvp.Perfect}

// AXPConfigs are the configurations simulated on the 21164; the paper omits
// Constant there (§6.1).
var AXPConfigs = []lvp.Config{lvp.Simple, lvp.Limit, lvp.Perfect}

// Fig6Row holds base-machine speedups for one benchmark (paper Figure 6).
type Fig6Row struct {
	Name string
	// PPC speedups over the base 620, in PPCConfigs order.
	PPC [4]float64
	// AXP speedups over the base 21164, in AXPConfigs order.
	AXP [3]float64
}

// Fig6Result is the Figure 6 dataset plus geometric means.
type Fig6Result struct {
	Rows  []Fig6Row
	GMPPC [4]float64
	GMAXP [3]float64
}

// Figure6 reproduces paper Figure 6: base machine model speedups.
func (s *Suite) Figure6() (*Fig6Result, error) {
	res := &Fig6Result{Rows: make([]Fig6Row, len(bench.All()))}
	err := s.forEachBenchIdx(func(i int, b bench.Benchmark) error {
		row := Fig6Row{Name: b.Name}
		base620, err := s.Sim620(b.Name, false, nil)
		if err != nil {
			return err
		}
		for i := range PPCConfigs {
			st, err := s.Sim620(b.Name, false, &PPCConfigs[i])
			if err != nil {
				return err
			}
			row.PPC[i] = float64(base620.Cycles) / float64(st.Cycles)
		}
		base164, err := s.Sim21164(b.Name, nil)
		if err != nil {
			return err
		}
		for i := range AXPConfigs {
			st, err := s.Sim21164(b.Name, &AXPConfigs[i])
			if err != nil {
				return err
			}
			row.AXP[i] = float64(base164.Cycles) / float64(st.Cycles)
		}
		res.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range PPCConfigs {
		var xs []float64
		for _, r := range res.Rows {
			xs = append(xs, r.PPC[i])
		}
		res.GMPPC[i] = stats.GeoMean(xs)
	}
	for i := range AXPConfigs {
		var xs []float64
		for _, r := range res.Rows {
			xs = append(xs, r.AXP[i])
		}
		res.GMAXP[i] = stats.GeoMean(xs)
	}
	return res, nil
}

// Render writes both panels.
func (r *Fig6Result) Render(w io.Writer) {
	axp := report.BarChart{
		Title:  "Figure 6 (Alpha AXP 21164): speedup over base model",
		Series: []string{"Simple", "Limit", "Perfect"},
		Max:    1.6,
	}
	for _, row := range r.Rows {
		axp.Groups = append(axp.Groups, report.BarGroup{Label: row.Name, Values: row.AXP[:]})
	}
	axp.Groups = append(axp.Groups, report.BarGroup{Label: "GM", Values: r.GMAXP[:]})
	axp.Render(w)

	ppc := report.BarChart{
		Title:  "Figure 6 (PowerPC 620): speedup over base model",
		Series: []string{"Simple", "Constant", "Limit", "Perfect"},
		Max:    1.6,
	}
	for _, row := range r.Rows {
		ppc.Groups = append(ppc.Groups, report.BarGroup{Label: row.Name, Values: row.PPC[:]})
	}
	ppc.Groups = append(ppc.Groups, report.BarGroup{Label: "GM", Values: r.GMPPC[:]})
	ppc.Render(w)
}

// Table6Row holds the 620+ numbers for one benchmark (paper Table 6).
type Table6Row struct {
	Name string
	// Cycles620 is the base-620 cycle count (the paper lists base
	// cycles in column 2).
	Cycles620 int
	// PlusSpeedup is 620+ (no LVP) over 620 (no LVP).
	PlusSpeedup float64
	// LVP are additional speedups of 620+ with each config over 620+
	// without LVP, in PPCConfigs order.
	LVP [4]float64
}

// Table6Result is the Table 6 dataset plus geometric means.
type Table6Result struct {
	Rows   []Table6Row
	GMPlus float64
	GMLVP  [4]float64
}

// Table6 reproduces paper Table 6: PowerPC 620+ speedups.
func (s *Suite) Table6() (*Table6Result, error) {
	res := &Table6Result{Rows: make([]Table6Row, len(bench.All()))}
	err := s.forEachBenchIdx(func(i int, b bench.Benchmark) error {
		base620, err := s.Sim620(b.Name, false, nil)
		if err != nil {
			return err
		}
		basePlus, err := s.Sim620(b.Name, true, nil)
		if err != nil {
			return err
		}
		row := Table6Row{
			Name:        b.Name,
			Cycles620:   base620.Cycles,
			PlusSpeedup: float64(base620.Cycles) / float64(basePlus.Cycles),
		}
		for i := range PPCConfigs {
			st, err := s.Sim620(b.Name, true, &PPCConfigs[i])
			if err != nil {
				return err
			}
			row.LVP[i] = float64(basePlus.Cycles) / float64(st.Cycles)
		}
		res.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	var plus []float64
	for _, r := range res.Rows {
		plus = append(plus, r.PlusSpeedup)
	}
	res.GMPlus = stats.GeoMean(plus)
	for i := range PPCConfigs {
		var xs []float64
		for _, r := range res.Rows {
			xs = append(xs, r.LVP[i])
		}
		res.GMLVP[i] = stats.GeoMean(xs)
	}
	return res, nil
}

// Render writes the table.
func (r *Table6Result) Render(w io.Writer) {
	t := report.Table{
		Title: "Table 6: PowerPC 620+ Speedups (620+ over 620; LVP columns relative to 620+ without LVP)",
		Columns: []string{"Benchmark", "620 cycles", "620+",
			"Simple", "Constant", "Limit", "Perfect"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, row.Cycles620, stats.Ratio(row.PlusSpeedup),
			stats.Ratio(row.LVP[0]), stats.Ratio(row.LVP[1]),
			stats.Ratio(row.LVP[2]), stats.Ratio(row.LVP[3]))
	}
	t.AddRow("GM", "", stats.Ratio(r.GMPlus),
		stats.Ratio(r.GMLVP[0]), stats.Ratio(r.GMLVP[1]),
		stats.Ratio(r.GMLVP[2]), stats.Ratio(r.GMLVP[3]))
	t.Render(w)
}

// Fig7Result holds the load-verification latency distribution (paper
// Figure 7): per machine (620, 620+) and per LVP config, the percentage of
// correctly-predicted loads verified in each latency bucket, summed over the
// whole suite.
type Fig7Result struct {
	// Pct[machine][config][bucket]; machine 0 = 620, 1 = 620+.
	Pct [2][4][6]float64
}

// Figure7 reproduces paper Figure 7.
func (s *Suite) Figure7() (*Fig7Result, error) {
	res := &Fig7Result{}
	// Integer accumulation is commutative, so the merge stays
	// deterministic under any completion order; the mutex only guards the
	// concurrent read-modify-writes.
	var mu sync.Mutex
	var totals [2][4][6]int
	err := s.forEachBench(func(b bench.Benchmark) error {
		for mi, plus := range []bool{false, true} {
			for ci := range PPCConfigs {
				st, err := s.Sim620(b.Name, plus, &PPCConfigs[ci])
				if err != nil {
					return err
				}
				mu.Lock()
				for bu, v := range st.VerifyLatency {
					totals[mi][ci][bu] += v
				}
				mu.Unlock()
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for mi := range totals {
		for ci := range totals[mi] {
			sum := 0
			for _, v := range totals[mi][ci] {
				sum += v
			}
			if sum == 0 {
				continue
			}
			for bu, v := range totals[mi][ci] {
				res.Pct[mi][ci][bu] = 100 * float64(v) / float64(sum)
			}
		}
	}
	return res, nil
}

// Render writes one table per machine.
func (r *Fig7Result) Render(w io.Writer) {
	names := []string{"PPC 620", "PPC 620+"}
	for mi, name := range names {
		t := report.Table{
			Title:   "Figure 7 (" + name + "): Load Verification Latency Distribution (% of correctly-predicted loads)",
			Columns: append([]string{"Config"}, ppc620.VerifyBuckets...),
		}
		for ci, cfg := range PPCConfigs {
			row := []any{cfg.Name}
			for _, v := range r.Pct[mi][ci] {
				row = append(row, stats.Pct(v/100, 1))
			}
			t.AddRow(row...)
		}
		t.Render(w)
	}
}

// Fig8Result holds the average reservation-station dependency-resolution
// wait by FU type, normalised to the no-LVP baseline (paper Figure 8).
type Fig8Result struct {
	// Norm[machine][config][fu] in percent of baseline; machine 0 =
	// 620, 1 = 620+.
	Norm [2][4][ppc620.NumFU]float64
}

// Figure8 reproduces paper Figure 8.
func (s *Suite) Figure8() (*Fig8Result, error) {
	res := &Fig8Result{}
	// Commutative integer sums; see Figure7 for the determinism argument.
	var mu sync.Mutex
	var waitSum [2][5][ppc620.NumFU]int64 // config index 4 = baseline
	var waitN [2][5][ppc620.NumFU]int64
	err := s.forEachBench(func(b bench.Benchmark) error {
		for mi, plus := range []bool{false, true} {
			for ci := 0; ci <= len(PPCConfigs); ci++ {
				var cfg *lvp.Config
				if ci < len(PPCConfigs) {
					cfg = &PPCConfigs[ci]
				}
				st, err := s.Sim620(b.Name, plus, cfg)
				if err != nil {
					return err
				}
				mu.Lock()
				for fu := 0; fu < int(ppc620.NumFU); fu++ {
					waitSum[mi][ci][fu] += st.RSWaitSum[fu]
					waitN[mi][ci][fu] += st.RSWaitN[fu]
				}
				mu.Unlock()
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	avg := func(mi, ci, fu int) float64 {
		if waitN[mi][ci][fu] == 0 {
			return 0
		}
		return float64(waitSum[mi][ci][fu]) / float64(waitN[mi][ci][fu])
	}
	for mi := range res.Norm {
		for ci := range PPCConfigs {
			for fu := 0; fu < int(ppc620.NumFU); fu++ {
				base := avg(mi, len(PPCConfigs), fu)
				if base > 0 {
					res.Norm[mi][ci][fu] = 100 * avg(mi, ci, fu) / base
				}
			}
		}
	}
	return res, nil
}

// Render writes one table per machine.
func (r *Fig8Result) Render(w io.Writer) {
	names := []string{"PPC 620", "PPC 620+"}
	fus := []ppc620.FU{ppc620.BRU, ppc620.FPU, ppc620.MCFX, ppc620.SCFX, ppc620.LSU}
	for mi, name := range names {
		t := report.Table{
			Title:   "Figure 8 (" + name + "): Avg. RS dependency-wait, % of no-LVP baseline",
			Columns: []string{"Config", "BRU", "FPU", "MCFX", "SCFX", "LSU"},
		}
		for ci, cfg := range PPCConfigs {
			row := []any{cfg.Name}
			for _, fu := range fus {
				row = append(row, stats.Pct(r.Norm[mi][ci][fu]/100, 1))
			}
			t.AddRow(row...)
		}
		t.Render(w)
	}
}

// Fig9Row holds bank-conflict rates for one benchmark (paper Figure 9): the
// percentage of cycles with at least one L1 bank conflict, for no-LVP,
// Simple and Constant on the 620 and 620+.
type Fig9Row struct {
	Name string
	// Rate[machine][cfg]: cfg 0 = none, 1 = Simple, 2 = Constant.
	Rate [2][3]float64
}

// Fig9Result is the Figure 9 dataset.
type Fig9Result struct {
	Rows []Fig9Row
	// Mean[machine][cfg] is the arithmetic mean across benchmarks.
	Mean [2][3]float64
}

// Figure9 reproduces paper Figure 9.
func (s *Suite) Figure9() (*Fig9Result, error) {
	res := &Fig9Result{Rows: make([]Fig9Row, len(bench.All()))}
	cfgs := []*lvp.Config{nil, &lvp.Simple, &lvp.Constant}
	err := s.forEachBenchIdx(func(i int, b bench.Benchmark) error {
		row := Fig9Row{Name: b.Name}
		for mi, plus := range []bool{false, true} {
			for ci, cfg := range cfgs {
				st, err := s.Sim620(b.Name, plus, cfg)
				if err != nil {
					return err
				}
				row.Rate[mi][ci] = 100 * st.BankConflictRate()
			}
		}
		res.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for mi := 0; mi < 2; mi++ {
		for ci := 0; ci < 3; ci++ {
			var xs []float64
			for _, r := range res.Rows {
				xs = append(xs, r.Rate[mi][ci])
			}
			res.Mean[mi][ci] = stats.Mean(xs)
		}
	}
	return res, nil
}

// Render writes the chart per machine.
func (r *Fig9Result) Render(w io.Writer) {
	names := []string{"PPC 620", "PPC 620+"}
	for mi, name := range names {
		c := report.BarChart{
			Title:  "Figure 9 (" + name + "): % of cycles with L1 bank conflicts",
			Series: []string{"NoLVP", "Simple", "Constant"},
			Unit:   "%",
		}
		for _, row := range r.Rows {
			c.Groups = append(c.Groups, report.BarGroup{Label: row.Name, Values: row.Rate[mi][:]})
		}
		c.Groups = append(c.Groups, report.BarGroup{Label: "Mean", Values: r.Mean[mi][:]})
		c.Render(w)
	}
}
