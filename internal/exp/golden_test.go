package exp

import (
	"bytes"
	"testing"
)

// goldenExperiments returns the experiments the golden gate renders. In a
// normal build that is every registered experiment. Under the race
// detector (raceEnabled, set by build tag) the full double-render exceeds
// Go's default 10-minute package timeout on small machines, so the gate
// narrows to a subset chosen to still exercise every merge pattern:
// index-addressed row slots (table1, fig1, table3), slot-array reductions
// through GeoMean (lvptsweep), and the mutex-guarded integer accumulators
// (fig7, fig8) plus the simulation cache they share (table6).
func goldenExperiments() []Experiment {
	if !raceEnabled {
		return experiments
	}
	want := map[string]bool{
		"table1": true, "fig1": true, "table3": true,
		"lvptsweep": true, "table6": true, "fig7": true, "fig8": true,
	}
	var out []Experiment
	for _, e := range experiments {
		if want[e.Name] {
			out = append(out, e)
		}
	}
	return out
}

// renderAll runs the golden experiment set on a fresh suite with the given
// worker count and returns one rendered buffer per experiment.
func renderAll(t *testing.T, workers int) map[string][]byte {
	t.Helper()
	s := NewSuiteParallel(1, workers)
	out := make(map[string][]byte, len(experiments))
	for _, e := range goldenExperiments() {
		var buf bytes.Buffer
		if err := e.Run(s, &buf); err != nil {
			t.Fatalf("workers=%d: %s: %v", workers, e.Name, err)
		}
		out[e.Name] = buf.Bytes()
	}
	return out
}

// TestGoldenSerialVsParallel is the correctness gate for the parallel
// experiment engine: every table and figure rendered by a serial suite must
// be byte-identical to the same experiment rendered by a suite running 8
// workers. Any ordering sensitivity in the fan-out, the single-flight
// caches, or the merge layer shows up here as a diff.
func TestGoldenSerialVsParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("renders the full experiment suite twice; skipped in -short")
	}
	serial := renderAll(t, 1)
	par := renderAll(t, 8)

	if len(serial) != len(par) {
		t.Fatalf("experiment count differs: %d vs %d", len(serial), len(par))
	}
	for _, e := range goldenExperiments() {
		a, b := serial[e.Name], par[e.Name]
		if len(a) == 0 {
			t.Errorf("%s: empty render", e.Name)
			continue
		}
		if !bytes.Equal(a, b) {
			i := 0
			for i < len(a) && i < len(b) && a[i] == b[i] {
				i++
			}
			lo, hi := max(0, i-80), i
			t.Errorf("%s: serial and parallel output differ at byte %d\nserial  : ...%q\nparallel: ...%q",
				e.Name, i, a[lo:min(len(a), hi+80)], b[lo:min(len(b), hi+80)])
		}
	}
}

// TestGoldenRepeatedRuns pins run-to-run determinism at the default worker
// count: two independent suites must render a representative experiment
// identically (the cheap companion to the serial-vs-parallel gate above, so
// -short runs still cover the determinism contract).
func TestGoldenRepeatedRuns(t *testing.T) {
	render := func() []byte {
		s := NewSuite(1)
		var buf bytes.Buffer
		for _, name := range []string{"table1", "fig1", "table3"} {
			for _, e := range experiments {
				if e.Name == name {
					if err := e.Run(s, &buf); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Fatal("repeated runs differ")
	}
}
