package exp

import (
	"fmt"
	"io"

	"lvp/internal/bench"
	"lvp/internal/locality"
	"lvp/internal/lvp"
	"lvp/internal/prog"
	"lvp/internal/report"
	"lvp/internal/stats"
)

// The ablation studies below are not paper figures; they exercise the
// design-space directions the paper's §7 calls out (table sizing,
// classification, and predictors beyond last-value).

// LVPTSweepResult holds prediction coverage (fraction of loads predicted
// correctly, Simple-style unit) as the LVPT size grows.
type LVPTSweepResult struct {
	Sizes []int
	// Coverage[i] is the suite geometric-mean coverage at Sizes[i].
	Coverage []float64
}

// LVPTSweep measures untagged-table interference: coverage vs LVPT entries
// on the PPC target.
func (s *Suite) LVPTSweep(sizes []int) (*LVPTSweepResult, error) {
	if len(sizes) == 0 {
		sizes = []int{256, 512, 1024, 2048, 4096, 8192}
	}
	res := &LVPTSweepResult{Sizes: sizes, Coverage: make([]float64, len(sizes))}
	for i, size := range sizes {
		cfg := lvp.Simple
		cfg.Name = fmt.Sprintf("Simple/%d", size)
		cfg.LVPTEntries = size
		// Per-benchmark slots keep the GeoMean reduction order (and thus
		// its floating-point rounding) independent of completion order.
		covs := make([]float64, len(bench.All()))
		err := s.forEachBenchIdx(func(bi int, b bench.Benchmark) error {
			st, err := s.AnnotationStats(b.Name, prog.PPC, cfg)
			if err != nil {
				return err
			}
			covs[bi] = st.Coverage()
			return nil
		})
		if err != nil {
			return nil, err
		}
		res.Coverage[i] = stats.GeoMean(covs)
	}
	return res, nil
}

// Render writes the sweep.
func (r *LVPTSweepResult) Render(w io.Writer) {
	t := report.Table{
		Title:   "Ablation: LVPT size vs prediction coverage (GM over suite, PPC, Simple LCT/CVU)",
		Columns: []string{"LVPT entries", "Coverage"},
	}
	for i, sz := range r.Sizes {
		t.AddRow(sz, stats.Pct(r.Coverage[i], 1))
	}
	t.Render(w)
}

// LCTBitsResult compares classifier widths.
type LCTBitsResult struct {
	Bits     []int
	Accuracy []float64 // GM prediction accuracy when predicting
	Coverage []float64 // GM fraction of loads predicted correctly
}

// LCTBitsSweep measures classification quality vs counter width.
func (s *Suite) LCTBitsSweep(bits []int) (*LCTBitsResult, error) {
	if len(bits) == 0 {
		bits = []int{1, 2, 3}
	}
	res := &LCTBitsResult{Bits: bits,
		Accuracy: make([]float64, len(bits)), Coverage: make([]float64, len(bits))}
	for i, b := range bits {
		cfg := lvp.Simple
		cfg.Name = fmt.Sprintf("Simple/lct%d", b)
		cfg.LCTBits = b
		n := len(bench.All())
		accs, covs := make([]float64, n), make([]float64, n)
		err := s.forEachBenchIdx(func(bi int, bm bench.Benchmark) error {
			st, err := s.AnnotationStats(bm.Name, prog.PPC, cfg)
			if err != nil {
				return err
			}
			accs[bi] = st.Accuracy()
			covs[bi] = st.Coverage()
			return nil
		})
		if err != nil {
			return nil, err
		}
		res.Accuracy[i] = stats.GeoMean(accs)
		res.Coverage[i] = stats.GeoMean(covs)
	}
	return res, nil
}

// Render writes the sweep.
func (r *LCTBitsResult) Render(w io.Writer) {
	t := report.Table{
		Title:   "Ablation: LCT counter width (GM over suite, PPC)",
		Columns: []string{"Bits", "Accuracy", "Coverage"},
	}
	for i, b := range r.Bits {
		t.AddRow(b, stats.Pct(r.Accuracy[i], 1), stats.Pct(r.Coverage[i], 1))
	}
	t.Render(w)
}

// CVUSweepResult holds constant coverage vs CVU capacity.
type CVUSweepResult struct {
	Sizes     []int
	ConstRate []float64
}

// CVUSweep measures the CVU-capacity sensitivity of constant verification.
func (s *Suite) CVUSweep(sizes []int) (*CVUSweepResult, error) {
	if len(sizes) == 0 {
		sizes = []int{8, 16, 32, 64, 128, 256}
	}
	res := &CVUSweepResult{Sizes: sizes, ConstRate: make([]float64, len(sizes))}
	for i, size := range sizes {
		cfg := lvp.Constant
		cfg.Name = fmt.Sprintf("Constant/cvu%d", size)
		cfg.CVUEntries = size
		rates := make([]float64, len(bench.All()))
		err := s.forEachBenchIdx(func(bi int, b bench.Benchmark) error {
			st, err := s.AnnotationStats(b.Name, prog.PPC, cfg)
			if err != nil {
				return err
			}
			rates[bi] = st.ConstantRate()
			return nil
		})
		if err != nil {
			return nil, err
		}
		res.ConstRate[i] = stats.Mean(rates)
	}
	return res, nil
}

// Render writes the sweep.
func (r *CVUSweepResult) Render(w io.Writer) {
	t := report.Table{
		Title:   "Ablation: CVU capacity vs constant-identification rate (mean over suite, PPC)",
		Columns: []string{"CVU entries", "Constant rate"},
	}
	for i, sz := range r.Sizes {
		t.AddRow(sz, stats.Pct(r.ConstRate[i], 1))
	}
	t.Render(w)
}

// PredictorRow compares predictor accuracies for one benchmark (paper §7:
// stride detection, context prediction and multi-value tables as future
// work).
type PredictorRow struct {
	Name      string
	LastValue float64
	TwoValue  float64 // buildable depth-2 with a trained selector
	Stride    float64
	Context   float64
	Locality1 float64 // depth-1 value locality (upper bound for last-value)
}

// PredictorResult is the predictor-comparison dataset.
type PredictorResult struct {
	Rows []PredictorRow
	GM   [5]float64
}

// PredictorStudy measures last-value vs stride vs order-2 context
// prediction accuracy over the suite (PPC target, 1K-entry tables).
func (s *Suite) PredictorStudy() (*PredictorResult, error) {
	res := &PredictorResult{Rows: make([]PredictorRow, len(bench.All()))}
	err := s.forEachBenchIdx(func(i int, b bench.Benchmark) error {
		t, err := s.Trace(b.Name, prog.PPC)
		if err != nil {
			return err
		}
		lv := lvp.MeasureAccuracy(t, lvp.NewLastValue(1024))
		tv := lvp.MeasureAccuracy(t, lvp.NewTwoValue(1024))
		st := lvp.MeasureAccuracy(t, lvp.NewStride(1024))
		cx := lvp.MeasureAccuracy(t, lvp.NewContext(1024, 4096))
		loc := locality.Measure(t, 1024, 1)
		res.Rows[i] = PredictorRow{
			Name:      b.Name,
			LastValue: lv.Percent(),
			TwoValue:  tv.Percent(),
			Stride:    st.Percent(),
			Context:   cx.Percent(),
			Locality1: loc[0].Overall.Percent(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var a, tv, bb, c, d []float64
	for _, r := range res.Rows {
		a = append(a, r.LastValue)
		tv = append(tv, r.TwoValue)
		bb = append(bb, r.Stride)
		c = append(c, r.Context)
		d = append(d, r.Locality1)
	}
	// Arithmetic means: tomcatv's legitimate 0% would zero a GM.
	res.GM = [5]float64{stats.Mean(a), stats.Mean(tv), stats.Mean(bb),
		stats.Mean(c), stats.Mean(d)}
	return res, nil
}

// Render writes the comparison.
func (r *PredictorResult) Render(w io.Writer) {
	t := report.Table{
		Title:   "Extension study (paper §7): predictor accuracy (% of loads predicted exactly, PPC)",
		Columns: []string{"Benchmark", "Last-value", "Two-value", "Stride", "Context-2", "d1 locality"},
	}
	f := func(v float64) string { return fmt.Sprintf("%.1f%%", v) }
	for _, row := range r.Rows {
		t.AddRow(row.Name, f(row.LastValue), f(row.TwoValue), f(row.Stride),
			f(row.Context), f(row.Locality1))
	}
	t.AddRow("Mean", f(r.GM[0]), f(r.GM[1]), f(r.GM[2]), f(r.GM[3]), f(r.GM[4]))
	t.Render(w)
}
