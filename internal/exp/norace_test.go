//go:build !race

package exp

// raceEnabled narrows the golden gate's experiment set under the race
// detector; see goldenExperiments in golden_test.go.
const raceEnabled = false
