package exp

import "io"

// Experiment is one runnable table or figure of the evaluation: a name (the
// -exp argument of cmd/lvpsim), a one-line description, and a driver that
// runs it on a Suite and renders the result.
type Experiment struct {
	Name string
	Desc string
	// Paper reports whether the experiment reproduces a paper exhibit
	// (as opposed to an ablation/extension only run under -exp all).
	Paper bool
	Run   func(s *Suite, w io.Writer) error
}

// render adapts the common driver shape (build a result, render it).
func render[T interface{ Render(io.Writer) }](build func(s *Suite) (T, error)) func(*Suite, io.Writer) error {
	return func(s *Suite, w io.Writer) error {
		r, err := build(s)
		if err != nil {
			return err
		}
		r.Render(w)
		return nil
	}
}

// experiments lists every experiment in rendering order. The golden
// determinism test iterates this same list, so a driver added here is
// automatically covered by the serial-vs-parallel byte-identity gate.
var experiments = []Experiment{
	{"table1", "benchmark descriptions and dynamic counts", true,
		render(func(s *Suite) (*Table1Result, error) { return s.Table1() })},
	{"fig1", "load value locality, depth 1 and 16, both targets", true,
		render(func(s *Suite) (*Fig1Result, error) { return s.Figure1() })},
	{"fig2", "PowerPC value locality by data type", true,
		render(func(s *Suite) (*Fig2Result, error) { return s.Figure2() })},
	{"table2", "LVP unit configurations", true,
		func(s *Suite, w io.Writer) error { Table2(w); return nil }},
	{"table3", "LCT hit rates", true,
		render(func(s *Suite) (*Table3Result, error) { return s.Table3() })},
	{"table4", "constant identification rates", true,
		render(func(s *Suite) (*Table4Result, error) { return s.Table4() })},
	{"table5", "instruction latencies", true,
		func(s *Suite, w io.Writer) error { Table5(w); return nil }},
	{"fig6", "base machine model speedups", true,
		render(func(s *Suite) (*Fig6Result, error) { return s.Figure6() })},
	{"table6", "PowerPC 620+ speedups", true,
		render(func(s *Suite) (*Table6Result, error) { return s.Table6() })},
	{"fig7", "load verification latency distribution", true,
		render(func(s *Suite) (*Fig7Result, error) { return s.Figure7() })},
	{"fig8", "dependency resolution latencies by FU", true,
		render(func(s *Suite) (*Fig8Result, error) { return s.Figure8() })},
	{"fig9", "L1 bank conflict rates", true,
		render(func(s *Suite) (*Fig9Result, error) { return s.Figure9() })},
	{"lvptsweep", "ablation: LVPT size vs coverage", false,
		render(func(s *Suite) (*LVPTSweepResult, error) { return s.LVPTSweep(nil) })},
	{"lctsweep", "ablation: LCT counter width", false,
		render(func(s *Suite) (*LCTBitsResult, error) { return s.LCTBitsSweep(nil) })},
	{"cvusweep", "ablation: CVU capacity", false,
		render(func(s *Suite) (*CVUSweepResult, error) { return s.CVUSweep(nil) })},
	{"predictors", "extension: stride/context predictors (paper §7)", false,
		render(func(s *Suite) (*PredictorResult, error) { return s.PredictorStudy() })},
	{"zoosweep", "ablation: predictor-family zoo × workload sweep", false,
		render(func(s *Suite) (*ZooResult, error) { return s.ZooSweep(nil) })},
	{"gvl", "extension: general value locality, all results (paper §7)", false,
		render(func(s *Suite) (*GVLResult, error) { return s.GeneralValueLocality() })},
	{"pathlvp", "extension: branch-history-indexed LVPT (paper §7)", false,
		render(func(s *Suite) (*PathResult, error) { return s.PathLVPStudy(nil) })},
	{"mafablation", "ablation: 21164 blocking vs non-blocking misses", false,
		render(func(s *Suite) (*MAFResult, error) { return s.MAFAblation() })},
	{"limits", "limit study: dataflow critical-path speedups", false,
		render(func(s *Suite) (*LimitResult, error) { return s.DataflowLimits() })},
	{"machines", "diagnostics: baseline machine behaviour", false,
		render(func(s *Suite) (*MachinesResult, error) { return s.Machines() })},
	{"resourcesweep", "ablation: which 620 resource binds", false,
		render(func(s *Suite) (*ResourceResult, error) { return s.ResourceSweep() })},
	{"gvp", "extension: general value prediction on the 620 (paper §7)", false,
		render(func(s *Suite) (*GVPResult, error) { return s.GVPStudy() })},
	{"stalls", "diagnostics: 620 dispatch-stall breakdown", false,
		render(func(s *Suite) (*StallResult, error) { return s.Stalls() })},
}

// Experiments returns every experiment in rendering order.
func Experiments() []Experiment {
	out := make([]Experiment, len(experiments))
	copy(out, experiments)
	return out
}
