package exp

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"lvp/internal/lvp"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files from current output")

// TestZooSweepGoldenFile pins the full family × workload ablation table to
// a checked-in golden file: per-family coverage and accuracy per benchmark,
// and the interference totals. Any change to a predictor, a table
// organisation, or the sweep's reduction order shows up as a diff here.
// Regenerate deliberately with: go test ./internal/exp -run ZooSweepGolden -update
func TestZooSweepGoldenFile(t *testing.T) {
	s := NewSuiteParallel(1, 1)
	res, err := s.ZooSweep(nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Render(&buf)

	golden := filepath.Join("testdata", "zoosweep.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("zoosweep output diverged from %s (regenerate with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.Bytes(), want)
	}
}

// TestZooSweepSerialVsParallel is the zoo's own determinism gate, run even
// under the race detector (where the full registry golden test narrows to
// other experiments): the rendered sweep must be byte-identical for every
// worker count, and concurrent cell builds must coalesce rather than race.
func TestZooSweepSerialVsParallel(t *testing.T) {
	render := func(workers int) []byte {
		s := NewSuiteParallel(1, workers)
		res, err := s.ZooSweep(nil)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		res.Render(&buf)
		return buf.Bytes()
	}
	serial := render(1)
	for _, workers := range []int{4, 8} {
		if par := render(workers); !bytes.Equal(serial, par) {
			t.Fatalf("zoosweep output differs between 1 and %d workers\n--- serial ---\n%s\n--- parallel ---\n%s",
				workers, serial, par)
		}
	}
}

// TestZooCellCoalesces pins the single-flight property: many goroutines
// requesting the same cell observe one result, and repeated sweeps reuse
// cached cells (the lvpd serving path and the sweep share builds).
func TestZooCellCoalesces(t *testing.T) {
	s := NewSuiteParallel(1, 4)
	const callers = 8
	results := make([]ZooCell, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := s.ZooCell("quick", "two-level")
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = c
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d saw %+v, caller 0 saw %+v", i, results[i], results[0])
		}
	}
	if results[0].Family != "two-level" || results[0].Bench != "quick" || results[0].Loads == 0 {
		t.Fatalf("implausible cell %+v", results[0])
	}
}

// TestZooFamilySelection pins the selection precedence (argument over
// suite field over full registry) and name validation.
func TestZooFamilySelection(t *testing.T) {
	s := NewSuiteParallel(1, 4)

	if _, err := s.ZooSweep([]string{"nope"}); err == nil {
		t.Fatal("unknown family in argument did not error")
	}
	if _, err := s.ZooCell("quick", "nope"); err == nil {
		t.Fatal("unknown family in cell did not error")
	}

	s.ZooFamilies = []string{"stride"}
	res, err := s.ZooSweep(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Families) != 1 || res.Families[0] != "stride" {
		t.Fatalf("suite selection gave families %v, want [stride]", res.Families)
	}
	res, err = s.ZooSweep([]string{"last-value", "two-level"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Families) != 2 || res.Families[0] != "last-value" || res.Families[1] != "two-level" {
		t.Fatalf("explicit selection gave families %v", res.Families)
	}

	s.ZooFamilies = nil
	res, err = s.ZooSweep(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Families), len(lvp.FamilyNames()); got != want {
		t.Fatalf("default selection has %d families, registry %d", got, want)
	}
}
