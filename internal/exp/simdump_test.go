package exp

import (
	"encoding/json"
	"os"
	"testing"

	"lvp/internal/bench"
	"lvp/internal/lvp"
	"lvp/internal/prog"
)

// TestDumpSimStats writes every machine-model and annotation statistic the
// suite produces to the file named by SIM_STATS_OUT, as canonical JSON. It is
// a refactoring harness, skipped in normal runs: capture the dump before a
// machine-model or LVP-unit change, re-run after, and diff — the two files
// must be byte-identical, because optimization work on the simulators must
// never change a single simulated decision.
func TestDumpSimStats(t *testing.T) {
	out := os.Getenv("SIM_STATS_OUT")
	if out == "" {
		t.Skip("set SIM_STATS_OUT=<path> to dump simulation statistics")
	}
	s := NewSuiteParallel(1, 0)
	type row struct {
		Key string
		Val any
	}
	var rows []row
	add := func(key string, v any, err error) {
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		rows = append(rows, row{key, v})
	}
	cfgs := []*lvp.Config{nil, &lvp.Simple, &lvp.Limit, &lvp.Perfect}
	for _, b := range bench.All() {
		for _, cfg := range cfgs {
			name := "none"
			if cfg != nil {
				name = cfg.Name
			}
			st620, err := s.Sim620(b.Name, false, cfg)
			add("620/"+b.Name+"/"+name, st620, err)
			st164, err := s.Sim21164(b.Name, cfg)
			add("21164/"+b.Name+"/"+name, st164, err)
		}
		stp, err := s.Sim620(b.Name, true, &lvp.Simple)
		add("620+/"+b.Name+"/Simple", stp, err)
		for _, cfg := range []lvp.Config{lvp.Simple, lvp.Constant, lvp.Limit, lvp.SimpleTagged, lvp.SimpleAssoc4} {
			for _, tgt := range []prog.Target{prog.PPC, prog.AXP} {
				ast, err := s.AnnotationStats(b.Name, tgt, cfg)
				add("ann/"+b.Name+"/"+tgt.Name+"/"+cfg.Name, ast, err)
			}
		}
	}
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(rows); err != nil {
		t.Fatal(err)
	}
}
