package exp

import (
	"fmt"

	"lvp/internal/axp21164"
	"lvp/internal/lvp"
	"lvp/internal/par"
	"lvp/internal/ppc620"
)

// This file aggregates pipeline statistics into the suite's metrics
// registry. Hot structures (LVPT, LCT, CVU, machine models) count events in
// plain per-run fields; the suite flushes those totals here with one batch
// of atomic adds per completed cell, so per-instruction paths never touch an
// atomic.

// SuiteCacheStats exposes the traffic counters of the suite's four
// single-flight caches. Each cache's Builds() (gets minus hits) equals its
// Entries when single-flight coalescing works — the property the engine's
// determinism rests on, and what tests assert directly instead of inferring
// from timings.
type SuiteCacheStats struct {
	Traces      par.CacheStats
	Annotations par.CacheStats
	Sims620     par.CacheStats
	Sims21164   par.CacheStats
}

// CacheStats snapshots the suite's cache traffic.
func (s *Suite) CacheStats() SuiteCacheStats {
	c := s.cacheState()
	return SuiteCacheStats{
		Traces:      c.traces.Stats(),
		Annotations: c.anns.Stats(),
		Sims620:     c.s620.Stats(),
		Sims21164:   c.s164.Stats(),
	}
}

// recordAnnStats flushes one annotation run's LVP Unit counters into the
// registry.
func (s *Suite) recordAnnStats(st lvp.Stats) {
	r := s.Metrics
	if r == nil {
		return
	}
	r.Counter("lvp.loads").Add(int64(st.Loads))
	r.Counter("lvpt.lookups").Add(st.LVPT.Lookups)
	r.Counter("lvpt.hits").Add(st.LVPT.Hits)
	r.Counter("lvpt.updates").Add(st.LVPT.Updates)
	r.Counter("lvpt.replacements").Add(st.LVPT.Replacements)
	r.Counter("lvpt.tag_miss").Add(st.LVPT.TagMisses)
	r.Counter("lvpt.alias_evict").Add(st.LVPT.AliasEvicts)
	r.Counter("lct.lookups").Add(st.LCT.Lookups)
	r.Counter("lct.updates").Add(st.LCT.Updates)
	for from := 0; from < lvp.NumClasses; from++ {
		for to := 0; to < lvp.NumClasses; to++ {
			if n := st.LCT.Transitions[from][to]; n > 0 {
				name := fmt.Sprintf("lct.trans.%s>%s",
					lvp.Classification(from), lvp.Classification(to))
				r.Counter(name).Add(n)
			}
		}
	}
	r.Counter("cvu.lookups").Add(st.CVU.Lookups)
	r.Counter("cvu.hits").Add(st.CVU.Hits)
	r.Counter("cvu.misses").Add(st.CVU.Misses)
	r.Counter("cvu.inserts").Add(st.CVU.Inserts)
	r.Counter("cvu.refreshes").Add(st.CVU.Refreshes)
	r.Counter("cvu.evictions").Add(st.CVU.Evictions)
	r.Counter("cvu.addr_invalidated").Add(st.CVU.AddrInvalidated)
	r.Counter("cvu.index_invalidated").Add(st.CVU.IndexInvalidated)
}

// recordZooStats flushes one predictor-zoo cell's counters into the
// registry. The interference totals share the lvpt.tag_miss /
// lvpt.alias_evict counters with the unit path, so a snapshot reports table
// interference in one place regardless of which layer observed it.
func (s *Suite) recordZooStats(m lvp.ZooMeasure) {
	r := s.Metrics
	if r == nil {
		return
	}
	r.Counter("zoo.loads").Add(m.Loads)
	r.Counter("zoo.attempts").Add(m.Attempts)
	r.Counter("zoo.hits").Add(m.Hits)
	r.Counter("lvpt.tag_miss").Add(m.TagMisses)
	r.Counter("lvpt.alias_evict").Add(m.AliasEvicts)
}

// record620Stats flushes one 620/620+ simulation's counters into the
// registry.
func (s *Suite) record620Stats(st ppc620.Stats) {
	r := s.Metrics
	if r == nil {
		return
	}
	r.Counter("sim620.runs").Inc()
	r.Counter("sim620.cycles").Add(int64(st.Cycles))
	r.Counter("sim620.instructions").Add(int64(st.Instructions))
	r.Counter("sim620.cache_accesses").Add(int64(st.CacheAccesses))
	r.Counter("sim620.bank_conflicts").Add(int64(st.BankConflicts))
	r.Counter("sim620.alias_refetches").Add(int64(st.AliasRefetches))
	r.Counter("sim620.mshr_stalls").Add(int64(st.MSHRStalls))
	r.Counter("sim620.stall.completion").Add(int64(st.StallCompletion))
	r.Counter("sim620.stall.rename").Add(int64(st.StallRename))
	r.Counter("sim620.stall.mem_slots").Add(int64(st.StallMemSlots))
	r.Counter("sim620.stall.fetch_empty").Add(int64(st.StallFetchEmpty))
	var rs int64
	for _, n := range st.StallRS {
		rs += int64(n)
	}
	r.Counter("sim620.stall.rs").Add(rs)
	r.Counter("sim620.l1.accesses").Add(int64(st.L1.Accesses))
	r.Counter("sim620.l1.misses").Add(int64(st.L1.Misses))
	r.Counter("sim620.l1.evictions").Add(int64(st.L1.Evictions))
	r.Counter("sim620.l2.accesses").Add(int64(st.L2.Accesses))
	r.Counter("sim620.l2.misses").Add(int64(st.L2.Misses))
}

// record164Stats flushes one 21164 simulation's counters into the registry.
func (s *Suite) record164Stats(st axp21164.Stats) {
	r := s.Metrics
	if r == nil {
		return
	}
	r.Counter("sim21164.runs").Inc()
	r.Counter("sim21164.cycles").Add(int64(st.Cycles))
	r.Counter("sim21164.instructions").Add(int64(st.Instructions))
	r.Counter("sim21164.squashes").Add(int64(st.Squashes))
	r.Counter("sim21164.predictions_cancelled").Add(int64(st.PredictionsCancelled))
	r.Counter("sim21164.miss_stall_cycles").Add(int64(st.MissStallCycles))
	r.Counter("sim21164.l1.accesses").Add(int64(st.L1.Accesses))
	r.Counter("sim21164.l1.misses").Add(int64(st.L1.Misses))
	r.Counter("sim21164.l2.accesses").Add(int64(st.L2.Accesses))
	r.Counter("sim21164.l2.misses").Add(int64(st.L2.Misses))
}

// FinalizeMetrics copies the current cache-traffic counters into registry
// gauges (cache.<name>.{gets,hits,entries}), so a metrics snapshot carries
// the par.Cache hit rates alongside the phase timers and unit counters.
// Safe to call repeatedly; each call overwrites the gauges.
func (s *Suite) FinalizeMetrics() {
	r := s.Metrics
	if r == nil {
		return
	}
	set := func(name string, cs par.CacheStats) {
		r.Gauge("cache." + name + ".gets").Set(cs.Gets)
		r.Gauge("cache." + name + ".hits").Set(cs.Hits)
		r.Gauge("cache." + name + ".entries").Set(int64(cs.Entries))
	}
	cs := s.CacheStats()
	set("traces", cs.Traces)
	set("annotations", cs.Annotations)
	set("sims620", cs.Sims620)
	set("sims21164", cs.Sims21164)
}
