package exp

import (
	"context"
	"errors"
	"testing"

	"lvp/internal/lvp"
	"lvp/internal/prog"
)

// TestSuiteWithContextCancelled checks a dead context stops the suite
// before any cell is built, and that the cancellation is not memoized: the
// base view (Background context) recomputes the same cells successfully.
func TestSuiteWithContextCancelled(t *testing.T) {
	s := NewSuiteParallel(1, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	view := s.WithContext(ctx)
	if _, err := view.Trace("quick", prog.AXP); !errors.Is(err, context.Canceled) {
		t.Fatalf("Trace err = %v, want context.Canceled", err)
	}
	if _, err := view.Table1(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Table1 err = %v, want context.Canceled", err)
	}

	// The cancelled builds must not poison the shared caches.
	if _, err := s.Trace("quick", prog.AXP); err != nil {
		t.Fatalf("base view Trace after cancellation: %v", err)
	}
	cfg := lvp.Simple
	if _, err := s.Sim21164("quick", &cfg); err != nil {
		t.Fatalf("base view Sim21164 after cancellation: %v", err)
	}
}

// TestSuiteWithContextSharesCaches pins that WithContext views share one
// memo table: a cell built through a view is a cache hit on the base suite.
func TestSuiteWithContextSharesCaches(t *testing.T) {
	s := NewSuiteParallel(1, 2)
	view := s.WithContext(context.Background())
	if _, err := view.Trace("quick", prog.PPC); err != nil {
		t.Fatal(err)
	}
	before := s.CacheStats().Traces.Builds()
	if _, err := s.Trace("quick", prog.PPC); err != nil {
		t.Fatal(err)
	}
	if after := s.CacheStats().Traces.Builds(); after != before {
		t.Fatalf("base view rebuilt a trace the context view already built (%d -> %d builds)", before, after)
	}
}
