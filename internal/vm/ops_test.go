package vm

// Table-driven semantics tests: every ALU/FP opcode is executed by the VM
// and compared against the corresponding Go computation.

import (
	"math"
	"testing"
	"testing/quick"

	"lvp/internal/isa"
	"lvp/internal/prog"
)

// runALU executes `op rd, ra, rb` with the given operand values and returns
// the result register.
func runALU(t *testing.T, op isa.Op, a, b uint64) uint64 {
	t.Helper()
	bld := prog.New("alu", prog.AXP)
	bld.Label("main")
	bld.Li(prog.T0, int64(a))
	bld.Li(prog.T1, int64(b))
	bld.Op3(op, prog.T2, prog.T0, prog.T1)
	bld.Out(prog.T2)
	bld.Ret()
	p, err := bld.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	res, err := Exec(p, 1000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.Output[0]
}

func TestALUSemantics(t *testing.T) {
	a, b := uint64(0xF00DFACE12345678), uint64(0x00000000DEADBEEF)
	cases := []struct {
		op   isa.Op
		want uint64
	}{
		{isa.ADD, a + b},
		{isa.SUB, a - b},
		{isa.AND, a & b},
		{isa.OR, a | b},
		{isa.XOR, a ^ b},
		{isa.SHL, a << (b & 63)},
		{isa.SHR, a >> (b & 63)},
		{isa.SRA, uint64(int64(a) >> (b & 63))},
		{isa.MUL, a * b},
		{isa.DIV, uint64(int64(a) / int64(b))},
		{isa.REM, uint64(int64(a) % int64(b))},
		{isa.SLT, 1}, // int64(a) < 0 < int64(b)
		{isa.SLTU, 0},
		{isa.SEQ, 0},
		{isa.SNE, 1},
	}
	for _, c := range cases {
		if got := runALU(t, c.op, a, b); got != c.want {
			t.Errorf("%v(%#x,%#x) = %#x, want %#x", c.op, a, b, got, c.want)
		}
	}
}

func TestALUImmediates(t *testing.T) {
	bld := prog.New("imm", prog.AXP)
	bld.Label("main")
	bld.Li(prog.T0, 100)
	emit := func(op isa.Op, imm int64) {
		bld.OpI(op, prog.T1, prog.T0, imm)
		bld.Out(prog.T1)
	}
	emit(isa.ADDI, -3)   // 97
	emit(isa.ANDI, 0x6C) // 100 & 0x6C = 0x64 & 0x6C = 100&108 = 96+4 = 100? compute below
	emit(isa.ORI, 0x83)
	emit(isa.XORI, 0xFF)
	emit(isa.SHLI, 3)
	emit(isa.SHRI, 2)
	emit(isa.SRAI, 2)
	emit(isa.SLTI, 101)
	bld.Ret()
	p, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{97, 100 & 0x6C, 100 | 0x83, 100 ^ 0xFF, 100 << 3, 100 >> 2,
		uint64(int64(100) >> 2), 1}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Errorf("imm op %d = %d, want %d", i, res.Output[i], want[i])
		}
	}
}

func TestFPSemantics(t *testing.T) {
	bld := prog.New("fp", prog.AXP)
	bld.Label("main")
	bld.LoadConstF(prog.FT0, 2.5)
	bld.LoadConstF(prog.FT1, -1.25)
	outF := func() {
		bld.Emit(isa.Inst{Op: isa.MOVFI, Rd: prog.T0, Ra: prog.FT2})
		bld.Out(prog.T0)
	}
	bld.Op3(isa.FADD, prog.FT2, prog.FT0, prog.FT1)
	outF()
	bld.Op3(isa.FSUB, prog.FT2, prog.FT0, prog.FT1)
	outF()
	bld.Op3(isa.FMUL, prog.FT2, prog.FT0, prog.FT1)
	outF()
	bld.Op3(isa.FDIV, prog.FT2, prog.FT0, prog.FT1)
	outF()
	bld.Emit(isa.Inst{Op: isa.FNEG, Rd: prog.FT2, Ra: prog.FT1})
	outF()
	bld.Emit(isa.Inst{Op: isa.FABS, Rd: prog.FT2, Ra: prog.FT1})
	outF()
	bld.Emit(isa.Inst{Op: isa.FSQRT, Rd: prog.FT2, Ra: prog.FT0})
	outF()
	bld.Emit(isa.Inst{Op: isa.FMOV, Rd: prog.FT2, Ra: prog.FT1})
	outF()
	// compares into GPRs
	bld.Op3(isa.FEQ, prog.T1, prog.FT0, prog.FT0)
	bld.Out(prog.T1)
	bld.Op3(isa.FLT, prog.T1, prog.FT1, prog.FT0)
	bld.Out(prog.T1)
	bld.Op3(isa.FLE, prog.T1, prog.FT0, prog.FT1)
	bld.Out(prog.T1)
	bld.Ret()
	p, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	wantF := []float64{2.5 + -1.25, 2.5 - -1.25, 2.5 * -1.25, 2.5 / -1.25,
		1.25, 1.25, math.Sqrt(2.5), -1.25}
	for i, w := range wantF {
		if got := math.Float64frombits(res.Output[i]); got != w {
			t.Errorf("fp op %d = %v, want %v", i, got, w)
		}
	}
	wantB := []uint64{1, 1, 0}
	for i, w := range wantB {
		if res.Output[len(wantF)+i] != w {
			t.Errorf("fp compare %d = %d, want %d", i, res.Output[len(wantF)+i], w)
		}
	}
}

func TestConversionsAndMoves(t *testing.T) {
	bld := prog.New("cvt", prog.AXP)
	bld.Label("main")
	bld.Li(prog.T0, -7)
	bld.Emit(isa.Inst{Op: isa.CVTIF, Rd: prog.FT0, Ra: prog.T0})
	bld.Emit(isa.Inst{Op: isa.MOVFI, Rd: prog.T1, Ra: prog.FT0})
	bld.Out(prog.T1) // bits of -7.0
	bld.Emit(isa.Inst{Op: isa.CVTFI, Rd: prog.T2, Ra: prog.FT0})
	bld.Out(prog.T2)                       // -7
	bld.Li(prog.T3, 0x4009_21FB_5444_2D18) // pi bits
	bld.Emit(isa.Inst{Op: isa.MOVIF, Rd: prog.FT1, Ra: prog.T3})
	bld.Emit(isa.Inst{Op: isa.CVTFI, Rd: prog.T4, Ra: prog.FT1})
	bld.Out(prog.T4) // 3 (truncating)
	bld.Ret()
	p, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := math.Float64frombits(res.Output[0]); got != -7.0 {
		t.Errorf("CVTIF(-7) = %v", got)
	}
	if int64(res.Output[1]) != -7 {
		t.Errorf("CVTFI(-7.0) = %d", int64(res.Output[1]))
	}
	if res.Output[2] != 3 {
		t.Errorf("CVTFI(pi) = %d, want 3", res.Output[2])
	}
}

func TestHalfwordAndFloat32Memory(t *testing.T) {
	bld := prog.New("mem2", prog.AXP)
	bld.Label("main")
	buf := bld.Zeros("buf", 32)
	bld.Li(prog.T0, int64(buf))
	bld.Li(prog.T1, -2)
	bld.Store(isa.SH, prog.T1, prog.T0, 0)
	bld.Load(isa.LHU, prog.T2, prog.T0, 0, isa.LoadIntData)
	bld.Out(prog.T2) // 0xFFFE
	bld.Load(isa.LH, prog.T3, prog.T0, 0, isa.LoadIntData)
	bld.Out(prog.T3) // -2
	// float32 round trip
	bld.LoadConstF(prog.FT0, 1.5)
	bld.Store(isa.FSW, prog.FT0, prog.T0, 8)
	bld.Load(isa.FLW, prog.FT1, prog.T0, 8, isa.LoadFPData)
	bld.Emit(isa.Inst{Op: isa.MOVFI, Rd: prog.T4, Ra: prog.FT1})
	bld.Out(prog.T4)
	bld.Ret()
	p, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != 0xFFFE {
		t.Errorf("LHU = %#x", res.Output[0])
	}
	if int64(res.Output[1]) != -2 {
		t.Errorf("LH = %d", int64(res.Output[1]))
	}
	if got := math.Float64frombits(res.Output[2]); got != 1.5 {
		t.Errorf("FLW/FSW round trip = %v, want 1.5", got)
	}
}

func TestDivRemEdgeCases(t *testing.T) {
	minI := uint64(1) << 63 // MinInt64 bit pattern
	if got := runALU(t, isa.DIV, minI, ^uint64(0)); got != minI {
		t.Errorf("MinInt64 / -1 = %#x, want MinInt64 (no trap)", got)
	}
	if got := runALU(t, isa.REM, minI, ^uint64(0)); got != 0 {
		t.Errorf("MinInt64 %% -1 = %#x, want 0", got)
	}
	if got := runALU(t, isa.REM, 42, 0); got != 0 {
		t.Errorf("42 %% 0 = %#x, want 0", got)
	}
}

func TestBranchConditionMatrix(t *testing.T) {
	type c struct {
		op   isa.Op
		a, b int64
		want bool
	}
	cases := []c{
		{isa.BEQ, 5, 5, true}, {isa.BEQ, 5, 6, false},
		{isa.BNE, 5, 6, true}, {isa.BNE, 5, 5, false},
		{isa.BLT, -1, 0, true}, {isa.BLT, 0, -1, false},
		{isa.BGE, 0, -1, true}, {isa.BGE, -1, 0, false},
		{isa.BLTU, 1, 2, true}, {isa.BLTU, ^int64(0), 2, false}, // unsigned max !< 2
		{isa.BGEU, ^int64(0), 2, true}, {isa.BGEU, 1, 2, false},
	}
	for _, tc := range cases {
		bld := prog.New("br", prog.AXP)
		bld.Label("main")
		bld.Li(prog.T0, tc.a)
		bld.Li(prog.T1, tc.b)
		taken := bld.NewLabel("taken")
		bld.Branch(tc.op, prog.T0, prog.T1, taken)
		bld.Li(prog.T2, 0)
		bld.Out(prog.T2)
		bld.Ret()
		bld.Label(taken)
		bld.Li(prog.T2, 1)
		bld.Out(prog.T2)
		bld.Ret()
		p, err := bld.Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Exec(p, 1000)
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(0)
		if tc.want {
			want = 1
		}
		if res.Output[0] != want {
			t.Errorf("%v(%d,%d) taken = %d, want %d", tc.op, tc.a, tc.b, res.Output[0], want)
		}
	}
}

func TestMemoryReadWriteProperty(t *testing.T) {
	// Property: Write then Read round-trips the low `size` bytes at any
	// address, including page-straddling ones.
	f := func(addr uint64, v uint64, szSel uint8) bool {
		addr &= 0xFFFFFF // keep the page map small
		size := []int{1, 2, 4, 8}[szSel%4]
		m := NewMemory()
		m.Write(addr, size, v)
		want := v
		if size < 8 {
			want &= (1 << (8 * size)) - 1
		}
		return m.Read(addr, size) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryDisjointWritesProperty(t *testing.T) {
	// Property: a write to one location never disturbs a disjoint one.
	f := func(a, b uint32, va, vb uint64) bool {
		addrA, addrB := uint64(a)&0xFFFFF, uint64(b)&0xFFFFF
		if addrA+8 > addrB && addrB+8 > addrA {
			return true // overlapping: skip
		}
		m := NewMemory()
		m.Write(addrA, 8, va)
		m.Write(addrB, 8, vb)
		return m.Read(addrA, 8) == va && m.Read(addrB, 8) == vb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
