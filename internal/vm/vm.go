// Package vm is the functional VLR simulator. It executes a prog.Program to
// completion and emits the dynamic instruction trace consumed by the value
// locality analyses, the LVP Unit model and the timing models — the role
// played by the TRIP6000 and ATOM tracing tools in the paper (§5).
package vm

import (
	"errors"
	"fmt"
	"io"
	"math"

	"lvp/internal/isa"
	"lvp/internal/prog"
	"lvp/internal/trace"
)

// ErrStepLimit reports that execution exceeded the configured step budget,
// which almost always means a runaway loop in a benchmark program.
var ErrStepLimit = errors.New("vm: step limit exceeded")

// DefaultMaxSteps bounds execution when the caller does not.
const DefaultMaxSteps = 50_000_000

// Sink receives each retired instruction. The hot path calls Emit once per
// instruction, so implementations should be cheap.
type Sink interface {
	Emit(trace.Record)
}

// collector accumulates records in memory.
type collector struct {
	recs []trace.Record
}

func (c *collector) Emit(r trace.Record) { c.recs = append(c.recs, r) }

// discard counts instructions without storing them.
type discard struct{ n int }

func (d *discard) Emit(trace.Record) { d.n++ }

// Result is what a completed run produces besides the trace.
type Result struct {
	Steps  int      // retired instruction count
	Output []uint64 // values emitted by OUT instructions (self-check channel)
	Pages  int      // memory footprint in 4 KiB pages
}

// Run executes p to completion and returns its full trace and result.
func Run(p *prog.Program, maxSteps int) (*trace.Trace, *Result, error) {
	c := &collector{recs: make([]trace.Record, 0, 1<<16)}
	res, err := RunSink(p, maxSteps, c)
	if err != nil {
		return nil, nil, err
	}
	t := &trace.Trace{Name: p.Name, Target: p.Target.Name, Records: c.recs}
	return t, res, nil
}

// Exec executes p without retaining a trace (functional testing).
func Exec(p *prog.Program, maxSteps int) (*Result, error) {
	return RunSink(p, maxSteps, &discard{})
}

// RunSink executes p, streaming each retired instruction into sink.
func RunSink(p *prog.Program, maxSteps int, sink Sink) (*Result, error) {
	src := NewSource(p, maxSteps)
	for {
		r, err := src.Next()
		if err == io.EOF {
			return src.Result(), nil
		}
		if err != nil {
			return nil, err
		}
		sink.Emit(*r)
	}
}

// Source is the pull-based form of the functional simulator: each Next call
// executes one instruction and yields its retired record, so the record
// stream can flow straight into the streaming annotation and timing layers
// without the program's full trace ever being materialized. The returned
// record is reused between calls; Next allocates nothing on the hot path.
type Source struct {
	p        *prog.Program
	m        *Memory
	gpr      [isa.NumRegs]uint64
	fpr      [isa.NumRegs]float64
	pc       uint64
	steps    int
	maxSteps int
	output   []uint64
	halted   bool
	rec      trace.Record
}

// NewSource returns a Source at p's entry point; maxSteps <= 0 selects
// DefaultMaxSteps.
func NewSource(p *prog.Program, maxSteps int) *Source {
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	m := NewMemory()
	m.LoadImage(p.Data)
	return &Source{p: p, m: m, pc: p.Entry, maxSteps: maxSteps}
}

// Result returns the run result; call it after Next has returned io.EOF.
func (s *Source) Result() *Result {
	return &Result{Steps: s.steps, Output: s.output, Pages: s.m.Pages()}
}

// Next executes one instruction and returns its record, or io.EOF after the
// HALT record has been yielded. The pointer is invalidated by the following
// Next call.
func (s *Source) Next() (*trace.Record, error) {
	if s.halted {
		return nil, io.EOF
	}
	if err := s.step(&s.rec); err != nil {
		return nil, err
	}
	return &s.rec, nil
}

// NextBatch executes up to len(buf) instructions, filling buf with their
// records in retirement order: the batched form of Next (see
// trace.BatchSource). It returns the number of records produced; the
// records are the caller's to keep. After the HALT record has been
// delivered it returns (0, io.EOF). An execution error may follow n > 0
// already-valid records.
func (s *Source) NextBatch(buf []trace.Record) (int, error) {
	n := 0
	for n < len(buf) {
		if s.halted {
			if n > 0 {
				return n, nil
			}
			return 0, io.EOF
		}
		if err := s.step(&buf[n]); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// step executes one instruction, writing its retired record into rec.
func (s *Source) step(rec *trace.Record) error {
	p, m, pc := s.p, s.m, s.pc
	gpr, fpr := &s.gpr, &s.fpr
	if s.steps >= s.maxSteps {
		return fmt.Errorf("%w after %d instructions at pc=%#x", ErrStepLimit, s.steps, pc)
	}
	idx, ok := p.PCToIndex(pc)
	if !ok {
		return fmt.Errorf("vm: pc %#x outside program (step %d)", pc, s.steps)
	}
	in := p.Code[idx]
	*rec = trace.Record{
		PC: pc, Op: in.Op, Rd: in.Rd, Ra: in.Ra, Rb: in.Rb,
		Imm: in.Imm, Class: in.Class,
	}
	nextPC := pc + isa.InstBytes
	halt := false

	switch in.Op {
	case isa.NOP:
	case isa.ADD:
		gpr[in.Rd] = gpr[in.Ra] + gpr[in.Rb]
	case isa.ADDI:
		gpr[in.Rd] = gpr[in.Ra] + uint64(in.Imm)
	case isa.SUB:
		gpr[in.Rd] = gpr[in.Ra] - gpr[in.Rb]
	case isa.AND:
		gpr[in.Rd] = gpr[in.Ra] & gpr[in.Rb]
	case isa.ANDI:
		gpr[in.Rd] = gpr[in.Ra] & uint64(in.Imm)
	case isa.OR:
		gpr[in.Rd] = gpr[in.Ra] | gpr[in.Rb]
	case isa.ORI:
		gpr[in.Rd] = gpr[in.Ra] | uint64(in.Imm)
	case isa.XOR:
		gpr[in.Rd] = gpr[in.Ra] ^ gpr[in.Rb]
	case isa.XORI:
		gpr[in.Rd] = gpr[in.Ra] ^ uint64(in.Imm)
	case isa.SHL:
		gpr[in.Rd] = gpr[in.Ra] << (gpr[in.Rb] & 63)
	case isa.SHLI:
		gpr[in.Rd] = gpr[in.Ra] << (uint64(in.Imm) & 63)
	case isa.SHR:
		gpr[in.Rd] = gpr[in.Ra] >> (gpr[in.Rb] & 63)
	case isa.SHRI:
		gpr[in.Rd] = gpr[in.Ra] >> (uint64(in.Imm) & 63)
	case isa.SRA:
		gpr[in.Rd] = uint64(int64(gpr[in.Ra]) >> (gpr[in.Rb] & 63))
	case isa.SRAI:
		gpr[in.Rd] = uint64(int64(gpr[in.Ra]) >> (uint64(in.Imm) & 63))
	case isa.SLT:
		gpr[in.Rd] = b2u(int64(gpr[in.Ra]) < int64(gpr[in.Rb]))
	case isa.SLTI:
		gpr[in.Rd] = b2u(int64(gpr[in.Ra]) < in.Imm)
	case isa.SLTU:
		gpr[in.Rd] = b2u(gpr[in.Ra] < gpr[in.Rb])
	case isa.SEQ:
		gpr[in.Rd] = b2u(gpr[in.Ra] == gpr[in.Rb])
	case isa.SNE:
		gpr[in.Rd] = b2u(gpr[in.Ra] != gpr[in.Rb])
	case isa.LI:
		gpr[in.Rd] = uint64(in.Imm)
	case isa.MUL:
		gpr[in.Rd] = gpr[in.Ra] * gpr[in.Rb]
	case isa.DIV:
		gpr[in.Rd] = sdiv(int64(gpr[in.Ra]), int64(gpr[in.Rb]))
	case isa.REM:
		gpr[in.Rd] = srem(int64(gpr[in.Ra]), int64(gpr[in.Rb]))

	case isa.LB, isa.LBU, isa.LH, isa.LHU, isa.LW, isa.LWU, isa.LD:
		size := isa.MemBytes(in.Op)
		addr := gpr[in.Ra] + uint64(in.Imm)
		raw := m.Read(addr, size)
		v := raw
		if isa.SignExtends(in.Op) {
			v = signExtend(raw, size)
		}
		gpr[in.Rd] = v
		rec.Addr, rec.Value, rec.Size = addr, v, uint8(size)
	case isa.FLW:
		addr := gpr[in.Ra] + uint64(in.Imm)
		raw := m.Read(addr, 4)
		f := float64(math.Float32frombits(uint32(raw)))
		fpr[in.Rd] = f
		rec.Addr, rec.Value, rec.Size = addr, math.Float64bits(f), 4
	case isa.FLD:
		addr := gpr[in.Ra] + uint64(in.Imm)
		raw := m.Read(addr, 8)
		fpr[in.Rd] = math.Float64frombits(raw)
		rec.Addr, rec.Value, rec.Size = addr, raw, 8

	case isa.SB, isa.SH, isa.SW, isa.SD:
		size := isa.MemBytes(in.Op)
		addr := gpr[in.Ra] + uint64(in.Imm)
		v := gpr[in.Rb]
		m.Write(addr, size, v)
		rec.Addr, rec.Value, rec.Size = addr, v&sizeMask(size), uint8(size)
	case isa.FSW:
		addr := gpr[in.Ra] + uint64(in.Imm)
		v := uint64(math.Float32bits(float32(fpr[in.Rb])))
		m.Write(addr, 4, v)
		rec.Addr, rec.Value, rec.Size = addr, v, 4
	case isa.FSD:
		addr := gpr[in.Ra] + uint64(in.Imm)
		v := math.Float64bits(fpr[in.Rb])
		m.Write(addr, 8, v)
		rec.Addr, rec.Value, rec.Size = addr, v, 8

	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
		taken := false
		a, b := gpr[in.Ra], gpr[in.Rb]
		switch in.Op {
		case isa.BEQ:
			taken = a == b
		case isa.BNE:
			taken = a != b
		case isa.BLT:
			taken = int64(a) < int64(b)
		case isa.BGE:
			taken = int64(a) >= int64(b)
		case isa.BLTU:
			taken = a < b
		case isa.BGEU:
			taken = a >= b
		}
		if taken {
			nextPC = uint64(in.Imm)
		}
		rec.Taken, rec.Targ = taken, nextPC
	case isa.JAL:
		if in.Rd != isa.R0 {
			gpr[in.Rd] = pc + isa.InstBytes
		}
		nextPC = uint64(in.Imm)
		rec.Taken, rec.Targ = true, nextPC
	case isa.JALR:
		target := gpr[in.Ra] + uint64(in.Imm)
		if in.Rd != isa.R0 {
			gpr[in.Rd] = pc + isa.InstBytes
		}
		nextPC = target
		rec.Taken, rec.Targ = true, nextPC

	case isa.FADD:
		fpr[in.Rd] = fpr[in.Ra] + fpr[in.Rb]
	case isa.FSUB:
		fpr[in.Rd] = fpr[in.Ra] - fpr[in.Rb]
	case isa.FMUL:
		fpr[in.Rd] = fpr[in.Ra] * fpr[in.Rb]
	case isa.FDIV:
		fpr[in.Rd] = fpr[in.Ra] / fpr[in.Rb]
	case isa.FSQRT:
		fpr[in.Rd] = math.Sqrt(fpr[in.Ra])
	case isa.FNEG:
		fpr[in.Rd] = -fpr[in.Ra]
	case isa.FABS:
		fpr[in.Rd] = math.Abs(fpr[in.Ra])
	case isa.FMOV:
		fpr[in.Rd] = fpr[in.Ra]
	case isa.FEQ:
		gpr[in.Rd] = b2u(fpr[in.Ra] == fpr[in.Rb])
	case isa.FLT:
		gpr[in.Rd] = b2u(fpr[in.Ra] < fpr[in.Rb])
	case isa.FLE:
		gpr[in.Rd] = b2u(fpr[in.Ra] <= fpr[in.Rb])
	case isa.CVTIF:
		fpr[in.Rd] = float64(int64(gpr[in.Ra]))
	case isa.CVTFI:
		fpr_ := fpr[in.Ra]
		switch {
		case math.IsNaN(fpr_):
			gpr[in.Rd] = 0
		case fpr_ >= math.MaxInt64:
			gpr[in.Rd] = uint64(math.MaxInt64)
		case fpr_ <= math.MinInt64:
			gpr[in.Rd] = 1 << 63 // bit pattern of MinInt64
		default:
			gpr[in.Rd] = uint64(int64(fpr_))
		}
	case isa.MOVIF:
		fpr[in.Rd] = math.Float64frombits(gpr[in.Ra])
	case isa.MOVFI:
		gpr[in.Rd] = math.Float64bits(fpr[in.Ra])

	case isa.OUT:
		s.output = append(s.output, gpr[in.Ra])
	case isa.HALT:
		halt = true
	default:
		return fmt.Errorf("vm: unimplemented opcode %v at pc=%#x", in.Op, pc)
	}

	gpr[isa.R0] = 0 // R0 is hardwired zero
	// Record the produced register value for every writer, not just
	// loads: §7 of the paper proposes predicting values "generated
	// by instructions other than loads", and the general-value-
	// locality study needs the full result stream.
	if !isa.IsLoad(in.Op) && !isa.IsStore(in.Op) {
		if isa.WritesFPR(in) {
			rec.Value = math.Float64bits(fpr[in.Rd])
		} else if isa.WritesGPR(in) && in.Rd != isa.R0 {
			rec.Value = gpr[in.Rd]
		}
	}
	s.steps++
	if halt {
		s.halted = true
	} else {
		s.pc = nextPC
	}
	return nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func sdiv(a, b int64) uint64 {
	if b == 0 {
		return 0
	}
	if a == math.MinInt64 && b == -1 {
		return uint64(a)
	}
	return uint64(a / b)
}

func srem(a, b int64) uint64 {
	if b == 0 {
		return 0
	}
	if a == math.MinInt64 && b == -1 {
		return 0
	}
	return uint64(a % b)
}

func signExtend(v uint64, size int) uint64 {
	shift := 64 - 8*size
	return uint64(int64(v<<shift) >> shift)
}

func sizeMask(size int) uint64 {
	if size >= 8 {
		return ^uint64(0)
	}
	return (1 << (8 * size)) - 1
}
