package vm

import "encoding/binary"

// pageBits selects a 4 KiB page size for the sparse memory map.
const pageBits = 12
const pageSize = 1 << pageBits
const pageMask = pageSize - 1

// Memory is a sparse, byte-addressed, little-endian memory. Pages are
// allocated on first touch; reads of untouched memory return zero, matching
// a zero-initialised process image.
type Memory struct {
	pages map[uint64]*[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

// LoadImage copies segment contents into memory.
func (m *Memory) LoadImage(image map[uint64][]byte) {
	for base, data := range image {
		m.WriteBytes(base, data)
	}
}

func (m *Memory) page(addr uint64, create bool) *[pageSize]byte {
	pn := addr >> pageBits
	p := m.pages[pn]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// ReadBytes fills buf from memory starting at addr.
func (m *Memory) ReadBytes(addr uint64, buf []byte) {
	for len(buf) > 0 {
		off := addr & pageMask
		n := copy(buf, m.pageSlice(addr)[off:])
		buf = buf[n:]
		addr += uint64(n)
	}
}

func (m *Memory) pageSlice(addr uint64) []byte {
	if p := m.page(addr, false); p != nil {
		return p[:]
	}
	return zeroPage[:]
}

var zeroPage [pageSize]byte

// WriteBytes copies buf into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, buf []byte) {
	for len(buf) > 0 {
		p := m.page(addr, true)
		off := addr & pageMask
		n := copy(p[off:], buf)
		buf = buf[n:]
		addr += uint64(n)
	}
}

// Read returns size bytes at addr zero-extended to 64 bits. size must be a
// power of two in {1,2,4,8}; accesses may straddle page boundaries.
func (m *Memory) Read(addr uint64, size int) uint64 {
	if addr&pageMask <= pageSize-uint64(size) {
		p := m.pageSlice(addr)
		off := addr & pageMask
		switch size {
		case 1:
			return uint64(p[off])
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off:]))
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:]))
		case 8:
			return binary.LittleEndian.Uint64(p[off:])
		}
	}
	var buf [8]byte
	m.ReadBytes(addr, buf[:size])
	return binary.LittleEndian.Uint64(buf[:])
}

// Write stores the low `size` bytes of v at addr.
func (m *Memory) Write(addr uint64, size int, v uint64) {
	if addr&pageMask <= pageSize-uint64(size) {
		p := m.page(addr, true)
		off := addr & pageMask
		switch size {
		case 1:
			p[off] = byte(v)
			return
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(v))
			return
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(v))
			return
		case 8:
			binary.LittleEndian.PutUint64(p[off:], v)
			return
		}
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	m.WriteBytes(addr, buf[:size])
}

// Pages reports the number of allocated pages (for footprint stats).
func (m *Memory) Pages() int { return len(m.pages) }
