package vm

import (
	"io"
	"reflect"
	"testing"

	"lvp/internal/bench"
	"lvp/internal/prog"
	"lvp/internal/trace"
)

// batchProgram builds a real workload big enough to cross many batch
// boundaries.
func batchProgram(t testing.TB) *prog.Program {
	t.Helper()
	bm, err := bench.ByName("quick")
	if err != nil {
		t.Fatal(err)
	}
	p, err := bm.Build(prog.AXP, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSourceNextBatchMatchesNext: executing a program through NextBatch
// must yield exactly the record sequence, final Result, and EOF behavior of
// the record-at-a-time Next, for batch sizes from degenerate to larger than
// the whole trace.
func TestSourceNextBatchMatchesNext(t *testing.T) {
	p := batchProgram(t)
	ref := NewSource(p, 0)
	var want []trace.Record
	for {
		r, err := ref.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, *r)
	}
	wantRes := ref.Result()

	for _, bufSize := range []int{1, 3, 256, 1 << 20} {
		s := NewSource(p, 0)
		buf := make([]trace.Record, bufSize)
		var got []trace.Record
		for {
			n, err := s.NextBatch(buf)
			got = append(got, buf[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("bufSize %d: %v", bufSize, err)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("bufSize %d: batched execution diverged from Next", bufSize)
		}
		if !reflect.DeepEqual(s.Result(), wantRes) {
			t.Fatalf("bufSize %d: Result diverged: %+v vs %+v", bufSize, s.Result(), wantRes)
		}
		// EOF must be sticky in both forms.
		if n, err := s.NextBatch(buf); n != 0 || err != io.EOF {
			t.Fatalf("bufSize %d: post-EOF NextBatch = (%d, %v)", bufSize, n, err)
		}
	}
}

// TestSourceNextBatchStepLimit: an execution error must surface after the
// records already retired in the same batch.
func TestSourceNextBatchStepLimit(t *testing.T) {
	p := batchProgram(t)
	s := NewSource(p, 100) // trips mid-batch
	buf := make([]trace.Record, 256)
	n, err := s.NextBatch(buf)
	if n != 100 {
		t.Fatalf("retired %d records before the limit, want 100", n)
	}
	if err == nil {
		t.Fatal("step limit must surface as an error")
	}
}
