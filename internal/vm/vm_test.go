package vm

import (
	"errors"
	"testing"

	"lvp/internal/isa"
	"lvp/internal/prog"
	"lvp/internal/trace"
)

// buildAndRun assembles a small main body and runs it.
func buildAndRun(t *testing.T, target prog.Target, body func(b *prog.Builder)) (*trace.Trace, *Result) {
	t.Helper()
	b := prog.New("test", target)
	b.Label("main")
	body(b)
	b.Ret()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	tr, res, err := Run(p, 1_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return tr, res
}

func TestArithmetic(t *testing.T) {
	_, res := buildAndRun(t, prog.AXP, func(b *prog.Builder) {
		b.Li(prog.T0, 21)
		b.Li(prog.T1, 2)
		b.Op3(isa.MUL, prog.T2, prog.T0, prog.T1)
		b.Out(prog.T2) // 42
		b.OpI(isa.ADDI, prog.T3, prog.T2, -2)
		b.Op3(isa.DIV, prog.T4, prog.T3, prog.T1)
		b.Out(prog.T4) // 20
		b.Li(prog.T5, -7)
		b.Op3(isa.REM, prog.T6, prog.T5, prog.T1)
		b.Out(prog.T6) // -1
		b.Op3(isa.DIV, prog.T7, prog.T0, prog.Zero)
		b.Out(prog.T7) // div by zero -> 0
	})
	want := []uint64{42, 20, ^uint64(0), 0}
	if len(res.Output) != len(want) {
		t.Fatalf("output = %v, want %v", res.Output, want)
	}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Errorf("output[%d] = %d, want %d", i, int64(res.Output[i]), int64(want[i]))
		}
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	_, res := buildAndRun(t, prog.AXP, func(b *prog.Builder) {
		buf := b.Zeros("buf", 64)
		b.Li(prog.T0, int64(buf))
		b.Li(prog.T1, -2) // 0xFFFF...FE
		b.Store(isa.SB, prog.T1, prog.T0, 0)
		b.Load(isa.LBU, prog.T2, prog.T0, 0, isa.LoadIntData)
		b.Out(prog.T2) // 0xFE = 254
		b.Load(isa.LB, prog.T3, prog.T0, 0, isa.LoadIntData)
		b.Out(prog.T3) // -2 sign-extended
		b.Store(isa.SD, prog.T1, prog.T0, 8)
		b.Load(isa.LW, prog.T4, prog.T0, 8, isa.LoadIntData)
		b.Out(prog.T4) // -2 (low 32 bits sign-extended)
		b.Load(isa.LWU, prog.T5, prog.T0, 8, isa.LoadIntData)
		b.Out(prog.T5) // 0xFFFFFFFE
	})
	want := []uint64{254, ^uint64(1), ^uint64(1), 0xFFFFFFFE}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Errorf("output[%d] = %#x, want %#x", i, res.Output[i], want[i])
		}
	}
}

func TestBranchesAndLoop(t *testing.T) {
	_, res := buildAndRun(t, prog.AXP, func(b *prog.Builder) {
		// sum 1..10 = 55
		b.Li(prog.T0, 0)  // sum
		b.Li(prog.T1, 1)  // i
		b.Li(prog.T2, 10) // limit
		loop := b.NewLabel("loop")
		done := b.NewLabel("done")
		b.Label(loop)
		b.Branch(isa.BLT, prog.T2, prog.T1, done) // if limit < i, exit
		b.Op3(isa.ADD, prog.T0, prog.T0, prog.T1)
		b.OpI(isa.ADDI, prog.T1, prog.T1, 1)
		b.Jump(loop)
		b.Label(done)
		b.Out(prog.T0)
	})
	if res.Output[0] != 55 {
		t.Errorf("sum = %d, want 55", res.Output[0])
	}
}

func TestCallAndFrame(t *testing.T) {
	b := prog.New("calltest", prog.PPC)
	f := b.Func("main", 1, prog.S0)
	b.Li(prog.S0, 7)
	f.StoreLocal(prog.S0, 0)
	b.Li(prog.A0, 5)
	b.Call("double")
	b.Out(prog.A0) // 10
	f.LoadLocal(prog.T0, 0)
	b.Out(prog.T0) // 7 survived the call frame
	f.Epilogue()

	g := b.Func("double", 0)
	b.Op3(isa.ADD, prog.A0, prog.A0, prog.A0)
	g.Epilogue()

	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	tr, res, err := Run(p, 10_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Output[0] != 10 || res.Output[1] != 7 {
		t.Fatalf("output = %v, want [10 7]", res.Output)
	}
	// The epilogues must produce instruction-address loads for RA.
	sum := tr.Summarize()
	if sum.LoadsByClass[isa.LoadInstAddr] < 2 {
		t.Errorf("expected >=2 inst-addr loads (RA restores), got %d",
			sum.LoadsByClass[isa.LoadInstAddr])
	}
}

func TestFloatingPoint(t *testing.T) {
	_, res := buildAndRun(t, prog.AXP, func(b *prog.Builder) {
		b.LoadConstF(prog.FT0, 1.5)
		b.LoadConstF(prog.FT1, 2.5)
		b.Op3(isa.FADD, prog.FT2, prog.FT0, prog.FT1)
		b.Emit(isa.Inst{Op: isa.CVTFI, Rd: prog.T0, Ra: prog.FT2})
		b.Out(prog.T0) // 4
		b.Op3(isa.FMUL, prog.FT3, prog.FT2, prog.FT1)
		b.Emit(isa.Inst{Op: isa.CVTFI, Rd: prog.T1, Ra: prog.FT3})
		b.Out(prog.T1) // 10
		b.Emit(isa.Inst{Op: isa.FSQRT, Rd: prog.FT4, Ra: prog.FT3})
		b.Op3(isa.FLT, prog.T2, prog.FT0, prog.FT4) // 1.5 < sqrt(10) -> 1
		b.Out(prog.T2)
	})
	want := []uint64{4, 10, 1}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Errorf("output[%d] = %d, want %d", i, res.Output[i], want[i])
		}
	}
}

func TestSwitchDispatch(t *testing.T) {
	b := prog.New("switchtest", prog.AXP)
	f := b.Func("main", 0, prog.S0)
	b.Li(prog.S0, 0)
	for i := int64(0); i < 3; i++ {
		b.Li(prog.A0, i)
		b.Call("dispatch")
		b.Op3(isa.ADD, prog.S0, prog.S0, prog.A0)
	}
	b.Out(prog.S0) // 10+20+30 = 60
	f.Epilogue()

	g := b.Func("dispatch", 0)
	b.Switch(prog.A0, prog.T0, "jt", []string{"c0", "c1", "c2"}, "cdef")
	b.Label("c0")
	b.Li(prog.A0, 10)
	b.Jump("dret")
	b.Label("c1")
	b.Li(prog.A0, 20)
	b.Jump("dret")
	b.Label("c2")
	b.Li(prog.A0, 30)
	b.Jump("dret")
	b.Label("cdef")
	b.Li(prog.A0, -1)
	b.Label("dret")
	g.Epilogue()

	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	tr, res, err := Run(p, 10_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Output[0] != 60 {
		t.Fatalf("switch sum = %d, want 60", int64(res.Output[0]))
	}
	sum := tr.Summarize()
	if sum.LoadsByClass[isa.LoadDataAddr] == 0 {
		t.Error("switch should emit data-address loads (table base)")
	}
}

func TestVCall(t *testing.T) {
	b := prog.New("vcalltest", prog.AXP)
	b.VTable("vtbl", []string{"methodA", "methodB"})
	// An "object" whose first word points at the vtable.
	obj := b.PtrTable("obj", []string{"vtbl"}, false)

	f := b.Func("main", 0)
	b.LoadConstAddr(prog.A1, int64(obj))
	b.VCall(prog.A1, 0, 1) // call methodB
	b.Out(prog.A0)
	f.Epilogue()

	g := b.Func("methodA", 0)
	b.Li(prog.A0, 111)
	g.Epilogue()
	h := b.Func("methodB", 0)
	b.Li(prog.A0, 222)
	h.Epilogue()

	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	tr, res, err := Run(p, 10_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Output[0] != 222 {
		t.Fatalf("vcall result = %d, want 222", res.Output[0])
	}
	sum := tr.Summarize()
	if sum.LoadsByClass[isa.LoadInstAddr] < 2 {
		t.Error("vcall should emit an instruction-address load (method pointer)")
	}
}

func TestStepLimit(t *testing.T) {
	b := prog.New("spin", prog.AXP)
	b.Label("main")
	loop := b.NewLabel("loop")
	b.Label(loop)
	b.Jump(loop)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	_, _, err = Run(p, 1000)
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
}

func TestR0HardwiredZero(t *testing.T) {
	_, res := buildAndRun(t, prog.AXP, func(b *prog.Builder) {
		b.OpI(isa.ADDI, prog.Zero, prog.Zero, 99)
		b.Out(prog.Zero)
	})
	if res.Output[0] != 0 {
		t.Errorf("R0 = %d after write, want 0", res.Output[0])
	}
}

func TestTraceRecordsMemoryOps(t *testing.T) {
	tr, _ := buildAndRun(t, prog.AXP, func(b *prog.Builder) {
		buf := b.Zeros("buf", 16)
		b.Li(prog.T0, int64(buf))
		b.Li(prog.T1, 0xABCD)
		b.Store(isa.SD, prog.T1, prog.T0, 8)
		b.Load(isa.LD, prog.T2, prog.T0, 8, isa.LoadIntData)
	})
	var load, store *trace.Record
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.IsLoad() && r.Class == isa.LoadIntData && r.Value == 0xABCD {
			load = r
		}
		if r.IsStore() && r.Value == 0xABCD {
			store = r
		}
	}
	if store == nil {
		t.Fatal("store record not found")
	}
	if load == nil {
		t.Fatal("load record not found")
	}
	if load.Addr != store.Addr {
		t.Errorf("load addr %#x != store addr %#x", load.Addr, store.Addr)
	}
	if load.Size != 8 {
		t.Errorf("load size = %d, want 8", load.Size)
	}
}

func TestPPCTargetUsesPoolForWideConstants(t *testing.T) {
	tr, _ := func() (*trace.Trace, *Result) {
		b := prog.New("pool", prog.PPC)
		b.Label("main")
		b.MaterializeInt(prog.T0, 0x12345678) // wider than 16 bits -> pool load
		b.MaterializeInt(prog.T1, 12)         // narrow -> LI
		b.Out(prog.T0)
		b.Ret()
		p, err := b.Build()
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		tr, res, err := Run(p, 10_000)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return tr, res
	}()
	sum := tr.Summarize()
	if sum.LoadsByClass[isa.LoadIntData] == 0 {
		t.Error("wide constant on PPC target should be a pool load")
	}
}

func TestMemoryStraddlesPages(t *testing.T) {
	m := NewMemory()
	addr := uint64(pageSize - 3)
	m.Write(addr, 8, 0x1122334455667788)
	if got := m.Read(addr, 8); got != 0x1122334455667788 {
		t.Errorf("straddling read = %#x", got)
	}
	if got := m.Read(addr+3, 1); got != 0x55 {
		t.Errorf("byte within straddle = %#x, want 0x55", got)
	}
}

func TestMemoryZeroFill(t *testing.T) {
	m := NewMemory()
	if got := m.Read(0xDEAD0000, 8); got != 0 {
		t.Errorf("untouched memory = %#x, want 0", got)
	}
}
