package cache

import (
	"math/rand"
	"testing"
)

func small() Config {
	return Config{Name: "t", SizeBytes: 1024, LineBytes: 64, Assoc: 2, Banks: 2}
}

func TestValidate(t *testing.T) {
	if err := small().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Name: "x", SizeBytes: 0, LineBytes: 64, Assoc: 1, Banks: 1},
		{Name: "x", SizeBytes: 1024, LineBytes: 48, Assoc: 1, Banks: 1},
		{Name: "x", SizeBytes: 1000, LineBytes: 64, Assoc: 1, Banks: 1},
		{Name: "x", SizeBytes: 1024, LineBytes: 64, Assoc: 3, Banks: 1}, // sets not pow2
		{Name: "x", SizeBytes: 1024, LineBytes: 64, Assoc: 1, Banks: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated: %+v", i, c)
		}
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := MustNew(small())
	if c.Access(0x1000) {
		t.Error("cold access must miss")
	}
	if !c.Access(0x1000) {
		t.Error("repeat access must hit")
	}
	if !c.Access(0x1001) {
		t.Error("same-line access must hit")
	}
	if c.Access(0x1040) {
		t.Error("next line must miss")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 4 accesses / 2 misses", st)
	}
}

func TestLRUWithinSet(t *testing.T) {
	// 1024B / 64B = 16 lines / 2-way = 8 sets. Three lines in one set.
	c := MustNew(small())
	base := uint64(0x10000)
	a, b, d := base, base+8*64, base+16*64 // all map to set 0
	c.Access(a)
	c.Access(b)
	c.Access(a) // refresh a
	c.Access(d) // evicts b (LRU)
	if !c.Probe(a) {
		t.Error("a should survive (MRU)")
	}
	if c.Probe(b) {
		t.Error("b should have been evicted")
	}
	if !c.Probe(d) {
		t.Error("d should be resident")
	}
}

func TestProbeHasNoSideEffects(t *testing.T) {
	c := MustNew(small())
	c.Probe(0x1000)
	if st := c.Stats(); st.Accesses != 0 {
		t.Error("probe must not count as an access")
	}
	if c.Access(0x1000) {
		t.Error("probe must not allocate")
	}
}

func TestBankMapping(t *testing.T) {
	c := MustNew(small())
	if c.Bank(0x0) == c.Bank(0x40) {
		t.Error("adjacent lines must map to different banks (2-bank interleave)")
	}
	if c.Bank(0x0) != c.Bank(0x80) {
		t.Error("lines two apart must share a bank")
	}
	if c.Bank(0x0) != c.Bank(0x3F) {
		t.Error("same line must be one bank")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := &Hierarchy{
		L1:        MustNew(Config{Name: "l1", SizeBytes: 1024, LineBytes: 64, Assoc: 2, Banks: 1}),
		L2:        MustNew(Config{Name: "l2", SizeBytes: 8192, LineBytes: 64, Assoc: 2, Banks: 1}),
		L1Latency: 2, L2Latency: 8, MemLatency: 40,
	}
	if r := h.Access(0x1000); r.Latency != 40 || r.L1Hit || r.L2Hit {
		t.Errorf("cold access = %+v, want memory latency", r)
	}
	if r := h.Access(0x1000); r.Latency != 2 || !r.L1Hit {
		t.Errorf("warm access = %+v, want L1 hit", r)
	}
	// Evict from L1 (small) but not L2: 17 distinct lines into 8 sets.
	for i := uint64(1); i <= 32; i++ {
		h.Access(0x1000 + i*64)
	}
	if r := h.Access(0x1000); r.Latency != 8 || !r.L2Hit {
		t.Errorf("L1-evicted access = %+v, want L2 hit", r)
	}
}

func TestMissRateProperty(t *testing.T) {
	// Property: a working set that fits the cache converges to hits.
	c := MustNew(Config{Name: "t", SizeBytes: 4096, LineBytes: 64, Assoc: 4, Banks: 1})
	rnd := rand.New(rand.NewSource(1))
	lines := []uint64{0, 64, 128, 192, 256} // 5 lines, far under capacity
	for range 1000 {
		c.Access(lines[rnd.Intn(len(lines))])
	}
	st := c.Stats()
	if st.Misses > len(lines) {
		t.Errorf("resident working set missed %d times, want <= %d", st.Misses, len(lines))
	}
	if st.MissRate() > 0.01 {
		t.Errorf("miss rate %.3f too high for resident set", st.MissRate())
	}
}

func TestZeroStats(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty stats must report zero miss rate")
	}
}
