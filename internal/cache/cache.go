// Package cache provides the memory-hierarchy substrate for the timing
// models: set-associative caches with LRU replacement, bank accounting for
// the PowerPC 620's dual-banked L1, and a two-level hierarchy returning
// per-access latencies.
package cache

import (
	"fmt"
	"log/slog"

	"lvp/internal/obs"
)

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	LineBytes int
	Assoc     int // ways; 1 = direct-mapped
	Banks     int // 1 = unbanked; 2 = the 620's dual-banked L1
}

// Validate checks structural consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache %s: size/line/assoc must be positive", c.Name)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines*c.LineBytes != c.SizeBytes {
		return fmt.Errorf("cache %s: size %d not a multiple of line size %d", c.Name, c.SizeBytes, c.LineBytes)
	}
	sets := lines / c.Assoc
	if sets <= 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a positive power of two", c.Name, sets)
	}
	if c.Banks < 1 {
		return fmt.Errorf("cache %s: banks must be >= 1", c.Name)
	}
	return nil
}

// Stats counts cache events.
type Stats struct {
	Accesses int
	Misses   int
	// Evictions counts valid lines displaced by miss fills (capacity and
	// conflict replacement; cold fills into invalid lines are not
	// evictions).
	Evictions int
}

// Hits is Accesses - Misses.
func (s Stats) Hits() int { return s.Accesses - s.Misses }

// MissRate is misses per access.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag   uint64
	valid bool
	used  uint64
}

// Cache is one set-associative level.
type Cache struct {
	cfg      Config
	sets     [][]line
	setMask  uint64
	lineBits uint
	clock    uint64
	stats    Stats
}

// New builds a cache from a validated config.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	nsets := lines / cfg.Assoc
	sets := make([][]line, nsets)
	backing := make([]line, lines)
	for i := range sets {
		sets[i], backing = backing[:cfg.Assoc], backing[cfg.Assoc:]
	}
	lb := uint(0)
	for 1<<lb < cfg.LineBytes {
		lb++
	}
	return &Cache{cfg: cfg, sets: sets, setMask: uint64(nsets - 1), lineBits: lb}, nil
}

// MustNew is New but panics on error (for fixed machine-model configs).
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Stats returns the access counters.
func (c *Cache) Stats() Stats { return c.stats }

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Bank reports which bank the address maps to (line-interleaved).
func (c *Cache) Bank(addr uint64) int {
	return int((addr >> c.lineBits) % uint64(c.cfg.Banks))
}

// Access looks up addr, allocating the line on miss (write-allocate for
// both reads and writes), and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	c.stats.Accesses++
	tag := addr >> c.lineBits
	set := c.sets[tag&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].used = c.clock
			return true
		}
	}
	c.stats.Misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	if set[victim].valid {
		c.stats.Evictions++
	}
	set[victim] = line{tag: tag, valid: true, used: c.clock}
	return false
}

// Probe checks for a hit without updating LRU or statistics.
func (c *Cache) Probe(addr uint64) bool {
	tag := addr >> c.lineBits
	set := c.sets[tag&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Hierarchy is a two-level cache plus memory, returning access latencies.
type Hierarchy struct {
	L1 *Cache
	L2 *Cache
	// Latencies are load-to-use cycles for an access satisfied at each
	// level.
	L1Latency  int
	L2Latency  int
	MemLatency int
	// Tracer, when set with the cache channel enabled, emits one event
	// per L1 miss naming the level that satisfied the access.
	Tracer *obs.Tracer
}

// AccessResult describes where an access was satisfied.
type AccessResult struct {
	Latency int
	L1Hit   bool
	L2Hit   bool
}

// Access performs a load or store lookup through the hierarchy.
func (h *Hierarchy) Access(addr uint64) AccessResult {
	if h.L1.Access(addr) {
		return AccessResult{Latency: h.L1Latency, L1Hit: true}
	}
	res := AccessResult{Latency: h.MemLatency}
	level := "mem"
	if h.L2 != nil && h.L2.Access(addr) {
		res = AccessResult{Latency: h.L2Latency, L2Hit: true}
		level = "l2"
	}
	if h.Tracer.Enabled(obs.ChanCache) {
		h.Tracer.Emit(obs.ChanCache, "l1-miss",
			slog.String("addr", fmt.Sprintf("%#x", addr)),
			slog.String("filled_by", level),
			slog.Int("latency", res.Latency))
	}
	return res
}

// ProbeL1 checks whether addr would hit in the L1 without side effects
// (used by the 21164 model, which cancels predictions for loads that will
// miss).
func (h *Hierarchy) ProbeL1(addr uint64) bool { return h.L1.Probe(addr) }
