package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format ("VLT1"):
//
//	magic   [4]byte  "VLT1"
//	name    uvarint-len + bytes
//	target  uvarint-len + bytes
//	count   uvarint  (number of records)
//	records ...      (delta/varint encoded, see below)
//
// Each record is encoded as a flag byte followed by varints. PCs are encoded
// as signed deltas from the previous record's PC (almost always +4), which
// keeps typical records to a few bytes.
//
// The count field is normally a minimal uvarint; streaming writers that do
// not know the count up front reserve a padded fixed-width uvarint instead
// and backpatch it (see Writer). Both decode identically.
//
// The encoder and decoder live in stream.go (Writer.WriteRecord and
// Reader.Next); Read and Write below are the whole-trace convenience layer
// on top of them.

const magic = "VLT1"

const (
	flagMem   = 1 << 0 // has Addr/Value/Size
	flagTaken = 1 << 1
	flagTarg  = 1 << 2 // has branch target
	flagVal   = 1 << 3 // non-memory record with a (nonzero) result value
)

var (
	// ErrBadMagic reports that the input is not a VLT1 trace.
	ErrBadMagic = errors.New("trace: bad magic (not a VLT1 trace file)")
	// ErrStringTooLong reports a header whose name or target declares a
	// length beyond MaxHeaderString. The cap bounds what a corrupt or
	// hostile header can make the decoder allocate.
	ErrStringTooLong = errors.New("trace: header string length exceeds cap")
)

// MaxHeaderString caps the declared length of the header's name and target
// strings.
const MaxHeaderString = 1 << 12

// Write encodes t to w in the VLT1 binary format.
func Write(w io.Writer, t *Trace) error {
	sw, err := NewWriterCount(w, t.Name, t.Target, uint64(len(t.Records)))
	if err != nil {
		return err
	}
	for i := range t.Records {
		if err := sw.WriteRecord(&t.Records[i]); err != nil {
			return err
		}
	}
	return sw.Close()
}

// Read decodes a VLT1 trace from r.
func Read(r io.Reader) (*Trace, error) {
	sr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{Name: sr.Name(), Target: sr.Target()}
	// Allocate incrementally rather than trusting the count header: a
	// malformed input claiming billions of records must fail with a
	// decode error, not an enormous up-front allocation.
	const allocChunk = 1 << 16
	t.Records = make([]Record, 0, min(sr.Count(), allocChunk))
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Records = append(t.Records, *rec)
	}
}

func writeString(bw *bufio.Writer, s string) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(s)))
	bw.Write(buf[:n])
	bw.WriteString(s)
}

func writeUvarint(bw *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	bw.Write(buf[:n])
}

func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	// Reject the length before allocating anything: the header length is
	// attacker-controlled on corrupt input.
	if n > MaxHeaderString {
		return "", fmt.Errorf("%w (%d > %d)", ErrStringTooLong, n, MaxHeaderString)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", err
	}
	return string(b), nil
}
