package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format ("VLT1"):
//
//	magic   [4]byte  "VLT1"
//	name    uvarint-len + bytes
//	target  uvarint-len + bytes
//	count   uvarint  (number of records)
//	records ...      (delta/varint encoded, see below)
//
// Each record is encoded as a flag byte followed by varints. PCs are encoded
// as signed deltas from the previous record's PC (almost always +4), which
// keeps typical records to a few bytes.

const magic = "VLT1"

const (
	flagMem   = 1 << 0 // has Addr/Value/Size
	flagTaken = 1 << 1
	flagTarg  = 1 << 2 // has branch target
	flagVal   = 1 << 3 // non-memory record with a (nonzero) result value
)

var (
	// ErrBadMagic reports that the input is not a VLT1 trace.
	ErrBadMagic = errors.New("trace: bad magic (not a VLT1 trace file)")
)

// Write encodes t to w in the VLT1 binary format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	writeString(bw, t.Name)
	writeString(bw, t.Target)
	writeUvarint(bw, uint64(len(t.Records)))
	prevPC := uint64(0)
	var buf [binary.MaxVarintLen64]byte
	for i := range t.Records {
		r := &t.Records[i]
		var flags byte
		if r.IsLoad() || r.IsStore() {
			flags |= flagMem
		} else if r.Value != 0 {
			flags |= flagVal
		}
		if r.Taken {
			flags |= flagTaken
		}
		if r.IsBranch() {
			flags |= flagTarg
		}
		bw.WriteByte(flags)
		bw.WriteByte(byte(r.Op))
		bw.WriteByte(byte(r.Rd))
		bw.WriteByte(byte(r.Ra))
		bw.WriteByte(byte(r.Rb))
		bw.WriteByte(byte(r.Class))
		n := binary.PutVarint(buf[:], int64(r.PC-prevPC))
		bw.Write(buf[:n])
		prevPC = r.PC
		n = binary.PutVarint(buf[:], r.Imm)
		bw.Write(buf[:n])
		if flags&flagMem != 0 {
			bw.WriteByte(r.Size)
			n = binary.PutUvarint(buf[:], r.Addr)
			bw.Write(buf[:n])
			n = binary.PutUvarint(buf[:], r.Value)
			bw.Write(buf[:n])
		}
		if flags&flagVal != 0 {
			n = binary.PutUvarint(buf[:], r.Value)
			bw.Write(buf[:n])
		}
		if flags&flagTarg != 0 {
			n = binary.PutUvarint(buf[:], r.Targ)
			bw.Write(buf[:n])
		}
	}
	return bw.Flush()
}

// Read decodes a VLT1 trace from r.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(m[:]) != magic {
		return nil, ErrBadMagic
	}
	t := &Trace{}
	var err error
	if t.Name, err = readString(br); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	if t.Target, err = readString(br); err != nil {
		return nil, fmt.Errorf("trace: reading target: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	const maxReasonable = 1 << 32
	if count > maxReasonable {
		return nil, fmt.Errorf("trace: implausible record count %d", count)
	}
	// Allocate incrementally rather than trusting the count header: a
	// malformed input claiming billions of records must fail with a
	// decode error, not an enormous up-front allocation.
	const allocChunk = 1 << 16
	t.Records = make([]Record, 0, min(count, allocChunk))
	prevPC := uint64(0)
	var hdr [6]byte
	for i := uint64(0); i < count; i++ {
		var rec Record
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return nil, fmt.Errorf("trace: record %d header: %w", i, err)
		}
		flags := hdr[0]
		if flags&^(flagMem|flagTaken|flagTarg|flagVal) != 0 {
			return nil, fmt.Errorf("trace: record %d: unknown flag bits %#02x", i, flags)
		}
		rec.Op = isaOp(hdr[1])
		rec.Rd, rec.Ra, rec.Rb = isaReg(hdr[2]), isaReg(hdr[3]), isaReg(hdr[4])
		rec.Class = isaLoadClass(hdr[5])
		// The flag byte is redundant with the opcode; reject records
		// where they disagree so every decoded trace is canonical (and
		// re-encodes to the same semantic records).
		if mem := rec.IsLoad() || rec.IsStore(); (flags&flagMem != 0) != mem {
			return nil, fmt.Errorf("trace: record %d: mem flag inconsistent with opcode %v", i, rec.Op)
		}
		if (flags&flagTarg != 0) != rec.IsBranch() {
			return nil, fmt.Errorf("trace: record %d: branch-target flag inconsistent with opcode %v", i, rec.Op)
		}
		if flags&flagVal != 0 && flags&flagMem != 0 {
			return nil, fmt.Errorf("trace: record %d: value flag on a memory record", i)
		}
		dpc, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d pc: %w", i, err)
		}
		rec.PC = prevPC + uint64(dpc)
		prevPC = rec.PC
		if rec.Imm, err = binary.ReadVarint(br); err != nil {
			return nil, fmt.Errorf("trace: record %d imm: %w", i, err)
		}
		rec.Taken = flags&flagTaken != 0
		if flags&flagMem != 0 {
			sz, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("trace: record %d size: %w", i, err)
			}
			rec.Size = sz
			if rec.Addr, err = binary.ReadUvarint(br); err != nil {
				return nil, fmt.Errorf("trace: record %d addr: %w", i, err)
			}
			if rec.Value, err = binary.ReadUvarint(br); err != nil {
				return nil, fmt.Errorf("trace: record %d value: %w", i, err)
			}
		}
		if flags&flagVal != 0 {
			if rec.Value, err = binary.ReadUvarint(br); err != nil {
				return nil, fmt.Errorf("trace: record %d result value: %w", i, err)
			}
		}
		if flags&flagTarg != 0 {
			if rec.Targ, err = binary.ReadUvarint(br); err != nil {
				return nil, fmt.Errorf("trace: record %d target: %w", i, err)
			}
		}
		t.Records = append(t.Records, rec)
	}
	return t, nil
}

func writeString(bw *bufio.Writer, s string) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(s)))
	bw.Write(buf[:n])
	bw.WriteString(s)
}

func writeUvarint(bw *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	bw.Write(buf[:n])
}

func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("implausible string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", err
	}
	return string(b), nil
}
