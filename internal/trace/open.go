package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// Format identifies a trace file format.
type Format uint8

const (
	// FormatVLT1 is the original streaming format (codec.go).
	FormatVLT1 Format = 1
	// FormatVLT2 is the block-structured format (vlt2.go).
	FormatVLT2 Format = 2
)

func (f Format) String() string {
	switch f {
	case FormatVLT1:
		return "vlt1"
	case FormatVLT2:
		return "vlt2"
	}
	return fmt.Sprintf("Format(%d)", uint8(f))
}

// FormatByName resolves a format flag value ("vlt1" or "vlt2").
func FormatByName(name string) (Format, error) {
	switch name {
	case "vlt1":
		return FormatVLT1, nil
	case "vlt2":
		return FormatVLT2, nil
	}
	return 0, fmt.Errorf("trace: unknown format %q (want vlt1 or vlt2)", name)
}

// Decoder is the format-independent streaming read seam: both the VLT1
// Reader and the VLT2 readers satisfy it, so every consumer of trace files
// works on either format. Count is the header/index record count when the
// format carries one up front (VLT1 always, indexed VLT2 always) and 0 when
// it is not yet known (sequential VLT2 before its footer).
type Decoder interface {
	Name() string
	Target() string
	Count() uint64
	Decoded() uint64
	BatchSource
}

// Encoder is the format-independent streaming write seam, satisfied by the
// VLT1 Writer and the VLT2 Writer2.
type Encoder interface {
	WriteRecord(*Record) error
	Count() uint64
	Close() error
}

// Open auto-detects the stream's format on its magic bytes and returns the
// matching sequential Decoder. Any io.Reader works — pipes included; use
// OpenFile to get seeking and parallel decode on VLT2 files.
func Open(r io.Reader) (Decoder, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	m, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	switch string(m) {
	case magic:
		return NewReader(br)
	case magic2:
		return NewReader2(br)
	}
	return nil, ErrBadMagic
}

// OpenFile auto-detects f's format and returns the strongest Decoder the
// format supports: an IndexedReader for VLT2 (O(1) seeking, parallel
// decode, zero-copy block access) or a streaming Reader for VLT1. The file
// must stay open while the Decoder is in use; if the Decoder implements
// io.Closer (the indexed reader does, to release its mapping), close it
// before closing f.
func OpenFile(f *os.File) (Decoder, error) {
	var m [4]byte
	if _, err := f.ReadAt(m[:], 0); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	switch string(m[:]) {
	case magic:
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		return NewReader(bufio.NewReaderSize(f, 1<<16))
	case magic2:
		st, err := f.Stat()
		if err != nil {
			return nil, err
		}
		return NewIndexedReader(f, st.Size())
	}
	return nil, ErrBadMagic
}

// NewEncoder returns a streaming Encoder writing the requested format with
// that format's defaults. VLT1 needs the record count up front unless w is
// seekable (see NewWriter); count < 0 means unknown. VLT2 ignores count —
// its totals live in the footer.
func NewEncoder(w io.Writer, format Format, name, target string, count int64) (Encoder, error) {
	switch format {
	case FormatVLT1:
		if count < 0 {
			return NewWriter(w, name, target)
		}
		return NewWriterCount(w, name, target, uint64(count))
	case FormatVLT2:
		return NewWriter2(w, name, target)
	}
	return nil, fmt.Errorf("trace: unknown format %v", format)
}

// ReadAll drains d into an in-memory Trace.
func ReadAll(d Decoder) (*Trace, error) {
	t := &Trace{Name: d.Name(), Target: d.Target()}
	const allocChunk = 1 << 16
	t.Records = make([]Record, 0, min(d.Count(), allocChunk))
	buf := make([]Record, 1024)
	for {
		n, err := d.NextBatch(buf)
		t.Records = append(t.Records, buf[:n]...)
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
	}
}
