package trace

import "lvp/internal/isa"

// Narrow conversion helpers used by the codec; kept in one place so the
// decoder's byte→typed-enum conversions are explicit and bounds-checked.

func isaOp(b byte) isa.Op {
	if int(b) >= isa.NumOps {
		return isa.NOP
	}
	return isa.Op(b)
}

func isaReg(b byte) isa.Reg {
	return isa.Reg(b % isa.NumRegs)
}

func isaLoadClass(b byte) isa.LoadClass {
	if isa.LoadClass(b) >= isa.NumLoadClasses {
		return isa.LoadNone
	}
	return isa.LoadClass(b)
}
