package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Streaming record-at-a-time access to the VLT1 format. The Reader/Writer
// pair is the primitive layer: the whole-trace Read/Write API in codec.go is
// implemented on top of it, so there is exactly one encoder and one decoder.
//
// The hot path is allocation-free after construction: Reader.Next decodes
// into an internal reused Record, and Writer.WriteRecord encodes through an
// internal scratch buffer into a bufio.Writer. Callers that retain records
// across Next calls must copy them.

// Source yields the records of a dynamic instruction trace in program
// order. Next returns io.EOF after the final record. The returned pointer
// is only valid until the next call to Next.
type Source interface {
	Next() (*Record, error)
}

// AnnotatedSource yields records paired with their per-record LVP
// prediction state, the unit of work flowing into the timing models in
// streaming mode. Annotated reports whether the stream carries real LVP
// annotations; false models a machine without LVP hardware (every state is
// PredNone, and the models skip their prediction-state accounting exactly
// as they do for a nil Annotation).
type AnnotatedSource interface {
	Next() (*Record, PredState, error)
	Annotated() bool
}

// sliceSource streams an in-memory trace.
type sliceSource struct {
	t *Trace
	i int
}

func (s *sliceSource) Next() (*Record, error) {
	if s.i >= len(s.t.Records) {
		return nil, io.EOF
	}
	r := &s.t.Records[s.i]
	s.i++
	return r, nil
}

// Stream returns a Source yielding t's records in order.
func (t *Trace) Stream() Source { return &sliceSource{t: t} }

// annotatedSlice streams an in-memory trace with its annotation.
type annotatedSlice struct {
	t   *Trace
	ann Annotation
	i   int
}

func (s *annotatedSlice) Next() (*Record, PredState, error) {
	if s.i >= len(s.t.Records) {
		return nil, PredNone, io.EOF
	}
	r := &s.t.Records[s.i]
	st := PredNone
	if s.ann != nil {
		st = s.ann[s.i]
	}
	s.i++
	return r, st, nil
}

func (s *annotatedSlice) Annotated() bool { return s.ann != nil }

// NextBatch copies up to len(recs) records (and their states) in bulk.
func (s *annotatedSlice) NextBatch(recs []Record, states []PredState) (int, error) {
	if s.i >= len(s.t.Records) {
		return 0, io.EOF
	}
	n := copy(recs, s.t.Records[s.i:])
	if s.ann != nil {
		copy(states[:n], s.ann[s.i:s.i+n])
	} else {
		for i := range states[:n] {
			states[i] = PredNone
		}
	}
	s.i += n
	return n, nil
}

// NextSpan hands over the remaining records and states as zero-copy views of
// the trace's own backing arrays (nil states when un-annotated), so batch
// consumers walk the in-memory trace without a single per-record call.
func (s *annotatedSlice) NextSpan() ([]Record, []PredState, error) {
	if s.i >= len(s.t.Records) {
		return nil, nil, io.EOF
	}
	recs := s.t.Records[s.i:]
	var states []PredState
	if s.ann != nil {
		states = s.ann[s.i:]
	}
	s.i = len(s.t.Records)
	return recs, states, nil
}

// StreamAnnotated returns an AnnotatedSource pairing t's records with ann.
// A nil ann models a machine without LVP hardware.
func (t *Trace) StreamAnnotated(ann Annotation) AnnotatedSource {
	return &annotatedSlice{t: t, ann: ann}
}

// noLVP adapts a plain Source into an un-annotated AnnotatedSource.
type noLVP struct{ src Source }

func (n noLVP) Next() (*Record, PredState, error) {
	r, err := n.src.Next()
	return r, PredNone, err
}

func (noLVP) Annotated() bool { return false }

// NoLVP adapts src for a timing model run without LVP hardware: every
// record carries PredNone and Annotated reports false. When src can
// deliver batches, the adapter is itself an AnnotatedBatchSource.
func NoLVP(src Source) AnnotatedSource {
	if bs, ok := src.(BatchSource); ok {
		return noLVPBatch{noLVP{src}, bs}
	}
	return noLVP{src}
}

// Reader decodes a VLT1 stream record-at-a-time. The header (name, target,
// count) is read at construction; Next then yields each record without
// per-record allocation, validating exactly as the whole-trace Read does.
type Reader struct {
	br     *bufio.Reader
	name   string
	target string
	count  uint64
	read   uint64
	prevPC uint64
	rec    Record
	hdr    [6]byte
}

// NewReader reads and validates the VLT1 header from r and returns a
// streaming Reader positioned at the first record.
func NewReader(r io.Reader) (*Reader, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(m[:]) != magic {
		return nil, ErrBadMagic
	}
	sr := &Reader{br: br}
	var err error
	if sr.name, err = readString(br); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	if sr.target, err = readString(br); err != nil {
		return nil, fmt.Errorf("trace: reading target: %w", err)
	}
	if sr.count, err = binary.ReadUvarint(br); err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	const maxReasonable = 1 << 32
	if sr.count > maxReasonable {
		return nil, fmt.Errorf("trace: implausible record count %d", sr.count)
	}
	return sr, nil
}

// Name returns the trace's benchmark name from the header.
func (r *Reader) Name() string { return r.name }

// Target returns the trace's codegen target from the header.
func (r *Reader) Target() string { return r.target }

// Count returns the header's record count.
func (r *Reader) Count() uint64 { return r.count }

// Decoded returns the number of records decoded so far.
func (r *Reader) Decoded() uint64 { return r.read }

// Next decodes the next record into the Reader's internal record and
// returns it; io.EOF after the final record. The pointer is invalidated by
// the following Next call. Validation matches Read: unknown flag bits,
// flag/opcode inconsistencies and truncation all fail with an error naming
// the record index.
func (r *Reader) Next() (*Record, error) {
	if r.read >= r.count {
		return nil, io.EOF
	}
	i := r.read
	rec := &r.rec
	*rec = Record{}
	if _, err := io.ReadFull(r.br, r.hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: record %d header: %w", i, err)
	}
	flags := r.hdr[0]
	if flags&^(flagMem|flagTaken|flagTarg|flagVal) != 0 {
		return nil, fmt.Errorf("trace: record %d: unknown flag bits %#02x", i, flags)
	}
	rec.Op = isaOp(r.hdr[1])
	rec.Rd, rec.Ra, rec.Rb = isaReg(r.hdr[2]), isaReg(r.hdr[3]), isaReg(r.hdr[4])
	rec.Class = isaLoadClass(r.hdr[5])
	// The flag byte is redundant with the opcode; reject records where
	// they disagree so every decoded trace is canonical (and re-encodes
	// to the same semantic records).
	if mem := rec.IsLoad() || rec.IsStore(); (flags&flagMem != 0) != mem {
		return nil, fmt.Errorf("trace: record %d: mem flag inconsistent with opcode %v", i, rec.Op)
	}
	if (flags&flagTarg != 0) != rec.IsBranch() {
		return nil, fmt.Errorf("trace: record %d: branch-target flag inconsistent with opcode %v", i, rec.Op)
	}
	if flags&flagVal != 0 && flags&flagMem != 0 {
		return nil, fmt.Errorf("trace: record %d: value flag on a memory record", i)
	}
	dpc, err := binary.ReadVarint(r.br)
	if err != nil {
		return nil, fmt.Errorf("trace: record %d pc: %w", i, err)
	}
	rec.PC = r.prevPC + uint64(dpc)
	r.prevPC = rec.PC
	if rec.Imm, err = binary.ReadVarint(r.br); err != nil {
		return nil, fmt.Errorf("trace: record %d imm: %w", i, err)
	}
	rec.Taken = flags&flagTaken != 0
	if flags&flagMem != 0 {
		sz, err := r.br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d size: %w", i, err)
		}
		rec.Size = sz
		if rec.Addr, err = binary.ReadUvarint(r.br); err != nil {
			return nil, fmt.Errorf("trace: record %d addr: %w", i, err)
		}
		if rec.Value, err = binary.ReadUvarint(r.br); err != nil {
			return nil, fmt.Errorf("trace: record %d value: %w", i, err)
		}
	}
	if flags&flagVal != 0 {
		if rec.Value, err = binary.ReadUvarint(r.br); err != nil {
			return nil, fmt.Errorf("trace: record %d result value: %w", i, err)
		}
	}
	if flags&flagTarg != 0 {
		if rec.Targ, err = binary.ReadUvarint(r.br); err != nil {
			return nil, fmt.Errorf("trace: record %d target: %w", i, err)
		}
	}
	r.read++
	return rec, nil
}

// countFieldWidth is the reserved width of the record-count varint when the
// count is not known up front: a maximally-padded uvarint (continuation bit
// set on the first nine bytes) that any varint decoder reads back as the
// same value, so streamed files stay readable by every VLT1 reader.
const countFieldWidth = binary.MaxVarintLen64

// putPaddedUvarint encodes v as exactly countFieldWidth bytes.
func putPaddedUvarint(buf []byte, v uint64) {
	for i := 0; i < countFieldWidth-1; i++ {
		buf[i] = byte(v&0x7f) | 0x80
		v >>= 7
	}
	buf[countFieldWidth-1] = byte(v)
}

// ErrNotSeekable reports a streaming Writer whose record count was unknown
// up front and whose underlying writer supports neither io.WriterAt nor
// io.WriteSeeker, so the count field cannot be backpatched at Close.
var ErrNotSeekable = errors.New("trace: cannot backpatch record count (writer is not seekable; use NewWriterCount)")

// ErrCountMismatch reports a Writer closed after writing a different number
// of records than NewWriterCount promised.
var ErrCountMismatch = errors.New("trace: record count mismatch at Close")

// Writer encodes a VLT1 stream record-at-a-time, flushing in chunks, so a
// trace of any length is written in constant memory.
//
// The VLT1 header carries the record count before the records. When the
// count is known up front (NewWriterCount) it is encoded minimally and the
// output is byte-identical to Write. When it is not (NewWriter), a
// fixed-width padded varint is reserved and backpatched on Close, which
// requires the underlying writer to support io.WriterAt or io.WriteSeeker
// (an *os.File does).
type Writer struct {
	w      io.Writer
	bw     *bufio.Writer
	prevPC uint64
	n      uint64

	headerLen int    // bytes before the count field
	preset    uint64 // promised count (hasPreset)
	hasPreset bool

	buf  [binary.MaxVarintLen64]byte
	err  error // sticky
	done bool
}

// NewWriter returns a streaming Writer with an unknown record count; Close
// backpatches the count, so w must be an io.WriterAt or io.WriteSeeker.
func NewWriter(w io.Writer, name, target string) (*Writer, error) {
	return newWriter(w, name, target, 0, false)
}

// NewWriterCount returns a streaming Writer for a trace whose record count
// is known up front. The output is byte-identical to Write on the same
// records; Close fails with ErrCountMismatch if a different number of
// records was written.
func NewWriterCount(w io.Writer, name, target string, count uint64) (*Writer, error) {
	return newWriter(w, name, target, count, true)
}

func newWriter(w io.Writer, name, target string, count uint64, hasCount bool) (*Writer, error) {
	sw := &Writer{
		w:         w,
		bw:        bufio.NewWriterSize(w, 1<<16),
		preset:    count,
		hasPreset: hasCount,
	}
	if _, err := sw.bw.WriteString(magic); err != nil {
		return nil, err
	}
	writeString(sw.bw, name)
	writeString(sw.bw, target)
	sw.headerLen = len(magic) + uvarintLen(uint64(len(name))) + len(name) +
		uvarintLen(uint64(len(target))) + len(target)
	if hasCount {
		writeUvarint(sw.bw, count)
	} else {
		putPaddedUvarint(sw.buf[:countFieldWidth], 0)
		sw.bw.Write(sw.buf[:countFieldWidth])
	}
	if _, err := sw.bw.Write(nil); err != nil {
		return nil, err
	}
	return sw, nil
}

// uvarintLen is the encoded size of v as a minimal uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.n }

// WriteRecord appends one record to the stream. It is allocation-free; the
// first error is sticky and returned by every later call.
func (w *Writer) WriteRecord(r *Record) error {
	if w.err != nil {
		return w.err
	}
	bw := w.bw
	var flags byte
	if r.IsLoad() || r.IsStore() {
		flags |= flagMem
	} else if r.Value != 0 {
		flags |= flagVal
	}
	if r.Taken {
		flags |= flagTaken
	}
	if r.IsBranch() {
		flags |= flagTarg
	}
	bw.WriteByte(flags)
	bw.WriteByte(byte(r.Op))
	bw.WriteByte(byte(r.Rd))
	bw.WriteByte(byte(r.Ra))
	bw.WriteByte(byte(r.Rb))
	bw.WriteByte(byte(r.Class))
	n := binary.PutVarint(w.buf[:], int64(r.PC-w.prevPC))
	bw.Write(w.buf[:n])
	w.prevPC = r.PC
	n = binary.PutVarint(w.buf[:], r.Imm)
	bw.Write(w.buf[:n])
	if flags&flagMem != 0 {
		bw.WriteByte(r.Size)
		n = binary.PutUvarint(w.buf[:], r.Addr)
		bw.Write(w.buf[:n])
		n = binary.PutUvarint(w.buf[:], r.Value)
		bw.Write(w.buf[:n])
	}
	if flags&flagVal != 0 {
		n = binary.PutUvarint(w.buf[:], r.Value)
		bw.Write(w.buf[:n])
	}
	if flags&flagTarg != 0 {
		n = binary.PutUvarint(w.buf[:], r.Targ)
		bw.Write(w.buf[:n])
	}
	w.n++
	// bufio flushes full chunks on its own and its error is sticky; an
	// empty Write surfaces that error without forcing a flush, so a failed
	// underlying writer is reported on the record that hit it.
	if _, err := bw.Write(nil); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Close flushes buffered records and finalises the count field: it verifies
// the promised count (NewWriterCount) or backpatches the reserved field
// with the number of records actually written (NewWriter). It does not
// close the underlying writer.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.done {
		return nil
	}
	w.done = true
	if err := w.bw.Flush(); err != nil {
		w.err = err
		return err
	}
	if w.hasPreset {
		if w.n != w.preset {
			w.err = fmt.Errorf("%w: promised %d, wrote %d", ErrCountMismatch, w.preset, w.n)
			return w.err
		}
		return nil
	}
	putPaddedUvarint(w.buf[:countFieldWidth], w.n)
	off := int64(w.headerLen)
	switch uw := w.w.(type) {
	case io.WriterAt:
		if _, err := uw.WriteAt(w.buf[:countFieldWidth], off); err != nil {
			w.err = err
			return err
		}
	case io.WriteSeeker:
		if _, err := uw.Seek(off, io.SeekStart); err != nil {
			w.err = err
			return err
		}
		if _, err := uw.Write(w.buf[:countFieldWidth]); err != nil {
			w.err = err
			return err
		}
		if _, err := uw.Seek(0, io.SeekEnd); err != nil {
			w.err = err
			return err
		}
	default:
		w.err = ErrNotSeekable
		return w.err
	}
	return nil
}
