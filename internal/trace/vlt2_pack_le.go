//go:build 386 || amd64 || arm || arm64 || loong64 || mips64le || mipsle || ppc64le || riscv64 || wasm

package trace

import "unsafe"

// storeRecTail writes Record's seven adjacent byte-wide fields (Op through
// Taken) plus their one padding byte as a single 8-byte little-endian store
// — the hot decode loop's biggest single cost is the Record write, and this
// collapses seven narrow stores into one. The layout assertion below fails
// the build's first test run if Record's field order ever changes; the
// big-endian/portable fallback lives in vlt2_pack_generic.go.
func storeRecTail(r *Record, op, rd, ra, rb, class, size, taken uint8) {
	*(*uint64)(unsafe.Pointer(&r.Op)) = uint64(op) | uint64(rd)<<8 | uint64(ra)<<16 |
		uint64(rb)<<24 | uint64(class)<<32 | uint64(size)<<40 | uint64(taken)<<48
}

// recordBytes returns buf's backing memory as a byte slice, letting a
// CodecFixed payload — whose wire layout mirrors Record exactly on
// little-endian machines — decode as one bulk copy. The generic build
// returns nil and decodes field by field.
func recordBytes(buf []Record) []byte {
	if len(buf) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&buf[0])), len(buf)*fixedRecSize2)
}

// The packed store requires Op..Taken contiguous at an 8-byte-aligned offset
// with Targ in the following word (so the padding byte it overwrites is
// really padding), and recordBytes requires the whole struct to match the
// CodecFixed wire layout. Verified at init: a violation panics before any
// test or binary gets further.
func init() {
	var r Record
	if unsafe.Sizeof(r) != fixedRecSize2 ||
		unsafe.Offsetof(r.PC) != 0 ||
		unsafe.Offsetof(r.Addr) != 8 ||
		unsafe.Offsetof(r.Value) != 16 ||
		unsafe.Offsetof(r.Imm) != 24 ||
		unsafe.Offsetof(r.Op) != 32 ||
		unsafe.Offsetof(r.Rd) != 33 ||
		unsafe.Offsetof(r.Ra) != 34 ||
		unsafe.Offsetof(r.Rb) != 35 ||
		unsafe.Offsetof(r.Class) != 36 ||
		unsafe.Offsetof(r.Size) != 37 ||
		unsafe.Offsetof(r.Taken) != 38 ||
		unsafe.Offsetof(r.Targ) != 40 {
		panic("trace: Record layout changed; update storeRecTail and recordBytes (vlt2_pack_le.go)")
	}
}
