package trace

import (
	"io"
	"math/rand"
	"reflect"
	"testing"
)

// propEncodings is the encoding matrix the seek/parallel property tests
// run over: every payload codec, block sizes that do and do not divide the
// record count.
var propEncodings = []struct {
	name string
	opts Writer2Options
}{
	{"varint", Writer2Options{BlockRecords: 128}},
	{"varint-odd", Writer2Options{BlockRecords: 61}},
	{"fixed", Writer2Options{Codec: CodecFixed, BlockRecords: 128}},
	{"flate", Writer2Options{Codec: CodecFlate, BlockRecords: 128}},
	{"fixed-flate", Writer2Options{Codec: CodecFixedFlate, BlockRecords: 61}},
}

// TestVLT2SeekProperty drives random SeekRecord positions and checks that
// what follows each seek is exactly the sequential suffix starting there:
// O(1) seek must be observationally equivalent to decode-and-discard.
func TestVLT2SeekProperty(t *testing.T) {
	want := genRecords(5000, 23)
	tr := &Trace{Name: "seek", Target: "ppc", Records: want}
	for _, e := range propEncodings {
		t.Run(e.name, func(t *testing.T) {
			enc := encodeVLT2(tr, e.opts)
			ir, err := NewIndexedReaderBytes(enc)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(len(enc))))
			buf := make([]Record, 300)
			for trial := 0; trial < 40; trial++ {
				n := uint64(rng.Intn(len(want) + 1))
				if err := ir.SeekRecord(n); err != nil {
					t.Fatalf("seek %d: %v", n, err)
				}
				// Read a bounded window, not the whole suffix, so the
				// test stays O(trials × window) instead of O(trials × n).
				window := rng.Intn(700) + 1
				var got []Record
				for len(got) < window {
					k, err := ir.NextBatch(buf[:min(window-len(got), len(buf))])
					got = append(got, buf[:k]...)
					if err == io.EOF {
						break
					}
					if err != nil {
						t.Fatalf("after seek %d: %v", n, err)
					}
				}
				wantWin := want[n:min(int(n)+window, len(want))]
				if len(got) != len(wantWin) || (len(got) > 0 && !reflect.DeepEqual(got, wantWin)) {
					t.Fatalf("seek %d window %d: records differ", n, window)
				}
			}
			// Seeking beyond the end must fail cleanly; seeking to the
			// exact end must yield io.EOF.
			if err := ir.SeekRecord(uint64(len(want)) + 1); err == nil {
				t.Fatal("seek beyond count succeeded")
			}
			if err := ir.SeekRecord(uint64(len(want))); err != nil {
				t.Fatal(err)
			}
			if _, err := ir.NextBatch(buf); err != io.EOF {
				t.Fatalf("read at end: want io.EOF, got %v", err)
			}
		})
	}
}

// TestVLT2ParallelWidthsProperty checks that parallel decode is
// byte-identical to serial decode at every worker width 1..16, through
// both the batch and the zero-copy block delivery APIs. Under -race this
// doubles as the decode pipeline's data-race gate.
func TestVLT2ParallelWidthsProperty(t *testing.T) {
	want := genRecords(20_000, 31)
	tr := &Trace{Name: "par", Target: "ppc", Records: want}
	for _, e := range propEncodings {
		t.Run(e.name, func(t *testing.T) {
			enc := encodeVLT2(tr, e.opts)
			widths := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
			if testing.Short() {
				widths = []int{1, 2, 3, 7, 16}
			}
			for _, w := range widths {
				ir, err := NewIndexedReaderBytes(enc)
				if err != nil {
					t.Fatal(err)
				}
				pr := ir.Parallel(w)
				var got []Record
				if w%2 == 0 {
					// Even widths drain through NextBatch…
					got = drain(t, pr)
				} else {
					// …odd widths through the zero-copy block API.
					for {
						blk, err := pr.NextBlock()
						if err == io.EOF {
							break
						}
						if err != nil {
							t.Fatalf("width %d: %v", w, err)
						}
						got = append(got, blk...)
					}
				}
				pr.Close()
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("width %d: parallel decode differs from the encoded records", w)
				}
			}
		})
	}
}

// TestVLT2IndexedNextBatchAllocFree pins the indexed batch path — VLT2's
// hot decode loop, raw and fixed codecs both — at zero allocations per
// batch at steady state.
func TestVLT2IndexedNextBatchAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	tr := &Trace{Name: "alloc", Target: "ppc", Records: genRecords(200_000, 41)}
	for _, e := range []struct {
		name string
		opts Writer2Options
	}{
		{"varint", Writer2Options{}},
		{"fixed", Writer2Options{Codec: CodecFixed}},
	} {
		t.Run(e.name, func(t *testing.T) {
			ir, err := NewIndexedReaderBytes(encodeVLT2(tr, e.opts))
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]Record, 256)
			avg := testing.AllocsPerRun(500, func() {
				if _, err := ir.NextBatch(buf); err != nil && err != io.EOF {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Fatalf("IndexedReader.NextBatch allocates %v allocs/batch, want 0", avg)
			}
		})
	}
}

// TestVLT2WriterAllocFree pins the encode loop: after warmup, WriteRecord
// must not allocate except when a block flushes (the flush reuses buffers
// too, so even flush boundaries stay at zero amortized).
func TestVLT2WriterAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	recs := genRecords(4096, 43)
	w, err := NewWriter2(io.Discard, "alloc", "ppc")
	if err != nil {
		t.Fatal(err)
	}
	// Warm up one full block so payload and header buffers reach size.
	for i := range recs {
		if err := w.WriteRecord(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	avg := testing.AllocsPerRun(20_000, func() {
		if err := w.WriteRecord(&recs[i%len(recs)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if avg != 0 {
		t.Fatalf("Writer2.WriteRecord allocates %v allocs/record, want 0", avg)
	}
}

// TestVLT2ParallelReuseAfterClose ensures Close is idempotent and a closed
// reader fails cleanly rather than deadlocking.
func TestVLT2ParallelReuseAfterClose(t *testing.T) {
	tr := &Trace{Name: "close", Target: "ppc", Records: genRecords(1000, 51)}
	ir, err := NewIndexedReaderBytes(encodeVLT2(tr, Writer2Options{BlockRecords: 64}))
	if err != nil {
		t.Fatal(err)
	}
	pr := ir.Parallel(2)
	if _, err := pr.NextBlock(); err != nil {
		t.Fatal(err)
	}
	pr.Close()
	pr.Close()
}
