package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"lvp/internal/obs"
)

// Indexed VLT2 access: with an io.ReaderAt the footer index turns a trace
// file into a random-access collection of independently decodable blocks —
// O(log blocks) seeking to any record, and parallel block decode
// (vlt2_parallel.go). When the underlying file can be memory-mapped the
// reader works directly on the mapping: raw block payloads decode with no
// copy at all.

// IndexedReader decodes a VLT2 file through its footer index. It satisfies
// Decoder (sequential reads from the current position) and adds SeekRecord
// and Parallel. Not safe for concurrent use; Parallel returns a dedicated
// reader instead of mutating this one.
type IndexedReader struct {
	ra     io.ReaderAt
	data   []byte       // whole-file view (mmap or caller-provided); nil → ReadAt path
	unmap  func() error // releases data when it is a mapping
	name   string
	target string
	hdrLen uint64
	fOff   uint64 // footer offset
	idx    []indexEnt2
	cum    []uint64 // cum[i] = records before block i; len(idx)+1 entries
	total  uint64

	cur      int // index of the block staged in dec (or len(idx) when drained)
	dec      blockDec
	fetch    blockReader
	blockBuf []byte // ReadAt scratch for one block
	read     uint64
	rec      Record
	m        v2Metrics
	err      error // sticky decode error
}

// NewIndexedReader opens a VLT2 file through ra, which must serve
// concurrent ReadAt calls (os.File and bytes.Reader both do) for Parallel
// to be usable. When ra is an *os.File the file is memory-mapped if the
// platform supports it; Close releases the mapping.
func NewIndexedReader(ra io.ReaderAt, size int64) (*IndexedReader, error) {
	ir := &IndexedReader{ra: ra, m: newV2Metrics(nil)}
	if f, ok := ra.(*os.File); ok {
		if data, unmap, ok := mmapFile(f, size); ok {
			ir.data = data
			ir.unmap = unmap
		}
	}
	if err := ir.open(size); err != nil {
		ir.Close()
		return nil, err
	}
	return ir, nil
}

// NewIndexedReaderBytes opens an in-memory VLT2 image zero-copy: block
// payloads decode directly from data.
func NewIndexedReaderBytes(data []byte) (*IndexedReader, error) {
	ir := &IndexedReader{data: data, m: newV2Metrics(nil)}
	if err := ir.open(int64(len(data))); err != nil {
		return nil, err
	}
	return ir, nil
}

// readAt serves n bytes at off from the mapping when present, the ReaderAt
// otherwise. buf is the reusable destination for the ReadAt path.
func (ir *IndexedReader) readAt(buf *[]byte, off uint64, n int) ([]byte, error) {
	if ir.data != nil {
		if off > uint64(len(ir.data)) || n > len(ir.data)-int(off) {
			return nil, fmt.Errorf("%w: read [%d, %d+%d) beyond file size %d", ErrCorrupt, off, off, n, len(ir.data))
		}
		return ir.data[off : off+uint64(n)], nil
	}
	*buf = grow(*buf, n)
	if _, err := ir.ra.ReadAt(*buf, int64(off)); err != nil {
		return nil, err
	}
	return *buf, nil
}

// open parses the header, trailer and footer index, validating the index
// invariants: contiguous non-overlapping entries from the end of the header
// to the start of the footer, plausible per-entry sizes and counts, and a
// record total equal to the entry sum.
func (ir *IndexedReader) open(size int64) error {
	if size < int64(trailerLen2)+5 {
		return fmt.Errorf("%w: file too small (%d bytes)", ErrCorrupt, size)
	}
	// Header: magic, version, name, target.
	hr := bufio.NewReaderSize(io.NewSectionReader(ir.ra2(), 0, size), 4096)
	var m [5]byte
	if _, err := io.ReadFull(hr, m[:]); err != nil {
		return fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(m[:4]) != magic2 {
		return ErrBadMagic
	}
	if m[4] != version2 {
		return fmt.Errorf("%w: %d", ErrVersion, m[4])
	}
	var err error
	if ir.name, err = readString(hr); err != nil {
		return fmt.Errorf("trace: reading name: %w", err)
	}
	if ir.target, err = readString(hr); err != nil {
		return fmt.Errorf("trace: reading target: %w", err)
	}
	ir.hdrLen = uint64(len(magic2)) + 1 +
		uint64(uvarintLen(uint64(len(ir.name)))+len(ir.name)) +
		uint64(uvarintLen(uint64(len(ir.target)))+len(ir.target))

	// Trailer.
	var tbuf []byte
	tail, err := ir.readAt(&tbuf, uint64(size)-uint64(trailerLen2), trailerLen2)
	if err != nil {
		return fmt.Errorf("trace: vlt2 trailer: %w", err)
	}
	if string(tail[8:]) != trailerMagic2 {
		return fmt.Errorf("%w: bad trailer magic", ErrCorrupt)
	}
	ir.fOff = binary.LittleEndian.Uint64(tail[:8])
	crcEnd := uint64(size) - uint64(trailerLen2) // footer CRC sits just before the trailer
	if ir.fOff < ir.hdrLen || ir.fOff+4 > crcEnd {
		return fmt.Errorf("%w: trailer footer offset %d outside [%d, %d]", ErrCorrupt, ir.fOff, ir.hdrLen, crcEnd-4)
	}

	// Footer: its body spans [fOff, crcEnd-4) with its CRC in the last 4
	// bytes before the trailer. Read body+CRC together, verify, parse.
	var fbuf []byte
	footer, err := ir.readAt(&fbuf, ir.fOff, int(crcEnd-ir.fOff))
	if err != nil {
		return fmt.Errorf("trace: vlt2 footer: %w", err)
	}
	body, crcBytes := footer[:len(footer)-4], footer[len(footer)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(crcBytes) {
		return fmt.Errorf("trace: vlt2 footer: %w", ErrChecksum)
	}
	if len(body) < 1 || body[0] != blockKindFooter {
		return fmt.Errorf("%w: footer does not start with the footer kind byte", ErrCorrupt)
	}
	pos := 1
	next := func(what string) (uint64, error) {
		v, k := binary.Uvarint(body[pos:])
		if k <= 0 {
			return 0, fmt.Errorf("%w: footer %s truncated or overlong", ErrCorrupt, what)
		}
		pos += k
		return v, nil
	}
	nblocks, err := next("block count")
	if err != nil {
		return err
	}
	if nblocks > maxFileBlocks {
		return fmt.Errorf("%w: footer declares %d blocks (cap %d)", ErrCorrupt, nblocks, maxFileBlocks)
	}
	// Entries are at least 3 bytes each: reject a lying count before the
	// index allocation, so a hostile footer cannot over-allocate.
	if nblocks*3 > uint64(len(body)-pos) {
		return fmt.Errorf("%w: footer declares %d blocks but holds %d bytes", ErrCorrupt, nblocks, len(body)-pos)
	}
	ir.idx = make([]indexEnt2, 0, nblocks)
	ir.cum = make([]uint64, 0, nblocks+1)
	wantOff := ir.hdrLen
	var total uint64
	ir.cum = append(ir.cum, 0)
	for i := uint64(0); i < nblocks; i++ {
		off, err := next("entry offset")
		if err != nil {
			return err
		}
		sz, err := next("entry size")
		if err != nil {
			return err
		}
		count, err := next("entry count")
		if err != nil {
			return err
		}
		if off != wantOff {
			return fmt.Errorf("%w: index entry %d offset %d overlaps or skips (want %d)", ErrCorrupt, i, off, wantOff)
		}
		// Compare in subtracted form: off+sz can wrap uint64 on a hostile
		// footer, but off == wantOff <= fOff holds inductively, so the
		// remaining span fOff-off never underflows.
		if sz < hdrMin2 || sz > ir.fOff-off {
			return fmt.Errorf("%w: index entry %d size %d out of range", ErrCorrupt, i, sz)
		}
		if count < 1 || count > MaxBlockRecords {
			return fmt.Errorf("%w: index entry %d count %d out of range", ErrCorrupt, i, count)
		}
		wantOff = off + sz
		total += count
		ir.idx = append(ir.idx, indexEnt2{off: off, size: sz, count: count})
		ir.cum = append(ir.cum, total)
	}
	if wantOff != ir.fOff {
		return fmt.Errorf("%w: index entries end at %d, footer starts at %d", ErrCorrupt, wantOff, ir.fOff)
	}
	declared, err := next("record total")
	if err != nil {
		return err
	}
	if pos != len(body) {
		return fmt.Errorf("%w: %d trailing footer bytes", ErrCorrupt, len(body)-pos)
	}
	if declared != total {
		return fmt.Errorf("%w: footer total %d != entry sum %d", ErrCorrupt, declared, total)
	}
	ir.total = total
	return nil
}

// hdrMin2 is the smallest possible data-block wire size: kind, four 1-byte
// uvarints, codec byte, CRC, and a minimal 5-byte single-record payload.
const hdrMin2 = 1 + 4 + 1 + 4 + minEncRecord2

// ra2 returns an io.ReaderAt view even when only data is held.
func (ir *IndexedReader) ra2() io.ReaderAt {
	if ir.ra != nil {
		return ir.ra
	}
	return bytesReaderAt(ir.data)
}

type bytesReaderAt []byte

func (b bytesReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(b)) {
		return 0, io.EOF
	}
	n := copy(p, b[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// SetMetrics routes the reader's trace.v2.* counters into m (nil disables).
func (ir *IndexedReader) SetMetrics(m *obs.Registry) { ir.m = newV2Metrics(m) }

// Name returns the trace's benchmark name from the header.
func (ir *IndexedReader) Name() string { return ir.name }

// Target returns the trace's codegen target from the header.
func (ir *IndexedReader) Target() string { return ir.target }

// Count returns the file's total record count, known up front from the
// footer index.
func (ir *IndexedReader) Count() uint64 { return ir.total }

// Decoded returns the number of records returned so far.
func (ir *IndexedReader) Decoded() uint64 { return ir.read }

// Blocks returns the number of data blocks in the file.
func (ir *IndexedReader) Blocks() int { return len(ir.idx) }

// WireBytes returns the on-wire byte span of the file's data blocks
// (headers plus compressed payloads).
func (ir *IndexedReader) WireBytes() uint64 { return ir.fOff - ir.hdrLen }

// Close releases the file mapping, if any. The reader is unusable after.
func (ir *IndexedReader) Close() error {
	if ir.unmap == nil {
		return nil
	}
	u := ir.unmap
	ir.unmap = nil
	ir.data = nil
	return u()
}

// parseBlockHdr parses a data-block header from the start of b, returning
// the header and the offset of the payload within b.
func parseBlockHdr(b []byte) (blockHdr2, int, error) {
	var h blockHdr2
	if len(b) < 1 || b[0] != blockKindData {
		return h, 0, fmt.Errorf("%w: block does not start with the data kind byte", ErrCorrupt)
	}
	pos := 1
	next := func(what string) (uint64, error) {
		v, k := binary.Uvarint(b[pos:])
		if k <= 0 {
			return 0, fmt.Errorf("%w: block %s truncated or overlong", ErrCorrupt, what)
		}
		pos += k
		return v, nil
	}
	var err error
	if h.count, err = next("count"); err != nil {
		return h, 0, err
	}
	if h.rawLen, err = next("raw length"); err != nil {
		return h, 0, err
	}
	if pos >= len(b) {
		return h, 0, fmt.Errorf("%w: block codec truncated", ErrCorrupt)
	}
	h.codec = BlockCodec(b[pos])
	pos++
	if h.encLen, err = next("encoded length"); err != nil {
		return h, 0, err
	}
	if h.firstPC, err = next("firstPC"); err != nil {
		return h, 0, err
	}
	if h.firstAddr, err = next("firstAddr"); err != nil {
		return h, 0, err
	}
	if pos+4 > len(b) {
		return h, 0, fmt.Errorf("%w: block crc truncated", ErrCorrupt)
	}
	h.crc = binary.LittleEndian.Uint32(b[pos:])
	pos += 4
	if err := h.validate(); err != nil {
		return h, 0, err
	}
	return h, pos, nil
}

// stageBlock fetches block i, verifies it against its index entry, and
// stages its payload in dec. fetch/blockBuf provide the reusable buffers, so
// any cursor (the reader's own, or a parallel worker's) can stage blocks.
func (ir *IndexedReader) stageBlock(i int, fetch *blockReader, blockBuf *[]byte, dec *blockDec, m *v2Metrics) error {
	e := ir.idx[i]
	b, err := ir.readAt(blockBuf, e.off, int(e.size))
	if err != nil {
		return fmt.Errorf("trace: vlt2 block %d: %w", i, err)
	}
	h, payloadOff, err := parseBlockHdr(b)
	if err != nil {
		return fmt.Errorf("trace: vlt2 block %d: %w", i, err)
	}
	if h.count != e.count {
		return fmt.Errorf("%w: block %d header count %d != index count %d", ErrCorrupt, i, h.count, e.count)
	}
	if uint64(payloadOff)+h.encLen != e.size {
		return fmt.Errorf("%w: block %d wire size %d != index size %d", ErrCorrupt, i, uint64(payloadOff)+h.encLen, e.size)
	}
	raw, err := fetch.decompress(&h, b[payloadOff:uint64(payloadOff)+h.encLen])
	if err != nil {
		return fmt.Errorf("trace: vlt2 block %d: %w", i, err)
	}
	dec.reset(raw, &h)
	m.blocks.Inc()
	m.rawBytes.Add(int64(h.rawLen))
	m.encBytes.Add(int64(h.encLen))
	return nil
}

// SeekRecord positions the reader so the next record returned is record n
// (0-based). n == Count() positions at EOF. Seeking lands on the containing
// block in O(log blocks) and discards only that block's preceding records.
func (ir *IndexedReader) SeekRecord(n uint64) error {
	if n > ir.total {
		return fmt.Errorf("trace: seek to record %d beyond count %d", n, ir.total)
	}
	ir.err = nil
	if n == ir.total {
		ir.cur = len(ir.idx)
		ir.dec = blockDec{}
		return nil
	}
	// Find the block b with cum[b] <= n < cum[b+1].
	b := sort.Search(len(ir.idx), func(i int) bool { return ir.cum[i+1] > n })
	if err := ir.stageBlock(b, &ir.fetch, &ir.blockBuf, &ir.dec, &ir.m); err != nil {
		ir.err = err
		return err
	}
	ir.cur = b
	var scratch [64]Record
	for skip := n - ir.cum[b]; skip > 0; {
		k, err := ir.dec.decodeInto(scratch[:min(skip, uint64(len(scratch)))])
		if err != nil {
			ir.err = fmt.Errorf("trace: vlt2 block %d: %w", b, err)
			return ir.err
		}
		skip -= uint64(k)
	}
	return nil
}

// Next decodes the next record; io.EOF after the final record. The pointer
// is invalidated by the following Next or NextBatch call.
func (ir *IndexedReader) Next() (*Record, error) {
	var one [1]Record
	n, err := ir.NextBatch(one[:])
	if n == 0 {
		if err == nil {
			err = io.EOF
		}
		return nil, err
	}
	ir.rec = one[0]
	return &ir.rec, err
}

// NextBatch decodes up to len(buf) records from the current position.
func (ir *IndexedReader) NextBatch(buf []Record) (int, error) {
	if ir.err != nil {
		return 0, ir.err
	}
	n := 0
	for n < len(buf) {
		if ir.dec.remaining() == 0 {
			// The staged block is spent; ir.cur still names it until the
			// next one is staged.
			if ir.dec.p != nil {
				ir.cur++
			}
			if ir.cur >= len(ir.idx) {
				break
			}
			if err := ir.stageBlock(ir.cur, &ir.fetch, &ir.blockBuf, &ir.dec, &ir.m); err != nil {
				ir.err = err
				if n > 0 {
					return n, nil
				}
				return 0, err
			}
		}
		k, err := ir.dec.decodeInto(buf[n:])
		n += k
		ir.read += uint64(k)
		ir.m.records.Add(int64(k))
		if err != nil {
			ir.err = fmt.Errorf("trace: vlt2 block %d: %w", ir.cur, err)
			if n > 0 {
				return n, nil
			}
			return 0, ir.err
		}
	}
	if n == 0 {
		return 0, io.EOF
	}
	return n, nil
}
