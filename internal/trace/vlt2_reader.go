package trace

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"

	"lvp/internal/isa"
	"lvp/internal/obs"
)

// Sequential VLT2 decoding: block-at-a-time from any io.Reader, front to
// back, no index needed. The hot path is the blockDec loop, shared with the
// indexed and parallel readers, which decodes records straight out of an
// in-memory payload slice into the caller's batch buffer — no bufio
// bookkeeping, no per-byte interface dispatch, no intermediate copy.

// blockHdr2 is one parsed data-block header.
type blockHdr2 struct {
	count     uint64
	rawLen    uint64
	codec     BlockCodec
	encLen    uint64
	firstPC   uint64
	firstAddr uint64
	crc       uint32
}

// hdrSize2 bounds an encoded block header: kind + codec + crc plus five
// maximal uvarints.
const hdrSize2 = 2 + 4 + 5*binary.MaxVarintLen64

// appendWire re-serializes the header's CRC-covered prefix — the kind byte
// through firstAddr, with canonical minimal uvarints — exactly as the
// writer lays it down. The block CRC runs over these bytes followed by the
// uncompressed payload, so a corrupted header field (or a field re-encoded
// as an overlong varint) fails the checksum instead of silently shifting
// every decoded record.
func (h *blockHdr2) appendWire(dst []byte) []byte {
	dst = append(dst, blockKindData)
	dst = appendUvarint(dst, h.count)
	dst = appendUvarint(dst, h.rawLen)
	dst = append(dst, byte(h.codec))
	dst = appendUvarint(dst, h.encLen)
	dst = appendUvarint(dst, h.firstPC)
	dst = appendUvarint(dst, h.firstAddr)
	return dst
}

// validate applies the structural bounds that hold for every well-formed
// block, rejecting hostile lengths before any allocation happens.
func (h *blockHdr2) validate() error {
	if h.count < 1 || h.count > MaxBlockRecords {
		return fmt.Errorf("%w: block record count %d out of range [1, %d]", ErrCorrupt, h.count, MaxBlockRecords)
	}
	if h.rawLen > MaxBlockBytes {
		return fmt.Errorf("%w: block payload length %d exceeds %d", ErrCorrupt, h.rawLen, MaxBlockBytes)
	}
	if h.codec > CodecFixedFlate {
		return fmt.Errorf("%w: unknown block codec %d", ErrCorrupt, uint8(h.codec))
	}
	if h.codec&codecFixedBit != 0 {
		if h.rawLen != h.count*fixedRecSize2 {
			return fmt.Errorf("%w: fixed block payload length %d != %d records × %d", ErrCorrupt, h.rawLen, h.count, fixedRecSize2)
		}
	} else if h.rawLen < h.count*minEncRecord2 || h.rawLen > h.count*maxEncRecord2 {
		return fmt.Errorf("%w: block payload length %d implausible for %d records", ErrCorrupt, h.rawLen, h.count)
	}
	if h.codec&codecFlateBit != 0 {
		if h.encLen < 1 || h.encLen >= h.rawLen {
			return fmt.Errorf("%w: flate block encoded length %d outside [1, %d)", ErrCorrupt, h.encLen, h.rawLen)
		}
	} else if h.encLen != h.rawLen {
		return fmt.Errorf("%w: raw block encoded length %d != payload length %d", ErrCorrupt, h.encLen, h.rawLen)
	}
	return nil
}

// blockDec decodes records from one uncompressed block payload. It is a
// value type so readers can reset it per block without allocation.
type blockDec struct {
	p        []byte
	off      int
	n        int // records decoded
	count    int // records in the block
	prevPC   uint64
	prevAddr uint64
	firstPC  uint64
	fixed    bool // CodecFixed payload
}

func (d *blockDec) reset(p []byte, h *blockHdr2) {
	*d = blockDec{p: p, count: int(h.count), prevPC: h.firstPC, prevAddr: h.firstAddr, firstPC: h.firstPC,
		fixed: h.codec&codecFixedBit != 0}
}

// remaining reports how many records are still undecoded in the block.
func (d *blockDec) remaining() int { return d.count - d.n }

// uvarintMore finishes a uvarint whose first byte v had the continuation bit
// set; off points at the second byte. It returns the value and the new
// offset, or a negative offset on truncation/overflow.
//
// When 8 bytes are readable at off it decodes word-at-a-time: one 64-bit
// load, find the first stop byte with a mask, then extract every 7-bit group
// with shift/mask — no serial per-byte loop. The byte loop below remains for
// payload tails and 10-byte varints.
func uvarintMore(p []byte, off int, v uint64) (uint64, int) {
	if off+8 <= len(p) {
		x := binary.LittleEndian.Uint64(p[off:])
		if m := ^x & 0x8080808080808080; m != 0 {
			n := bits.TrailingZeros64(m) >> 3 // continuation bytes beyond the first: 0..7
			if n < 7 {
				x &= 1<<(8*uint(n)+8) - 1
			}
			w := x & 0x7f
			w |= x >> 1 & (0x7f << 7)
			w |= x >> 2 & (0x7f << 14)
			w |= x >> 3 & (0x7f << 21)
			w |= x >> 4 & (0x7f << 28)
			w |= x >> 5 & (0x7f << 35)
			w |= x >> 6 & (0x7f << 42)
			w |= x >> 7 & (0x7f << 49)
			return v&0x7f | w<<7, off + n + 1
		}
	}
	v &= 0x7f
	for shift := uint(7); shift < 64; shift += 7 {
		if off >= len(p) {
			return 0, -1
		}
		b := p[off]
		off++
		if b < 0x80 {
			if shift == 63 && b > 1 {
				return 0, -1 // overflows uint64
			}
			return v | uint64(b)<<shift, off
		}
		v |= uint64(b&0x7f) << shift
	}
	return 0, -1 // more than 10 bytes
}

// uvarintFast decodes the uvarint at p[off:] in one 64-bit load: the first
// stop byte is found with a mask, the value bytes are kept with a
// lowest-set-bit mask, and all eight 7-bit groups extract as a shift/mask
// tree — branchless over 1..8-byte varints, so varying widths cost no
// mispredictions. 9- and 10-byte varints (full 64-bit values are common in
// the value field) take a slow tail that reads up to two more bytes. The
// caller must guarantee off+10 <= len(p); a malformed varint (more than 10
// bytes, or a 10th byte overflowing uint64) returns a negative offset for
// the checked decoder to report.
func uvarintFast(p []byte, off int) (uint64, int) {
	x := binary.LittleEndian.Uint64(p[off:])
	m := ^x & 0x8080808080808080
	if m == 0 {
		// All eight bytes are continuation bytes: extract their 56 bits,
		// then finish from the ninth (and rarely tenth) byte.
		w := x&0x7f | x>>1&(0x7f<<7) | x>>2&(0x7f<<14) | x>>3&(0x7f<<21) |
			x>>4&(0x7f<<28) | x>>5&(0x7f<<35) | x>>6&(0x7f<<42) | x>>7&(0x7f<<49)
		b8 := p[off+8]
		if b8 < 0x80 {
			return w | uint64(b8)<<56, off + 9
		}
		b9 := p[off+9]
		if b9 > 1 {
			return 0, -1 // more than 10 bytes, or overflows uint64
		}
		return w | uint64(b8&0x7f)<<56 | uint64(b9)<<63, off + 10
	}
	lsb := m & -m
	x &= lsb<<1 - 1 // keep the stop byte and everything below it
	a := x&0x7f | x>>1&(0x7f<<7)
	b := x>>2&(0x7f<<14) | x>>3&(0x7f<<21)
	c := x>>4&(0x7f<<28) | x>>5&(0x7f<<35)
	d := x>>6&(0x7f<<42) | x>>7&(0x7f<<49)
	return a | b | c | d, off + bits.TrailingZeros64(m)>>3 + 1
}

// fastSlack2 is the payload headroom the unchecked decode loop requires: a
// maximal record plus one 8-byte varint load reaching past its last field.
const fastSlack2 = maxEncRecord2 + 9

// decodeInto decodes up to len(buf) records from the block into buf and
// returns how many it produced. Errors name the record's index within the
// block; callers add file-level context. After the final record it verifies
// the payload was consumed exactly.
//
// Two loops share the work. The fast loop runs while fastSlack2 payload
// bytes remain, which puts every byte and word access below in bounds by
// construction — no per-field truncation checks — and decodes varints with
// uvarintFast. It commits nothing until a record fully parses; on any
// anomaly (malformed field, rare 9/10-byte varint) it simply stops, and the
// checked loop re-parses the same record byte-by-byte, either producing it
// or reporting the precise error. The checked loop also finishes each
// block's tail. Both loops apply identical validity rules.
func (d *blockDec) decodeInto(buf []Record) (int, error) {
	if d.fixed {
		return d.decodeFixed(buf)
	}
	p := d.p
	off := d.off
	k := 0
	// The delta state lives in locals inside the fast loop: left in d, each
	// record's PC would round-trip through a store-to-load forward on its
	// serial dependency chain (pc[i+1] = pc[i] + delta). The checked path
	// below still works on d directly; the loops sync at the boundary.
	prevPC, prevAddr, n := d.prevPC, d.prevAddr, d.n
	for k < len(buf) && n < d.count {
		// One counter bounds the fast loop: the records wanted, the records
		// left in the block, and a byte-conservative floor on how many
		// maximal records certainly leave fastSlack2 of headroom. Dividing
		// by the max record size is pessimistic, so the outer loop
		// recomputes the bound a few times per block; each recomputation is
		// three compares amortized over dozens of records.
		lim := min(len(buf)-k, d.count-n, (len(p)-off-fastSlack2)/maxEncRecord2+1)
		if len(p)-off < fastSlack2 {
			lim = 0
		}
		for ; lim > 0; lim-- {
			x4 := binary.LittleEndian.Uint32(p[off:])
			b0 := byte(x4)
			op := b0 & 0x7f
			fld := x4 >> 8
			class := fld >> fClass & 7
			if int(op) >= isa.NumOps || fld>>20 != 0 || class >= uint32(isa.NumLoadClasses) {
				break
			}
			shape := opShape[op]
			var (
				o         int
				v         uint64
				pc, addr  uint64
				val, targ uint64
				imm       int64
				nv        int
				size      uint8
			)
			o = off + 4
			// Each field reads its first byte inline — deltas are one byte
			// in the common case and the branch predicts well — picks up a
			// second byte inline, and hands 3+-byte varints to uvarintFast.
			v = uint64(p[o])
			o++
			if v >= 0x80 {
				if b := uint64(p[o]); b < 0x80 {
					v = v&0x7f | b<<7
					o++
				} else if v, o = uvarintFast(p, o-1); o < 0 {
					break
				}
			}
			pc = prevPC + uint64(unzigzag(v))
			if fld&(1<<fHasImm) != 0 {
				v = uint64(p[o])
				o++
				if v >= 0x80 {
					if b := uint64(p[o]); b < 0x80 {
						v = v&0x7f | b<<7
						o++
					} else if v, o = uvarintFast(p, o-1); o < 0 {
						break
					}
				}
				imm = unzigzag(v)
				if shape&shBranch != 0 {
					imm += int64(pc)
				}
				if imm == 0 {
					break
				}
			}
			addr = prevAddr
			if shape&shMem != 0 {
				if fld&(1<<fHasVal) != 0 {
					break
				}
				size = p[o]
				o++
				v = uint64(p[o])
				o++
				if v >= 0x80 {
					if b := uint64(p[o]); b < 0x80 {
						v = v&0x7f | b<<7
						o++
					} else if v, o = uvarintFast(p, o-1); o < 0 {
						break
					}
				}
				addr += uint64(unzigzag(v))
				nv = int(p[o])
				o++
				if nv > 8 || (nv > 0 && p[o+nv-1] == 0) {
					break
				}
				val = binary.LittleEndian.Uint64(p[o:]) & (^uint64(0) >> (8 * (8 - uint(nv))))
				o += nv
			} else if fld&(1<<fHasVal) != 0 {
				nv = int(p[o])
				o++
				if nv == 0 || nv > 8 || p[o+nv-1] == 0 {
					break
				}
				val = binary.LittleEndian.Uint64(p[o:]) & (^uint64(0) >> (8 * (8 - uint(nv))))
				o += nv
			}
			if shape&shBranch != 0 {
				v = uint64(p[o])
				o++
				if v >= 0x80 {
					if b := uint64(p[o]); b < 0x80 {
						v = v&0x7f | b<<7
						o++
					} else if v, o = uvarintFast(p, o-1); o < 0 {
						break
					}
				}
				targ = pc + uint64(unzigzag(v))
			}
			if n == 0 && pc != d.firstPC {
				break
			}
			prevPC = pc
			if shape&shMem != 0 {
				prevAddr = addr
			} else {
				addr = 0
			}
			r := &buf[k]
			r.PC = pc
			r.Addr = addr
			r.Value = val
			r.Imm = imm
			r.Targ = targ
			storeRecTail(r, op, uint8(fld&31), uint8(fld>>fRa&31), uint8(fld>>fRb&31), uint8(class), size, b0>>7)
			k++
			n++
			off = o
		}
		d.prevPC, d.prevAddr, d.n = prevPC, prevAddr, n
		if k >= len(buf) || n >= d.count {
			break
		}
		// Every byte access below is bounds-checked against len(p) via
		// the varint helpers and the explicit guards, so a lying header
		// or truncated payload fails cleanly rather than panicking.
		if off+4 > len(p) {
			return k, d.fail(off, "truncated record header")
		}
		x4 := binary.LittleEndian.Uint32(p[off:])
		b0 := byte(x4)
		op := b0 & 0x7f
		if int(op) >= isa.NumOps {
			return k, d.fail(off, "unknown opcode")
		}
		bits := x4 >> 8
		if bits>>20 != 0 {
			return k, d.fail(off, "reserved field bits set")
		}
		class := (bits >> fClass) & 7
		if class >= uint32(isa.NumLoadClasses) {
			return k, d.fail(off, "load class out of range")
		}
		off += 4

		if off >= len(p) {
			return k, d.fail(off, "truncated pc delta")
		}
		v := uint64(p[off])
		off++
		if v >= 0x80 {
			if v, off = uvarintMore(p, off, v); off < 0 {
				return k, d.fail(len(p), "bad pc delta varint")
			}
		}
		pc := d.prevPC + uint64(unzigzag(v))
		if d.n == 0 && pc != d.firstPC {
			return k, d.fail(off, "first record disagrees with firstPC anchor")
		}
		d.prevPC = pc

		shape := opShape[op]
		var imm int64
		if bits&(1<<fHasImm) != 0 {
			if off >= len(p) {
				return k, d.fail(off, "truncated imm")
			}
			v = uint64(p[off])
			off++
			if v >= 0x80 {
				if v, off = uvarintMore(p, off, v); off < 0 {
					return k, d.fail(len(p), "bad imm varint")
				}
			}
			imm = unzigzag(v)
			if shape&shBranch != 0 {
				imm += int64(pc)
			}
			if imm == 0 {
				return k, d.fail(off, "imm flag set on zero immediate")
			}
		}
		var addr, val, targ uint64
		var size uint8
		if shape&shMem != 0 {
			if bits&(1<<fHasVal) != 0 {
				return k, d.fail(off, "value flag on a memory record")
			}
			if off >= len(p) {
				return k, d.fail(off, "truncated size")
			}
			size = p[off]
			off++
			if off >= len(p) {
				return k, d.fail(off, "truncated addr delta")
			}
			v = uint64(p[off])
			off++
			if v >= 0x80 {
				if v, off = uvarintMore(p, off, v); off < 0 {
					return k, d.fail(len(p), "bad addr delta varint")
				}
			}
			addr = d.prevAddr + uint64(unzigzag(v))
			d.prevAddr = addr
			if val, off = d.checkedValue(p, off); off < 0 {
				return k, d.fail(len(p), "bad value field")
			}
		} else if bits&(1<<fHasVal) != 0 {
			if val, off = d.checkedValue(p, off); off < 0 {
				return k, d.fail(len(p), "bad value field")
			}
			if val == 0 {
				return k, d.fail(off, "value flag set on zero value")
			}
		}
		if shape&shBranch != 0 {
			if off >= len(p) {
				return k, d.fail(off, "truncated branch target")
			}
			v = uint64(p[off])
			off++
			if v >= 0x80 {
				if v, off = uvarintMore(p, off, v); off < 0 {
					return k, d.fail(len(p), "bad branch target varint")
				}
			}
			targ = pc + uint64(unzigzag(v))
		}

		buf[k] = Record{
			PC: pc, Addr: addr, Value: val, Imm: imm,
			Op: isa.Op(op), Rd: isa.Reg(bits & 31), Ra: isa.Reg((bits >> fRa) & 31), Rb: isa.Reg((bits >> fRb) & 31),
			Class: isa.LoadClass(class), Size: size, Taken: b0&0x80 != 0, Targ: targ,
		}
		k++
		d.n++
		prevPC, prevAddr, n = d.prevPC, d.prevAddr, d.n
	}
	d.off = off
	if d.n == d.count && off != len(p) {
		return k, fmt.Errorf("%w: block has %d trailing payload bytes after record %d", ErrCorrupt, len(p)-off, d.count-1)
	}
	return k, nil
}

func (d *blockDec) fail(off int, msg string) error {
	return fmt.Errorf("%w: record %d (payload offset %d): %s", ErrCorrupt, d.n, off, msg)
}

// checkedValue decodes a length-prefixed value field with full bounds
// checks, mirroring the fast loop's masked-load decode byte by byte. It
// returns a negative offset on truncation, an over-long length byte, or a
// non-minimal encoding (zero top byte).
func (d *blockDec) checkedValue(p []byte, off int) (uint64, int) {
	if off >= len(p) {
		return 0, -1
	}
	n := int(p[off])
	off++
	if n > 8 || off+n > len(p) {
		return 0, -1
	}
	var v uint64
	for j := 0; j < n; j++ {
		v |= uint64(p[off+j]) << (8 * uint(j))
	}
	if n > 0 && p[off+n-1] == 0 {
		return 0, -1
	}
	return v, off + n
}

// decodeFixed decodes up to len(buf) records from a CodecFixed payload. The
// header validation already pinned the payload to exactly count ×
// fixedRecSize2 bytes, so every access below is in bounds by construction.
// Records are validated on the wire first — field ranges, the zero pad byte,
// and the canonical Addr/Targ rules shared with the varint encoding — then
// copied in bulk (one memcpy on little-endian hosts, per-field stores
// elsewhere).
func (d *blockDec) decodeFixed(buf []Record) (int, error) {
	p := d.p
	k := min(len(buf), d.count-d.n)
	base := d.off
	for i := 0; i < k; i++ {
		q := base + i*fixedRecSize2
		// One word covers the byte fields: op | rd ra rb | class size | taken pad.
		w := binary.LittleEndian.Uint64(p[q+32:])
		op := uint8(w)
		if int(op) >= isa.NumOps {
			return 0, d.failFixed(i, "unknown opcode")
		}
		if w&0xe0e0e000 != 0 {
			return 0, d.failFixed(i, "register out of range")
		}
		if uint8(w>>32) >= uint8(isa.NumLoadClasses) {
			return 0, d.failFixed(i, "load class out of range")
		}
		if w>>48 > 1 { // taken must be 0 or 1 and the pad byte zero
			return 0, d.failFixed(i, "taken flag or pad byte invalid")
		}
		shape := opShape[op]
		if shape&shMem == 0 && binary.LittleEndian.Uint64(p[q+8:]) != 0 {
			return 0, d.failFixed(i, "address on a non-memory record")
		}
		if shape&shBranch == 0 && binary.LittleEndian.Uint64(p[q+40:]) != 0 {
			return 0, d.failFixed(i, "branch target on a non-branch record")
		}
	}
	if k > 0 && d.n == 0 && binary.LittleEndian.Uint64(p[base:]) != d.firstPC {
		return 0, d.failFixed(0, "first record disagrees with firstPC anchor")
	}
	if rb := recordBytes(buf[:k]); rb != nil {
		copy(rb, p[base:base+k*fixedRecSize2])
	} else {
		for i := 0; i < k; i++ {
			q := base + i*fixedRecSize2
			r := &buf[i]
			r.PC = binary.LittleEndian.Uint64(p[q:])
			r.Addr = binary.LittleEndian.Uint64(p[q+8:])
			r.Value = binary.LittleEndian.Uint64(p[q+16:])
			r.Imm = int64(binary.LittleEndian.Uint64(p[q+24:]))
			storeRecTail(r, p[q+32], p[q+33], p[q+34], p[q+35], p[q+36], p[q+37], p[q+38])
			r.Targ = binary.LittleEndian.Uint64(p[q+40:])
		}
	}
	d.off = base + k*fixedRecSize2
	d.n += k
	return k, nil
}

func (d *blockDec) failFixed(i int, msg string) error {
	return fmt.Errorf("%w: record %d (payload offset %d): %s", ErrCorrupt, d.n+i, d.off+i*fixedRecSize2, msg)
}

// v2Metrics is the trace.v2.* counter set, resolved once per reader so the
// per-block updates are single atomic adds (and no-ops on a nil registry).
type v2Metrics struct {
	blocks   *obs.Counter // trace.v2.blocks: data blocks decoded
	rawBytes *obs.Counter // trace.v2.bytes.raw: payload bytes after decompression
	encBytes *obs.Counter // trace.v2.bytes.compressed: payload bytes on the wire
	records  *obs.Counter // trace.v2.records: records decoded
	busy     *obs.Gauge   // trace.v2.par.busy: concurrent block decodes (parallel reader)
}

func newV2Metrics(m *obs.Registry) v2Metrics {
	return v2Metrics{
		blocks:   m.Counter("trace.v2.blocks"),
		rawBytes: m.Counter("trace.v2.bytes.raw"),
		encBytes: m.Counter("trace.v2.bytes.compressed"),
		records:  m.Counter("trace.v2.records"),
		busy:     m.Gauge("trace.v2.par.busy"),
	}
}

// blockReader owns the reusable buffers for fetching one block's payload:
// the on-wire bytes, the decompressed bytes, and the flate state. All three
// are reused across blocks, so steady-state reads allocate nothing.
type blockReader struct {
	encBuf []byte
	rawBuf []byte
	hdrBuf []byte
	encRd  *bytes.Reader
	fr     io.ReadCloser
}

// grow returns b resized to n, reusing capacity when it can.
func grow(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

// decompress materialises a block's raw payload from its on-wire bytes,
// verifying the length and CRC. The returned slice aliases the reusable
// buffers and is valid until the next call.
func (br *blockReader) decompress(h *blockHdr2, enc []byte) ([]byte, error) {
	raw := enc
	if h.codec&codecFlateBit != 0 {
		if br.encRd == nil {
			br.encRd = bytes.NewReader(nil)
		}
		br.encRd.Reset(enc)
		if br.fr == nil {
			br.fr = flate.NewReader(br.encRd)
		} else if err := br.fr.(flate.Resetter).Reset(br.encRd, nil); err != nil {
			return nil, err
		}
		br.rawBuf = grow(br.rawBuf, int(h.rawLen))
		if _, err := io.ReadFull(br.fr, br.rawBuf); err != nil {
			return nil, fmt.Errorf("%w: flate payload: %v", ErrCorrupt, err)
		}
		// The compressed stream must end exactly at rawLen bytes.
		var one [1]byte
		if n, _ := br.fr.Read(one[:]); n != 0 {
			return nil, fmt.Errorf("%w: flate payload longer than declared %d bytes", ErrCorrupt, h.rawLen)
		}
		raw = br.rawBuf
	}
	br.hdrBuf = h.appendWire(br.hdrBuf[:0])
	if crc32.Update(crc32.Checksum(br.hdrBuf, castagnoli), castagnoli, raw) != h.crc {
		return nil, ErrChecksum
	}
	return raw, nil
}

// Reader2 decodes a VLT2 stream sequentially from any io.Reader: blocks are
// self-describing, so no seeking and no footer access is needed — the footer
// is cross-checked against the blocks actually decoded when the stream
// reaches it. Next and NextBatch are allocation-free at steady state.
type Reader2 struct {
	br     *bufio.Reader
	name   string
	target string
	hdrLen uint64 // file-header bytes; the first block's offset
	read   uint64
	total  uint64 // from the footer; valid once done
	blocks uint64 // data blocks decoded so far
	bytes  uint64 // on-wire block bytes consumed (header + payload)

	dec    blockDec
	fetch  blockReader
	hdrTmp blockHdr2
	rec    Record
	m      v2Metrics
	done   bool
	err    error // sticky decode error
}

// NewReader2 reads and validates the VLT2 header from r and returns a
// sequential reader positioned at the first record.
func NewReader2(r io.Reader) (*Reader2, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	var m [5]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(m[:4]) != magic2 {
		return nil, ErrBadMagic
	}
	if m[4] != version2 {
		return nil, fmt.Errorf("%w: %d", ErrVersion, m[4])
	}
	r2 := &Reader2{br: br, m: newV2Metrics(nil)}
	var err error
	if r2.name, err = readString(br); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	if r2.target, err = readString(br); err != nil {
		return nil, fmt.Errorf("trace: reading target: %w", err)
	}
	r2.hdrLen = uint64(len(magic2)) + 1 +
		uint64(uvarintLen(uint64(len(r2.name)))+len(r2.name)) +
		uint64(uvarintLen(uint64(len(r2.target)))+len(r2.target))
	return r2, nil
}

// SetMetrics routes the reader's trace.v2.* counters into m (nil disables).
func (r *Reader2) SetMetrics(m *obs.Registry) { r.m = newV2Metrics(m) }

// Name returns the trace's benchmark name from the header.
func (r *Reader2) Name() string { return r.name }

// Target returns the trace's codegen target from the header.
func (r *Reader2) Target() string { return r.target }

// Count returns the file's total record count, which a sequential VLT2
// reader only learns from the footer: it is 0 until the stream has been
// fully drained. The indexed reader knows it up front.
func (r *Reader2) Count() uint64 {
	if !r.done {
		return 0
	}
	return r.total
}

// Decoded returns the number of records decoded so far.
func (r *Reader2) Decoded() uint64 { return r.read }

// readBlockHeader parses the next block's kind and header. A footer kind
// byte switches to footer parsing, which cross-checks the index against the
// blocks this reader actually decoded and consumes the trailer.
func (r *Reader2) readBlockHeader() (more bool, err error) {
	kind, err := r.br.ReadByte()
	if err != nil {
		return false, fmt.Errorf("trace: vlt2 block %d kind: %w", r.blocks, err)
	}
	if kind == blockKindFooter {
		if err := r.checkFooter(); err != nil {
			return false, err
		}
		r.done = true
		return false, nil
	}
	if kind != blockKindData {
		return false, fmt.Errorf("%w: unknown block kind %d", ErrCorrupt, kind)
	}
	h := &r.hdrTmp
	if h.count, err = binary.ReadUvarint(r.br); err != nil {
		return false, fmt.Errorf("trace: vlt2 block %d count: %w", r.blocks, err)
	}
	if h.rawLen, err = binary.ReadUvarint(r.br); err != nil {
		return false, fmt.Errorf("trace: vlt2 block %d raw length: %w", r.blocks, err)
	}
	codec, err := r.br.ReadByte()
	if err != nil {
		return false, fmt.Errorf("trace: vlt2 block %d codec: %w", r.blocks, err)
	}
	h.codec = BlockCodec(codec)
	if h.encLen, err = binary.ReadUvarint(r.br); err != nil {
		return false, fmt.Errorf("trace: vlt2 block %d encoded length: %w", r.blocks, err)
	}
	if h.firstPC, err = binary.ReadUvarint(r.br); err != nil {
		return false, fmt.Errorf("trace: vlt2 block %d firstPC: %w", r.blocks, err)
	}
	if h.firstAddr, err = binary.ReadUvarint(r.br); err != nil {
		return false, fmt.Errorf("trace: vlt2 block %d firstAddr: %w", r.blocks, err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(r.br, crc[:]); err != nil {
		return false, fmt.Errorf("trace: vlt2 block %d crc: %w", r.blocks, err)
	}
	h.crc = binary.LittleEndian.Uint32(crc[:])
	if err := h.validate(); err != nil {
		return false, fmt.Errorf("trace: vlt2 block %d: %w", r.blocks, err)
	}
	return true, nil
}

// loadBlock fetches, verifies and stages the next data block for decoding.
// It returns false at the footer.
func (r *Reader2) loadBlock() (bool, error) {
	more, err := r.readBlockHeader()
	if err != nil || !more {
		return false, err
	}
	h := &r.hdrTmp
	r.fetch.encBuf = grow(r.fetch.encBuf, int(h.encLen))
	if _, err := io.ReadFull(r.br, r.fetch.encBuf); err != nil {
		return false, fmt.Errorf("trace: vlt2 block %d payload: %w", r.blocks, err)
	}
	raw, err := r.fetch.decompress(h, r.fetch.encBuf)
	if err != nil {
		return false, fmt.Errorf("trace: vlt2 block %d: %w", r.blocks, err)
	}
	r.dec.reset(raw, h)
	r.blocks++
	r.bytes += blockWireSize(h)
	r.m.blocks.Inc()
	r.m.rawBytes.Add(int64(h.rawLen))
	r.m.encBytes.Add(int64(h.encLen))
	return true, nil
}

// blockWireSize is a block's on-wire size: header plus payload.
func blockWireSize(h *blockHdr2) uint64 {
	return uint64(2+4+uvarintLen(h.count)+uvarintLen(h.rawLen)+uvarintLen(h.encLen)+
		uvarintLen(h.firstPC)+uvarintLen(h.firstAddr)) + h.encLen
}

// footerUvarint reads one uvarint of the footer, folding its raw bytes into
// the running footer CRC.
func (r *Reader2) footerUvarint(crc *uint32) (uint64, error) {
	var scratch [binary.MaxVarintLen64]byte
	n := 0
	for {
		b, err := r.br.ReadByte()
		if err != nil {
			return 0, err
		}
		scratch[n] = b
		n++
		if b < 0x80 {
			break
		}
		if n == len(scratch) {
			return 0, fmt.Errorf("%w: footer varint overflow", ErrCorrupt)
		}
	}
	*crc = crc32.Update(*crc, castagnoli, scratch[:n])
	v, k := binary.Uvarint(scratch[:n])
	if k <= 0 {
		return 0, fmt.Errorf("%w: footer varint overflow", ErrCorrupt)
	}
	return v, nil
}

// checkFooter parses the footer (after its kind byte) and the trailer,
// verifying the footer CRC and cross-checking the index against the blocks
// the reader actually decoded: the declared block count, entry contiguity
// from the first block's offset, per-entry record counts, the record total,
// and the trailer's footer offset must all agree with the decoded stream.
func (r *Reader2) checkFooter() error {
	crc := crc32.Update(0, castagnoli, []byte{blockKindFooter})
	nblocks, err := r.footerUvarint(&crc)
	if err != nil {
		return fmt.Errorf("trace: vlt2 footer: %w", err)
	}
	if nblocks != r.blocks {
		return fmt.Errorf("%w: footer declares %d blocks, decoded %d", ErrCorrupt, nblocks, r.blocks)
	}
	next := r.hdrLen
	var counted uint64
	for i := uint64(0); i < nblocks; i++ {
		off, err := r.footerUvarint(&crc)
		if err != nil {
			return fmt.Errorf("trace: vlt2 footer entry %d: %w", i, err)
		}
		size, err := r.footerUvarint(&crc)
		if err != nil {
			return fmt.Errorf("trace: vlt2 footer entry %d: %w", i, err)
		}
		count, err := r.footerUvarint(&crc)
		if err != nil {
			return fmt.Errorf("trace: vlt2 footer entry %d: %w", i, err)
		}
		if off != next {
			return fmt.Errorf("%w: footer entry %d offset %d overlaps or skips (want %d)", ErrCorrupt, i, off, next)
		}
		if size == 0 || count == 0 {
			return fmt.Errorf("%w: footer entry %d is empty", ErrCorrupt, i)
		}
		next = off + size
		counted += count
	}
	footerOff := r.hdrLen + r.bytes
	if next != footerOff {
		return fmt.Errorf("%w: footer entries end at %d, footer starts at %d", ErrCorrupt, next, footerOff)
	}
	total, err := r.footerUvarint(&crc)
	if err != nil {
		return fmt.Errorf("trace: vlt2 footer total: %w", err)
	}
	if total != r.read || counted != r.read {
		return fmt.Errorf("%w: footer declares %d records (entries sum %d), decoded %d", ErrCorrupt, total, counted, r.read)
	}
	r.total = total
	var tail [4 + trailerLen2]byte
	if _, err := io.ReadFull(r.br, tail[:]); err != nil {
		return fmt.Errorf("trace: vlt2 trailer: %w", err)
	}
	if binary.LittleEndian.Uint32(tail[:4]) != crc {
		return fmt.Errorf("trace: vlt2 footer: %w", ErrChecksum)
	}
	if got := binary.LittleEndian.Uint64(tail[4:12]); got != footerOff {
		return fmt.Errorf("%w: trailer footer offset %d, want %d", ErrCorrupt, got, footerOff)
	}
	if string(tail[12:]) != trailerMagic2 {
		return fmt.Errorf("%w: bad trailer magic", ErrCorrupt)
	}
	return nil
}

// Next decodes the next record into the reader's internal record and
// returns it; io.EOF after the final record. The pointer is invalidated by
// the following Next or NextBatch call.
func (r *Reader2) Next() (*Record, error) {
	var one [1]Record
	n, err := r.NextBatch(one[:])
	if n == 0 {
		if err == nil {
			err = io.EOF
		}
		return nil, err
	}
	r.rec = one[0]
	return &r.rec, err
}

// NextBatch decodes up to len(buf) records: the batched form of Next, and
// the fast path — records decode straight from the staged block payload
// into buf.
func (r *Reader2) NextBatch(buf []Record) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	n := 0
	for n < len(buf) {
		if r.dec.remaining() == 0 {
			if r.done {
				break
			}
			more, err := r.loadBlock()
			if err != nil {
				r.err = err
				if n > 0 {
					return n, nil
				}
				return 0, err
			}
			if !more {
				break
			}
		}
		k, err := r.dec.decodeInto(buf[n:])
		n += k
		r.read += uint64(k)
		r.m.records.Add(int64(k))
		if err != nil {
			r.err = fmt.Errorf("trace: vlt2 block %d: %w", r.blocks-1, err)
			if n > 0 {
				return n, nil
			}
			return 0, r.err
		}
	}
	if n == 0 {
		return 0, io.EOF
	}
	return n, nil
}
