//go:build !linux

package trace

import "os"

// mmapFile is the no-mmap fallback: indexed readers use ReadAt instead.
func mmapFile(*os.File, int64) ([]byte, func() error, bool) {
	return nil, nil, false
}
