// Package trace defines the dynamic instruction trace that flows between the
// three phases of the experimental framework (paper §5): the functional VM
// produces a trace, the LVP Unit model annotates its loads with prediction
// states, and the cycle-accurate timing models consume the annotated trace.
package trace

import (
	"fmt"

	"lvp/internal/isa"
)

// Record is one retired dynamic instruction.
type Record struct {
	PC    uint64 // instruction address
	Addr  uint64 // effective address (loads/stores), else 0
	Value uint64 // loaded value (loads) or stored value (stores), raw bits
	Imm   int64  // immediate as executed (branch targets resolved)
	Op    isa.Op
	Rd    isa.Reg
	Ra    isa.Reg
	Rb    isa.Reg
	Class isa.LoadClass // static load class (loads only)
	Size  uint8         // access width in bytes (loads/stores)
	Taken bool          // branch outcome (branches only; unconditional = true)
	Targ  uint64        // actual next PC for branches (taken or fallthrough)
}

// Inst reconstructs the static instruction that produced r.
func (r Record) Inst() isa.Inst {
	return isa.Inst{Op: r.Op, Rd: r.Rd, Ra: r.Ra, Rb: r.Rb, Imm: r.Imm, Class: r.Class}
}

// IsLoad reports whether the record is a load.
func (r Record) IsLoad() bool { return isa.IsLoad(r.Op) }

// IsStore reports whether the record is a store.
func (r Record) IsStore() bool { return isa.IsStore(r.Op) }

// IsBranch reports whether the record is a control-transfer instruction.
func (r Record) IsBranch() bool { return isa.IsBranch(r.Op) }

// Trace is an in-memory dynamic instruction trace.
type Trace struct {
	Name    string // benchmark name, e.g. "grep"
	Target  string // codegen target, e.g. "ppc" or "axp"
	Records []Record
}

// Summary aggregates the counts the paper's Table 1 reports per benchmark.
type Summary struct {
	Name         string
	Target       string
	Instructions int
	Loads        int
	Stores       int
	Branches     int
	CondBranches int
	TakenRate    float64 // fraction of conditional branches taken
	LoadsByClass [isa.NumLoadClasses]int
}

// Summarize scans the trace once and returns its Summary.
func (t *Trace) Summarize() Summary {
	z := NewSummarizer(t.Name, t.Target)
	for i := range t.Records {
		z.Add(&t.Records[i])
	}
	return z.Summary()
}

// Summarizer accumulates a Summary record-at-a-time — the streaming
// counterpart of Trace.Summarize, for summarising traces that are never
// materialized in memory.
type Summarizer struct {
	s     Summary
	taken int
}

// NewSummarizer returns a Summarizer for a trace with the given header.
func NewSummarizer(name, target string) *Summarizer {
	return &Summarizer{s: Summary{Name: name, Target: target}}
}

// Add accumulates one record.
func (z *Summarizer) Add(r *Record) {
	z.s.Instructions++
	switch {
	case r.IsLoad():
		z.s.Loads++
		z.s.LoadsByClass[r.Class]++
	case r.IsStore():
		z.s.Stores++
	case r.IsBranch():
		z.s.Branches++
		if isa.IsCondBranch(r.Op) {
			z.s.CondBranches++
			if r.Taken {
				z.taken++
			}
		}
	}
}

// Summary returns the accumulated summary.
func (z *Summarizer) Summary() Summary {
	s := z.s
	if s.CondBranches > 0 {
		s.TakenRate = float64(z.taken) / float64(s.CondBranches)
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("%s/%s: %d instrs, %d loads (%.1f%%), %d stores, %d branches",
		s.Name, s.Target, s.Instructions, s.Loads,
		100*float64(s.Loads)/float64(max(1, s.Instructions)), s.Stores, s.Branches)
}

// PredState is the per-load annotation produced by the LVP Unit model
// (paper §5): each load is marked with exactly one of four states.
type PredState uint8

const (
	// PredNone: the LCT said "don't predict" (or the machine model
	// cancelled the prediction).
	PredNone PredState = iota
	// PredIncorrect: a prediction was made and it was wrong.
	PredIncorrect
	// PredCorrect: a prediction was made and it was right; verified
	// against the value returned by the memory hierarchy.
	PredCorrect
	// PredConstant: a correct prediction verified by the CVU without
	// accessing the memory hierarchy at all.
	PredConstant

	NumPredStates
)

func (p PredState) String() string {
	switch p {
	case PredNone:
		return "no-pred"
	case PredIncorrect:
		return "incorrect"
	case PredCorrect:
		return "correct"
	case PredConstant:
		return "constant"
	}
	return fmt.Sprintf("PredState(%d)", uint8(p))
}

// Annotation carries one PredState per trace record. Non-load records hold
// PredNone. It is stored separately from the Trace so one trace can be
// annotated under many LVP configurations without copying (and, as in the
// paper, so only two bits of state per load cross into the timing models).
type Annotation []PredState

// NewAnnotation allocates an all-PredNone annotation sized for t.
func NewAnnotation(t *Trace) Annotation {
	return make(Annotation, len(t.Records))
}
