package trace

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"lvp/internal/par"
)

// Parallel VLT2 decoding: because every block is independently decodable and
// the footer index locates all of them up front, disjoint blocks decode on a
// par.Pool concurrently while a single consumer reassembles them in index
// order. The merge is index-addressed — block i's records are handed over on
// block i's own channel — so the record stream is byte-identical to a
// sequential decode regardless of worker count or completion order, matching
// the determinism contract of the rest of the engine.

// parSlab owns one in-flight block's buffers: fetch/scratch space for the
// worker and the decoded records for the consumer. Slabs recycle through a
// sync.Pool once the consumer drains them, so steady-state parallel decode
// allocates only when the read-ahead window grows.
type parSlab struct {
	fetch    blockReader
	blockBuf []byte
	dec      blockDec
	recs     []Record
}

// parBlock is one decoded block in transit from worker to consumer.
type parBlock struct {
	recs []Record
	err  error
	slab *parSlab
}

// ParallelReader decodes a VLT2 file's blocks concurrently. It satisfies
// Decoder; Close (required) stops the workers. The consumer side is not safe
// for concurrent use — parallelism is internal.
type ParallelReader struct {
	ir      *IndexedReader
	pool    *par.Pool
	results chan chan parBlock
	quit    chan struct{}
	slabs   sync.Pool

	// Serial degrade (see Parallel): blocks decode inline in fetchBlock,
	// in index order, through one private slab — no goroutines, no
	// channels, same stream and same error surface.
	serial bool
	snext  int     // next block index to decode
	sslab  parSlab // the single decode slab

	cur    parBlock
	curOff int
	read   uint64
	rec    Record
	err    error
	closed bool
}

// Parallel returns a reader decoding ir's blocks on `workers` goroutines
// (<= 0 selects par.DefaultWorkers). The underlying ReaderAt must serve
// concurrent ReadAt calls; os.File and bytes.Reader both do, and the mmap
// path reads shared immutable memory. ir's cursor state is not touched, but
// its metrics counters aggregate both readers' traffic.
//
// When the resolved worker count is one — or the process itself has only
// one scheduling slot (GOMAXPROCS == 1), where fan-out buys nothing and
// costs channel hops — the reader degrades to an indexed serial decode:
// identical record stream, identical error surface, zero goroutines.
// Serial reports which regime was selected.
func (ir *IndexedReader) Parallel(workers int) *ParallelReader {
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	if workers <= 1 || runtime.GOMAXPROCS(0) == 1 {
		return &ParallelReader{ir: ir, serial: true}
	}
	pr := &ParallelReader{
		ir:   ir,
		pool: par.NewPool(workers),
		// The window bounds read-ahead: at most workers in flight plus
		// workers decoded-but-undelivered blocks.
		results: make(chan chan parBlock, workers),
		quit:    make(chan struct{}),
	}
	pr.slabs.New = func() any { return new(parSlab) }
	go pr.produce()
	return pr
}

// Serial reports whether the reader degraded to inline serial decoding.
func (pr *ParallelReader) Serial() bool { return pr.serial }

// produce walks the block index in order, handing each block a private
// one-slot result channel (enqueued in index order) and a pool task that
// fills it. Pool.Go's backpressure plus the results channel's capacity bound
// how far decode runs ahead of the consumer.
func (pr *ParallelReader) produce() {
	defer close(pr.results)
	for i := range pr.ir.idx {
		c := make(chan parBlock, 1)
		select {
		case <-pr.quit:
			return
		case pr.results <- c:
		}
		pr.pool.Go(func() error {
			s := pr.slabs.Get().(*parSlab)
			err := pr.decodeBlock(i, s)
			c <- parBlock{recs: s.recs, err: err, slab: s}
			return nil
		})
	}
}

// decodeBlock stages block i and decodes it fully into s.recs, shared by the
// pool workers and the serial degrade so both regimes produce the same
// stream and the same errors (stage failures pass through, decode failures
// carry the block-indexed wrap).
func (pr *ParallelReader) decodeBlock(i int, s *parSlab) error {
	pr.ir.m.busy.Acquire()
	defer pr.ir.m.busy.Release()
	err := pr.ir.stageBlock(i, &s.fetch, &s.blockBuf, &s.dec, &pr.ir.m)
	if err != nil {
		return err
	}
	s.recs = growRecords(s.recs, s.dec.remaining())
	var n int
	for n < len(s.recs) && err == nil {
		var k int
		k, err = s.dec.decodeInto(s.recs[n:])
		n += k
	}
	if err != nil {
		return fmt.Errorf("trace: vlt2 block %d: %w", i, err)
	}
	return nil
}

// fetchBlock delivers the next block in index order: decoded inline in the
// serial regime, received from the ordered result channels otherwise. ok is
// false at end of stream.
func (pr *ParallelReader) fetchBlock() (parBlock, bool) {
	if pr.serial {
		if pr.snext >= len(pr.ir.idx) {
			return parBlock{}, false
		}
		i := pr.snext
		pr.snext++
		s := &pr.sslab
		err := pr.decodeBlock(i, s)
		return parBlock{recs: s.recs, err: err}, true
	}
	c, ok := <-pr.results
	if !ok {
		return parBlock{}, false
	}
	return <-c, true
}

// growRecords returns r resized to n, reusing capacity when it can.
func growRecords(r []Record, n int) []Record {
	if cap(r) < n {
		return make([]Record, n)
	}
	return r[:n]
}

// Name returns the trace's benchmark name from the header.
func (pr *ParallelReader) Name() string { return pr.ir.name }

// Target returns the trace's codegen target from the header.
func (pr *ParallelReader) Target() string { return pr.ir.target }

// Count returns the file's total record count from the footer index.
func (pr *ParallelReader) Count() uint64 { return pr.ir.total }

// Decoded returns the number of records delivered so far.
func (pr *ParallelReader) Decoded() uint64 { return pr.read }

// Next decodes the next record; io.EOF after the final record. The pointer
// is invalidated by the following Next or NextBatch call.
func (pr *ParallelReader) Next() (*Record, error) {
	var one [1]Record
	n, err := pr.NextBatch(one[:])
	if n == 0 {
		if err == nil {
			err = io.EOF
		}
		return nil, err
	}
	pr.rec = one[0]
	return &pr.rec, err
}

// NextBlock hands over the next decoded block's remaining records without
// copying them: the slice is owned by the reader and valid only until the
// next NextBlock, NextBatch or Close call, when its backing slab is
// recycled. Batch consumers that can work block-at-a-time skip the per-batch
// copy NextBatch pays. Returns io.EOF after the final block.
func (pr *ParallelReader) NextBlock() ([]Record, error) {
	if pr.err != nil {
		return nil, pr.err
	}
	if pr.closed {
		return nil, fmt.Errorf("trace: read from closed parallel reader")
	}
	for pr.curOff == len(pr.cur.recs) {
		if pr.cur.slab != nil {
			pr.slabs.Put(pr.cur.slab)
			pr.cur = parBlock{}
			pr.curOff = 0
		}
		pb, ok := pr.fetchBlock()
		if !ok {
			return nil, io.EOF
		}
		if pb.err != nil {
			pr.err = pb.err
			pr.shutdown()
			return nil, pr.err
		}
		pr.cur = pb
		pr.curOff = 0
	}
	recs := pr.cur.recs[pr.curOff:]
	pr.curOff = len(pr.cur.recs)
	pr.read += uint64(len(recs))
	pr.ir.m.records.Add(int64(len(recs)))
	return recs, nil
}

// NextBatch copies up to len(buf) records from the in-order decoded stream.
func (pr *ParallelReader) NextBatch(buf []Record) (int, error) {
	if pr.err != nil {
		return 0, pr.err
	}
	if pr.closed {
		return 0, fmt.Errorf("trace: read from closed parallel reader")
	}
	n := 0
	for n < len(buf) {
		if pr.curOff == len(pr.cur.recs) {
			if pr.cur.slab != nil {
				pr.slabs.Put(pr.cur.slab)
				pr.cur = parBlock{}
				pr.curOff = 0
			}
			pb, ok := pr.fetchBlock()
			if !ok {
				break
			}
			if pb.err != nil {
				pr.err = pb.err
				pr.shutdown()
				if n > 0 {
					return n, nil
				}
				return 0, pr.err
			}
			pr.cur = pb
			pr.curOff = 0
		}
		k := copy(buf[n:], pr.cur.recs[pr.curOff:])
		n += k
		pr.curOff += k
		pr.read += uint64(k)
		pr.ir.m.records.Add(int64(k))
	}
	if n == 0 {
		return 0, io.EOF
	}
	return n, nil
}

// shutdown stops the producer and drains every in-flight block so no
// goroutine is left blocked. Idempotent.
func (pr *ParallelReader) shutdown() {
	if pr.closed {
		return
	}
	pr.closed = true
	if pr.serial {
		return // nothing in flight: no producer, no workers
	}
	close(pr.quit)
	// Workers send into one-slot buffered channels, so they never block;
	// draining the ordered channel stream releases everything in flight.
	for c := range pr.results {
		<-c
	}
	pr.pool.Wait()
}

// Close stops the workers and releases in-flight blocks. It does not close
// the IndexedReader (whose mapping other readers may share). A fully drained
// reader has already shut down; Close is then a no-op.
func (pr *ParallelReader) Close() error {
	pr.shutdown()
	return nil
}
