//go:build linux

package trace

import (
	"os"
	"syscall"
)

// mmapFile maps f read-only. On success the returned cleanup unmaps; ok is
// false when the platform or the file (empty, too large for the address
// space) cannot be mapped, and callers fall back to ReadAt.
func mmapFile(f *os.File, size int64) (data []byte, unmap func() error, ok bool) {
	if size <= 0 || size != int64(int(size)) {
		return nil, nil, false
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, false
	}
	return data, func() error { return syscall.Munmap(data) }, true
}
