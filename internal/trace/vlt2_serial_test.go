package trace

import (
	"io"
	"reflect"
	"runtime"
	"testing"
)

// TestParallelSerialDegrade pins the worker-resolution rule: one worker (or
// a single-slot process) degrades to inline serial decode, more than one on
// a multi-slot process stays parallel — and the serial regime must deliver
// exactly the encoded record stream with a clean EOF and idempotent Close.
func TestParallelSerialDegrade(t *testing.T) {
	want := genRecords(3000, 17)
	enc := encodeVLT2(&Trace{Name: "serial", Target: "ppc", Records: want},
		Writer2Options{BlockRecords: 128})

	// The degrade decision reads GOMAXPROCS, so pin both regimes
	// explicitly rather than inheriting the host's setting.
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	runtime.GOMAXPROCS(2)
	for _, tc := range []struct {
		workers int
		serial  bool
	}{
		{1, true},  // explicit single worker
		{2, false}, // real fan-out
		{16, false},
	} {
		ir, err := NewIndexedReaderBytes(enc)
		if err != nil {
			t.Fatal(err)
		}
		pr := ir.Parallel(tc.workers)
		if pr.Serial() != tc.serial {
			t.Errorf("GOMAXPROCS=2 workers=%d: Serial() = %v, want %v",
				tc.workers, pr.Serial(), tc.serial)
		}
		pr.Close()
	}

	runtime.GOMAXPROCS(1)
	ir, err := NewIndexedReaderBytes(enc)
	if err != nil {
		t.Fatal(err)
	}
	pr := ir.Parallel(8)
	if !pr.Serial() {
		t.Error("GOMAXPROCS=1 workers=8: want serial degrade")
	}

	// The degraded reader must still be a full Decoder: same stream, same
	// terminal EOF, and Close must stay a no-op afterwards.
	var got []Record
	buf := make([]Record, 257)
	for {
		n, err := pr.NextBatch(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("serial degrade: decoded records differ from the encoded stream")
	}
	if _, err := pr.NextBatch(buf); err != io.EOF {
		t.Fatalf("after drain: want io.EOF, got %v", err)
	}
	if err := pr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pr.Close(); err != nil {
		t.Fatal(err)
	}
}
