package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"lvp/internal/isa"
)

// genRecords builds a pseudo-realistic record sequence covering every shape
// the codec distinguishes: sequential and branchy PCs, strided and jumping
// addresses, zero and non-zero immediates/values, every load class.
func genRecords(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]Record, 0, n)
	pc := uint64(0x10000)
	addr := uint64(0x200000)
	for len(recs) < n {
		r := Record{PC: pc, Rd: isa.Reg(rng.Intn(32)), Ra: isa.Reg(rng.Intn(32)), Rb: isa.Reg(rng.Intn(32))}
		switch rng.Intn(10) {
		case 0, 1, 2: // load
			r.Op = []isa.Op{isa.LB, isa.LH, isa.LW, isa.LD, isa.FLD}[rng.Intn(5)]
			r.Class = isa.LoadClass(1 + rng.Intn(int(isa.NumLoadClasses)-1))
			r.Size = uint8(1 << rng.Intn(4))
			r.Imm = int64(rng.Intn(64)) * 8
			addr += uint64(rng.Intn(3)) * 8
			if rng.Intn(16) == 0 {
				addr = uint64(rng.Uint32()) // working-set jump
			}
			r.Addr = addr
			r.Value = rng.Uint64() >> uint(rng.Intn(64))
		case 3: // store
			r.Op = []isa.Op{isa.SB, isa.SW, isa.SD, isa.FSD}[rng.Intn(4)]
			r.Size = uint8(1 << rng.Intn(4))
			r.Imm = -int64(rng.Intn(32)) * 8
			r.Addr = addr + uint64(rng.Intn(256))
			r.Value = uint64(rng.Intn(1000))
		case 4: // branch
			r.Op = []isa.Op{isa.BEQ, isa.BNE, isa.BLT, isa.JAL, isa.JALR}[rng.Intn(5)]
			r.Taken = rng.Intn(2) == 0
			delta := int64(rng.Intn(4096)-2048) * 4
			r.Imm = int64(pc) + delta
			if r.Taken {
				r.Targ = uint64(int64(pc) + delta)
			} else {
				r.Targ = pc + 4
			}
		default: // ALU
			r.Op = []isa.Op{isa.ADD, isa.ADDI, isa.XOR, isa.MUL, isa.FADD, isa.NOP}[rng.Intn(6)]
			if r.Op == isa.ADDI {
				r.Imm = int64(rng.Intn(2000) - 1000)
			}
			if rng.Intn(3) > 0 {
				r.Value = rng.Uint64() >> uint(rng.Intn(64))
			}
		}
		recs = append(recs, r)
		if r.IsBranch() {
			pc = r.Targ
		} else {
			pc += 4
		}
	}
	return recs
}

func encode2(t *testing.T, tr *Trace, opts Writer2Options) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write2(&buf, tr, opts); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func drain(t *testing.T, d Decoder) []Record {
	t.Helper()
	var recs []Record
	buf := make([]Record, 300) // deliberately not a divisor of block size
	for {
		n, err := d.NextBatch(buf)
		recs = append(recs, buf[:n]...)
		if err == io.EOF {
			return recs
		}
		if err != nil {
			t.Fatalf("NextBatch after %d records: %v", len(recs), err)
		}
	}
}

// TestVLT2RoundTrip pins encode→decode identity over both codecs, block
// sizes that do and do not divide the record count, and the empty trace.
func TestVLT2RoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int
		opts Writer2Options
	}{
		{"raw", 10000, Writer2Options{}},
		{"flate", 10000, Writer2Options{Codec: CodecFlate}},
		{"fixed", 10000, Writer2Options{Codec: CodecFixed}},
		{"fixed-flate", 10000, Writer2Options{Codec: CodecFixedFlate}},
		{"fixed-tiny-blocks", 1000, Writer2Options{Codec: CodecFixed, BlockRecords: 7}},
		{"tiny-blocks", 1000, Writer2Options{BlockRecords: 7}},
		{"one-block", 100, Writer2Options{BlockRecords: 4096}},
		{"single-record", 1, Writer2Options{}},
		{"empty", 0, Writer2Options{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := &Trace{Name: "rt", Target: "ppc", Records: genRecords(tc.n, 42)}
			enc := encode2(t, want, tc.opts)
			r2, err := NewReader2(bytes.NewReader(enc))
			if err != nil {
				t.Fatal(err)
			}
			if r2.Name() != want.Name || r2.Target() != want.Target {
				t.Fatalf("header %q/%q, want %q/%q", r2.Name(), r2.Target(), want.Name, want.Target)
			}
			got := drain(t, r2)
			if len(got) != len(want.Records) {
				t.Fatalf("decoded %d records, want %d", len(got), len(want.Records))
			}
			for i := range got {
				if got[i] != want.Records[i] {
					t.Fatalf("record %d drift:\n got %+v\nwant %+v", i, got[i], want.Records[i])
				}
			}
			if r2.Count() != uint64(tc.n) {
				t.Fatalf("Count after drain = %d, want %d", r2.Count(), tc.n)
			}
		})
	}
}

// TestVLT2NextMatchesNextBatch pins the per-record path against the batched
// path on the same input.
func TestVLT2NextMatchesNextBatch(t *testing.T) {
	tr := &Trace{Name: "nm", Target: "axp", Records: genRecords(3000, 7)}
	enc := encode2(t, tr, Writer2Options{BlockRecords: 512})
	r2, err := NewReader2(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	var got []Record
	for {
		r, err := r2.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, *r)
	}
	if !reflect.DeepEqual(got, tr.Records) {
		t.Fatal("Next sequence differs from the written records")
	}
}

// TestVLT2FlateShrinks pins the size story: a flate-compressed encoding of
// a realistic trace must be smaller than both its raw VLT2 and its VLT1
// encoding.
func TestVLT2FlateShrinks(t *testing.T) {
	tr := &Trace{Name: "sz", Target: "ppc", Records: genRecords(50000, 3)}
	var v1 bytes.Buffer
	if err := Write(&v1, tr); err != nil {
		t.Fatal(err)
	}
	raw := encode2(t, tr, Writer2Options{})
	fl := encode2(t, tr, Writer2Options{Codec: CodecFlate})
	if len(fl) >= len(raw) {
		t.Fatalf("flate encoding %d B not smaller than raw %d B", len(fl), len(raw))
	}
	if len(fl) >= v1.Len() {
		t.Fatalf("flate encoding %d B not smaller than VLT1 %d B", len(fl), v1.Len())
	}
	t.Logf("sizes: vlt1=%d vlt2/raw=%d vlt2/flate=%d (%.1f%% of vlt1)",
		v1.Len(), len(raw), len(fl), 100*float64(len(fl))/float64(v1.Len()))
}

// --- benchmarks: VLT2 decode vs the VLT1 baseline on identical records ---

func benchTraceV2(b *testing.B, n int) *Trace {
	b.Helper()
	return &Trace{Name: "bench", Target: "ppc", Records: genRecords(n, 99)}
}

func BenchmarkVLT2DecodeBatch(b *testing.B) {
	tr := benchTraceV2(b, 1<<17)
	var buf bytes.Buffer
	if err := Write2(&buf, tr, Writer2Options{}); err != nil {
		b.Fatal(err)
	}
	enc := buf.Bytes()
	out := make([]Record, 256)
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r2, err := NewReader2(bytes.NewReader(enc))
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := r2.NextBatch(out); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(tr.Records)), "ns/rec")
}

func BenchmarkVLT1DecodeBatch(b *testing.B) {
	tr := benchTraceV2(b, 1<<17)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		b.Fatal(err)
	}
	enc := buf.Bytes()
	out := make([]Record, 256)
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewReader(bytes.NewReader(enc))
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := r.NextBatch(out); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(tr.Records)), "ns/rec")
}
