package trace

import (
	"bytes"
	"errors"
	"hash/crc32"
	"io"
	"reflect"
	"testing"
)

// fuzzCodecs covers every codec and an awkward block size, so the fuzz and
// hostile-input gates exercise each decode path (varint, fixed, flate, and
// multi-block boundaries).
var fuzzCodecs = []Writer2Options{
	{},
	{Codec: CodecFlate},
	{Codec: CodecFixed},
	{Codec: CodecFixedFlate},
	{BlockRecords: 7},
	{Codec: CodecFixed, BlockRecords: 7},
}

func encodeVLT2(tr *Trace, opts Writer2Options) []byte {
	var buf bytes.Buffer
	if err := Write2(&buf, tr, opts); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// decodeAllVLT2 drains a decoder without a testing.T, for use inside the
// fuzz body where decode errors are data, not failures.
func decodeAllVLT2(d Decoder) ([]Record, error) {
	var recs []Record
	buf := make([]Record, 300)
	for {
		n, err := d.NextBatch(buf)
		recs = append(recs, buf[:n]...)
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
	}
}

// FuzzVLT2RoundTrip feeds arbitrary bytes to both VLT2 decode paths. The
// invariants:
//
//  1. neither the sequential nor the indexed decoder ever panics — hostile
//     input must come back as a clean error;
//  2. when the indexed reader accepts an input, the sequential reader
//     accepts it too and both decode the identical record sequence (the
//     indexed reader validates strictly more: the footer index);
//  3. any accepted input is canonical: re-encoding the decoded records and
//     decoding again reproduces them exactly.
func FuzzVLT2RoundTrip(f *testing.F) {
	seed := &Trace{Name: "seed", Target: "ppc", Records: genRecords(300, 7)}
	for _, opts := range fuzzCodecs {
		f.Add(encodeVLT2(seed, opts))
	}
	f.Add(encodeVLT2(&Trace{Name: "empty", Target: "axp"}, Writer2Options{}))
	valid := encodeVLT2(seed, Writer2Options{BlockRecords: 64})
	f.Add([]byte{})
	f.Add([]byte("VLT2"))
	f.Add(valid[:len(valid)-1])             // truncated trailer
	f.Add(valid[:len(valid)/2])             // truncated mid-block
	f.Add(append(bytes.Clone(valid), 0xAA)) // trailing garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		ir, err := NewIndexedReaderBytes(data)
		var irecs []Record
		indexedOK := false
		if err == nil {
			if irecs, err = decodeAllVLT2(ir); err == nil {
				indexedOK = true
			}
		}
		sr, err := NewReader2(bytes.NewReader(data))
		if err != nil {
			if indexedOK {
				t.Fatalf("indexed accepted but sequential open failed: %v", err)
			}
			return
		}
		srecs, err := decodeAllVLT2(sr)
		if err != nil {
			if indexedOK {
				t.Fatalf("indexed accepted but sequential decode failed: %v", err)
			}
			return
		}
		if indexedOK && !reflect.DeepEqual(irecs, srecs) {
			t.Fatal("indexed and sequential decode disagree on accepted input")
		}
		// Canonicality: accepted input must survive a re-encode round trip
		// under each distinct payload codec.
		tr := &Trace{Name: sr.Name(), Target: sr.Target(), Records: srecs}
		for _, opts := range fuzzCodecs[:3] {
			re, err := NewReader2(bytes.NewReader(encodeVLT2(tr, opts)))
			if err != nil {
				t.Fatalf("re-encode (%v) rejected: %v", opts, err)
			}
			rerecs, err := decodeAllVLT2(re)
			if err != nil {
				t.Fatalf("re-encode (%v) decode failed: %v", opts, err)
			}
			if !reflect.DeepEqual(rerecs, srecs) {
				t.Fatalf("re-encode (%v) changed the records", opts)
			}
		}
	})
}

// rebuiltFooter re-emits enc with its footer index replaced by entries,
// recomputing the footer CRC so only the index semantics — not the
// checksum — are under test.
func rebuiltFooter(enc []byte, ir *IndexedReader, entries []indexEnt2, total uint64) []byte {
	out := bytes.Clone(enc[:ir.fOff])
	f := []byte{blockKindFooter}
	f = appendUvarint(f, uint64(len(entries)))
	for _, e := range entries {
		f = appendUvarint(f, e.off)
		f = appendUvarint(f, e.size)
		f = appendUvarint(f, e.count)
	}
	f = appendUvarint(f, total)
	out = append(out, f...)
	out = appendUint32LE(out, crc32.Checksum(f, castagnoli))
	out = appendUint64LE(out, ir.fOff)
	out = append(out, trailerMagic2...)
	return out
}

// TestVLT2Hostile corrupts a valid multi-block file in every structurally
// interesting way and requires a clean error — never a panic, never silent
// wrong data — from the decode paths that can see the damage. The indexed
// reader must reject every case; seqFails marks the cases the sequential
// reader (which never reads the footer index) must also reject.
func TestVLT2Hostile(t *testing.T) {
	tr := &Trace{Name: "hostile", Target: "ppc", Records: genRecords(500, 11)}
	for _, base := range []struct {
		name string
		opts Writer2Options
	}{
		{"varint", Writer2Options{BlockRecords: 64}},
		{"fixed", Writer2Options{Codec: CodecFixed, BlockRecords: 64}},
		{"flate", Writer2Options{Codec: CodecFlate, BlockRecords: 64}},
	} {
		t.Run(base.name, func(t *testing.T) {
			enc := encodeVLT2(tr, base.opts)
			ir, err := NewIndexedReaderBytes(enc)
			if err != nil {
				t.Fatal(err)
			}
			idx := append([]indexEnt2(nil), ir.idx...)
			total := ir.total
			if len(idx) < 3 {
				t.Fatalf("want ≥3 blocks, got %d", len(idx))
			}
			flip := func(pos uint64) []byte {
				m := bytes.Clone(enc)
				m[pos] ^= 0x40
				return m
			}
			overlap := append([]indexEnt2(nil), idx...)
			overlap[1] = overlap[0] // entry 1 restates entry 0: overlapping ranges
			gap := append([]indexEnt2(nil), idx...)
			gap[1].off++ // entry 1 skips a byte
			lyingSize := append([]indexEnt2(nil), idx...)
			lyingSize[0].size += lyingSize[1].size // entry 0 swallows entry 1

			// hdr0/hdr1 are the blocks' header lengths. The payload flip
			// aims mid-payload (a flip in a DEFLATE stream's final byte
			// can land in dead padding bits); the anchor flip aims at the
			// byte just before block 1's CRC — the last byte of the
			// firstAddr anchor, which only the header-covering CRC can
			// catch.
			_, hdr0, err := parseBlockHdr(enc[idx[0].off : idx[0].off+idx[0].size])
			if err != nil {
				t.Fatal(err)
			}
			_, hdr1, err := parseBlockHdr(enc[idx[1].off : idx[1].off+idx[1].size])
			if err != nil {
				t.Fatal(err)
			}

			cases := []struct {
				name     string
				data     []byte
				seqFails bool
				want     error // sentinel the error must unwrap to, if non-nil
			}{
				{"truncated-mid-block", enc[:idx[1].off+idx[1].size/2], true, nil},
				{"truncated-trailer", enc[:len(enc)-3], false, nil},
				{"payload-flip", flip(idx[0].off + uint64(hdr0) + (idx[0].size-uint64(hdr0))/2), true, ErrCorrupt},
				{"header-anchor-flip", flip(idx[1].off + uint64(hdr1) - 5), true, ErrCorrupt},
				{"footer-off-zero", overwriteFooterOff(enc, 0), false, ErrCorrupt},
				{"footer-off-into-block", overwriteFooterOff(enc, idx[0].off), false, nil},
				{"index-overlap", rebuiltFooter(enc, ir, overlap, total), false, ErrCorrupt},
				{"index-gap", rebuiltFooter(enc, ir, gap, total), false, ErrCorrupt},
				{"index-lying-size", rebuiltFooter(enc, ir, lyingSize, total), false, ErrCorrupt},
				{"footer-lying-total", rebuiltFooter(enc, ir, idx, total+1), false, ErrCorrupt},
			}
			for _, tc := range cases {
				t.Run(tc.name, func(t *testing.T) {
					if d, err := NewIndexedReaderBytes(tc.data); err == nil {
						if _, err = decodeAllVLT2(d); err == nil {
							t.Fatal("indexed reader accepted hostile input")
						}
					} else if tc.want != nil && !errors.Is(err, tc.want) {
						t.Fatalf("indexed open error %v does not unwrap to %v", err, tc.want)
					}
					if !tc.seqFails {
						return
					}
					d, err := NewReader2(bytes.NewReader(tc.data))
					if err != nil {
						return
					}
					if _, err = decodeAllVLT2(d); err == nil {
						t.Fatal("sequential reader accepted hostile input")
					} else if tc.want != nil && !errors.Is(err, tc.want) {
						t.Fatalf("sequential error %v does not unwrap to %v", err, tc.want)
					}
				})
			}
		})
	}
}

func appendUint32LE(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendUint64LE(dst []byte, v uint64) []byte {
	for i := 0; i < 8; i++ {
		dst = append(dst, byte(v>>(8*i)))
	}
	return dst
}

// overwriteFooterOff rewrites the trailer's footer offset in place.
func overwriteFooterOff(enc []byte, off uint64) []byte {
	m := bytes.Clone(enc)
	tail := m[len(m)-trailerLen2:]
	for i := 0; i < 8; i++ {
		tail[i] = byte(off >> (8 * i))
	}
	return m
}
