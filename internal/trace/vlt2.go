package trace

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"

	"lvp/internal/isa"
)

// Block-structured trace format ("VLT2"), the successor of VLT1 for large
// traces: records are grouped into fixed-size blocks that compress, seek and
// decode independently.
//
//	file    := header block* footer trailer
//	header  := magic "VLT2" | version byte (=1) | name | target
//	block   := kind byte (=0)
//	           count     uvarint   records in the block (1..MaxBlockRecords)
//	           rawLen    uvarint   payload bytes before compression
//	           codec     byte      bit 0 = DEFLATE, bit 1 = fixed-width
//	           encLen    uvarint   payload bytes on the wire
//	           firstPC   uvarint   PC of the block's first record (delta anchor)
//	           firstAddr uvarint   Addr of the block's first memory record
//	           crc       uint32 LE CRC32C of the header bytes (kind through
//	                     firstAddr) followed by the uncompressed payload
//	           payload   encLen bytes
//	footer  := kind byte (=1)
//	           nblocks   uvarint
//	           entries   nblocks × { offset uvarint | size uvarint | count uvarint }
//	           total     uvarint   total records in the file
//	           crc       uint32 LE CRC32C of the footer from its kind byte to total
//	trailer := footerOff uint64 LE | magic "VLT2.EOF"
//
// Strings are uvarint-length-prefixed as in VLT1. Block payloads hold the
// records in a delta form that needs only the block header to decode, so any
// block decodes independently of every other block:
//
//	b0      op (7 bits) | taken << 7
//	b1..b3  rd | ra<<5 | rb<<10 | class<<15 | hasImm<<18 | hasVal<<19
//	        (20 bits little-endian; the top 4 bits of b3 must be zero)
//	dpc     signed varint, delta from the previous record's PC
//	        (the block's first record deltas from firstPC, i.e. encodes 0)
//	[imm]   signed varint, present iff hasImm (hasImm ⇔ Imm != 0); branches
//	        store Imm−PC (immediates hold resolved targets, so the delta is
//	        small), everything else stores Imm directly
//	[mem]   loads/stores (implied by op): size byte, then daddr as a signed
//	        varint delta from the previous memory record's Addr (the first
//	        deltas from firstAddr), then the value
//	[value] present iff hasVal (non-memory records with Value != 0)
//
// Values (64-bit data, no useful delta structure) are not varints: each is a
// length byte n (0..8, the minimal width, so n's top byte is nonzero) plus n
// little-endian bytes. Fixed-width bytes decode with one masked load where a
// varint's data-dependent continuation bits cost the hot loop its worst
// branch mispredictions and its only multi-load varints.
//	[dtarg] signed varint Targ-PC, present iff op is a branch
//
// Fixed-width blocks (codec bit 1) skip the delta form entirely: each record
// is fixedRecSize2 bytes of little-endian fields at fixed offsets (see the
// constant), decoding at memcpy speed on little-endian hosts. The same
// canonical rules apply — a non-memory record must carry Addr 0, a
// non-branch record Targ 0, the pad byte must be zero — so the two record
// encodings accept exactly the same record streams.
//
// The footer's index entries carry each block's absolute file offset, total
// on-wire size (header + payload) and record count, so a reader holding an
// io.ReaderAt can seek to record N in O(log blocks) and decode disjoint
// blocks in parallel (vlt2_index.go, vlt2_parallel.go). The trailer's fixed
// width lets it find the footer from the end of the file. Sequential readers
// need none of that: blocks are self-describing, so a pipe decodes front to
// back (vlt2_reader.go), cross-checking the footer as it passes it.

const (
	magic2        = "VLT2"
	trailerMagic2 = "VLT2.EOF"
	version2      = 1

	blockKindData   = 0
	blockKindFooter = 1

	// trailerLen2 is the fixed byte length of the trailer.
	trailerLen2 = 8 + len(trailerMagic2)
)

// BlockCodec selects the per-block payload compression.
type BlockCodec uint8

const (
	// CodecRaw stores block payloads uncompressed (delta+varint only) —
	// the fastest to decode.
	CodecRaw BlockCodec = 0
	// CodecFlate compresses block payloads with DEFLATE (BestSpeed).
	// Blocks that DEFLATE fails to shrink are stored raw, so the format
	// never grows over CodecRaw by more than the headers.
	CodecFlate BlockCodec = 1
	// CodecFixed stores each record as fixedRecSize2 little-endian bytes
	// at fixed offsets — no deltas, no varints — trading at-rest size for
	// near-memcpy decode. Suited to spill files and intermediate traces
	// that are written once and decoded hot.
	CodecFixed BlockCodec = 2
	// CodecFixedFlate is CodecFixed with DEFLATE (BestSpeed) per block;
	// fixed-width records compress well, recovering much of the size cost.
	CodecFixedFlate BlockCodec = 3
)

// Codec bits: bit 0 selects DEFLATE compression, bit 1 selects fixed-width
// record encoding. The two axes are orthogonal.
const (
	codecFlateBit = 1
	codecFixedBit = 2
)

// fixedRecSize2 is the wire size of one CodecFixed record. The layout
// mirrors Record itself: PC, Addr, Value at 0/8/16, Imm (two's complement)
// at 24, the byte fields Op, Rd, Ra, Rb, Class, Size, Taken at 32..38, a
// zero pad byte at 39, and Targ at 40.
const fixedRecSize2 = 48

func (c BlockCodec) String() string {
	switch c {
	case CodecRaw:
		return "raw"
	case CodecFlate:
		return "flate"
	case CodecFixed:
		return "fixed"
	case CodecFixedFlate:
		return "fixed-flate"
	}
	return fmt.Sprintf("BlockCodec(%d)", uint8(c))
}

// BlockCodecByName resolves a codec flag value ("raw", "flate", "fixed",
// or "fixed-flate").
func BlockCodecByName(name string) (BlockCodec, error) {
	for _, c := range []BlockCodec{CodecRaw, CodecFlate, CodecFixed, CodecFixedFlate} {
		if c.String() == name {
			return c, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown block codec %q (want raw, flate, fixed, or fixed-flate)", name)
}

const (
	// DefaultBlockRecords is the default records-per-block. 4096 records
	// keep a raw payload around 20–40 KiB: large enough to amortize the
	// per-block header and index entry to nothing, small enough that a
	// decoded block stays cache-resident and a seek discards little work.
	DefaultBlockRecords = 4096

	// MaxBlockRecords caps the per-block record count a header may
	// declare, bounding what a hostile count can make a decoder allocate.
	MaxBlockRecords = 1 << 18

	// MaxBlockBytes caps a block's declared payload length.
	MaxBlockBytes = 1 << 24

	// maxFileBlocks caps the footer's declared block count.
	maxFileBlocks = 1 << 26

	// minEncRecord2/maxEncRecord2 bound one record's encoding: at least
	// the 4 fixed bytes plus a 1-byte dpc; at most the fixed bytes, three
	// 10-byte signed varints (dpc, imm, dtarg), and the widest memory tail
	// (size byte + 10-byte daddr + 9-byte value). Declared payload
	// lengths outside count×[min,max] are rejected before allocation.
	minEncRecord2 = 5
	maxEncRecord2 = 54
)

// Errors shared by the VLT2 readers. Decode failures wrap ErrCorrupt (and
// ErrChecksum for CRC mismatches) so callers can distinguish malformed input
// from I/O errors.
var (
	// ErrCorrupt reports structurally invalid VLT2 input.
	ErrCorrupt = errors.New("trace: corrupt VLT2 input")
	// ErrChecksum reports a block or footer whose CRC32C does not match
	// its payload.
	ErrChecksum = fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	// ErrVersion reports a VLT2 file with an unsupported version byte.
	ErrVersion = errors.New("trace: unsupported VLT2 version")
)

// castagnoli is the CRC32C polynomial table; hardware-accelerated on amd64
// and arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record-shape bits, derived from the opcode once at init so the codec hot
// loops pay one table load instead of two class lookups.
const (
	shMem uint8 = 1 << iota
	shBranch
)

var opShape = func() [isa.NumOps]uint8 {
	var t [isa.NumOps]uint8
	for op := 0; op < isa.NumOps; op++ {
		if isa.IsLoad(isa.Op(op)) || isa.IsStore(isa.Op(op)) {
			t[op] |= shMem
		}
		if isa.IsBranch(isa.Op(op)) {
			t[op] |= shBranch
		}
	}
	return t
}()

// Packed-field layout of bytes b1..b3.
const (
	fRd     = 0
	fRa     = 5
	fRb     = 10
	fClass  = 15
	fHasImm = 18
	fHasVal = 19
)

// zigzag maps a signed delta onto the uvarint space.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// unzigzag inverts zigzag.
func unzigzag(v uint64) int64 { return int64(v>>1) ^ -int64(v&1) }

// appendUvarint appends v to dst as a minimal uvarint.
func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// appendValue2 appends a 64-bit value as one length byte plus that many
// little-endian bytes — the minimal width holding the value, so the encoding
// is canonical (decoders reject a padded top byte of zero).
func appendValue2(dst []byte, v uint64) []byte {
	n := (bits.Len64(v) + 7) / 8
	dst = append(dst, byte(n))
	for ; n > 0; n-- {
		dst = append(dst, byte(v))
		v >>= 8
	}
	return dst
}

// appendRecord2 appends r's VLT2 encoding to dst and returns the updated
// delta state. The caller owns anchor initialisation: for a block's first
// record prevPC must equal r.PC, and for its first memory record prevAddr
// must equal r.Addr, so both encode a zero delta.
func appendRecord2(dst []byte, r *Record, prevPC, prevAddr uint64) ([]byte, uint64, uint64) {
	op := uint8(r.Op) & 0x7f
	shape := opShape[op]
	mem := shape&shMem != 0

	b0 := op
	if r.Taken {
		b0 |= 0x80
	}
	fld := (uint32(r.Rd)&31)<<fRd | (uint32(r.Ra)&31)<<fRa | (uint32(r.Rb)&31)<<fRb |
		(uint32(r.Class)&7)<<fClass
	if r.Imm != 0 {
		fld |= 1 << fHasImm
	}
	hasVal := !mem && r.Value != 0
	if hasVal {
		fld |= 1 << fHasVal
	}
	dst = append(dst, b0, byte(fld), byte(fld>>8), byte(fld>>16))
	dst = appendUvarint(dst, zigzag(int64(r.PC-prevPC)))
	prevPC = r.PC
	if r.Imm != 0 {
		iv := r.Imm
		if shape&shBranch != 0 {
			iv -= int64(r.PC)
		}
		dst = appendUvarint(dst, zigzag(iv))
	}
	if mem {
		dst = append(dst, r.Size)
		dst = appendUvarint(dst, zigzag(int64(r.Addr-prevAddr)))
		prevAddr = r.Addr
		dst = appendValue2(dst, r.Value)
	} else if hasVal {
		dst = appendValue2(dst, r.Value)
	}
	if shape&shBranch != 0 {
		dst = appendUvarint(dst, zigzag(int64(r.Targ-r.PC)))
	}
	return dst, prevPC, prevAddr
}

// appendRecordFixed appends r's CodecFixed encoding: fixedRecSize2 bytes of
// little-endian fields at fixed offsets, one explicit store per field so the
// output is identical on every platform (struct padding never leaks).
func appendRecordFixed(dst []byte, r *Record) []byte {
	var b [fixedRecSize2]byte
	binary.LittleEndian.PutUint64(b[0:], r.PC)
	binary.LittleEndian.PutUint64(b[8:], r.Addr)
	binary.LittleEndian.PutUint64(b[16:], r.Value)
	binary.LittleEndian.PutUint64(b[24:], uint64(r.Imm))
	b[32] = uint8(r.Op)
	b[33] = uint8(r.Rd)
	b[34] = uint8(r.Ra)
	b[35] = uint8(r.Rb)
	b[36] = uint8(r.Class)
	b[37] = r.Size
	if r.Taken {
		b[38] = 1
	}
	binary.LittleEndian.PutUint64(b[40:], r.Targ)
	return append(dst, b[:]...)
}

// Writer2Options configure a VLT2 writer. The zero value selects the
// defaults (DefaultBlockRecords records per block, CodecRaw payloads).
type Writer2Options struct {
	// BlockRecords is the records-per-block target; 0 selects
	// DefaultBlockRecords. Values above MaxBlockRecords are rejected.
	BlockRecords int
	// Codec selects the per-block payload compression.
	Codec BlockCodec
}

// indexEnt2 is one footer index entry under construction.
type indexEnt2 struct {
	off   uint64 // absolute file offset of the block's kind byte
	size  uint64 // on-wire bytes, header through payload
	count uint64 // records in the block
}

// Writer2 encodes a VLT2 stream record-at-a-time in constant memory (one
// block buffered). Unlike the VLT1 Writer it never needs to backpatch — the
// record count and block index live in the footer — so any io.Writer works,
// seekable or not, with or without a known count.
type Writer2 struct {
	w      *bufio.Writer
	opts   Writer2Options
	off    uint64 // logical bytes emitted
	n      uint64 // records written
	idx    []indexEnt2
	fw     *flate.Writer
	cbuf   bytes.Buffer
	hdrBuf []byte

	// Current block.
	payload   []byte
	bcount    int
	firstPC   uint64
	firstAddr uint64
	haveAddr  bool
	prevPC    uint64
	prevAddr  uint64

	err  error // sticky
	done bool
}

// NewWriter2 returns a streaming VLT2 writer with default options.
func NewWriter2(w io.Writer, name, target string) (*Writer2, error) {
	return NewWriter2Opts(w, name, target, Writer2Options{})
}

// NewWriter2Opts returns a streaming VLT2 writer with explicit options.
func NewWriter2Opts(w io.Writer, name, target string, opts Writer2Options) (*Writer2, error) {
	if opts.BlockRecords == 0 {
		opts.BlockRecords = DefaultBlockRecords
	}
	if opts.BlockRecords < 1 || opts.BlockRecords > MaxBlockRecords {
		return nil, fmt.Errorf("trace: block size %d out of range [1, %d]", opts.BlockRecords, MaxBlockRecords)
	}
	if opts.Codec > CodecFixedFlate {
		return nil, fmt.Errorf("trace: unknown block codec %d", opts.Codec)
	}
	bw, ok := w.(*bufio.Writer)
	if !ok {
		bw = bufio.NewWriterSize(w, 1<<16)
	}
	w2 := &Writer2{w: bw, opts: opts}
	bw.WriteString(magic2)
	bw.WriteByte(version2)
	writeString(bw, name)
	writeString(bw, target)
	w2.off = uint64(len(magic2)) + 1 +
		uint64(uvarintLen(uint64(len(name)))+len(name)) +
		uint64(uvarintLen(uint64(len(target)))+len(target))
	if _, err := bw.Write(nil); err != nil {
		return nil, err
	}
	if opts.Codec&codecFlateBit != 0 {
		fw, err := flate.NewWriter(&w2.cbuf, flate.BestSpeed)
		if err != nil {
			return nil, err
		}
		w2.fw = fw
	}
	return w2, nil
}

// Count returns the number of records written so far.
func (w *Writer2) Count() uint64 { return w.n }

// WriteRecord appends one record to the current block, flushing the block
// when it reaches the configured size. The first error is sticky.
func (w *Writer2) WriteRecord(r *Record) error {
	if w.err != nil {
		return w.err
	}
	if w.bcount == 0 {
		w.firstPC = r.PC
		w.prevPC = r.PC
		w.firstAddr = 0
		w.prevAddr = 0
		w.haveAddr = false
	}
	if opShape[uint8(r.Op)&0x7f]&shMem != 0 && !w.haveAddr {
		w.firstAddr = r.Addr
		w.prevAddr = r.Addr
		w.haveAddr = true
	}
	if w.opts.Codec&codecFixedBit != 0 {
		w.payload = appendRecordFixed(w.payload, r)
	} else {
		w.payload, w.prevPC, w.prevAddr = appendRecord2(w.payload, r, w.prevPC, w.prevAddr)
	}
	w.bcount++
	w.n++
	if w.bcount >= w.opts.BlockRecords {
		if err := w.flushBlock(); err != nil {
			return err
		}
	}
	return nil
}

// flushBlock emits the buffered block and resets the block state.
func (w *Writer2) flushBlock() error {
	if w.bcount == 0 {
		return nil
	}
	raw := w.payload
	enc := raw
	codec := w.opts.Codec &^ codecFlateBit
	if w.fw != nil {
		w.cbuf.Reset()
		w.fw.Reset(&w.cbuf)
		if _, err := w.fw.Write(raw); err != nil {
			w.err = err
			return err
		}
		if err := w.fw.Close(); err != nil {
			w.err = err
			return err
		}
		// Keep the block raw when DEFLATE failed to shrink it, so a
		// compressed file is never slower *and* bigger per block.
		if w.cbuf.Len() < len(raw) {
			enc = w.cbuf.Bytes()
			codec |= codecFlateBit
		}
	}
	hdr := blockHdr2{
		count: uint64(w.bcount), rawLen: uint64(len(raw)), codec: codec,
		encLen: uint64(len(enc)), firstPC: w.firstPC, firstAddr: w.firstAddr,
	}
	h := hdr.appendWire(w.hdrBuf[:0])
	// The CRC covers the header fields and the uncompressed payload, so a
	// corrupted delta anchor fails the checksum instead of silently
	// shifting every record in the block.
	h = binary.LittleEndian.AppendUint32(h, crc32.Update(crc32.Checksum(h, castagnoli), castagnoli, raw))
	w.hdrBuf = h
	if _, err := w.w.Write(h); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(enc); err != nil {
		w.err = err
		return err
	}
	size := uint64(len(h) + len(enc))
	w.idx = append(w.idx, indexEnt2{off: w.off, size: size, count: uint64(w.bcount)})
	w.off += size
	w.payload = w.payload[:0]
	w.bcount = 0
	return nil
}

// Close flushes the final block, writes the footer index and trailer, and
// flushes buffered bytes. It does not close the underlying writer.
func (w *Writer2) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.done {
		return nil
	}
	w.done = true
	if err := w.flushBlock(); err != nil {
		return err
	}
	footerOff := w.off
	f := w.hdrBuf[:0]
	f = append(f, blockKindFooter)
	f = appendUvarint(f, uint64(len(w.idx)))
	for _, e := range w.idx {
		f = appendUvarint(f, e.off)
		f = appendUvarint(f, e.size)
		f = appendUvarint(f, e.count)
	}
	f = appendUvarint(f, w.n)
	f = binary.LittleEndian.AppendUint32(f, crc32.Checksum(f, castagnoli))
	f = binary.LittleEndian.AppendUint64(f, footerOff)
	f = append(f, trailerMagic2...)
	w.hdrBuf = f
	if _, err := w.w.Write(f); err != nil {
		w.err = err
		return err
	}
	if err := w.w.Flush(); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Write2 encodes t to w in the VLT2 format. A zero opts selects defaults.
func Write2(w io.Writer, t *Trace, opts Writer2Options) error {
	w2, err := NewWriter2Opts(w, t.Name, t.Target, opts)
	if err != nil {
		return err
	}
	for i := range t.Records {
		if err := w2.WriteRecord(&t.Records[i]); err != nil {
			return err
		}
	}
	return w2.Close()
}
