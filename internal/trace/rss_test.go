package trace

import (
	"bufio"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// streamRSSRecords is sized so the in-memory equivalent would dominate the
// bound: 10M records at ~72 bytes each is ~720 MB materialized, while the
// streaming pipeline below must stay under streamRSSBoundMB.
const (
	streamRSSRecords = 10_000_000
	streamRSSBoundMB = 256
)

// vmHWMKB reads the process peak resident set (VmHWM) from
// /proc/self/status, in kilobytes.
func vmHWMKB(t *testing.T) int64 {
	t.Helper()
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		t.Skipf("cannot read /proc/self/status: %v", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			break
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			break
		}
		return kb
	}
	t.Skip("no VmHWM line in /proc/self/status")
	return 0
}

// TestStreamRSS is the bounded-memory gate for the tentpole: a synthetic
// 10M-record trace is encoded by the streaming Writer into a pipe and
// decoded by the streaming Reader on the other end, and the process peak
// RSS must stay far below what materializing the trace would cost. A
// regression that buffers the stream anywhere (writer, pipe, reader, or an
// accumulator that grows per record) trips the bound.
func TestStreamRSS(t *testing.T) {
	if testing.Short() {
		t.Skip("10M-record stream; skipped in -short")
	}
	if runtime.GOOS != "linux" {
		t.Skip("VmHWM is read from /proc; linux only")
	}

	seed := genTrace(64).Records
	pr, pw := io.Pipe()
	werr := make(chan error, 1)
	go func() {
		defer pw.Close()
		werr <- func() error {
			sw, err := NewWriterCount(pw, "rss", "ppc", streamRSSRecords)
			if err != nil {
				return err
			}
			rec := Record{}
			for i := 0; i < streamRSSRecords; i++ {
				rec = seed[i%len(seed)]
				rec.PC = uint64(0x1000 + 4*i)
				if err := sw.WriteRecord(&rec); err != nil {
					return err
				}
			}
			return sw.Close()
		}()
	}()

	sr, err := NewReader(bufio.NewReaderSize(pr, 1<<16))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	z := NewSummarizer(sr.Name(), sr.Target())
	n := 0
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next (record %d): %v", n, err)
		}
		z.Add(rec)
		n++
	}
	if err := <-werr; err != nil {
		t.Fatalf("writer: %v", err)
	}
	if n != streamRSSRecords {
		t.Fatalf("decoded %d records, want %d", n, streamRSSRecords)
	}
	if got := z.Summary().Instructions; got != streamRSSRecords {
		t.Fatalf("summarizer saw %d instructions, want %d", got, streamRSSRecords)
	}

	hwmKB := vmHWMKB(t)
	if hwmKB > streamRSSBoundMB*1024 {
		t.Fatalf("peak RSS %d MB while streaming %d records; bound is %d MB — "+
			"the pipeline is buffering somewhere",
			hwmKB/1024, streamRSSRecords, streamRSSBoundMB)
	}
	t.Logf("streamed %d records, peak RSS %d MB (bound %d MB)",
		n, hwmKB/1024, streamRSSBoundMB)
}
