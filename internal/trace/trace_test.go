package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"lvp/internal/isa"
)

func sampleTrace() *Trace {
	return &Trace{
		Name:   "sample",
		Target: "axp",
		Records: []Record{
			{PC: 0x1000, Op: isa.LI, Rd: 4, Imm: 42},
			{PC: 0x1004, Op: isa.LD, Rd: 5, Ra: 4, Imm: 8, Addr: 0x100008, Value: 0xDEAD, Size: 8, Class: isa.LoadIntData},
			{PC: 0x1008, Op: isa.SD, Rb: 5, Ra: 4, Imm: 16, Addr: 0x100010, Value: 0xDEAD, Size: 8},
			{PC: 0x100C, Op: isa.BEQ, Ra: 5, Rb: 0, Imm: 0x1000, Taken: true, Targ: 0x1000},
			{PC: 0x1000, Op: isa.LI, Rd: 4, Imm: 42},
			{PC: 0x1004, Op: isa.FLD, Rd: 1, Ra: 4, Imm: 8, Addr: 0x100008, Value: 0x3FF0000000000000, Size: 8, Class: isa.LoadFPData},
			{PC: 0x1008, Op: isa.JAL, Rd: 31, Imm: 0x2000, Taken: true, Targ: 0x2000},
			{PC: 0x2000, Op: isa.HALT},
		},
	}
}

func TestSummarize(t *testing.T) {
	s := sampleTrace().Summarize()
	if s.Instructions != 8 {
		t.Errorf("instructions = %d, want 8", s.Instructions)
	}
	if s.Loads != 2 || s.Stores != 1 || s.Branches != 2 {
		t.Errorf("loads/stores/branches = %d/%d/%d, want 2/1/2", s.Loads, s.Stores, s.Branches)
	}
	if s.CondBranches != 1 || s.TakenRate != 1.0 {
		t.Errorf("cond = %d taken = %v, want 1, 1.0", s.CondBranches, s.TakenRate)
	}
	if s.LoadsByClass[isa.LoadIntData] != 1 || s.LoadsByClass[isa.LoadFPData] != 1 {
		t.Errorf("class breakdown wrong: %v", s.LoadsByClass)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Name != tr.Name || got.Target != tr.Target {
		t.Errorf("header = %q/%q, want %q/%q", got.Name, got.Target, tr.Name, tr.Target)
	}
	if !reflect.DeepEqual(got.Records, tr.Records) {
		t.Errorf("records differ:\n got %+v\nwant %+v", got.Records, tr.Records)
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOPE----"))); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := Read(bytes.NewReader([]byte("VL"))); err == nil {
		t.Fatal("expected short-read error")
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	// Property: any syntactically valid trace round-trips exactly.
	rnd := rand.New(rand.NewSource(7))
	gen := func() *Trace {
		n := rnd.Intn(200)
		tr := &Trace{Name: "q", Target: "ppc", Records: make([]Record, n)}
		pc := uint64(0x1000)
		ops := []isa.Op{isa.ADD, isa.LW, isa.SD, isa.BEQ, isa.JAL, isa.FLD, isa.LI, isa.FDIV}
		for i := range tr.Records {
			op := ops[rnd.Intn(len(ops))]
			r := Record{
				PC: pc, Op: op,
				Rd: isa.Reg(rnd.Intn(32)), Ra: isa.Reg(rnd.Intn(32)), Rb: isa.Reg(rnd.Intn(32)),
				Imm: rnd.Int63n(1<<40) - (1 << 39),
			}
			if isa.IsLoad(op) || isa.IsStore(op) {
				r.Addr = rnd.Uint64() >> 8
				r.Value = rnd.Uint64()
				r.Size = uint8(isa.MemBytes(op))
				if isa.IsLoad(op) {
					r.Class = isa.LoadClass(1 + rnd.Intn(4))
				}
			}
			if isa.IsBranch(op) {
				r.Taken = rnd.Intn(2) == 0
				r.Targ = pc + uint64(rnd.Intn(4096))
			}
			tr.Records[i] = r
			pc += 4
		}
		return tr
	}
	for range 50 {
		tr := gen()
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !reflect.DeepEqual(got.Records, tr.Records) {
			t.Fatal("random trace did not round-trip")
		}
	}
}

func TestPredStateStrings(t *testing.T) {
	want := map[PredState]string{
		PredNone: "no-pred", PredIncorrect: "incorrect",
		PredCorrect: "correct", PredConstant: "constant",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("PredState(%d) = %q, want %q", p, p.String(), s)
		}
	}
}

func TestNewAnnotationSized(t *testing.T) {
	tr := sampleTrace()
	a := NewAnnotation(tr)
	if len(a) != len(tr.Records) {
		t.Fatalf("annotation len %d, want %d", len(a), len(tr.Records))
	}
	for _, p := range a {
		if p != PredNone {
			t.Fatal("annotation must start all PredNone")
		}
	}
}

func TestRecordInstRoundTrip(t *testing.T) {
	f := func(op uint8, rd, ra, rb uint8, imm int64) bool {
		r := Record{
			Op: isa.Op(op % uint8(isa.NumOps)), Rd: isa.Reg(rd % 32),
			Ra: isa.Reg(ra % 32), Rb: isa.Reg(rb % 32), Imm: imm,
		}
		in := r.Inst()
		return in.Op == r.Op && in.Rd == r.Rd && in.Ra == r.Ra && in.Rb == r.Rb && in.Imm == r.Imm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCodecPersistsResultValues(t *testing.T) {
	// Non-memory records carry result values (general value prediction);
	// the codec must round-trip them via the flagVal path.
	tr := &Trace{Name: "v", Target: "axp", Records: []Record{
		{PC: 0x1000, Op: isa.ADD, Rd: 5, Ra: 1, Rb: 2, Value: 0xCAFE},
		{PC: 0x1004, Op: isa.FADD, Rd: 2, Ra: 1, Rb: 3, Value: 0x3FF0000000000000},
		{PC: 0x1008, Op: isa.SUB, Rd: 6, Ra: 5, Rb: 5, Value: 0}, // zero omitted, still round-trips
	}}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Records, tr.Records) {
		t.Errorf("result values did not round-trip:\n got %+v\nwant %+v", got.Records, tr.Records)
	}
}

func TestCodecRobustAgainstGarbage(t *testing.T) {
	// Malformed inputs must produce errors, never panics or giant
	// allocations. Start from a valid encoding and corrupt it.
	var buf bytes.Buffer
	if err := Write(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	rnd := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		corrupt := append([]byte(nil), valid...)
		// Flip a few random bytes (keeping the magic intact half the
		// time so deeper paths get exercised).
		n := 1 + rnd.Intn(4)
		lo := 0
		if rnd.Intn(2) == 0 {
			lo = 4
		}
		for k := 0; k < n; k++ {
			pos := lo + rnd.Intn(len(corrupt)-lo)
			corrupt[pos] ^= byte(1 + rnd.Intn(255))
		}
		// Truncate sometimes.
		if rnd.Intn(3) == 0 {
			corrupt = corrupt[:rnd.Intn(len(corrupt))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("codec panicked on corrupt input: %v", r)
				}
			}()
			tr, err := Read(bytes.NewReader(corrupt))
			// Either an error, or a decode that at least respects
			// its own record count.
			if err == nil && tr == nil {
				t.Fatal("nil trace with nil error")
			}
		}()
	}
}
