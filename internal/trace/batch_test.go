package trace

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

// drainNext decodes an entire stream record-at-a-time, copying each record,
// and returns the records plus the terminal error (nil for a clean EOF).
func drainNext(r *Reader) ([]Record, error) {
	var recs []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, *rec)
	}
}

// drainBatch decodes an entire stream via NextBatch with the given buffer
// size and returns the records plus the terminal error (nil for clean EOF).
func drainBatch(r *Reader, bufSize int) ([]Record, error) {
	var recs []Record
	buf := make([]Record, bufSize)
	for {
		n, err := r.NextBatch(buf)
		recs = append(recs, buf[:n]...)
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
	}
}

// TestReaderNextBatchMatchesNext is the batch layer's codec differential:
// NextBatch must decode exactly the record sequence Next does, for buffer
// sizes spanning the degenerate (1), the awkward (odd, smaller than the
// peek window) and the typical (pump-sized and larger).
func TestReaderNextBatchMatchesNext(t *testing.T) {
	enc := encodeTrace(genTrace(5003))
	want, err := func() ([]Record, error) {
		r, err := NewReader(bytes.NewReader(enc))
		if err != nil {
			return nil, err
		}
		return drainNext(r)
	}()
	if err != nil {
		t.Fatal(err)
	}
	for _, bufSize := range []int{1, 3, 7, 64, 256, 4096} {
		r, err := NewReader(bytes.NewReader(enc))
		if err != nil {
			t.Fatal(err)
		}
		got, err := drainBatch(r, bufSize)
		if err != nil {
			t.Fatalf("bufSize %d: %v", bufSize, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("bufSize %d: batched decode differs from record-at-a-time", bufSize)
		}
	}
}

// TestReaderNextBatchErrorsMatchNext truncates and corrupts encoded streams
// at every byte offset: the batched reader must deliver exactly the records
// the record-at-a-time reader delivers and then fail with the identical
// error message (the fast path falls back to Next for anything invalid).
func TestReaderNextBatchErrorsMatchNext(t *testing.T) {
	enc := encodeTrace(genTrace(64))
	for off := 10; off < len(enc); off += 7 {
		// Truncation at off.
		runBatchErrDiff(t, enc[:off])
		// Single-byte corruption at off.
		mut := append([]byte(nil), enc...)
		mut[off] ^= 0xff
		runBatchErrDiff(t, mut)
	}
}

// runBatchErrDiff decodes enc through both paths and requires identical
// record prefixes and identical terminal errors. Header-level failures make
// NewReader itself fail; those are trivially identical.
func runBatchErrDiff(t *testing.T, enc []byte) {
	t.Helper()
	r1, err1 := NewReader(bytes.NewReader(enc))
	r2, err2 := NewReader(bytes.NewReader(enc))
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("NewReader divergence: %v vs %v", err1, err2)
	}
	if err1 != nil {
		return
	}
	want, wantErr := drainNext(r1)
	got, gotErr := drainBatch(r2, 256)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("decoded %d records via batch, %d via Next", len(got), len(want))
	}
	wantMsg, gotMsg := "", ""
	if wantErr != nil {
		wantMsg = wantErr.Error()
	}
	if gotErr != nil {
		gotMsg = gotErr.Error()
	}
	if wantMsg != gotMsg {
		t.Fatalf("error divergence:\n next  %q\n batch %q", wantMsg, gotMsg)
	}
}

// errAfterSource yields k records and then a non-EOF error in the same
// NextBatch call, exercising the records-then-error contract.
type errAfterSource struct {
	recs []Record
	err  error
	done bool
}

func (s *errAfterSource) Next() (*Record, PredState, error) { panic("batch only") }

func (s *errAfterSource) NextBatch(recs []Record, states []PredState) (int, error) {
	if s.done {
		return 0, s.err
	}
	s.done = true
	n := copy(recs, s.recs)
	for i := 0; i < n; i++ {
		states[i] = PredNone
	}
	return n, s.err
}

func (s *errAfterSource) Annotated() bool { return false }

// TestPumpMatchesReader pins the Pump adapter: re-buffering a batch-capable
// source must yield exactly the per-record sequence of the unbuffered
// source, including the PredNone states of a NoLVP wrapper.
func TestPumpMatchesReader(t *testing.T) {
	enc := encodeTrace(genTrace(3001))
	r1, err := NewReader(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	want, err := drainNext(r1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewReader(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	src := NoLVP(r2)
	if _, ok := src.(AnnotatedBatchSource); !ok {
		t.Fatal("NoLVP over a Reader must be batch-capable")
	}
	pump := Buffer(src)
	if _, ok := pump.(*Pump); !ok {
		t.Fatal("Buffer must re-buffer a batch-capable source through a Pump")
	}
	var got []Record
	for {
		rec, st, err := pump.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if st != PredNone {
			t.Fatalf("NoLVP state = %v, want PredNone", st)
		}
		got = append(got, *rec)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("pumped records differ from direct decode")
	}
	if pump.Annotated() {
		t.Fatal("NoLVP pump must not report annotations")
	}
}

// TestPumpDeliversRecordsBeforeError: when a batch arrives as (n > 0, err),
// the Pump must hand out all n records before surfacing the error, and the
// error must then be sticky.
func TestPumpDeliversRecordsBeforeError(t *testing.T) {
	boom := errors.New("boom")
	src := &errAfterSource{recs: genTrace(5).Records, err: boom}
	p := NewPump(src)
	for i := 0; i < 5; i++ {
		if _, _, err := p.Next(); err != nil {
			t.Fatalf("record %d: premature error %v", i, err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, _, err := p.Next(); err != boom {
			t.Fatalf("after drain: err = %v, want boom (sticky)", err)
		}
	}
}

// recordOnlySource strips a source down to the bare AnnotatedSource methods,
// hiding any batch/span capability of the wrapped source.
type recordOnlySource struct {
	src AnnotatedSource
}

func (s recordOnlySource) Next() (*Record, PredState, error) { return s.src.Next() }
func (s recordOnlySource) Annotated() bool                   { return s.src.Annotated() }

// TestBufferPassthrough: a per-record-only source must come back unchanged.
func TestBufferPassthrough(t *testing.T) {
	tr := genTrace(8)
	src := recordOnlySource{tr.StreamAnnotated(nil)}
	if got := Buffer(src); got != src {
		t.Fatal("Buffer must return per-record sources unchanged")
	}
}

// TestReaderNextBatchAllocFree pins the batched decode hot path at zero
// allocations per batch once the reader is constructed.
func TestReaderNextBatchAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	enc := encodeTrace(genTrace(200_000))
	r, err := NewReader(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]Record, 256)
	avg := testing.AllocsPerRun(500, func() {
		if _, err := r.NextBatch(buf); err != nil && err != io.EOF {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("Reader.NextBatch allocates %v allocs/batch, want 0", avg)
	}
}

// BenchmarkStreamDecodeBatch measures the batched VLT1 decode path; its
// per-record baseline is BenchmarkStreamDecode in stream_test.go, and the
// ratio is the bench harness's decode_batch_speedup trajectory metric.
func BenchmarkStreamDecodeBatch(b *testing.B) {
	enc := encodeTrace(genTrace(1 << 16))
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	buf := make([]Record, 256)
	for i := 0; i < b.N; i++ {
		r, err := NewReader(bytes.NewReader(enc))
		if err != nil {
			b.Fatal(err)
		}
		for {
			_, err := r.NextBatch(buf)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
