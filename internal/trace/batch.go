package trace

import (
	"encoding/binary"
	"io"
)

// Batched streaming. The PR-4 pull pipeline moves one record per interface
// call: gen → annotate → sim costs several dynamic dispatches per record,
// and the VLT1 Reader additionally pays an io.ByteReader interface call per
// varint *byte*. The batch layer amortizes all of that: sources that can
// produce records in bulk implement NextBatch, and Pump re-buffers any
// batch-capable source so record-at-a-time consumers (the cycle-level
// machine models) read from a local buffer instead of an interface chain.
//
// Batches never change what flows through the pipeline — only how many
// records move per call. The streamed-vs-in-memory differential gate and
// the NextBatch-vs-Next differentials in batch_test.go pin that equivalence.

// BatchSource is a Source that can also deliver records in bulk. NextBatch
// fills buf with as many records as are available, up to len(buf), and
// returns the count; unlike Next's reused pointer, the filled records are
// the caller's to keep. It returns n > 0 with a nil error while records
// remain, and (0, io.EOF) once the stream is exhausted. A decode or
// execution error may follow n > 0 already-valid records.
type BatchSource interface {
	Source
	NextBatch(buf []Record) (int, error)
}

// AnnotatedBatchSource is the batched form of AnnotatedSource: NextBatch
// fills recs and the parallel states slice (len(states) must be at least
// len(recs)) with the same contract as BatchSource.NextBatch.
type AnnotatedBatchSource interface {
	AnnotatedSource
	NextBatch(recs []Record, states []PredState) (int, error)
}

// AnnotatedSpanSource is an annotated source that can hand over
// internally-owned runs of records without copying: NextSpan returns the
// next non-empty run and its parallel prediction states. A nil states slice
// means every record in the run carries PredNone (the un-annotated case,
// saving a dead per-record state array). The returned slices are owned by
// the source and valid only until the next NextSpan call. Returns
// (nil, nil, io.EOF) once the stream is exhausted; an error may follow
// already-delivered spans.
//
// In-memory sources (Trace.StreamAnnotated) satisfy this by returning views
// of their backing arrays, which lets the machine models' batch loops run
// over the trace with zero per-record interface calls and zero copies.
type AnnotatedSpanSource interface {
	AnnotatedSource
	NextSpan() ([]Record, []PredState, error)
}

// SlabReader adapts any AnnotatedSource for slab-at-a-time consumption: each
// Next hands the caller a view of the next run of records and states. It
// picks the cheapest path the source supports — zero-copy spans, bulk
// NextBatch refills into an internal slab, or a record-at-a-time gather —
// so the timing models' fetch loops are written once against slabs and pay
// per-record interface dispatch only when the source offers nothing better.
// Errors follow the Pump discipline: records delivered before a decode
// failure are always handed over first; the error surfaces on the following
// Next call.
type SlabReader struct {
	src    AnnotatedSource
	batch  AnnotatedBatchSource
	span   AnnotatedSpanSource
	recs   [pumpBatch]Record
	states [pumpBatch]PredState
	err    error // pending error, delivered after the current slab drains
}

// NewSlabReader returns a SlabReader over src.
func NewSlabReader(src AnnotatedSource) *SlabReader {
	sr := &SlabReader{src: src}
	if sp, ok := src.(AnnotatedSpanSource); ok {
		sr.span = sp
	} else if bs, ok := src.(AnnotatedBatchSource); ok {
		sr.batch = bs
	}
	return sr
}

// Annotated reports whether the underlying source carries LVP annotations.
func (s *SlabReader) Annotated() bool { return s.src.Annotated() }

// Next returns the next non-empty slab of records and their states; a nil
// states slice means every record in the slab is PredNone. The slices are
// valid until the following Next call. io.EOF after the final slab.
func (s *SlabReader) Next() ([]Record, []PredState, error) {
	if s.err != nil {
		err := s.err
		s.err = nil
		return nil, nil, err
	}
	switch {
	case s.span != nil:
		recs, states, err := s.span.NextSpan()
		if len(recs) == 0 {
			if err == nil {
				err = io.EOF
			}
			return nil, nil, err
		}
		s.err = err
		return recs, states, nil
	case s.batch != nil:
		n, err := s.batch.NextBatch(s.recs[:], s.states[:])
		if n == 0 {
			if err == nil {
				err = io.EOF // a (0, nil) source would otherwise spin
			}
			return nil, nil, err
		}
		s.err = err
		return s.recs[:n], s.states[:n], nil
	}
	n := 0
	for n < len(s.recs) {
		r, pred, err := s.src.Next()
		if err != nil {
			if n == 0 {
				return nil, nil, err
			}
			s.err = err
			break
		}
		s.recs[n], s.states[n] = *r, pred
		n++
	}
	return s.recs[:n], s.states[:n], nil
}

// maxEncodedRecord bounds one VLT1 record's encoding: a 6-byte fixed
// header, up to two 10-byte varints (pc delta, imm), and at most one of
// {size byte + addr + value uvarints, value uvarint [+ target uvarint]} —
// 47 bytes in the widest (memory) shape, padded to a round 64 for the
// Reader's peek window.
const maxEncodedRecord = 64

// NextBatch decodes up to len(buf) records: the batched form of Next.
// Decoding works directly on the bufio peek window with slice-based varint
// reads, which removes the per-byte io.ByteReader dispatch that dominates
// Next; records that sit too close to the window's edge (or fail any
// validation) fall back to Next itself, so error messages and acceptance
// are byte-identical to the record-at-a-time path.
func (r *Reader) NextBatch(buf []Record) (int, error) {
	n := 0
	for n < len(buf) {
		if r.read >= r.count {
			if n > 0 {
				return n, nil
			}
			return 0, io.EOF
		}
		p, _ := r.br.Peek(maxEncodedRecord)
		if used := r.decodeFast(p, &buf[n]); used > 0 {
			r.br.Discard(used)
			r.read++
			n++
			continue
		}
		// Slow path: near EOF, a record spanning the peek window, or
		// anything invalid. Next re-reads the same bytes and produces the
		// canonical result or error.
		rec, err := r.Next()
		if err != nil {
			return n, err
		}
		buf[n] = *rec
		n++
	}
	return n, nil
}

// decodeFast decodes one record from p into rec and returns the bytes
// consumed, or 0 if p does not contain one complete, valid record (the
// caller then retries through the validating slow path, so "0" never skips
// input). It must accept exactly the records Next accepts; any doubt —
// unknown flags, flag/opcode disagreement, varint overflow, truncation —
// returns 0.
func (r *Reader) decodeFast(p []byte, rec *Record) int {
	if len(p) < 6 {
		return 0
	}
	flags := p[0]
	if flags&^(flagMem|flagTaken|flagTarg|flagVal) != 0 {
		return 0
	}
	*rec = Record{}
	rec.Op = isaOp(p[1])
	rec.Rd, rec.Ra, rec.Rb = isaReg(p[2]), isaReg(p[3]), isaReg(p[4])
	rec.Class = isaLoadClass(p[5])
	if mem := rec.IsLoad() || rec.IsStore(); (flags&flagMem != 0) != mem {
		return 0
	}
	if (flags&flagTarg != 0) != rec.IsBranch() {
		return 0
	}
	if flags&flagVal != 0 && flags&flagMem != 0 {
		return 0
	}
	off := 6
	dpc, k := binary.Varint(p[off:])
	if k <= 0 {
		return 0
	}
	off += k
	rec.Imm, k = binary.Varint(p[off:])
	if k <= 0 {
		return 0
	}
	off += k
	rec.Taken = flags&flagTaken != 0
	if flags&flagMem != 0 {
		if off >= len(p) {
			return 0
		}
		rec.Size = p[off]
		off++
		rec.Addr, k = binary.Uvarint(p[off:])
		if k <= 0 {
			return 0
		}
		off += k
		rec.Value, k = binary.Uvarint(p[off:])
		if k <= 0 {
			return 0
		}
		off += k
	}
	if flags&flagVal != 0 {
		rec.Value, k = binary.Uvarint(p[off:])
		if k <= 0 {
			return 0
		}
		off += k
	}
	if flags&flagTarg != 0 {
		rec.Targ, k = binary.Uvarint(p[off:])
		if k <= 0 {
			return 0
		}
		off += k
	}
	rec.PC = r.prevPC + uint64(dpc)
	r.prevPC = rec.PC
	return off
}

// noLVPBatch is NoLVP over a batch-capable source: record batches pass
// through, every state is PredNone.
type noLVPBatch struct {
	noLVP
	bs BatchSource
}

func (n noLVPBatch) NextBatch(recs []Record, states []PredState) (int, error) {
	m, err := n.bs.NextBatch(recs)
	for i := 0; i < m; i++ {
		states[i] = PredNone
	}
	return m, err
}

// pumpBatch is Pump's internal buffer size: large enough to amortize the
// per-batch interface call to nothing, small enough to stay resident in L1
// (256 records ≈ 20 KiB).
const pumpBatch = 256

// Pump adapts a batch-capable annotated source for record-at-a-time
// consumers: Next serves from a local buffer refilled via one NextBatch
// call per pumpBatch records, so a cycle-level model's fetch loop pays a
// buffer read instead of an interface-call chain. Records returned by Next
// stay valid until the buffer refills — the same one-call lifetime the
// AnnotatedSource contract gives.
type Pump struct {
	src    AnnotatedBatchSource
	recs   [pumpBatch]Record
	states [pumpBatch]PredState
	i, n   int
	err    error // error delivered after the buffered records drain
}

// NewPump returns a Pump buffering src.
func NewPump(src AnnotatedBatchSource) *Pump { return &Pump{src: src} }

// Buffer re-buffers src through a Pump when it is batch-capable and
// returns it unchanged otherwise, so callers can wrap unconditionally.
func Buffer(src AnnotatedSource) AnnotatedSource {
	if bs, ok := src.(AnnotatedBatchSource); ok {
		return NewPump(bs)
	}
	return src
}

// Next returns the next buffered record, refilling as needed.
func (p *Pump) Next() (*Record, PredState, error) {
	if p.i >= p.n {
		if p.err != nil {
			return nil, PredNone, p.err
		}
		n, err := p.src.NextBatch(p.recs[:], p.states[:])
		if n == 0 {
			if err == nil {
				err = io.EOF // a (0, nil) source would otherwise spin
			}
			p.err = err
			return nil, PredNone, err
		}
		p.i, p.n, p.err = 0, n, err
	}
	r := &p.recs[p.i]
	st := p.states[p.i]
	p.i++
	return r, st, nil
}

// Annotated reports whether the underlying source carries LVP annotations.
func (p *Pump) Annotated() bool { return p.src.Annotated() }
