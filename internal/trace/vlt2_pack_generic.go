//go:build !(386 || amd64 || arm || arm64 || loong64 || mips64le || mipsle || ppc64le || riscv64 || wasm)

package trace

import "lvp/internal/isa"

// storeRecTail is the portable fallback for platforms where the packed
// little-endian store in vlt2_pack_le.go does not apply: plain field
// assignments.
func storeRecTail(r *Record, op, rd, ra, rb, class, size, taken uint8) {
	r.Op = isa.Op(op)
	r.Rd = isa.Reg(rd)
	r.Ra = isa.Reg(ra)
	r.Rb = isa.Reg(rb)
	r.Class = isa.LoadClass(class)
	r.Size = size
	r.Taken = taken != 0
}

// recordBytes reports that CodecFixed payloads cannot bulk-copy into Record
// memory on this platform; the decoder falls back to per-field stores.
func recordBytes(buf []Record) []byte { return nil }
