package trace

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"lvp/internal/isa"
)

// genTrace builds a deterministic synthetic trace of n records cycling
// through every record shape the codec distinguishes (ALU with/without
// result value, load, store, branch), with pseudo-random addresses and
// values from a fixed-seed LCG. Only canonical field combinations are
// produced (no Size on non-memory records, no Targ on non-branches), so
// decode(encode(r)) == r for every record.
func genTrace(n int) *Trace {
	t := &Trace{Name: "gen", Target: "ppc"}
	t.Records = make([]Record, 0, n)
	x := uint64(0x9e3779b97f4a7c15)
	rnd := func() uint64 {
		x = x*6364136223846793005 + 1442695040888963407
		return x
	}
	pc := uint64(0x1000)
	for i := 0; i < n; i++ {
		var r Record
		switch i % 5 {
		case 0:
			r = Record{PC: pc, Op: isa.ADDI, Rd: 3, Ra: 1, Imm: int64(i % 1000), Value: rnd()}
		case 1:
			cls := isa.LoadIntData
			if i%2 == 0 {
				cls = isa.LoadDataAddr
			}
			r = Record{PC: pc, Op: isa.LD, Rd: 4, Ra: 3, Imm: 8,
				Addr: 0x2000 + rnd()%4096*8, Value: rnd(), Size: 8, Class: cls}
		case 2:
			r = Record{PC: pc, Op: isa.SD, Ra: 3, Rb: 4, Imm: 16,
				Addr: 0x4000 + rnd()%4096*8, Value: rnd(), Size: 8}
		case 3:
			taken := i%2 == 1
			targ := pc + 4
			if taken {
				targ = pc - 16*4
			}
			r = Record{PC: pc, Op: isa.BEQ, Ra: 4, Imm: -64, Taken: taken, Targ: targ}
			pc = targ - 4
		case 4:
			r = Record{PC: pc, Op: isa.ADD, Rd: 5, Ra: 3, Rb: 4, Value: rnd() & 0xffff}
		}
		t.Records = append(t.Records, r)
		pc += 4
	}
	return t
}

// memWriterAt is an in-memory io.Writer + io.WriterAt: appends on Write,
// overwrites on WriteAt. It lets tests exercise the Writer's backpatch path
// without a file.
type memWriterAt struct{ b []byte }

func (m *memWriterAt) Write(p []byte) (int, error) {
	m.b = append(m.b, p...)
	return len(p), nil
}

func (m *memWriterAt) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 || int(off)+len(p) > len(m.b) {
		return 0, errors.New("memWriterAt: write outside written region")
	}
	copy(m.b[off:], p)
	return len(p), nil
}

// encodePadded encodes t with the unknown-count streaming Writer, so the
// count field is the padded fixed-width form.
func encodePadded(t *Trace) []byte {
	var m memWriterAt
	sw, err := NewWriter(&m, t.Name, t.Target)
	if err != nil {
		panic(err)
	}
	for i := range t.Records {
		if err := sw.WriteRecord(&t.Records[i]); err != nil {
			panic(err)
		}
	}
	if err := sw.Close(); err != nil {
		panic(err)
	}
	return m.b
}

// decodeStream drains a Reader into a Trace, the long way around, so tests
// compare the streaming path against Read explicitly.
func decodeStream(tb testing.TB, data []byte) (*Reader, *Trace) {
	tb.Helper()
	sr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		tb.Fatalf("NewReader: %v", err)
	}
	t := &Trace{Name: sr.Name(), Target: sr.Target()}
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			return sr, t
		}
		if err != nil {
			tb.Fatalf("Next (record %d): %v", len(t.Records), err)
		}
		t.Records = append(t.Records, *rec)
	}
}

// TestReaderMatchesRead pins the tentpole invariant at the decode layer:
// the record-at-a-time Reader yields exactly the records the whole-trace
// Read materializes, for both count encodings.
func TestReaderMatchesRead(t *testing.T) {
	want := genTrace(1000)
	for _, enc := range []struct {
		name string
		data []byte
	}{
		{"minimal count", encodeTrace(want)},
		{"padded count", encodePadded(want)},
	} {
		t.Run(enc.name, func(t *testing.T) {
			ref, err := Read(bytes.NewReader(enc.data))
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			sr, got := decodeStream(t, enc.data)
			if got.Name != ref.Name || got.Target != ref.Target {
				t.Fatalf("header: got %q/%q, want %q/%q", got.Name, got.Target, ref.Name, ref.Target)
			}
			if !reflect.DeepEqual(got.Records, ref.Records) {
				t.Fatal("streaming decode differs from Read")
			}
			if !reflect.DeepEqual(got.Records, want.Records) {
				t.Fatal("decode differs from the source records")
			}
			if sr.Decoded() != sr.Count() || sr.Decoded() != uint64(len(want.Records)) {
				t.Fatalf("Decoded()=%d Count()=%d, want %d", sr.Decoded(), sr.Count(), len(want.Records))
			}
			// EOF is sticky.
			for i := 0; i < 3; i++ {
				if _, err := sr.Next(); err != io.EOF {
					t.Fatalf("Next after EOF: %v", err)
				}
			}
		})
	}
}

// TestPaddedEncodingLayout pins that the padded-count encoding differs from
// the minimal one only in the width of the count field: same header before
// it, byte-identical record stream after it.
func TestPaddedEncodingLayout(t *testing.T) {
	tr := genTrace(321)
	minimal := encodeTrace(tr)
	padded := encodePadded(tr)
	headerLen := len(magic) +
		uvarintLen(uint64(len(tr.Name))) + len(tr.Name) +
		uvarintLen(uint64(len(tr.Target))) + len(tr.Target)
	minCount := uvarintLen(uint64(len(tr.Records)))
	if !bytes.Equal(minimal[:headerLen], padded[:headerLen]) {
		t.Fatal("headers before the count field differ")
	}
	if !bytes.Equal(minimal[headerLen+minCount:], padded[headerLen+countFieldWidth:]) {
		t.Fatal("record streams after the count field differ")
	}
	if len(padded)-len(minimal) != countFieldWidth-minCount {
		t.Fatalf("padded is %d bytes longer, want %d", len(padded)-len(minimal), countFieldWidth-minCount)
	}
}

// TestWriterCountByteIdentical pins that the known-count streaming Writer
// produces byte-for-byte the same output as the whole-trace Write.
func TestWriterCountByteIdentical(t *testing.T) {
	tr := genTrace(500)
	var buf bytes.Buffer
	sw, err := NewWriterCount(&buf, tr.Name, tr.Target, uint64(len(tr.Records)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Records {
		if err := sw.WriteRecord(&tr.Records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if sw.Count() != uint64(len(tr.Records)) {
		t.Fatalf("Count()=%d, want %d", sw.Count(), len(tr.Records))
	}
	if !bytes.Equal(buf.Bytes(), encodeTrace(tr)) {
		t.Fatal("NewWriterCount output is not byte-identical to Write")
	}
}

// writeSeekerOnly hides an *os.File's WriteAt so the Writer's Close must
// take the io.WriteSeeker backpatch path.
type writeSeekerOnly struct{ f *os.File }

func (s writeSeekerOnly) Write(p []byte) (int, error)               { return s.f.Write(p) }
func (s writeSeekerOnly) Seek(off int64, whence int) (int64, error) { return s.f.Seek(off, whence) }

// TestStreamWriterBackpatch covers the unknown-count Writer against every
// backpatch capability: io.WriterAt (*os.File directly), io.WriteSeeker
// (file behind a seek-only wrapper), and neither (ErrNotSeekable).
func TestStreamWriterBackpatch(t *testing.T) {
	tr := genTrace(777)
	writeAll := func(t *testing.T, w io.Writer) *Writer {
		t.Helper()
		sw, err := NewWriter(w, tr.Name, tr.Target)
		if err != nil {
			t.Fatal(err)
		}
		for i := range tr.Records {
			if err := sw.WriteRecord(&tr.Records[i]); err != nil {
				t.Fatal(err)
			}
		}
		return sw
	}
	check := func(t *testing.T, path string) {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("decoding backpatched file: %v", err)
		}
		if got.Name != tr.Name || got.Target != tr.Target || !reflect.DeepEqual(got.Records, tr.Records) {
			t.Fatal("backpatched file does not decode to the source trace")
		}
	}

	t.Run("writerAt", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "wa.vlt")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		sw := writeAll(t, f)
		if err := sw.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		check(t, path)
	})

	t.Run("writeSeeker", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "ws.vlt")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		sw := writeAll(t, writeSeekerOnly{f})
		if err := sw.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		// After Close the file offset must be back at the end, so a caller
		// appending (or stat'ing size) sees the whole stream.
		off, err := f.Seek(0, io.SeekCurrent)
		if err != nil {
			t.Fatal(err)
		}
		fi, err := f.Stat()
		if err != nil {
			t.Fatal(err)
		}
		if off != fi.Size() {
			t.Fatalf("offset after Close = %d, want file size %d", off, fi.Size())
		}
		check(t, path)
	})

	t.Run("notSeekable", func(t *testing.T) {
		var buf bytes.Buffer
		sw := writeAll(t, &buf)
		if err := sw.Close(); !errors.Is(err, ErrNotSeekable) {
			t.Fatalf("Close = %v, want ErrNotSeekable", err)
		}
	})
}

// TestWriterCountMismatch pins the promised-count contract: Close fails
// with ErrCountMismatch when the writer lied about the record count, in
// either direction.
func TestWriterCountMismatch(t *testing.T) {
	tr := genTrace(5)
	for _, tc := range []struct {
		name    string
		promise uint64
		write   int
	}{
		{"fewer than promised", 5, 3},
		{"more than promised", 2, 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			sw, err := NewWriterCount(&buf, tr.Name, tr.Target, tc.promise)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < tc.write; i++ {
				if err := sw.WriteRecord(&tr.Records[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := sw.Close(); !errors.Is(err, ErrCountMismatch) {
				t.Fatalf("Close = %v, want ErrCountMismatch", err)
			}
			// The mismatch is sticky.
			if err := sw.Close(); !errors.Is(err, ErrCountMismatch) {
				t.Fatalf("second Close = %v, want ErrCountMismatch", err)
			}
		})
	}
}

// failAfterWriter errors once limit bytes have been written, modelling a
// full disk mid-stream.
type failAfterWriter struct {
	limit int
	n     int
}

var errDiskFull = errors.New("disk full")

func (f *failAfterWriter) Write(p []byte) (int, error) {
	if f.n+len(p) > f.limit {
		return 0, errDiskFull
	}
	f.n += len(p)
	return len(p), nil
}

// TestWriterStickyError pins that an underlying write failure surfaces from
// WriteRecord (not silently swallowed by buffering) and stays sticky for
// every later call including Close.
func TestWriterStickyError(t *testing.T) {
	tr := genTrace(64)
	sw, err := NewWriterCount(&failAfterWriter{limit: 1 << 16}, tr.Name, tr.Target, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	var werr error
	for i := 0; i < 1<<20 && werr == nil; i++ {
		werr = sw.WriteRecord(&tr.Records[i%len(tr.Records)])
	}
	if !errors.Is(werr, errDiskFull) {
		t.Fatalf("WriteRecord never surfaced the write error (got %v)", werr)
	}
	if err := sw.WriteRecord(&tr.Records[0]); !errors.Is(err, errDiskFull) {
		t.Fatalf("WriteRecord after failure = %v, want sticky error", err)
	}
	if err := sw.Close(); !errors.Is(err, errDiskFull) {
		t.Fatalf("Close after failure = %v, want sticky error", err)
	}
}

// TestHeaderStringCap pins the header-string allocation cap: a header
// declaring a name or target longer than MaxHeaderString is rejected with
// ErrStringTooLong before anything is allocated, while a string of exactly
// MaxHeaderString is accepted.
func TestHeaderStringCap(t *testing.T) {
	oversize := func(declared uint64) []byte {
		var buf bytes.Buffer
		buf.WriteString(magic)
		writeUvarintBuf(&buf, declared)
		return buf.Bytes()
	}
	t.Run("name over cap", func(t *testing.T) {
		_, err := NewReader(bytes.NewReader(oversize(MaxHeaderString + 1)))
		if !errors.Is(err, ErrStringTooLong) {
			t.Fatalf("NewReader = %v, want ErrStringTooLong", err)
		}
	})
	t.Run("absurd length, tiny input", func(t *testing.T) {
		// A 1<<60 declared length with no bytes behind it must fail on the
		// length check, not attempt the allocation and fail on ReadFull.
		_, err := NewReader(bytes.NewReader(oversize(1 << 60)))
		if !errors.Is(err, ErrStringTooLong) {
			t.Fatalf("NewReader = %v, want ErrStringTooLong", err)
		}
	})
	t.Run("read path too", func(t *testing.T) {
		_, err := Read(bytes.NewReader(oversize(MaxHeaderString + 1)))
		if !errors.Is(err, ErrStringTooLong) {
			t.Fatalf("Read = %v, want ErrStringTooLong", err)
		}
	})
	t.Run("exactly at cap accepted", func(t *testing.T) {
		name := strings.Repeat("n", MaxHeaderString)
		tr := &Trace{Name: name, Target: "ppc"}
		got, err := Read(bytes.NewReader(encodeTrace(tr)))
		if err != nil {
			t.Fatalf("Read rejected a %d-byte name: %v", MaxHeaderString, err)
		}
		if got.Name != name {
			t.Fatal("cap-length name did not round-trip")
		}
	})
}

func writeUvarintBuf(buf *bytes.Buffer, v uint64) {
	var tmp [10]byte
	for i := 0; ; i++ {
		if v < 0x80 {
			tmp[i] = byte(v)
			buf.Write(tmp[:i+1])
			return
		}
		tmp[i] = byte(v&0x7f) | 0x80
		v >>= 7
	}
}

// FuzzStreamRoundTrip is the streaming-layer twin of FuzzRoundTrip: the
// record-at-a-time Reader must never panic on arbitrary bytes, and any
// stream it fully decodes must re-encode (via the streaming Writer) to a
// stream that decodes to the same records.
func FuzzStreamRoundTrip(f *testing.F) {
	valid := encodeTrace(fuzzSeedTrace())
	f.Add(valid)
	f.Add(encodePadded(fuzzSeedTrace()))
	f.Add(encodeTrace(&Trace{Name: "empty", Target: "axp"}))
	f.Add(encodePadded(genTrace(17)))
	f.Add([]byte{})
	f.Add([]byte("VLT0"))
	f.Add([]byte("VLT1"))
	f.Add(valid[:len(valid)-3])
	f.Add(append([]byte("VLT1"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01))
	f.Add(append(bytes.Clone(valid), 0xAA))

	f.Fuzz(func(t *testing.T, data []byte) {
		sr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var recs []Record
		for {
			rec, err := sr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return // malformed record rejected; that is the contract
			}
			recs = append(recs, *rec)
		}
		// Fully decoded: stream it back out and decode again.
		var buf bytes.Buffer
		sw, err := NewWriterCount(&buf, sr.Name(), sr.Target(), uint64(len(recs)))
		if err != nil {
			t.Fatalf("NewWriterCount: %v", err)
		}
		for i := range recs {
			if err := sw.WriteRecord(&recs[i]); err != nil {
				t.Fatalf("WriteRecord %d: %v", i, err)
			}
		}
		if err := sw.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		sr2, got := decodeStream(t, buf.Bytes())
		if sr2.Name() != sr.Name() || sr2.Target() != sr.Target() {
			t.Fatalf("header drift: %q/%q -> %q/%q", sr.Name(), sr.Target(), sr2.Name(), sr2.Target())
		}
		if len(got.Records) != len(recs) {
			t.Fatalf("record count drift: %d -> %d", len(recs), len(got.Records))
		}
		for i := range recs {
			if !reflect.DeepEqual(recs[i], got.Records[i]) {
				t.Fatalf("record %d drift:\n got %+v\nwant %+v", i, got.Records[i], recs[i])
			}
		}
	})
}

// TestReaderNextAllocFree is the decode-side allocation-regression gate:
// after construction, Reader.Next must not allocate per record. A
// regression here silently re-introduces GC pressure proportional to trace
// length, which is exactly what the streaming layer exists to avoid.
func TestReaderNextAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	const n = 8192
	data := encodeTrace(genTrace(n))
	sr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ { // warm up
		if _, err := sr.Next(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(4096, func() {
		if _, err := sr.Next(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("Reader.Next allocates %.2f objects/record, want 0", avg)
	}
}

// TestWriterWriteRecordAllocFree is the encode-side twin: WriteRecord must
// not allocate per record.
func TestWriterWriteRecordAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	recs := genTrace(64).Records
	sw, err := NewWriterCount(io.Discard, "gen", "ppc", 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for ; i < 16; i++ { // warm up
		if err := sw.WriteRecord(&recs[i%len(recs)]); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(4096, func() {
		if err := sw.WriteRecord(&recs[i%len(recs)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if avg != 0 {
		t.Fatalf("Writer.WriteRecord allocates %.2f objects/record, want 0", avg)
	}
}

// BenchmarkStreamDecode measures the record-at-a-time decode hot path;
// BenchmarkMemDecode is the whole-trace Read baseline on the same bytes.
func BenchmarkStreamDecode(b *testing.B) {
	data := encodeTrace(genTrace(1 << 16))
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := sr.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkMemDecode(b *testing.B) {
	data := encodeTrace(genTrace(1 << 16))
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamEncode measures the record-at-a-time encode hot path;
// BenchmarkMemEncode is the whole-trace Write baseline.
func BenchmarkStreamEncode(b *testing.B) {
	tr := genTrace(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw, err := NewWriterCount(io.Discard, tr.Name, tr.Target, uint64(len(tr.Records)))
		if err != nil {
			b.Fatal(err)
		}
		for j := range tr.Records {
			if err := sw.WriteRecord(&tr.Records[j]); err != nil {
				b.Fatal(err)
			}
		}
		if err := sw.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemEncode(b *testing.B) {
	tr := genTrace(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Write(io.Discard, tr); err != nil {
			b.Fatal(err)
		}
	}
}
