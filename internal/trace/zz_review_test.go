package trace

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// Craft a VLT2 file whose footer index entry sizes overflow off+sz, wrapping
// the contiguity cursor, to see whether open/stageBlock panics.
func TestReviewFooterSizeOverflow(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter2(&buf, "n", "t")
	if err != nil {
		t.Fatal(err)
	}
	r := Record{PC: 0x1000}
	for i := 0; i < 3; i++ {
		if err := w.WriteRecord(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Locate the original footer via the trailer.
	fOff := binary.LittleEndian.Uint64(data[len(data)-trailerLen2:])
	hdrLen := uint64(4 + 1 + 2 + 2) // magic, version, "n", "t"

	// Rebuild: keep header+block bytes, forge a 2-entry footer:
	// entry0 off=hdrLen, sz wraps wantOff to 5; entry1 off=5, sz=fOff-5.
	out := append([]byte(nil), data[:fOff]...)
	f := []byte{blockKindFooter}
	f = appendUvarint(f, 2)
	f = appendUvarint(f, hdrLen)
	f = appendUvarint(f, (1<<64-1)-hdrLen+5+1) // off+sz ≡ 5 (mod 2^64)
	f = appendUvarint(f, 1)
	f = appendUvarint(f, 5)
	f = appendUvarint(f, fOff-5)
	f = appendUvarint(f, 2)
	f = appendUvarint(f, 3) // total records
	f = binary.LittleEndian.AppendUint32(f, crc32.Checksum(f, castagnoli))
	f = binary.LittleEndian.AppendUint64(f, fOff)
	f = append(f, trailerMagic2...)
	out = append(out, f...)

	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("panicked on hostile footer: %v", p)
		}
	}()
	ir, err := NewIndexedReaderBytes(out)
	if err != nil {
		t.Logf("open rejected: %v", err)
		return
	}
	var rb [8]Record
	_, err = ir.NextBatch(rb[:])
	t.Logf("NextBatch err: %v", err)
}
