package trace

import (
	"bytes"
	"reflect"
	"testing"

	"lvp/internal/isa"
)

// fuzzSeedTrace is a small hand-built trace exercising every record shape
// the codec distinguishes: loads/stores (mem fields), branches (target),
// plain ops with and without result values, and PC deltas in both
// directions.
func fuzzSeedTrace() *Trace {
	return &Trace{
		Name:   "seed",
		Target: "ppc",
		Records: []Record{
			{PC: 0x1000, Op: isa.ADDI, Rd: 3, Ra: 0, Imm: 42, Value: 42},
			{PC: 0x1004, Op: isa.LD, Rd: 4, Ra: 3, Imm: 8, Addr: 0x2008, Value: 0xdeadbeef, Size: 8, Class: isa.LoadIntData},
			{PC: 0x1008, Op: isa.SD, Rd: 0, Ra: 3, Rb: 4, Imm: 16, Addr: 0x2010, Value: 0xdeadbeef, Size: 8},
			{PC: 0x100c, Op: isa.BEQ, Ra: 4, Imm: -12, Taken: true, Targ: 0x1000},
			{PC: 0x1000, Op: isa.ADD, Rd: 5, Ra: 3, Rb: 4, Value: 0},
		},
	}
}

func encodeTrace(t *Trace) []byte {
	var buf bytes.Buffer
	if err := Write(&buf, t); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzRoundTrip feeds arbitrary bytes to the decoder. The invariants:
//
//  1. Read never panics — malformed inputs must return an error;
//  2. any trace Read accepts is canonical: decode(encode(decode(x))) ==
//     decode(x), record for record.
//
// The seed corpus covers a valid encoding of every record shape plus the
// malformed prefixes the decoder's error paths care about.
func FuzzRoundTrip(f *testing.F) {
	valid := encodeTrace(fuzzSeedTrace())
	f.Add(valid)
	f.Add(encodeTrace(&Trace{Name: "empty", Target: "axp"}))
	f.Add([]byte{})                                                                           // no magic
	f.Add([]byte("VLT0"))                                                                     // wrong magic
	f.Add([]byte("VLT1"))                                                                     // magic only
	f.Add(valid[:len(valid)-3])                                                               // truncated mid-record
	f.Add(append([]byte("VLT1"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01)) // huge name length
	f.Add(append(bytes.Clone(valid), 0xAA))                                                   // trailing garbage (ignored)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return // malformed input rejected; that is the contract
		}
		// Accepted input: encoding must succeed and decode back to the
		// exact same records.
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("Write of decoded trace failed: %v", err)
		}
		tr2, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of encoded trace failed: %v", err)
		}
		if tr.Name != tr2.Name || tr.Target != tr2.Target {
			t.Fatalf("header drift: %q/%q -> %q/%q", tr.Name, tr.Target, tr2.Name, tr2.Target)
		}
		if len(tr.Records) != len(tr2.Records) {
			t.Fatalf("record count drift: %d -> %d", len(tr.Records), len(tr2.Records))
		}
		for i := range tr.Records {
			if !reflect.DeepEqual(tr.Records[i], tr2.Records[i]) {
				t.Fatalf("record %d drift:\n got %+v\nwant %+v", i, tr2.Records[i], tr.Records[i])
			}
		}
	})
}

// TestRoundTripSeed pins decode(encode(t)) == t for the seed trace in a
// plain test, so the property is checked on every `go test` run, not only
// under -fuzz.
func TestRoundTripSeed(t *testing.T) {
	want := fuzzSeedTrace()
	got, err := Read(bytes.NewReader(encodeTrace(want)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != want.Name || got.Target != want.Target {
		t.Fatalf("header: got %q/%q", got.Name, got.Target)
	}
	if !reflect.DeepEqual(got.Records, want.Records) {
		t.Fatalf("records differ:\n got %+v\nwant %+v", got.Records, want.Records)
	}
}

// TestReadRejectsMalformed pins the decoder's strictness: inconsistent
// flag/opcode combinations and resource-exhaustion headers error cleanly.
func TestReadRejectsMalformed(t *testing.T) {
	valid := encodeTrace(fuzzSeedTrace())
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"unknown flag bits", func(b []byte) []byte {
			// First record's flag byte follows magic + "seed" + "ppc"
			// (uvarint len + bytes each) + count uvarint.
			b[4+5+4+1] |= 0x80
			return b
		}},
		{"truncated", func(b []byte) []byte { return b[:len(b)-1] }},
		{"huge record count", func([]byte) []byte {
			var buf bytes.Buffer
			buf.WriteString("VLT1")
			buf.Write([]byte{1, 'x'}) // name "x"
			buf.Write([]byte{1, 'y'}) // target "y"
			// count = 2^33: over the plausibility bound.
			buf.Write([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01})
			return buf.Bytes()
		}},
		{"mem flag on non-mem op", func([]byte) []byte {
			tr := &Trace{Name: "x", Target: "y", Records: []Record{{PC: 4, Op: isa.ADD}}}
			b := encodeTrace(tr)
			b[4+2+2+1] |= flagMem // flip the ADD record's flag byte
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(bytes.Clone(valid))
			if _, err := Read(bytes.NewReader(data)); err == nil {
				t.Fatalf("Read accepted malformed input (%s)", tc.name)
			}
		})
	}
}
