//go:build race

package trace

// raceEnabled gates the allocation-regression tests, which measure
// allocs/op and are meaningless under the race detector's instrumentation.
const raceEnabled = true
