package bench

import (
	"lvp/internal/isa"
	"lvp/internal/prog"
)

func init() {
	register(Benchmark{
		Name:        "doduc",
		Description: "Monte-Carlo reactor kernel: FP constant tables, branchy event paths",
		Input:       "synthetic cross-section tables, 3000+ events",
		FP:          true,
		Build:       buildDoduc,
	})
	register(Benchmark{
		Name:        "hydro2d",
		Description: "2D hydrodynamics stencil with large quiescent regions",
		Input:       "48x32 grid, 70% quiescent cells",
		FP:          true,
		Build:       buildHydro2d,
	})
	register(Benchmark{
		Name:        "swm256",
		Description: "shallow water model: every grid value changes per step (poor locality)",
		Input:       "26x26 grids, 5 time steps",
		FP:          true,
		Build:       buildSwm256,
	})
	register(Benchmark{
		Name:        "tomcatv",
		Description: "mesh relaxation: coordinates move every sweep (poor locality)",
		Input:       "28x28 mesh, 4 sweeps",
		FP:          true,
		Build:       buildTomcatv,
	})
}

// outF emits CVTFI of an FP register (scaled) followed by OUT, as a
// checksum channel for FP benchmarks.
func outF(b *prog.Builder, fs isa.Reg) {
	b.LoadConstF(prog.FT7, 1024.0)
	b.Op3(isa.FMUL, prog.FT6, fs, prog.FT7)
	b.Emit(isa.Inst{Op: isa.CVTFI, Rd: prog.T0, Ra: prog.FT6})
	b.Out(prog.T0)
}

func buildDoduc(t prog.Target, scale int) (*prog.Program, error) {
	scale = clampScale(scale)
	b := prog.New("doduc", t)
	r := newRNG(1212 + targetSalt(t.Name))
	// Cross-section tables: FP constants indexed by a small energy group
	// number. These loads recur constantly (high FP locality for doduc's
	// class of code).
	const groups = 8
	xsAbs := make([]float64, groups)
	xsScat := make([]float64, groups)
	for i := range xsAbs {
		xsAbs[i] = 0.05 + 0.1*r.float64()
		xsScat[i] = 0.3 + 0.4*r.float64()
	}
	b.Floats64("xsabs", xsAbs)
	b.Floats64("xsscat", xsScat)
	const particles = 128
	pos := make([]float64, particles)
	for i := range pos {
		pos[i] = r.float64()
	}
	b.Floats64("pos", pos)
	b.Zeros("errflag", 8)
	events := int64(2000 * scale)

	f := b.Func("main", 4, prog.S0, prog.S1, prog.S2, prog.S3, prog.S4, prog.S5)
	f.MarkPtr(prog.S2, prog.S3, prog.S4)
	f.SaveFP(prog.FS0, prog.FS1, prog.FS2, prog.FS3)
	b.LoadConstF(prog.FS2, 0.5) // hoisted loop constants (as a compiler would)
	b.LoadConstF(prog.FS3, 0.3)
	b.MaterializeInt(prog.S0, events)
	b.Li(prog.S1, 0) // event counter
	b.GotData(prog.S2, "xsabs")
	b.GotData(prog.S3, "xsscat")
	b.GotData(prog.S4, "pos")
	b.LoadConstF(prog.FS0, 0.0)           // absorbed tally
	b.LoadConstF(prog.FS1, 0.0)           // scattered tally
	b.Li(prog.S5, 0)                      // tracked particle offset
	b.MaterializeInt(prog.T9, 2463534242) // xorshift state (32-bit-pool safe)
	loop, done := b.NewLabel("eloop"), b.NewLabel("edone")
	b.Label(loop)
	b.Branch(isa.BGE, prog.S1, prog.S0, done)
	// xorshift64 step in-program
	b.OpI(isa.SHLI, prog.T0, prog.T9, 13)
	b.Op3(isa.XOR, prog.T9, prog.T9, prog.T0)
	b.OpI(isa.SHRI, prog.T0, prog.T9, 7)
	b.Op3(isa.XOR, prog.T9, prog.T9, prog.T0)
	b.OpI(isa.SHLI, prog.T0, prog.T9, 17)
	b.Op3(isa.XOR, prog.T9, prog.T9, prog.T0)
	// Tracked-particle update: the kernel follows one particle for a
	// while (S5 holds its offset), re-loading its position every event
	// but only moving it on a minority of events — so the position load
	// is usually value-local, like doduc's slowly-evolving state scalars.
	b.OpI(isa.SHRI, prog.T0, prog.T9, 24)
	b.OpI(isa.ANDI, prog.T0, prog.T0, 15)
	keepP := b.NewLabel("keepp")
	b.Branch(isa.BNE, prog.T0, prog.Zero, keepP) // 1/16: switch particle
	b.OpI(isa.SHRI, prog.S5, prog.T9, 16)
	b.OpI(isa.ANDI, prog.S5, prog.S5, particles-1)
	b.OpI(isa.SHLI, prog.S5, prog.S5, 3)
	b.Label(keepP)
	b.Op3(isa.ADD, prog.T1, prog.S5, prog.S4)
	b.Load(isa.FLD, prog.FT3, prog.T1, 0, isa.LoadFPData) // pos (mostly unchanged)
	b.OpI(isa.SHRI, prog.T0, prog.T9, 28)
	b.OpI(isa.ANDI, prog.T0, prog.T0, 3)
	noMove := b.NewLabel("nomove")
	b.Branch(isa.BNE, prog.T0, prog.Zero, noMove) // 3/4: no movement
	b.Op3(isa.FMUL, prog.FT3, prog.FT3, prog.FS2)
	b.Op3(isa.FADD, prog.FT3, prog.FT3, prog.FS3)
	b.Store(isa.FSD, prog.FT3, prog.T1, 0)
	b.Label(noMove)
	// group = state & 7; path = (state >> 8) & 3: absorption (0) dispatches
	// through a jump table so each energy group has its own static load of
	// its cross-section (doduc's unrolled physics scalars: high locality);
	// scatter (1-3) uses one indexed load over 8 changing values (poor
	// depth-1 locality, good depth-16).
	b.OpI(isa.ANDI, prog.T1, prog.T9, groups-1)
	b.OpI(isa.SHRI, prog.T3, prog.T9, 8)
	b.OpI(isa.ANDI, prog.T3, prog.T3, 7)
	next, scatter := b.NewLabel("next"), b.NewLabel("scat")
	b.Branch(isa.BNE, prog.T3, prog.Zero, scatter)
	caseLabels := make([]string, groups)
	for g := range caseLabels {
		caseLabels[g] = b.NewLabel("grp")
	}
	b.Switch(prog.T1, prog.T5, "doduc_jt", caseLabels, next)
	for g := 0; g < groups; g++ {
		b.Label(caseLabels[g])
		b.Load(isa.FLD, prog.FT0, prog.S2, int64(g*8), isa.LoadFPData) // xsabs[g]
		b.Op3(isa.FADD, prog.FS0, prog.FS0, prog.FT0)
		b.Jump(next)
	}
	b.Label(scatter)
	b.OpI(isa.SHLI, prog.T4, prog.T1, 3)
	b.Op3(isa.ADD, prog.T4, prog.T4, prog.S3)
	b.Load(isa.FLD, prog.FT1, prog.T4, 0, isa.LoadFPData) // xsscat[group]
	b.Op3(isa.FMUL, prog.FT1, prog.FT1, prog.FS2)
	b.Op3(isa.FADD, prog.FS1, prog.FS1, prog.FT1)
	b.Label(next)
	b.OpI(isa.ADDI, prog.S1, prog.S1, 1)
	b.Jump(loop)
	b.Label(done)
	b.ErrorCheck("errflag", "doducfail")
	outF(b, prog.FS0)
	outF(b, prog.FS1)
	f.Epilogue()

	b.Label("doducfail")
	b.Li(prog.A0, -1)
	b.Out(prog.A0)
	b.Halt()

	return b.Build()
}

func buildHydro2d(t prog.Target, scale int) (*prog.Program, error) {
	scale = clampScale(scale)
	b := prog.New("hydro2d", t)
	r := newRNG(1313 + targetSalt(t.Name))
	const nx, ny = 48, 32
	// Density grid: mostly-quiescent fluid. Quiescent cells keep their
	// initial constant value forever, so their stencil loads recur.
	rho := make([]float64, nx*ny)
	active := make([]int64, nx*ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			idx := j*nx + i
			rho[idx] = 1.0
			// a moving blob in the middle third is active
			if i > nx/3 && i < 2*nx/3 && j > ny/3 && j < 2*ny/3 && r.intn(10) < 8 {
				active[idx] = 1
				rho[idx] = 1.0 + r.float64()
			}
		}
	}
	b.Floats64("rho", rho)
	b.WordsPtr("active", active)
	b.Zeros("errflag", 8)
	steps := int64(6 * scale)

	sh := b.PtrShift()

	f := b.Func("main", 2, prog.S0, prog.S1, prog.S2, prog.S3, prog.S4, prog.S5)
	f.MarkPtr(prog.S0, prog.S1)
	f.SaveFP(prog.FS0, prog.FS1)
	b.GotData(prog.S0, "rho")
	b.GotData(prog.S1, "active")
	b.MaterializeInt(prog.S2, steps)
	b.Li(prog.S3, 0) // step
	b.LoadConstF(prog.FS0, 0.0)
	b.LoadConstF(prog.FS1, 0.2) // hoisted loop constant
	sloop, sdone := b.NewLabel("sloop"), b.NewLabel("sdone")
	b.Label(sloop)
	b.Branch(isa.BGE, prog.S3, prog.S2, sdone)
	// interior sweep
	b.MaterializeInt(prog.S4, nx+1) // start index (row 1, col 1)
	b.MaterializeInt(prog.S5, nx*(ny-1)-1)
	cloop, cdone := b.NewLabel("cloop"), b.NewLabel("cdone")
	b.Label(cloop)
	b.Branch(isa.BGE, prog.S4, prog.S5, cdone)
	// if !active[idx] skip (flag loads: mostly 0, high locality)
	b.OpI(isa.SHLI, prog.T0, prog.S4, sh)
	b.Op3(isa.ADD, prog.T0, prog.T0, prog.S1)
	b.LoadInt(prog.T1, prog.T0, 0)
	skip := b.NewLabel("skip")
	b.Branch(isa.BEQ, prog.T1, prog.Zero, skip)
	// rho[idx] = 0.2*(rho[idx] + n + s + e + w) — neighbours are often
	// quiescent constants.
	b.OpI(isa.SHLI, prog.T2, prog.S4, 3)
	b.Op3(isa.ADD, prog.T2, prog.T2, prog.S0)
	b.Load(isa.FLD, prog.FT0, prog.T2, 0, isa.LoadFPData)
	b.Load(isa.FLD, prog.FT1, prog.T2, -8, isa.LoadFPData)
	b.Load(isa.FLD, prog.FT2, prog.T2, 8, isa.LoadFPData)
	b.Load(isa.FLD, prog.FT3, prog.T2, -8*nx, isa.LoadFPData)
	b.Load(isa.FLD, prog.FT4, prog.T2, 8*nx, isa.LoadFPData)
	b.Op3(isa.FADD, prog.FT0, prog.FT0, prog.FT1)
	b.Op3(isa.FADD, prog.FT0, prog.FT0, prog.FT2)
	b.Op3(isa.FADD, prog.FT0, prog.FT0, prog.FT3)
	b.Op3(isa.FADD, prog.FT0, prog.FT0, prog.FT4)
	b.Op3(isa.FMUL, prog.FT0, prog.FT0, prog.FS1)
	b.Store(isa.FSD, prog.FT0, prog.T2, 0)
	b.Op3(isa.FADD, prog.FS0, prog.FS0, prog.FT0)
	b.Label(skip)
	b.OpI(isa.ADDI, prog.S4, prog.S4, 1)
	b.Jump(cloop)
	b.Label(cdone)
	b.OpI(isa.ADDI, prog.S3, prog.S3, 1)
	b.Jump(sloop)
	b.Label(sdone)
	b.ErrorCheck("errflag", "hydrofail")
	outF(b, prog.FS0)
	f.Epilogue()

	b.Label("hydrofail")
	b.Li(prog.A0, -1)
	b.Out(prog.A0)
	b.Halt()

	return b.Build()
}

func buildSwm256(t prog.Target, scale int) (*prog.Program, error) {
	scale = clampScale(scale)
	b := prog.New("swm256", t)
	r := newRNG(1414 + targetSalt(t.Name))
	const n = 26
	u := make([]float64, n*n)
	v := make([]float64, n*n)
	p := make([]float64, n*n)
	for i := range u {
		u[i] = r.float64()
		v[i] = r.float64()
		p[i] = 10 + r.float64()
	}
	b.Floats64("u", u)
	b.Floats64("v", v)
	b.Floats64("p", p)
	// dt and tdt are COMMON-block variables in the real swm256; the
	// compiler reloads them inside the inner loop every iteration. They
	// are the benchmark's only value-local loads (paper Table 4 shows
	// swm256 at 8-17% constants despite its poor overall locality).
	b.Floats64("dt", []float64{0.01})
	b.Floats64("tdt", []float64{0.005})
	b.Zeros("errflag", 8)
	steps := int64(5 * scale)

	// main: every step rewrites every interior value of all three grids
	// from neighbour values — nothing recurs, reproducing swm256's poor
	// value locality.
	f := b.Func("main", 2, prog.S0, prog.S1, prog.S2, prog.S3, prog.S4, prog.S5, prog.S6)
	f.MarkPtr(prog.S0, prog.S1, prog.S2)
	f.SaveFP(prog.FS0)
	b.GotData(prog.S0, "u")
	b.GotData(prog.S1, "v")
	b.GotData(prog.S2, "p")
	b.MaterializeInt(prog.S3, steps)
	b.Li(prog.S4, 0)
	b.LoadConstF(prog.FS0, 0.0)
	dtOff := int64(b.SymbolAddr("dt") - prog.DataBase)
	tdtOff := int64(b.SymbolAddr("tdt") - prog.DataBase)
	sloop, sdone := b.NewLabel("sloop"), b.NewLabel("sdone")
	b.Label(sloop)
	b.Branch(isa.BGE, prog.S4, prog.S3, sdone)
	b.MaterializeInt(prog.S5, n+1)
	b.MaterializeInt(prog.S6, n*(n-1)-1)
	cloop, cdone := b.NewLabel("cloop"), b.NewLabel("cdone")
	b.Label(cloop)
	b.Branch(isa.BGE, prog.S5, prog.S6, cdone)
	b.OpI(isa.SHLI, prog.T0, prog.S5, 3)
	b.Op3(isa.ADD, prog.T1, prog.T0, prog.S0) // &u[idx]
	b.Op3(isa.ADD, prog.T2, prog.T0, prog.S1) // &v[idx]
	b.Op3(isa.ADD, prog.T3, prog.T0, prog.S2) // &p[idx]
	// u += 0.01*(p[e]-p[w]); v += 0.01*(p[n]-p[s]); p += 0.005*(u+v)
	b.Load(isa.FLD, prog.FT0, prog.T3, 8, isa.LoadFPData)
	b.Load(isa.FLD, prog.FT1, prog.T3, -8, isa.LoadFPData)
	b.Op3(isa.FSUB, prog.FT0, prog.FT0, prog.FT1)
	b.Load(isa.FLD, prog.FT5, prog.GP, dtOff, isa.LoadFPData) // dt (COMMON var)
	b.Op3(isa.FMUL, prog.FT0, prog.FT0, prog.FT5)
	b.Load(isa.FLD, prog.FT2, prog.T1, 0, isa.LoadFPData)
	b.Op3(isa.FADD, prog.FT2, prog.FT2, prog.FT0)
	b.Store(isa.FSD, prog.FT2, prog.T1, 0)
	b.Load(isa.FLD, prog.FT0, prog.T3, 8*n, isa.LoadFPData)
	b.Load(isa.FLD, prog.FT1, prog.T3, -8*n, isa.LoadFPData)
	b.Op3(isa.FSUB, prog.FT0, prog.FT0, prog.FT1)
	b.Op3(isa.FMUL, prog.FT0, prog.FT0, prog.FT5)
	b.Load(isa.FLD, prog.FT3, prog.T2, 0, isa.LoadFPData)
	b.Op3(isa.FADD, prog.FT3, prog.FT3, prog.FT0)
	b.Store(isa.FSD, prog.FT3, prog.T2, 0)
	b.Op3(isa.FADD, prog.FT4, prog.FT2, prog.FT3)
	b.Load(isa.FLD, prog.FT6, prog.GP, tdtOff, isa.LoadFPData) // tdt (COMMON var)
	b.Op3(isa.FMUL, prog.FT4, prog.FT4, prog.FT6)
	b.Load(isa.FLD, prog.FT1, prog.T3, 0, isa.LoadFPData)
	b.Op3(isa.FADD, prog.FT1, prog.FT1, prog.FT4)
	b.Store(isa.FSD, prog.FT1, prog.T3, 0)
	b.Op3(isa.FADD, prog.FS0, prog.FS0, prog.FT1)
	b.OpI(isa.ADDI, prog.S5, prog.S5, 1)
	b.Jump(cloop)
	b.Label(cdone)
	b.OpI(isa.ADDI, prog.S4, prog.S4, 1)
	b.Jump(sloop)
	b.Label(sdone)
	b.ErrorCheck("errflag", "swmfail")
	outF(b, prog.FS0)
	f.Epilogue()

	b.Label("swmfail")
	b.Li(prog.A0, -1)
	b.Out(prog.A0)
	b.Halt()

	return b.Build()
}

func buildTomcatv(t prog.Target, scale int) (*prog.Program, error) {
	scale = clampScale(scale)
	b := prog.New("tomcatv", t)
	r := newRNG(1515 + targetSalt(t.Name))
	const n = 28
	x := make([]float64, n*n)
	y := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			x[j*n+i] = float64(i) + 0.3*r.float64()
			y[j*n+i] = float64(j) + 0.3*r.float64()
		}
	}
	b.Floats64("mx", x)
	b.Floats64("my", y)
	b.Zeros("errflag", 8)
	sweeps := int64(4 * scale)

	// main: Jacobi-style relaxation of both coordinate grids; every
	// coordinate moves every sweep (poor locality, like the paper's
	// tomcatv).
	f := b.Func("main", 4, prog.S0, prog.S1, prog.S2, prog.S3, prog.S4, prog.S5)
	f.MarkPtr(prog.S0, prog.S1)
	f.SaveFP(prog.FS0, prog.FS1, prog.FS2)
	b.GotData(prog.S0, "mx")
	b.GotData(prog.S1, "my")
	b.MaterializeInt(prog.S2, sweeps)
	b.Li(prog.S3, 0)
	b.LoadConstF(prog.FS0, 0.0)
	b.LoadConstF(prog.FS1, 0.25) // hoisted loop constants
	b.LoadConstF(prog.FS2, 0.9)
	sloop, sdone := b.NewLabel("sloop"), b.NewLabel("sdone")
	b.Label(sloop)
	b.Branch(isa.BGE, prog.S3, prog.S2, sdone)
	b.MaterializeInt(prog.S4, n+1)
	b.MaterializeInt(prog.S5, n*(n-1)-1)
	cloop, cdone := b.NewLabel("cloop"), b.NewLabel("cdone")
	b.Label(cloop)
	b.Branch(isa.BGE, prog.S4, prog.S5, cdone)
	b.OpI(isa.SHLI, prog.T0, prog.S4, 3)
	relax := func(base isa.Reg) {
		b.Op3(isa.ADD, prog.T1, prog.T0, base)
		b.Load(isa.FLD, prog.FT0, prog.T1, 8, isa.LoadFPData)
		b.Load(isa.FLD, prog.FT1, prog.T1, -8, isa.LoadFPData)
		b.Load(isa.FLD, prog.FT2, prog.T1, 8*n, isa.LoadFPData)
		b.Load(isa.FLD, prog.FT3, prog.T1, -8*n, isa.LoadFPData)
		b.Op3(isa.FADD, prog.FT0, prog.FT0, prog.FT1)
		b.Op3(isa.FADD, prog.FT0, prog.FT0, prog.FT2)
		b.Op3(isa.FADD, prog.FT0, prog.FT0, prog.FT3)
		b.Op3(isa.FMUL, prog.FT0, prog.FT0, prog.FS1)
		// over-relaxation blend with current value
		b.Load(isa.FLD, prog.FT5, prog.T1, 0, isa.LoadFPData)
		b.Op3(isa.FSUB, prog.FT6, prog.FT0, prog.FT5)
		b.Op3(isa.FMUL, prog.FT6, prog.FT6, prog.FS2)
		b.Op3(isa.FADD, prog.FT5, prog.FT5, prog.FT6)
		b.Store(isa.FSD, prog.FT5, prog.T1, 0)
		b.Op3(isa.FADD, prog.FS0, prog.FS0, prog.FT6)
	}
	relax(prog.S0)
	relax(prog.S1)
	b.OpI(isa.ADDI, prog.S4, prog.S4, 1)
	b.Jump(cloop)
	b.Label(cdone)
	b.OpI(isa.ADDI, prog.S3, prog.S3, 1)
	b.Jump(sloop)
	b.Label(sdone)
	b.ErrorCheck("errflag", "tomfail")
	outF(b, prog.FS0)
	f.Epilogue()

	b.Label("tomfail")
	b.Li(prog.A0, -1)
	b.Out(prog.A0)
	b.Halt()

	return b.Build()
}
