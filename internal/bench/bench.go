// Package bench provides the benchmark suite: seventeen synthetic workloads,
// one per benchmark in the paper's Table 1, written in the VLR ISA via the
// prog builder.
//
// The paper traced SPEC92/95 binaries and common Unix utilities; those
// binaries and their reference compilers are not reproducible here, so each
// workload is a from-scratch program engineered to perform the same *kind*
// of computation and, crucially, to exhibit the same code-generation idioms
// the paper identifies as the sources of load value locality (§2): constant
// pool loads, GOT/TOC addressing, callee-save/link-register restores,
// register spills, alias re-loads, switch tables, virtual dispatch,
// error-check flags, and redundant input data. Workloads known in the paper
// to have poor value locality (cjpeg, swm256, tomcatv) are built around
// always-changing data so their loads genuinely do not recur.
//
// All inputs are generated with a fixed-seed PRNG at build time and baked
// into the program image, so every run is bit-for-bit deterministic.
package bench

import (
	"fmt"

	"lvp/internal/prog"
)

// Benchmark is one synthetic workload.
type Benchmark struct {
	// Name matches the paper's benchmark name (e.g. "grep").
	Name string
	// Description summarises the computation, mirroring paper Table 1.
	Description string
	// Input describes the synthetic input, mirroring paper Table 1.
	Input string
	// FP reports whether this is a floating-point benchmark.
	FP bool
	// Build constructs the program for a target at the given scale.
	// Scale 1 is the default run length (roughly 10^5 dynamic
	// instructions); larger scales grow the input/iteration counts
	// roughly linearly.
	Build func(t prog.Target, scale int) (*prog.Program, error)
}

var all []Benchmark

func register(b Benchmark) {
	all = append(all, b)
}

// All returns the full suite in the paper's (alphabetical) reporting order.
func All() []Benchmark {
	out := make([]Benchmark, len(all))
	copy(out, all)
	return out
}

// Names returns the benchmark names in reporting order.
func Names() []string {
	names := make([]string, len(all))
	for i, b := range all {
		names[i] = b.Name
	}
	return names
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, error) {
	for _, b := range all {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("bench: unknown benchmark %q", name)
}

func clampScale(scale int) int {
	if scale < 1 {
		return 1
	}
	return scale
}
