package bench

import (
	"lvp/internal/isa"
	"lvp/internal/prog"
)

func init() {
	register(Benchmark{
		Name:        "grep",
		Description: "substring scan, modelled on gnu-grep -c",
		Input:       "synthetic word text, pattern \"stmo\"",
		Build:       buildGrep,
	})
	register(Benchmark{
		Name:        "gawk",
		Description: "field splitting and accumulation over a result file",
		Input:       "synthetic simulator-output number text",
		Build:       buildGawk,
	})
	register(Benchmark{
		Name:        "compress",
		Description: "LZW-style dictionary compression",
		Input:       "synthetic compressible word text",
		Build:       buildCompress,
	})
	register(Benchmark{
		Name:        "gperf",
		Description: "perfect hash function search over a keyword set",
		Input:       "24 keywords, iterative associated-value adjustment",
		Build:       buildGperf,
	})
}

// grepTextSize is the input size at scale 1.
const grepTextSize = 6144

// GrepPattern is the needle searched by the grep workload (exported for the
// independent cross-check in tests).
const GrepPattern = "stmo"

// grepWords is grep's own vocabulary: as in real searched text, characters
// of the pattern are comparatively rare, so the DFA dwells in state 0 and
// its transition loads are highly value-local.
var grepWords = []string{
	"village", "院落", "crane", "fable", "anchor", "pledge", "drizzle",
	"breeze", "curve", "jungle", "zebra", "velvet", "pickle", "fuzzy",
	"quiche", "lively", "buzz", "badge", "quiver", "fjord", "waltz",
	"stmo", // the needle itself, occasionally
	"affix", "banner", "gulch", "ivy", "dwell", "echo",
}

// GrepText regenerates the grep input for a target and scale (for test
// cross-checks).
func GrepText(t prog.Target, scale int) []byte {
	r := newRNG(101 + targetSalt(t.Name))
	n := grepTextSize * clampScale(scale)
	out := make([]byte, 0, n+16)
	col := 0
	for len(out) < n {
		w := grepWords[r.intn(len(grepWords))]
		out = append(out, w...)
		col++
		if col%8 == 0 {
			out = append(out, '\n')
		} else {
			out = append(out, ' ')
		}
	}
	return out[:n]
}

// grepDFA builds the substring-matching automaton for GrepPattern: 256
// transition bytes per state. Most characters return to a shallow state, so
// the transition loads are heavily skewed toward a few values — the
// mostly-predictable serial load chain that makes grep data-dependence
// bound (paper §6.1).
func grepDFA() []byte {
	pat := []byte(GrepPattern)
	n := len(pat)
	// next(state, c): longest suffix of (prefix[state] + c) that is a
	// prefix of pat.
	trans := make([]byte, (n+1)*256)
	for s := 0; s <= n; s++ {
		for c := 0; c < 256; c++ {
			if s < n && byte(c) == pat[s] {
				trans[s*256+c] = byte(s + 1)
				continue
			}
			// fall back: longest k<s with pat[:k-?]... simple
			// KMP-style computation over small n.
			k := min(s, n-1)
			for k > 0 {
				// does pat[:k] == (pat[s-k+1:s] + c) hold?
				ok := byte(c) == pat[k-1]
				for j := 0; ok && j < k-1; j++ {
					if pat[j] != pat[s-k+1+j] {
						ok = false
					}
				}
				if ok {
					break
				}
				k--
			}
			trans[s*256+c] = byte(k)
		}
	}
	return trans
}

func buildGrep(t prog.Target, scale int) (*prog.Program, error) {
	scale = clampScale(scale)
	b := prog.New("grep", t)
	text := GrepText(t, scale)
	b.Bytes("text", text)
	b.Bytes("pattern", []byte(GrepPattern))
	b.Bytes("dfa", grepDFA())
	b.Zeros("errflag", 8)

	// main: DFA scan, the shape of a real grep hot loop. Each iteration
	// is serially dependent on the state-transition load — the chain the
	// paper identifies as making grep data-dependence bound — and the
	// transition values are heavily skewed toward shallow states, so the
	// LVP unit can collapse the chain. On an accept state the match is
	// confirmed with a call (epilogue RA reloads, pattern loads).
	f := b.Func("main", 0, prog.S0, prog.S1, prog.S2, prog.S3, prog.S4, prog.S5)
	f.MarkPtr(prog.S0, prog.S4)
	b.GotData(prog.S0, "text") // data-address load (glue)
	b.MaterializeInt(prog.S1, int64(len(text)))
	b.GotData(prog.S4, "dfa")
	b.Li(prog.S2, 0) // match count
	b.Li(prog.S3, 0) // position
	b.Li(prog.S5, 0) // DFA state
	// Bottom-tested loop (as an optimising compiler emits): one
	// conditional backward branch per iteration plus the rare accept.
	loop, next, done := b.NewLabel("loop"), b.NewLabel("next"), b.NewLabel("done")
	accept := b.NewLabel("accept")
	b.Branch(isa.BGE, prog.S3, prog.S1, done) // guard for empty input
	b.Label(loop)
	b.Op3(isa.ADD, prog.T0, prog.S0, prog.S3)
	b.Load(isa.LBU, prog.T1, prog.T0, 0, isa.LoadIntData) // text byte (varies)
	b.OpI(isa.SHLI, prog.T2, prog.S5, 8)
	b.Op3(isa.ADD, prog.T2, prog.T2, prog.S4)
	b.Op3(isa.ADD, prog.T2, prog.T2, prog.T1)
	b.Load(isa.LBU, prog.S5, prog.T2, 0, isa.LoadIntData) // transition (skewed, serial)
	b.OpI(isa.SLTI, prog.T3, prog.S5, int64(len(GrepPattern)))
	b.Branch(isa.BEQ, prog.T3, prog.Zero, accept)
	b.Label(next)
	b.OpI(isa.ADDI, prog.S3, prog.S3, 1)
	b.Branch(isa.BLT, prog.S3, prog.S1, loop)
	b.Jump(done)
	b.Label(accept)
	b.OpI(isa.ADDI, prog.A0, prog.S3, int64(1-len(GrepPattern)))
	b.Call("matchAt") // confirm (always succeeds; exercises call idioms)
	b.Op3(isa.ADD, prog.S2, prog.S2, prog.A0)
	b.Li(prog.S5, 0)
	b.Jump(next)
	b.Label(done)
	b.ErrorCheck("errflag", "grepfail") // never taken
	b.Out(prog.S2)
	f.Epilogue()

	b.Label("grepfail")
	b.Li(prog.A0, -1)
	b.Out(prog.A0)
	b.Halt()

	// matchAt(pos): compare pattern[1..3] to text[pos+1..pos+3]. The
	// base pointers are re-fetched through the GOT (glue idiom) and the
	// epilogue restores RA (instruction-address load).
	g := b.Func("matchAt", 0, prog.S0, prog.S1)
	g.MarkPtr(prog.S0, prog.S1)
	b.GotData(prog.S0, "text")
	b.GotData(prog.S1, "pattern")
	b.Op3(isa.ADD, prog.S0, prog.S0, prog.A0) // &text[pos]
	fail, ok := b.NewLabel("fail"), b.NewLabel("ok")
	for i := int64(1); i < int64(len(GrepPattern)); i++ {
		b.Load(isa.LBU, prog.T0, prog.S1, i, isa.LoadIntData) // pattern byte (constant)
		b.Load(isa.LBU, prog.T1, prog.S0, i, isa.LoadIntData) // text byte (varies)
		b.Branch(isa.BNE, prog.T0, prog.T1, fail)
	}
	b.Li(prog.A0, 1)
	b.Jump(ok)
	b.Label(fail)
	b.Li(prog.A0, 0)
	b.Label(ok)
	g.Epilogue()

	return b.Build()
}

func buildGawk(t prog.Target, scale int) (*prog.Program, error) {
	scale = clampScale(scale)
	b := prog.New("gawk", t)
	const fields = 8
	lines := 220 * scale
	text := makeNumberText(newRNG(202+targetSalt(t.Name)), lines, fields)
	b.Bytes("text", text)
	b.Zeros("fieldsums", fields*8)
	b.Zeros("zerocount", 8)
	b.Zeros("maxval", 8)
	b.Zeros("errflag", 8)

	// main: walk the text, calling parseField per field; accumulate into
	// the per-field sum table (loads of slowly-growing accumulators),
	// count zero fields (redundant data), and track the max.
	f := b.Func("main", 0, prog.S0, prog.S1, prog.S2, prog.S3, prog.S4)
	f.MarkPtr(prog.S0, prog.S3)
	b.GotData(prog.S0, "text")
	b.MaterializeInt(prog.S1, int64(len(text))) // end offset
	b.Li(prog.S2, 0)                            // cursor
	b.GotData(prog.S3, "fieldsums")
	b.Li(prog.S4, 0) // field index within line
	loop, done := b.NewLabel("loop"), b.NewLabel("done")
	b.Label(loop)
	b.Branch(isa.BGE, prog.S2, prog.S1, done)
	b.Op3(isa.ADD, prog.A0, prog.S0, prog.S2)
	b.Call("parseField") // A0 = value, A1 = bytes consumed
	b.Op3(isa.ADD, prog.S2, prog.S2, prog.A1)
	// Conservative aliasing: the callee might have moved fieldsums, so
	// the compiler re-loads its address from the GOT after every call
	// (the paper's "memory alias resolution" idiom). The reload is
	// perfectly value-local and sits on the accumulation chain.
	b.GotData(prog.S3, "fieldsums")
	// fieldsums[S4] += value (load-add-store; the load sees an
	// accumulating value: low-to-moderate locality)
	b.OpI(isa.SHLI, prog.T0, prog.S4, 3)
	b.Op3(isa.ADD, prog.T0, prog.T0, prog.S3)
	b.Load(isa.LD, prog.T1, prog.T0, 0, isa.LoadIntData)
	b.Op3(isa.ADD, prog.T1, prog.T1, prog.A0)
	b.Store(isa.SD, prog.T1, prog.T0, 0)
	// zero-field check (paper: "empty cells / data redundancy")
	nz := b.NewLabel("nz")
	b.Branch(isa.BNE, prog.A0, prog.Zero, nz)
	addr := b.SymbolAddr("zerocount")
	b.Load(isa.LD, prog.T2, prog.GP, int64(addr-prog.DataBase), isa.LoadIntData)
	b.OpI(isa.ADDI, prog.T2, prog.T2, 1)
	b.Store(isa.SD, prog.T2, prog.GP, int64(addr-prog.DataBase))
	b.Label(nz)
	// max tracking: load of a rarely-changing global (high locality)
	maxAddr := b.SymbolAddr("maxval")
	noMax := b.NewLabel("nomax")
	b.Load(isa.LD, prog.T3, prog.GP, int64(maxAddr-prog.DataBase), isa.LoadIntData)
	b.Branch(isa.BGE, prog.T3, prog.A0, noMax)
	b.Store(isa.SD, prog.A0, prog.GP, int64(maxAddr-prog.DataBase))
	b.Label(noMax)
	// advance field index modulo `fields`
	b.OpI(isa.ADDI, prog.S4, prog.S4, 1)
	b.OpI(isa.SLTI, prog.T4, prog.S4, fields)
	wrapOK := b.NewLabel("wrapok")
	b.Branch(isa.BNE, prog.T4, prog.Zero, wrapOK)
	b.Li(prog.S4, 0)
	b.Label(wrapOK)
	b.Jump(loop)
	b.Label(done)
	b.ErrorCheck("errflag", "gawkfail")
	// Emit the per-field sums and the zero count.
	for i := int64(0); i < fields; i++ {
		b.Load(isa.LD, prog.T0, prog.S3, i*8, isa.LoadIntData)
		b.Out(prog.T0)
	}
	b.Load(isa.LD, prog.T0, prog.GP, int64(b.SymbolAddr("zerocount")-prog.DataBase), isa.LoadIntData)
	b.Out(prog.T0)
	f.Epilogue()

	b.Label("gawkfail")
	b.Li(prog.A0, -1)
	b.Out(prog.A0)
	b.Halt()

	// parseField(A0 = ptr): skip separators, parse decimal digits.
	// Returns A0 = value, A1 = bytes consumed.
	g := b.Func("parseField", 0, prog.S0, prog.S1)
	g.MarkPtr(prog.S0, prog.S1)
	b.Mv(prog.S0, prog.A0) // cursor
	b.Mv(prog.S1, prog.A0) // start
	skip, digits, digitLoop, fdone := b.NewLabel("skip"), b.NewLabel("digits"), b.NewLabel("dloop"), b.NewLabel("fdone")
	b.Label(skip)
	b.Load(isa.LBU, prog.T0, prog.S0, 0, isa.LoadIntData)
	b.OpI(isa.SLTI, prog.T1, prog.T0, '0')
	b.Branch(isa.BEQ, prog.T1, prog.Zero, digits) // >= '0': digit start
	b.OpI(isa.ADDI, prog.S0, prog.S0, 1)
	b.Jump(skip)
	b.Label(digits)
	b.Li(prog.A0, 0)
	b.Label(digitLoop)
	b.Load(isa.LBU, prog.T0, prog.S0, 0, isa.LoadIntData)
	b.OpI(isa.SLTI, prog.T1, prog.T0, '0')
	b.Branch(isa.BNE, prog.T1, prog.Zero, fdone)
	b.OpI(isa.SLTI, prog.T1, prog.T0, '9'+1)
	b.Branch(isa.BEQ, prog.T1, prog.Zero, fdone)
	b.Li(prog.T2, 10)
	b.Op3(isa.MUL, prog.A0, prog.A0, prog.T2)
	b.OpI(isa.ADDI, prog.T0, prog.T0, -'0')
	b.Op3(isa.ADD, prog.A0, prog.A0, prog.T0)
	b.OpI(isa.ADDI, prog.S0, prog.S0, 1)
	b.Jump(digitLoop)
	b.Label(fdone)
	b.Op3(isa.SUB, prog.A1, prog.S0, prog.S1)
	b.OpI(isa.ADDI, prog.A1, prog.A1, 1) // consume the terminator too
	g.Epilogue()

	return b.Build()
}

func buildCompress(t prog.Target, scale int) (*prog.Program, error) {
	scale = clampScale(scale)
	b := prog.New("compress", t)
	text := makeText(newRNG(303+targetSalt(t.Name)), 4096*scale)
	const tableSize = 4096 // power of two
	b.Bytes("text", text)
	b.Zeros("hkeys", tableSize*8)  // hashed (prefix<<9|char)+1, 0 = empty
	b.Zeros("hcodes", tableSize*8) // assigned code
	b.Zeros("errflag", 8)

	// main: LZW-style loop. prefix starts as first byte; for each next
	// char, probe the hash table for (prefix, char): hit extends the
	// prefix, miss emits a code and inserts. Repetitive text makes the
	// probe loads highly value-local.
	f := b.Func("main", 0, prog.S0, prog.S1, prog.S2, prog.S3, prog.S4, prog.S5, prog.S6)
	f.MarkPtr(prog.S0, prog.S4, prog.S5)
	b.GotData(prog.S0, "text")
	b.MaterializeInt(prog.S1, int64(len(text)))
	b.GotData(prog.S4, "hkeys")
	b.GotData(prog.S5, "hcodes")
	b.Li(prog.S6, 256)                                    // next code
	b.Load(isa.LBU, prog.S2, prog.S0, 0, isa.LoadIntData) // prefix
	b.Li(prog.S3, 1)                                      // cursor
	b.Li(prog.T9, 0)                                      // emitted-code checksum held in T9 across the loop
	loop, done := b.NewLabel("loop"), b.NewLabel("done")
	b.Label(loop)
	b.Branch(isa.BGE, prog.S3, prog.S1, done)
	b.Op3(isa.ADD, prog.T0, prog.S0, prog.S3)
	b.Load(isa.LBU, prog.T1, prog.T0, 0, isa.LoadIntData) // c
	// key = (prefix<<9 | c) + 1  (never zero)
	b.OpI(isa.SHLI, prog.T2, prog.S2, 9)
	b.Op3(isa.OR, prog.T2, prog.T2, prog.T1)
	b.OpI(isa.ADDI, prog.T2, prog.T2, 1)
	// h = key * 2654435761 mod tableSize (Fibonacci-ish hashing)
	b.MaterializeInt(prog.T3, 2654435761)
	b.Op3(isa.MUL, prog.T4, prog.T2, prog.T3)
	b.OpI(isa.SHRI, prog.T4, prog.T4, 8)
	b.OpI(isa.ANDI, prog.T4, prog.T4, tableSize-1)
	probe, insert, hit, advance := b.NewLabel("probe"), b.NewLabel("insert"), b.NewLabel("hit"), b.NewLabel("advance")
	b.Label(probe)
	b.OpI(isa.SHLI, prog.T5, prog.T4, 3)
	b.Op3(isa.ADD, prog.T5, prog.T5, prog.S4)
	b.Load(isa.LD, prog.T6, prog.T5, 0, isa.LoadIntData) // table key
	b.Branch(isa.BEQ, prog.T6, prog.Zero, insert)        // empty slot
	b.Branch(isa.BEQ, prog.T6, prog.T2, hit)             // match
	b.OpI(isa.ADDI, prog.T4, prog.T4, 1)                 // linear probe
	b.OpI(isa.ANDI, prog.T4, prog.T4, tableSize-1)
	b.Jump(probe)
	b.Label(insert)
	b.Store(isa.SD, prog.T2, prog.T5, 0) // key
	b.OpI(isa.SHLI, prog.T7, prog.T4, 3)
	b.Op3(isa.ADD, prog.T7, prog.T7, prog.S5)
	b.Store(isa.SD, prog.S6, prog.T7, 0) // code
	b.OpI(isa.ADDI, prog.S6, prog.S6, 1)
	// emit current prefix code: checksum = checksum*31 + prefix
	b.Li(prog.T8, 31)
	b.Op3(isa.MUL, prog.T9, prog.T9, prog.T8)
	b.Op3(isa.ADD, prog.T9, prog.T9, prog.S2)
	b.Mv(prog.S2, prog.T1) // prefix = c
	b.Jump(advance)
	b.Label(hit)
	b.OpI(isa.SHLI, prog.T7, prog.T4, 3)
	b.Op3(isa.ADD, prog.T7, prog.T7, prog.S5)
	b.Load(isa.LD, prog.S2, prog.T7, 0, isa.LoadIntData) // prefix = code (moderate locality)
	b.Label(advance)
	b.OpI(isa.ADDI, prog.S3, prog.S3, 1)
	b.Jump(loop)
	b.Label(done)
	b.ErrorCheck("errflag", "compressfail")
	b.Out(prog.T9)
	b.Out(prog.S6) // dictionary size
	f.Epilogue()

	b.Label("compressfail")
	b.Li(prog.A0, -1)
	b.Out(prog.A0)
	b.Halt()

	return b.Build()
}

func buildGperf(t prog.Target, scale int) (*prog.Program, error) {
	scale = clampScale(scale)
	b := prog.New("gperf", t)
	// 24 fixed keywords, padded to 12 bytes each (length in byte 11).
	keywords := []string{
		"auto", "break", "case", "char", "const", "continue", "default",
		"do", "double", "else", "enum", "extern", "float", "for", "goto",
		"if", "int", "long", "register", "return", "short", "signed",
		"sizeof", "static",
	}
	const kwStride = 12
	kwData := make([]byte, len(keywords)*kwStride)
	for i, w := range keywords {
		copy(kwData[i*kwStride:], w)
		kwData[i*kwStride+kwStride-1] = byte(len(w))
	}
	b.Bytes("keywords", kwData)
	b.Zeros("asso", 256*8)    // associated values, adjusted across attempts
	b.Zeros("occupied", 64*8) // hash occupancy per attempt
	b.Zeros("errflag", 8)

	// main: repeat hash-assignment attempts; on collision, bump the
	// associated value of the colliding keyword's first char and retry.
	// The asso[] and keyword loads recur heavily across attempts.
	attempts := 40 * scale
	f := b.Func("main", 0, prog.S0, prog.S1, prog.S2, prog.S3, prog.S4, prog.S5, prog.S6, prog.S7)
	f.MarkPtr(prog.S0, prog.S1, prog.S2)
	b.GotData(prog.S0, "keywords")
	b.GotData(prog.S1, "asso")
	b.GotData(prog.S2, "occupied")
	b.MaterializeInt(prog.S3, int64(attempts))
	b.Li(prog.S4, 0) // attempt counter
	b.Li(prog.S5, 0) // total collisions observed
	b.Li(prog.S7, 0) // alias-reload checksum
	aloop, adone := b.NewLabel("aloop"), b.NewLabel("adone")
	b.Label(aloop)
	b.Branch(isa.BGE, prog.S4, prog.S3, adone)
	// clear occupancy
	b.Li(prog.T0, 0)
	clr := b.NewLabel("clr")
	b.Label(clr)
	b.OpI(isa.SHLI, prog.T1, prog.T0, 3)
	b.Op3(isa.ADD, prog.T1, prog.T1, prog.S2)
	b.Store(isa.SD, prog.Zero, prog.T1, 0)
	b.OpI(isa.ADDI, prog.T0, prog.T0, 1)
	b.OpI(isa.SLTI, prog.T2, prog.T0, 64)
	b.Branch(isa.BNE, prog.T2, prog.Zero, clr)
	// hash every keyword
	b.Li(prog.S6, 0) // keyword index (callee-saved across the call)
	kwloop, kwdone := b.NewLabel("kwloop"), b.NewLabel("kwdone")
	b.Label(kwloop)
	b.OpI(isa.SLTI, prog.T0, prog.S6, int64(len(keywords)))
	b.Branch(isa.BEQ, prog.T0, prog.Zero, kwdone)
	b.Mv(prog.A0, prog.S6)
	b.Call("hashKeyword") // A0 in: index; A0 out: hash; A1 out: first char
	// occupancy check
	b.OpI(isa.ANDI, prog.T0, prog.A0, 63)
	b.OpI(isa.SHLI, prog.T0, prog.T0, 3)
	b.Op3(isa.ADD, prog.T0, prog.T0, prog.S2)
	b.Load(isa.LD, prog.T1, prog.T0, 0, isa.LoadIntData)
	free := b.NewLabel("free")
	b.Branch(isa.BEQ, prog.T1, prog.Zero, free)
	// collision: asso[first]++ and count it
	b.OpI(isa.ADDI, prog.S5, prog.S5, 1)
	b.OpI(isa.SHLI, prog.T2, prog.A1, 3)
	b.Op3(isa.ADD, prog.T2, prog.T2, prog.S1)
	b.Load(isa.LD, prog.T3, prog.T2, 0, isa.LoadIntData)
	b.OpI(isa.ADDI, prog.T3, prog.T3, 1)
	b.Store(isa.SD, prog.T3, prog.T2, 0)
	b.Label(free)
	b.Li(prog.T4, 1)
	b.Store(isa.SD, prog.T4, prog.T0, 0)
	b.Load(isa.LD, prog.T5, prog.T0, 0, isa.LoadIntData) // alias re-load (compiler conservatism)
	b.Op3(isa.ADD, prog.S7, prog.S7, prog.T5)
	b.OpI(isa.ADDI, prog.S6, prog.S6, 1)
	b.Jump(kwloop)
	b.Label(kwdone)
	b.OpI(isa.ADDI, prog.S4, prog.S4, 1)
	b.Jump(aloop)
	b.Label(adone)
	b.ErrorCheck("errflag", "gperffail")
	b.Out(prog.S5)
	b.Out(prog.S7)
	f.Epilogue()

	b.Label("gperffail")
	b.Li(prog.A0, -1)
	b.Out(prog.A0)
	b.Halt()

	// hashKeyword(A0 = index) -> A0 = hash, A1 = first char.
	// hash = len + asso[ch0] + asso[chLast]. The keyword bytes and the
	// asso[] entries are loaded afresh every attempt and recur heavily.
	g := b.Func("hashKeyword", 0, prog.S0, prog.S1)
	g.MarkPtr(prog.S0, prog.S1)
	b.GotData(prog.S0, "keywords")
	b.GotData(prog.S1, "asso")
	b.Li(prog.T0, kwStride)
	b.Op3(isa.MUL, prog.T1, prog.A0, prog.T0)
	b.Op3(isa.ADD, prog.T1, prog.T1, prog.S0)                      // &kw[i]
	b.Load(isa.LBU, prog.T2, prog.T1, kwStride-1, isa.LoadIntData) // length
	b.Load(isa.LBU, prog.A1, prog.T1, 0, isa.LoadIntData)          // first char
	b.Op3(isa.ADD, prog.T3, prog.T1, prog.T2)
	b.Load(isa.LBU, prog.T4, prog.T3, -1, isa.LoadIntData) // last char
	b.OpI(isa.SHLI, prog.T5, prog.A1, 3)
	b.Op3(isa.ADD, prog.T5, prog.T5, prog.S1)
	b.Load(isa.LD, prog.T6, prog.T5, 0, isa.LoadIntData) // asso[first]
	b.OpI(isa.SHLI, prog.T7, prog.T4, 3)
	b.Op3(isa.ADD, prog.T7, prog.T7, prog.S1)
	b.Load(isa.LD, prog.T8, prog.T7, 0, isa.LoadIntData) // asso[last]
	b.Op3(isa.ADD, prog.A0, prog.T2, prog.T6)
	b.Op3(isa.ADD, prog.A0, prog.A0, prog.T8)
	g.Epilogue()

	return b.Build()
}
