package bench

import (
	"lvp/internal/isa"
	"lvp/internal/prog"
)

func init() {
	register(Benchmark{
		Name:        "mpeg",
		Description: "block decoder: code-table lookup, dequant, butterfly, dither (Berkeley MPEG analogue)",
		Input:       "synthetic coefficient stream, 24+ blocks",
		Build:       buildMpeg,
	})
	register(Benchmark{
		Name:        "cjpeg",
		Description: "block encoder: forward transform and quantisation over noise (JPEG encoder analogue)",
		Input:       "128x128 pseudo-random grey image",
		Build:       buildCjpeg,
	})
}

func buildMpeg(t prog.Target, scale int) (*prog.Program, error) {
	scale = clampScale(scale)
	b := prog.New("mpeg", t)
	r := newRNG(1010 + targetSalt(t.Name))
	blocks := 22 * scale
	stream := make([]byte, blocks*64)
	for i := range stream {
		// biased coefficient codes: most blocks are mostly zero
		if r.intn(10) < 7 {
			stream[i] = 0
		} else {
			stream[i] = byte(r.intn(256))
		}
	}
	b.Bytes("stream", stream)
	// Decode table: code byte -> signed coefficient (static: highly local
	// loads).
	decode := make([]int64, 256)
	for i := range decode {
		decode[i] = int64((i*7)%63) - 31
	}
	b.WordsPtr("decode", decode)
	// Quantisation table, 64 entries (static).
	quant := make([]int64, 64)
	for i := range quant {
		quant[i] = int64(8 + (i*3)%24)
	}
	b.WordsPtr("quant", quant)
	// Dither table, 64 bytes (static).
	dither := make([]byte, 64)
	for i := range dither {
		dither[i] = byte((i * 5) % 64)
	}
	b.Bytes("dither", dither)
	b.Zeros("block", 64*8)
	b.Zeros("errflag", 8)

	sh := b.PtrShift()

	f := b.Func("main", 0, prog.S0, prog.S1, prog.S2)
	b.Li(prog.S0, 0) // block index
	b.MaterializeInt(prog.S1, int64(blocks))
	b.Li(prog.S2, 0) // checksum
	bloop, bdone := b.NewLabel("bloop"), b.NewLabel("bdone")
	b.Label(bloop)
	b.Branch(isa.BGE, prog.S0, prog.S1, bdone)
	b.Mv(prog.A0, prog.S0)
	b.Call("decodeBlock")
	b.Op3(isa.ADD, prog.S2, prog.S2, prog.A0)
	b.OpI(isa.ADDI, prog.S0, prog.S0, 1)
	b.Jump(bloop)
	b.Label(bdone)
	b.ErrorCheck("errflag", "mpegfail")
	b.Out(prog.S2)
	f.Epilogue()

	b.Label("mpegfail")
	b.Li(prog.A0, -1)
	b.Out(prog.A0)
	b.Halt()

	// decodeBlock(A0 = block index) -> A0 = block checksum.
	g := b.Func("decodeBlock", 0, prog.S0, prog.S1, prog.S2, prog.S3, prog.S4, prog.S5)
	g.MarkPtr(prog.S0, prog.S1, prog.S2, prog.S3, prog.S4)
	b.GotData(prog.S0, "stream")
	b.GotData(prog.S1, "decode")
	b.GotData(prog.S2, "quant")
	b.GotData(prog.S3, "block")
	b.GotData(prog.S4, "dither")
	b.OpI(isa.SHLI, prog.T0, prog.A0, 6) // block*64
	b.Op3(isa.ADD, prog.S0, prog.S0, prog.T0)
	// Phase 1: decode + dequant each coefficient.
	b.Li(prog.S5, 0)
	dloop, ddone := b.NewLabel("dloop"), b.NewLabel("ddone")
	b.Label(dloop)
	b.OpI(isa.SLTI, prog.T0, prog.S5, 64)
	b.Branch(isa.BEQ, prog.T0, prog.Zero, ddone)
	b.Op3(isa.ADD, prog.T1, prog.S0, prog.S5)
	b.Load(isa.LBU, prog.T2, prog.T1, 0, isa.LoadIntData) // code byte (mostly 0)
	b.OpI(isa.SHLI, prog.T3, prog.T2, sh)
	b.Op3(isa.ADD, prog.T3, prog.T3, prog.S1)
	b.LoadInt(prog.T4, prog.T3, 0) // decode[code] (static table)
	b.OpI(isa.SHLI, prog.T5, prog.S5, sh)
	b.Op3(isa.ADD, prog.T6, prog.T5, prog.S2)
	b.LoadInt(prog.T7, prog.T6, 0) // quant[i] (static table)
	b.Op3(isa.MUL, prog.T8, prog.T4, prog.T7)
	b.OpI(isa.SHLI, prog.T5, prog.S5, 3)
	b.Op3(isa.ADD, prog.T5, prog.T5, prog.S3)
	b.Store(isa.SD, prog.T8, prog.T5, 0)
	b.OpI(isa.ADDI, prog.S5, prog.S5, 1)
	b.Jump(dloop)
	b.Label(ddone)
	// Phase 2: butterfly pass over the block (rows of 8).
	b.Li(prog.S5, 0)
	floop, fdone := b.NewLabel("floop"), b.NewLabel("fdone")
	b.Label(floop)
	b.OpI(isa.SLTI, prog.T0, prog.S5, 32)
	b.Branch(isa.BEQ, prog.T0, prog.Zero, fdone)
	b.OpI(isa.SHLI, prog.T1, prog.S5, 3)
	b.Op3(isa.ADD, prog.T1, prog.T1, prog.S3)
	b.Load(isa.LD, prog.T2, prog.T1, 0, isa.LoadIntData)
	b.Load(isa.LD, prog.T3, prog.T1, 32*8, isa.LoadIntData)
	b.Op3(isa.ADD, prog.T4, prog.T2, prog.T3)
	b.Op3(isa.SUB, prog.T5, prog.T2, prog.T3)
	b.Store(isa.SD, prog.T4, prog.T1, 0)
	b.Store(isa.SD, prog.T5, prog.T1, 32*8)
	b.OpI(isa.ADDI, prog.S5, prog.S5, 1)
	b.Jump(floop)
	b.Label(fdone)
	// Phase 3: dither and accumulate.
	b.Li(prog.S5, 0)
	b.Li(prog.A0, 0)
	hloop, hdone := b.NewLabel("hloop"), b.NewLabel("hdone")
	b.Label(hloop)
	b.OpI(isa.SLTI, prog.T0, prog.S5, 64)
	b.Branch(isa.BEQ, prog.T0, prog.Zero, hdone)
	b.OpI(isa.SHLI, prog.T1, prog.S5, 3)
	b.Op3(isa.ADD, prog.T1, prog.T1, prog.S3)
	b.Load(isa.LD, prog.T2, prog.T1, 0, isa.LoadIntData)
	b.OpI(isa.SRAI, prog.T3, prog.T2, 2)
	b.OpI(isa.ANDI, prog.T3, prog.T3, 63)
	b.Op3(isa.ADD, prog.T4, prog.T3, prog.S4)
	b.Load(isa.LBU, prog.T5, prog.T4, 0, isa.LoadIntData) // dither table
	b.Op3(isa.ADD, prog.A0, prog.A0, prog.T5)
	b.OpI(isa.ADDI, prog.S5, prog.S5, 1)
	b.Jump(hloop)
	b.Label(hdone)
	g.Epilogue()

	return b.Build()
}

func buildCjpeg(t prog.Target, scale int) (*prog.Program, error) {
	scale = clampScale(scale)
	b := prog.New("cjpeg", t)
	r := newRNG(1111 + targetSalt(t.Name))
	width := 128
	height := 64 * scale
	img := make([]byte, width*height)
	for i := range img {
		// Noise image: every pixel load fetches a fresh value, which is
		// what gives cjpeg its poor value locality in the paper.
		img[i] = byte(r.next())
	}
	b.Bytes("img", img)
	quant := make([]int64, 64)
	for i := range quant {
		quant[i] = int64(8 + (i*5)%32)
	}
	b.WordsPtr("quant", quant)
	b.Zeros("work", 64*8)
	b.Zeros("errflag", 8)

	sh := b.PtrShift()

	f := b.Func("main", 0, prog.S0, prog.S1, prog.S2, prog.S3)
	b.Li(prog.S0, 0) // block row
	b.MaterializeInt(prog.S1, int64(height/8))
	b.Li(prog.S3, 0) // checksum
	rloop, rdone := b.NewLabel("rloop"), b.NewLabel("rdone")
	b.Label(rloop)
	b.Branch(isa.BGE, prog.S0, prog.S1, rdone)
	b.Li(prog.S2, 0) // block col
	cloop, cdone := b.NewLabel("cloop"), b.NewLabel("cdone")
	b.Label(cloop)
	b.MaterializeInt(prog.T0, int64(width/8))
	b.Branch(isa.BGE, prog.S2, prog.T0, cdone)
	b.Mv(prog.A0, prog.S0)
	b.Mv(prog.A1, prog.S2)
	b.Call("encodeBlock")
	b.Op3(isa.ADD, prog.S3, prog.S3, prog.A0)
	b.OpI(isa.ADDI, prog.S2, prog.S2, 1)
	b.Jump(cloop)
	b.Label(cdone)
	b.OpI(isa.ADDI, prog.S0, prog.S0, 1)
	b.Jump(rloop)
	b.Label(rdone)
	b.ErrorCheck("errflag", "cjpegfail")
	b.Out(prog.S3)
	f.Epilogue()

	b.Label("cjpegfail")
	b.Li(prog.A0, -1)
	b.Out(prog.A0)
	b.Halt()

	// encodeBlock(A0 = brow, A1 = bcol) -> A0 = quantised checksum.
	g := b.Func("encodeBlock", 0, prog.S0, prog.S1, prog.S2, prog.S3, prog.S4)
	g.MarkPtr(prog.S0, prog.S1, prog.S2)
	b.GotData(prog.S0, "img")
	b.GotData(prog.S1, "work")
	b.GotData(prog.S2, "quant")
	// pixel base = img + (brow*8*width + bcol*8)
	b.MaterializeInt(prog.T0, int64(width)*8)
	b.Op3(isa.MUL, prog.T1, prog.A0, prog.T0)
	b.OpI(isa.SHLI, prog.T2, prog.A1, 3)
	b.Op3(isa.ADD, prog.T1, prog.T1, prog.T2)
	b.Op3(isa.ADD, prog.S0, prog.S0, prog.T1)
	// Load the 8x8 block into work[], levelled by -128.
	b.Li(prog.S3, 0) // row
	lrow, lrowd := b.NewLabel("lrow"), b.NewLabel("lrowd")
	b.Label(lrow)
	b.OpI(isa.SLTI, prog.T0, prog.S3, 8)
	b.Branch(isa.BEQ, prog.T0, prog.Zero, lrowd)
	b.MaterializeInt(prog.T1, int64(width))
	b.Op3(isa.MUL, prog.T1, prog.S3, prog.T1)
	b.Op3(isa.ADD, prog.T1, prog.T1, prog.S0) // &img row
	b.OpI(isa.SHLI, prog.T2, prog.S3, 6)      // row*8 entries *8 bytes
	b.Op3(isa.ADD, prog.T2, prog.T2, prog.S1) // &work row
	for col := int64(0); col < 8; col++ {
		b.Load(isa.LBU, prog.T3, prog.T1, col, isa.LoadIntData) // pixel (noise)
		b.OpI(isa.ADDI, prog.T3, prog.T3, -128)
		b.Store(isa.SD, prog.T3, prog.T2, col*8)
	}
	b.OpI(isa.ADDI, prog.S3, prog.S3, 1)
	b.Jump(lrow)
	b.Label(lrowd)
	// Forward butterfly (two stages) over the 64 work entries.
	for _, half := range []int64{32, 16} {
		b.Li(prog.S3, 0)
		fl, fld := b.NewLabel("fl"), b.NewLabel("fld")
		b.Label(fl)
		b.MaterializeInt(prog.T0, half)
		b.Branch(isa.BGE, prog.S3, prog.T0, fld)
		b.OpI(isa.SHLI, prog.T1, prog.S3, 3)
		b.Op3(isa.ADD, prog.T1, prog.T1, prog.S1)
		b.Load(isa.LD, prog.T2, prog.T1, 0, isa.LoadIntData)
		b.Load(isa.LD, prog.T3, prog.T1, half*8, isa.LoadIntData)
		b.Op3(isa.ADD, prog.T4, prog.T2, prog.T3)
		b.Op3(isa.SUB, prog.T5, prog.T2, prog.T3)
		b.Store(isa.SD, prog.T4, prog.T1, 0)
		b.Store(isa.SD, prog.T5, prog.T1, half*8)
		b.OpI(isa.ADDI, prog.S3, prog.S3, 1)
		b.Jump(fl)
		b.Label(fld)
	}
	// Quantise: work[i] / quant[i], accumulate |q|.
	b.Li(prog.S3, 0)
	b.Li(prog.S4, 0)
	ql, qld := b.NewLabel("ql"), b.NewLabel("qld")
	b.Label(ql)
	b.OpI(isa.SLTI, prog.T0, prog.S3, 64)
	b.Branch(isa.BEQ, prog.T0, prog.Zero, qld)
	b.OpI(isa.SHLI, prog.T1, prog.S3, 3)
	b.Op3(isa.ADD, prog.T2, prog.T1, prog.S1)
	b.Load(isa.LD, prog.T3, prog.T2, 0, isa.LoadIntData) // transformed (noise)
	b.OpI(isa.SHLI, prog.T4, prog.S3, sh)
	b.Op3(isa.ADD, prog.T4, prog.T4, prog.S2)
	b.LoadInt(prog.T5, prog.T4, 0) // quant[i] (static)
	b.Op3(isa.DIV, prog.T6, prog.T3, prog.T5)
	neg := b.NewLabel("neg")
	pos := b.NewLabel("pos")
	b.Branch(isa.BLT, prog.T6, prog.Zero, neg)
	b.Jump(pos)
	b.Label(neg)
	b.Op3(isa.SUB, prog.T6, prog.Zero, prog.T6)
	b.Label(pos)
	b.Op3(isa.ADD, prog.S4, prog.S4, prog.T6)
	b.OpI(isa.ADDI, prog.S3, prog.S3, 1)
	b.Jump(ql)
	b.Label(qld)
	b.Mv(prog.A0, prog.S4)
	g.Epilogue()

	return b.Build()
}
