package bench

import (
	"lvp/internal/isa"
	"lvp/internal/prog"
)

func init() {
	register(Benchmark{
		Name:        "quick",
		Description: "recursive quicksort with self-check",
		Input:       "600+ random integers",
		Build:       buildQuick,
	})
}

func buildQuick(t prog.Target, scale int) (*prog.Program, error) {
	scale = clampScale(scale)
	b := prog.New("quick", t)
	r := newRNG(707 + targetSalt(t.Name))
	n := 500 + 140*scale
	arr := make([]int64, n)
	for i := range arr {
		arr[i] = int64(r.intn(1 << 20))
	}
	b.WordsPtr("arr", arr)
	b.Zeros("errflag", 8)

	sh := b.PtrShift()
	ptrb := b.PtrBytes()

	// main: qsort(0, n-1), then verify sortedness (the self-check loads
	// sweep the sorted array once).
	f := b.Func("main", 0, prog.S0, prog.S1, prog.S2)
	f.MarkPtr(prog.S0)
	b.Li(prog.A0, 0)
	b.MaterializeInt(prog.A1, int64(n-1))
	b.Call("qsort")
	b.GotData(prog.S0, "arr")
	b.Li(prog.S1, 1) // i
	b.MaterializeInt(prog.S2, int64(n))
	vloop, vfail, vdone := b.NewLabel("vloop"), b.NewLabel("vfail"), b.NewLabel("vdone")
	b.Label(vloop)
	b.Branch(isa.BGE, prog.S1, prog.S2, vdone)
	b.OpI(isa.SHLI, prog.T0, prog.S1, sh)
	b.Op3(isa.ADD, prog.T0, prog.T0, prog.S0)
	b.LoadInt(prog.T1, prog.T0, 0)
	b.LoadInt(prog.T2, prog.T0, -ptrb)
	b.Branch(isa.BLT, prog.T1, prog.T2, vfail)
	b.OpI(isa.ADDI, prog.S1, prog.S1, 1)
	b.Jump(vloop)
	b.Label(vdone)
	b.ErrorCheck("errflag", "quickfail")
	b.Li(prog.T3, 1)
	b.Out(prog.T3) // sorted == true
	// checksum of first and last elements
	b.LoadInt(prog.T4, prog.S0, 0)
	b.Out(prog.T4)
	f.Epilogue()

	b.Label(vfail)
	b.Label("quickfail")
	b.Li(prog.A0, -1)
	b.Out(prog.A0)
	b.Halt()

	// qsort(A0 = lo, A1 = hi): Lomuto partition, recursive. The frames
	// produce the spill/restore and link-register reloads that give
	// "quick" its (modest) value locality in the paper — the element
	// loads themselves are random data.
	g := b.Func("qsort", 0, prog.S0, prog.S1, prog.S2, prog.S3, prog.S4)
	g.MarkPtr(prog.S4)
	qret := b.NewLabel("qret")
	b.Branch(isa.BGE, prog.A0, prog.A1, qret)
	b.Mv(prog.S0, prog.A0) // lo
	b.Mv(prog.S1, prog.A1) // hi
	b.GotData(prog.S4, "arr")
	// pivot = arr[hi]
	b.OpI(isa.SHLI, prog.T0, prog.S1, sh)
	b.Op3(isa.ADD, prog.T0, prog.T0, prog.S4)
	b.LoadInt(prog.T1, prog.T0, 0) // pivot value
	b.Mv(prog.S2, prog.S0)         // store index i
	b.Mv(prog.S3, prog.S0)         // scan index j
	ploop, pdone := b.NewLabel("ploop"), b.NewLabel("pdone")
	b.Label(ploop)
	b.Branch(isa.BGE, prog.S3, prog.S1, pdone)
	b.OpI(isa.SHLI, prog.T2, prog.S3, sh)
	b.Op3(isa.ADD, prog.T2, prog.T2, prog.S4)
	b.LoadInt(prog.T3, prog.T2, 0) // arr[j] (random data: poor locality)
	noswap := b.NewLabel("noswap")
	b.Branch(isa.BGE, prog.T3, prog.T1, noswap)
	// swap arr[i], arr[j]
	b.OpI(isa.SHLI, prog.T4, prog.S2, sh)
	b.Op3(isa.ADD, prog.T4, prog.T4, prog.S4)
	b.LoadInt(prog.T5, prog.T4, 0)
	b.StoreInt(prog.T3, prog.T4, 0)
	b.StoreInt(prog.T5, prog.T2, 0)
	b.OpI(isa.ADDI, prog.S2, prog.S2, 1)
	b.Label(noswap)
	b.OpI(isa.ADDI, prog.S3, prog.S3, 1)
	b.Jump(ploop)
	b.Label(pdone)
	// swap arr[i], arr[hi]
	b.OpI(isa.SHLI, prog.T4, prog.S2, sh)
	b.Op3(isa.ADD, prog.T4, prog.T4, prog.S4)
	b.OpI(isa.SHLI, prog.T6, prog.S1, sh)
	b.Op3(isa.ADD, prog.T6, prog.T6, prog.S4)
	b.LoadInt(prog.T5, prog.T4, 0)
	b.LoadInt(prog.T7, prog.T6, 0)
	b.StoreInt(prog.T7, prog.T4, 0)
	b.StoreInt(prog.T5, prog.T6, 0)
	// recurse: qsort(lo, i-1); qsort(i+1, hi)
	b.Mv(prog.A0, prog.S0)
	b.OpI(isa.ADDI, prog.A1, prog.S2, -1)
	b.Call("qsort")
	b.OpI(isa.ADDI, prog.A0, prog.S2, 1)
	b.Mv(prog.A1, prog.S1)
	b.Call("qsort")
	b.Label(qret)
	g.Epilogue()

	return b.Build()
}
