package bench

// rng is a splitmix64 PRNG used to generate deterministic benchmark inputs
// at build time. A local implementation (rather than math/rand) pins the
// sequence independent of Go releases, so traces — and therefore every
// reproduced table — are stable forever.
type rng struct {
	state uint64
}

// targetSalt perturbs input generation per codegen target. The paper's two
// machines ran different binaries with per-architecture dynamic counts
// (Table 1 lists separate columns); salting the inputs reproduces that the
// two panels are independent measurements, not copies.
func targetSalt(name string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return h
}

func newRNG(seed uint64) *rng {
	return &rng{state: seed ^ 0x9E3779B97F4A7C15}
}

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// float64 returns a value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// textWords is the small vocabulary used to synthesise "real" text inputs:
// log-parser output for gawk, compressible prose for compress and grep.
var textWords = []string{
	"the", "state", "of", "store", "most", "cycles", "stall", "memory",
	"cache", "miss", "hit", "load", "value", "locality", "unit", "result",
	"issue", "total", "mode", "stmo", "almost", "system", "time",
}

// makeText generates n bytes of word text with newlines roughly every 8
// words, imitating the whitespace-heavy inputs of the paper's text
// benchmarks.
func makeText(r *rng, n int) []byte {
	out := make([]byte, 0, n)
	col := 0
	for len(out) < n {
		w := textWords[r.intn(len(textWords))]
		out = append(out, w...)
		col++
		if col%8 == 0 {
			out = append(out, '\n')
		} else {
			out = append(out, ' ')
		}
	}
	return out[:n]
}

// makeNumberText generates lines of space-separated decimal fields, the
// shape of the "simulator result output file" gawk input in paper Table 1.
func makeNumberText(r *rng, lines, fields int) []byte {
	var out []byte
	for range lines {
		for f := range fields {
			if f > 0 {
				out = append(out, ' ')
			}
			v := r.intn(1000)
			if v < 300 {
				v = 0 // many zero fields: redundant data
			}
			out = appendInt(out, v)
		}
		out = append(out, '\n')
	}
	return out
}

func appendInt(out []byte, v int) []byte {
	if v == 0 {
		return append(out, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(out, tmp[i:]...)
}
