package bench

import (
	"bytes"
	"reflect"
	"testing"

	"lvp/internal/locality"
	"lvp/internal/prog"
	"lvp/internal/vm"
)

const testMaxSteps = 20_000_000

// TestAllBenchmarksRun builds and executes every registered benchmark on
// both targets and checks that each halts, produces output, and is
// deterministic across two independent builds.
func TestAllBenchmarksRun(t *testing.T) {
	for _, bm := range All() {
		for _, tg := range prog.Targets {
			t.Run(bm.Name+"/"+tg.Name, func(t *testing.T) {
				p, err := bm.Build(tg, 1)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				res, err := vm.Exec(p, testMaxSteps)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if len(res.Output) == 0 {
					t.Fatal("benchmark produced no output")
				}
				for _, v := range res.Output {
					if int64(v) == -1 {
						t.Fatal("benchmark signalled internal failure (-1)")
					}
				}
				if res.Steps < 5_000 {
					t.Errorf("only %d dynamic instructions; too small to be meaningful", res.Steps)
				}
				// Determinism: rebuild and rerun.
				p2, err := bm.Build(tg, 1)
				if err != nil {
					t.Fatalf("rebuild: %v", err)
				}
				res2, err := vm.Exec(p2, testMaxSteps)
				if err != nil {
					t.Fatalf("rerun: %v", err)
				}
				if !reflect.DeepEqual(res.Output, res2.Output) || res.Steps != res2.Steps {
					t.Errorf("nondeterministic: %v/%d vs %v/%d",
						res.Output, res.Steps, res2.Output, res2.Steps)
				}
			})
		}
	}
}

// TestGrepCountMatchesGo cross-checks the VLR grep against Go's bytes.Count
// on the identical generated input.
func TestGrepCountMatchesGo(t *testing.T) {
	bm, err := ByName("grep")
	if err != nil {
		t.Fatal(err)
	}
	for _, tg := range prog.Targets {
		want := uint64(countOverlapping(GrepText(tg, 1), []byte(GrepPattern)))
		p, err := bm.Build(tg, 1)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		res, err := vm.Exec(p, testMaxSteps)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if res.Output[0] != want {
			t.Errorf("%s: grep count = %d, want %d", tg.Name, res.Output[0], want)
		}
	}
}

func countOverlapping(text, pat []byte) int {
	n := 0
	for i := 0; i+len(pat) <= len(text); i++ {
		if bytes.Equal(text[i:i+len(pat)], pat) {
			n++
		}
	}
	return n
}

// TestScaleGrowsWork checks that scale actually increases run length.
func TestScaleGrowsWork(t *testing.T) {
	bm, err := ByName("grep")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := bm.Build(prog.AXP, 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := bm.Build(prog.AXP, 2)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := vm.Exec(p1, testMaxSteps)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := vm.Exec(p2, testMaxSteps)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Steps < r1.Steps*3/2 {
		t.Errorf("scale 2 ran %d steps vs %d at scale 1; expected ~2x", r2.Steps, r1.Steps)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("doesnotexist"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestNamesMatchAll(t *testing.T) {
	names := Names()
	bms := All()
	if len(names) != len(bms) {
		t.Fatalf("Names()=%d entries, All()=%d", len(names), len(bms))
	}
	seen := map[string]bool{}
	for i, b := range bms {
		if names[i] != b.Name {
			t.Errorf("order mismatch at %d: %q vs %q", i, names[i], b.Name)
		}
		if seen[b.Name] {
			t.Errorf("duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
	}
}

// TestLocalityStableAcrossScales validates the DESIGN.md substitution claim
// that the scaled-down run lengths already exhibit converged value locality:
// doubling the run length must not move depth-1 locality by more than a few
// points for representative benchmarks.
func TestLocalityStableAcrossScales(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-2 runs are slower")
	}
	for _, name := range []string{"grep", "compress", "sc", "cjpeg"} {
		bm, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		measure := func(scale int) float64 {
			p, err := bm.Build(prog.PPC, scale)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			tr, _, err := vm.Run(p, testMaxSteps)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return locality.Measure(tr, locality.DefaultEntries, 1)[0].Overall.Percent()
		}
		l1, l2 := measure(1), measure(2)
		if diff := l2 - l1; diff > 8 || diff < -8 {
			t.Errorf("%s: depth-1 locality moved %.1f points between scale 1 (%.1f%%) and 2 (%.1f%%)",
				name, diff, l1, l2)
		}
	}
}
