package bench

import (
	"lvp/internal/isa"
	"lvp/internal/prog"
)

func init() {
	register(Benchmark{
		Name:        "cc1",
		Description: "compiler front end: lexer, symbol interning, pattern counting (GCC 1.35 analogue)",
		Input:       "synthetic C-like source, 4 KiB",
		Build: func(t prog.Target, scale int) (*prog.Program, error) {
			return buildCC("cc1", 808, 4096, 1, t, scale)
		},
	})
	register(Benchmark{
		Name:        "cc1-271",
		Description: "compiler front end with an extra folding pass (GCC 2.7.1 analogue)",
		Input:       "synthetic C-like source, 6 KiB",
		Build: func(t prog.Target, scale int) (*prog.Program, error) {
			return buildCC("cc1-271", 909, 6144, 2, t, scale)
		},
	})
}

// Token kinds produced by the lexer.
const (
	tokEOF = iota
	tokIdent
	tokNumber
	tokPunct
	tokKeyword
	numTokKinds
)

// Character classes for the lexer's classification table.
const (
	ccSpace = iota
	ccAlpha
	ccDigit
	ccPunct
)

// makeSource synthesises C-like source text.
func makeSource(r *rng, n int) []byte {
	keywords := []string{"int", "if", "for", "return", "while", "else"}
	punct := []byte{'+', '-', '*', '/', ';', '(', ')', '{', '}', '=', '<', '>'}
	var out []byte
	for len(out) < n {
		switch r.intn(10) {
		case 0, 1:
			out = append(out, keywords[r.intn(len(keywords))]...)
		case 2, 3, 4:
			// identifier from a smallish set (real code reuses names)
			out = append(out, byte('a'+r.intn(26)))
			if r.intn(2) == 0 {
				out = append(out, byte('0'+r.intn(10)))
			}
		case 5, 6:
			out = appendInt(out, r.intn(10000))
		default:
			out = append(out, punct[r.intn(len(punct))])
		}
		if r.intn(8) == 0 {
			out = append(out, '\n')
		} else {
			out = append(out, ' ')
		}
	}
	return out[:n]
}

// buildCC is the shared compiler-front-end engine. passes selects how many
// times the token stream is re-walked by the folding phase (cc1-271 does an
// extra pass, standing in for the -O pipeline differences).
func buildCC(name string, seed uint64, size, passes int, t prog.Target, scale int) (*prog.Program, error) {
	scale = clampScale(scale)
	b := prog.New(name, t)
	r := newRNG(seed + targetSalt(t.Name))
	src := makeSource(r, size*scale)
	b.Bytes("src", src)

	// Character classification table: the canonical lexer idiom. These
	// loads hit a 128-entry constant table — extreme value locality.
	classTab := make([]byte, 128)
	for c := 0; c < 128; c++ {
		switch {
		case c == ' ' || c == '\n' || c == '\t':
			classTab[c] = ccSpace
		case (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_':
			classTab[c] = ccAlpha
		case c >= '0' && c <= '9':
			classTab[c] = ccDigit
		default:
			classTab[c] = ccPunct
		}
	}
	b.Bytes("classtab", classTab)

	const symtabSize = 512 // power of two
	b.Zeros("symkeys", symtabSize*8)
	// Worst case one token per source byte.
	b.Zeros("tokkinds", (len(src)+64)*8)
	b.Zeros("errflag", 8)

	// main: lex the whole source, interning identifiers and recording
	// token kinds; then `passes` folding passes count operator patterns.
	f := b.Func("main", 0, prog.S0, prog.S1, prog.S2, prog.S3, prog.S4, prog.S5, prog.S6)
	f.MarkPtr(prog.S0, prog.S3, prog.S4)
	b.GotData(prog.S0, "src")
	b.MaterializeInt(prog.S1, int64(len(src)))
	b.Li(prog.S2, 0) // cursor
	b.GotData(prog.S3, "tokkinds")
	b.Li(prog.S5, 0) // token count
	b.Li(prog.S6, 0) // ident-intern checksum
	lexloop, lexdone := b.NewLabel("lexloop"), b.NewLabel("lexdone")
	b.Label(lexloop)
	b.Branch(isa.BGE, prog.S2, prog.S1, lexdone)
	b.Op3(isa.ADD, prog.A0, prog.S0, prog.S2)
	b.Call("nextToken") // A0 = kind, A1 = consumed, A2(=T9 by convention) via vars
	// record kind
	b.OpI(isa.SHLI, prog.T0, prog.S5, 3)
	b.Op3(isa.ADD, prog.T0, prog.T0, prog.S3)
	b.Store(isa.SD, prog.A0, prog.T0, 0)
	b.Op3(isa.ADD, prog.S2, prog.S2, prog.A1)
	b.OpI(isa.ADDI, prog.S5, prog.S5, 1)
	// intern identifiers: hash in A2? nextToken returns hash in A2.
	notIdent := b.NewLabel("notident")
	b.OpI(isa.SLTI, prog.T1, prog.A0, tokIdent+1)
	b.Branch(isa.BEQ, prog.T1, prog.Zero, notIdent) // kind > tokIdent
	b.OpI(isa.SLTI, prog.T1, prog.A0, tokIdent)
	b.Branch(isa.BNE, prog.T1, prog.Zero, notIdent) // kind < tokIdent
	b.Mv(prog.A0, prog.A2)
	b.Call("intern")
	b.Op3(isa.ADD, prog.S6, prog.S6, prog.A0)
	b.Label(notIdent)
	b.Jump(lexloop)
	b.Label(lexdone)

	// Folding passes: walk the token-kind stream counting
	// number-punct-number triples (constant-foldable expressions).
	b.Li(prog.S4, 0) // fold count accumulator
	for p := 0; p < passes; p++ {
		b.Li(prog.S2, 2) // index
		floop, fdone := b.NewLabel("floop"), b.NewLabel("fdone")
		b.Label(floop)
		b.Branch(isa.BGE, prog.S2, prog.S5, fdone)
		b.OpI(isa.SHLI, prog.T0, prog.S2, 3)
		b.Op3(isa.ADD, prog.T0, prog.T0, prog.S3)
		b.Load(isa.LD, prog.T1, prog.T0, 0, isa.LoadIntData)   // kind[i]
		b.Load(isa.LD, prog.T2, prog.T0, -8, isa.LoadIntData)  // kind[i-1]
		b.Load(isa.LD, prog.T3, prog.T0, -16, isa.LoadIntData) // kind[i-2]
		skip := b.NewLabel("skipf")
		b.OpI(isa.XORI, prog.T4, prog.T1, tokNumber)
		b.Branch(isa.BNE, prog.T4, prog.Zero, skip)
		b.OpI(isa.XORI, prog.T4, prog.T2, tokPunct)
		b.Branch(isa.BNE, prog.T4, prog.Zero, skip)
		b.OpI(isa.XORI, prog.T4, prog.T3, tokNumber)
		b.Branch(isa.BNE, prog.T4, prog.Zero, skip)
		b.OpI(isa.ADDI, prog.S4, prog.S4, 1)
		b.Label(skip)
		b.OpI(isa.ADDI, prog.S2, prog.S2, 1)
		b.Jump(floop)
		b.Label(fdone)
	}
	b.ErrorCheck("errflag", "ccfail")
	b.Out(prog.S5) // token count
	b.Out(prog.S6) // intern checksum
	b.Out(prog.S4) // foldable patterns
	f.Epilogue()

	b.Label("ccfail")
	b.Li(prog.A0, -1)
	b.Out(prog.A0)
	b.Halt()

	// nextToken(A0 = ptr) -> A0 = kind, A1 = bytes consumed, A2 = ident hash.
	// Uses the class table for every character.
	g := b.Func("nextToken", 0, prog.S0, prog.S1, prog.S2)
	g.MarkPtr(prog.S0, prog.S1)
	b.Mv(prog.S0, prog.A0)
	b.GotData(prog.S1, "classtab")
	b.Li(prog.S2, 0) // consumed
	b.Li(prog.A2, 0) // hash
	skipws := b.NewLabel("skipws")
	b.Label(skipws)
	b.Op3(isa.ADD, prog.T0, prog.S0, prog.S2)
	b.Load(isa.LBU, prog.T1, prog.T0, 0, isa.LoadIntData) // source char
	b.OpI(isa.ANDI, prog.T1, prog.T1, 127)
	b.Op3(isa.ADD, prog.T2, prog.S1, prog.T1)
	b.Load(isa.LBU, prog.T3, prog.T2, 0, isa.LoadIntData) // class (constant table)
	notspace := b.NewLabel("notspace")
	b.Branch(isa.BNE, prog.T3, prog.Zero, notspace)
	b.OpI(isa.ADDI, prog.S2, prog.S2, 1)
	b.Jump(skipws)
	b.Label(notspace)
	// dispatch on class
	isAlpha, isDigit, isPunct := b.NewLabel("alpha"), b.NewLabel("digit"), b.NewLabel("punct")
	tdone := b.NewLabel("tdone")
	b.OpI(isa.XORI, prog.T4, prog.T3, ccAlpha)
	b.Branch(isa.BEQ, prog.T4, prog.Zero, isAlpha)
	b.OpI(isa.XORI, prog.T4, prog.T3, ccDigit)
	b.Branch(isa.BEQ, prog.T4, prog.Zero, isDigit)
	b.Jump(isPunct)

	scanClass := func(class int64, kind int64) {
		// consume chars while classtab[ch] == class, hashing into A2
		loop, done := b.NewLabel("scl"), b.NewLabel("scd")
		b.Label(loop)
		b.Op3(isa.ADD, prog.T0, prog.S0, prog.S2)
		b.Load(isa.LBU, prog.T1, prog.T0, 0, isa.LoadIntData)
		b.OpI(isa.ANDI, prog.T1, prog.T1, 127)
		b.Op3(isa.ADD, prog.T2, prog.S1, prog.T1)
		b.Load(isa.LBU, prog.T3, prog.T2, 0, isa.LoadIntData)
		b.OpI(isa.XORI, prog.T4, prog.T3, class)
		b.Branch(isa.BNE, prog.T4, prog.Zero, done)
		b.Li(prog.T5, 31)
		b.Op3(isa.MUL, prog.A2, prog.A2, prog.T5)
		b.Op3(isa.ADD, prog.A2, prog.A2, prog.T1)
		b.OpI(isa.ADDI, prog.S2, prog.S2, 1)
		b.Jump(loop)
		b.Label(done)
		b.Li(prog.A0, kind)
		b.Jump(tdone)
	}
	b.Label(isAlpha)
	scanClass(ccAlpha, tokIdent)
	b.Label(isDigit)
	scanClass(ccDigit, tokNumber)
	b.Label(isPunct)
	b.OpI(isa.ADDI, prog.S2, prog.S2, 1)
	b.Li(prog.A0, tokPunct)
	b.Label(tdone)
	b.Mv(prog.A1, prog.S2)
	g.Epilogue()

	// intern(A0 = hash) -> A0 = slot index. Open-addressing probe over
	// symkeys; repeated identifiers hit the same slots (locality).
	h := b.Func("intern", 0, prog.S0)
	h.MarkPtr(prog.S0)
	b.GotData(prog.S0, "symkeys")
	b.OpI(isa.ADDI, prog.T0, prog.A0, 1) // key != 0
	b.OpI(isa.ANDI, prog.T1, prog.T0, symtabSize-1)
	probe, insert, found := b.NewLabel("iprobe"), b.NewLabel("iinsert"), b.NewLabel("ifound")
	b.Label(probe)
	b.OpI(isa.SHLI, prog.T2, prog.T1, 3)
	b.Op3(isa.ADD, prog.T2, prog.T2, prog.S0)
	b.Load(isa.LD, prog.T3, prog.T2, 0, isa.LoadIntData) // slot key
	b.Branch(isa.BEQ, prog.T3, prog.Zero, insert)
	b.Branch(isa.BEQ, prog.T3, prog.T0, found)
	b.OpI(isa.ADDI, prog.T1, prog.T1, 1)
	b.OpI(isa.ANDI, prog.T1, prog.T1, symtabSize-1)
	b.Jump(probe)
	b.Label(insert)
	b.Store(isa.SD, prog.T0, prog.T2, 0)
	b.Label(found)
	b.Mv(prog.A0, prog.T1)
	h.Epilogue()

	return b.Build()
}
