package bench

import (
	"fmt"

	"lvp/internal/isa"
	"lvp/internal/prog"
)

func init() {
	register(Benchmark{
		Name:        "perl",
		Description: "stack bytecode interpreter, modelled on the perl runtime loop",
		Input:       "arithmetic-loop bytecode program",
		Build:       buildPerl,
	})
	register(Benchmark{
		Name:        "xlisp",
		Description: "recursive expression-tree evaluator, modelled on the xlisp interpreter",
		Input:       "balanced cons-cell arithmetic tree, re-evaluated repeatedly",
		Build:       buildXlisp,
	})
	register(Benchmark{
		Name:        "sc",
		Description: "spreadsheet recalculation over a mostly-empty grid",
		Input:       "synthetic 800-cell sheet, 60% empty cells",
		Build:       buildSC,
	})
	register(Benchmark{
		Name:        "eqntott",
		Description: "truth-table term sort through a comparison function pointer",
		Input:       "48 ternary bit-vector terms",
		Build:       buildEqntott,
	})
}

// Bytecode opcodes for the perl workload's interpreted machine.
const (
	bcPushC  = iota // push constant arg
	bcPushV         // push vars[arg]
	bcStoreV        // vars[arg] = pop
	bcAdd           // push(pop+pop)
	bcSub           // b=pop, a=pop, push(a-b)
	bcMul           // push(pop*pop)
	bcJnz           // if pop != 0 jump to instruction arg
	bcPrint         // OUT pop
	bcHaltOp        // stop interpreting
	bcLoadA         // idx=pop; push(arr[idx])
	bcStoreA        // idx=pop, val=pop; arr[idx]=val
	bcNumOps
)

func buildPerl(t prog.Target, scale int) (*prog.Program, error) {
	scale = clampScale(scale)
	b := prog.New("perl", t)
	n := int64(420 * scale)
	const arrLen = 256
	// Interpreted program over a data array (the handlers do real,
	// value-varying work, like perl's):
	//   i=n; acc=0
	//   do { acc += i*arr[i&255]; arr[i&255] = acc; i-- } while i
	//   print acc
	// The i&255 masking is done with mul/sub tricks the tiny ISA has:
	// idx = i - (i/256)*256 is precomputed per iteration using vars.
	type bc struct{ op, arg int64 }
	codeList := []bc{
		{bcPushC, n}, {bcStoreV, 0}, // i = n
		{bcPushC, 0}, {bcStoreV, 1}, // acc = 0
		// loop body starts at instruction 4
		{bcPushV, 0}, {bcLoadA, 0}, // arr[i % len] (handler masks)
		{bcPushV, 0}, {bcMul, 0}, // * i
		{bcPushV, 1}, {bcAdd, 0}, {bcStoreV, 1}, // acc +=
		{bcPushV, 1}, {bcPushV, 0}, {bcStoreA, 0}, // arr[i % len] = acc
		{bcPushV, 0}, {bcPushC, 1}, {bcSub, 0}, {bcStoreV, 0}, // i--
		{bcPushV, 0}, {bcJnz, 4},
		{bcPushV, 1}, {bcPrint, 0},
		{bcHaltOp, 0},
	}
	words := make([]int64, 0, 2*len(codeList))
	for _, c := range codeList {
		words = append(words, c.op, c.arg)
	}
	b.WordsPtr("bytecode", words)
	r := newRNG(909 + targetSalt(t.Name))
	arr := make([]int64, arrLen)
	for i := range arr {
		arr[i] = int64(r.intn(1000))
	}
	b.WordsPtr("arr", arr)
	b.Zeros("stack", 64*8)
	b.Zeros("vars", 16*8)
	b.Zeros("errflag", 8)

	ptr := b.PtrBytes()
	sh := b.PtrShift()

	// main: *threaded* fetch/dispatch, as real interpreter cores are
	// compiled: every handler ends with its own copy of the fetch and
	// the computed dispatch. Each static fetch site therefore sees the
	// opcode that follows one specific opcode — nearly constant for a
	// fixed interpreted program — which is precisely why interpreters
	// exhibit high load value locality (paper §2, "computed branches").
	f := b.Func("main", 0, prog.S0, prog.S1, prog.S2, prog.S3, prog.S4, prog.S5)
	f.MarkPtr(prog.S0, prog.S2, prog.S4, prog.S5)
	b.GotData(prog.S0, "bytecode")
	b.Li(prog.S1, 0) // ip (instruction index)
	b.GotData(prog.S2, "stack")
	b.Li(prog.S3, 0) // sp (slot index)
	b.GotData(prog.S4, "vars")
	b.GotData(prog.S5, "arr")
	handlers := []string{"h_pushc", "h_pushv", "h_storev", "h_add", "h_sub", "h_mul", "h_jnz", "h_print", "h_halt", "h_loada", "h_storea"}
	jtSeq := 0
	dispatch := func() {
		// T0 = op, T1 = arg; advance ip; jump through this site's table.
		b.OpI(isa.SHLI, prog.T2, prog.S1, sh+1) // ip * 2*ptr
		b.Op3(isa.ADD, prog.T2, prog.T2, prog.S0)
		b.LoadInt(prog.T0, prog.T2, 0)   // opcode (near-constant per site)
		b.LoadInt(prog.T1, prog.T2, ptr) // argument
		b.OpI(isa.ADDI, prog.S1, prog.S1, 1)
		b.Switch(prog.T0, prog.T5, fmt.Sprintf("perl_jt%d", jtSeq), handlers, "h_halt")
		jtSeq++
	}
	dispatch()

	// push/pop helpers inline; stack slot = S2 + sp<<sh
	pushT3 := func() { // push T3
		b.OpI(isa.SHLI, prog.T4, prog.S3, sh)
		b.Op3(isa.ADD, prog.T4, prog.T4, prog.S2)
		b.StoreInt(prog.T3, prog.T4, 0)
		b.OpI(isa.ADDI, prog.S3, prog.S3, 1)
	}
	popT3 := func() { // T3 = pop
		b.OpI(isa.ADDI, prog.S3, prog.S3, -1)
		b.OpI(isa.SHLI, prog.T4, prog.S3, sh)
		b.Op3(isa.ADD, prog.T4, prog.T4, prog.S2)
		b.LoadInt(prog.T3, prog.T4, 0)
	}
	popT6 := func() { // T6 = pop
		b.OpI(isa.ADDI, prog.S3, prog.S3, -1)
		b.OpI(isa.SHLI, prog.T4, prog.S3, sh)
		b.Op3(isa.ADD, prog.T4, prog.T4, prog.S2)
		b.LoadInt(prog.T6, prog.T4, 0)
	}

	b.Label("h_pushc")
	b.Mv(prog.T3, prog.T1)
	pushT3()
	dispatch()

	b.Label("h_pushv")
	b.OpI(isa.SHLI, prog.T4, prog.T1, sh)
	b.Op3(isa.ADD, prog.T4, prog.T4, prog.S4)
	b.LoadInt(prog.T3, prog.T4, 0)
	pushT3()
	dispatch()

	b.Label("h_storev")
	popT3()
	b.OpI(isa.SHLI, prog.T4, prog.T1, sh)
	b.Op3(isa.ADD, prog.T4, prog.T4, prog.S4)
	b.StoreInt(prog.T3, prog.T4, 0)
	dispatch()

	b.Label("h_add")
	popT6()
	popT3()
	b.Op3(isa.ADD, prog.T3, prog.T3, prog.T6)
	pushT3()
	dispatch()

	b.Label("h_sub")
	popT6()
	popT3()
	b.Op3(isa.SUB, prog.T3, prog.T3, prog.T6)
	pushT3()
	dispatch()

	b.Label("h_mul")
	popT6()
	popT3()
	b.Op3(isa.MUL, prog.T3, prog.T3, prog.T6)
	pushT3()
	dispatch()

	b.Label("h_jnz")
	popT3()
	fall := b.NewLabel("jnzfall")
	b.Branch(isa.BEQ, prog.T3, prog.Zero, fall)
	b.Mv(prog.S1, prog.T1)
	b.Label(fall)
	dispatch()

	b.Label("h_print")
	popT3()
	b.Out(prog.T3)
	dispatch()

	b.Label("h_loada")
	popT3() // index
	b.OpI(isa.ANDI, prog.T3, prog.T3, arrLen-1)
	b.OpI(isa.SHLI, prog.T4, prog.T3, sh)
	b.Op3(isa.ADD, prog.T4, prog.T4, prog.S5)
	b.LoadInt(prog.T3, prog.T4, 0) // arr value (varies: real work)
	pushT3()
	dispatch()

	b.Label("h_storea")
	popT3() // index
	popT6() // value
	b.OpI(isa.ANDI, prog.T3, prog.T3, arrLen-1)
	b.OpI(isa.SHLI, prog.T4, prog.T3, sh)
	b.Op3(isa.ADD, prog.T4, prog.T4, prog.S5)
	b.StoreInt(prog.T6, prog.T4, 0)
	dispatch()

	b.Label("h_halt")
	b.ErrorCheck("errflag", "perlfail")
	f.Epilogue()

	b.Label("perlfail")
	b.Li(prog.A0, -1)
	b.Out(prog.A0)
	b.Halt()

	return b.Build()
}

// Cell tags for the xlisp expression tree.
const (
	lispNum = iota
	lispAdd
	lispSub
	lispMul
)

func buildXlisp(t prog.Target, scale int) (*prog.Program, error) {
	scale = clampScale(scale)
	b := prog.New("xlisp", t)
	r := newRNG(404 + targetSalt(t.Name))
	// Build a balanced tree of depth 8: cell = [tag, a, b]; for NUM, a is
	// the value; otherwise a and b are child cell indices.
	const depth = 8
	var cells []int64 // flattened 3-word records
	var gen func(d int) int64
	gen = func(d int) int64 {
		idx := int64(len(cells) / 3)
		if d == 0 {
			cells = append(cells, lispNum, int64(r.intn(9)+1), 0)
			return idx
		}
		cells = append(cells, 0, 0, 0) // reserve
		var tag int64
		switch r.intn(3) {
		case 0:
			tag = lispAdd
		case 1:
			tag = lispSub
		default:
			if d == 1 {
				tag = lispMul // multiply only near the leaves to bound values
			} else {
				tag = lispAdd
			}
		}
		l := gen(d - 1)
		rr := gen(d - 1)
		cells[idx*3], cells[idx*3+1], cells[idx*3+2] = tag, l, rr
		return idx
	}
	root := gen(depth)
	b.WordsPtr("cells", cells)
	b.Zeros("errflag", 8)
	evals := 12 * scale

	ptr := b.PtrBytes()
	sh := b.PtrShift()

	f := b.Func("main", 0, prog.S0, prog.S1, prog.S2)
	b.MaterializeInt(prog.S0, int64(evals))
	b.Li(prog.S1, 0) // iteration
	b.Li(prog.S2, 0) // checksum
	loop, done := b.NewLabel("loop"), b.NewLabel("done")
	b.Label(loop)
	b.Branch(isa.BGE, prog.S1, prog.S0, done)
	b.MaterializeInt(prog.A0, root)
	b.Call("eval")
	b.Op3(isa.ADD, prog.S2, prog.S2, prog.A0)
	b.OpI(isa.ADDI, prog.S1, prog.S1, 1)
	b.Jump(loop)
	b.Label(done)
	b.ErrorCheck("errflag", "xlispfail")
	b.Out(prog.S2)
	f.Epilogue()

	b.Label("xlispfail")
	b.Li(prog.A0, -1)
	b.Out(prog.A0)
	b.Halt()

	// eval(A0 = cell index) -> A0 = value. Recursion produces deep
	// call-subgraph locality: RA restores, callee-save reloads, and tag
	// loads of the same cells every outer iteration.
	g := b.Func("eval", 0, prog.S0, prog.S1, prog.S2)
	g.MarkPtr(prog.S2)
	b.GotData(prog.S2, "cells") // data-address load (recurring)
	b.Li(prog.T0, 3)
	b.Op3(isa.MUL, prog.T1, prog.A0, prog.T0)
	b.OpI(isa.SHLI, prog.T1, prog.T1, sh)
	b.Op3(isa.ADD, prog.S0, prog.S2, prog.T1) // &cell
	b.LoadInt(prog.T2, prog.S0, 0)            // tag (recurring per cell)
	b.Switch(prog.T2, prog.T5, "xlisp_jt",
		[]string{"l_num", "l_add", "l_sub", "l_mul"}, "l_num")

	b.Label("l_num")
	b.LoadInt(prog.A0, prog.S0, ptr)
	b.Jump("l_ret")

	evalChildren := func() {
		b.LoadInt(prog.A0, prog.S0, ptr) // left child index
		b.Call("eval")
		b.Mv(prog.S1, prog.A0)
		b.LoadInt(prog.A0, prog.S0, 2*ptr) // right child index
		b.Call("eval")
	}
	b.Label("l_add")
	evalChildren()
	b.Op3(isa.ADD, prog.A0, prog.S1, prog.A0)
	b.Jump("l_ret")
	b.Label("l_sub")
	evalChildren()
	b.Op3(isa.SUB, prog.A0, prog.S1, prog.A0)
	b.Jump("l_ret")
	b.Label("l_mul")
	evalChildren()
	b.Op3(isa.MUL, prog.A0, prog.S1, prog.A0)
	b.Label("l_ret")
	g.Epilogue()

	return b.Build()
}

// Cell types for the sc spreadsheet grid.
const (
	scEmpty = iota
	scConst
	scFormulaAdd
	scFormulaMul
)

func buildSC(t prog.Target, scale int) (*prog.Program, error) {
	scale = clampScale(scale)
	b := prog.New("sc", t)
	r := newRNG(505 + targetSalt(t.Name))
	ncells := 800
	// cell = [type, value, a1, a2]; formulas reference strictly earlier
	// cells so one pass converges and later passes re-load stable values.
	cells := make([]int64, 0, ncells*4)
	for i := range ncells {
		switch {
		case i < 2 || r.intn(10) < 6:
			cells = append(cells, scEmpty, 0, 0, 0)
		case r.intn(10) < 7:
			cells = append(cells, scConst, int64(r.intn(100)), 0, 0)
		default:
			a1, a2 := int64(r.intn(i)), int64(r.intn(i))
			op := int64(scFormulaAdd)
			if r.intn(4) == 0 {
				op = scFormulaMul
			}
			cells = append(cells, op, 0, a1, a2)
		}
	}
	b.WordsPtr("cells", cells)
	b.Zeros("errflag", 8)
	passes := int64(14 * scale)

	ptr := b.PtrBytes()
	sh := b.PtrShift()
	stride := int64(4) << sh

	// main: recalc passes over the grid; cell-type loads are mostly
	// scEmpty (redundant data), and after the first pass every value
	// load is stable.
	f := b.Func("main", 0, prog.S0, prog.S1, prog.S2, prog.S3, prog.S4)
	f.MarkPtr(prog.S0)
	b.GotData(prog.S0, "cells")
	b.Li(prog.S1, 0) // pass
	b.MaterializeInt(prog.S4, passes)
	b.Li(prog.T9, 0)
	ploop, pdone := b.NewLabel("ploop"), b.NewLabel("pdone")
	b.Label(ploop)
	b.Branch(isa.BGE, prog.S1, prog.S4, pdone)
	b.Li(prog.S2, 0) // cell index
	cloop, cdone := b.NewLabel("cloop"), b.NewLabel("cdone")
	b.Label(cloop)
	b.MaterializeInt(prog.T0, int64(ncells))
	b.Branch(isa.BGE, prog.S2, prog.T0, cdone)
	b.MaterializeInt(prog.T1, stride)
	b.Op3(isa.MUL, prog.T1, prog.S2, prog.T1)
	b.Op3(isa.ADD, prog.S3, prog.S0, prog.T1) // &cell
	b.LoadInt(prog.T2, prog.S3, 0)            // type (60% empty)
	b.Switch(prog.T2, prog.T5, "sc_jt",
		[]string{"c_empty", "c_const", "c_add", "c_mul"}, "c_empty")

	b.Label("c_empty")
	b.Jump("c_next")
	b.Label("c_const")
	b.Jump("c_next")

	loadRef := func(argOff int64, dst isa.Reg) {
		b.LoadInt(prog.T3, prog.S3, argOff) // referenced index
		b.MaterializeInt(prog.T4, stride)
		b.Op3(isa.MUL, prog.T3, prog.T3, prog.T4)
		b.Op3(isa.ADD, prog.T3, prog.T3, prog.S0)
		b.LoadInt(dst, prog.T3, ptr) // referenced value (stable after pass 1)
	}
	b.Label("c_add")
	loadRef(2*ptr, prog.T6)
	loadRef(3*ptr, prog.T7)
	b.Op3(isa.ADD, prog.T8, prog.T6, prog.T7)
	b.StoreInt(prog.T8, prog.S3, ptr)
	b.Jump("c_next")
	b.Label("c_mul")
	loadRef(2*ptr, prog.T6)
	loadRef(3*ptr, prog.T7)
	b.Op3(isa.MUL, prog.T8, prog.T6, prog.T7)
	b.OpI(isa.ANDI, prog.T8, prog.T8, 0xFFFF) // keep values bounded
	b.StoreInt(prog.T8, prog.S3, ptr)
	b.Jump("c_next")

	b.Label("c_next")
	b.OpI(isa.ADDI, prog.S2, prog.S2, 1)
	b.Jump(cloop)
	b.Label(cdone)
	b.OpI(isa.ADDI, prog.S1, prog.S1, 1)
	b.Jump(ploop)
	b.Label(pdone)
	// checksum pass
	b.Li(prog.S2, 0)
	b.Li(prog.T9, 0)
	sloop, sdone := b.NewLabel("sloop"), b.NewLabel("sdone")
	b.Label(sloop)
	b.MaterializeInt(prog.T0, int64(ncells))
	b.Branch(isa.BGE, prog.S2, prog.T0, sdone)
	b.MaterializeInt(prog.T1, stride)
	b.Op3(isa.MUL, prog.T1, prog.S2, prog.T1)
	b.Op3(isa.ADD, prog.T1, prog.T1, prog.S0)
	b.LoadInt(prog.T2, prog.T1, ptr)
	b.Op3(isa.ADD, prog.T9, prog.T9, prog.T2)
	b.OpI(isa.ADDI, prog.S2, prog.S2, 1)
	b.Jump(sloop)
	b.Label(sdone)
	b.ErrorCheck("errflag", "scfail")
	b.Out(prog.T9)
	f.Epilogue()

	b.Label("scfail")
	b.Li(prog.A0, -1)
	b.Out(prog.A0)
	b.Halt()

	return b.Build()
}

func buildEqntott(t prog.Target, scale int) (*prog.Program, error) {
	scale = clampScale(scale)
	b := prog.New("eqntott", t)
	r := newRNG(606 + targetSalt(t.Name))
	const termBytes = 16
	nterms := 40 + 8*scale
	terms := make([]byte, nterms*termBytes)
	for i := range terms {
		// ternary digits 0/1/2, heavily biased toward 0 (redundant data)
		v := r.intn(10)
		switch {
		case v < 6:
			terms[i] = 0
		case v < 9:
			terms[i] = 1
		default:
			terms[i] = 2
		}
	}
	b.Bytes("terms", terms)
	perm := make([]int64, nterms)
	for i := range perm {
		perm[i] = int64(i)
	}
	b.WordsPtr("perm", perm)
	b.PtrTable("cmpfn", []string{"cmppt"}, true) // function-pointer variable
	b.Zeros("errflag", 8)

	sh := b.PtrShift()

	// main: insertion sort of perm[] through the cmpfn function pointer,
	// modelled on eqntott's qsort(cmppt) hot loop.
	f := b.Func("main", 0, prog.S0, prog.S1, prog.S2, prog.S3, prog.S4)
	f.MarkPtr(prog.S0)
	b.GotData(prog.S0, "perm")
	b.Li(prog.S1, 1) // i
	b.MaterializeInt(prog.S4, int64(nterms))
	iloop, idone := b.NewLabel("iloop"), b.NewLabel("idone")
	b.Label(iloop)
	b.Branch(isa.BGE, prog.S1, prog.S4, idone)
	b.Mv(prog.S2, prog.S1) // j
	jloop, jdone := b.NewLabel("jloop"), b.NewLabel("jdone")
	b.Label(jloop)
	b.Branch(isa.BEQ, prog.S2, prog.Zero, jdone)
	// A0 = perm[j-1], A1 = perm[j]
	b.OpI(isa.SHLI, prog.T0, prog.S2, sh)
	b.Op3(isa.ADD, prog.S3, prog.S0, prog.T0) // &perm[j]
	b.LoadInt(prog.A1, prog.S3, 0)
	b.LoadInt(prog.A0, prog.S3, -b.PtrBytes())
	b.CallThrough("cmpfn")                       // inst-addr load of the comparator, every time
	b.Branch(isa.BGE, prog.Zero, prog.A0, jdone) // if cmp <= 0 stop
	// swap perm[j-1], perm[j]
	b.LoadInt(prog.T1, prog.S3, 0)
	b.LoadInt(prog.T2, prog.S3, -b.PtrBytes())
	b.StoreInt(prog.T1, prog.S3, -b.PtrBytes())
	b.StoreInt(prog.T2, prog.S3, 0)
	b.OpI(isa.ADDI, prog.S2, prog.S2, -1)
	b.Jump(jloop)
	b.Label(jdone)
	b.OpI(isa.ADDI, prog.S1, prog.S1, 1)
	b.Jump(iloop)
	b.Label(idone)
	// checksum: sum idx*pos
	b.Li(prog.S1, 0)
	b.Li(prog.T9, 0)
	sloop, sdone := b.NewLabel("sloop"), b.NewLabel("sdone")
	b.Label(sloop)
	b.Branch(isa.BGE, prog.S1, prog.S4, sdone)
	b.OpI(isa.SHLI, prog.T0, prog.S1, sh)
	b.Op3(isa.ADD, prog.T0, prog.T0, prog.S0)
	b.LoadInt(prog.T1, prog.T0, 0)
	b.Op3(isa.MUL, prog.T1, prog.T1, prog.S1)
	b.Op3(isa.ADD, prog.T9, prog.T9, prog.T1)
	b.OpI(isa.ADDI, prog.S1, prog.S1, 1)
	b.Jump(sloop)
	b.Label(sdone)
	b.ErrorCheck("errflag", "eqnfail")
	b.Out(prog.T9)
	f.Epilogue()

	b.Label("eqnfail")
	b.Li(prog.A0, -1)
	b.Out(prog.A0)
	b.Halt()

	// cmppt(A0 = idxA, A1 = idxB): lexicographic compare of the two
	// ternary terms. The byte loads are 0/1/2 values: extreme locality.
	g := b.Func("cmppt", 0, prog.S0, prog.S1)
	g.MarkPtr(prog.S0)
	b.GotData(prog.S0, "terms")
	b.MaterializeInt(prog.T0, termBytes)
	b.Op3(isa.MUL, prog.T1, prog.A0, prog.T0)
	b.Op3(isa.ADD, prog.T1, prog.T1, prog.S0) // &terms[a]
	b.Op3(isa.MUL, prog.T2, prog.A1, prog.T0)
	b.Op3(isa.ADD, prog.T2, prog.T2, prog.S0) // &terms[b]
	b.Li(prog.S1, 0)                          // byte index
	cmploop := b.NewLabel("cmploop")
	b.Label(cmploop)
	b.MaterializeInt(prog.T3, termBytes)
	b.Branch(isa.BGE, prog.S1, prog.T3, "cmpeq")
	b.Op3(isa.ADD, prog.T4, prog.T1, prog.S1)
	b.Load(isa.LBU, prog.T5, prog.T4, 0, isa.LoadIntData)
	b.Op3(isa.ADD, prog.T6, prog.T2, prog.S1)
	b.Load(isa.LBU, prog.T7, prog.T6, 0, isa.LoadIntData)
	b.Branch(isa.BLT, prog.T5, prog.T7, "cmplt")
	b.Branch(isa.BLT, prog.T7, prog.T5, "cmpgt")
	b.OpI(isa.ADDI, prog.S1, prog.S1, 1)
	b.Jump(cmploop)
	b.Label("cmpeq")
	b.Li(prog.A0, 0)
	b.Jump("cmpret")
	b.Label("cmplt")
	b.Li(prog.A0, -1)
	b.Jump("cmpret")
	b.Label("cmpgt")
	b.Li(prog.A0, 1)
	b.Label("cmpret")
	g.Epilogue()

	return b.Build()
}
