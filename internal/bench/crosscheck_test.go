package bench

// Cross-validation: several workloads are re-implemented in plain Go on the
// *identical* generated inputs, and the VLR programs' outputs must match
// exactly. This pins the functional correctness of the builder, the VM and
// the workload code all at once.

import (
	"testing"

	"lvp/internal/prog"
	"lvp/internal/vm"
)

func runBench(t *testing.T, name string, tg prog.Target) []uint64 {
	t.Helper()
	bm, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := bm.Build(tg, 1)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	res, err := vm.Exec(p, testMaxSteps)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.Output
}

func TestGawkMatchesGoReference(t *testing.T) {
	const fields = 8
	for _, tg := range prog.Targets {
		text := makeNumberText(newRNG(202+targetSalt(tg.Name)), 220, fields)
		// Reference: parse fields exactly as the VLR program does (skip
		// non-digits, read digit runs, one terminator consumed).
		var sums [fields]uint64
		var zeros uint64
		cursor, fieldIdx := 0, 0
		at := func(i int) byte {
			if i < len(text) {
				return text[i]
			}
			return 0
		}
		for cursor < len(text) {
			i := cursor
			for at(i) < '0' {
				i++
			}
			v := uint64(0)
			for at(i) >= '0' && at(i) <= '9' {
				v = v*10 + uint64(at(i)-'0')
				i++
			}
			cursor = i + 1
			sums[fieldIdx] += v
			if v == 0 {
				zeros++
			}
			fieldIdx = (fieldIdx + 1) % fields
		}
		out := runBench(t, "gawk", tg)
		if len(out) != fields+1 {
			t.Fatalf("%s: output len %d", tg.Name, len(out))
		}
		for i := 0; i < fields; i++ {
			if out[i] != sums[i] {
				t.Errorf("%s: fieldsum[%d] = %d, want %d", tg.Name, i, out[i], sums[i])
			}
		}
		if out[fields] != zeros {
			t.Errorf("%s: zero count = %d, want %d", tg.Name, out[fields], zeros)
		}
	}
}

func TestQuickSortsCorrectly(t *testing.T) {
	for _, tg := range prog.Targets {
		out := runBench(t, "quick", tg)
		if out[0] != 1 {
			t.Fatalf("%s: sortedness self-check failed", tg.Name)
		}
		// out[1] is arr[0] after sorting = the minimum of the input.
		r := newRNG(707 + targetSalt(tg.Name))
		n := 500 + 140
		minV := uint64(1 << 62)
		for i := 0; i < n; i++ {
			v := uint64(r.intn(1 << 20))
			if v < minV {
				minV = v
			}
		}
		if out[1] != minV {
			t.Errorf("%s: sorted minimum = %d, want %d", tg.Name, out[1], minV)
		}
	}
}

func TestSCMatchesGoReference(t *testing.T) {
	for _, tg := range prog.Targets {
		// Rebuild the identical sheet and run the same recalc in Go.
		r := newRNG(505 + targetSalt(tg.Name))
		ncells := 800
		type cell struct{ typ, val, a1, a2 int64 }
		cells := make([]cell, 0, ncells)
		for i := 0; i < ncells; i++ {
			switch {
			case i < 2 || r.intn(10) < 6:
				cells = append(cells, cell{typ: scEmpty})
			case r.intn(10) < 7:
				cells = append(cells, cell{typ: scConst, val: int64(r.intn(100))})
			default:
				a1, a2 := int64(r.intn(i)), int64(r.intn(i))
				op := int64(scFormulaAdd)
				if r.intn(4) == 0 {
					op = scFormulaMul
				}
				cells = append(cells, cell{typ: op, a1: a1, a2: a2})
			}
		}
		for pass := 0; pass < 14; pass++ {
			for i := range cells {
				switch cells[i].typ {
				case scFormulaAdd:
					cells[i].val = cells[cells[i].a1].val + cells[cells[i].a2].val
				case scFormulaMul:
					cells[i].val = (cells[cells[i].a1].val * cells[cells[i].a2].val) & 0xFFFF
				}
			}
		}
		var want uint64
		for i := range cells {
			want += uint64(cells[i].val)
		}
		// On the 32-bit target values are stored in 4-byte cells;
		// everything here stays far below 2^31 so the sum agrees.
		out := runBench(t, "sc", tg)
		if out[0] != want {
			t.Errorf("%s: sc checksum = %d, want %d", tg.Name, out[0], want)
		}
	}
}

func TestXlispMatchesGoReference(t *testing.T) {
	for _, tg := range prog.Targets {
		r := newRNG(404 + targetSalt(tg.Name))
		const depth = 8
		type cell struct{ tag, a, b int64 }
		var cells []cell
		var gen func(d int) int64
		gen = func(d int) int64 {
			idx := int64(len(cells))
			if d == 0 {
				cells = append(cells, cell{lispNum, int64(r.intn(9) + 1), 0})
				return idx
			}
			cells = append(cells, cell{})
			var tag int64
			switch r.intn(3) {
			case 0:
				tag = lispAdd
			case 1:
				tag = lispSub
			default:
				if d == 1 {
					tag = lispMul
				} else {
					tag = lispAdd
				}
			}
			l := gen(d - 1)
			rr := gen(d - 1)
			cells[idx] = cell{tag, l, rr}
			return idx
		}
		root := gen(depth)
		var eval func(i int64) int64
		eval = func(i int64) int64 {
			c := cells[i]
			switch c.tag {
			case lispNum:
				return c.a
			case lispAdd:
				return eval(c.a) + eval(c.b)
			case lispSub:
				return eval(c.a) - eval(c.b)
			default:
				return eval(c.a) * eval(c.b)
			}
		}
		want := uint64(12 * eval(root)) // 12 evaluations summed
		out := runBench(t, "xlisp", tg)
		got := out[0]
		if tg.PtrBytes == 4 {
			// 32-bit target: intermediate values stored in 4-byte
			// locals could wrap; compare low 32 bits.
			got &= 0xFFFFFFFF
			want &= 0xFFFFFFFF
		}
		if got != want {
			t.Errorf("%s: xlisp checksum = %d, want %d", tg.Name, got, want)
		}
	}
}

func TestPerlInterpreterMatchesGo(t *testing.T) {
	// The interpreted program computes, over an array seeded identically:
	//   i=420..1: idx = i & 255; acc += i*arr[idx]; arr[idx] = acc
	// On the 32-bit target every stack/var/array cell is 4 bytes, so all
	// intermediate values truncate to int32; on the 64-bit target they
	// are full int64.
	for _, tg := range prog.Targets {
		r := newRNG(909 + targetSalt(tg.Name))
		arr := make([]int64, 256)
		for i := range arr {
			arr[i] = int64(r.intn(1000))
		}
		trunc := func(v int64) int64 {
			if tg.PtrBytes == 4 {
				return int64(int32(v))
			}
			return v
		}
		acc := int64(0)
		for i := int64(420); i != 0; i-- {
			idx := i & 255
			acc = trunc(acc + trunc(i*arr[idx]))
			arr[idx] = acc
		}
		want := uint64(acc)
		out := runBench(t, "perl", tg)
		if out[0] != want {
			t.Errorf("%s: perl result = %d, want %d", tg.Name, int64(out[0]), acc)
		}
	}
}

func TestEqntottSortsTermsCorrectly(t *testing.T) {
	for _, tg := range prog.Targets {
		// Rebuild terms, sort indices lexicographically in Go, compare
		// the position-weighted checksum.
		r := newRNG(606 + targetSalt(tg.Name))
		const termBytes = 16
		nterms := 48
		terms := make([][]byte, nterms)
		flat := make([]byte, nterms*termBytes)
		for i := range flat {
			v := r.intn(10)
			switch {
			case v < 6:
				flat[i] = 0
			case v < 9:
				flat[i] = 1
			default:
				flat[i] = 2
			}
		}
		for i := range terms {
			terms[i] = flat[i*termBytes : (i+1)*termBytes]
		}
		perm := make([]int, nterms)
		for i := range perm {
			perm[i] = i
		}
		// Insertion sort, same comparator, same stability.
		for i := 1; i < nterms; i++ {
			for j := i; j > 0; j-- {
				a, b := terms[perm[j-1]], terms[perm[j]]
				cmp := 0
				for k := 0; k < termBytes; k++ {
					if a[k] != b[k] {
						if a[k] < b[k] {
							cmp = -1
						} else {
							cmp = 1
						}
						break
					}
				}
				if cmp <= 0 {
					break
				}
				perm[j-1], perm[j] = perm[j], perm[j-1]
			}
		}
		var want uint64
		for pos, idx := range perm {
			want += uint64(idx * pos)
		}
		out := runBench(t, "eqntott", tg)
		if out[0] != want {
			t.Errorf("%s: eqntott checksum = %d, want %d", tg.Name, out[0], want)
		}
	}
}
