// Package ppc620 is the trace-driven, cycle-level timing model of the
// PowerPC 620 (paper §4.1) and its enhanced 620+ variant, with optional Load
// Value Prediction integration.
//
// Modelled mechanisms: 4-wide fetch/dispatch/completion, per-functional-unit
// reservation stations, GPR/FPR rename buffers, a completion buffer with
// in-order completion, BHT+BTB+RAS branch prediction with fetch redirect on
// mispredict, a non-blocking dual-banked L1 with an L2 behind it, store
// commit at completion with bank-conflict accounting, and the paper's LVP
// semantics: values forwarded speculatively at dispatch, verified one cycle
// after the actual value returns, dependent instructions holding their
// reservation stations until verification, and a one-cycle reissue penalty
// on misprediction. Constant-verified loads (CVU) skip the cache entirely.
//
// Deliberate simplification (documented in DESIGN.md): the LSU issues memory
// operations oldest-first, so loads never bypass older stores and the 620's
// store-to-load alias refetch never fires; store-to-load forwarding from the
// pending-store queue is modelled.
package ppc620

import "lvp/internal/cache"

// FU enumerates the 620's functional unit types.
type FU int

// Functional units (paper Figure 4).
const (
	SCFX FU = iota // single-cycle integer (two units)
	MCFX           // multi-cycle integer
	FPU            // floating point
	LSU            // load/store
	BRU            // branch
	NumFU
)

func (f FU) String() string {
	switch f {
	case SCFX:
		return "SCFX"
	case MCFX:
		return "MCFX"
	case FPU:
		return "FPU"
	case LSU:
		return "LSU"
	case BRU:
		return "BRU"
	}
	return "FU?"
}

// Config holds the machine parameters for the 620 or 620+.
type Config struct {
	Name          string
	FetchWidth    int
	DispatchWidth int
	CompleteWidth int
	FetchBuffer   int
	// RS is the number of reservation-station entries per FU type
	// (pooled across that type's units).
	RS [NumFU]int
	// Units is the number of execution units per FU type.
	Units [NumFU]int
	// GPRRename and FPRRename are rename-buffer counts.
	GPRRename int
	FPRRename int
	// Completion is the completion (reorder) buffer size.
	Completion int
	// MaxLoadDispatch and MaxStoreDispatch bound memory-op dispatch per
	// cycle. The 620 dispatches at most one load and one store; the 620+
	// relaxes this to two of either.
	MaxLoadDispatch  int
	MaxStoreDispatch int
	RelaxedLS        bool // 620+: the two slots are interchangeable

	// Cache geometry and latencies.
	L1         cache.Config
	L2         cache.Config
	L1Latency  int // load-to-use on L1 hit (Table 5: 2)
	L2Latency  int
	MemLatency int
	// MSHRs bounds outstanding L1 misses (the 620's non-blocking cache
	// is not infinitely non-blocking); further missing loads wait for a
	// miss register to free.
	MSHRs int
}

// Config620 returns the base PowerPC 620 model parameters.
func Config620() Config {
	return Config{
		Name:             "620",
		FetchWidth:       4,
		DispatchWidth:    4,
		CompleteWidth:    4,
		FetchBuffer:      8,
		RS:               [NumFU]int{SCFX: 4, MCFX: 2, FPU: 2, LSU: 3, BRU: 4},
		Units:            [NumFU]int{SCFX: 2, MCFX: 1, FPU: 1, LSU: 1, BRU: 1},
		GPRRename:        8,
		FPRRename:        8,
		Completion:       16,
		MaxLoadDispatch:  1,
		MaxStoreDispatch: 1,
		L1: cache.Config{Name: "L1D", SizeBytes: 32 << 10, LineBytes: 64,
			Assoc: 8, Banks: 2},
		L2: cache.Config{Name: "L2", SizeBytes: 1 << 20, LineBytes: 64,
			Assoc: 4, Banks: 1},
		L1Latency:  2,
		L2Latency:  8,
		MemLatency: 40,
		MSHRs:      4,
	}
}

// Config620Plus returns the paper's "next-generation" 620+: doubled
// reservation stations, rename buffers and completion buffer, a second
// load/store unit (without an extra cache port), and relaxed load/store
// dispatch (§4.1).
func Config620Plus() Config {
	c := Config620()
	c.Name = "620+"
	for f := range c.RS {
		c.RS[f] *= 2
	}
	c.Units[LSU] = 2
	c.GPRRename = 16
	c.FPRRename = 16
	c.Completion = 32
	c.MaxLoadDispatch = 2
	c.MaxStoreDispatch = 2
	c.RelaxedLS = true
	return c
}
