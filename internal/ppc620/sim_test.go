package ppc620

import (
	"testing"

	"lvp/internal/isa"
	"lvp/internal/trace"
)

// mkTrace builds a trace from records, fixing PCs sequentially when zero.
func mkTrace(recs []trace.Record) *trace.Trace {
	pc := uint64(0x1000)
	for i := range recs {
		if recs[i].PC == 0 {
			recs[i].PC = pc
		}
		pc = recs[i].PC + isa.InstBytes
	}
	return &trace.Trace{Name: "t", Target: "ppc", Records: recs}
}

func addChain(n int, dep bool) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		if dep {
			recs[i] = trace.Record{Op: isa.ADD, Rd: 5, Ra: 5, Rb: 5}
		} else {
			recs[i] = trace.Record{Op: isa.ADD, Rd: isa.Reg(5 + i%8), Ra: 1, Rb: 2}
		}
	}
	return recs
}

func TestIndependentAddsSuperscalar(t *testing.T) {
	s := Simulate(mkTrace(addChain(4000, false)), nil, Config620(), "")
	if ipc := s.IPC(); ipc < 1.5 {
		t.Errorf("independent adds IPC = %.2f; expected superscalar (>1.5)", ipc)
	}
	if s.Cycles <= 0 || s.Instructions != 4000 {
		t.Errorf("bad counts: %+v", s)
	}
}

func TestDependentChainSerializes(t *testing.T) {
	s := Simulate(mkTrace(addChain(4000, true)), nil, Config620(), "")
	if ipc := s.IPC(); ipc > 1.1 {
		t.Errorf("fully dependent adds IPC = %.2f; must be ~1", ipc)
	}
}

func TestLoadUseChainLatency(t *testing.T) {
	// load -> use -> load -> use serial chain (each load address depends
	// on the previous use): cycles per pair should reflect the 2-cycle
	// L1 latency.
	var recs []trace.Record
	for i := 0; i < 1000; i++ {
		recs = append(recs,
			trace.Record{Op: isa.LD, Rd: 5, Ra: 5, Addr: 0x100000, Value: 0x100000, Size: 8, Class: isa.LoadIntData},
			trace.Record{Op: isa.ADD, Rd: 5, Ra: 5, Rb: 0},
		)
	}
	s := Simulate(mkTrace(recs), nil, Config620(), "")
	perPair := float64(s.Cycles) / 1000
	if perPair < 2.5 {
		t.Errorf("load-use chain %.2f cycles/pair; expected >= ~3 (2-cycle load + add)", perPair)
	}
}

func annotateAll(n int, st trace.PredState) trace.Annotation {
	ann := make(trace.Annotation, n)
	for i := range ann {
		if i%2 == 0 { // loads at even indices in the chain traces below
			ann[i] = st
		}
	}
	return ann
}

func TestCorrectPredictionCollapsesChain(t *testing.T) {
	var recs []trace.Record
	for i := 0; i < 1000; i++ {
		recs = append(recs,
			trace.Record{Op: isa.LD, Rd: 5, Ra: 5, Addr: 0x100000, Value: 0x100000, Size: 8, Class: isa.LoadIntData},
			trace.Record{Op: isa.ADD, Rd: 5, Ra: 5, Rb: 0},
		)
	}
	tr := mkTrace(recs)
	base := Simulate(tr, nil, Config620(), "")
	pred := Simulate(tr, annotateAll(len(recs), trace.PredCorrect), Config620(), "pred")
	if pred.Cycles >= base.Cycles {
		t.Errorf("correct predictions did not speed up the chain: %d >= %d",
			pred.Cycles, base.Cycles)
	}
	if pred.LoadStates[trace.PredCorrect] != 1000 {
		t.Errorf("load state accounting: %v", pred.LoadStates)
	}
	// Figure 7 histogram must have recorded every correctly-predicted load.
	tot := 0
	for _, v := range pred.VerifyLatency {
		tot += v
	}
	if tot != 1000 {
		t.Errorf("verify-latency histogram total = %d, want 1000", tot)
	}
}

func TestIncorrectPredictionCostsALittle(t *testing.T) {
	var recs []trace.Record
	for i := 0; i < 1000; i++ {
		recs = append(recs,
			trace.Record{Op: isa.LD, Rd: 5, Ra: 5, Addr: 0x100000, Value: 0x100000, Size: 8, Class: isa.LoadIntData},
			trace.Record{Op: isa.ADD, Rd: 5, Ra: 5, Rb: 0},
		)
	}
	tr := mkTrace(recs)
	base := Simulate(tr, nil, Config620(), "")
	bad := Simulate(tr, annotateAll(len(recs), trace.PredIncorrect), Config620(), "bad")
	if bad.Cycles <= base.Cycles {
		t.Errorf("mispredictions should cost cycles: %d <= %d", bad.Cycles, base.Cycles)
	}
	// Paper: worst case is one extra cycle of latency per load plus
	// structural effects — not a blowup.
	if float64(bad.Cycles) > 1.8*float64(base.Cycles) {
		t.Errorf("misprediction cost implausibly high: %d vs %d", bad.Cycles, base.Cycles)
	}
}

func TestConstantLoadSkipsCache(t *testing.T) {
	var recs []trace.Record
	for i := 0; i < 500; i++ {
		recs = append(recs,
			trace.Record{Op: isa.LD, Rd: 5, Ra: 1, Addr: 0x100000, Value: 7, Size: 8, Class: isa.LoadIntData},
			trace.Record{Op: isa.ADD, Rd: 6, Ra: 5, Rb: 0},
		)
	}
	tr := mkTrace(recs)
	base := Simulate(tr, nil, Config620(), "")
	cons := Simulate(tr, annotateAll(len(recs), trace.PredConstant), Config620(), "cvu")
	if cons.CacheAccesses >= base.CacheAccesses {
		t.Errorf("constant loads should reduce cache accesses: %d >= %d",
			cons.CacheAccesses, base.CacheAccesses)
	}
}

func TestBranchMispredictsCostCycles(t *testing.T) {
	// Alternating taken/not-taken branch: the 2-bit BHT mispredicts a
	// lot; compare against an always-taken (predictable) branch.
	mk := func(alternate bool) *trace.Trace {
		var recs []trace.Record
		for i := 0; i < 2000; i++ {
			taken := true
			if alternate {
				taken = i%2 == 0
			}
			recs = append(recs,
				trace.Record{PC: 0x1000, Op: isa.ADD, Rd: 5, Ra: 1, Rb: 2},
				trace.Record{PC: 0x1004, Op: isa.BEQ, Ra: 5, Rb: 5, Taken: taken, Targ: 0x1000},
			)
		}
		return &trace.Trace{Name: "b", Records: recs}
	}
	predictable := Simulate(mk(false), nil, Config620(), "")
	alternating := Simulate(mk(true), nil, Config620(), "")
	if alternating.Cycles <= predictable.Cycles {
		t.Errorf("alternating branches should cost more: %d <= %d",
			alternating.Cycles, predictable.Cycles)
	}
	if alternating.Branch.CondMispredict == 0 {
		t.Error("expected conditional mispredictions")
	}
}

func Test620PlusFasterOnParallelCode(t *testing.T) {
	// Memory-heavy parallel code: the extra LSU and buffers should help.
	var recs []trace.Record
	for i := 0; i < 3000; i++ {
		recs = append(recs,
			trace.Record{Op: isa.LD, Rd: isa.Reg(5 + i%4), Ra: 1,
				Addr: uint64(0x100000 + 8*(i%64)), Value: 1, Size: 8, Class: isa.LoadIntData},
			trace.Record{Op: isa.ADD, Rd: isa.Reg(10 + i%4), Ra: isa.Reg(5 + i%4), Rb: 2},
			trace.Record{Op: isa.SD, Rb: isa.Reg(10 + i%4), Ra: 1,
				Addr: uint64(0x200000 + 8*(i%64)), Value: 1, Size: 8},
		)
	}
	tr := mkTrace(recs)
	base := Simulate(tr, nil, Config620(), "")
	plus := Simulate(tr, nil, Config620Plus(), "")
	if plus.Cycles >= base.Cycles {
		t.Errorf("620+ (%d cycles) should beat 620 (%d) on parallel memory code",
			plus.Cycles, base.Cycles)
	}
}

func TestBankConflictsDetected(t *testing.T) {
	// Loads and stores hammering the same bank (distinct lines, both on
	// bank 0 with 64-byte line interleave) in tight alternation.
	var recs []trace.Record
	for i := 0; i < 2000; i++ {
		recs = append(recs,
			trace.Record{Op: isa.LD, Rd: isa.Reg(5 + i%4), Ra: 1, Addr: 0x100000, Value: 1, Size: 8, Class: isa.LoadIntData},
			trace.Record{Op: isa.SD, Rb: 2, Ra: 1, Addr: 0x100080, Value: 1, Size: 8},
		)
	}
	s := Simulate(mkTrace(recs), nil, Config620(), "")
	if s.BankConflicts == 0 {
		t.Error("same-bank load/store traffic should produce bank conflicts")
	}
	if s.BankConflictCycles > s.Cycles {
		t.Errorf("conflict cycles %d exceed total cycles %d", s.BankConflictCycles, s.Cycles)
	}
}

func TestRSWaitAccounting(t *testing.T) {
	s := Simulate(mkTrace(addChain(1000, true)), nil, Config620(), "")
	if s.RSWaitN[SCFX] == 0 {
		t.Fatal("no SCFX instructions accounted")
	}
	if s.AvgRSWait(SCFX) <= 0 {
		t.Error("dependent adds must show nonzero dependency wait")
	}
	s2 := Simulate(mkTrace(addChain(1000, false)), nil, Config620(), "")
	if s2.AvgRSWait(SCFX) >= s.AvgRSWait(SCFX) {
		t.Error("independent adds must wait less than a dependent chain")
	}
}

func TestSimulationDeterministic(t *testing.T) {
	tr := mkTrace(addChain(500, false))
	a := Simulate(tr, nil, Config620(), "")
	b := Simulate(tr, nil, Config620(), "")
	if a.Cycles != b.Cycles {
		t.Errorf("nondeterministic: %d vs %d", a.Cycles, b.Cycles)
	}
}

func TestVerifyBucketMapping(t *testing.T) {
	cases := map[int]int{0: 0, 3: 0, 4: 1, 5: 2, 6: 3, 7: 4, 8: 5, 100: 5}
	for lat, want := range cases {
		if got := verifyBucket(lat); got != want {
			t.Errorf("verifyBucket(%d) = %d, want %d", lat, got, want)
		}
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	// A load immediately after an executed store to the same address
	// forwards from the store queue (1 cycle, no cache access).
	var recs []trace.Record
	for i := 0; i < 500; i++ {
		recs = append(recs,
			trace.Record{Op: isa.SD, Rb: 2, Ra: 1, Addr: 0x100000, Value: 5, Size: 8},
			trace.Record{Op: isa.NOP},
			trace.Record{Op: isa.NOP},
			trace.Record{Op: isa.LD, Rd: 5, Ra: 1, Addr: 0x100000, Value: 5, Size: 8, Class: isa.LoadIntData},
		)
	}
	s := Simulate(mkTrace(recs), nil, Config620(), "")
	if s.AliasRefetches > 50 {
		t.Errorf("forwarded loads should rarely refetch, got %d refetches", s.AliasRefetches)
	}
}

func TestAliasRefetchDetected(t *testing.T) {
	// A store whose data depends on a long-latency divide, immediately
	// followed by a load of the same address: the load issues past the
	// stalled store and must be refetched by the alias logic.
	var recs []trace.Record
	for i := 0; i < 300; i++ {
		recs = append(recs,
			trace.Record{Op: isa.DIV, Rd: 7, Ra: 1, Rb: 2},
			trace.Record{Op: isa.SD, Rb: 7, Ra: 1, Addr: 0x100000, Value: 5, Size: 8},
			trace.Record{Op: isa.LD, Rd: 5, Ra: 3, Addr: 0x100000, Value: 5, Size: 8, Class: isa.LoadIntData},
		)
	}
	s := Simulate(mkTrace(recs), nil, Config620(), "")
	if s.AliasRefetches == 0 {
		t.Error("expected store-to-load alias refetches")
	}
}

func TestLoadsBypassUnrelatedSlowStores(t *testing.T) {
	// Loads to a different address must NOT wait for a store stalled on
	// a divide (out-of-order LSU benefit).
	mk := func(sameAddr bool) int {
		var recs []trace.Record
		loadAddr := uint64(0x200000)
		if sameAddr {
			loadAddr = 0x100000
		}
		for i := 0; i < 300; i++ {
			recs = append(recs,
				trace.Record{Op: isa.DIV, Rd: 7, Ra: 1, Rb: 2},
				trace.Record{Op: isa.SD, Rb: 7, Ra: 1, Addr: 0x100000, Value: 5, Size: 8},
				trace.Record{Op: isa.LD, Rd: 5, Ra: 3, Addr: loadAddr, Value: 5, Size: 8, Class: isa.LoadIntData},
				trace.Record{Op: isa.ADD, Rd: 6, Ra: 5, Rb: 5},
			)
		}
		return Simulate(mkTrace(recs), nil, Config620(), "").Cycles
	}
	disjoint := mk(false)
	aliased := mk(true)
	if disjoint > aliased {
		t.Errorf("disjoint loads (%d cycles) should not be slower than aliased (%d)",
			disjoint, aliased)
	}
}

func TestMSHRLimitThrottlesMisses(t *testing.T) {
	// A stream of independent loads each missing a large L1: with MSHRs
	// bounded the run must be slower than with unbounded miss registers.
	var recs []trace.Record
	for i := 0; i < 1000; i++ {
		recs = append(recs, trace.Record{
			Op: isa.LD, Rd: isa.Reg(5 + i%8), Ra: 1,
			Addr: uint64(0x100000 + i*4096), Value: 1, Size: 8, Class: isa.LoadIntData,
		})
	}
	tr := mkTrace(recs)
	bounded := Config620()
	unbounded := Config620()
	unbounded.MSHRs = 0 // unlimited
	sb := Simulate(tr, nil, bounded, "")
	su := Simulate(tr, nil, unbounded, "")
	if sb.MSHRStalls == 0 {
		t.Fatal("expected MSHR stalls on a miss storm")
	}
	if sb.Cycles <= su.Cycles {
		t.Errorf("bounded MSHRs (%d cycles) should be slower than unbounded (%d)",
			sb.Cycles, su.Cycles)
	}
}

func TestComplexUnitsNotPipelined(t *testing.T) {
	// Back-to-back independent divides serialize on the single MCFX unit
	// (non-pipelined, 35 cycles); independent FDIVs on the FPU (18).
	var divs, fdivs []trace.Record
	for i := 0; i < 100; i++ {
		divs = append(divs, trace.Record{Op: isa.DIV, Rd: isa.Reg(5 + i%8), Ra: 1, Rb: 2})
		fdivs = append(fdivs, trace.Record{Op: isa.FDIV, Rd: isa.Reg(5 + i%8), Ra: 1, Rb: 2})
	}
	sd := Simulate(mkTrace(divs), nil, Config620(), "")
	if perOp := float64(sd.Cycles) / 100; perOp < 30 {
		t.Errorf("divides %.1f cycles/op; MCFX must be non-pipelined (~35)", perOp)
	}
	sf := Simulate(mkTrace(fdivs), nil, Config620(), "")
	if perOp := float64(sf.Cycles) / 100; perOp < 15 {
		t.Errorf("fdivs %.1f cycles/op; complex FP must be non-pipelined (~18)", perOp)
	}
	// Simple FP is pipelined: much better than 3 cycles/op.
	var fadds []trace.Record
	for i := 0; i < 300; i++ {
		fadds = append(fadds, trace.Record{Op: isa.FADD, Rd: isa.Reg(5 + i%8), Ra: 1, Rb: 2})
	}
	sa := Simulate(mkTrace(fadds), nil, Config620(), "")
	if perOp := float64(sa.Cycles) / 300; perOp > 2 {
		t.Errorf("fadds %.2f cycles/op; simple FP must be pipelined (~1)", perOp)
	}
}
