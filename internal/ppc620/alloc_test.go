package ppc620

import (
	"testing"

	"lvp/internal/isa"
	"lvp/internal/trace"
)

// loadAddMix builds n records alternating a fixed-address load with
// independent adds, so the batch simulation loop's load path runs hot while
// the cache hierarchy's footprint (one line) stays constant across sizes.
func loadAddMix(n int) *trace.Trace {
	recs := make([]trace.Record, n)
	for i := range recs {
		if i%4 == 0 {
			recs[i] = trace.Record{Op: isa.LD, Rd: 5, Ra: 1,
				Addr: 0x100000, Value: 7, Size: 8, Class: isa.LoadIntData}
		} else {
			recs[i] = trace.Record{Op: isa.ADD, Rd: isa.Reg(6 + i%4), Ra: 1, Rb: 2}
		}
	}
	return mkTrace(recs)
}

// TestSimulateAllocsDoNotScale gates the batch simulation loop at zero
// allocations per record: a run allocates the machine, stats and hierarchy
// once, so quadrupling the record count must not move the per-run
// allocation count. A per-record (or per-batch) allocation in the hot loop
// shows up here as thousands of extra allocs at the larger size.
func TestSimulateAllocsDoNotScale(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	measure := func(tr *trace.Trace) float64 {
		return testing.AllocsPerRun(5, func() {
			Simulate(tr, nil, Config620(), "")
		})
	}
	small := measure(loadAddMix(4096))
	big := measure(loadAddMix(16384))
	if big > small+8 {
		t.Fatalf("allocations scale with record count: %v allocs @4k records, %v @16k", small, big)
	}
}
