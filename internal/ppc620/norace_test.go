//go:build !race

package ppc620

// raceEnabled gates the allocation-regression tests, which measure
// allocs/op and are meaningless under the race detector's instrumentation.
const raceEnabled = false
