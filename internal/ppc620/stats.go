package ppc620

import (
	"lvp/internal/bpred"
	"lvp/internal/cache"
	"lvp/internal/trace"
)

// VerifyBuckets are the load-verification-latency buckets of paper Figure 7:
// <4, 4, 5, 6, 7, >7 cycles from dispatch to verification.
var VerifyBuckets = []string{"<4", "4", "5", "6", "7", ">7"}

// Stats is everything one simulation run reports.
type Stats struct {
	Machine      string
	LVPConfig    string // "" when no LVP unit is attached
	Cycles       int
	Instructions int

	// Loads by annotated prediction state, as consumed by the model.
	LoadStates [trace.NumPredStates]int

	// VerifyLatency histograms dispatch→verify distance for
	// correctly-predicted loads (Figure 7 buckets).
	VerifyLatency [6]int

	// RSWaitSum/RSWaitN accumulate, per FU type, the cycles instructions
	// spent in a reservation station waiting for their true dependencies
	// (Figure 8).
	RSWaitSum [NumFU]int64
	RSWaitN   [NumFU]int64

	// BankConflictCycles counts cycles in which at least one L1 bank had
	// more than one requester (Figure 9). BankConflicts counts the
	// individual conflict events.
	BankConflictCycles int
	BankConflicts      int

	// Dispatch-stall accounting: cycles in which dispatch stopped early
	// for each reason (diagnostics; not a paper figure).
	StallCompletion int
	StallRS         [NumFU]int
	StallRename     int
	StallMemSlots   int
	StallFetchEmpty int

	// MSHRStalls counts misses deferred because every miss register was
	// busy.
	MSHRStalls int

	// AliasRefetches counts loads refetched by the store-to-load alias
	// detection logic (they issued past an older store that turned out
	// to overlap).
	AliasRefetches int

	// CacheAccesses counts L1 data accesses actually performed (constant
	// loads skip the cache, so this drops under LVP).
	CacheAccesses int
	L1            cache.Stats
	L2            cache.Stats
	Branch        bpred.Stats
}

// IPC is instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// BankConflictRate is the fraction of cycles with at least one bank
// conflict (Figure 9's y-axis).
func (s Stats) BankConflictRate() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.BankConflictCycles) / float64(s.Cycles)
}

// AvgRSWait is the mean reservation-station dependency-wait for one FU type
// (Figure 8).
func (s Stats) AvgRSWait(f FU) float64 {
	if s.RSWaitN[f] == 0 {
		return 0
	}
	return float64(s.RSWaitSum[f]) / float64(s.RSWaitN[f])
}

// verifyBucket maps a dispatch→verify latency to a Figure 7 bucket index.
func verifyBucket(lat int) int {
	switch {
	case lat < 4:
		return 0
	case lat > 7:
		return 5
	default:
		return lat - 3 // 4..7 -> 1..4
	}
}
