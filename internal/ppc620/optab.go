package ppc620

import "lvp/internal/isa"

// The per-opcode table behind the model's hot loops. prepare and dispatch
// used to re-derive the same facts for every dynamic instruction — functional
// unit, latency, write/read sets — through the isa switch functions; opTab
// precomputes one row per opcode at init, *from* those functions, so they
// remain the single authority (isa.TestOpMetaMatchesSwitches pins the shared
// read/write derivation, TestOpTabMatchesFunctions pins this table).

type opInfo struct {
	fu    FU
	lat   int32
	flags uint16
}

const (
	opWritesGPR uint16 = 1 << iota
	opWritesFPR
	opIsCompare
	opIsLoad
	opIsStore
	opIsBranch
	opNonPipeFP // ClassComplexFP: occupies the FPU until done
	opReadsRaG
	opReadsRaF
	opReadsRbG
	opReadsRbF
	opReadsAny = opReadsRaG | opReadsRaF | opReadsRbG | opReadsRbF
)

var opTab [isa.NumOps]opInfo

// outOfRangeInfo serves opcodes beyond NumOps (possible in a hand-built
// record), matching what fuOf/execLatency compute through ClassOf's clamp.
var outOfRangeInfo opInfo

func init() {
	build := func(op isa.Op) opInfo {
		info := opInfo{fu: fuOf(op), lat: int32(execLatency(op))}
		m := isa.MetaOf(op)
		if m.WGPR {
			info.flags |= opWritesGPR
		}
		if m.WFPR {
			info.flags |= opWritesFPR
		}
		if isCompare(op) {
			info.flags |= opIsCompare
		}
		if m.Load {
			info.flags |= opIsLoad
		}
		if m.Store {
			info.flags |= opIsStore
		}
		if m.Branch {
			info.flags |= opIsBranch
		}
		if m.Class == isa.ClassComplexFP {
			info.flags |= opNonPipeFP
		}
		if m.ReadsRaG {
			info.flags |= opReadsRaG
		}
		if m.ReadsRaF {
			info.flags |= opReadsRaF
		}
		if m.ReadsRbG {
			info.flags |= opReadsRbG
		}
		if m.ReadsRbF {
			info.flags |= opReadsRbF
		}
		return info
	}
	for op := isa.Op(0); int(op) < isa.NumOps; op++ {
		opTab[op] = build(op)
	}
	outOfRangeInfo = build(isa.Op(isa.NumOps))
}

// infoOf returns op's table row, clamping out-of-range opcodes the way
// isa.ClassOf does.
func infoOf(op isa.Op) *opInfo {
	if int(op) >= isa.NumOps {
		return &outOfRangeInfo
	}
	return &opTab[op]
}
