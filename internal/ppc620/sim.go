package ppc620

import (
	"fmt"
	"io"
	"log/slog"

	"lvp/internal/bpred"
	"lvp/internal/cache"
	"lvp/internal/isa"
	"lvp/internal/obs"
	"lvp/internal/trace"
)

const unknown = -1

// entry is one dynamic instruction flowing through the machine.
type entry struct {
	rec  trace.Record
	fu   FU
	pred trace.PredState

	dispatchC int
	issueC    int
	doneC     int // result produced (cache data back, ALU result, ...)
	verifyC   int // predicted loads: value comparison / CVU match done
	readyMax  int // latest source-ready cycle observed (Figure 8)

	srcA, srcB int // producer entry indices, or -1
	specSrc    int // unverified predicted load this instruction depends on, or -1

	resultReadyC int // cycle dependents may consume the result (unknown until set)

	usesRename bool // consumes a GPR rename buffer (compares write CR instead)
	dispatched bool
	issued     bool
	completed  bool
	mispred    bool // branch that redirects fetch
	writesGPR  bool
	writesFPR  bool
	isLoad     bool
	isStore    bool
	cancelled  bool // constant load whose cache access the CVU cancelled

	aliasStore int // conflicting older store detected by the alias logic
}

// machine is the live simulation state. Instructions live in a fixed-size
// ring of entries sized by ringSize, so a run needs memory proportional to
// the machine's window, not to the trace: the live window spans at most
// Completion+FetchBuffer entries, and the oldest entry any mechanism may
// still consult (a producer feeding a dependence capture, or a predicted
// load behind a spec tag) is bounded by a further Completion+CompleteWidth
// below the head — see ringSize.
type machine struct {
	cfg       Config
	src       trace.AnnotatedSource
	annotated bool
	hier      *cache.Hierarchy
	bp        *bpred.Predictor

	entries  []entry // ring; index with at()
	ringMask int

	head      int // oldest not-completed (absolute index)
	dispPtr   int // next to dispatch (into entries/window)
	fetched   int // number fetched so far (fetch buffer tail)
	liveFloor int // head at the start of the current cycle

	srcDone     bool
	pending     trace.Record // one-record lookahead, primed before cycle 0
	pendingPred trace.PredState
	hasPending  bool

	lastWriterG [isa.NumRegs]int
	lastWriterF [isa.NumRegs]int

	mcfxBusyUntil int
	fpuBusyUntil  int

	fetchStallEntry   int // entry index of unresolved mispredicted branch, or -1
	lastConflictCycle int
	missBusyUntil     []int // completion cycles of outstanding L1 misses (MSHRs)

	bankRing [16][8]uint8 // future L1 bank usage, ring-indexed by cycle

	otr *obs.Tracer // sim-channel event tracer (nil = off)

	stats Stats
}

// at returns the ring slot holding absolute entry index i. Valid only while
// i is within ringSize of the newest fetched entry; the structural bounds in
// ringSize guarantee that for every consultation the model performs.
func (m *machine) at(i int) *entry { return &m.entries[i&m.ringMask] }

// ringSize is the entry-ring capacity for a configuration: the live window
// holds at most Completion+FetchBuffer entries, dependence capture may
// consult a producer completed this cycle (head retreats at most
// CompleteWidth below the cycle's liveFloor), and a reservation-station hold
// may consult a spec-source load up to Completion entries behind its
// consumer. Rounded up to a power of two for mask indexing.
func ringSize(cfg Config) int {
	need := 2*cfg.Completion + cfg.FetchBuffer + cfg.CompleteWidth + 2
	size := 1
	for size < need {
		size <<= 1
	}
	return size
}

// Simulate runs the trace through the machine model. ann may be nil (no LVP
// unit); lvpName labels the run in the stats.
func Simulate(tr *trace.Trace, ann trace.Annotation, cfg Config, lvpName string) Stats {
	return SimulateObs(tr, ann, cfg, lvpName, nil)
}

// SimulateObs is Simulate with an event tracer: machine incidents (alias
// refetches, MSHR stalls, bank conflicts) on the sim channel, L1 misses on
// the cache channel. obsTr == nil is exactly Simulate.
//
// It is a thin wrapper over SimulateSourceObs on an in-memory slice source,
// so the in-memory and streaming paths share one cycle-level core.
func SimulateObs(tr *trace.Trace, ann trace.Annotation, cfg Config, lvpName string, obsTr *obs.Tracer) Stats {
	st, err := SimulateSourceObs(tr.StreamAnnotated(ann), cfg, lvpName, obsTr)
	if err != nil {
		// A slice source cannot fail.
		panic("ppc620: in-memory simulation failed: " + err.Error())
	}
	return st
}

// SimulateSource runs an annotated record stream through the machine model
// in bounded memory: the trace is never materialized, only the machine's
// window of in-flight entries is held. An error from the source (e.g. a
// trace decode failure) aborts the run.
func SimulateSource(src trace.AnnotatedSource, cfg Config, lvpName string) (Stats, error) {
	return SimulateSourceObs(src, cfg, lvpName, nil)
}

// SimulateSourceObs is SimulateSource with an event tracer. Batch-capable
// sources (the fused gen → annotate pipeline, the VLT1 Reader) are
// re-buffered through a trace.Pump, so the fetch loop's per-record pulls
// land in a local buffer instead of the upstream interface chain.
func SimulateSourceObs(src trace.AnnotatedSource, cfg Config, lvpName string, obsTr *obs.Tracer) (Stats, error) {
	m := &machine{
		cfg:       cfg,
		src:       trace.Buffer(src),
		annotated: src.Annotated(),
		hier: &cache.Hierarchy{
			L1:        cache.MustNew(cfg.L1),
			L2:        cache.MustNew(cfg.L2),
			L1Latency: cfg.L1Latency, L2Latency: cfg.L2Latency, MemLatency: cfg.MemLatency,
			Tracer: obsTr,
		},
		bp:              bpred.New(bpred.Default620),
		fetchStallEntry: -1,
		otr:             obsTr,
	}
	for i := range m.lastWriterG {
		m.lastWriterG[i] = -1
		m.lastWriterF[i] = -1
	}
	m.stats.Machine = cfg.Name
	m.stats.LVPConfig = lvpName
	size := ringSize(cfg)
	m.entries = make([]entry, size)
	m.ringMask = size - 1
	if err := m.run(); err != nil {
		return Stats{}, err
	}
	m.stats.Instructions = m.fetched
	m.stats.L1 = m.hier.L1.Stats()
	m.stats.L2 = m.hier.L2.Stats()
	m.stats.Branch = m.bp.Stats()
	return m.stats, nil
}

// prepare resets ring slot e and fills its static fields from record r.
func (m *machine) prepare(e *entry, r *trace.Record, pred trace.PredState) {
	*e = entry{}
	e.rec = *r
	e.fu = fuOf(r.Op)
	e.srcA, e.srcB = -1, -1
	e.specSrc = -1
	e.resultReadyC = unknown
	e.verifyC = unknown
	in := r.Inst()
	e.writesGPR = isa.WritesGPR(in) && r.Rd != isa.R0
	e.writesFPR = isa.WritesFPR(in)
	e.usesRename = e.writesGPR && !isCompare(r.Op)
	e.isLoad = r.IsLoad()
	e.isStore = r.IsStore()
	if m.annotated {
		// Annotations normally cover loads only; AnnotateGeneral also
		// marks other register-writing instructions, which this model
		// handles with the same forward-at-dispatch / verify-after-
		// execute semantics.
		e.pred = pred
		if e.isLoad {
			m.stats.LoadStates[e.pred]++
		}
	}
}

// isCompare reports VLR compare ops. On the PowerPC these are cmp/fcmp
// instructions that write the condition register, which has its own ample
// rename pool on the 620 — so they do not consume GPR rename buffers in
// this model.
func isCompare(op isa.Op) bool {
	switch op {
	case isa.SLT, isa.SLTI, isa.SLTU, isa.SEQ, isa.SNE, isa.FEQ, isa.FLT, isa.FLE:
		return true
	}
	return false
}

func fuOf(op isa.Op) FU {
	switch isa.ClassOf(op) {
	case isa.ClassComplexInt:
		return MCFX
	case isa.ClassSimpleFP, isa.ClassComplexFP:
		return FPU
	case isa.ClassLoad, isa.ClassStore:
		return LSU
	case isa.ClassBranch:
		return BRU
	default:
		return SCFX
	}
}

// execLatency is the result latency on the 620 (Table 5), excluding memory.
func execLatency(op isa.Op) int {
	switch isa.ClassOf(op) {
	case isa.ClassComplexInt:
		if op == isa.MUL {
			return 4 // mull on the 620 class of cores
		}
		return 35 // DIV, REM (Table 5's upper bound)
	case isa.ClassSimpleFP:
		return 3
	case isa.ClassComplexFP:
		return 18
	case isa.ClassStore:
		return 1 // address generation; data written at completion
	case isa.ClassBranch:
		return 1
	default:
		return 1
	}
}

// prime pulls the first record into the lookahead so an empty source is
// detected before cycle 0 (an empty run performs zero cycles).
func (m *machine) prime() error {
	r, pred, err := m.src.Next()
	if err == io.EOF {
		m.srcDone = true
		return nil
	}
	if err != nil {
		return err
	}
	m.pending = *r
	m.pendingPred = pred
	m.hasPending = true
	return nil
}

func (m *machine) run() error {
	if err := m.prime(); err != nil {
		return err
	}
	cycle := 0
	const safetyFactor = 200 // cycles per instruction upper bound
	for !m.srcDone || m.head < m.fetched {
		m.liveFloor = m.head
		m.complete(cycle)
		m.issue(cycle)
		m.dispatch(cycle)
		if err := m.fetch(cycle); err != nil {
			return err
		}
		// Clear the bank-usage slot this cycle vacates.
		m.bankRing[(cycle+len(m.bankRing)-1)&(len(m.bankRing)-1)] = [8]uint8{}
		cycle++
		if cycle > safetyFactor*(m.fetched+100) {
			panic("ppc620: simulation wedged (cycle bound exceeded)")
		}
	}
	m.stats.Cycles = cycle
	return nil
}

// --- fetch ---

func (m *machine) fetch(cycle int) error {
	// Fetch is blocked while a mispredicted branch is unresolved.
	if m.fetchStallEntry >= 0 {
		e := m.at(m.fetchStallEntry)
		if !e.issued || cycle <= e.doneC {
			return nil
		}
		m.fetchStallEntry = -1
	}
	space := m.cfg.FetchBuffer - (m.fetched - m.dispPtr)
	width := min(m.cfg.FetchWidth, space)
	for k := 0; k < width && !m.srcDone; k++ {
		var r *trace.Record
		var pred trace.PredState
		if m.hasPending {
			r, pred = &m.pending, m.pendingPred
			m.hasPending = false
		} else {
			nr, np, err := m.src.Next()
			if err == io.EOF {
				m.srcDone = true
				return nil
			}
			if err != nil {
				return err
			}
			r, pred = nr, np
		}
		i := m.fetched
		e := m.at(i)
		m.prepare(e, r, pred)
		m.fetched++
		// Branch prediction happens at fetch; a mispredicted branch
		// stalls further fetch until it resolves.
		if e.rec.IsBranch() {
			if m.bp.Resolve(&e.rec) {
				e.mispred = true
				m.fetchStallEntry = i
				return nil
			}
		}
	}
	return nil
}

// --- dispatch ---

func (m *machine) dispatch(cycle int) {
	loads, stores := 0, 0
	for k := 0; k < m.cfg.DispatchWidth; k++ {
		if m.dispPtr >= m.fetched {
			m.stats.StallFetchEmpty++
			return
		}
		i := m.dispPtr
		e := m.at(i)
		// Structural checks (in-order: stop at first failure).
		if i-m.head >= m.cfg.Completion {
			m.stats.StallCompletion++
			return // completion buffer full
		}
		if m.rsInUse(e.fu, cycle) >= m.cfg.RS[e.fu] {
			m.stats.StallRS[e.fu]++
			return
		}
		if e.usesRename && m.renameInUse(false) >= m.cfg.GPRRename {
			m.stats.StallRename++
			return
		}
		if e.writesFPR && m.renameInUse(true) >= m.cfg.FPRRename {
			m.stats.StallRename++
			return
		}
		if e.isLoad || e.isStore {
			full := false
			if m.cfg.RelaxedLS {
				full = loads+stores >= m.cfg.MaxLoadDispatch+m.cfg.MaxStoreDispatch-2
			} else {
				full = (e.isLoad && loads >= m.cfg.MaxLoadDispatch) ||
					(e.isStore && stores >= m.cfg.MaxStoreDispatch)
			}
			if full {
				m.stats.StallMemSlots++
				return
			}
		}

		// Dependence capture. Producers completed before this cycle are
		// dead for both readiness (their result is long available) and
		// spec-tag propagation (their verification is in the past), so
		// only entries at or above the cycle's live floor are consulted
		// — which also keeps every consulted index within the ring.
		r := &e.rec
		var srcs [4]isa.RegRef
		for _, ref := range isa.Sources(r.Inst(), srcs[:0]) {
			var p int
			if ref.FP {
				p = m.lastWriterF[ref.Reg]
			} else if ref.Reg != isa.R0 {
				p = m.lastWriterG[ref.Reg]
			} else {
				p = -1
			}
			if p < m.liveFloor {
				continue
			}
			if e.srcA < 0 {
				e.srcA = p
			} else if p != e.srcA {
				e.srcB = p
			}
			// Speculative-value tag propagation (paper §4.1).
			if tag := m.specTagOf(p, cycle); tag >= 0 {
				e.specSrc = tag
			}
		}

		e.dispatched = true
		e.dispatchC = cycle
		if e.writesGPR {
			m.lastWriterG[r.Rd] = i
		}
		if e.writesFPR {
			m.lastWriterF[r.Rd] = i
		}
		// A predicted instruction forwards its value at dispatch.
		if e.pred == trace.PredCorrect || e.pred == trace.PredConstant {
			e.resultReadyC = cycle
		}
		if e.isLoad {
			loads++
		}
		if e.isStore {
			stores++
		}
		m.dispPtr++
	}
}

// specTagOf reports the unverified predicted load behind producer p (p
// itself, or its inherited tag), or -1. p must be at or above the cycle's
// live floor; the spec source it chases is within Completion of p and so
// still resident in the ring.
func (m *machine) specTagOf(p, cycle int) int {
	pe := m.at(p)
	if pe.pred != trace.PredNone {
		if pe.verifyC == unknown || pe.verifyC >= cycle {
			return p
		}
		return -1
	}
	if pe.specSrc >= 0 {
		le := m.at(pe.specSrc)
		if le.verifyC == unknown || le.verifyC >= cycle {
			return pe.specSrc
		}
	}
	return -1
}

// rsInUse counts reservation-station entries held for one FU type.
func (m *machine) rsInUse(f FU, cycle int) int {
	n := 0
	for i := m.head; i < m.dispPtr; i++ {
		e := m.at(i)
		if e.fu != f || !e.dispatched || e.completed {
			continue
		}
		if m.holdsRS(e, cycle) {
			n++
		}
	}
	return n
}

// holdsRS reports whether a dispatched entry still occupies its reservation
// station: until the cycle after issue, and — when it consumed a
// speculatively-forwarded value — until that value is verified (paper §4.1).
func (m *machine) holdsRS(e *entry, cycle int) bool {
	if !e.issued {
		return true
	}
	if cycle <= e.issueC {
		return true
	}
	if e.specSrc >= 0 {
		le := m.at(e.specSrc)
		if le.verifyC == unknown || cycle <= le.verifyC {
			return true
		}
	}
	return false
}

// renameInUse counts rename buffers held (allocated at dispatch, freed at
// completion).
func (m *machine) renameInUse(fp bool) int {
	n := 0
	for i := m.head; i < m.dispPtr; i++ {
		e := m.at(i)
		if e.completed {
			continue
		}
		if (fp && e.writesFPR) || (!fp && e.usesRename) {
			n++
		}
	}
	return n
}

// --- issue & execute ---

func (m *machine) issue(cycle int) {
	var issuedPerFU [NumFU]int
	capacity := [NumFU]int{
		SCFX: m.cfg.Units[SCFX],
		MCFX: m.cfg.Units[MCFX],
		FPU:  m.cfg.Units[FPU],
		LSU:  m.cfg.Units[LSU],
		BRU:  m.cfg.Units[BRU],
	}
	if m.mcfxBusyUntil > cycle {
		capacity[MCFX] = 0
	}
	if m.fpuBusyUntil > cycle {
		capacity[FPU] = 0
	}
	// Stores issue in order among stores; loads may issue past older
	// stores with unknown addresses — the 620's store-to-load alias
	// detection refetches them when a conflict materialises (§4.1).
	storeBlocked := false
	for i := m.head; i < m.dispPtr; i++ {
		e := m.at(i)
		if !e.dispatched || e.issued {
			if e.isStore && !e.issued {
				storeBlocked = true
			}
			continue
		}
		if issuedPerFU[e.fu] >= capacity[e.fu] {
			if e.isStore {
				storeBlocked = true
			}
			continue
		}
		if e.isStore && storeBlocked {
			continue
		}
		if !m.operandsReady(e, cycle) {
			if e.isStore {
				storeBlocked = true
			}
			continue
		}
		m.execute(i, cycle)
		issuedPerFU[e.fu]++
	}
}

// operandsReady also records the Figure 8 dependency-wait when it becomes
// known.
func (m *machine) operandsReady(e *entry, cycle int) bool {
	ready := e.dispatchC
	for _, p := range [2]int{e.srcA, e.srcB} {
		if p < 0 {
			continue
		}
		pr := m.at(p).resultReadyC
		if pr == unknown || pr > cycle {
			return false
		}
		if pr > ready {
			ready = pr
		}
	}
	e.readyMax = ready
	return true
}

func (m *machine) execute(i, cycle int) {
	e := m.at(i)
	e.issued = true
	e.issueC = cycle
	m.stats.RSWaitSum[e.fu] += int64(max(0, e.readyMax-e.dispatchC))
	m.stats.RSWaitN[e.fu]++

	switch {
	case e.isLoad:
		m.executeLoad(i, cycle)
	case e.isStore:
		// Address generation; the cache write happens at completion.
		e.doneC = cycle + 1
		e.resultReadyC = e.doneC
	default:
		lat := execLatency(e.rec.Op)
		e.doneC = cycle + lat
		switch e.pred {
		case trace.PredCorrect:
			// Forwarded at dispatch; verified one cycle after the
			// result computes (general value prediction, §7).
			e.verifyC = e.doneC + 1
		case trace.PredIncorrect:
			e.verifyC = e.doneC + 1
			e.resultReadyC = e.doneC + 1
		default:
			if e.resultReadyC == unknown {
				e.resultReadyC = e.doneC
			}
		}
		if e.resultReadyC == unknown {
			e.resultReadyC = e.doneC
		}
		switch e.fu {
		case MCFX:
			m.mcfxBusyUntil = e.doneC // non-pipelined
		case FPU:
			if isa.ClassOf(e.rec.Op) == isa.ClassComplexFP {
				m.fpuBusyUntil = e.doneC // FDIV/FSQRT are non-pipelined
			}
		}
	}
}

func (m *machine) executeLoad(i, cycle int) {
	e := m.at(i)
	addr := e.rec.Addr

	// Check the uncommitted store queue. An older overlapping store that
	// has executed forwards its data (1 cycle). One that has not yet
	// executed cannot be detected by the hardware: the load proceeds
	// speculatively and the 620's alias-detection logic refetches it
	// when the store's address is generated (§4.1).
	switch m.storeQueueCheck(i, cycle) {
	case sqForward:
		e.doneC = cycle + 1
		m.finishLoad(e, cycle)
		return
	case sqAlias:
		// Refetch: the load's value becomes available only after the
		// conflicting store executes plus a refetch penalty.
		st := m.at(e.aliasStore)
		avail := cycle + m.cfg.L1Latency
		if st.issued {
			avail = max(avail, st.doneC+aliasRefetchPenalty+m.cfg.L1Latency)
		} else {
			// The store has not even issued; bound the penalty by
			// treating detection as happening at our own issue+1.
			avail = cycle + aliasRefetchPenalty + m.cfg.L1Latency
		}
		m.stats.AliasRefetches++
		if m.otr.Enabled(obs.ChanSim) {
			m.otr.Emit(obs.ChanSim, "alias-refetch",
				slog.String("pc", fmt.Sprintf("%#x", e.rec.PC)),
				slog.String("addr", fmt.Sprintf("%#x", e.rec.Addr)),
				slog.String("store_pc", fmt.Sprintf("%#x", st.rec.PC)),
				slog.Int("cycle", cycle))
		}
		e.doneC = avail
		m.finishLoad(e, cycle)
		return
	}

	bank := m.hier.L1.Bank(addr)
	accessCycle := cycle + 1 // EX2 cache cycle
	slot := &m.bankRing[accessCycle&(len(m.bankRing)-1)][bank]
	conflict := *slot >= 1

	if e.pred == trace.PredConstant {
		// The CVU verifies the value without needing memory; the
		// access is initiated anyway, but a bank conflict or cache
		// miss cancels it instead of retrying (paper §3.4, §6.5).
		if conflict || !m.hier.ProbeL1(addr) {
			e.cancelled = true
			e.doneC = cycle + 1
			m.finishLoad(e, cycle)
			return
		}
		// Bank free and line present: the access proceeds as a hit.
		*slot++
		m.stats.CacheAccesses++
		m.hier.L1.Access(addr)
		e.doneC = cycle + m.cfg.L1Latency
		m.finishLoad(e, cycle)
		return
	}

	if conflict {
		m.noteConflict(accessCycle)
		accessCycle++ // retry next cycle
		slot = &m.bankRing[accessCycle&(len(m.bankRing)-1)][bank]
	}
	*slot++
	m.stats.CacheAccesses++
	res := m.hier.Access(addr)
	done := accessCycle - 1 + res.Latency
	if !res.L1Hit {
		// A miss needs a free MSHR; with all miss registers busy the
		// request waits for the earliest one to retire.
		done = m.allocMSHR(accessCycle, res.Latency)
	}
	e.doneC = done
	m.finishLoad(e, cycle)
}

// allocMSHR models the bounded set of outstanding-miss registers: a miss
// starting at `start` with the given service latency occupies an MSHR until
// its data returns; if all MSHRs are busy the miss is deferred until the
// earliest outstanding one completes.
func (m *machine) allocMSHR(start, latency int) (done int) {
	// Drop retired entries.
	live := m.missBusyUntil[:0]
	for _, d := range m.missBusyUntil {
		if d > start {
			live = append(live, d)
		}
	}
	m.missBusyUntil = live
	if m.cfg.MSHRs > 0 && len(live) >= m.cfg.MSHRs {
		earliest := live[0]
		for _, d := range live[1:] {
			if d < earliest {
				earliest = d
			}
		}
		m.stats.MSHRStalls++
		if m.otr.Enabled(obs.ChanSim) {
			m.otr.Emit(obs.ChanSim, "mshr-stall",
				slog.Int("cycle", start),
				slog.Int("deferred_to", earliest))
		}
		start = earliest
	}
	done = start - 1 + latency
	m.missBusyUntil = append(m.missBusyUntil, done)
	return done
}

// finishLoad sets verification and result-forwarding times per the load's
// prediction state.
func (m *machine) finishLoad(e *entry, cycle int) {
	switch e.pred {
	case trace.PredConstant:
		// CVU match: verified when the address is known; no value
		// comparison cycle.
		e.verifyC = e.doneC
		// resultReadyC was already set at dispatch.
	case trace.PredCorrect:
		e.verifyC = e.doneC + 1 // value comparison takes one extra cycle
	case trace.PredIncorrect:
		e.verifyC = e.doneC + 1
		// Dependents reissue and see the correct value one cycle
		// later than they would have without prediction (§4.1).
		e.resultReadyC = e.doneC + 1
	default:
		e.verifyC = e.doneC
		e.resultReadyC = e.doneC
	}
	if e.resultReadyC == unknown {
		e.resultReadyC = e.doneC
	}
	if e.pred == trace.PredCorrect || e.pred == trace.PredConstant {
		m.stats.VerifyLatency[verifyBucket(e.verifyC-e.dispatchC)]++
	}
}

// aliasRefetchPenalty is the extra latency charged when a load issued past
// an older store turns out to alias it and must be refetched.
const aliasRefetchPenalty = 3

type sqResult int

const (
	sqClear   sqResult = iota // no older overlapping store
	sqForward                 // overlapping store already executed: forward
	sqAlias                   // overlapping store not yet executed: refetch
)

// storeQueueCheck scans older in-flight stores for an overlap with load i
// and classifies the situation. On sqAlias the conflicting store's index is
// recorded in the load's aliasStore field.
func (m *machine) storeQueueCheck(i, cycle int) sqResult {
	e := m.at(i)
	for j := i - 1; j >= m.head; j-- {
		o := m.at(j)
		if !o.isStore || o.completed {
			continue
		}
		if !rangesOverlap(o.rec.Addr, int(o.rec.Size), e.rec.Addr, int(e.rec.Size)) {
			continue
		}
		if o.issued && o.doneC <= cycle {
			return sqForward
		}
		e.aliasStore = j
		return sqAlias
	}
	return sqClear
}

func rangesOverlap(a uint64, an int, b uint64, bn int) bool {
	return a < b+uint64(bn) && b < a+uint64(an)
}

// noteConflict records a bank-conflict event, counting each conflicted
// cycle once for Figure 9.
func (m *machine) noteConflict(cycle int) {
	m.stats.BankConflicts++
	if cycle != m.lastConflictCycle {
		m.stats.BankConflictCycles++
		m.lastConflictCycle = cycle
	}
	if m.otr.Enabled(obs.ChanSim) {
		m.otr.Emit(obs.ChanSim, "bank-conflict", slog.Int("cycle", cycle))
	}
}

// --- completion ---

func (m *machine) complete(cycle int) {
	for k := 0; k < m.cfg.CompleteWidth && m.head < m.dispPtr; k++ {
		e := m.at(m.head)
		if !e.issued || cycle < e.doneC {
			return
		}
		if e.verifyC != unknown && cycle < e.verifyC {
			return // loads complete only after verification
		}
		if e.isStore {
			// Commit the store: the cache is written now, using a
			// bank port (Figure 9's conflict source).
			bank := m.hier.L1.Bank(e.rec.Addr)
			slot := &m.bankRing[cycle&(len(m.bankRing)-1)][bank]
			if *slot >= 1 {
				// Port busy: the store retries next cycle
				// (stop completing this cycle).
				m.noteConflict(cycle)
				return
			}
			*slot++
			m.stats.CacheAccesses++
			m.hier.Access(e.rec.Addr)
		}
		e.completed = true
		m.head++
	}
}
