package ppc620

import (
	"fmt"
	"io"
	"log/slog"

	"lvp/internal/bpred"
	"lvp/internal/cache"
	"lvp/internal/isa"
	"lvp/internal/obs"
	"lvp/internal/trace"
)

const unknown = -1

// entry is one dynamic instruction flowing through the machine. It keeps
// only the record fields the model consults after fetch (the slab view a
// record arrived in is recycled long before the entry retires): pc for
// event tracing, addr/size for the memory disambiguation logic, the
// register numbers plus the opTab flags for dispatch-time dependence
// capture, and the pre-resolved latency.
type entry struct {
	pc   uint64
	addr uint64

	idx int // absolute entry index of the current occupant (slot-reuse guard)

	dispatchC int
	issueC    int
	doneC     int // result produced (cache data back, ALU result, ...)
	verifyC   int // predicted loads: value comparison / CVU match done
	readyMax  int // latest source-ready cycle observed (Figure 8)

	srcA, srcB int // producer entry indices, or -1
	specSrc    int // unverified predicted load this instruction depends on, or -1

	resultReadyC int // cycle dependents may consume the result (unknown until set)

	aliasStore int // conflicting older store detected by the alias logic

	lat   int32
	flags uint16 // the opTab flag set (read/write/kind bits)
	fu    FU

	rd, ra, rb isa.Reg
	size       uint8
	pred       trace.PredState

	usesRename bool // consumes a GPR rename buffer (compares write CR instead)
	dispatched bool
	issued     bool
	completed  bool
	mispred    bool // branch that redirects fetch
	writesGPR  bool
	writesFPR  bool
	isLoad     bool
	isStore    bool
	cancelled  bool // constant load whose cache access the CVU cancelled
}

// machine is the live simulation state. Instructions live in a fixed-size
// ring of entries sized by ringSize, so a run needs memory proportional to
// the machine's window, not to the trace: the live window spans at most
// Completion+FetchBuffer entries, and the oldest entry any mechanism may
// still consult (a producer feeding a dependence capture, or a predicted
// load behind a spec tag) is bounded by a further Completion+CompleteWidth
// below the head — see ringSize.
type machine struct {
	cfg       Config
	slab      *trace.SlabReader
	annotated bool
	hier      *cache.Hierarchy
	bp        *bpred.Predictor

	entries  []entry // ring; index with at()
	ringMask int

	head      int // oldest not-completed (absolute index)
	dispPtr   int // next to dispatch (into entries/window)
	fetched   int // number fetched so far (fetch buffer tail)
	liveFloor int // head at the start of the current cycle

	srcDone bool
	// The current slab: fetch consumes curRecs[bi:] record by record. A nil
	// curPreds means every record in the slab carries PredNone.
	curRecs  []trace.Record
	curPreds []trace.PredState
	bi       int

	// pend lists dispatched-but-not-issued entries in dispatch order — the
	// only candidates issue must consider (bounded by the completion
	// buffer, so it never reallocates after construction). Each carries a
	// conservative earliest-issue bound so entries waiting on long-latency
	// producers are skipped without touching their ring slots.
	pend []pendEnt

	// Rename-buffer occupancy, maintained incrementally: allocated at
	// dispatch, freed at completion (the only two transitions an entry in
	// [head, dispPtr) can make).
	renameG, renameF int

	// Per-cycle reservation-station census: rsCount is valid for rsCycle
	// only, assembled on the cycle's first rsInUse call from three cheap
	// components — pendFU (unissued entries, maintained at dispatch/issue),
	// issuedNow (entries that issued this cycle and so still hold their
	// stations), and the specHeld list (issued entries held by an
	// unverified speculative source, paper §4.1) — and bumped locally as
	// entries dispatch within the cycle.
	rsCount   [NumFU]int
	rsCycle   int
	pendFU    [NumFU]int
	issuedNow [NumFU]int
	specHeld  []int // absolute indices of issued entries with a spec source

	// headWaitC is the memoized earliest cycle the current head entry can
	// complete (exact once it has issued: doneC and verifyC never change
	// after). complete is a no-op until then.
	headWaitC int

	lastWriterG [isa.NumRegs]int
	lastWriterF [isa.NumRegs]int

	mcfxBusyUntil int
	fpuBusyUntil  int

	fetchStallEntry   int // entry index of unresolved mispredicted branch, or -1
	lastConflictCycle int
	missBusyUntil     []int // completion cycles of outstanding L1 misses (MSHRs)

	bankRing [16][8]uint8 // future L1 bank usage, ring-indexed by cycle

	otr *obs.Tracer // sim-channel event tracer (nil = off)

	stats Stats
}

// pendEnt is one issue candidate: the entry's ring index plus the fields
// the issue scan needs every cycle (FU for the capacity check, the store
// bit for the in-order store rule) and notBefore, the earliest cycle the
// entry could possibly issue. notBefore is sound because a producer's
// resultReadyC never changes once known, and an unissued producer's result
// is never ready before the cycle after the current one — so a failed
// readiness check at cycle c yields a bound of max(c+1, known ready
// cycles) that skips the re-check (and the entry's cache lines) until it
// can matter.
type pendEnt struct {
	idx       int
	notBefore int
	fu        FU
	isStore   bool
}

// at returns the ring slot holding absolute entry index i. Valid only while
// i is within ringSize of the newest fetched entry; the structural bounds in
// ringSize guarantee that for every consultation the model performs. The
// len-1 mask form lets the compiler drop the bounds check (the ring length
// is a power of two).
func (m *machine) at(i int) *entry {
	ring := m.entries
	if len(ring) == 0 {
		return nil // unreachable: the ring is allocated at construction
	}
	return &ring[uint(i)&uint(len(ring)-1)]
}

// ringSize is the entry-ring capacity for a configuration: the live window
// holds at most Completion+FetchBuffer entries, dependence capture may
// consult a producer completed this cycle (head retreats at most
// CompleteWidth below the cycle's liveFloor), and a reservation-station hold
// may consult a spec-source load up to Completion entries behind its
// consumer. Rounded up to a power of two for mask indexing.
func ringSize(cfg Config) int {
	need := 2*cfg.Completion + cfg.FetchBuffer + cfg.CompleteWidth + 2
	size := 1
	for size < need {
		size <<= 1
	}
	return size
}

// Simulate runs the trace through the machine model. ann may be nil (no LVP
// unit); lvpName labels the run in the stats.
func Simulate(tr *trace.Trace, ann trace.Annotation, cfg Config, lvpName string) Stats {
	return SimulateObs(tr, ann, cfg, lvpName, nil)
}

// SimulateObs is Simulate with an event tracer: machine incidents (alias
// refetches, MSHR stalls, bank conflicts) on the sim channel, L1 misses on
// the cache channel. obsTr == nil is exactly Simulate.
//
// It is a thin wrapper over SimulateSourceObs on an in-memory slice source,
// so the in-memory and streaming paths share one cycle-level core.
func SimulateObs(tr *trace.Trace, ann trace.Annotation, cfg Config, lvpName string, obsTr *obs.Tracer) Stats {
	st, err := SimulateSourceObs(tr.StreamAnnotated(ann), cfg, lvpName, obsTr)
	if err != nil {
		// A slice source cannot fail.
		panic("ppc620: in-memory simulation failed: " + err.Error())
	}
	return st
}

// SimulateSource runs an annotated record stream through the machine model
// in bounded memory: the trace is never materialized, only the machine's
// window of in-flight entries is held. An error from the source (e.g. a
// trace decode failure) aborts the run.
func SimulateSource(src trace.AnnotatedSource, cfg Config, lvpName string) (Stats, error) {
	return SimulateSourceObs(src, cfg, lvpName, nil)
}

// SimulateSourceObs is SimulateSource with an event tracer. The fetch loop
// consumes the source slab-at-a-time through a trace.SlabReader: span-capable
// sources (the in-memory trace) are walked in place with zero copies,
// batch-capable ones (the fused gen → annotate pipeline, the trace readers)
// refill a local slab in bulk, and only record-only sources pay per-record
// interface dispatch.
func SimulateSourceObs(src trace.AnnotatedSource, cfg Config, lvpName string, obsTr *obs.Tracer) (Stats, error) {
	m := &machine{
		cfg:       cfg,
		slab:      trace.NewSlabReader(src),
		annotated: src.Annotated(),
		hier: &cache.Hierarchy{
			L1:        cache.MustNew(cfg.L1),
			L2:        cache.MustNew(cfg.L2),
			L1Latency: cfg.L1Latency, L2Latency: cfg.L2Latency, MemLatency: cfg.MemLatency,
			Tracer: obsTr,
		},
		bp:              bpred.New(bpred.Default620),
		fetchStallEntry: -1,
		otr:             obsTr,
	}
	for i := range m.lastWriterG {
		m.lastWriterG[i] = -1
		m.lastWriterF[i] = -1
	}
	m.stats.Machine = cfg.Name
	m.stats.LVPConfig = lvpName
	size := ringSize(cfg)
	m.entries = make([]entry, size)
	m.ringMask = size - 1
	m.pend = make([]pendEnt, 0, cfg.Completion+cfg.DispatchWidth)
	// Worst case between two sweeps: a full window of spec-held issues
	// plus a dispatch group, with retired entries not yet swept.
	m.specHeld = make([]int, 0, 2*cfg.Completion+cfg.DispatchWidth)
	m.rsCycle = -1
	if err := m.run(); err != nil {
		return Stats{}, err
	}
	m.stats.Instructions = m.fetched
	m.stats.L1 = m.hier.L1.Stats()
	m.stats.L2 = m.hier.L2.Stats()
	m.stats.Branch = m.bp.Stats()
	return m.stats, nil
}

// prepare resets ring slot e and fills its static fields from record r, all
// read from the record's opTab row (a pointer-free memclr plus direct field
// stores, no isa switches and no whole-record copy).
func (m *machine) prepare(e *entry, i int, r *trace.Record, pred trace.PredState, info *opInfo) {
	// Every field is stored explicitly (no struct clear): the stores below
	// cover exactly the fields some cycle loop may read before writing.
	// dispatchC/issueC/doneC/readyMax/aliasStore are deliberately left
	// stale — each is written before its first read for a new occupant
	// (dispatchC at dispatch, issueC/doneC/readyMax at issue, aliasStore
	// by storeQueueCheck before the sqAlias path reads it), and every
	// cross-entry read is guarded by the state bools reset here.
	e.idx = i
	f := info.flags
	e.pc = r.PC
	e.addr = r.Addr
	e.size = r.Size
	e.rd, e.ra, e.rb = r.Rd, r.Ra, r.Rb
	e.fu = info.fu
	e.lat = info.lat
	e.flags = f
	e.srcA, e.srcB, e.specSrc = -1, -1, -1
	e.resultReadyC = unknown
	e.verifyC = unknown
	e.pred = trace.PredNone
	e.dispatched, e.issued, e.completed = false, false, false
	e.mispred, e.cancelled = false, false
	wg := f&opWritesGPR != 0 && r.Rd != isa.R0
	e.writesGPR = wg
	e.writesFPR = f&opWritesFPR != 0
	e.usesRename = wg && f&opIsCompare == 0
	e.isLoad = f&opIsLoad != 0
	e.isStore = f&opIsStore != 0
	if m.annotated {
		// Annotations normally cover loads only; AnnotateGeneral also
		// marks other register-writing instructions, which this model
		// handles with the same forward-at-dispatch / verify-after-
		// execute semantics.
		e.pred = pred
		if e.isLoad {
			m.stats.LoadStates[e.pred]++
		}
	}
}

// isCompare reports VLR compare ops. On the PowerPC these are cmp/fcmp
// instructions that write the condition register, which has its own ample
// rename pool on the 620 — so they do not consume GPR rename buffers in
// this model.
func isCompare(op isa.Op) bool {
	switch op {
	case isa.SLT, isa.SLTI, isa.SLTU, isa.SEQ, isa.SNE, isa.FEQ, isa.FLT, isa.FLE:
		return true
	}
	return false
}

func fuOf(op isa.Op) FU {
	switch isa.ClassOf(op) {
	case isa.ClassComplexInt:
		return MCFX
	case isa.ClassSimpleFP, isa.ClassComplexFP:
		return FPU
	case isa.ClassLoad, isa.ClassStore:
		return LSU
	case isa.ClassBranch:
		return BRU
	default:
		return SCFX
	}
}

// execLatency is the result latency on the 620 (Table 5), excluding memory.
func execLatency(op isa.Op) int {
	switch isa.ClassOf(op) {
	case isa.ClassComplexInt:
		if op == isa.MUL {
			return 4 // mull on the 620 class of cores
		}
		return 35 // DIV, REM (Table 5's upper bound)
	case isa.ClassSimpleFP:
		return 3
	case isa.ClassComplexFP:
		return 18
	case isa.ClassStore:
		return 1 // address generation; data written at completion
	case isa.ClassBranch:
		return 1
	default:
		return 1
	}
}

// refill loads the next slab into the fetch window's view. srcDone is set
// once the upstream is exhausted; an empty source is detected by the prime
// call before cycle 0 (an empty run performs zero cycles).
func (m *machine) refill() error {
	recs, preds, err := m.slab.Next()
	if err == io.EOF {
		m.srcDone = true
		m.curRecs, m.curPreds, m.bi = nil, nil, 0
		return nil
	}
	if err != nil {
		return err
	}
	m.curRecs, m.curPreds, m.bi = recs, preds, 0
	return nil
}

func (m *machine) run() error {
	if err := m.refill(); err != nil {
		return err
	}
	cycle := 0
	const safetyFactor = 200 // cycles per instruction upper bound
	for !m.srcDone || m.head < m.fetched {
		m.liveFloor = m.head
		m.complete(cycle)
		m.issue(cycle)
		m.dispatch(cycle)
		if err := m.fetch(cycle); err != nil {
			return err
		}
		// Clear the bank-usage slot this cycle vacates.
		m.bankRing[(cycle+len(m.bankRing)-1)&(len(m.bankRing)-1)] = [8]uint8{}
		cycle++
		if cycle > safetyFactor*(m.fetched+100) {
			panic("ppc620: simulation wedged (cycle bound exceeded)")
		}
	}
	m.stats.Cycles = cycle
	return nil
}

// --- fetch ---

func (m *machine) fetch(cycle int) error {
	// Fetch is blocked while a mispredicted branch is unresolved.
	if m.fetchStallEntry >= 0 {
		e := m.at(m.fetchStallEntry)
		if !e.issued || cycle <= e.doneC {
			return nil
		}
		m.fetchStallEntry = -1
	}
	space := m.cfg.FetchBuffer - (m.fetched - m.dispPtr)
	width := min(m.cfg.FetchWidth, space)
	for k := 0; k < width && !m.srcDone; k++ {
		if m.bi >= len(m.curRecs) {
			if err := m.refill(); err != nil {
				return err
			}
			if m.srcDone {
				return nil
			}
		}
		r := &m.curRecs[m.bi]
		pred := trace.PredNone
		if m.curPreds != nil {
			pred = m.curPreds[m.bi]
		}
		m.bi++
		i := m.fetched
		e := m.at(i)
		info := infoOf(r.Op)
		m.prepare(e, i, r, pred, info)
		m.fetched++
		// Branch prediction happens at fetch, against the slab record
		// (still valid here); a mispredicted branch stalls further fetch
		// until it resolves.
		if info.flags&opIsBranch != 0 {
			if m.bp.Resolve(r) {
				e.mispred = true
				m.fetchStallEntry = i
				return nil
			}
		}
	}
	return nil
}

// --- dispatch ---

func (m *machine) dispatch(cycle int) {
	loads, stores := 0, 0
	for k := 0; k < m.cfg.DispatchWidth; k++ {
		if m.dispPtr >= m.fetched {
			m.stats.StallFetchEmpty++
			return
		}
		i := m.dispPtr
		e := m.at(i)
		// Structural checks (in-order: stop at first failure).
		if i-m.head >= m.cfg.Completion {
			m.stats.StallCompletion++
			return // completion buffer full
		}
		if m.rsInUse(e.fu, cycle) >= m.cfg.RS[e.fu] {
			m.stats.StallRS[e.fu]++
			return
		}
		if e.usesRename && m.renameG >= m.cfg.GPRRename {
			m.stats.StallRename++
			return
		}
		if e.writesFPR && m.renameF >= m.cfg.FPRRename {
			m.stats.StallRename++
			return
		}
		if e.isLoad || e.isStore {
			full := false
			if m.cfg.RelaxedLS {
				full = loads+stores >= m.cfg.MaxLoadDispatch+m.cfg.MaxStoreDispatch-2
			} else {
				full = (e.isLoad && loads >= m.cfg.MaxLoadDispatch) ||
					(e.isStore && stores >= m.cfg.MaxStoreDispatch)
			}
			if full {
				m.stats.StallMemSlots++
				return
			}
		}

		// Dependence capture, driven by the opcode's read flags in
		// isa.Sources order (Ra before Rb). Producers completed before
		// this cycle are dead for both readiness (their result is long
		// available) and spec-tag propagation (their verification is in
		// the past), so only entries at or above the cycle's live floor
		// are consulted — which also keeps every consulted index within
		// the ring.
		if f := e.flags; f&opReadsAny != 0 {
			if f&opReadsRaF != 0 {
				m.captureSrc(e, m.lastWriterF[e.ra], cycle)
			} else if f&opReadsRaG != 0 && e.ra != isa.R0 {
				m.captureSrc(e, m.lastWriterG[e.ra], cycle)
			}
			if f&opReadsRbF != 0 {
				m.captureSrc(e, m.lastWriterF[e.rb], cycle)
			} else if f&opReadsRbG != 0 && e.rb != isa.R0 {
				m.captureSrc(e, m.lastWriterG[e.rb], cycle)
			}
		}

		e.dispatched = true
		e.dispatchC = cycle
		m.rsCount[e.fu]++ // newly dispatched: holds its reservation station
		m.pendFU[e.fu]++
		if e.usesRename {
			m.renameG++
		}
		if e.writesGPR {
			m.lastWriterG[e.rd] = i
		}
		if e.writesFPR {
			m.renameF++
			m.lastWriterF[e.rd] = i
		}
		// A predicted instruction forwards its value at dispatch.
		if e.pred == trace.PredCorrect || e.pred == trace.PredConstant {
			e.resultReadyC = cycle
		}
		if e.isLoad {
			loads++
		}
		if e.isStore {
			stores++
		}
		m.pend = append(m.pend, pendEnt{idx: i, fu: e.fu, isStore: e.isStore})
		m.dispPtr++
	}
}

// captureSrc records producer p as a source of e if p is still live, and
// propagates the speculative-value tag (paper §4.1).
func (m *machine) captureSrc(e *entry, p, cycle int) {
	if p < m.liveFloor {
		return
	}
	if e.srcA < 0 {
		e.srcA = p
	} else if p != e.srcA {
		e.srcB = p
	}
	if tag := m.specTagOf(p, cycle); tag >= 0 {
		e.specSrc = tag
	}
}

// specTagOf reports the unverified predicted load behind producer p (p
// itself, or its inherited tag), or -1. p must be at or above the cycle's
// live floor; the spec source it chases is within Completion of p and so
// still resident in the ring.
func (m *machine) specTagOf(p, cycle int) int {
	pe := m.at(p)
	if pe.pred != trace.PredNone {
		if pe.verifyC == unknown || pe.verifyC >= cycle {
			return p
		}
		return -1
	}
	if pe.specSrc >= 0 {
		le := m.at(pe.specSrc)
		if le.verifyC == unknown || le.verifyC >= cycle {
			return pe.specSrc
		}
	}
	return -1
}

// rsInUse counts reservation-station entries held for one FU type. An entry
// holds its station until the cycle after issue, and — when it consumed a
// speculatively-forwarded value — until that value is verified (paper §4.1).
// The census is memoized per cycle and assembled from incremental state:
// pendFU covers the unissued entries, issuedNow the entries whose issue
// cycle is this cycle, and the specHeld list the (rare) issued entries
// behind an unverified speculative source. The memo is sound because rsInUse
// is called only from dispatch, which runs after complete and issue — no
// station-holding state changes between calls within a cycle except the
// dispatches the counter tracks directly.
func (m *machine) rsInUse(f FU, cycle int) int {
	if m.rsCycle != cycle {
		m.rsCount = m.pendFU
		for fu, n := range m.issuedNow {
			m.rsCount[fu] += n
		}
		live := m.specHeld[:0]
		for _, i := range m.specHeld {
			e := m.at(i)
			if e.idx != i || e.completed {
				continue // slot reused, or retired (never holds again)
			}
			if e.issueC == cycle {
				live = append(live, i) // already counted via issuedNow
				continue
			}
			le := m.at(e.specSrc)
			if le.idx != e.specSrc || (le.verifyC != unknown && cycle > le.verifyC) {
				continue // verification passed: the hold has expired for good
			}
			m.rsCount[e.fu]++
			live = append(live, i)
		}
		m.specHeld = live
		m.rsCycle = cycle
	}
	return m.rsCount[f]
}

// --- issue & execute ---

func (m *machine) issue(cycle int) {
	var issuedPerFU [NumFU]int
	capacity := m.cfg.Units
	if m.mcfxBusyUntil > cycle {
		capacity[MCFX] = 0
	}
	if m.fpuBusyUntil > cycle {
		capacity[FPU] = 0
	}
	// Stores issue in order among stores; loads may issue past older
	// stores with unknown addresses — the 620's store-to-load alias
	// detection refetches them when a conflict materialises (§4.1).
	// Only dispatched-but-not-issued entries are candidates; pend holds
	// exactly those, in dispatch order, and is compacted in place as
	// entries issue (issued entries never set storeBlocked, so dropping
	// them preserves the store-ordering side effects of a full scan).
	storeBlocked := false
	w := 0 // in-place compaction: entries that issue are dropped
	for k := 0; k < len(m.pend); k++ {
		pe := &m.pend[k]
		if cycle >= pe.notBefore {
			if issuedPerFU[pe.fu] < capacity[pe.fu] && !(pe.isStore && storeBlocked) {
				e := m.at(pe.idx)
				if nb := m.operandsReady(e, cycle); nb <= cycle {
					m.execute(e, pe.idx, cycle)
					issuedPerFU[pe.fu]++
					m.pendFU[pe.fu]--
					if e.specSrc >= 0 {
						m.specHeld = append(m.specHeld, pe.idx)
					}
					continue // issued: not kept
				} else {
					pe.notBefore = nb
				}
			}
		}
		// Not issued this cycle: an unissued older store blocks younger
		// stores (in-order store issue), whatever the reason it waits.
		if pe.isStore {
			storeBlocked = true
		}
		if w != k {
			m.pend[w] = *pe
		}
		w++
	}
	m.pend = m.pend[:w]
	m.issuedNow = issuedPerFU
}

// operandsReady reports when the entry's operands permit issue: a return
// value equal to cycle means ready now (recording the Figure 8
// dependency-wait), a larger value is the earliest cycle a re-check could
// succeed — exact when every producer's ready cycle is known, cycle+1 when
// a producer has not yet issued (its result is never ready before the
// cycle after it issues). A producer's resultReadyC never changes once
// known, so the bound stays valid for pendEnt caching.
func (m *machine) operandsReady(e *entry, cycle int) int {
	ready := e.dispatchC
	nb := cycle
	if p := e.srcA; p >= 0 {
		switch pr := m.at(p).resultReadyC; {
		case pr == unknown:
			if nb == cycle {
				nb = cycle + 1
			}
		case pr > cycle:
			if pr > nb {
				nb = pr
			}
		case pr > ready:
			ready = pr
		}
	}
	if p := e.srcB; p >= 0 {
		switch pr := m.at(p).resultReadyC; {
		case pr == unknown:
			if nb == cycle {
				nb = cycle + 1
			}
		case pr > cycle:
			if pr > nb {
				nb = pr
			}
		case pr > ready:
			ready = pr
		}
	}
	if nb > cycle {
		return nb
	}
	e.readyMax = ready
	return cycle
}

func (m *machine) execute(e *entry, i, cycle int) {
	e.issued = true
	e.issueC = cycle
	m.stats.RSWaitSum[e.fu] += int64(max(0, e.readyMax-e.dispatchC))
	m.stats.RSWaitN[e.fu]++

	switch {
	case e.isLoad:
		m.executeLoad(e, i, cycle)
	case e.isStore:
		// Address generation; the cache write happens at completion.
		e.doneC = cycle + 1
		e.resultReadyC = e.doneC
	default:
		e.doneC = cycle + int(e.lat)
		switch e.pred {
		case trace.PredCorrect:
			// Forwarded at dispatch; verified one cycle after the
			// result computes (general value prediction, §7).
			e.verifyC = e.doneC + 1
		case trace.PredIncorrect:
			e.verifyC = e.doneC + 1
			e.resultReadyC = e.doneC + 1
		default:
			if e.resultReadyC == unknown {
				e.resultReadyC = e.doneC
			}
		}
		if e.resultReadyC == unknown {
			e.resultReadyC = e.doneC
		}
		switch e.fu {
		case MCFX:
			m.mcfxBusyUntil = e.doneC // non-pipelined
		case FPU:
			if e.flags&opNonPipeFP != 0 {
				m.fpuBusyUntil = e.doneC // FDIV/FSQRT are non-pipelined
			}
		}
	}
}

func (m *machine) executeLoad(e *entry, i, cycle int) {
	addr := e.addr

	// Check the uncommitted store queue. An older overlapping store that
	// has executed forwards its data (1 cycle). One that has not yet
	// executed cannot be detected by the hardware: the load proceeds
	// speculatively and the 620's alias-detection logic refetches it
	// when the store's address is generated (§4.1).
	switch m.storeQueueCheck(i, cycle) {
	case sqForward:
		e.doneC = cycle + 1
		m.finishLoad(e, cycle)
		return
	case sqAlias:
		// Refetch: the load's value becomes available only after the
		// conflicting store executes plus a refetch penalty.
		st := m.at(e.aliasStore)
		avail := cycle + m.cfg.L1Latency
		if st.issued {
			avail = max(avail, st.doneC+aliasRefetchPenalty+m.cfg.L1Latency)
		} else {
			// The store has not even issued; bound the penalty by
			// treating detection as happening at our own issue+1.
			avail = cycle + aliasRefetchPenalty + m.cfg.L1Latency
		}
		m.stats.AliasRefetches++
		if m.otr.Enabled(obs.ChanSim) {
			m.otr.Emit(obs.ChanSim, "alias-refetch",
				slog.String("pc", fmt.Sprintf("%#x", e.pc)),
				slog.String("addr", fmt.Sprintf("%#x", e.addr)),
				slog.String("store_pc", fmt.Sprintf("%#x", st.pc)),
				slog.Int("cycle", cycle))
		}
		e.doneC = avail
		m.finishLoad(e, cycle)
		return
	}

	bank := m.hier.L1.Bank(addr)
	accessCycle := cycle + 1 // EX2 cache cycle
	slot := &m.bankRing[accessCycle&(len(m.bankRing)-1)][bank]
	conflict := *slot >= 1

	if e.pred == trace.PredConstant {
		// The CVU verifies the value without needing memory; the
		// access is initiated anyway, but a bank conflict or cache
		// miss cancels it instead of retrying (paper §3.4, §6.5).
		if conflict || !m.hier.ProbeL1(addr) {
			e.cancelled = true
			e.doneC = cycle + 1
			m.finishLoad(e, cycle)
			return
		}
		// Bank free and line present: the access proceeds as a hit.
		*slot++
		m.stats.CacheAccesses++
		m.hier.L1.Access(addr)
		e.doneC = cycle + m.cfg.L1Latency
		m.finishLoad(e, cycle)
		return
	}

	if conflict {
		m.noteConflict(accessCycle)
		accessCycle++ // retry next cycle
		slot = &m.bankRing[accessCycle&(len(m.bankRing)-1)][bank]
	}
	*slot++
	m.stats.CacheAccesses++
	res := m.hier.Access(addr)
	done := accessCycle - 1 + res.Latency
	if !res.L1Hit {
		// A miss needs a free MSHR; with all miss registers busy the
		// request waits for the earliest one to retire.
		done = m.allocMSHR(accessCycle, res.Latency)
	}
	e.doneC = done
	m.finishLoad(e, cycle)
}

// allocMSHR models the bounded set of outstanding-miss registers: a miss
// starting at `start` with the given service latency occupies an MSHR until
// its data returns; if all MSHRs are busy the miss is deferred until the
// earliest outstanding one completes.
func (m *machine) allocMSHR(start, latency int) (done int) {
	// Drop retired entries.
	live := m.missBusyUntil[:0]
	for _, d := range m.missBusyUntil {
		if d > start {
			live = append(live, d)
		}
	}
	m.missBusyUntil = live
	if m.cfg.MSHRs > 0 && len(live) >= m.cfg.MSHRs {
		earliest := live[0]
		for _, d := range live[1:] {
			if d < earliest {
				earliest = d
			}
		}
		m.stats.MSHRStalls++
		if m.otr.Enabled(obs.ChanSim) {
			m.otr.Emit(obs.ChanSim, "mshr-stall",
				slog.Int("cycle", start),
				slog.Int("deferred_to", earliest))
		}
		start = earliest
	}
	done = start - 1 + latency
	m.missBusyUntil = append(m.missBusyUntil, done)
	return done
}

// finishLoad sets verification and result-forwarding times per the load's
// prediction state.
func (m *machine) finishLoad(e *entry, cycle int) {
	switch e.pred {
	case trace.PredConstant:
		// CVU match: verified when the address is known; no value
		// comparison cycle.
		e.verifyC = e.doneC
		// resultReadyC was already set at dispatch.
	case trace.PredCorrect:
		e.verifyC = e.doneC + 1 // value comparison takes one extra cycle
	case trace.PredIncorrect:
		e.verifyC = e.doneC + 1
		// Dependents reissue and see the correct value one cycle
		// later than they would have without prediction (§4.1).
		e.resultReadyC = e.doneC + 1
	default:
		e.verifyC = e.doneC
		e.resultReadyC = e.doneC
	}
	if e.resultReadyC == unknown {
		e.resultReadyC = e.doneC
	}
	if e.pred == trace.PredCorrect || e.pred == trace.PredConstant {
		m.stats.VerifyLatency[verifyBucket(e.verifyC-e.dispatchC)]++
	}
}

// aliasRefetchPenalty is the extra latency charged when a load issued past
// an older store turns out to alias it and must be refetched.
const aliasRefetchPenalty = 3

type sqResult int

const (
	sqClear   sqResult = iota // no older overlapping store
	sqForward                 // overlapping store already executed: forward
	sqAlias                   // overlapping store not yet executed: refetch
)

// storeQueueCheck scans older in-flight stores for an overlap with load i
// and classifies the situation. On sqAlias the conflicting store's index is
// recorded in the load's aliasStore field.
func (m *machine) storeQueueCheck(i, cycle int) sqResult {
	e := m.at(i)
	for j := i - 1; j >= m.head; j-- {
		o := m.at(j)
		if !o.isStore || o.completed {
			continue
		}
		if !rangesOverlap(o.addr, int(o.size), e.addr, int(e.size)) {
			continue
		}
		if o.issued && o.doneC <= cycle {
			return sqForward
		}
		e.aliasStore = j
		return sqAlias
	}
	return sqClear
}

func rangesOverlap(a uint64, an int, b uint64, bn int) bool {
	return a < b+uint64(bn) && b < a+uint64(an)
}

// noteConflict records a bank-conflict event, counting each conflicted
// cycle once for Figure 9.
func (m *machine) noteConflict(cycle int) {
	m.stats.BankConflicts++
	if cycle != m.lastConflictCycle {
		m.stats.BankConflictCycles++
		m.lastConflictCycle = cycle
	}
	if m.otr.Enabled(obs.ChanSim) {
		m.otr.Emit(obs.ChanSim, "bank-conflict", slog.Int("cycle", cycle))
	}
}

// --- completion ---

func (m *machine) complete(cycle int) {
	if cycle < m.headWaitC {
		return // the head entry's completion cycle is known and not yet here
	}
	for k := 0; k < m.cfg.CompleteWidth && m.head < m.dispPtr; k++ {
		e := m.at(m.head)
		if !e.issued {
			return
		}
		if cycle < e.doneC || (e.verifyC != unknown && cycle < e.verifyC) {
			// Once issued, doneC and verifyC are final: the head cannot
			// complete before their max, so skip the scan until then.
			b := e.doneC
			if e.verifyC != unknown && e.verifyC > b {
				b = e.verifyC
			}
			m.headWaitC = b
			return
		}
		if e.isStore {
			// Commit the store: the cache is written now, using a
			// bank port (Figure 9's conflict source).
			bank := m.hier.L1.Bank(e.addr)
			slot := &m.bankRing[cycle&(len(m.bankRing)-1)][bank]
			if *slot >= 1 {
				// Port busy: the store retries next cycle
				// (stop completing this cycle).
				m.noteConflict(cycle)
				return
			}
			*slot++
			m.stats.CacheAccesses++
			m.hier.Access(e.addr)
		}
		e.completed = true
		if e.usesRename {
			m.renameG--
		}
		if e.writesFPR {
			m.renameF--
		}
		m.head++
	}
}
