package ppc620

import (
	"fmt"
	"log/slog"

	"lvp/internal/bpred"
	"lvp/internal/cache"
	"lvp/internal/isa"
	"lvp/internal/obs"
	"lvp/internal/trace"
)

const unknown = -1

// entry is one dynamic instruction flowing through the machine.
type entry struct {
	rec  *trace.Record
	fu   FU
	pred trace.PredState

	dispatchC int
	issueC    int
	doneC     int // result produced (cache data back, ALU result, ...)
	verifyC   int // predicted loads: value comparison / CVU match done
	readyMax  int // latest source-ready cycle observed (Figure 8)

	srcA, srcB int // producer entry indices, or -1
	specSrc    int // unverified predicted load this instruction depends on, or -1

	resultReadyC int // cycle dependents may consume the result (unknown until set)

	usesRename bool // consumes a GPR rename buffer (compares write CR instead)
	dispatched bool
	issued     bool
	completed  bool
	mispred    bool // branch that redirects fetch
	writesGPR  bool
	writesFPR  bool
	isLoad     bool
	isStore    bool
	cancelled  bool // constant load whose cache access the CVU cancelled

	aliasStore int // conflicting older store detected by the alias logic
}

// machine is the live simulation state.
type machine struct {
	cfg  Config
	tr   *trace.Trace
	ann  trace.Annotation
	hier *cache.Hierarchy
	bp   *bpred.Predictor

	entries []entry
	head    int // oldest not-completed
	dispPtr int // next to dispatch (into entries/window)
	fetched int // number fetched so far (fetch buffer tail)

	lastWriterG [isa.NumRegs]int
	lastWriterF [isa.NumRegs]int

	mcfxBusyUntil int
	fpuBusyUntil  int

	fetchStallEntry   int // entry index of unresolved mispredicted branch, or -1
	lastConflictCycle int
	missBusyUntil     []int // completion cycles of outstanding L1 misses (MSHRs)

	bankRing [16][8]uint8 // future L1 bank usage, ring-indexed by cycle

	otr *obs.Tracer // sim-channel event tracer (nil = off)

	stats Stats
}

// Simulate runs the trace through the machine model. ann may be nil (no LVP
// unit); lvpName labels the run in the stats.
func Simulate(tr *trace.Trace, ann trace.Annotation, cfg Config, lvpName string) Stats {
	return SimulateObs(tr, ann, cfg, lvpName, nil)
}

// SimulateObs is Simulate with an event tracer: machine incidents (alias
// refetches, MSHR stalls, bank conflicts) on the sim channel, L1 misses on
// the cache channel. obsTr == nil is exactly Simulate.
func SimulateObs(tr *trace.Trace, ann trace.Annotation, cfg Config, lvpName string, obsTr *obs.Tracer) Stats {
	m := &machine{
		cfg: cfg,
		tr:  tr,
		ann: ann,
		hier: &cache.Hierarchy{
			L1:        cache.MustNew(cfg.L1),
			L2:        cache.MustNew(cfg.L2),
			L1Latency: cfg.L1Latency, L2Latency: cfg.L2Latency, MemLatency: cfg.MemLatency,
			Tracer: obsTr,
		},
		bp:              bpred.New(bpred.Default620),
		fetchStallEntry: -1,
		otr:             obsTr,
	}
	for i := range m.lastWriterG {
		m.lastWriterG[i] = -1
		m.lastWriterF[i] = -1
	}
	m.stats.Machine = cfg.Name
	m.stats.LVPConfig = lvpName
	m.entries = make([]entry, len(tr.Records))
	for i := range m.entries {
		m.prepare(i)
	}
	m.run()
	m.stats.Instructions = len(tr.Records)
	m.stats.L1 = m.hier.L1.Stats()
	m.stats.L2 = m.hier.L2.Stats()
	m.stats.Branch = m.bp.Stats()
	return m.stats
}

// prepare fills the static fields of entry i.
func (m *machine) prepare(i int) {
	e := &m.entries[i]
	r := &m.tr.Records[i]
	e.rec = r
	e.fu = fuOf(r.Op)
	e.srcA, e.srcB = -1, -1
	e.specSrc = -1
	e.resultReadyC = unknown
	e.verifyC = unknown
	in := r.Inst()
	e.writesGPR = isa.WritesGPR(in) && r.Rd != isa.R0
	e.writesFPR = isa.WritesFPR(in)
	e.usesRename = e.writesGPR && !isCompare(r.Op)
	e.isLoad = r.IsLoad()
	e.isStore = r.IsStore()
	if m.ann != nil {
		// Annotations normally cover loads only; AnnotateGeneral also
		// marks other register-writing instructions, which this model
		// handles with the same forward-at-dispatch / verify-after-
		// execute semantics.
		e.pred = m.ann[i]
		if e.isLoad {
			m.stats.LoadStates[e.pred]++
		}
	}
}

// isCompare reports VLR compare ops. On the PowerPC these are cmp/fcmp
// instructions that write the condition register, which has its own ample
// rename pool on the 620 — so they do not consume GPR rename buffers in
// this model.
func isCompare(op isa.Op) bool {
	switch op {
	case isa.SLT, isa.SLTI, isa.SLTU, isa.SEQ, isa.SNE, isa.FEQ, isa.FLT, isa.FLE:
		return true
	}
	return false
}

func fuOf(op isa.Op) FU {
	switch isa.ClassOf(op) {
	case isa.ClassComplexInt:
		return MCFX
	case isa.ClassSimpleFP, isa.ClassComplexFP:
		return FPU
	case isa.ClassLoad, isa.ClassStore:
		return LSU
	case isa.ClassBranch:
		return BRU
	default:
		return SCFX
	}
}

// execLatency is the result latency on the 620 (Table 5), excluding memory.
func execLatency(op isa.Op) int {
	switch isa.ClassOf(op) {
	case isa.ClassComplexInt:
		if op == isa.MUL {
			return 4 // mull on the 620 class of cores
		}
		return 35 // DIV, REM (Table 5's upper bound)
	case isa.ClassSimpleFP:
		return 3
	case isa.ClassComplexFP:
		return 18
	case isa.ClassStore:
		return 1 // address generation; data written at completion
	case isa.ClassBranch:
		return 1
	default:
		return 1
	}
}

func (m *machine) run() {
	n := len(m.entries)
	cycle := 0
	const safetyFactor = 200 // cycles per instruction upper bound
	for m.head < n {
		m.complete(cycle)
		m.issue(cycle)
		m.dispatch(cycle)
		m.fetch(cycle)
		// Clear the bank-usage slot this cycle vacates.
		m.bankRing[(cycle+len(m.bankRing)-1)&(len(m.bankRing)-1)] = [8]uint8{}
		cycle++
		if cycle > safetyFactor*(n+100) {
			panic("ppc620: simulation wedged (cycle bound exceeded)")
		}
	}
	m.stats.Cycles = cycle
}

// --- fetch ---

func (m *machine) fetch(cycle int) {
	// Fetch is blocked while a mispredicted branch is unresolved.
	if m.fetchStallEntry >= 0 {
		e := &m.entries[m.fetchStallEntry]
		if !e.issued || cycle <= e.doneC {
			return
		}
		m.fetchStallEntry = -1
	}
	space := m.cfg.FetchBuffer - (m.fetched - m.dispPtr)
	width := min(m.cfg.FetchWidth, space)
	for k := 0; k < width && m.fetched < len(m.entries); k++ {
		i := m.fetched
		e := &m.entries[i]
		r := e.rec
		m.fetched++
		// Branch prediction happens at fetch; a mispredicted branch
		// stalls further fetch until it resolves.
		if r.IsBranch() {
			if m.bp.Resolve(r) {
				e.mispred = true
				m.fetchStallEntry = i
				return
			}
		}
	}
}

// --- dispatch ---

func (m *machine) dispatch(cycle int) {
	loads, stores := 0, 0
	for k := 0; k < m.cfg.DispatchWidth; k++ {
		if m.dispPtr >= m.fetched {
			m.stats.StallFetchEmpty++
			return
		}
		i := m.dispPtr
		e := &m.entries[i]
		// Structural checks (in-order: stop at first failure).
		if i-m.head >= m.cfg.Completion {
			m.stats.StallCompletion++
			return // completion buffer full
		}
		if m.rsInUse(e.fu, cycle) >= m.cfg.RS[e.fu] {
			m.stats.StallRS[e.fu]++
			return
		}
		if e.usesRename && m.renameInUse(false) >= m.cfg.GPRRename {
			m.stats.StallRename++
			return
		}
		if e.writesFPR && m.renameInUse(true) >= m.cfg.FPRRename {
			m.stats.StallRename++
			return
		}
		if e.isLoad || e.isStore {
			full := false
			if m.cfg.RelaxedLS {
				full = loads+stores >= m.cfg.MaxLoadDispatch+m.cfg.MaxStoreDispatch-2
			} else {
				full = (e.isLoad && loads >= m.cfg.MaxLoadDispatch) ||
					(e.isStore && stores >= m.cfg.MaxStoreDispatch)
			}
			if full {
				m.stats.StallMemSlots++
				return
			}
		}

		// Dependence capture.
		r := e.rec
		var srcs [4]isa.RegRef
		for _, ref := range isa.Sources(r.Inst(), srcs[:0]) {
			var p int
			if ref.FP {
				p = m.lastWriterF[ref.Reg]
			} else if ref.Reg != isa.R0 {
				p = m.lastWriterG[ref.Reg]
			} else {
				p = -1
			}
			if p < 0 {
				continue
			}
			if e.srcA < 0 {
				e.srcA = p
			} else if p != e.srcA {
				e.srcB = p
			}
			// Speculative-value tag propagation (paper §4.1).
			if tag := m.specTagOf(p, cycle); tag >= 0 {
				e.specSrc = tag
			}
		}

		e.dispatched = true
		e.dispatchC = cycle
		if e.writesGPR {
			m.lastWriterG[r.Rd] = i
		}
		if e.writesFPR {
			m.lastWriterF[r.Rd] = i
		}
		// A predicted instruction forwards its value at dispatch.
		if e.pred == trace.PredCorrect || e.pred == trace.PredConstant {
			e.resultReadyC = cycle
		}
		if e.isLoad {
			loads++
		}
		if e.isStore {
			stores++
		}
		m.dispPtr++
	}
}

// specTagOf reports the unverified predicted load behind producer p (p
// itself, or its inherited tag), or -1.
func (m *machine) specTagOf(p, cycle int) int {
	pe := &m.entries[p]
	if pe.pred != trace.PredNone {
		if pe.verifyC == unknown || pe.verifyC >= cycle {
			return p
		}
		return -1
	}
	if pe.specSrc >= 0 {
		le := &m.entries[pe.specSrc]
		if le.verifyC == unknown || le.verifyC >= cycle {
			return pe.specSrc
		}
	}
	return -1
}

// rsInUse counts reservation-station entries held for one FU type.
func (m *machine) rsInUse(f FU, cycle int) int {
	n := 0
	for i := m.head; i < m.dispPtr; i++ {
		e := &m.entries[i]
		if e.fu != f || !e.dispatched || e.completed {
			continue
		}
		if m.holdsRS(e, cycle) {
			n++
		}
	}
	return n
}

// holdsRS reports whether a dispatched entry still occupies its reservation
// station: until the cycle after issue, and — when it consumed a
// speculatively-forwarded value — until that value is verified (paper §4.1).
func (m *machine) holdsRS(e *entry, cycle int) bool {
	if !e.issued {
		return true
	}
	if cycle <= e.issueC {
		return true
	}
	if e.specSrc >= 0 {
		le := &m.entries[e.specSrc]
		if le.verifyC == unknown || cycle <= le.verifyC {
			return true
		}
	}
	return false
}

// renameInUse counts rename buffers held (allocated at dispatch, freed at
// completion).
func (m *machine) renameInUse(fp bool) int {
	n := 0
	for i := m.head; i < m.dispPtr; i++ {
		e := &m.entries[i]
		if e.completed {
			continue
		}
		if (fp && e.writesFPR) || (!fp && e.usesRename) {
			n++
		}
	}
	return n
}

// --- issue & execute ---

func (m *machine) issue(cycle int) {
	var issuedPerFU [NumFU]int
	capacity := [NumFU]int{
		SCFX: m.cfg.Units[SCFX],
		MCFX: m.cfg.Units[MCFX],
		FPU:  m.cfg.Units[FPU],
		LSU:  m.cfg.Units[LSU],
		BRU:  m.cfg.Units[BRU],
	}
	if m.mcfxBusyUntil > cycle {
		capacity[MCFX] = 0
	}
	if m.fpuBusyUntil > cycle {
		capacity[FPU] = 0
	}
	// Stores issue in order among stores; loads may issue past older
	// stores with unknown addresses — the 620's store-to-load alias
	// detection refetches them when a conflict materialises (§4.1).
	storeBlocked := false
	for i := m.head; i < m.dispPtr; i++ {
		e := &m.entries[i]
		if !e.dispatched || e.issued {
			if e.isStore && !e.issued {
				storeBlocked = true
			}
			continue
		}
		if issuedPerFU[e.fu] >= capacity[e.fu] {
			if e.isStore {
				storeBlocked = true
			}
			continue
		}
		if e.isStore && storeBlocked {
			continue
		}
		if !m.operandsReady(e, cycle) {
			if e.isStore {
				storeBlocked = true
			}
			continue
		}
		m.execute(i, cycle)
		issuedPerFU[e.fu]++
	}
}

// operandsReady also records the Figure 8 dependency-wait when it becomes
// known.
func (m *machine) operandsReady(e *entry, cycle int) bool {
	ready := e.dispatchC
	for _, p := range [2]int{e.srcA, e.srcB} {
		if p < 0 {
			continue
		}
		pr := m.entries[p].resultReadyC
		if pr == unknown || pr > cycle {
			return false
		}
		if pr > ready {
			ready = pr
		}
	}
	e.readyMax = ready
	return true
}

func (m *machine) execute(i, cycle int) {
	e := &m.entries[i]
	e.issued = true
	e.issueC = cycle
	m.stats.RSWaitSum[e.fu] += int64(max(0, e.readyMax-e.dispatchC))
	m.stats.RSWaitN[e.fu]++

	switch {
	case e.isLoad:
		m.executeLoad(i, cycle)
	case e.isStore:
		// Address generation; the cache write happens at completion.
		e.doneC = cycle + 1
		e.resultReadyC = e.doneC
	default:
		lat := execLatency(e.rec.Op)
		e.doneC = cycle + lat
		switch e.pred {
		case trace.PredCorrect:
			// Forwarded at dispatch; verified one cycle after the
			// result computes (general value prediction, §7).
			e.verifyC = e.doneC + 1
		case trace.PredIncorrect:
			e.verifyC = e.doneC + 1
			e.resultReadyC = e.doneC + 1
		default:
			if e.resultReadyC == unknown {
				e.resultReadyC = e.doneC
			}
		}
		if e.resultReadyC == unknown {
			e.resultReadyC = e.doneC
		}
		switch e.fu {
		case MCFX:
			m.mcfxBusyUntil = e.doneC // non-pipelined
		case FPU:
			if isa.ClassOf(e.rec.Op) == isa.ClassComplexFP {
				m.fpuBusyUntil = e.doneC // FDIV/FSQRT are non-pipelined
			}
		}
	}
}

func (m *machine) executeLoad(i, cycle int) {
	e := &m.entries[i]
	addr := e.rec.Addr

	// Check the uncommitted store queue. An older overlapping store that
	// has executed forwards its data (1 cycle). One that has not yet
	// executed cannot be detected by the hardware: the load proceeds
	// speculatively and the 620's alias-detection logic refetches it
	// when the store's address is generated (§4.1).
	switch m.storeQueueCheck(i, cycle) {
	case sqForward:
		e.doneC = cycle + 1
		m.finishLoad(e, cycle)
		return
	case sqAlias:
		// Refetch: the load's value becomes available only after the
		// conflicting store executes plus a refetch penalty.
		st := &m.entries[e.aliasStore]
		avail := cycle + m.cfg.L1Latency
		if st.issued {
			avail = max(avail, st.doneC+aliasRefetchPenalty+m.cfg.L1Latency)
		} else {
			// The store has not even issued; bound the penalty by
			// treating detection as happening at our own issue+1.
			avail = cycle + aliasRefetchPenalty + m.cfg.L1Latency
		}
		m.stats.AliasRefetches++
		if m.otr.Enabled(obs.ChanSim) {
			m.otr.Emit(obs.ChanSim, "alias-refetch",
				slog.String("pc", fmt.Sprintf("%#x", e.rec.PC)),
				slog.String("addr", fmt.Sprintf("%#x", e.rec.Addr)),
				slog.String("store_pc", fmt.Sprintf("%#x", st.rec.PC)),
				slog.Int("cycle", cycle))
		}
		e.doneC = avail
		m.finishLoad(e, cycle)
		return
	}

	bank := m.hier.L1.Bank(addr)
	accessCycle := cycle + 1 // EX2 cache cycle
	slot := &m.bankRing[accessCycle&(len(m.bankRing)-1)][bank]
	conflict := *slot >= 1

	if e.pred == trace.PredConstant {
		// The CVU verifies the value without needing memory; the
		// access is initiated anyway, but a bank conflict or cache
		// miss cancels it instead of retrying (paper §3.4, §6.5).
		if conflict || !m.hier.ProbeL1(addr) {
			e.cancelled = true
			e.doneC = cycle + 1
			m.finishLoad(e, cycle)
			return
		}
		// Bank free and line present: the access proceeds as a hit.
		*slot++
		m.stats.CacheAccesses++
		m.hier.L1.Access(addr)
		e.doneC = cycle + m.cfg.L1Latency
		m.finishLoad(e, cycle)
		return
	}

	if conflict {
		m.noteConflict(accessCycle)
		accessCycle++ // retry next cycle
		slot = &m.bankRing[accessCycle&(len(m.bankRing)-1)][bank]
	}
	*slot++
	m.stats.CacheAccesses++
	res := m.hier.Access(addr)
	done := accessCycle - 1 + res.Latency
	if !res.L1Hit {
		// A miss needs a free MSHR; with all miss registers busy the
		// request waits for the earliest one to retire.
		done = m.allocMSHR(accessCycle, res.Latency)
	}
	e.doneC = done
	m.finishLoad(e, cycle)
}

// allocMSHR models the bounded set of outstanding-miss registers: a miss
// starting at `start` with the given service latency occupies an MSHR until
// its data returns; if all MSHRs are busy the miss is deferred until the
// earliest outstanding one completes.
func (m *machine) allocMSHR(start, latency int) (done int) {
	// Drop retired entries.
	live := m.missBusyUntil[:0]
	for _, d := range m.missBusyUntil {
		if d > start {
			live = append(live, d)
		}
	}
	m.missBusyUntil = live
	if m.cfg.MSHRs > 0 && len(live) >= m.cfg.MSHRs {
		earliest := live[0]
		for _, d := range live[1:] {
			if d < earliest {
				earliest = d
			}
		}
		m.stats.MSHRStalls++
		if m.otr.Enabled(obs.ChanSim) {
			m.otr.Emit(obs.ChanSim, "mshr-stall",
				slog.Int("cycle", start),
				slog.Int("deferred_to", earliest))
		}
		start = earliest
	}
	done = start - 1 + latency
	m.missBusyUntil = append(m.missBusyUntil, done)
	return done
}

// finishLoad sets verification and result-forwarding times per the load's
// prediction state.
func (m *machine) finishLoad(e *entry, cycle int) {
	switch e.pred {
	case trace.PredConstant:
		// CVU match: verified when the address is known; no value
		// comparison cycle.
		e.verifyC = e.doneC
		// resultReadyC was already set at dispatch.
	case trace.PredCorrect:
		e.verifyC = e.doneC + 1 // value comparison takes one extra cycle
	case trace.PredIncorrect:
		e.verifyC = e.doneC + 1
		// Dependents reissue and see the correct value one cycle
		// later than they would have without prediction (§4.1).
		e.resultReadyC = e.doneC + 1
	default:
		e.verifyC = e.doneC
		e.resultReadyC = e.doneC
	}
	if e.resultReadyC == unknown {
		e.resultReadyC = e.doneC
	}
	if e.pred == trace.PredCorrect || e.pred == trace.PredConstant {
		m.stats.VerifyLatency[verifyBucket(e.verifyC-e.dispatchC)]++
	}
}

// aliasRefetchPenalty is the extra latency charged when a load issued past
// an older store turns out to alias it and must be refetched.
const aliasRefetchPenalty = 3

type sqResult int

const (
	sqClear   sqResult = iota // no older overlapping store
	sqForward                 // overlapping store already executed: forward
	sqAlias                   // overlapping store not yet executed: refetch
)

// storeQueueCheck scans older in-flight stores for an overlap with load i
// and classifies the situation. On sqAlias the conflicting store's index is
// recorded in the load's aliasStore field.
func (m *machine) storeQueueCheck(i, cycle int) sqResult {
	e := &m.entries[i]
	for j := i - 1; j >= m.head; j-- {
		o := &m.entries[j]
		if !o.isStore || o.completed {
			continue
		}
		if !rangesOverlap(o.rec.Addr, int(o.rec.Size), e.rec.Addr, int(e.rec.Size)) {
			continue
		}
		if o.issued && o.doneC <= cycle {
			return sqForward
		}
		e.aliasStore = j
		return sqAlias
	}
	return sqClear
}

func rangesOverlap(a uint64, an int, b uint64, bn int) bool {
	return a < b+uint64(bn) && b < a+uint64(an)
}

// noteConflict records a bank-conflict event, counting each conflicted
// cycle once for Figure 9.
func (m *machine) noteConflict(cycle int) {
	m.stats.BankConflicts++
	if cycle != m.lastConflictCycle {
		m.stats.BankConflictCycles++
		m.lastConflictCycle = cycle
	}
	if m.otr.Enabled(obs.ChanSim) {
		m.otr.Emit(obs.ChanSim, "bank-conflict", slog.Int("cycle", cycle))
	}
}

// --- completion ---

func (m *machine) complete(cycle int) {
	for k := 0; k < m.cfg.CompleteWidth && m.head < m.dispPtr; k++ {
		e := &m.entries[m.head]
		if !e.issued || cycle < e.doneC {
			return
		}
		if e.verifyC != unknown && cycle < e.verifyC {
			return // loads complete only after verification
		}
		if e.isStore {
			// Commit the store: the cache is written now, using a
			// bank port (Figure 9's conflict source).
			bank := m.hier.L1.Bank(e.rec.Addr)
			slot := &m.bankRing[cycle&(len(m.bankRing)-1)][bank]
			if *slot >= 1 {
				// Port busy: the store retries next cycle
				// (stop completing this cycle).
				m.noteConflict(cycle)
				return
			}
			*slot++
			m.stats.CacheAccesses++
			m.hier.Access(e.rec.Addr)
		}
		e.completed = true
		m.head++
	}
}
