package ppc620

import (
	"testing"

	"lvp/internal/isa"
)

// TestOpTabMatchesFunctions pins every opTab row (and the out-of-range
// fallback) against the switch functions it was derived from, so the
// functions stay the single authority and a new opcode or a changed
// latency cannot silently diverge from the table the hot loop reads.
func TestOpTabMatchesFunctions(t *testing.T) {
	check := func(op isa.Op, info *opInfo) {
		if got, want := info.fu, fuOf(op); got != want {
			t.Errorf("op %d: table fu %v, fuOf %v", op, got, want)
		}
		if got, want := info.lat, int32(execLatency(op)); got != want {
			t.Errorf("op %d: table latency %d, execLatency %d", op, got, want)
		}
		m := isa.MetaOf(op)
		flags := []struct {
			name string
			bit  uint16
			want bool
		}{
			{"WritesGPR", opWritesGPR, m.WGPR},
			{"WritesFPR", opWritesFPR, m.WFPR},
			{"IsCompare", opIsCompare, isCompare(op)},
			{"IsLoad", opIsLoad, m.Load},
			{"IsStore", opIsStore, m.Store},
			{"IsBranch", opIsBranch, m.Branch},
			{"NonPipeFP", opNonPipeFP, m.Class == isa.ClassComplexFP},
			{"ReadsRaG", opReadsRaG, m.ReadsRaG},
			{"ReadsRaF", opReadsRaF, m.ReadsRaF},
			{"ReadsRbG", opReadsRbG, m.ReadsRbG},
			{"ReadsRbF", opReadsRbF, m.ReadsRbF},
		}
		for _, f := range flags {
			if got := info.flags&f.bit != 0; got != f.want {
				t.Errorf("op %d: table %s = %v, function %v", op, f.name, got, f.want)
			}
		}
	}
	for op := isa.Op(0); int(op) < isa.NumOps; op++ {
		check(op, infoOf(op))
	}
	// Out-of-range opcodes must clamp exactly like the functions do.
	for _, op := range []isa.Op{isa.Op(isa.NumOps), isa.Op(isa.NumOps + 17)} {
		check(op, infoOf(op))
	}
}
