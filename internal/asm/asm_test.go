package asm

import (
	"strings"
	"testing"

	"lvp/internal/isa"
	"lvp/internal/prog"
	"lvp/internal/vm"
)

func assembleRun(t *testing.T, src string) []uint64 {
	t.Helper()
	p, err := Assemble("test.s", src, prog.AXP)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	res, err := vm.Exec(p, 1_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.Output
}

func TestAssembleArithmetic(t *testing.T) {
	out := assembleRun(t, `
; sum 1..10
main:
    li   t0, 0        ; sum
    li   t1, 1        ; i
    li   t2, 10
loop:
    blt  t2, t1, done
    add  t0, t0, t1
    addi t1, t1, 1
    j    loop
done:
    out  t0
    ret
`)
	if len(out) != 1 || out[0] != 55 {
		t.Fatalf("output = %v, want [55]", out)
	}
}

func TestAssembleDataAndMemory(t *testing.T) {
	out := assembleRun(t, `
.words64 tab 7, 9, -2
.zeros   buf 16
.bytes   msg "hi\n"

main:
    la   s0, tab !daddr
    ld   t0, 0(s0)
    ld   t1, 8(s0)
    add  t2, t0, t1
    out  t2              ; 16
    la   s1, buf
    sd   t2, 0(s1)
    ld   t3, 0(s1)
    out  t3              ; 16
    la   s2, msg
    lbu  t4, 0(s2)
    out  t4              ; 'h'
    ret
`)
	want := []uint64{16, 16, 'h'}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

func TestAssembleCallsAndTables(t *testing.T) {
	out := assembleRun(t, `
.ptrtable fns code double, triple

main:
    addi sp, sp, -8
    sd   ra, 0(sp)       ; save the link register around the calls
    li   a0, 5
    call double
    out  a0              ; 10
    la   t0, fns !daddr
    ld   t1, 8(t0) !iaddr
    li   a0, 5
    jalr ra, (t1)
    out  a0              ; 15
    ld   ra, 0(sp) !iaddr
    addi sp, sp, 8
    ret

double:
    add  a0, a0, a0
    ret

triple:
    mv   t9, a0
    add  a0, a0, a0
    add  a0, a0, t9
    ret
`)
	want := []uint64{10, 15}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

func TestAssembleFloat(t *testing.T) {
	out := assembleRun(t, `
.float64 xs 1.5, 2.5

main:
    la    s0, xs !daddr
    fld   ft0, 0(s0) !fp
    fld   ft1, 8(s0)
    fadd  ft2, ft0, ft1
    lcf   ft3, 0.5
    fmul  ft2, ft2, ft3
    cvtfi t0, ft2
    out   t0             ; (1.5+2.5)*0.5 = 2
    ret
`)
	if out[0] != 2 {
		t.Fatalf("fp result = %d, want 2", out[0])
	}
}

func TestAssembleLoadClassTags(t *testing.T) {
	p, err := Assemble("t.s", `
main:
    lw  t0, 0(gp) !iaddr
    lw  t1, 4(gp)
    flw ft0, 8(gp)
    ret
`, prog.PPC)
	if err != nil {
		t.Fatal(err)
	}
	classes := map[isa.LoadClass]int{}
	for _, in := range p.Code {
		if isa.IsLoad(in.Op) {
			classes[in.Class]++
		}
	}
	if classes[isa.LoadInstAddr] < 1 {
		t.Error("!iaddr tag not applied")
	}
	if classes[isa.LoadIntData] < 1 {
		t.Error("default int-data class not applied")
	}
	if classes[isa.LoadFPData] < 1 {
		t.Error("default fp class not applied to flw")
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"main:\n  frobnicate t0\n  ret", "unknown instruction"},
		{"main:\n  add t0, t1\n  ret", "missing operand"},
		{"main:\n  lw t0, t1\n  ret", "bad memory operand"},
		{"main:\n  li qq, 5\n  ret", "bad register"},
		{".bogus x 1\nmain:\n  ret", "unknown directive"},
		{"main:\n  beq t0, t1, nowhere\n  ret", "unresolved code label"},
		{"main:\n  lw t0, 0(gp) !weird\n  ret", "unknown load class"},
		{"main:\n  li t0, zzz\n  ret", "bad integer"},
	}
	for _, c := range cases {
		_, err := Assemble("e.s", c.src, prog.AXP)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("src %q: err = %v, want containing %q", c.src, err, c.frag)
		}
	}
}

func TestAssembleCharLiteralAndHex(t *testing.T) {
	out := assembleRun(t, `
main:
    li  t0, 'A'
    out t0
    li  t1, 0x10
    out t1
    li  t2, -5
    out t2
    ret
`)
	if out[0] != 'A' || out[1] != 16 || int64(out[2]) != -5 {
		t.Fatalf("literals = %v", out)
	}
}

func TestAssembleCommentsAndLabelsOnOneLine(t *testing.T) {
	out := assembleRun(t, `
main: li t0, 3   # trailing comment
      out t0     ; another
      ret
`)
	if out[0] != 3 {
		t.Fatalf("out = %v", out)
	}
}

func TestAssembleUnaryAndJalrForms(t *testing.T) {
	out := assembleRun(t, `
main:
    li    t0, 9
    cvtif ft0, t0
    fsqrt ft1, ft0
    cvtfi t1, ft1
    out   t1            ; 3
    movfi t2, ft0
    movif ft2, t2
    fneg  ft3, ft2
    fabs  ft4, ft3
    fmov  ft5, ft4
    cvtfi t3, ft5
    out   t3            ; 9
    laf   t4, main      ; GOT function-address load
    j     over
over:
    ret
`)
	if out[0] != 3 || out[1] != 9 {
		t.Fatalf("out = %v", out)
	}
}

func TestAssembleJalrRegisterOnlyForm(t *testing.T) {
	out := assembleRun(t, `
main:
    addi sp, sp, -8
    sd   ra, 0(sp)
    laf  t0, leaf
    jalr ra, t0         ; bare-register form
    out  a0
    ld   ra, 0(sp) !iaddr
    addi sp, sp, 8
    ret
leaf:
    li   a0, 77
    ret
`)
	if out[0] != 77 {
		t.Fatalf("out = %v", out)
	}
}

func TestAssembleNopAndWords32(t *testing.T) {
	out := assembleRun(t, `
.words32 w32 -1, 260

main:
    nop
    la  t0, w32
    lw  t1, 0(t0)
    out t1              ; -1 sign-extended
    lwu t2, 0(t0)
    out t2              ; 0xFFFFFFFF
    lw  t3, 4(t0)
    out t3              ; 260
    ret
`)
	if int64(out[0]) != -1 || out[1] != 0xFFFFFFFF || out[2] != 260 {
		t.Fatalf("out = %v", out)
	}
}

func TestAssembleDirectiveErrors(t *testing.T) {
	cases := []struct {
		src, frag string
	}{
		{".ptrtable t weird a\nmain:\n ret", "code or data"},
		{".float64 xs abc\nmain:\n ret", "bad float"},
		{".bytes msg 42\nmain:\n ret", "quoted string"},
		{".zeros\nmain:\n ret", "directive needs a name"},
		{".words64 w zz\nmain:\n ret", "bad integer"},
		{"main:\n lcf ft0, xx\n ret", "bad float"},
		{"main:\n la t0\n ret", "register and a symbol"},
		{"main:\n jal t5, somewhere\nsomewhere:\n ret", "link register must be ra or zero"},
	}
	for _, c := range cases {
		_, err := Assemble("e.s", c.src, prog.AXP)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("src %q: err = %v, want %q", c.src, err, c.frag)
		}
	}
}

func TestAssemblePPCTarget(t *testing.T) {
	p, err := Assemble("p.s", `
.wordsptr ptrs 1, 2
main:
    la t0, ptrs
    ret
`, prog.PPC)
	if err != nil {
		t.Fatal(err)
	}
	if p.Target.Name != "ppc" {
		t.Errorf("target = %s", p.Target.Name)
	}
}
