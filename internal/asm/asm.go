// Package asm is a textual assembler for the VLR ISA, so workloads can be
// written as .s files and driven through the tracing/prediction/timing
// pipeline without writing Go against the program builder.
//
// Syntax (one statement per line; ';' or '#' start a comment):
//
//	.bytes   name "text with \n escapes"     data directives
//	.zeros   name 64
//	.words64 name 1, 2, -3
//	.words32 name 1, 2
//	.wordsptr name 0, 1, 2                   pointer-width words
//	.float64 name 0.5, 1.25
//	.ptrtable name code c0, c1               table of code/data addresses
//	.ptrtable name data sym1, sym2
//
//	main:                                    labels
//	    li    a0, 42                         register-immediate forms
//	    addi  a0, a0, 1
//	    add   a0, a0, t1                     three-register forms
//	    lw    t0, 8(gp) !daddr               loads: optional !int !fp
//	    sd    t0, 0(sp)                      !iaddr !daddr class tag
//	    beq   t0, zero, done                 branches take labels
//	    call  helper                         pseudo: jal ra, helper
//	    j     main                           pseudo: jal zero, main
//	    ret                                  pseudo: jalr zero, ra, 0
//	    mv    t1, t0                         pseudo: or t1, t0, zero
//	    la    t2, name                       pseudo: GOT data-address load
//	    laf   t3, func                       pseudo: GOT function-address load
//	    lcf   f0, 2.5                        pseudo: FP constant-pool load
//	    out   a0
//	    halt
//
// Registers accept numeric (r0-r31, f0-f31) and ABI names (zero, at, sp,
// gp, a0-a5, t0-t9, s0-s10, ra; fa0-3, ft0-7, fs0-7).
//
// The assembler targets the same prog.Builder used by the benchmark suite,
// so programs get the standard startup stub and must define "main" (ending
// in `ret` or `halt`).
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"lvp/internal/isa"
	"lvp/internal/prog"
)

// Assemble parses src and returns the linked program.
func Assemble(name, src string, target prog.Target) (*prog.Program, error) {
	a := &assembler{b: prog.New(name, target)}
	for ln, raw := range strings.Split(src, "\n") {
		if err := a.line(raw); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, ln+1, err)
		}
	}
	return a.b.Build()
}

type assembler struct {
	b *prog.Builder
}

func (a *assembler) line(raw string) error {
	// Strip comments (respecting string literals).
	line := stripComment(raw)
	line = strings.TrimSpace(line)
	if line == "" {
		return nil
	}
	// Labels (possibly followed by an instruction on the same line).
	for {
		i := strings.IndexByte(line, ':')
		if i < 0 || strings.ContainsAny(line[:i], " \t\"(") {
			break
		}
		a.b.Label(strings.TrimSpace(line[:i]))
		line = strings.TrimSpace(line[i+1:])
		if line == "" {
			return nil
		}
	}
	if strings.HasPrefix(line, ".") {
		return a.directive(line)
	}
	return a.instruction(line)
}

func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '"' && (i == 0 || s[i-1] != '\\'):
			inStr = !inStr
		case !inStr && (s[i] == ';' || s[i] == '#'):
			return s[:i]
		}
	}
	return s
}

// --- directives ---

func (a *assembler) directive(line string) error {
	fields := splitOperands(line)
	if len(fields) < 2 {
		return fmt.Errorf("directive needs a name: %q", line)
	}
	dir, name := fields[0], fields[1]
	args := fields[2:]
	switch dir {
	case ".bytes":
		if len(args) != 1 || !strings.HasPrefix(args[0], "\"") {
			return fmt.Errorf(".bytes wants a quoted string")
		}
		str, err := strconv.Unquote(args[0])
		if err != nil {
			return fmt.Errorf("bad string literal: %w", err)
		}
		a.b.Bytes(name, []byte(str))
	case ".zeros":
		n, err := parseInt(argOne(args))
		if err != nil {
			return err
		}
		a.b.Zeros(name, int(n))
	case ".words64", ".words32", ".wordsptr":
		vals, err := parseInts(args)
		if err != nil {
			return err
		}
		switch dir {
		case ".words64":
			a.b.Words64(name, vals)
		case ".words32":
			w := make([]int32, len(vals))
			for i, v := range vals {
				w[i] = int32(v)
			}
			a.b.Words32(name, w)
		default:
			a.b.WordsPtr(name, vals)
		}
	case ".float64":
		fs := make([]float64, len(args))
		for i, s := range args {
			f, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return fmt.Errorf("bad float %q: %w", s, err)
			}
			fs[i] = f
		}
		a.b.Floats64(name, fs)
	case ".ptrtable":
		if len(args) < 1 {
			return fmt.Errorf(".ptrtable wants code|data plus labels")
		}
		var isCode bool
		switch args[0] {
		case "code":
			isCode = true
		case "data":
		default:
			return fmt.Errorf(".ptrtable kind must be code or data, got %q", args[0])
		}
		a.b.PtrTable(name, args[1:], isCode)
	default:
		return fmt.Errorf("unknown directive %q", dir)
	}
	return nil
}

func argOne(args []string) string {
	if len(args) == 1 {
		return args[0]
	}
	return ""
}

// --- instructions ---

func (a *assembler) instruction(line string) error {
	mnemonic, rest, _ := strings.Cut(line, " ")
	mnemonic = strings.TrimSpace(mnemonic)
	ops := splitOperands(rest)

	// Load-class tag (!int/!fp/!iaddr/!daddr on memory operands).
	class := isa.LoadNone
	if n := len(ops); n > 0 && strings.HasPrefix(ops[n-1], "!") {
		switch ops[n-1] {
		case "!int":
			class = isa.LoadIntData
		case "!fp":
			class = isa.LoadFPData
		case "!iaddr":
			class = isa.LoadInstAddr
		case "!daddr":
			class = isa.LoadDataAddr
		default:
			return fmt.Errorf("unknown load class %q", ops[n-1])
		}
		ops = ops[:n-1]
	}

	// Pseudo-instructions first.
	switch mnemonic {
	case "call":
		if len(ops) != 1 {
			return fmt.Errorf("call wants a label")
		}
		a.b.Call(ops[0])
		return nil
	case "j":
		if len(ops) != 1 {
			return fmt.Errorf("j wants a label")
		}
		a.b.Jump(ops[0])
		return nil
	case "ret":
		a.b.Ret()
		return nil
	case "mv":
		rd, err := reg(ops, 0)
		if err != nil {
			return err
		}
		rs, err := reg(ops, 1)
		if err != nil {
			return err
		}
		a.b.Mv(rd, rs)
		return nil
	case "la", "laf":
		rd, err := reg(ops, 0)
		if err != nil {
			return err
		}
		if len(ops) != 2 {
			return fmt.Errorf("%s wants a register and a symbol", mnemonic)
		}
		if mnemonic == "la" {
			a.b.GotData(rd, ops[1])
		} else {
			a.b.GotFunc(rd, ops[1])
		}
		return nil
	case "lcf":
		rd, err := reg(ops, 0)
		if err != nil {
			return err
		}
		if len(ops) != 2 {
			return fmt.Errorf("lcf wants a register and a float")
		}
		f, err := strconv.ParseFloat(ops[1], 64)
		if err != nil {
			return fmt.Errorf("bad float %q: %w", ops[1], err)
		}
		a.b.LoadConstF(rd, f)
		return nil
	}

	op, ok := isa.OpByName(mnemonic)
	if !ok {
		return fmt.Errorf("unknown instruction %q", mnemonic)
	}

	switch {
	case op == isa.NOP || op == isa.HALT:
		a.b.Emit(isa.Inst{Op: op})
	case op == isa.OUT:
		ra, err := reg(ops, 0)
		if err != nil {
			return err
		}
		a.b.Out(ra)
	case op == isa.LI:
		rd, err := reg(ops, 0)
		if err != nil {
			return err
		}
		imm, err := immAt(ops, 1)
		if err != nil {
			return err
		}
		a.b.Li(rd, imm)
	case isa.IsLoad(op):
		rd, err := reg(ops, 0)
		if err != nil {
			return err
		}
		off, base, err := memOperand(ops, 1)
		if err != nil {
			return err
		}
		if class == isa.LoadNone {
			if isa.IsFPLoad(op) {
				class = isa.LoadFPData
			} else {
				class = isa.LoadIntData
			}
		}
		a.b.Load(op, rd, base, off, class)
	case isa.IsStore(op):
		rb, err := reg(ops, 0)
		if err != nil {
			return err
		}
		off, base, err := memOperand(ops, 1)
		if err != nil {
			return err
		}
		a.b.Store(op, rb, base, off)
	case isa.IsCondBranch(op):
		ra, err := reg(ops, 0)
		if err != nil {
			return err
		}
		rb, err := reg(ops, 1)
		if err != nil {
			return err
		}
		if len(ops) != 3 {
			return fmt.Errorf("%s wants two registers and a label", mnemonic)
		}
		a.b.Branch(op, ra, rb, ops[2])
	case op == isa.JAL:
		rd, err := reg(ops, 0)
		if err != nil {
			return err
		}
		if len(ops) != 2 {
			return fmt.Errorf("jal wants a register and a label")
		}
		if rd == prog.RA {
			a.b.Call(ops[1])
		} else if rd == prog.Zero {
			a.b.Jump(ops[1])
		} else {
			return fmt.Errorf("jal link register must be ra or zero")
		}
	case op == isa.JALR:
		rd, err := reg(ops, 0)
		if err != nil {
			return err
		}
		off, base, err := memOperand(ops, 1)
		if err != nil {
			// Also accept "jalr rd, ra" without offset syntax.
			base2, err2 := reg(ops, 1)
			if err2 != nil {
				return err
			}
			off, base = 0, base2
		}
		a.b.Emit(isa.Inst{Op: isa.JALR, Rd: rd, Ra: base, Imm: off})
	case immediateForm(op):
		rd, err := reg(ops, 0)
		if err != nil {
			return err
		}
		ra, err := reg(ops, 1)
		if err != nil {
			return err
		}
		imm, err := immAt(ops, 2)
		if err != nil {
			return err
		}
		a.b.OpI(op, rd, ra, imm)
	case unaryForm(op):
		rd, err := reg(ops, 0)
		if err != nil {
			return err
		}
		ra, err := reg(ops, 1)
		if err != nil {
			return err
		}
		a.b.Emit(isa.Inst{Op: op, Rd: rd, Ra: ra})
	default: // three-register form
		rd, err := reg(ops, 0)
		if err != nil {
			return err
		}
		ra, err := reg(ops, 1)
		if err != nil {
			return err
		}
		rb, err := reg(ops, 2)
		if err != nil {
			return err
		}
		a.b.Op3(op, rd, ra, rb)
	}
	return nil
}

func immediateForm(op isa.Op) bool {
	switch op {
	case isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SHLI, isa.SHRI, isa.SRAI, isa.SLTI:
		return true
	}
	return false
}

func unaryForm(op isa.Op) bool {
	switch op {
	case isa.FNEG, isa.FABS, isa.FMOV, isa.FSQRT,
		isa.CVTIF, isa.CVTFI, isa.MOVIF, isa.MOVFI:
		return true
	}
	return false
}
