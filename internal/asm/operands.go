package asm

import (
	"fmt"
	"strconv"
	"strings"

	"lvp/internal/isa"
	"lvp/internal/prog"
)

// splitOperands splits on commas and whitespace, keeping quoted strings and
// parenthesised memory operands intact.
func splitOperands(s string) []string {
	var out []string
	var cur strings.Builder
	depth, inStr := 0, false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' && (i == 0 || s[i-1] != '\\'):
			inStr = !inStr
			cur.WriteByte(c)
		case inStr:
			cur.WriteByte(c)
		case c == '(':
			depth++
			cur.WriteByte(c)
		case c == ')':
			depth--
			cur.WriteByte(c)
		case depth == 0 && (c == ',' || c == ' ' || c == '\t'):
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return out
}

// regNames maps ABI and numeric register names to register numbers. FP
// registers share the numeric space (the opcode selects the file).
var regNames = map[string]isa.Reg{
	"zero": prog.Zero, "at": prog.AT, "sp": prog.SP, "gp": prog.GP,
	"ra": prog.RA,
	"a0": prog.A0, "a1": prog.A1, "a2": prog.A2, "a3": prog.A3,
	"a4": prog.A4, "a5": prog.A5,
	"t0": prog.T0, "t1": prog.T1, "t2": prog.T2, "t3": prog.T3,
	"t4": prog.T4, "t5": prog.T5, "t6": prog.T6, "t7": prog.T7,
	"t8": prog.T8, "t9": prog.T9,
	"s0": prog.S0, "s1": prog.S1, "s2": prog.S2, "s3": prog.S3,
	"s4": prog.S4, "s5": prog.S5, "s6": prog.S6, "s7": prog.S7,
	"s8": prog.S8, "s9": prog.S9, "s10": prog.S10,
	"fa0": prog.FA0, "fa1": prog.FA1, "fa2": prog.FA2, "fa3": prog.FA3,
	"ft0": prog.FT0, "ft1": prog.FT1, "ft2": prog.FT2, "ft3": prog.FT3,
	"ft4": prog.FT4, "ft5": prog.FT5, "ft6": prog.FT6, "ft7": prog.FT7,
	"fs0": prog.FS0, "fs1": prog.FS1, "fs2": prog.FS2, "fs3": prog.FS3,
	"fs4": prog.FS4, "fs5": prog.FS5, "fs6": prog.FS6, "fs7": prog.FS7,
}

func parseReg(s string) (isa.Reg, error) {
	if r, ok := regNames[s]; ok {
		return r, nil
	}
	if len(s) >= 2 && (s[0] == 'r' || s[0] == 'f') {
		if n, err := strconv.Atoi(s[1:]); err == nil && n >= 0 && n < isa.NumRegs {
			return isa.Reg(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func reg(ops []string, i int) (isa.Reg, error) {
	if i >= len(ops) {
		return 0, fmt.Errorf("missing operand %d", i+1)
	}
	return parseReg(ops[i])
}

func parseInt(s string) (int64, error) {
	if s == "" {
		return 0, fmt.Errorf("missing integer")
	}
	if len(s) == 3 && s[0] == '\'' && s[2] == '\'' {
		return int64(s[1]), nil // character literal
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	return v, nil
}

func parseInts(args []string) ([]int64, error) {
	out := make([]int64, len(args))
	for i, s := range args {
		v, err := parseInt(s)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func immAt(ops []string, i int) (int64, error) {
	if i >= len(ops) {
		return 0, fmt.Errorf("missing immediate operand %d", i+1)
	}
	return parseInt(ops[i])
}

// memOperand parses "off(base)" or "(base)".
func memOperand(ops []string, i int) (off int64, base isa.Reg, err error) {
	if i >= len(ops) {
		return 0, 0, fmt.Errorf("missing memory operand")
	}
	s := ops[i]
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q (want off(reg))", s)
	}
	if open > 0 {
		off, err = parseInt(s[:open])
		if err != nil {
			return 0, 0, err
		}
	}
	base, err = parseReg(s[open+1 : len(s)-1])
	return off, base, err
}
