package isa

import "fmt"

var opNames = [numOps]string{
	NOP: "nop", ADD: "add", ADDI: "addi", SUB: "sub", AND: "and",
	ANDI: "andi", OR: "or", ORI: "ori", XOR: "xor", XORI: "xori",
	SHL: "shl", SHLI: "shli", SHR: "shr", SHRI: "shri", SRA: "sra",
	SRAI: "srai", SLT: "slt", SLTI: "slti", SLTU: "sltu", SEQ: "seq",
	SNE: "sne", LI: "li", MUL: "mul", DIV: "div", REM: "rem",
	LB: "lb", LBU: "lbu", LH: "lh", LHU: "lhu", LW: "lw", LWU: "lwu",
	LD: "ld", FLW: "flw", FLD: "fld",
	SB: "sb", SH: "sh", SW: "sw", SD: "sd", FSW: "fsw", FSD: "fsd",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BLTU: "bltu",
	BGEU: "bgeu", JAL: "jal", JALR: "jalr",
	FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FNEG: "fneg", FABS: "fabs",
	FMOV: "fmov", FEQ: "feq", FLT: "flt", FLE: "fle",
	CVTIF: "cvtif", CVTFI: "cvtfi", MOVIF: "movif", MOVFI: "movfi",
	FDIV: "fdiv", FSQRT: "fsqrt",
	OUT: "out", HALT: "halt",
}

// String returns the assembler mnemonic of op.
func (op Op) String() string {
	if int(op) < NumOps && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// String disassembles the instruction into a readable assembler form.
func (i Inst) String() string {
	op := i.Op
	switch {
	case op == NOP || op == HALT:
		return op.String()
	case op == LI:
		return fmt.Sprintf("%s r%d, %d", op, i.Rd, i.Imm)
	case op == OUT:
		return fmt.Sprintf("%s r%d", op, i.Ra)
	case IsLoad(op):
		suffix := ""
		if i.Class != LoadNone {
			suffix = " ; " + i.Class.String()
		}
		return fmt.Sprintf("%s r%d, %d(r%d)%s", op, i.Rd, i.Imm, i.Ra, suffix)
	case IsStore(op):
		return fmt.Sprintf("%s r%d, %d(r%d)", op, i.Rb, i.Imm, i.Ra)
	case IsCondBranch(op):
		return fmt.Sprintf("%s r%d, r%d, 0x%x", op, i.Ra, i.Rb, uint64(i.Imm))
	case op == JAL:
		return fmt.Sprintf("%s r%d, 0x%x", op, i.Rd, uint64(i.Imm))
	case op == JALR:
		return fmt.Sprintf("%s r%d, %d(r%d)", op, i.Rd, i.Imm, i.Ra)
	case op == ADDI || op == ANDI || op == ORI || op == XORI ||
		op == SHLI || op == SHRI || op == SRAI || op == SLTI:
		return fmt.Sprintf("%s r%d, r%d, %d", op, i.Rd, i.Ra, i.Imm)
	case op == FNEG || op == FABS || op == FMOV || op == FSQRT ||
		op == CVTIF || op == CVTFI || op == MOVIF || op == MOVFI:
		return fmt.Sprintf("%s r%d, r%d", op, i.Rd, i.Ra)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", op, i.Rd, i.Ra, i.Rb)
	}
}

// OpByName returns the opcode with the given assembler mnemonic.
func OpByName(name string) (Op, bool) {
	for op, n := range opNames {
		if n == name && n != "" {
			return Op(op), true
		}
	}
	return NOP, false
}
