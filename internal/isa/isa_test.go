package isa

import "testing"

func TestEveryOpcodeHasClass(t *testing.T) {
	for op := Op(1); int(op) < NumOps; op++ {
		if ClassOf(op) == ClassNop && op != NOP {
			t.Errorf("opcode %v (%d) has no functional-unit class", op, op)
		}
	}
}

func TestEveryOpcodeHasName(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		if opNames[op] == "" {
			t.Errorf("opcode %d has no mnemonic", op)
		}
	}
	if got := Op(250).String(); got != "op(250)" {
		t.Errorf("out-of-range op name = %q", got)
	}
}

func TestMemBytes(t *testing.T) {
	cases := []struct {
		op   Op
		want int
	}{
		{LB, 1}, {LBU, 1}, {SB, 1},
		{LH, 2}, {LHU, 2}, {SH, 2},
		{LW, 4}, {LWU, 4}, {SW, 4}, {FLW, 4}, {FSW, 4},
		{LD, 8}, {SD, 8}, {FLD, 8}, {FSD, 8},
		{ADD, 0}, {BEQ, 0}, {HALT, 0},
	}
	for _, c := range cases {
		if got := MemBytes(c.op); got != c.want {
			t.Errorf("MemBytes(%v) = %d, want %d", c.op, got, c.want)
		}
	}
}

func TestLoadStoreClassesConsistent(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		if IsLoad(op) || IsStore(op) {
			if MemBytes(op) == 0 {
				t.Errorf("memory op %v has zero width", op)
			}
		} else if MemBytes(op) != 0 {
			t.Errorf("non-memory op %v has width %d", op, MemBytes(op))
		}
	}
}

func TestSignExtends(t *testing.T) {
	for _, op := range []Op{LB, LH, LW} {
		if !SignExtends(op) {
			t.Errorf("%v should sign-extend", op)
		}
	}
	for _, op := range []Op{LBU, LHU, LWU, LD, FLW, FLD} {
		if SignExtends(op) {
			t.Errorf("%v should not sign-extend", op)
		}
	}
}

func TestBranchPredicates(t *testing.T) {
	cond := []Op{BEQ, BNE, BLT, BGE, BLTU, BGEU}
	for _, op := range cond {
		if !IsBranch(op) || !IsCondBranch(op) {
			t.Errorf("%v should be a conditional branch", op)
		}
	}
	for _, op := range []Op{JAL, JALR} {
		if !IsBranch(op) || IsCondBranch(op) {
			t.Errorf("%v should be an unconditional branch", op)
		}
	}
	if !IsIndirect(JALR) || IsIndirect(JAL) {
		t.Error("JALR must be the only indirect transfer")
	}
}

func TestWritesGPRAndFPR(t *testing.T) {
	cases := []struct {
		in      Inst
		gpr, fp bool
	}{
		{Inst{Op: ADD, Rd: 5}, true, false},
		{Inst{Op: LW, Rd: 5}, true, false},
		{Inst{Op: FLD, Rd: 5}, false, true},
		{Inst{Op: SW}, false, false},
		{Inst{Op: FSD}, false, false},
		{Inst{Op: JAL, Rd: 31}, true, false},
		{Inst{Op: JALR, Rd: 31}, true, false},
		{Inst{Op: BEQ}, false, false},
		{Inst{Op: FADD, Rd: 2}, false, true},
		{Inst{Op: FEQ, Rd: 2}, true, false},
		{Inst{Op: CVTIF, Rd: 2}, false, true},
		{Inst{Op: CVTFI, Rd: 2}, true, false},
		{Inst{Op: MOVFI, Rd: 2}, true, false},
		{Inst{Op: MOVIF, Rd: 2}, false, true},
		{Inst{Op: HALT}, false, false},
	}
	for _, c := range cases {
		if got := WritesGPR(c.in); got != c.gpr {
			t.Errorf("WritesGPR(%v) = %v, want %v", c.in.Op, got, c.gpr)
		}
		if got := WritesFPR(c.in); got != c.fp {
			t.Errorf("WritesFPR(%v) = %v, want %v", c.in.Op, got, c.fp)
		}
	}
}

func TestDest(t *testing.T) {
	if ref, ok := Dest(Inst{Op: ADD, Rd: 7}); !ok || ref.FP || ref.Reg != 7 {
		t.Errorf("Dest(add r7) = %v, %v", ref, ok)
	}
	if _, ok := Dest(Inst{Op: ADD, Rd: R0}); ok {
		t.Error("write to R0 should report no destination")
	}
	if ref, ok := Dest(Inst{Op: FLD, Rd: 0}); !ok || !ref.FP {
		t.Errorf("Dest(fld f0) = %v, %v; FPR f0 is a real register", ref, ok)
	}
}

func TestSources(t *testing.T) {
	cases := []struct {
		in   Inst
		want []RegRef
	}{
		{Inst{Op: ADD, Ra: 1, Rb: 2}, []RegRef{{Reg: 1}, {Reg: 2}}},
		{Inst{Op: ADDI, Ra: 3}, []RegRef{{Reg: 3}}},
		{Inst{Op: LW, Ra: 4}, []RegRef{{Reg: 4}}},
		{Inst{Op: SW, Ra: 4, Rb: 5}, []RegRef{{Reg: 4}, {Reg: 5}}},
		{Inst{Op: FSD, Ra: 4, Rb: 5}, []RegRef{{Reg: 4}, {Reg: 5, FP: true}}},
		{Inst{Op: FADD, Ra: 1, Rb: 2}, []RegRef{{Reg: 1, FP: true}, {Reg: 2, FP: true}}},
		{Inst{Op: JAL}, nil},
		{Inst{Op: JALR, Ra: 31}, []RegRef{{Reg: 31}}},
		{Inst{Op: LI}, nil},
	}
	for _, c := range cases {
		got := Sources(c.in, nil)
		if len(got) != len(c.want) {
			t.Errorf("Sources(%v) = %v, want %v", c.in.Op, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Sources(%v)[%d] = %v, want %v", c.in.Op, i, got[i], c.want[i])
			}
		}
	}
}

func TestDisasmSmoke(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: ADD, Rd: 1, Ra: 2, Rb: 3}, "add r1, r2, r3"},
		{Inst{Op: ADDI, Rd: 1, Ra: 2, Imm: -4}, "addi r1, r2, -4"},
		{Inst{Op: LW, Rd: 1, Ra: 2, Imm: 8, Class: LoadIntData}, "lw r1, 8(r2) ; int-data"},
		{Inst{Op: SW, Rb: 1, Ra: 2, Imm: 8}, "sw r1, 8(r2)"},
		{Inst{Op: BEQ, Ra: 1, Rb: 2, Imm: 0x1000}, "beq r1, r2, 0x1000"},
		{Inst{Op: JAL, Rd: 31, Imm: 0x2000}, "jal r31, 0x2000"},
		{Inst{Op: HALT}, "halt"},
		{Inst{Op: LI, Rd: 3, Imm: 42}, "li r3, 42"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("disasm = %q, want %q", got, c.want)
		}
	}
}

func TestLoadClassString(t *testing.T) {
	want := map[LoadClass]string{
		LoadNone: "none", LoadFPData: "fp-data", LoadIntData: "int-data",
		LoadInstAddr: "inst-addr", LoadDataAddr: "data-addr",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("LoadClass(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		got, ok := OpByName(op.String())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v", op.String(), got, ok)
		}
	}
	if _, ok := OpByName("bogus"); ok {
		t.Error("OpByName must reject unknown mnemonics")
	}
}

func TestDisasmAllForms(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OUT, Ra: 4}, "out r4"},
		{Inst{Op: NOP}, "nop"},
		{Inst{Op: JALR, Rd: 31, Ra: 5, Imm: 8}, "jalr r31, 8(r5)"},
		{Inst{Op: FNEG, Rd: 1, Ra: 2}, "fneg r1, r2"},
		{Inst{Op: CVTIF, Rd: 1, Ra: 2}, "cvtif r1, r2"},
		{Inst{Op: FSQRT, Rd: 1, Ra: 2}, "fsqrt r1, r2"},
		{Inst{Op: LD, Rd: 1, Ra: 2, Imm: -8}, "ld r1, -8(r2)"},
		{Inst{Op: FSD, Rb: 3, Ra: 2, Imm: 16}, "fsd r3, 16(r2)"},
		{Inst{Op: SLTI, Rd: 1, Ra: 2, Imm: 7}, "slti r1, r2, 7"},
		{Inst{Op: FDIV, Rd: 1, Ra: 2, Rb: 3}, "fdiv r1, r2, r3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("disasm = %q, want %q", got, c.want)
		}
	}
}

func TestClassStrings(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if s := c.String(); s == "" || s[0] == 'C' {
			t.Errorf("Class(%d).String() = %q", c, s)
		}
	}
	if Class(99).String() != "Class(99)" {
		t.Error("out-of-range class string")
	}
	if LoadClass(99).String() != "LoadClass(99)" {
		t.Error("out-of-range load class string")
	}
	if ClassOf(Op(200)) != ClassNop {
		t.Error("out-of-range opcode must classify as nop")
	}
}
