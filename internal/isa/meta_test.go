package isa

import "testing"

// TestOpMetaMatchesSwitches pins the derived OpMeta table against the
// authoritative switch functions, exhaustively over every opcode and a
// register assignment sweep: reconstructing Sources from the four read flags
// must reproduce the real Sources slice element-for-element (same refs, same
// order), and the class/write/kind fields must match their origin functions.
func TestOpMetaMatchesSwitches(t *testing.T) {
	regCases := []struct{ ra, rb Reg }{{1, 2}, {0, 0}, {5, 5}, {0, 7}, {31, 0}}
	for op := Op(0); int(op) < NumOps+2; op++ {
		m := MetaOf(op)
		if m.Class != ClassOf(op) {
			t.Errorf("op %d: meta class %v, ClassOf %v", op, m.Class, ClassOf(op))
		}
		if m.Load != IsLoad(op) || m.Store != IsStore(op) || m.Branch != IsBranch(op) {
			t.Errorf("op %d: load/store/branch flags diverge", op)
		}
		in := Inst{Op: op, Rd: 3}
		if m.WGPR != WritesGPR(in) || m.WFPR != WritesFPR(in) {
			t.Errorf("op %d: write flags diverge", op)
		}
		for _, rc := range regCases {
			in := Inst{Op: op, Ra: rc.ra, Rb: rc.rb}
			var buf [4]RegRef
			want := Sources(in, buf[:0])
			var got []RegRef
			if m.ReadsRaG {
				got = append(got, RegRef{Reg: in.Ra})
			}
			if m.ReadsRaF {
				got = append(got, RegRef{Reg: in.Ra, FP: true})
			}
			if m.ReadsRbG {
				got = append(got, RegRef{Reg: in.Rb})
			}
			if m.ReadsRbF {
				got = append(got, RegRef{Reg: in.Rb, FP: true})
			}
			if len(got) != len(want) {
				t.Fatalf("op %d ra=%d rb=%d: meta reconstructs %v, Sources %v", op, rc.ra, rc.rb, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("op %d ra=%d rb=%d: meta reconstructs %v, Sources %v", op, rc.ra, rc.rb, got, want)
				}
			}
		}
	}
}
