package isa

// RegRef identifies one register operand of an instruction, including which
// file it lives in. Timing models use these to track data dependencies.
type RegRef struct {
	Reg Reg
	FP  bool
}

// Sources appends the registers read by i to dst and returns the extended
// slice. Reads of GPR R0 are included (they are architecturally always
// ready, and timing models treat them as such).
func Sources(i Inst, dst []RegRef) []RegRef {
	gpr := func(r Reg) { dst = append(dst, RegRef{Reg: r}) }
	fpr := func(r Reg) { dst = append(dst, RegRef{Reg: r, FP: true}) }
	switch i.Op {
	case NOP, LI, JAL, HALT:
		// No register sources.
	case ADD, SUB, AND, OR, XOR, SHL, SHR, SRA, SLT, SLTU, SEQ, SNE, MUL, DIV, REM:
		gpr(i.Ra)
		gpr(i.Rb)
	case ADDI, ANDI, ORI, XORI, SHLI, SHRI, SRAI, SLTI:
		gpr(i.Ra)
	case LB, LBU, LH, LHU, LW, LWU, LD, FLW, FLD:
		gpr(i.Ra) // base address
	case SB, SH, SW, SD:
		gpr(i.Ra) // base address
		gpr(i.Rb) // stored value
	case FSW, FSD:
		gpr(i.Ra)
		fpr(i.Rb)
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		gpr(i.Ra)
		gpr(i.Rb)
	case JALR:
		gpr(i.Ra)
	case FADD, FSUB, FMUL, FDIV:
		fpr(i.Ra)
		fpr(i.Rb)
	case FNEG, FABS, FMOV, FSQRT:
		fpr(i.Ra)
	case FEQ, FLT, FLE:
		fpr(i.Ra)
		fpr(i.Rb)
	case CVTIF, MOVIF:
		gpr(i.Ra)
	case CVTFI, MOVFI:
		fpr(i.Ra)
	case OUT:
		gpr(i.Ra)
	}
	return dst
}

// Dest reports the destination register of i, if any.
func Dest(i Inst) (ref RegRef, ok bool) {
	if WritesFPR(i) {
		return RegRef{Reg: i.Rd, FP: true}, true
	}
	if WritesGPR(i) {
		return RegRef{Reg: i.Rd}, i.Rd != R0
	}
	return RegRef{}, false
}
