package isa

// Per-opcode metadata, precomputed once at init so the timing models' inner
// loops read one table row instead of re-running the Sources/Dest/WritesGPR
// switches for every dynamic instruction. The table is *derived* from those
// switch functions — they stay the single authority on the ISA's dataflow —
// and TestOpMetaMatchesSwitches pins the derivation exhaustively.

// OpMeta is everything the hot loops ask about an opcode. Which registers an
// instruction reads is op-determined (operands are only ever Ra and/or Rb,
// each in a fixed file), so four booleans plus the record's own Ra/Rb fields
// reproduce Sources exactly, in Sources order (Ra before Rb).
type OpMeta struct {
	Class Class
	// Register reads: Ra/Rb as a GPR or FPR operand.
	ReadsRaG, ReadsRaF bool
	ReadsRbG, ReadsRbF bool
	// Register write: Rd in the GPR or FPR file (WritesGPR/WritesFPR).
	WGPR, WFPR          bool
	Load, Store, Branch bool
}

var opMeta [NumOps]OpMeta

// nopMeta is returned for out-of-range opcodes, matching ClassOf's clamp.
var nopMeta OpMeta

func init() {
	for op := Op(0); int(op) < NumOps; op++ {
		m := &opMeta[op]
		m.Class = ClassOf(op)
		// Probe Sources with distinguishable registers: a returned ref
		// with Reg 1 is the Ra operand, Reg 2 the Rb operand.
		var refs [4]RegRef
		for _, ref := range Sources(Inst{Op: op, Ra: 1, Rb: 2}, refs[:0]) {
			switch ref.Reg {
			case 1:
				m.ReadsRaG = m.ReadsRaG || !ref.FP
				m.ReadsRaF = m.ReadsRaF || ref.FP
			case 2:
				m.ReadsRbG = m.ReadsRbG || !ref.FP
				m.ReadsRbF = m.ReadsRbF || ref.FP
			}
		}
		in := Inst{Op: op, Rd: 1}
		m.WGPR = WritesGPR(in)
		m.WFPR = WritesFPR(in)
		m.Load = IsLoad(op)
		m.Store = IsStore(op)
		m.Branch = IsBranch(op)
	}
}

// MetaOf returns the metadata row for op. Out-of-range opcodes (possible in
// a hand-built Record) get the NOP row, consistent with ClassOf.
func MetaOf(op Op) *OpMeta {
	if int(op) >= NumOps {
		return &nopMeta
	}
	return &opMeta[op]
}
