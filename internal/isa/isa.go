// Package isa defines the VLR (Value-Locality RISC) instruction set used by
// the whole reproduction: the functional VM executes it, the benchmark suite
// is written in it, and the timing models classify its instructions onto
// functional units.
//
// VLR is a load/store RISC in the spirit of the PowerPC 620 and Alpha 21164
// studied by the paper: 32 general-purpose registers, 32 floating-point
// registers, byte-addressed memory, fixed 4-byte instruction "slots" (the PC
// advances by 4 per instruction), and a conventional split between simple
// integer, complex integer, simple FP, complex FP, load/store, and branch
// instruction classes (paper Table 5).
//
// One deliberate extension: every load instruction carries a LoadClass tag
// assigned by the code generator. The paper's Figure 2 classifies loads by
// the kind of datum they fetch (floating-point data, integer data,
// instruction addresses, data addresses); in our framework the program
// builder knows exactly why each load was emitted, so the tag is static and
// exact.
package isa

import "fmt"

// Reg names a general-purpose or floating-point register. Whether a Reg
// refers to the GPR or FPR file is determined by the opcode that uses it.
type Reg uint8

// NumRegs is the size of each register file.
const NumRegs = 32

// R0 is hardwired to zero in the GPR file.
const R0 Reg = 0

// InstBytes is the architectural size of one instruction; the PC advances by
// this amount after every non-branching instruction.
const InstBytes = 4

// Op enumerates VLR opcodes.
type Op uint8

// Opcodes. The groups mirror the functional-unit classes of paper Table 5.
const (
	NOP Op = iota

	// Simple integer (SCFX). Three-register forms use Rd, Ra, Rb;
	// immediate forms use Rd, Ra, Imm.
	ADD
	ADDI
	SUB
	AND
	ANDI
	OR
	ORI
	XOR
	XORI
	SHL
	SHLI
	SHR // logical right shift
	SHRI
	SRA // arithmetic right shift
	SRAI
	SLT  // Rd = (Ra < Rb) signed
	SLTI // Rd = (Ra < Imm) signed
	SLTU // Rd = (Ra < Rb) unsigned
	SEQ  // Rd = (Ra == Rb)
	SNE  // Rd = (Ra != Rb)
	LI   // Rd = Imm (full-width immediate; see package comment in prog)

	// Complex integer (MCFX).
	MUL
	DIV // signed divide; divide-by-zero yields 0 (no traps in VLR)
	REM // signed remainder; modulo-by-zero yields 0

	// Loads. Rd = mem[Ra+Imm]; sign/zero extension per opcode. FLW/FLD
	// target the FPR file.
	LB
	LBU
	LH
	LHU
	LW
	LWU
	LD
	FLW
	FLD

	// Stores. mem[Ra+Imm] = Rb (low-order bytes). FSW/FSD read the FPR
	// file.
	SB
	SH
	SW
	SD
	FSW
	FSD

	// Branches. Conditional branches compare Ra and Rb (GPRs) and
	// transfer to Imm (an absolute instruction address, resolved by the
	// program builder).
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU
	JAL  // Rd = return address; jump to Imm
	JALR // Rd = return address; jump to Ra + Imm (indirect: returns, virtual calls, switch tables)

	// Simple FP (FPU, pipelined).
	FADD
	FSUB
	FMUL
	FNEG
	FABS
	FMOV
	FEQ   // Rd (GPR) = (Fa == Fb)
	FLT   // Rd (GPR) = (Fa < Fb)
	FLE   // Rd (GPR) = (Fa <= Fb)
	CVTIF // Fd = float64(Ra as int64)
	CVTFI // Rd = int64(Fa) (truncating)
	MOVIF // Fd = raw bits of Ra
	MOVFI // Rd = raw bits of Fa

	// Complex FP (FPU, long latency).
	FDIV
	FSQRT

	// System.
	OUT  // append GPR Ra to the VM's output stream (self-check channel)
	HALT // stop execution

	numOps // sentinel; must be last
)

// NumOps reports the number of defined opcodes (useful for exhaustive
// table-driven tests).
const NumOps = int(numOps)

// LoadClass tags a static load with the kind of datum it fetches, following
// the taxonomy of paper Figure 2.
type LoadClass uint8

const (
	// LoadNone marks non-load instructions.
	LoadNone LoadClass = iota
	// LoadFPData is a floating-point datum.
	LoadFPData
	// LoadIntData is a non-FP, non-address datum.
	LoadIntData
	// LoadInstAddr is an instruction address (function pointer, switch
	// table entry, saved link register).
	LoadInstAddr
	// LoadDataAddr is a data address (pointer, GOT/TOC entry, spilled
	// pointer).
	LoadDataAddr

	// NumLoadClasses counts the classes above, including LoadNone.
	NumLoadClasses
)

func (c LoadClass) String() string {
	switch c {
	case LoadNone:
		return "none"
	case LoadFPData:
		return "fp-data"
	case LoadIntData:
		return "int-data"
	case LoadInstAddr:
		return "inst-addr"
	case LoadDataAddr:
		return "data-addr"
	}
	return fmt.Sprintf("LoadClass(%d)", uint8(c))
}

// Inst is one VLR instruction. Imm holds immediates, branch targets
// (absolute instruction addresses) and full-width LI constants.
type Inst struct {
	Op    Op
	Rd    Reg
	Ra    Reg
	Rb    Reg
	Imm   int64
	Class LoadClass // static load-class tag; LoadNone unless Op is a load
}

// Class enumerates the functional-unit classes of paper Table 5.
type Class uint8

const (
	ClassNop Class = iota
	ClassSimpleInt
	ClassComplexInt
	ClassLoad
	ClassStore
	ClassSimpleFP
	ClassComplexFP
	ClassBranch
	ClassSys

	NumClasses
)

func (c Class) String() string {
	switch c {
	case ClassNop:
		return "nop"
	case ClassSimpleInt:
		return "simple-int"
	case ClassComplexInt:
		return "complex-int"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassSimpleFP:
		return "simple-fp"
	case ClassComplexFP:
		return "complex-fp"
	case ClassBranch:
		return "branch"
	case ClassSys:
		return "sys"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

var opClass = [numOps]Class{
	NOP:   ClassNop,
	ADD:   ClassSimpleInt,
	ADDI:  ClassSimpleInt,
	SUB:   ClassSimpleInt,
	AND:   ClassSimpleInt,
	ANDI:  ClassSimpleInt,
	OR:    ClassSimpleInt,
	ORI:   ClassSimpleInt,
	XOR:   ClassSimpleInt,
	XORI:  ClassSimpleInt,
	SHL:   ClassSimpleInt,
	SHLI:  ClassSimpleInt,
	SHR:   ClassSimpleInt,
	SHRI:  ClassSimpleInt,
	SRA:   ClassSimpleInt,
	SRAI:  ClassSimpleInt,
	SLT:   ClassSimpleInt,
	SLTI:  ClassSimpleInt,
	SLTU:  ClassSimpleInt,
	SEQ:   ClassSimpleInt,
	SNE:   ClassSimpleInt,
	LI:    ClassSimpleInt,
	MUL:   ClassComplexInt,
	DIV:   ClassComplexInt,
	REM:   ClassComplexInt,
	LB:    ClassLoad,
	LBU:   ClassLoad,
	LH:    ClassLoad,
	LHU:   ClassLoad,
	LW:    ClassLoad,
	LWU:   ClassLoad,
	LD:    ClassLoad,
	FLW:   ClassLoad,
	FLD:   ClassLoad,
	SB:    ClassStore,
	SH:    ClassStore,
	SW:    ClassStore,
	SD:    ClassStore,
	FSW:   ClassStore,
	FSD:   ClassStore,
	BEQ:   ClassBranch,
	BNE:   ClassBranch,
	BLT:   ClassBranch,
	BGE:   ClassBranch,
	BLTU:  ClassBranch,
	BGEU:  ClassBranch,
	JAL:   ClassBranch,
	JALR:  ClassBranch,
	FADD:  ClassSimpleFP,
	FSUB:  ClassSimpleFP,
	FMUL:  ClassSimpleFP,
	FNEG:  ClassSimpleFP,
	FABS:  ClassSimpleFP,
	FMOV:  ClassSimpleFP,
	FEQ:   ClassSimpleFP,
	FLT:   ClassSimpleFP,
	FLE:   ClassSimpleFP,
	CVTIF: ClassSimpleFP,
	CVTFI: ClassSimpleFP,
	MOVIF: ClassSimpleFP,
	MOVFI: ClassSimpleFP,
	FDIV:  ClassComplexFP,
	FSQRT: ClassComplexFP,
	OUT:   ClassSys,
	HALT:  ClassSys,
}

// ClassOf reports the functional-unit class of op.
func ClassOf(op Op) Class {
	if int(op) >= NumOps {
		return ClassNop
	}
	return opClass[op]
}

// IsLoad reports whether op reads memory.
func IsLoad(op Op) bool { return ClassOf(op) == ClassLoad }

// IsStore reports whether op writes memory.
func IsStore(op Op) bool { return ClassOf(op) == ClassStore }

// IsBranch reports whether op may redirect the PC.
func IsBranch(op Op) bool { return ClassOf(op) == ClassBranch }

// IsCondBranch reports whether op is a conditional branch.
func IsCondBranch(op Op) bool {
	switch op {
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		return true
	}
	return false
}

// IsIndirect reports whether op transfers control through a register.
func IsIndirect(op Op) bool { return op == JALR }

// IsFPLoad reports whether op loads into the FPR file.
func IsFPLoad(op Op) bool { return op == FLW || op == FLD }

// IsFPStore reports whether op stores from the FPR file.
func IsFPStore(op Op) bool { return op == FSW || op == FSD }

// MemBytes reports the access width in bytes of a load or store opcode, and
// zero for anything else.
func MemBytes(op Op) int {
	switch op {
	case LB, LBU, SB:
		return 1
	case LH, LHU, SH:
		return 2
	case LW, LWU, SW, FLW, FSW:
		return 4
	case LD, SD, FLD, FSD:
		return 8
	}
	return 0
}

// SignExtends reports whether a load opcode sign-extends the loaded value.
func SignExtends(op Op) bool {
	switch op {
	case LB, LH, LW:
		return true
	}
	return false
}

// WritesGPR reports whether the instruction writes a GPR result (Rd in the
// GPR file). Writes to R0 are architecturally discarded but still "write" in
// the dataflow sense until the VM squashes them.
func WritesGPR(i Inst) bool {
	switch ClassOf(i.Op) {
	case ClassSimpleInt, ClassComplexInt:
		return true
	case ClassLoad:
		return !IsFPLoad(i.Op)
	case ClassBranch:
		return i.Op == JAL || i.Op == JALR
	case ClassSimpleFP:
		switch i.Op {
		case FEQ, FLT, FLE, CVTFI, MOVFI:
			return true
		}
	}
	return false
}

// WritesFPR reports whether the instruction writes an FPR result.
func WritesFPR(i Inst) bool {
	switch i.Op {
	case FLW, FLD, FADD, FSUB, FMUL, FNEG, FABS, FMOV, CVTIF, MOVIF, FDIV, FSQRT:
		return true
	}
	return false
}
