package perf

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRunGridShape runs the grid at minimal sizing and pins the report's
// deterministic structure: schema, entry names in grid order, the fixed
// ratio keys, and sane measurements (positive throughput everywhere, zero
// allocs/record on the streaming decode hot paths).
func TestRunGridShape(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run is slow under -short")
	}
	rep, err := Run(Options{Benchtime: "1x", Smoke: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema {
		t.Fatalf("schema = %q, want %q", rep.Schema, Schema)
	}
	if len(rep.Entries) != len(grid) {
		t.Fatalf("%d entries, want %d", len(rep.Entries), len(grid))
	}
	for i, cell := range grid {
		e := rep.Entries[i]
		if e.Name != cell.name {
			t.Fatalf("entry %d = %q, want %q (order is part of the schema)", i, e.Name, cell.name)
		}
		if e.Records <= 0 || e.NsPerRecord <= 0 || e.RecordsPerSec <= 0 {
			t.Fatalf("%s: non-positive measurement: %+v", e.Name, e)
		}
		if (cell.bytes != nil) != (e.MBPerSec > 0) {
			t.Fatalf("%s: MB/s presence mismatch: %+v", e.Name, e)
		}
	}
	for _, r := range ratios {
		if v, ok := rep.Ratios[r.key]; !ok || v <= 0 {
			t.Fatalf("ratio %s missing or non-positive: %v", r.key, rep.Ratios)
		}
	}
	for _, e := range rep.Entries {
		switch e.Name {
		case "codec.decode.record", "codec.decode.batch":
			// One reader allocation per pass amortizes below 0.001
			// allocs/record on any real trace; a regression to per-record
			// allocation would show up as >= 1 here.
			if e.AllocsPerRecord >= 1 {
				t.Fatalf("%s: %v allocs/record on the streaming decode path", e.Name, e.AllocsPerRecord)
			}
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Schema != rep.Schema || len(back.Entries) != len(rep.Entries) {
		t.Fatal("round-tripped report lost structure")
	}
}
