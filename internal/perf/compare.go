package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Snapshot comparison: the ratio keys are the grid's noise-resistant axis —
// each one divides two cells measured in the same process on the same
// machine, so host speed cancels out and what remains is the relative shape
// of the pipeline. Compare diffs those keys between two reports, which is
// what the CI perf-smoke step flags on (informationally: CI machines are
// too noisy to gate on, but a >20% shape change is worth a line in the log).

// Drift is one ratio key's movement between two reports. Change is
// fractional: New/Old - 1, so -0.25 reads "this speedup lost a quarter".
type Drift struct {
	Key    string  `json:"key"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	Change float64 `json:"change"`
}

// Compare returns the ratio keys present in both reports whose value moved
// by more than threshold (fractional, e.g. 0.20 for 20%), sorted by key.
// Keys present in only one report are structural changes, not drift, and
// are ignored.
func Compare(old, cur *Report, threshold float64) []Drift {
	var out []Drift
	for key, ov := range old.Ratios {
		nv, ok := cur.Ratios[key]
		if !ok || ov == 0 {
			continue
		}
		change := nv/ov - 1
		if change > threshold || change < -threshold {
			out = append(out, Drift{Key: key, Old: ov, New: nv, Change: round3(change)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// ReadReport loads a report snapshot (a BENCH_*.json file).
func ReadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r Report
	if err := json.NewDecoder(f).Decode(&r); err != nil {
		return nil, fmt.Errorf("perf: decoding %s: %w", path, err)
	}
	return &r, nil
}

// WriteDrift renders drifts one per line, or a clean-bill line when empty.
func WriteDrift(w io.Writer, against string, drifts []Drift, threshold float64) {
	if len(drifts) == 0 {
		fmt.Fprintf(w, "perf: no ratio drift >%.0f%% vs %s\n", threshold*100, against)
		return
	}
	for _, d := range drifts {
		fmt.Fprintf(w, "perf: ratio %s drifted %+.1f%% vs %s (%.3f -> %.3f)\n",
			d.Key, d.Change*100, against, d.Old, d.New)
	}
}
