package perf

import (
	"reflect"
	"testing"
)

func TestCompareFlagsOnlyLargeDrift(t *testing.T) {
	old := &Report{Ratios: map[string]float64{
		"steady":     2.0, // moves 5%: under threshold
		"regressed":  4.0, // loses 25%
		"improved":   1.0, // gains 50%
		"vanished":   3.0, // absent from the new report: structural, ignored
		"zero_based": 0.0, // zero old value: ratio undefined, ignored
	}}
	cur := &Report{Ratios: map[string]float64{
		"steady":     2.1,
		"regressed":  3.0,
		"improved":   1.5,
		"zero_based": 1.0,
		"brand_new":  9.0, // absent from the old report: structural, ignored
	}}
	got := Compare(old, cur, 0.20)
	want := []Drift{
		{Key: "improved", Old: 1.0, New: 1.5, Change: 0.5},
		{Key: "regressed", Old: 4.0, New: 3.0, Change: -0.25},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Compare:\n got  %+v\n want %+v", got, want)
	}
}

func TestCompareExactThresholdIsQuiet(t *testing.T) {
	old := &Report{Ratios: map[string]float64{"r": 1.0}}
	cur := &Report{Ratios: map[string]float64{"r": 1.2}}
	if got := Compare(old, cur, 0.20); len(got) != 0 {
		t.Fatalf("movement exactly at threshold should not flag, got %+v", got)
	}
}
